package jsweep_test

// True multi-OS-process end-to-end test of the TCP backend: the test
// binary re-executes itself as jsweep-node workers (the JSWEEP_NODE_*
// environment marks a child, intercepted in TestMain before the testing
// framework parses flags), so a 4-rank Kobayashi solve really runs as 4
// separate OS processes over TCP-loopback — rank 0 verifying bitwise
// reference parity in-process and the launcher certifying that all
// ranks reported the identical flux bit pattern.

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"jsweep"
	"jsweep/internal/nodespec"
	"jsweep/internal/serve"
)

func TestMain(m *testing.M) {
	if os.Getenv(nodespec.EnvRank) != "" {
		// Child mode: behave as a jsweep-node worker (result streaming
		// included, so launched jobs are result-complete) and exit.
		if err := serve.RunNodeFromEnv(os.Stdout); err != nil {
			os.Stderr.WriteString(err.Error() + "\n")
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func launchSelf(t *testing.T, spec jsweep.NodeSpec, verify bool) (*jsweep.LaunchResult, string) {
	t.Helper()
	var log bytes.Buffer
	res, err := jsweep.LaunchLocal(jsweep.LaunchConfig{
		Spec:        spec,
		NodeCommand: []string{os.Args[0]},
		Verify:      verify,
		Timeout:     4 * time.Minute,
		Log:         &log,
	})
	if err != nil {
		t.Fatalf("launch: %v\nnode output:\n%s", err, log.String())
	}
	return res, log.String()
}

// TestFourProcessAcceptance is the PR's acceptance matrix: a 4-rank
// solve as 4 separate OS processes, aggregation off and on, on all
// three mesh families. The default wire ("" = auto) resolves to
// shared-memory rings here — every rank is on this host and the
// platform supports mmap — so these rows exercise the fastest tier end
// to end, pinned by the fastPairs and shmPairs counts in the cluster
// log (4 ranks, all co-located: 4×3 directed pairs). Rank 0 verifies
// against the serial Reference in-process
// (bitwise on kobayashi and cyclic; 1e-12 relative on the unstructured
// ball, where the reference accumulates patch boundaries in a different
// global order — the strictness the single-process golden tests pin),
// and the launcher certifies that all four ranks reported the identical
// flux bit pattern.
func TestFourProcessAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-OS-process solve skipped in -short mode")
	}
	meshes := map[string]jsweep.NodeSpec{
		"kobayashi": {Mesh: "kobayashi", N: 12, SnOrder: 2, Scatter: true,
			Procs: 4, Workers: 2, Grain: 32, Tol: 1e-8},
		"ball": {Mesh: "ball", Cells: 600, SnOrder: 2, Patch: 100,
			Procs: 4, Workers: 2, Grain: 16, Tol: 1e-8},
		"cyclic": {Mesh: "cyclic", Cells: 300, SnOrder: 2, Patch: 80,
			Procs: 4, Workers: 2, Grain: 8, Tol: 1e-9},
	}
	for mesh, spec := range meshes {
		for _, agg := range []bool{false, true} {
			name := mesh + "/agg-off"
			if agg {
				name = mesh + "/agg-on"
			}
			t.Run(name, func(t *testing.T) {
				s := spec
				s.Agg = agg
				res, log := launchSelf(t, s, true)
				if !res.Verified {
					t.Fatal("rank 0 did not verify against the serial reference")
				}
				if res.FluxHash == "" {
					t.Fatal("no flux hash")
				}
				wantFastPairs(t, log, s.Procs*(s.Procs-1))
				wantShmPairs(t, log, s.Procs*(s.Procs-1))
			})
		}
	}
}

// TestFourProcessWireForced pins every explicit wire selection on the
// same solve: -wire shm must put every pair on shared-memory rings,
// -wire uds on Unix sockets (no rings), and -wire tcp must keep the
// cluster on TCP (fastPairs=0) — all while verifying bitwise against
// the reference, because the wire flavor never changes the answer.
func TestFourProcessWireForced(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-OS-process solve skipped in -short mode")
	}
	spec := jsweep.NodeSpec{Mesh: "kobayashi", N: 12, SnOrder: 2, Scatter: true,
		Procs: 4, Workers: 2, Grain: 32, Tol: 1e-8}
	hashes := map[string]string{}
	for _, wire := range []string{"shm", "uds", "tcp"} {
		t.Run("wire-"+wire, func(t *testing.T) {
			s := spec
			s.Wire = wire
			res, log := launchSelf(t, s, true)
			if !res.Verified {
				t.Fatal("rank 0 did not verify against the serial reference")
			}
			wantFast, wantShm := 0, 0
			switch wire {
			case "shm":
				wantFast = s.Procs * (s.Procs - 1)
				wantShm = wantFast
			case "uds":
				wantFast = s.Procs * (s.Procs - 1)
			}
			wantFastPairs(t, log, wantFast)
			wantShmPairs(t, log, wantShm)
			hashes[wire] = res.FluxHash
		})
	}
	if len(hashes) == 3 && (hashes["shm"] != hashes["uds"] || hashes["uds"] != hashes["tcp"]) {
		t.Fatalf("flux hash differs across wires: %v", hashes)
	}
}

// wantFastPairs asserts the cluster log's summed fastPairs count — the
// number of directed rank pairs that actually connected over a
// same-host fast path (rings or Unix sockets).
func wantFastPairs(t *testing.T, log string, want int) {
	t.Helper()
	marker := fmt.Sprintf("fastPairs=%d ", want)
	if !strings.Contains(log, marker) {
		t.Fatalf("cluster log missing %q:\n%s", marker, log)
	}
}

// wantShmPairs asserts the cluster log's summed shmPairs count — the
// subset of fastPairs that ride shared-memory rings.
func wantShmPairs(t *testing.T, log string, want int) {
	t.Helper()
	marker := fmt.Sprintf("shmPairs=%d ", want)
	if !strings.Contains(log, marker) {
		t.Fatalf("cluster log missing %q:\n%s", marker, log)
	}
}

// TestLaunchRejectsHashMismatch would require corrupting a child, which
// the launcher cannot distinguish from a healthy run; instead pin the
// failure modes the launcher must catch: a missing node binary.
func TestLaunchMissingBinary(t *testing.T) {
	_, err := jsweep.LaunchLocal(jsweep.LaunchConfig{
		Spec:        jsweep.NodeSpec{Mesh: "kobayashi", N: 8, Procs: 2},
		NodeCommand: []string{"/nonexistent/jsweep-node-binary"},
		Timeout:     10 * time.Second,
		Log:         new(bytes.Buffer),
	})
	if err == nil {
		t.Fatal("launch with a missing binary succeeded")
	}
}
