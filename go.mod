module jsweep

go 1.24
