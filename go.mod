module jsweep

go 1.23.0
