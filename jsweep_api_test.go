package jsweep_test

import (
	"testing"

	"jsweep"
)

// The facade must expose a working end-to-end path: build → decompose →
// solve → verify, entirely through the public API.
func TestPublicAPIEndToEnd(t *testing.T) {
	prob, m, err := jsweep.BuildKobayashi(jsweep.KobayashiSpec{
		N: 12, SnOrder: 2, Scattering: true, Scheme: jsweep.Diamond,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := m.BlockDecompose(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := jsweep.NewSolver(prob, d, jsweep.SolverOptions{
		Procs: 2, Workers: 2, Grain: 32,
		Pair:      jsweep.PriorityPair{Patch: jsweep.SLBD, Vertex: jsweep.SLBD},
		UseCoarse: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := jsweep.Solve(prob, s, jsweep.IterConfig{Tolerance: 1e-7})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: %+v", res)
	}
	ref, err := jsweep.NewReference(prob)
	if err != nil {
		t.Fatal(err)
	}
	want, err := jsweep.Solve(prob, ref, jsweep.IterConfig{Tolerance: 1e-7})
	if err != nil {
		t.Fatal(err)
	}
	for g := range want.Phi {
		for c := range want.Phi[g] {
			if want.Phi[g][c] != res.Phi[g][c] {
				t.Fatalf("group %d cell %d: %v != %v", g, c, res.Phi[g][c], want.Phi[g][c])
			}
		}
	}
	if s.CoarseGraph() == nil {
		t.Error("coarse graph should have been built")
	}
}

// The unstructured path through the facade: generate, partition, solve.
func TestPublicAPIUnstructured(t *testing.T) {
	m, err := jsweep.BallWithCells(800, 5.0)
	if err != nil {
		t.Fatal(err)
	}
	m.SetMaterialFunc(func(jsweep.Vec3) int { return 0 })
	quad, err := jsweep.NewQuadrature(2)
	if err != nil {
		t.Fatal(err)
	}
	prob := &jsweep.Problem{
		M:      m,
		Mats:   []jsweep.Material{{SigmaT: []float64{0.5}, Source: []float64{1}}},
		Quad:   quad,
		Groups: 1,
		Scheme: jsweep.Step,
	}
	d, err := jsweep.PartitionByPatchSize(m, 200, jsweep.GreedyGraph)
	if err != nil {
		t.Fatal(err)
	}
	s, err := jsweep.NewSolver(prob, d, jsweep.SolverOptions{Procs: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := jsweep.Solve(prob, s, jsweep.IterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rep := prob.GroupBalance(res.Phi, 0)
	if rep.Production <= 0 || rep.Absorption <= 0 || rep.Absorption >= rep.Production {
		t.Errorf("balance looks wrong: %+v", rep)
	}
}

// The simulated-cluster path through the facade.
func TestPublicAPISimulation(t *testing.T) {
	w, err := jsweep.StructuredSimWorkload(4, 4, 4, 1000, 4, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	cm := jsweep.DefaultCostModel(1)
	dd, err := jsweep.SimulateSweep(w, jsweep.SimConfig{Workers: 4, Grain: 250}, cm)
	if err != nil {
		t.Fatal(err)
	}
	bsp, err := jsweep.SimulateBSPSweep(w, jsweep.SimConfig{Workers: 4, Grain: 250}, cm)
	if err != nil {
		t.Fatal(err)
	}
	if dd.Makespan <= 0 || bsp.Makespan <= 0 {
		t.Fatal("degenerate makespans")
	}
	if dd.Makespan >= bsp.Makespan {
		t.Errorf("data-driven (%v) should beat BSP (%v)", dd.Makespan, bsp.Makespan)
	}
}

// Baselines through the facade agree with the reference.
func TestPublicAPIBaselines(t *testing.T) {
	prob, m, err := jsweep.BuildKobayashi(jsweep.KobayashiSpec{N: 8, SnOrder: 2, Scheme: jsweep.Diamond})
	if err != nil {
		t.Fatal(err)
	}
	d, err := m.BlockDecompose(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := jsweep.NewReference(prob)
	if err != nil {
		t.Fatal(err)
	}
	want, err := jsweep.Solve(prob, ref, jsweep.IterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	kbaEx, err := jsweep.NewKBA(prob, 2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	bspEx, err := jsweep.NewBSP(prob, d)
	if err != nil {
		t.Fatal(err)
	}
	for name, ex := range map[string]jsweep.SweepExecutor{"kba": kbaEx, "bsp": bspEx} {
		got, err := jsweep.Solve(prob, ex, jsweep.IterConfig{})
		if err != nil {
			t.Fatal(err)
		}
		for c := range want.Phi[0] {
			if want.Phi[0][c] != got.Phi[0][c] {
				t.Fatalf("%s: cell %d differs", name, c)
			}
		}
	}
}
