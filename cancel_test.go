package jsweep_test

// Cancellation coverage: a cancelled solve must return within a bounded
// time with ctx.Err() in its error chain, leak no goroutines, and leave
// uncancelled runs bitwise identical to the serial reference. Covers
// the two hard cases the context plumbing exists for — a 4-rank TCP
// cluster cancelled mid-iteration (collectives must unblock cluster-
// wide) and a reused-session in-process solve cancelled mid-sweep
// (parked workers and the master loop must unblock).

import (
	"bytes"
	"context"
	"errors"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"jsweep"
)

// cancelSpec solves slowly enough to be cancelled mid-flight: heavy
// scattering and a tolerance far below reach keep it iterating to
// MaxIters.
func cancelSpec(backend jsweep.Backend) jsweep.NodeSpec {
	return jsweep.NodeSpec{
		Mesh: "kobayashi", N: 12, SnOrder: 2, Scatter: true,
		Backend: backend, Procs: 4, Workers: 2, Grain: 32,
		Tol: 1e-300, MaxIters: 10000,
	}
}

// withinGoroutineBudget polls until the goroutine count returns to the
// baseline (+slack for runtime helpers), failing after the deadline.
func withinGoroutineBudget(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		now := runtime.NumGoroutine()
		if now <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak after cancellation: %d before, %d after\n%s", before, now, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCancelTCPSolveMidIteration(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP cancellation test skipped in -short mode")
	}
	before := runtime.NumGoroutine()
	const ranks = 4
	spec := cancelSpec(jsweep.BackendTCPAttach)

	rz, err := jsweep.StartRendezvous("127.0.0.1:0", "cancel", ranks)
	if err != nil {
		t.Fatal(err)
	}
	defer rz.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Rank 0 cancels the whole cluster once iteration 2 has completed —
	// the cancel lands mid-iteration 3, with peers deep inside their
	// sweeps or parked in the per-sweep collective.
	var iters atomic.Int64
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	start := time.Now()
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			opts := []jsweep.JobOption{jsweep.WithAttach("cancel", r, rz.Addr())}
			if r == 0 {
				opts = append(opts, jsweep.WithProgress(func(ev jsweep.ProgressEvent) {
					if iters.Store(int64(ev.Iteration)); ev.Iteration == 2 {
						cancel()
					}
				}))
			}
			job, err := jsweep.NewJob(spec, opts...)
			if err != nil {
				errs[r] = err
				return
			}
			_, errs[r] = job.Run(ctx)
		}(r)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("cancelled 4-rank TCP solve still running after 60s")
	}
	// The acceptance bound: cancellation to full return within 10s.
	if elapsed := time.Since(start); elapsed > 45*time.Second {
		t.Fatalf("solve+cancel took %v", elapsed)
	}
	if got := iters.Load(); got >= 100 {
		t.Fatalf("solve ran %d iterations after the cancel point — cancellation did not take", got)
	}
	for r, err := range errs {
		if err == nil {
			t.Fatalf("rank %d returned nil from a cancelled solve", r)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("rank %d error %q does not surface ctx.Err()", r, err)
		}
	}
	withinGoroutineBudget(t, before)
}

// assertNoNodeChildren scans /proc for direct children of this process
// that carry the node-worker environment — a cancelled launch must
// leave zero of them behind.
func assertNoNodeChildren(t *testing.T) {
	t.Helper()
	me := os.Getpid()
	deadline := time.Now().Add(10 * time.Second)
	for {
		leaked := nodeChildrenOf(me)
		if len(leaked) == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("leaked node child processes after cancellation: %v", leaked)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func nodeChildrenOf(ppid int) []int {
	entries, err := os.ReadDir("/proc")
	if err != nil {
		return nil
	}
	var leaked []int
	for _, e := range entries {
		pid, err := strconv.Atoi(e.Name())
		if err != nil {
			continue
		}
		stat, err := os.ReadFile("/proc/" + e.Name() + "/status")
		if err != nil {
			continue
		}
		if !strings.Contains(string(stat), "\nPPid:\t"+strconv.Itoa(ppid)+"\n") {
			continue
		}
		env, err := os.ReadFile("/proc/" + e.Name() + "/environ")
		if err != nil {
			continue
		}
		if strings.Contains(string(env), "JSWEEP_NODE_RANK=") {
			leaked = append(leaked, pid)
		}
	}
	return leaked
}

// TestCancelTCPLaunchMidIteration is the acceptance criterion verbatim:
// cancelling a tcp-launch job mid-iteration (4 real jsweep-node OS
// processes deep in an endless source iteration) returns ctx.Err()
// within 10 seconds and leaks zero child processes.
func TestCancelTCPLaunchMidIteration(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-OS-process cancellation test skipped in -short mode")
	}
	spec := cancelSpec(jsweep.BackendTCPLaunch)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var log bytes.Buffer
	job, err := jsweep.NewJob(spec,
		jsweep.WithNodeCommand([]string{os.Args[0]}),
		jsweep.WithTimeout(2*time.Minute),
		jsweep.WithLog(&log),
	)
	if err != nil {
		t.Fatal(err)
	}
	// Give the nodes time to rendezvous and get deep into iterating
	// (the spec cannot converge), then cancel.
	cancelAt := time.AfterFunc(1500*time.Millisecond, cancel)
	defer cancelAt.Stop()
	start := time.Now()
	_, err = job.Run(ctx)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("cancelled tcp-launch job returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %q does not surface ctx.Err()\nnode output:\n%s", err, log.String())
	}
	// 1.5s ramp + the acceptance bound of 10s from cancel to return.
	if elapsed > 11500*time.Millisecond {
		t.Fatalf("cancelled launch took %v to return (bound: cancel+10s)", elapsed)
	}
	assertNoNodeChildren(t)
}

func TestCancelInProcReusedSessionMidSweep(t *testing.T) {
	before := runtime.NumGoroutine()
	spec := cancelSpec(jsweep.BackendInProc) // ReuseOff=false: one persistent session
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	job, err := jsweep.NewJob(spec, jsweep.WithProgress(func(ev jsweep.ProgressEvent) {
		if ev.Iteration == 2 {
			// Fire from a helper goroutine a moment later, so the cancel
			// lands mid-sweep 3 rather than on the iteration boundary.
			time.AfterFunc(time.Millisecond, cancel)
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = job.Run(ctx)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("cancelled in-process solve returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %q does not surface ctx.Err()", err)
	}
	if elapsed > 30*time.Second {
		t.Fatalf("cancelled solve took %v to return", elapsed)
	}
	withinGoroutineBudget(t, before)
}

// TestJobTimeoutBoundsInProcRun: WithTimeout must bound the whole job
// on every backend — including inproc, which has no timeout plumbing of
// its own (the job derives a context deadline from it).
func TestJobTimeoutBoundsInProcRun(t *testing.T) {
	spec := cancelSpec(jsweep.BackendInProc)
	// Without the derived deadline this spec iterates for minutes.
	timed, err := jsweep.NewJob(spec, jsweep.WithTimeout(300*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = timed.Run(context.Background())
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("WithTimeout job ran to completion on an unconvergeable spec")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %q does not surface the deadline", err)
	}
	if elapsed > 20*time.Second {
		t.Fatalf("timed job took %v to stop", elapsed)
	}
}

// TestUncancelledRunBitwiseIdentical pins that the context plumbing is
// observation-free: a run under a live (never-fired) cancellable
// context still reproduces the serial reference bit for bit, with the
// same iteration count as a Background-context run.
func TestUncancelledRunBitwiseIdentical(t *testing.T) {
	spec := jsweep.NodeSpec{
		Mesh: "kobayashi", N: 12, SnOrder: 2, Scatter: true,
		Procs: 4, Workers: 2, Grain: 32, Tol: 1e-8,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	job, err := jsweep.NewJob(spec, jsweep.WithVerify())
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("run under a cancellable context did not verify against the serial reference")
	}
	plain, err := job.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if plain.FluxHash != res.FluxHash || plain.Result.Iterations != res.Result.Iterations {
		t.Fatalf("context plumbing changed the numerics: %s/%d vs %s/%d",
			res.FluxHash, res.Result.Iterations, plain.FluxHash, plain.Result.Iterations)
	}
}
