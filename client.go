package jsweep

// The remote-submission surface of the Job API: a Client submits the
// same NodeSpec a local Job runs — same versioned wire schema, same
// typed validation — to a running jsweep-serve daemon, and a JobHandle
// mirrors Job.Run's result shape. The daemon executes in-process on its
// own host, so a remote RunResult reports BackendInProc: the backend
// field describes how the ranks ran, not where the submission came from.
//
//	c := jsweep.NewClient("workhorse:7070")
//	h, err := c.Submit(ctx, spec, jsweep.WithVerify())
//	if err != nil {
//		var adm *jsweep.AdmissionError
//		if errors.As(err, &adm) { ... } // typed: queue-full, invalid-spec, ...
//	}
//	res, err := h.Wait(ctx)

import (
	"context"
	"fmt"
	"time"

	"jsweep/internal/netcomm"
	"jsweep/internal/serve"
)

// AdmissionError is a daemon's typed refusal to run a job: the job
// never started. Code is one of the Admission* constants.
type AdmissionError = serve.AdmissionError

// Admission rejection codes a Client.Submit may return inside an
// *AdmissionError.
const (
	// AdmissionQueueFull: the daemon's running set and wait queue are
	// both at capacity — retry later or pick another daemon.
	AdmissionQueueFull = serve.CodeQueueFull
	// AdmissionInvalidSpec: the spec failed the daemon's schema
	// validation (the Detail carries the typed field errors).
	AdmissionInvalidSpec = serve.CodeInvalidSpec
	// AdmissionShuttingDown: the daemon is draining.
	AdmissionShuttingDown = serve.CodeShuttingDown
)

// DaemonInfo is a daemon's capacity advertisement.
type DaemonInfo struct {
	// Proto is the submission-protocol version the daemon speaks.
	Proto uint32
	// Slots is the advertised rank capacity; Busy of them are taken.
	Slots int
	Busy  int
	// Running and Queued count jobs.
	Running int
	Queued  int
}

// Client submits jobs to one jsweep-serve daemon. The zero value is not
// usable; build with NewClient. A Client is stateless and safe for
// concurrent use — each submission runs over its own connection, which
// doubles as the job lease (a dropped submitter cancels its job).
type Client struct {
	c *serve.Client
}

// NewClient points at a daemon's submission address (host:port).
func NewClient(addr string) *Client {
	return &Client{c: serve.NewClient(addr)}
}

// Addr is the daemon address this client submits to.
func (c *Client) Addr() string { return c.c.Addr() }

// Info queries the daemon's capacity advertisement without submitting.
func (c *Client) Info(ctx context.Context) (DaemonInfo, error) {
	h, err := c.c.Hello(ctx)
	if err != nil {
		return DaemonInfo{}, err
	}
	return DaemonInfo{Proto: h.Proto, Slots: h.Slots, Busy: h.Busy, Running: h.Running, Queued: h.Queued}, nil
}

// Submit sends one job to the daemon and returns a live handle once it
// is admitted. The spec's Backend must be Auto or InProc — the daemon
// always executes in-process on its host; multi-host launches go
// through WithHosts on a tcp-launch Job instead. Supported options:
// WithProgress, WithVerify, WithTimeout, WithLog. A typed
// *AdmissionError reports a refusal (queue full, invalid spec, daemon
// draining); the job never ran.
func (c *Client) Submit(ctx context.Context, spec NodeSpec, opts ...JobOption) (*JobHandle, error) {
	var cfg jobConfig
	for _, o := range opts {
		o(&cfg)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if b := spec.Backend; b != BackendAuto && b != BackendInProc {
		return nil, fmt.Errorf("jsweep: a submitted job runs in the daemon's process — backend %q does not apply (use WithHosts on a %q Job for multi-host placement)", b, BackendTCPLaunch)
	}
	switch {
	case cfg.transport != nil:
		return nil, fmt.Errorf("jsweep: WithTransport does not apply to a submitted job (the daemon owns its transports)")
	case cfg.attach != nil:
		return nil, fmt.Errorf("jsweep: WithAttach does not apply to a submitted job")
	case cfg.nodeCommand != nil:
		return nil, fmt.Errorf("jsweep: WithNodeCommand does not apply to a submitted job")
	case cfg.hosts != nil:
		return nil, fmt.Errorf("jsweep: WithHosts places tcp-launch Jobs — a Client already targets one daemon")
	case cfg.costModel != nil:
		return nil, fmt.Errorf("jsweep: WithSimCostModel requires backend %q", BackendSim)
	}
	h := &JobHandle{res: &RunResult{Backend: BackendInProc}}
	sh, err := c.c.Submit(ctx, serve.Request{
		Spec:    spec,
		Verify:  cfg.verify,
		Timeout: cfg.timeout,
		Log:     cfg.log,
		Progress: func(ev ProgressEvent) {
			h.res.Trail = append(h.res.Trail, ev)
			if cfg.progress != nil {
				cfg.progress(ev)
			}
		},
	})
	if err != nil {
		return nil, err
	}
	h.h = sh
	return h, nil
}

// JobHandle is one submitted job: Wait for its terminal state, Cancel
// to abort it cooperatively (the daemon frees the job's slot either
// way).
type JobHandle struct {
	h   *serve.Handle
	res *RunResult
}

// Job is the daemon-assigned job identifier.
func (h *JobHandle) Job() string { return h.h.Job() }

// QueuePos is the number of jobs that were ahead at admission (0 = the
// job ran immediately).
func (h *JobHandle) QueuePos() int { return h.h.QueuePos() }

// Started unblocks when the daemon moves the job from queued to
// running.
func (h *JobHandle) Started() <-chan struct{} { return h.h.Started() }

// Wait blocks until the job finishes and returns the same unified
// RunResult a local Job.Run produces (Backend reports BackendInProc —
// how the ranks ran on the daemon's host). Cancelling the context sends
// a best-effort Cancel to the daemon and returns the context error.
func (h *JobHandle) Wait(ctx context.Context) (*RunResult, error) {
	nr, err := h.h.Wait(ctx)
	if err != nil {
		return nil, err
	}
	h.res.fillFromNode(nr)
	return h.res, nil
}

// Cancel asks the daemon to abort the job. Safe to call at any point
// and more than once; the job unwinds at its next cancellation check
// and its queue slot frees immediately.
func (h *JobHandle) Cancel(reason string) { h.h.Cancel(reason) }

// SubmitProtocol is the submission-lane protocol version this build
// speaks (a daemon advertising a different one is refused at dial).
const SubmitProtocol = netcomm.SubmitProto

// ServeConfig shapes an embedded serve daemon (the library form of
// cmd/jsweep-serve, used by tests and programs that want an in-process
// daemon).
type ServeConfig struct {
	// Listen is the submission listener address (default 127.0.0.1:0).
	Listen string
	// MaxJobs bounds concurrently running jobs (default 2).
	MaxJobs int
	// QueueDepth bounds admitted-but-waiting jobs (default 8); beyond
	// it submissions get typed queue-full rejections.
	QueueDepth int
	// Slots is the advertised rank capacity for placement (default
	// NumCPU).
	Slots int
	// JobTimeout caps every job's run time (default 10m).
	JobTimeout time.Duration
	// PoolSize bounds the warm solver pool (default 4).
	PoolSize int
	// MetricsAddr, when non-empty, binds an HTTP observability listener
	// serving /metrics (Prometheus text), /healthz, and /statusz (JSON
	// stats + metric snapshot + job trace). Use "127.0.0.1:0" for an
	// ephemeral port; ServeDaemon.MetricsAddr reports the bound address.
	MetricsAddr string
	// Log receives daemon diagnostics (nil = discard).
	Log LogWriter
}

// LogWriter is the io.Writer subset the daemon logs through (an alias
// to keep ServeConfig dependency-light for callers).
type LogWriter = interface {
	Write(p []byte) (n int, err error)
}

// Serve starts an embedded daemon. Close it to drain: running jobs are
// cancelled, queued ones rejected, all resources reaped.
func Serve(cfg ServeConfig) (*ServeDaemon, error) {
	s, err := serve.Start(serve.Config{
		Listen:      cfg.Listen,
		MaxJobs:     cfg.MaxJobs,
		QueueDepth:  cfg.QueueDepth,
		Slots:       cfg.Slots,
		JobTimeout:  cfg.JobTimeout,
		PoolSize:    cfg.PoolSize,
		MetricsAddr: cfg.MetricsAddr,
		Log:         cfg.Log,
	})
	if err != nil {
		return nil, err
	}
	return &ServeDaemon{s: s}, nil
}

// ServeDaemon is a running embedded daemon.
type ServeDaemon struct {
	s *serve.Server
}

// Addr is the daemon's submission address (dial it with NewClient or
// name it in WithHosts).
func (d *ServeDaemon) Addr() string { return d.s.Addr() }

// MetricsAddr is the bound observability address ("" when
// ServeConfig.MetricsAddr was empty).
func (d *ServeDaemon) MetricsAddr() string { return d.s.MetricsAddr() }

// Stats snapshots the daemon's queue, slot, warm-pool and admission
// state — the in-process form of /statusz.
func (d *ServeDaemon) Stats() ServeStats { return d.s.Stats() }

// ServeStats is a daemon health snapshot; see serve.Stats for the
// field-by-field story.
type ServeStats = serve.Stats

// Close drains and stops the daemon.
func (d *ServeDaemon) Close() error { return d.s.Close() }
