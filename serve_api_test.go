package jsweep_test

// End-to-end tests of the remote-submission surface: result-complete
// tcp-launch jobs (the full flux streams back from rank 0's process),
// multi-host placement over serve daemons via WithHosts, and the public
// Client against an embedded daemon. The node child processes re-exec
// this test binary (see TestMain in jsweep_node_test.go).

import (
	"bytes"
	"context"
	"errors"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"jsweep"
)

// syncBuf is a race-safe log sink shared between daemons and launchers.
type syncBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// slowSpec runs long enough for queue and cancellation assertions to
// act before it finishes: an unreachable tolerance on a scattering
// problem iterates for many seconds (the cyclic mesh would reach its
// exact fixed point within milliseconds).
func slowSpec() jsweep.NodeSpec {
	return jsweep.NodeSpec{Mesh: "kobayashi", N: 12, SnOrder: 4, Scatter: true,
		Procs: 2, Workers: 2, Grain: 32, Tol: 1e-300, MaxIters: 1_000_000}
}

// TestLaunchResultComplete: a tcp-launch job now returns everything an
// in-process job does — rank 0 streams the converged flux, balance,
// stats and per-iteration events back to the launcher — on top of the
// cross-process hash certificate.
func TestLaunchResultComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-OS-process solve skipped in -short mode")
	}
	spec := jsweep.NodeSpec{Mesh: "kobayashi", N: 8, SnOrder: 2, Scatter: true,
		Backend: jsweep.BackendTCPLaunch,
		Procs:   2, Workers: 2, Grain: 32, Tol: 1e-8}
	var events int
	var log bytes.Buffer
	job, err := jsweep.NewJob(spec,
		jsweep.WithNodeCommand([]string{os.Args[0]}),
		jsweep.WithVerify(),
		jsweep.WithLog(&log),
		jsweep.WithProgress(func(jsweep.ProgressEvent) { events++ }),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Run(context.Background())
	if err != nil {
		t.Fatalf("launch: %v\nnode output:\n%s", err, log.String())
	}
	if !res.Verified || res.FluxHash == "" {
		t.Fatalf("launch certificate incomplete: %+v", res)
	}
	if res.Result == nil || !res.Result.Converged || len(res.Result.Phi) == 0 {
		t.Fatalf("launch result not result-complete: %+v\nnode output:\n%s", res.Result, log.String())
	}
	if jsweep.FluxHash(res.Result.Phi) != res.FluxHash {
		t.Fatal("streamed flux does not match the certified hash")
	}
	if len(res.Balance) == 0 || res.Stats.ComputeCalls == 0 {
		t.Fatalf("balance/stats missing from streamed result: %+v", res)
	}
	if events == 0 || len(res.Trail) != events {
		t.Fatalf("progress stream: %d events, trail %d", events, len(res.Trail))
	}
	if res.Trail[len(res.Trail)-1].Iteration != res.Result.Iterations {
		t.Fatalf("trail ends at iteration %d, result says %d",
			res.Trail[len(res.Trail)-1].Iteration, res.Result.Iterations)
	}
}

// TestJobWithHosts: the same tcp-launch job placed across two serve
// daemons of one slot each — rank 0 on the first, rank 1 on the second,
// hashes cross-checked, result still complete and verified.
func TestJobWithHosts(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon cluster solve skipped in -short mode")
	}
	var dlog syncBuf
	d1, err := jsweep.Serve(jsweep.ServeConfig{Slots: 1, Log: &dlog})
	if err != nil {
		t.Fatal(err)
	}
	defer d1.Close()
	d2, err := jsweep.Serve(jsweep.ServeConfig{Slots: 1, Log: &dlog})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()

	spec := jsweep.NodeSpec{Mesh: "kobayashi", N: 8, SnOrder: 2, Scatter: true,
		Backend: jsweep.BackendTCPLaunch,
		Procs:   2, Workers: 2, Grain: 32, Tol: 1e-8}
	var events int
	job, err := jsweep.NewJob(spec,
		jsweep.WithHosts(d1.Addr(), d2.Addr()),
		jsweep.WithVerify(),
		jsweep.WithLog(&dlog),
		jsweep.WithProgress(func(jsweep.ProgressEvent) { events++ }),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Run(context.Background())
	if err != nil {
		t.Fatalf("placed launch: %v\nlog:\n%s", err, dlog.String())
	}
	if !res.Verified || res.FluxHash == "" || res.Result == nil || len(res.Result.Phi) == 0 {
		t.Fatalf("placed result incomplete: %+v", res)
	}
	if jsweep.FluxHash(res.Result.Phi) != res.FluxHash {
		t.Fatal("placed flux does not match the certified hash")
	}
	if events == 0 {
		t.Fatal("no progress streamed from the placed cluster")
	}

	// Option/backend mismatches fail at NewJob, same as the rest of the
	// Job API.
	if _, err := jsweep.NewJob(jsweep.NodeSpec{Mesh: "kobayashi"},
		jsweep.WithHosts(d1.Addr())); err == nil {
		t.Fatal("WithHosts on an inproc job accepted")
	}
	if _, err := jsweep.NewJob(spec, jsweep.WithHosts(d1.Addr()),
		jsweep.WithNodeCommand([]string{os.Args[0]})); err == nil {
		t.Fatal("WithHosts + WithNodeCommand accepted")
	}
}

// TestClientSubmit: the public remote-submission surface — same spec,
// same options, same RunResult shape as a local Job, plus typed
// admission errors.
func TestClientSubmit(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon solve skipped in -short mode")
	}
	d, err := jsweep.Serve(jsweep.ServeConfig{MaxJobs: 2, Log: new(bytes.Buffer)})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	c := jsweep.NewClient(d.Addr())
	ctx := context.Background()

	info, err := c.Info(ctx)
	if err != nil || info.Proto != jsweep.SubmitProtocol || info.Slots == 0 {
		t.Fatalf("daemon info: %+v %v", info, err)
	}

	spec := jsweep.NodeSpec{Mesh: "kobayashi", N: 8, SnOrder: 2,
		Procs: 2, Workers: 2, Tol: 1e-8}
	var events int
	h, err := c.Submit(ctx, spec, jsweep.WithVerify(),
		jsweep.WithProgress(func(jsweep.ProgressEvent) { events++ }))
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != jsweep.BackendInProc {
		t.Fatalf("remote job backend = %q, want %q (how the ranks ran)", res.Backend, jsweep.BackendInProc)
	}
	if !res.Verified || res.Result == nil || len(res.Result.Phi) == 0 || len(res.Trail) == 0 || events == 0 {
		t.Fatalf("remote result incomplete: %+v (events=%d)", res, events)
	}
	if jsweep.FluxHash(res.Result.Phi) != res.FluxHash {
		t.Fatal("remote flux does not match its hash")
	}

	// An invalid spec fails client-side with the same typed schema error
	// a local NewJob raises (the daemon re-validates independently; its
	// path is covered by the internal serve tests).
	bad := spec
	bad.Mesh = "torus"
	if _, err = c.Submit(ctx, bad); err == nil || !strings.Contains(err.Error(), "mesh") {
		t.Fatalf("invalid spec: %v, want a schema error naming the field", err)
	}

	// Inapplicable options are rejected before any bytes hit the wire.
	if _, err := c.Submit(ctx, spec, jsweep.WithNodeCommand([]string{"x"})); err == nil {
		t.Fatal("WithNodeCommand on a submitted job accepted")
	}
	if _, err := c.Submit(ctx, spec, jsweep.WithHosts("nowhere:1")); err == nil {
		t.Fatal("WithHosts on a submitted job accepted")
	}
	launchSpec := spec
	launchSpec.Backend = jsweep.BackendTCPLaunch
	if _, err := c.Submit(ctx, launchSpec); err == nil {
		t.Fatal("tcp-launch backend on a submitted job accepted")
	}

	// Cancellation through the public handle frees the daemon.
	hs, err := c.Submit(ctx, slowSpec())
	if err != nil {
		t.Fatal(err)
	}
	<-hs.Started()
	hs.Cancel("test over")
	if _, err := hs.Wait(ctx); err == nil {
		t.Fatal("cancelled job reported success")
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		info, err := c.Info(ctx)
		if err == nil && info.Running == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never freed the cancelled job: %+v", info)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestClientQueueFullTyped: the acceptance scenario on the public
// surface — a one-slot, one-queue-position daemon holds one running and
// one queued job; the third submission comes back as a typed
// *AdmissionError with the queue-full code, having never run.
func TestClientQueueFullTyped(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon solve skipped in -short mode")
	}
	d, err := jsweep.Serve(jsweep.ServeConfig{MaxJobs: 1, QueueDepth: 1, Log: new(bytes.Buffer)})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	c := jsweep.NewClient(d.Addr())
	ctx := context.Background()
	slow := slowSpec()

	h1, err := c.Submit(ctx, slow)
	if err != nil {
		t.Fatal(err)
	}
	<-h1.Started()
	h2, err := c.Submit(ctx, slow)
	if err != nil {
		t.Fatal(err)
	}
	if h2.QueuePos() != 1 {
		t.Fatalf("queued job position = %d, want 1", h2.QueuePos())
	}
	_, err = c.Submit(ctx, slow)
	var adm *jsweep.AdmissionError
	if !errors.As(err, &adm) || adm.Code != jsweep.AdmissionQueueFull {
		t.Fatalf("over-capacity submission: %v, want AdmissionError %s", err, jsweep.AdmissionQueueFull)
	}
	h2.Cancel("test over")
	h1.Cancel("test over")
	h1.Wait(ctx)
	h2.Wait(ctx)
}
