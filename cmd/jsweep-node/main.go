// Command jsweep-node is one rank of a multi-process JSweep cluster: it
// dials the launch's rendezvous service, joins the TCP transport mesh,
// rebuilds the solve from the shared spec, and serves its rank's
// patch-programs through the full source iteration. Every rank ends up
// holding the identical converged flux (allgathered per sweep) and
// prints its bit-pattern hash, so the launcher can certify cross-process
// agreement.
//
// Normally spawned by `jsweep-run -backend tcp`, which passes the spec
// and placement through JSWEEP_NODE_* environment variables. When the
// launcher also hands rank 0 a result-collector address (-report, or
// JSWEEP_NODE_RESULT), the node dials back and streams per-iteration
// progress plus the full terminal result, making the launch
// result-complete; a launcher that went away never fails the solve.
// Manual use:
//
//	jsweep-node -rank 0 -join 127.0.0.1:7777 -cluster dev \
//	    -spec '{"mesh":"kobayashi","n":16,"procs":4,"workers":2}'
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"jsweep/internal/nodespec"
	"jsweep/internal/obs"
	"jsweep/internal/serve"
)

func main() {
	var (
		rank    = flag.Int("rank", envInt(nodespec.EnvRank, -1), "this node's rank")
		join    = flag.String("join", os.Getenv(nodespec.EnvRendezvous), "rendezvous host:port")
		cluster = flag.String("cluster", os.Getenv(nodespec.EnvCluster), "cluster id")
		specStr = flag.String("spec", os.Getenv(nodespec.EnvSpec), "solve spec JSON")
		verify  = flag.Bool("verify", os.Getenv(nodespec.EnvVerify) == "1", "cross-check against the serial reference")
		timeout = flag.Duration("timeout", 60*time.Second, "cluster bring-up timeout")
		report  = flag.String("report", os.Getenv(nodespec.EnvResult), "result-collector address to stream progress and the terminal result to (rank 0)")
		trace   = flag.Bool("trace", os.Getenv(nodespec.EnvTrace) == "1", "record solve phase spans and send them back with the result")
	)
	flag.Parse()

	if *rank < 0 || *join == "" || *specStr == "" {
		fmt.Fprintln(os.Stderr, "jsweep-node: -rank, -join and -spec are required (or the JSWEEP_NODE_* environment)")
		os.Exit(2)
	}
	spec, err := nodespec.UnmarshalSpec(*specStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// Field-level schema validation before any cluster join: a bad spec
	// dies here with typed field errors, not mid-bring-up.
	if err := spec.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "jsweep-node: %v\n", err)
		os.Exit(2)
	}

	// SIGINT/SIGTERM cancel cooperatively: the transport aborts, so the
	// rest of the cluster fails fast instead of waiting on this rank.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	o := nodespec.NodeOptions{
		Rank:       *rank,
		Rendezvous: *join,
		Cluster:    *cluster,
		Timeout:    *timeout,
		Verify:     *verify,
		Log:        os.Stdout,
	}
	if *trace {
		o.Tracer = obs.NewTracer(0)
	}
	_, err = serve.RunNodeCtx(ctx, spec, o, *report)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jsweep-node rank %d: %v\n", *rank, err)
		os.Exit(1)
	}
}

func envInt(key string, def int) int {
	v := os.Getenv(key)
	if v == "" {
		return def
	}
	var n int
	if _, err := fmt.Sscanf(v, "%d", &n); err != nil {
		return def
	}
	return n
}
