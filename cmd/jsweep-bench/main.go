// Command jsweep-bench regenerates the tables and figures of the JSweep
// paper's evaluation section. Each experiment prints the same rows/series
// the paper reports; EXPERIMENTS.md records the paper-vs-measured
// comparison.
//
// Usage:
//
//	jsweep-bench                      # run everything at standard fidelity
//	jsweep-bench -exp fig12a          # one experiment
//	jsweep-bench -fidelity quick      # seconds-per-experiment shapes
//	jsweep-bench -fidelity paper      # full published parameters (slow)
//	jsweep-bench -list                # list experiment ids and mesh families
//	jsweep-bench -job '{"mesh":"ball","cells":4000,"backend":"sim"}'
//	                                  # time one ad-hoc job spec (any backend)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"jsweep"
	"jsweep/internal/bench"
	"jsweep/internal/nodespec"
	"jsweep/internal/registry"
)

func main() {
	var (
		expID    = flag.String("exp", "", "experiment id to run (default: all)")
		fidelity = flag.String("fidelity", "standard", "quick | standard | paper")
		list     = flag.Bool("list", false, "list experiment ids and mesh families, then exit")
		outJSON  = flag.String("out", "", "write the result series as JSON to this file")
		jobSpec  = flag.String("job", "", "time one ad-hoc job: a NodeSpec JSON (mesh from the registry, any backend)")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		fmt.Printf("\nmesh families (-job specs): %s\n", registry.Usage())
		fmt.Printf("-job backends: inproc | tcp-launch | sim (tcp-attach needs attach options — use the library API)\n")
		return
	}
	if *jobSpec != "" {
		if err := runJob(*jobSpec); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	f, err := bench.ParseFidelity(*fidelity)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	exps := bench.All()
	if *expID != "" {
		e, ok := bench.Find(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *expID)
			os.Exit(2)
		}
		exps = []bench.Experiment{e}
	}
	results := map[string][]bench.Point{}
	for _, e := range exps {
		fmt.Printf("=== %s: %s\n", e.ID, e.Title)
		t0 := time.Now()
		pts, err := e.Run(f, os.Stdout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		results[e.ID] = pts
		fmt.Printf("    (%.1fs)\n\n", time.Since(t0).Seconds())
	}
	if *outJSON != "" {
		data, err := json.MarshalIndent(map[string]any{
			"fidelity":    f.String(),
			"experiments": results,
		}, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*outJSON, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *outJSON)
	}
}

// runJob times one ad-hoc declarative job — the quickest way to measure
// a configuration the canned experiments do not cover.
func runJob(specJSON string) error {
	spec, err := nodespec.UnmarshalSpec(specJSON)
	if err != nil {
		return err
	}
	job, err := jsweep.NewJob(spec)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	t0 := time.Now()
	res, err := job.Run(ctx)
	if err != nil {
		return err
	}
	switch res.Backend {
	case jsweep.BackendSim:
		fmt.Printf("job (%s): simulated makespan=%.4fs chunks=%d streams=%d wall=%.3fs\n",
			res.Backend, res.Sim.Makespan, res.Sim.Chunks, res.Sim.Streams, time.Since(t0).Seconds())
	case jsweep.BackendTCPLaunch:
		fmt.Printf("job (%s): flux=%s wall=%.3fs\n", res.Backend, res.FluxHash, res.Wall.Seconds())
	default:
		fmt.Printf("job (%s): iterations=%d residual=%.2e flux=%s wall=%.3fs\n",
			res.Backend, res.Result.Iterations, res.Result.Residual, res.FluxHash, res.Wall.Seconds())
		st := res.Stats
		fmt.Printf("last sweep: computeCalls=%d streams=%d messages=%d\n",
			st.ComputeCalls, st.Streams, st.Runtime.Messages)
	}
	return nil
}
