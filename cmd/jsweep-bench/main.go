// Command jsweep-bench regenerates the tables and figures of the JSweep
// paper's evaluation section. Each experiment prints the same rows/series
// the paper reports; EXPERIMENTS.md records the paper-vs-measured
// comparison.
//
// Usage:
//
//	jsweep-bench                      # run everything at standard fidelity
//	jsweep-bench -exp fig12a          # one experiment
//	jsweep-bench -fidelity quick      # seconds-per-experiment shapes
//	jsweep-bench -fidelity paper      # full published parameters (slow)
//	jsweep-bench -list                # list experiment ids
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"jsweep/internal/bench"
)

func main() {
	var (
		expID    = flag.String("exp", "", "experiment id to run (default: all)")
		fidelity = flag.String("fidelity", "standard", "quick | standard | paper")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		outJSON  = flag.String("out", "", "write the result series as JSON to this file")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	f, err := bench.ParseFidelity(*fidelity)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	exps := bench.All()
	if *expID != "" {
		e, ok := bench.Find(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *expID)
			os.Exit(2)
		}
		exps = []bench.Experiment{e}
	}
	results := map[string][]bench.Point{}
	for _, e := range exps {
		fmt.Printf("=== %s: %s\n", e.ID, e.Title)
		t0 := time.Now()
		pts, err := e.Run(f, os.Stdout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		results[e.ID] = pts
		fmt.Printf("    (%.1fs)\n\n", time.Since(t0).Seconds())
	}
	if *outJSON != "" {
		data, err := json.MarshalIndent(map[string]any{
			"fidelity":    f.String(),
			"experiments": results,
		}, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*outJSON, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *outJSON)
	}
}
