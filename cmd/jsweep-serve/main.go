// Command jsweep-serve is the long-lived per-host sweep daemon: it
// advertises this host's rank capacity, accepts versioned NodeSpec
// submissions over TCP (jsweep.Client, `jsweep-run -serve`, or
// WithHosts placement), and runs them through a multi-tenant FIFO
// queue with bounded admission — over-capacity submissions are refused
// with a typed queue-full rejection instead of piling up. Finished
// solver sessions are parked in a warm pool and reused across jobs
// with bitwise-identical results.
//
//	jsweep-serve -listen :7070 -max-jobs 2 -queue 8
//	jsweep-run -serve workhorse:7070 -mesh kobayashi -n 32 -verify
//
// SIGINT/SIGTERM drain the daemon: running jobs are cancelled
// cooperatively, queued jobs are rejected as shutting-down, and every
// resource is reaped before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"jsweep"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:7070", "submission listener address (use :7070 to serve other hosts)")
		maxJobs     = flag.Int("max-jobs", 2, "jobs running concurrently")
		queue       = flag.Int("queue", 8, "admitted-but-waiting jobs before typed queue-full rejections")
		slots       = flag.Int("slots", runtime.NumCPU(), "advertised rank capacity for multi-host placement")
		jobTimeout  = flag.Duration("job-timeout", 10*time.Minute, "hard cap on any one job's run time")
		pool        = flag.Int("pool", 4, "warm solver sessions kept across jobs (0 disables)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /healthz, /statusz on this address (empty disables)")
	)
	flag.Parse()

	d, err := jsweep.Serve(jsweep.ServeConfig{
		Listen:      *listen,
		MaxJobs:     *maxJobs,
		QueueDepth:  *queue,
		Slots:       *slots,
		JobTimeout:  *jobTimeout,
		PoolSize:    *pool,
		MetricsAddr: *metricsAddr,
		Log:         os.Stdout,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("jsweep-serve: listening on %s (slots=%d max-jobs=%d queue=%d proto=%d)\n",
		d.Addr(), *slots, *maxJobs, *queue, jsweep.SubmitProtocol)
	if a := d.MetricsAddr(); a != "" {
		fmt.Printf("jsweep-serve: metrics on http://%s/metrics\n", a)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	fmt.Println("jsweep-serve: draining (running jobs cancelled, queued jobs rejected)")
	if err := d.Close(); err != nil {
		log.Fatal(err)
	}
}
