// Command jsweep-run solves a discrete-ordinates transport problem with
// the JSweep patch-centric data-driven solver, through the declarative
// Job API: the flags assemble one jsweep.NodeSpec, the backend selects
// how it executes, and Ctrl-C cancels the solve cooperatively (workers
// unblock, child processes die, peers observe the abort).
//
// Backends:
//
//	-backend inproc      all ranks as goroutines of this process over
//	                     the in-memory transport (default; alias: mem);
//	-backend tcp-launch  one jsweep-node OS process per rank on this
//	                     host, wired through a local rendezvous; co-located
//	                     ranks talk over shared-memory rings (-wire auto,
//	                     the default, degrading per pair to Unix sockets
//	                     or TCP), forced rings (-wire shm), Unix-domain
//	                     sockets (-wire uds) or plain TCP-loopback
//	                     (-wire tcp); every rank certified to report the
//	                     identical flux bit pattern (alias: tcp);
//	-backend sim         replay the spec's task system on the
//	                     discrete-event cluster simulator.
//
// Instead of executing locally, the same spec can be handed to running
// jsweep-serve daemons: -serve submits the job to one daemon's queue
// (typed admission rejections and all), and -hosts places a tcp-launch
// cluster's ranks across several daemons.
//
//	jsweep-run -mesh kobayashi -n 32 -sn 4 -procs 2 -workers 4
//	jsweep-run -mesh ball -cells 20000 -groups 2 -prio SLBD+SLBD -coarse
//	jsweep-run -mesh cyclic -cells 2000 -verify   # cyclic sweep graphs, lagged
//	jsweep-run -backend tcp-launch -procs 4 -mesh kobayashi -n 16 -verify
//	jsweep-run -backend sim -mesh kobayashi -n 64 -procs 16
//	jsweep-run -serve workhorse:7070 -mesh kobayashi -n 32 -verify
//	jsweep-run -backend tcp-launch -hosts h1:7070,h2:7070 -procs 4 -mesh kobayashi -n 16
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	"jsweep"
	"jsweep/internal/registry"
)

func main() {
	var (
		meshKind  = flag.String("mesh", "kobayashi", registry.Usage())
		n         = flag.Int("n", 32, "structured cells per axis (kobayashi)")
		cells     = flag.Int("cells", 20000, "approximate tet count (ball/reactor/cyclic)")
		snOrder   = flag.Int("sn", 4, "Sn quadrature order")
		groups    = flag.Int("groups", 1, "energy groups (ball/reactor)")
		scatter   = flag.Bool("scatter", false, "enable scattering (kobayashi)")
		patch     = flag.Int("patch", 500, "cells per patch (ball/reactor); kobayashi uses n/4 blocks")
		procs     = flag.Int("procs", 2, "process ranks")
		workers   = flag.Int("workers", runtime.NumCPU()/2, "workers per process")
		grain     = flag.Int("grain", 64, "vertex clustering grain")
		prio      = flag.String("prio", "SLBD+SLBD", "patch+vertex priority pair")
		coarse    = flag.Bool("coarse", false, "use the coarsened graph across sweeps (inproc backend)")
		reuse     = flag.Bool("reuse", true, "reuse one runtime session (processes, workers, buffers) across sweeps")
		seq       = flag.Bool("seq", false, "run on the sequential engine (inproc backend)")
		verify    = flag.Bool("verify", false, "cross-check against the serial reference")
		tol       = flag.Float64("tol", 1e-7, "source-iteration tolerance")
		progress  = flag.Bool("progress", false, "print one line per source iteration")
		traceFile = flag.String("trace", "", "write the job's span trace (JSONL: build + per-iteration source/sweep/residual phases) to this file")

		backend   = flag.String("backend", "inproc", "inproc | tcp-launch | sim (aliases: mem, tcp)")
		wire      = flag.String("wire", "auto", "wire flavor between ranks: auto | tcp | uds | shm (auto = shared-memory rings between co-located ranks, then Unix sockets, TCP across hosts)")
		nodeBin   = flag.String("node-bin", "", "jsweep-node binary for -backend tcp-launch (default: next to this binary, then PATH)")
		serveAddr = flag.String("serve", "", "submit the job to this jsweep-serve daemon instead of executing locally")
		hosts     = flag.String("hosts", "", "comma-separated jsweep-serve daemons to place -backend tcp-launch ranks on")

		agg        = flag.Bool("agg", false, "aggregate remote streams into multi-stream frames")
		aggStreams = flag.Int("agg-streams", 0, "max streams per batch (0 = default 64)")
		aggBytes   = flag.Int("agg-bytes", 0, "max bytes per batch (0 = sized from payload geometry)")
		aggFlush   = flag.Duration("agg-flush", 0, "batch flush deadline (0 = default 200µs)")
		aggShards  = flag.Int("agg-shards", 0, "frame shards per destination (0 = default 1)")
	)
	flag.Parse()

	spec := jsweep.NodeSpec{
		Mesh: *meshKind, N: *n, Cells: *cells, SnOrder: *snOrder,
		Groups: *groups, Scatter: *scatter, Patch: *patch,
		Backend: parseBackend(*backend), Wire: *wire,
		Procs: *procs, Workers: *workers, Grain: *grain, Prio: *prio,
		ReuseOff: !*reuse, Sequential: *seq, Coarse: *coarse,
		Agg: *agg, AggStreams: *aggStreams, AggBytes: *aggBytes,
		AggShards: *aggShards, AggFlushMicro: int(aggFlush.Microseconds()),
		Tol: *tol,
	}

	progressFn := func(ev jsweep.ProgressEvent) {
		fmt.Printf("iter %3d residual=%.3e computeCalls=%d streams=%d\n",
			ev.Iteration, ev.Residual, ev.Sweep.ComputeCalls, ev.Sweep.Streams)
	}

	// Ctrl-C / SIGTERM cancel the job cooperatively (locally or on the
	// daemon — the submission connection doubles as the job lease).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// -serve hands the spec to a daemon's queue instead of executing it
	// here; the result streams back in the same shape a local run yields.
	if *serveAddr != "" {
		if *hosts != "" {
			log.Fatal("-serve submits one job to one daemon; -hosts places a tcp-launch cluster across daemons — pick one")
		}
		opts := []jsweep.JobOption{}
		if *verify {
			opts = append(opts, jsweep.WithVerify())
		}
		if *progress {
			opts = append(opts, jsweep.WithProgress(progressFn))
		}
		h, err := jsweep.NewClient(*serveAddr).Submit(ctx, spec, opts...)
		if err != nil {
			var adm *jsweep.AdmissionError
			if errors.As(err, &adm) {
				log.Fatalf("daemon %s refused the job (%s): %s", *serveAddr, adm.Code, adm.Detail)
			}
			log.Fatal(err)
		}
		fmt.Printf("submitted %s to %s", h.Job(), *serveAddr)
		if p := h.QueuePos(); p > 0 {
			fmt.Printf(" (queued behind %d)", p)
		}
		fmt.Println()
		res, err := h.Wait(ctx)
		if err != nil {
			log.Fatal(err)
		}
		render(spec, res, *verify)
		dumpTrace(*traceFile, res.Trace)
		return
	}

	opts := []jsweep.JobOption{}
	if *verify {
		opts = append(opts, jsweep.WithVerify())
	}
	if *traceFile != "" {
		if parseBackend(*backend) == jsweep.BackendSim {
			log.Fatal("-trace does not apply to -backend sim (one sweep, virtual time)")
		}
		opts = append(opts, jsweep.WithTrace())
	}
	switch spec.Backend {
	case jsweep.BackendTCPLaunch:
		opts = append(opts, jsweep.WithLog(os.Stdout))
		if *progress {
			// Rank 0 streams its per-iteration events back to us.
			opts = append(opts, jsweep.WithProgress(progressFn))
		}
		if *hosts != "" {
			opts = append(opts, jsweep.WithHosts(strings.Split(*hosts, ",")...))
			fmt.Printf("placing %d ranks across serve daemons %s\n", max(spec.Procs, 1), *hosts)
		} else {
			if *nodeBin != "" {
				opts = append(opts, jsweep.WithNodeCommand([]string{*nodeBin}))
			}
			fmt.Printf("launching %d jsweep-node processes (tcp-launch backend, local rendezvous)\n", max(spec.Procs, 1))
		}
	case jsweep.BackendSim:
		if *verify {
			log.Fatal("-verify does not apply to -backend sim (no flux is computed)")
		}
		if *progress {
			log.Fatal("-progress does not apply to -backend sim (one sweep, virtual time)")
		}
	default:
		if *progress {
			opts = append(opts, jsweep.WithProgress(progressFn))
		}
	}

	job, err := jsweep.NewJob(spec, opts...)
	if err != nil {
		log.Fatal(err)
	}

	res, err := job.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	render(spec, res, *verify)
	dumpTrace(*traceFile, res.Trace)
}

// dumpTrace writes a traced job's span events as JSONL.
func dumpTrace(path string, events []jsweep.TraceEvent) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := jsweep.WriteTrace(f, events); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d events -> %s\n", len(events), path)
}

func render(spec jsweep.NodeSpec, res *jsweep.RunResult, verify bool) {
	switch res.Backend {
	case jsweep.BackendTCPLaunch:
		fmt.Printf("launch ok: %d ranks agree on flux %s (wall %.3fs)\n", spec.Procs, res.FluxHash, res.Wall.Seconds())
		// Rank 0 streams the full result back; a broken stream degrades
		// the launch to this hash-only certificate.
		if r := res.Result; r != nil {
			fmt.Printf("converged=%v iterations=%d residual=%.2e\n", r.Converged, r.Iterations, r.Residual)
			st := res.Stats
			fmt.Printf("last sweep: computeCalls=%d streams=%d coarse=%v\n",
				st.ComputeCalls, st.Streams, st.Coarse)
			for g, rep := range res.Balance {
				fmt.Printf("group %d: production=%.4g absorption=%.4g leakage=%.4g\n",
					g, rep.Production, rep.Absorption, rep.Leakage)
			}
		}
		if verify {
			fmt.Println("verify OK: rank 0 matched the serial reference")
		}
	case jsweep.BackendSim:
		s := res.Sim
		fmt.Printf("simulated sweep: makespan=%.4fs chunks=%d streams=%d (remote %d) bytes=%d\n",
			s.Makespan, s.Chunks, s.Streams, s.RemoteStreams, s.Bytes)
		fmt.Printf("core-seconds: kernel=%.3f graphOp=%.3f pack=%.3f unpack=%.3f route=%.3f idle(worker)=%.3f\n",
			s.Kernel, s.GraphOp, s.Pack, s.Unpack, s.Route, s.WorkerIdle)
		if s.BatchesSent > 0 {
			fmt.Printf("aggregation: batches=%d streams/batch=%.1f deadlineFlushes=%d\n",
				s.BatchesSent, s.StreamsPerBatch, s.FlushOnDeadline)
		}
	default:
		r := res.Result
		fmt.Printf("converged=%v iterations=%d residual=%.2e wall=%.3fs flux=%s\n",
			r.Converged, r.Iterations, r.Residual, res.Wall.Seconds(), res.FluxHash)
		st := res.Stats
		fmt.Printf("last sweep: computeCalls=%d streams=%d coarse=%v\n",
			st.ComputeCalls, st.Streams, st.Coarse)
		if st.LaggedEdges > 0 {
			fmt.Printf("cycle breaking: cellSCCs=%d patchSCCs=%d laggedEdges=%d (old-flux lagging active)\n",
				st.CellSCCs, st.PatchSCCs, st.LaggedEdges)
		}
		if !spec.Sequential && !spec.ReuseOff {
			cum := st.Cumulative
			fmt.Printf("session: roundsRun=%d cycles=%d remoteStreams=%d workerBusy=%.3fs\n",
				cum.RoundsRun, cum.Cycles, cum.RemoteStreams, cum.WorkerBusy.Seconds())
		}
		if spec.Agg {
			rt := st.Runtime
			fmt.Printf("aggregation: remoteStreams=%d batches=%d streams/batch=%.1f deadlineFlushes=%d\n",
				rt.RemoteStreams, rt.BatchesSent, rt.StreamsPerBatch, rt.FlushOnDeadline)
		}
		if verify {
			fmt.Println("verify OK: matched the serial reference")
		}
		for g, rep := range res.Balance {
			fmt.Printf("group %d: production=%.4g absorption=%.4g leakage=%.4g\n",
				g, rep.Production, rep.Absorption, rep.Leakage)
		}
	}
}

// parseBackend maps the flag (with its historical aliases) onto a
// backend selector.
func parseBackend(s string) jsweep.Backend {
	switch s {
	case "mem", "":
		return jsweep.BackendInProc
	case "tcp":
		return jsweep.BackendTCPLaunch
	}
	return jsweep.Backend(s)
}
