// Command jsweep-run solves a discrete-ordinates transport problem with
// the JSweep patch-centric data-driven solver.
//
// Backends:
//
//	-backend mem   all ranks as goroutines of this process over the
//	               in-memory transport (default);
//	-backend tcp   launcher mode — spawn one jsweep-node OS process per
//	               rank on this host, wired through a local rendezvous
//	               over TCP-loopback, and certify that every rank
//	               reports the identical flux bit pattern.
//
//	jsweep-run -mesh kobayashi -n 32 -sn 4 -procs 2 -workers 4
//	jsweep-run -mesh ball -cells 20000 -groups 2 -prio SLBD+SLBD -coarse
//	jsweep-run -mesh cyclic -cells 2000 -verify   # cyclic sweep graphs, lagged
//	jsweep-run -backend tcp -procs 4 -mesh kobayashi -n 16 -verify
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"jsweep"
	"jsweep/internal/nodespec"
)

func main() {
	var (
		meshKind = flag.String("mesh", "kobayashi", "kobayashi | ball | reactor | cyclic")
		n        = flag.Int("n", 32, "structured cells per axis (kobayashi)")
		cells    = flag.Int("cells", 20000, "approximate tet count (ball/reactor/cyclic)")
		snOrder  = flag.Int("sn", 4, "Sn quadrature order")
		groups   = flag.Int("groups", 1, "energy groups (ball/reactor)")
		scatter  = flag.Bool("scatter", false, "enable scattering (kobayashi)")
		patch    = flag.Int("patch", 500, "cells per patch (ball/reactor); kobayashi uses n/4 blocks")
		procs    = flag.Int("procs", 2, "process ranks")
		workers  = flag.Int("workers", runtime.NumCPU()/2, "workers per process")
		grain    = flag.Int("grain", 64, "vertex clustering grain")
		prio     = flag.String("prio", "SLBD+SLBD", "patch+vertex priority pair")
		coarse   = flag.Bool("coarse", false, "use the coarsened graph across sweeps (mem backend)")
		reuse    = flag.Bool("reuse", true, "reuse one runtime session (processes, workers, buffers) across sweeps")
		seq      = flag.Bool("seq", false, "run on the sequential engine (mem backend)")
		verify   = flag.Bool("verify", false, "cross-check against the serial reference")
		tol      = flag.Float64("tol", 1e-7, "source-iteration tolerance")

		backend = flag.String("backend", "mem", "transport backend: mem (goroutines) | tcp (one OS process per rank)")
		nodeBin = flag.String("node-bin", "", "jsweep-node binary for -backend tcp (default: next to this binary, then PATH)")

		agg        = flag.Bool("agg", false, "aggregate remote streams into multi-stream frames")
		aggStreams = flag.Int("agg-streams", 0, "max streams per batch (0 = default 64)")
		aggBytes   = flag.Int("agg-bytes", 0, "max bytes per batch (0 = sized from payload geometry)")
		aggFlush   = flag.Duration("agg-flush", 0, "batch flush deadline (0 = default 200µs)")
		aggShards  = flag.Int("agg-shards", 0, "frame shards per destination (0 = default 1)")
	)
	flag.Parse()

	spec := nodespec.Spec{
		Mesh: *meshKind, N: *n, Cells: *cells, SnOrder: *snOrder,
		Groups: *groups, Scatter: *scatter, Patch: *patch,
		Procs: *procs, Workers: *workers, Grain: *grain, Prio: *prio,
		ReuseOff: !*reuse, Sequential: *seq, Coarse: *coarse,
		Agg: *agg, AggStreams: *aggStreams, AggBytes: *aggBytes,
		AggShards: *aggShards, AggFlushMicro: int(aggFlush.Microseconds()),
		Tol: *tol,
	}

	switch *backend {
	case "tcp":
		runLauncher(spec, *nodeBin, *verify)
	case "mem", "":
		runInProcess(spec, *verify)
	default:
		fmt.Fprintf(os.Stderr, "unknown backend %q (mem|tcp)\n", *backend)
		os.Exit(2)
	}
}

// runLauncher is -backend tcp: one jsweep-node OS process per rank.
func runLauncher(spec nodespec.Spec, nodeBin string, verify bool) {
	var nodeCmd []string
	if nodeBin != "" {
		nodeCmd = []string{nodeBin}
	}
	fmt.Printf("launching %d jsweep-node processes (tcp backend, local rendezvous)\n", spec.Procs)
	res, err := nodespec.LaunchLocal(nodespec.LaunchConfig{
		Spec:        spec,
		NodeCommand: nodeCmd,
		Verify:      verify,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("launch ok: %d ranks agree on flux %s (wall %.3fs)\n", spec.Procs, res.FluxHash, res.Wall.Seconds())
	if verify {
		fmt.Println("verify OK: rank 0 matched the serial reference")
	}
}

// runInProcess is the classic single-OS-process solve (mem backend).
func runInProcess(spec nodespec.Spec, verify bool) {
	prob, d, err := nodespec.Build(spec)
	if err != nil {
		log.Fatal(err)
	}
	opts, err := nodespec.SolverOptions(spec, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mesh=%s cells=%d patches=%d angles=%d groups=%d\n",
		spec.Mesh, prob.M.NumCells(), d.NumPatches(), prob.Quad.NumAngles(), prob.Groups)

	s, err := jsweep.NewSolver(prob, d, opts)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	t0 := time.Now()
	res, err := jsweep.Solve(prob, s, nodespec.IterConfig(spec))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged=%v iterations=%d residual=%.2e wall=%.3fs\n",
		res.Converged, res.Iterations, res.Residual, time.Since(t0).Seconds())
	st := s.LastStats()
	fmt.Printf("last sweep: computeCalls=%d streams=%d coarse=%v\n",
		st.ComputeCalls, st.Streams, st.Coarse)
	if st.LaggedEdges > 0 {
		fmt.Printf("cycle breaking: cellSCCs=%d patchSCCs=%d laggedEdges=%d (old-flux lagging active)\n",
			st.CellSCCs, st.PatchSCCs, st.LaggedEdges)
	}
	if !spec.Sequential && !spec.ReuseOff {
		cum := st.Cumulative
		fmt.Printf("session: roundsRun=%d cycles=%d remoteStreams=%d workerBusy=%.3fs\n",
			cum.RoundsRun, cum.Cycles, cum.RemoteStreams, cum.WorkerBusy.Seconds())
	}
	if spec.Agg {
		r := st.Runtime
		fmt.Printf("aggregation: remoteStreams=%d batches=%d streams/batch=%.1f deadlineFlushes=%d\n",
			r.RemoteStreams, r.BatchesSent, r.StreamsPerBatch, r.FlushOnDeadline)
	}

	if verify {
		ref, err := jsweep.NewReference(prob)
		if err != nil {
			log.Fatal(err)
		}
		want, err := jsweep.Solve(prob, ref, nodespec.IterConfig(spec))
		if err != nil {
			log.Fatal(err)
		}
		for g := range want.Phi {
			for c := range want.Phi[g] {
				if want.Phi[g][c] != res.Phi[g][c] {
					log.Fatalf("verify FAILED: group %d cell %d: %v != %v",
						g, c, res.Phi[g][c], want.Phi[g][c])
				}
			}
		}
		fmt.Println("verify OK: bitwise identical to the serial reference")
	}

	for g := 0; g < prob.Groups; g++ {
		rep := prob.GroupBalance(res.Phi, g)
		fmt.Printf("group %d: production=%.4g absorption=%.4g leakage=%.4g\n",
			g, rep.Production, rep.Absorption, rep.Leakage)
	}
}
