// Command jsweep-run solves a discrete-ordinates transport problem with
// the JSweep patch-centric data-driven solver on the host.
//
//	jsweep-run -mesh kobayashi -n 32 -sn 4 -procs 2 -workers 4
//	jsweep-run -mesh ball -cells 20000 -groups 2 -prio SLBD+SLBD -coarse
//	jsweep-run -mesh reactor -cells 15000 -verify
//	jsweep-run -mesh cyclic -cells 2000 -verify   # cyclic sweep graphs, lagged
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"jsweep"
)

func main() {
	var (
		meshKind = flag.String("mesh", "kobayashi", "kobayashi | ball | reactor | cyclic")
		n        = flag.Int("n", 32, "structured cells per axis (kobayashi)")
		cells    = flag.Int("cells", 20000, "approximate tet count (ball/reactor/cyclic)")
		snOrder  = flag.Int("sn", 4, "Sn quadrature order")
		groups   = flag.Int("groups", 1, "energy groups (ball/reactor)")
		scatter  = flag.Bool("scatter", false, "enable scattering (kobayashi)")
		patch    = flag.Int("patch", 500, "cells per patch (ball/reactor); kobayashi uses n/4 blocks")
		procs    = flag.Int("procs", 2, "simulated MPI processes")
		workers  = flag.Int("workers", runtime.NumCPU()/2, "workers per process")
		grain    = flag.Int("grain", 64, "vertex clustering grain")
		prio     = flag.String("prio", "SLBD+SLBD", "patch+vertex priority pair")
		coarse   = flag.Bool("coarse", false, "use the coarsened graph across sweeps")
		reuse    = flag.Bool("reuse", true, "reuse one runtime session (processes, workers, buffers) across sweeps")
		seq      = flag.Bool("seq", false, "run on the sequential engine")
		verify   = flag.Bool("verify", false, "cross-check against the serial reference")
		tol      = flag.Float64("tol", 1e-7, "source-iteration tolerance")

		agg        = flag.Bool("agg", false, "aggregate remote streams into multi-stream frames")
		aggStreams = flag.Int("agg-streams", 0, "max streams per batch (0 = default 64)")
		aggBytes   = flag.Int("agg-bytes", 0, "max bytes per batch (0 = sized from payload geometry)")
		aggFlush   = flag.Duration("agg-flush", 0, "batch flush deadline (0 = default 200µs)")
		aggShards  = flag.Int("agg-shards", 0, "frame shards per destination (0 = default 1)")
	)
	flag.Parse()

	pair, err := parsePair(*prio)
	if err != nil {
		log.Fatal(err)
	}

	var prob *jsweep.Problem
	var d *jsweep.Decomposition
	switch *meshKind {
	case "kobayashi":
		p, m, err := jsweep.BuildKobayashi(jsweep.KobayashiSpec{
			N: *n, SnOrder: *snOrder, Scattering: *scatter, Scheme: jsweep.Diamond,
		})
		if err != nil {
			log.Fatal(err)
		}
		b := *n / 4
		if b < 1 {
			b = 1
		}
		d, err = m.BlockDecompose(b, b, b)
		if err != nil {
			log.Fatal(err)
		}
		prob = p
	case "ball", "reactor", "cyclic":
		var m *jsweep.Unstructured
		switch *meshKind {
		case "ball":
			m, err = jsweep.BallWithCells(*cells, 10.0)
		case "reactor":
			m, err = jsweep.ReactorWithCells(*cells, 1.0, 1.5)
		default:
			// Twisted rings: every sweep direction's dependency graph is
			// cyclic; the solver lags flux on feedback edges.
			m, err = jsweep.CyclicStackWithCells(*cells)
		}
		if err != nil {
			log.Fatal(err)
		}
		// The generators assign display zones; this CLI solves a uniform
		// material, so flatten them.
		m.SetMaterialFunc(func(jsweep.Vec3) int { return 0 })
		quad, err := jsweep.NewQuadrature(*snOrder)
		if err != nil {
			log.Fatal(err)
		}
		prob = uniformProblem(m, quad, *groups)
		if *meshKind == "cyclic" {
			np := m.NumCells() / *patch
			if np < 2 {
				np = 2
			}
			d, err = jsweep.AzimuthalBlocks(m, np)
		} else {
			d, err = jsweep.PartitionByPatchSize(m, *patch, jsweep.GreedyGraph)
		}
		if err != nil {
			log.Fatal(err)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown mesh kind %q\n", *meshKind)
		os.Exit(2)
	}

	fmt.Printf("mesh=%s cells=%d patches=%d angles=%d groups=%d\n",
		*meshKind, prob.M.NumCells(), d.NumPatches(), prob.Quad.NumAngles(), prob.Groups)

	reuseMode := jsweep.ReuseOn
	if !*reuse {
		reuseMode = jsweep.ReuseOff
	}
	s, err := jsweep.NewSolver(prob, d, jsweep.SolverOptions{
		Procs: *procs, Workers: *workers, Grain: *grain,
		Pair: pair, UseCoarse: *coarse, Sequential: *seq,
		ReuseRuntime: reuseMode,
		Aggregation: jsweep.AggregationConfig{
			Enabled:         *agg,
			MaxBatchStreams: *aggStreams,
			MaxBatchBytes:   *aggBytes,
			FlushInterval:   *aggFlush,
			Shards:          *aggShards,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	t0 := time.Now()
	res, err := jsweep.Solve(prob, s, jsweep.IterConfig{Tolerance: *tol})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged=%v iterations=%d residual=%.2e wall=%.3fs\n",
		res.Converged, res.Iterations, res.Residual, time.Since(t0).Seconds())
	st := s.LastStats()
	fmt.Printf("last sweep: computeCalls=%d streams=%d coarse=%v\n",
		st.ComputeCalls, st.Streams, st.Coarse)
	if st.LaggedEdges > 0 {
		fmt.Printf("cycle breaking: cellSCCs=%d patchSCCs=%d laggedEdges=%d (old-flux lagging active)\n",
			st.CellSCCs, st.PatchSCCs, st.LaggedEdges)
	}
	if !*seq && *reuse {
		cum := st.Cumulative
		fmt.Printf("session: roundsRun=%d cycles=%d remoteStreams=%d workerBusy=%.3fs\n",
			cum.RoundsRun, cum.Cycles, cum.RemoteStreams, cum.WorkerBusy.Seconds())
	}
	if *agg {
		r := st.Runtime
		fmt.Printf("aggregation: remoteStreams=%d batches=%d streams/batch=%.1f deadlineFlushes=%d\n",
			r.RemoteStreams, r.BatchesSent, r.StreamsPerBatch, r.FlushOnDeadline)
	}

	if *verify {
		ref, err := jsweep.NewReference(prob)
		if err != nil {
			log.Fatal(err)
		}
		want, err := jsweep.Solve(prob, ref, jsweep.IterConfig{Tolerance: *tol})
		if err != nil {
			log.Fatal(err)
		}
		for g := range want.Phi {
			for c := range want.Phi[g] {
				if want.Phi[g][c] != res.Phi[g][c] {
					log.Fatalf("verify FAILED: group %d cell %d: %v != %v",
						g, c, res.Phi[g][c], want.Phi[g][c])
				}
			}
		}
		fmt.Println("verify OK: bitwise identical to the serial reference")
	}

	for g := 0; g < prob.Groups; g++ {
		rep := prob.GroupBalance(res.Phi, g)
		fmt.Printf("group %d: production=%.4g absorption=%.4g leakage=%.4g\n",
			g, rep.Production, rep.Absorption, rep.Leakage)
	}
}

func parsePair(s string) (jsweep.PriorityPair, error) {
	parts := strings.Split(s, "+")
	if len(parts) != 2 {
		return jsweep.PriorityPair{}, fmt.Errorf("priority pair must be PATCH+VERTEX (got %q)", s)
	}
	parse := func(name string) (jsweep.PriorityStrategy, error) {
		switch strings.ToUpper(name) {
		case "BFS":
			return jsweep.BFS, nil
		case "LDCP":
			return jsweep.LDCP, nil
		case "SLBD":
			return jsweep.SLBD, nil
		}
		return 0, fmt.Errorf("unknown strategy %q", name)
	}
	p, err := parse(parts[0])
	if err != nil {
		return jsweep.PriorityPair{}, err
	}
	v, err := parse(parts[1])
	if err != nil {
		return jsweep.PriorityPair{}, err
	}
	return jsweep.PriorityPair{Patch: p, Vertex: v}, nil
}

func uniformProblem(m jsweep.Mesh, quad *jsweep.QuadratureSet, groups int) *jsweep.Problem {
	sigT := make([]float64, groups)
	src := make([]float64, groups)
	scat := make([][]float64, groups)
	for g := 0; g < groups; g++ {
		sigT[g] = 0.4 + 0.2*float64(g)
		scat[g] = make([]float64, groups)
		scat[g][g] = 0.1
		if g+1 < groups {
			scat[g][g+1] = 0.05
		}
	}
	src[0] = 1.0
	return &jsweep.Problem{
		M:      m,
		Mats:   []jsweep.Material{{Name: "uniform", SigmaT: sigT, SigmaS: scat, Source: src}},
		Quad:   quad,
		Groups: groups,
		Scheme: jsweep.Step,
	}
}
