// jsweepvet is the multichecker for jsweep's own invariants: the
// analyzers in internal/analysis (pooledbuf, detmap, ctxloop,
// lockedfield, errdrop, metricname) run over the packages matching the
// given go-list patterns and report every violation of the codebase's
// load-bearing conventions. CI runs `jsweepvet ./...` as part of
// `make vet`; a non-empty finding set exits 1.
//
// Usage:
//
//	jsweepvet [-only name,name] [-list] [patterns ...]
//
// With no patterns, ./... is checked. Findings print as
// file:line:col: message (analyzer). Suppress a reviewed finding with
// a //jsweep:<analyzer>-ok comment on (or directly above) its line.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"jsweep/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("jsweepvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	suite := analysis.All
	if *only != "" {
		var missing []string
		suite, missing = analysis.ByName(strings.Split(*only, ",")...)
		if len(missing) > 0 {
			fmt.Fprintf(stderr, "jsweepvet: unknown analyzers: %s\n", strings.Join(missing, ", "))
			return 2
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "jsweepvet: %v\n", err)
		return 2
	}
	pkgs, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "jsweepvet: %v\n", err)
		return 2
	}
	diags, err := analysis.RunAnalyzers(pkgs, suite)
	if err != nil {
		fmt.Fprintf(stderr, "jsweepvet: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "jsweepvet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
