package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListPrintsEveryAnalyzer(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exit = %d, stderr: %s", code, errb.String())
	}
	for _, name := range []string{"pooledbuf", "detmap", "ctxloop", "lockedfield", "errdrop", "metricname"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-only", "detmap,nosuch"}, &out, &errb); code != 2 {
		t.Fatalf("unknown analyzer exit = %d", code)
	}
	if !strings.Contains(errb.String(), "nosuch") {
		t.Errorf("stderr should name the unknown analyzer: %s", errb.String())
	}
}

func TestBadFlagIsUsageError(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag exit = %d", code)
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"../../internal/obs"}, &out, &errb); code != 0 {
		t.Fatalf("clean package exit = %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if out.String() != "" {
		t.Errorf("clean run should print nothing, got: %s", out.String())
	}
}

// TestFindingsExitOne synthesizes a throwaway module named jsweep with
// a detmap violation in internal/graph and checks the driver reports
// it and exits 1 — the CI contract that re-introducing an unsorted map
// range fails the build.
func TestFindingsExitOne(t *testing.T) {
	dir := t.TempDir()
	graph := filepath.Join(dir, "internal", "graph")
	if err := os.MkdirAll(graph, 0o755); err != nil {
		t.Fatal(err)
	}
	gomod := "module jsweep\n\ngo 1.23.0\n"
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte(gomod), 0o644); err != nil {
		t.Fatal(err)
	}
	src := `package graph

func Emit(m map[int]int, f func(int)) {
	for k := range m {
		f(k)
	}
}
`
	if err := os.WriteFile(filepath.Join(graph, "graph.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(cwd); err != nil {
			t.Fatal(err)
		}
	}()
	var out, errb strings.Builder
	if code := run(nil, &out, &errb); code != 1 {
		t.Fatalf("violating module exit = %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "range over map in bitwise-pinned package") {
		t.Errorf("finding not reported:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "finding(s)") {
		t.Errorf("summary line missing: %s", errb.String())
	}
}
