// Benchmarks regenerating every table and figure of the paper's evaluation
// (§VI) at Quick fidelity, plus micro-benchmarks of the hot building
// blocks. Run the full-size experiments with cmd/jsweep-bench
// (-fidelity standard|paper); EXPERIMENTS.md records paper-vs-measured.
package jsweep_test

import (
	"io"
	"testing"

	"jsweep"
	"jsweep/internal/bench"
	"jsweep/internal/core"
	"jsweep/internal/graph"
	"jsweep/internal/mesh"
	"jsweep/internal/partition"
	"jsweep/internal/priority"
	"jsweep/internal/sweep"
	"jsweep/internal/transport"
)

func benchExperiment(b *testing.B, id string) {
	e, ok := bench.Find(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(bench.Quick, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per paper table/figure.

func BenchmarkFig09aClusterGrainStructured(b *testing.B)  { benchExperiment(b, "fig9a") }
func BenchmarkFig09bPriorityStructured(b *testing.B)      { benchExperiment(b, "fig9b") }
func BenchmarkFig12aKobayashi400Strong(b *testing.B)      { benchExperiment(b, "fig12a") }
func BenchmarkFig12bKobayashi800Strong(b *testing.B)      { benchExperiment(b, "fig12b") }
func BenchmarkFig13aHyperParamsUnstructured(b *testing.B) { benchExperiment(b, "fig13a") }
func BenchmarkFig13bPriorityUnstructured(b *testing.B)    { benchExperiment(b, "fig13b") }
func BenchmarkFig14aBallSmallStrong(b *testing.B)         { benchExperiment(b, "fig14a") }
func BenchmarkFig14bBallLargeStrong(b *testing.B)         { benchExperiment(b, "fig14b") }
func BenchmarkFig15WeakScaling(b *testing.B)              { benchExperiment(b, "fig15") }
func BenchmarkFig16Breakdown(b *testing.B)                { benchExperiment(b, "fig16") }
func BenchmarkFig17aVsJASMIN(b *testing.B)                { benchExperiment(b, "fig17a") }
func BenchmarkFig17bVsJAUMIN(b *testing.B)                { benchExperiment(b, "fig17b") }
func BenchmarkTableIComparison(b *testing.B)              { benchExperiment(b, "tab1") }
func BenchmarkCoarsenedGraphAblation(b *testing.B)        { benchExperiment(b, "coarse") }
func BenchmarkRealRuntimeSweep(b *testing.B)              { benchExperiment(b, "real") }
func BenchmarkIterationSessionReuse(b *testing.B)         { benchExperiment(b, "iter") }

// Micro-benchmarks of the building blocks.

func kobaFixture(b *testing.B, n int) (*jsweep.Problem, *jsweep.Decomposition) {
	b.Helper()
	prob, m, err := jsweep.BuildKobayashi(jsweep.KobayashiSpec{N: n, SnOrder: 2, Scheme: jsweep.Diamond})
	if err != nil {
		b.Fatal(err)
	}
	d, err := m.BlockDecompose(n/2, n/2, n/2)
	if err != nil {
		b.Fatal(err)
	}
	return prob, d
}

func flatQ(prob *jsweep.Problem) [][]float64 {
	q := prob.NewFlux()
	zero := prob.NewFlux()
	scratch := make([]float64, prob.Groups)
	for c := 0; c < prob.M.NumCells(); c++ {
		prob.EmissionDensity(mesh.CellID(c), zero, scratch)
		for g := 0; g < prob.Groups; g++ {
			q[g][c] = scratch[g]
		}
	}
	return q
}

// BenchmarkKernelSolveCell measures the per-cell transport kernel.
func BenchmarkKernelSolveCell(b *testing.B) {
	prob, _ := kobaFixture(b, 8)
	omega := prob.Quad.Directions[0].Omega
	qCell := []float64{1.0}
	psiIn := make([]float64, 6)
	psiOut := make([]float64, 6)
	psiBar := make([]float64, 1)
	c := mesh.CellID(prob.M.NumCells() / 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prob.SolveCell(c, omega, qCell, psiIn, psiOut, psiBar)
	}
}

// BenchmarkReferenceSweep measures the serial ground-truth executor.
func BenchmarkReferenceSweep(b *testing.B) {
	prob, _ := kobaFixture(b, 16)
	ref, err := sweep.NewReference(prob)
	if err != nil {
		b.Fatal(err)
	}
	q := flatQ(prob)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ref.Sweep(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJSweepSolver measures a full data-driven sweep on the threaded
// runtime.
func BenchmarkJSweepSolver(b *testing.B) {
	prob, d := kobaFixture(b, 16)
	q := flatQ(prob)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := jsweep.NewSolver(prob, d, jsweep.SolverOptions{Procs: 2, Workers: 2, Grain: 64})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Sweep(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoarseSweep measures the coarsened-graph fast path (§V-E).
func BenchmarkCoarseSweep(b *testing.B) {
	prob, d := kobaFixture(b, 16)
	q := flatQ(prob)
	s, err := jsweep.NewSolver(prob, d, jsweep.SolverOptions{Sequential: true, Grain: 64, UseCoarse: true})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Sweep(q); err != nil { // build CG
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Sweep(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamCodec measures the wire pack/unpack path.
func BenchmarkStreamCodec(b *testing.B) {
	streams := make([]core.Stream, 16)
	for i := range streams {
		streams[i] = core.Stream{
			SrcPatch: 1, SrcTask: 2, TgtPatch: 3, TgtTask: 4,
			Payload: make([]byte, 512),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := core.EncodeStreams(nil, streams)
		if _, err := core.DecodeStreams(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPartitionRCB measures unstructured partitioning.
func BenchmarkPartitionRCB(b *testing.B) {
	m, err := jsweep.Ball(10, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.ByCount(m, 16, partition.RCB); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPatchGraphBuild measures sweep-DAG construction.
func BenchmarkPatchGraphBuild(b *testing.B) {
	prob, d := kobaFixture(b, 16)
	omega := prob.Quad.Directions[0].Omega
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graph.BuildAllPatchGraphs(d, omega, 0)
	}
}

// BenchmarkPatchPriorities measures the §V-D priority computations.
func BenchmarkPatchPriorities(b *testing.B) {
	prob, d := kobaFixture(b, 16)
	dag := graph.BuildPatchDAG(d, prob.Quad.Directions[0].Omega)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		priority.PatchPriorities(priority.SLBD, dag)
	}
}

// BenchmarkSourceIteration measures a converging multi-sweep solve with
// scattering.
func BenchmarkSourceIteration(b *testing.B) {
	prob, _, err := jsweep.BuildKobayashi(jsweep.KobayashiSpec{N: 10, SnOrder: 2, Scattering: true, Scheme: jsweep.Diamond})
	if err != nil {
		b.Fatal(err)
	}
	ref, err := sweep.NewReference(prob)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := transport.SourceIterate(prob, ref, transport.IterConfig{Tolerance: 1e-6}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSourceIterationSolver measures a full data-driven source iteration
// (Kobayashi with scattering) under the given session-reuse mode.
func benchSourceIterationSolver(b *testing.B, mode jsweep.ReuseMode) {
	prob, m, err := jsweep.BuildKobayashi(jsweep.KobayashiSpec{N: 12, SnOrder: 2, Scattering: true, Scheme: jsweep.Diamond})
	if err != nil {
		b.Fatal(err)
	}
	d, err := m.BlockDecompose(3, 3, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := jsweep.NewSolver(prob, d, jsweep.SolverOptions{
			Procs: 2, Workers: 2, Grain: 64, ReuseRuntime: mode,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := transport.SourceIterate(prob, s, transport.IterConfig{Tolerance: 1e-6}); err != nil {
			b.Fatal(err)
		}
		s.Close()
	}
}

// BenchmarkSourceIterationReuseOn / ...Off compare one persistent runtime
// session against rebuild-per-sweep over a full multi-sweep solve.
func BenchmarkSourceIterationReuseOn(b *testing.B)  { benchSourceIterationSolver(b, jsweep.ReuseOn) }
func BenchmarkSourceIterationReuseOff(b *testing.B) { benchSourceIterationSolver(b, jsweep.ReuseOff) }
