// Package jsweep is the public API of the JSweep reproduction: a
// patch-centric data-driven framework for parallel sweep computations on
// structured and unstructured meshes (Yan, Yang, Zhang, Mo — "JSweep: A
// Patch-centric Data-driven Approach for Parallel Sweeps on Large-scale
// Meshes", ICPP).
//
// The package re-exports the library's building blocks behind one import
// path:
//
//   - meshes and generators (structured grids, tetrahedral balls and
//     reactor cores), patch decompositions and partitioners;
//   - Sn angular quadrature and the discrete-ordinates transport problem;
//   - the patch-centric abstraction (PatchProgram / Stream) and its
//     parallel runtime;
//   - the JSweep sweep solver (vertex clustering, two-level priorities,
//     coarsened graphs) plus the serial reference and the KBA and BSP
//     baselines;
//   - the simulated cluster used to reproduce the paper's large-scale
//     evaluation.
//
// Quick start (see examples/quickstart) — the declarative Job API is
// the one context-aware entry point across the in-process, TCP-cluster
// and simulated backends:
//
//	spec := jsweep.NodeSpec{Mesh: "kobayashi", N: 40, SnOrder: 4, Procs: 2, Workers: 4}
//	job, _ := jsweep.NewJob(spec, jsweep.WithVerify())
//	res, _ := job.Run(ctx) // spec.Backend: inproc | tcp-launch | tcp-attach | sim
//
// The imperative building blocks underneath stay available:
//
//	prob, m, _ := jsweep.BuildKobayashi(jsweep.KobayashiSpec{N: 40, SnOrder: 4})
//	d, _ := m.BlockDecompose(10, 10, 10)
//	s, _ := jsweep.NewSolver(prob, d, jsweep.SolverOptions{Procs: 2, Workers: 4})
//	res, _ := jsweep.Solve(prob, s, jsweep.IterConfig{})
package jsweep

import (
	"jsweep/internal/bsp"
	"jsweep/internal/core"
	"jsweep/internal/geom"
	"jsweep/internal/graph"
	"jsweep/internal/kba"
	"jsweep/internal/kobayashi"
	"jsweep/internal/mesh"
	"jsweep/internal/meshgen"
	"jsweep/internal/partition"
	"jsweep/internal/priority"
	"jsweep/internal/ptrace"
	"jsweep/internal/quadrature"
	"jsweep/internal/runtime"
	"jsweep/internal/simcluster"
	"jsweep/internal/sweep"
	"jsweep/internal/transport"
)

// Geometry and mesh types.
type (
	// Vec3 is a 3-D vector/point.
	Vec3 = geom.Vec3
	// Mesh is the abstract cell/face mesh interface.
	Mesh = mesh.Mesh
	// CellID identifies a mesh cell.
	CellID = mesh.CellID
	// PatchID identifies a patch of a decomposition.
	PatchID = mesh.PatchID
	// Structured3D is a regular hexahedral grid.
	Structured3D = mesh.Structured3D
	// Unstructured is a tetrahedral mesh.
	Unstructured = mesh.Unstructured
	// Decomposition is a patch decomposition of a mesh.
	Decomposition = mesh.Decomposition
)

// NewStructured3D builds a structured nx×ny×nz grid over the box
// [origin, origin+extent].
func NewStructured3D(nx, ny, nz int, origin, extent Vec3) (*Structured3D, error) {
	return mesh.NewStructured3D(nx, ny, nz, origin, extent)
}

// Ball generates a tetrahedral ball mesh (lattice resolution n across the
// diameter).
func Ball(n int, radius float64) (*Unstructured, error) { return meshgen.Ball(n, radius) }

// BallWithCells generates a ball with at least targetCells tetrahedra.
func BallWithCells(targetCells int, radius float64) (*Unstructured, error) {
	return meshgen.BallWithCells(targetCells, radius)
}

// Reactor generates a reactor-core-like cylindrical tet mesh with material
// zones.
func Reactor(n int, radius, height float64) (*Unstructured, error) {
	return meshgen.Reactor(n, radius, height)
}

// ReactorWithCells generates a reactor mesh with at least targetCells
// tetrahedra.
func ReactorWithCells(targetCells int, radius, height float64) (*Unstructured, error) {
	return meshgen.ReactorWithCells(targetCells, radius, height)
}

// BoxTets generates a conforming tetrahedral box mesh.
func BoxTets(nx, ny, nz int, origin, extent Vec3) (*Unstructured, error) {
	return meshgen.Box(nx, ny, nz, origin, extent)
}

// TwistedRing generates a twisted-ring tet mesh whose sweep graphs are
// cyclic for steep-enough tilts (tilt 0 gives an ordinary acyclic ring);
// the solver breaks such cycles by lagging flux on feedback edges.
func TwistedRing(nSeg int, r0, r1, h, tilt float64) (*Unstructured, error) {
	return meshgen.TwistedRing(nSeg, r0, r1, h, tilt)
}

// CyclicRing generates a twisted ring whose sweep graph is cyclic for
// every S2 level-symmetric quadrature direction.
func CyclicRing(nSeg int) (*Unstructured, error) { return meshgen.CyclicRing(nSeg) }

// CyclicStack generates a stack of cyclic rings (one disconnected mesh).
func CyclicStack(nSeg, rings int) (*Unstructured, error) { return meshgen.CyclicStack(nSeg, rings) }

// CyclicStackWithCells generates a cyclic stack with at least targetCells
// tetrahedra.
func CyclicStackWithCells(targetCells int) (*Unstructured, error) {
	return meshgen.CyclicStackWithCells(targetCells)
}

// AzimuthalBlocks decomposes an azimuth-major ring mesh into contiguous
// azimuthal arcs (the decomposition that makes ring cycles cross patch
// boundaries).
func AzimuthalBlocks(m Mesh, numPatches int) (*Decomposition, error) {
	return meshgen.AzimuthalBlocks(m, numPatches)
}

// Partitioning.
type (
	// PartitionMethod selects an unstructured partitioner.
	PartitionMethod = partition.Method
	// SFCKind selects a space-filling curve.
	SFCKind = partition.SFCKind
)

// Partitioner choices.
const (
	RCB         = partition.RCB
	GreedyGraph = partition.GreedyGraph
	Morton      = partition.Morton
	Hilbert     = partition.Hilbert
)

// PartitionByPatchSize decomposes a mesh into patches of ~patchSize cells.
func PartitionByPatchSize(m Mesh, patchSize int, method PartitionMethod) (*Decomposition, error) {
	return partition.ByPatchSize(m, patchSize, method)
}

// PartitionByCount decomposes a mesh into exactly numPatches patches.
func PartitionByCount(m Mesh, numPatches int, method PartitionMethod) (*Decomposition, error) {
	return partition.ByCount(m, numPatches, method)
}

// Quadrature and transport.
type (
	// QuadratureSet is an Sn angular quadrature.
	QuadratureSet = quadrature.Set
	// Direction is one discrete ordinate.
	Direction = quadrature.Direction
	// Material holds multigroup cross sections and sources.
	Material = transport.Material
	// Problem is a complete Sn transport problem.
	Problem = transport.Problem
	// Scheme selects the spatial differencing.
	Scheme = transport.Scheme
	// IterConfig controls source iteration.
	IterConfig = transport.IterConfig
	// Result is a converged transport solution.
	Result = transport.Result
	// SweepExecutor performs one full-angle transport sweep.
	SweepExecutor = transport.SweepExecutor
	// CycleLagger is implemented by executors that break cyclic sweep
	// dependencies by lagging flux on feedback edges; Solve keeps
	// iterating until the lagged fluxes converge.
	CycleLagger = transport.CycleLagger
)

// Differencing schemes.
const (
	Step    = transport.Step
	Diamond = transport.Diamond
)

// NewQuadrature returns the Sn quadrature set of the given even order.
func NewQuadrature(order int) (*QuadratureSet, error) { return quadrature.New(order) }

// Solve runs source iteration with the given sweep executor.
func Solve(p *Problem, ex SweepExecutor, cfg IterConfig) (*Result, error) {
	return transport.SourceIterate(p, ex, cfg)
}

// Kobayashi benchmark problems.
type (
	// KobayashiSpec parameterizes the Kobayashi benchmark build.
	KobayashiSpec = kobayashi.Spec
)

// BuildKobayashi constructs the Kobayashi problem-1 benchmark (§VI-A).
func BuildKobayashi(spec KobayashiSpec) (*Problem, *Structured3D, error) {
	return kobayashi.Build(spec)
}

// Patch-centric abstraction (the paper's primary contribution).
type (
	// PatchProgram is the five-function reentrant program interface.
	PatchProgram = core.PatchProgram
	// Stream is the routable inter-program message.
	Stream = core.Stream
	// ProgramKey identifies a (patch, task) program.
	ProgramKey = core.ProgramKey
	// TaskTag identifies a task on a patch.
	TaskTag = core.TaskTag
	// Engine is the sequential reference scheduler.
	Engine = core.Engine
	// Runtime executes patch-programs on processes × workers.
	Runtime = runtime.Runtime
	// RuntimeConfig shapes the runtime.
	RuntimeConfig = runtime.Config
	// RuntimeStats aggregates runtime execution statistics.
	RuntimeStats = runtime.Stats
	// AggregationConfig holds the outbound message-aggregation knobs
	// (paper §IV): batch size, byte and deadline flush triggers, shards.
	AggregationConfig = runtime.AggregationConfig
	// TerminationMode selects the distributed termination detector.
	TerminationMode = runtime.TerminationMode
)

// Termination modes.
const (
	WorkloadTermination = runtime.Workload
	SafraTermination    = runtime.Safra
)

// NewEngine returns the sequential patch-program scheduler.
func NewEngine() *Engine { return core.NewEngine() }

// NewRuntime returns the parallel patch-program runtime.
func NewRuntime(cfg RuntimeConfig) (*Runtime, error) { return runtime.New(cfg) }

// Priorities (§V-D).
type (
	// PriorityStrategy is a scheduling heuristic (BFS/LDCP/SLBD).
	PriorityStrategy = priority.Strategy
	// PriorityPair is a two-level patch+vertex strategy.
	PriorityPair = priority.Pair
)

// Priority strategies.
const (
	BFS  = priority.BFS
	LDCP = priority.LDCP
	SLBD = priority.SLBD
)

// Sweep solver and baselines.
type (
	// Solver is the JSweep data-driven sweep solver (§V).
	Solver = sweep.Solver
	// SolverOptions configures the solver.
	SolverOptions = sweep.Options
	// ReuseMode selects the solver's session-reuse policy: with reuse on
	// (the default) one runtime session — processes, worker goroutines,
	// transport, program objects, pooled buffers — persists across the
	// sweeps of a source iteration. Call Solver.Close when done.
	ReuseMode = sweep.ReuseMode
	// SweepStats describes the cost of the last sweep.
	SweepStats = sweep.SweepStats
	// Reference is the serial ground-truth executor.
	Reference = sweep.Reference
	// KBAExecutor is the Koch-Baker-Alcouffe structured baseline.
	KBAExecutor = kba.Executor
	// KBAModel is the analytic KBA performance model.
	KBAModel = kba.Model
	// BSPExecutor is the bulk-synchronous baseline.
	BSPExecutor = bsp.Executor
	// CoarseGraph is the cached coarsened task graph (§V-E).
	CoarseGraph = graph.CoarseGraph
)

// Session-reuse policies for SolverOptions.ReuseRuntime.
const (
	// ReuseAuto is the default: reuse on.
	ReuseAuto = sweep.ReuseAuto
	// ReuseOn keeps one persistent runtime session across Sweep calls.
	ReuseOn = sweep.ReuseOn
	// ReuseOff rebuilds programs and runtime per sweep (the validation
	// baseline).
	ReuseOff = sweep.ReuseOff
)

// NewSolver prepares the JSweep solver over a decomposition.
func NewSolver(p *Problem, d *Decomposition, opts SolverOptions) (*Solver, error) {
	return sweep.NewSolver(p, d, opts)
}

// NewReference returns the serial reference executor.
func NewReference(p *Problem) (*Reference, error) { return sweep.NewReference(p) }

// NewKBA returns the KBA baseline executor (structured meshes).
func NewKBA(p *Problem, px, py, kPlanes int) (*KBAExecutor, error) {
	return kba.New(p, px, py, kPlanes)
}

// NewBSP returns the BSP baseline executor.
func NewBSP(p *Problem, d *Decomposition) (*BSPExecutor, error) { return bsp.New(p, d) }

// Particle tracing — the second data-driven component on the abstraction
// (paper §VIII).
type (
	// Particle is one traced particle.
	Particle = ptrace.Particle
	// TraceResult holds per-cell track-length tallies.
	TraceResult = ptrace.Result
)

// TraceParticles runs a parallel particle trace over a decomposition
// (Safra termination — the workload is not known in advance).
func TraceParticles(d *Decomposition, particles []Particle, procs, workers int) (*TraceResult, error) {
	return ptrace.Trace(d, particles, procs, workers)
}

// SourceParticles generates deterministic quasi-random particles from a
// cell centroid.
func SourceParticles(m Mesh, cell CellID, n int, pathLength float64) []Particle {
	return ptrace.SourceParticles(m, cell, n, pathLength)
}

// Simulated cluster (the paper's large-scale evaluation substrate).
type (
	// SimWorkload is a simulated sweep task system.
	SimWorkload = simcluster.Workload
	// SimConfig selects the simulated runtime shape and policy.
	SimConfig = simcluster.Config
	// SimAggregation holds the simulated message-aggregation knobs.
	SimAggregation = simcluster.Aggregation
	// SimCostModel holds the calibrated machine constants.
	SimCostModel = simcluster.CostModel
	// SimResult is a simulated outcome with its cost breakdown.
	SimResult = simcluster.Result
)

// DefaultCostModel returns the calibrated simulation constants.
func DefaultCostModel(groups int) SimCostModel { return simcluster.DefaultCostModel(groups) }

// SimulateSweep runs the discrete-event cluster simulation.
func SimulateSweep(w *SimWorkload, cfg SimConfig, cm SimCostModel) (*SimResult, error) {
	return simcluster.Simulate(w, cfg, cm)
}

// SimulateBSPSweep runs the bulk-synchronous comparator simulation.
func SimulateBSPSweep(w *SimWorkload, cfg SimConfig, cm SimCostModel) (*SimResult, error) {
	return simcluster.SimulateBSP(w, cfg, cm)
}

// StructuredSimWorkload builds the simulated task system of a structured
// sweep (bx×by×bz patch lattice).
func StructuredSimWorkload(bx, by, bz int, cellsPerPatch int64, procs, angles, groups int) (*SimWorkload, error) {
	return simcluster.StructuredWorkload(bx, by, bz, cellsPerPatch, procs, angles, groups)
}

// UnstructuredSimWorkload builds a simulated task system from a
// patch-granular coarse mesh.
func UnstructuredSimWorkload(m Mesh, cellsPerPatch int64, procs, angles, groups int) (*SimWorkload, error) {
	return simcluster.UnstructuredWorkload(m, cellsPerPatch, procs, angles, groups)
}
