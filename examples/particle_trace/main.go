// Particle tracing on the patch-centric runtime — the second data-driven
// component mentioned in the paper's conclusions (§VIII). Particles
// ray-march from a source cell through a tetrahedral ball; each patch
// advances its own particles and streams emigrants to neighbouring
// patches; the runtime's Safra detector notices global termination (the
// total workload is unknowable in advance — the opposite regime from
// sweeps).
//
//	go run ./examples/particle_trace [-particles 5000] [-path 8]
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"time"

	"jsweep"
)

func main() {
	var (
		nParticles = flag.Int("particles", 5000, "number of source particles")
		path       = flag.Float64("path", 8.0, "path length per particle")
		cells      = flag.Int("cells", 8000, "approximate ball tet count")
	)
	flag.Parse()

	m, err := jsweep.BallWithCells(*cells, 5.0)
	if err != nil {
		log.Fatal(err)
	}
	d, err := jsweep.PartitionByPatchSize(m, 400, jsweep.RCB)
	if err != nil {
		log.Fatal(err)
	}

	// Source: the cell nearest the ball centre.
	src := jsweep.CellID(0)
	for c := 0; c < m.NumCells(); c++ {
		if m.CellCenter(jsweep.CellID(c)).Norm() < m.CellCenter(src).Norm() {
			src = jsweep.CellID(c)
		}
	}
	parts := jsweep.SourceParticles(m, src, *nParticles, *path)
	fmt.Printf("tracing %d particles × path %.1f from cell %d (%d tets, %d patches)\n",
		len(parts), *path, src, m.NumCells(), d.NumPatches())

	workers := runtime.NumCPU() - 1
	if workers < 1 {
		workers = 1
	}
	t0 := time.Now()
	res, err := jsweep.TraceParticles(d, parts, 2, workers)
	if err != nil {
		log.Fatal(err)
	}
	wall := time.Since(t0)

	var tallySum float64
	for _, v := range res.Tally {
		tallySum += v
	}
	fmt.Printf("done in %.3fs: tracked %.1f path units, %.1f deposited, %.1f leaked (%.1f%%)\n",
		wall.Seconds(), res.TotalTracked, tallySum, res.Leaked, 100*res.Leaked/res.TotalTracked)
	if diff := tallySum + res.Leaked - res.TotalTracked; diff > 1e-6*res.TotalTracked {
		log.Fatalf("conservation violated by %v", diff)
	}
	fmt.Println("track-length conservation holds")

	// Radial track-length density falls off from the source.
	var shells [5]struct {
		sum, vol float64
	}
	for c := 0; c < m.NumCells(); c++ {
		r := m.CellCenter(jsweep.CellID(c)).Norm()
		k := int(r)
		if k > 4 {
			k = 4
		}
		shells[k].sum += res.Tally[c]
		shells[k].vol += m.CellVolume(jsweep.CellID(c))
	}
	fmt.Println("radial track-length density:")
	prev := 0.0
	for k, sh := range shells {
		if sh.vol == 0 {
			continue
		}
		dens := sh.sum / sh.vol
		marker := ""
		if k > 0 && dens > prev {
			marker = "  <- should decrease!"
		}
		fmt.Printf("  r ∈ [%d,%d): %.4f per cm³%s\n", k, k+1, dens, marker)
		prev = dens
	}
}
