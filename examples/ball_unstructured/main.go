// Unstructured-mesh sweep (paper §VI-B): builds a tetrahedral ball like
// JSNT-U's sphere workload, partitions it with the graph-growing
// partitioner, solves multigroup transport with the JSweep solver, and
// demonstrates the coarsened-graph fast path across source iterations.
//
//	go run ./examples/ball_unstructured [-cells 12000] [-patch 500]
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"time"

	"jsweep"
)

func main() {
	var (
		cells = flag.Int("cells", 12000, "approximate tetrahedra count")
		patch = flag.Int("patch", 500, "cells per patch")
		grain = flag.Int("grain", 64, "vertex clustering grain")
	)
	flag.Parse()

	m, err := jsweep.BallWithCells(*cells, 10.0)
	if err != nil {
		log.Fatal(err)
	}
	// Two-group ball: outer half scatters more (a crude reflector).
	m.SetMaterialFunc(func(c jsweep.Vec3) int {
		if c.Norm() > 5.0 {
			return 1
		}
		return 0
	})
	quad, err := jsweep.NewQuadrature(4) // S4: 24 angles, as in the paper
	if err != nil {
		log.Fatal(err)
	}
	prob := &jsweep.Problem{
		M: m,
		Mats: []jsweep.Material{
			{
				Name:   "core",
				SigmaT: []float64{0.4, 0.8},
				SigmaS: [][]float64{{0.1, 0.1}, {0, 0.3}},
				Source: []float64{1.0, 0},
			},
			{
				Name:   "reflector",
				SigmaT: []float64{0.3, 0.6},
				SigmaS: [][]float64{{0.15, 0.1}, {0, 0.4}},
			},
		},
		Quad:   quad,
		Groups: 2,
		Scheme: jsweep.Step,
	}

	d, err := jsweep.PartitionByPatchSize(m, *patch, jsweep.GreedyGraph)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ball: %d tets, %d patches (balance %.2f, edge cut %d), %d angles × %d groups\n",
		m.NumCells(), d.NumPatches(), d.Balance(), d.EdgeCut(), quad.NumAngles(), prob.Groups)

	workers := runtime.NumCPU() - 1
	if workers < 1 {
		workers = 1
	}
	s, err := jsweep.NewSolver(prob, d, jsweep.SolverOptions{
		Procs: 2, Workers: workers, Grain: *grain,
		Pair:      jsweep.PriorityPair{Patch: jsweep.SLBD, Vertex: jsweep.SLBD},
		UseCoarse: true, // first sweep records clusters, later sweeps run the CG
	})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	t0 := time.Now()
	res, err := jsweep.Solve(prob, s, jsweep.IterConfig{Tolerance: 1e-7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged=%v in %d iterations, %.3fs\n", res.Converged, res.Iterations, time.Since(t0).Seconds())

	if cg := s.CoarseGraph(); cg != nil {
		fmt.Printf("coarsened graph: %d coarse vertices, %d coarse edges (built after sweep 1)\n",
			cg.NumCV(), cg.NumCE())
	}
	st := s.LastStats()
	fmt.Printf("last sweep ran on the coarse graph: %v (%d compute calls)\n", st.Coarse, st.ComputeCalls)

	// Radial flux profile, group 0.
	fmt.Println("radial flux profile (group 0):")
	var shells [5]struct {
		sum float64
		n   int
	}
	for c := 0; c < m.NumCells(); c++ {
		r := m.CellCenter(jsweep.CellID(c)).Norm()
		k := int(r / 2.0)
		if k > 4 {
			k = 4
		}
		shells[k].sum += res.Phi[0][c]
		shells[k].n++
	}
	for k, sh := range shells {
		if sh.n > 0 {
			fmt.Printf("  r ∈ [%2d,%2d): φ̄ = %.4e  (%d cells)\n", 2*k, 2*k+2, sh.sum/float64(sh.n), sh.n)
		}
	}

	for g := 0; g < prob.Groups; g++ {
		rep := prob.GroupBalance(res.Phi, g)
		fmt.Printf("group %d balance: production %.4g, absorption %.4g, leakage %.4g\n",
			g, rep.Production, rep.Absorption, rep.Leakage)
	}
}
