// Cyclic-mesh sweep: builds a twisted-ring tet mesh whose sweep dependency
// graph contains genuine cycles for every quadrature direction (the
// configuration real non-convex and decomposed meshes produce; see
// Vermaak, Ragusa & Morel, arXiv:2004.01824), and solves it with the
// JSweep solver. The solver detects the strongly connected components,
// breaks each cycle by lagging flux on a deterministic feedback-edge set,
// and converges the lagged fluxes inside the ordinary source iteration —
// bitwise identical to the lagged serial reference.
//
//	go run ./examples/cyclic [-cells 1200] [-patches 8]
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"time"

	"jsweep"
)

func main() {
	var (
		cells   = flag.Int("cells", 1200, "approximate tetrahedra count")
		patches = flag.Int("patches", 8, "azimuthal patch count")
		verify  = flag.Bool("verify", true, "cross-check against the lagged serial reference")
	)
	flag.Parse()

	m, err := jsweep.CyclicStackWithCells(*cells)
	if err != nil {
		log.Fatal(err)
	}
	d, err := jsweep.AzimuthalBlocks(m, *patches)
	if err != nil {
		log.Fatal(err)
	}
	quad, err := jsweep.NewQuadrature(2)
	if err != nil {
		log.Fatal(err)
	}
	prob := &jsweep.Problem{
		M: m,
		Mats: []jsweep.Material{{
			Name:   "twisted",
			SigmaT: []float64{0.8},
			SigmaS: [][]float64{{0.3}},
			Source: []float64{1.0},
		}},
		Quad:   quad,
		Groups: 1,
		Scheme: jsweep.Step,
	}
	fmt.Printf("twisted rings: %d tets, %d azimuthal patches, %d angles\n",
		m.NumCells(), d.NumPatches(), quad.NumAngles())

	workers := runtime.NumCPU()/2 - 1
	if workers < 1 {
		workers = 1
	}
	s, err := jsweep.NewSolver(prob, d, jsweep.SolverOptions{
		Procs: 2, Workers: workers, Grain: 8,
		Pair: jsweep.PriorityPair{Patch: jsweep.SLBD, Vertex: jsweep.SLBD},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	fmt.Printf("cycle breaking: %d lagged feedback edges across %d angles\n",
		s.LaggedEdges(), quad.NumAngles())

	t0 := time.Now()
	res, err := jsweep.Solve(prob, s, jsweep.IterConfig{Tolerance: 1e-8})
	if err != nil {
		log.Fatal(err)
	}
	st := s.LastStats()
	fmt.Printf("converged=%v in %d iterations, %.3fs (cellSCCs=%d patchSCCs=%d laggedEdges=%d)\n",
		res.Converged, res.Iterations, time.Since(t0).Seconds(),
		st.CellSCCs, st.PatchSCCs, st.LaggedEdges)

	if *verify {
		// The reference lags the same deterministic feedback-edge set, so
		// the parallel flux must match it bit for bit.
		ref, err := jsweep.NewReference(prob)
		if err != nil {
			log.Fatal(err)
		}
		want, err := jsweep.Solve(prob, ref, jsweep.IterConfig{Tolerance: 1e-8})
		if err != nil {
			log.Fatal(err)
		}
		for g := range want.Phi {
			for c := range want.Phi[g] {
				if want.Phi[g][c] != res.Phi[g][c] {
					log.Fatalf("verify FAILED at group %d cell %d: %v != %v",
						g, c, res.Phi[g][c], want.Phi[g][c])
				}
			}
		}
		fmt.Println("verify OK: bitwise identical to the lagged serial reference")
	}

	rep := prob.GroupBalance(res.Phi, 0)
	fmt.Printf("balance: production %.4g, absorption %.4g, leakage %.4g\n",
		rep.Production, rep.Absorption, rep.Leakage)
}
