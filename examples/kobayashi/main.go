// Kobayashi benchmark walkthrough (paper §VI-A): runs the structured
// JSNT-S-style workload at laptop scale, compares the JSweep data-driven
// solver against the KBA and BSP baselines — all three must agree
// bit-for-bit — and reports the scheduling cost of each strategy pair.
//
//	go run ./examples/kobayashi [-n 32] [-sn 4] [-scatter]
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"time"

	"jsweep"
)

func main() {
	var (
		n       = flag.Int("n", 32, "mesh cells per axis")
		sn      = flag.Int("sn", 4, "Sn quadrature order")
		scatter = flag.Bool("scatter", false, "enable 50% scattering")
		patch   = flag.Int("patch", 8, "patch cells per axis")
	)
	flag.Parse()

	prob, m, err := jsweep.BuildKobayashi(jsweep.KobayashiSpec{
		N: *n, SnOrder: *sn, Scattering: *scatter, Scheme: jsweep.Diamond,
	})
	if err != nil {
		log.Fatal(err)
	}
	d, err := m.BlockDecompose(*patch, *patch, *patch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Kobayashi-%d: %d cells, %d patches, %d angles, scattering=%v\n",
		*n, m.NumCells(), d.NumPatches(), prob.Quad.NumAngles(), *scatter)

	workers := runtime.NumCPU() / 2
	if workers < 1 {
		workers = 1
	}

	// 1. Serial reference.
	ref, err := jsweep.NewReference(prob)
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	want, err := jsweep.Solve(prob, ref, jsweep.IterConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s %8.3fs  (%d iterations)\n", "serial reference", time.Since(t0).Seconds(), want.Iterations)

	check := func(name string, got *jsweep.Result) {
		for g := range want.Phi {
			for c := range want.Phi[g] {
				if want.Phi[g][c] != got.Phi[g][c] {
					log.Fatalf("%s: cell %d differs from reference", name, c)
				}
			}
		}
	}

	// 2. JSweep data-driven solver, per priority pair.
	for _, pair := range []jsweep.PriorityPair{
		{Patch: jsweep.SLBD, Vertex: jsweep.SLBD},
		{Patch: jsweep.LDCP, Vertex: jsweep.SLBD},
		{Patch: jsweep.BFS, Vertex: jsweep.BFS},
	} {
		s, err := jsweep.NewSolver(prob, d, jsweep.SolverOptions{
			Procs: 2, Workers: workers, Grain: 64, Pair: pair,
		})
		if err != nil {
			log.Fatal(err)
		}
		t1 := time.Now()
		got, err := jsweep.Solve(prob, s, jsweep.IterConfig{})
		if err != nil {
			log.Fatal(err)
		}
		check("JSweep "+pair.String(), got)
		st := s.LastStats()
		fmt.Printf("%-28s %8.3fs  (%d compute calls, %d remote streams, %d session rounds)\n",
			"JSweep "+pair.String(), time.Since(t1).Seconds(), st.ComputeCalls, st.Runtime.RemoteStreams,
			st.Cumulative.RoundsRun)
		s.Close()
	}

	// 3. KBA baseline (the classic structured-mesh algorithm).
	kbaEx, err := jsweep.NewKBA(prob, 2, 2, *patch)
	if err != nil {
		log.Fatal(err)
	}
	t2 := time.Now()
	got, err := jsweep.Solve(prob, kbaEx, jsweep.IterConfig{})
	if err != nil {
		log.Fatal(err)
	}
	check("KBA", got)
	fmt.Printf("%-28s %8.3fs  (%d pipeline stages)\n", "KBA 2x2", time.Since(t2).Seconds(), kbaEx.Stats().Stages)

	// 4. BSP baseline (pre-JSweep JAxMIN style).
	bspEx, err := jsweep.NewBSP(prob, d)
	if err != nil {
		log.Fatal(err)
	}
	t3 := time.Now()
	got, err = jsweep.Solve(prob, bspEx, jsweep.IterConfig{})
	if err != nil {
		log.Fatal(err)
	}
	check("BSP", got)
	fmt.Printf("%-28s %8.3fs  (%d supersteps per sweep)\n", "BSP baseline", time.Since(t3).Seconds(), bspEx.Stats().Supersteps)

	fmt.Println("all executors produced bitwise-identical flux")

	// Neutron balance sanity.
	rep := prob.GroupBalance(want.Phi, 0)
	fmt.Printf("balance: production %.4g, absorption %.4g, leakage %.4g (%.1f%% leaks)\n",
		rep.Production, rep.Absorption, rep.Leakage, 100*rep.Leakage/rep.Production)
}
