// Example multiprocess: the TCP transport backend end to end — a
// rendezvous service, N ranks joining it and solving one Kobayashi
// problem together over real TCP-loopback sockets, each rank with its
// own solver and no shared memory (the SPMD model of jsweep-node; here
// the "processes" are goroutines so the example is self-contained, and
// the wire traffic is exactly what separate OS processes exchange).
//
// For true OS-process isolation use the launcher:
//
//	go build -o bin/ ./cmd/jsweep-run ./cmd/jsweep-node
//	./bin/jsweep-run -backend tcp -procs 4 -mesh kobayashi -n 16 -verify
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"

	"jsweep"
)

func main() {
	var (
		n     = flag.Int("n", 12, "Kobayashi cells per axis")
		ranks = flag.Int("ranks", 4, "cluster ranks (one TCP transport each)")
		agg   = flag.Bool("agg", true, "aggregate remote streams into frames")
	)
	flag.Parse()

	spec := jsweep.NodeSpec{
		Mesh: "kobayashi", N: *n, SnOrder: 2, Scatter: true,
		Procs: *ranks, Workers: 2, Agg: *agg, Tol: 1e-8,
	}

	// 1. The rendezvous: every rank reports (cluster id, rank, listen
	// address) here and receives the full address map back.
	rz, err := jsweep.StartRendezvous("127.0.0.1:0", "example", *ranks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rendezvous on %s, %d ranks\n", rz.Addr(), *ranks)

	// 2. Each rank: join the cluster, rebuild the identical problem from
	// the spec, and run the shared source iteration. RunNode does all of
	// this for one rank of real jsweep-node; here we call its core with
	// an explicit transport per rank.
	results := make([]*jsweep.NodeResult, *ranks)
	errs := make([]error, *ranks)
	var wg sync.WaitGroup
	for r := 0; r < *ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tr, err := jsweep.JoinCluster("example", r, *ranks, rz.Addr())
			if err != nil {
				errs[r] = err
				return
			}
			defer tr.Close()
			prob, d, err := jsweep.BuildFromSpec(spec)
			if err != nil {
				errs[r] = err
				return
			}
			opts, err := jsweep.SolverOptionsFromSpec(spec, tr)
			if err != nil {
				errs[r] = err
				return
			}
			s, err := jsweep.NewSolver(prob, d, opts)
			if err != nil {
				errs[r] = err
				return
			}
			defer s.Close()
			res, err := jsweep.Solve(prob, s, jsweep.IterConfig{Tolerance: spec.Tol})
			if err != nil {
				errs[r] = err
				return
			}
			results[r] = &jsweep.NodeResult{Result: res}
			fmt.Printf("rank %d: converged=%v iterations=%d\n", r, res.Converged, res.Iterations)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			log.Fatalf("rank %d: %v", r, err)
		}
	}

	// 3. Every rank holds the full flux (allgathered per sweep): the bit
	// patterns must agree exactly across the cluster.
	for r := 1; r < *ranks; r++ {
		for g := range results[0].Result.Phi {
			for c := range results[0].Result.Phi[g] {
				if results[r].Result.Phi[g][c] != results[0].Result.Phi[g][c] {
					log.Fatalf("rank %d flux diverged at group %d cell %d", r, g, c)
				}
			}
		}
	}
	fmt.Printf("all %d ranks agree bitwise on %d cells × %d groups\n",
		*ranks, len(results[0].Result.Phi[0]), len(results[0].Result.Phi))
}
