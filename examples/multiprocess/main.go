// Example multiprocess: the TCP transport backend end to end through
// the Job API — a rendezvous service and N tcp-attach jobs joining it,
// solving one Kobayashi problem together over real TCP-loopback
// sockets, each rank with its own solver and no shared memory (the SPMD
// model of jsweep-node; here the "processes" are goroutines so the
// example is self-contained, and the wire traffic is exactly what
// separate OS processes exchange).
//
// For true OS-process isolation use the launch backend:
//
//	go build -o bin/ ./cmd/jsweep-run ./cmd/jsweep-node
//	./bin/jsweep-run -backend tcp-launch -procs 4 -mesh kobayashi -n 16 -verify
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sync"

	"jsweep"
)

func main() {
	var (
		n     = flag.Int("n", 12, "Kobayashi cells per axis")
		ranks = flag.Int("ranks", 4, "cluster ranks (one TCP transport each)")
		agg   = flag.Bool("agg", true, "aggregate remote streams into frames")
	)
	flag.Parse()

	// One spec for the whole cluster: every rank rebuilds the identical
	// problem from it, so no mesh data crosses the wire.
	spec := jsweep.NodeSpec{
		Mesh: "kobayashi", N: *n, SnOrder: 2, Scatter: true,
		Backend: jsweep.BackendTCPAttach,
		Procs:   *ranks, Workers: 2, Agg: *agg, Tol: 1e-8,
	}

	// 1. The rendezvous: every rank reports (cluster id, rank, listen
	// address) here and receives the full address map back.
	rz, err := jsweep.StartRendezvous("127.0.0.1:0", "example", *ranks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rendezvous on %s, %d ranks\n", rz.Addr(), *ranks)

	// 2. Each rank is one tcp-attach job: join the cluster, rebuild the
	// problem from the spec, run the shared source iteration. Cancelling
	// the context would abort the rank's transport and fail the whole
	// cluster fast instead of leaving peers waiting.
	ctx := context.Background()
	results := make([]*jsweep.RunResult, *ranks)
	errs := make([]error, *ranks)
	var wg sync.WaitGroup
	for r := 0; r < *ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			job, err := jsweep.NewJob(spec, jsweep.WithAttach("example", r, rz.Addr()))
			if err != nil {
				errs[r] = err
				return
			}
			res, err := job.Run(ctx)
			if err != nil {
				errs[r] = err
				return
			}
			results[r] = res
			fmt.Printf("rank %d: converged=%v iterations=%d flux=%s\n",
				r, res.Result.Converged, res.Result.Iterations, res.FluxHash)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			log.Fatalf("rank %d: %v", r, err)
		}
	}

	// 3. Every rank holds the full flux (allgathered per sweep): the bit
	// patterns must agree exactly across the cluster.
	for r := 1; r < *ranks; r++ {
		if results[r].FluxHash != results[0].FluxHash {
			log.Fatalf("rank %d flux hash %s diverged from rank 0's %s",
				r, results[r].FluxHash, results[0].FluxHash)
		}
	}
	cs := results[0].Cluster
	fmt.Printf("all %d ranks agree bitwise on flux %s\n", *ranks, results[0].FluxHash)
	fmt.Printf("cluster totals: messages=%d bytes=%d frames=%d wireBytes=%d\n",
		cs.Messages, cs.BytesSent, cs.Frames, cs.WireBytes)
}
