// Simulated-cluster exploration (paper §VI at your desk): sweeps the
// machine size for a reactor-style unstructured workload on the
// discrete-event cluster simulator, printing scaling, the JSweep-vs-BSP
// comparison, and the Fig. 16-style cost breakdown per configuration.
//
//	go run ./examples/cluster_sim [-cells 200000] [-patch 500]
package main

import (
	"flag"
	"fmt"
	"log"

	"jsweep"
)

func main() {
	var (
		cells = flag.Int("cells", 200000, "simulated total mesh cells")
		patch = flag.Int("patch", 500, "cells per patch")
		sn    = flag.Int("angles", 24, "number of sweep angles")
	)
	flag.Parse()

	// Patch-granular coarse mesh: one coarse cell per patch.
	coarse, err := jsweep.ReactorWithCells(*cells / *patch, 1.0, 1.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulating reactor: %d cells as %d patches of %d, %d angles, 4 groups\n",
		*cells, coarse.NumCells(), *patch, *sn)

	cm := jsweep.DefaultCostModel(4)
	fmt.Printf("%8s %12s %12s %10s %8s %8s %8s\n",
		"cores", "JSweep[s]", "BSP[s]", "gain", "idle%", "ovh%", "comm%")
	var base float64
	for _, cores := range []int{24, 96, 384, 1536, 6144} {
		procs := cores / 12
		if procs < 1 {
			procs = 1
		}
		w, err := jsweep.UnstructuredSimWorkload(coarse, int64(*patch), procs, *sn, 4)
		if err != nil {
			log.Fatal(err)
		}
		cfg := jsweep.SimConfig{Workers: 11, Grain: 64}
		dd, err := jsweep.SimulateSweep(w, cfg, cm)
		if err != nil {
			log.Fatal(err)
		}
		bsp, err := jsweep.SimulateBSPSweep(w, cfg, cm)
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = dd.Makespan
		}
		// The workload may cap the process count at the patch count.
		total := dd.Makespan * float64(w.Procs*12)
		idle := (dd.WorkerIdle + dd.MasterIdle) / total * 100
		ovh := (dd.GraphOp + dd.Pack + dd.Unpack) / total * 100
		comm := dd.Route / total * 100
		fmt.Printf("%8d %12.4f %12.4f %9.2fx %7.1f%% %7.1f%% %7.1f%%\n",
			cores, dd.Makespan, bsp.Makespan, bsp.Makespan/dd.Makespan, idle, ovh, comm)
	}
}
