// Package examples_test smoke-tests every example main: each must build
// and run to completion with tiny parameters, so the examples cannot
// silently rot as the library evolves. The tests shell out to the go
// toolchain, so they are skipped under -short.
package examples_test

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// examples maps each example directory to tiny-run arguments.
var examples = map[string][]string{
	"quickstart":        nil,
	"kobayashi":         {"-n", "8", "-sn", "2", "-patch", "4"},
	"ball_unstructured": {"-cells", "600", "-patch", "150", "-grain", "16"},
	"cluster_sim":       {"-cells", "4000", "-patch", "200", "-angles", "8"},
	"cyclic":            {"-cells", "300", "-patches", "4"},
	"multiprocess":      {"-n", "8", "-ranks", "3"},
	"particle_trace":    {"-particles", "200", "-path", "4", "-cells", "600"},
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(wd) // examples/ -> repo root
}

func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke tests shell out to the go toolchain")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	root := repoRoot(t)
	entries, err := os.ReadDir(filepath.Join(root, "examples"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		args, ok := examples[name]
		if !ok {
			t.Errorf("example %q has no smoke-test parameters — add it to the examples map", name)
			continue
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			bin := filepath.Join(t.TempDir(), name)
			build := exec.Command("go", "build", "-o", bin, "./examples/"+name)
			build.Dir = root
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build failed: %v\n%s", err, out)
			}
			timeout := 3 * time.Minute
			if d, ok := t.Deadline(); ok {
				if until := time.Until(d) - 10*time.Second; until < timeout {
					timeout = until
				}
			}
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			defer cancel()
			run := exec.CommandContext(ctx, bin, args...)
			run.Dir = root
			out, runErr := run.CombinedOutput()
			if ctx.Err() != nil {
				t.Fatalf("example timed out after %v\n%s", timeout, out)
			}
			if runErr != nil {
				t.Fatalf("run failed: %v\n%s", runErr, out)
			}
			if len(out) == 0 {
				t.Error("example produced no output")
			}
		})
	}
}
