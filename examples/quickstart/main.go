// Quickstart: solve a small discrete-ordinates transport problem through
// the declarative Job API — one spec, one context-aware Run, the serial
// reference cross-check handled by the framework.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"jsweep"
)

func main() {
	// A 24³ Kobayashi benchmark problem: source corner, void duct, shield
	// (paper §VI-A), S4 quadrature (24 angles), 50% scattering. The spec
	// is the complete, serializable description of the solve; the same
	// value runs unchanged on the tcp-launch and sim backends.
	spec := jsweep.NodeSpec{
		Mesh:    "kobayashi",
		N:       24,
		SnOrder: 4,
		Scatter: true,
		Procs:   2, // simulated processes ...
		Workers: 4, // ... × worker goroutines each
		Tol:     1e-8,
	}

	// Bind the spec to execution options: verify against the serial
	// reference (the data-driven schedule must reproduce it bit for
	// bit), and observe every source iteration as it completes.
	job, err := jsweep.NewJob(spec,
		jsweep.WithVerify(),
		jsweep.WithProgress(func(ev jsweep.ProgressEvent) {
			fmt.Printf("  iter %2d: residual %.2e (%d compute calls)\n",
				ev.Iteration, ev.Residual, ev.Sweep.ComputeCalls)
		}),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Run with a context: cancelling it mid-solve would stop the workers
	// and return ctx.Err() instead of running to convergence.
	res, err := job.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged: %v after %d sweeps (residual %.2e)\n",
		res.Result.Converged, res.Result.Iterations, res.Result.Residual)
	if res.Verified {
		fmt.Println("solver flux is bitwise identical to the serial reference")
	}
	fmt.Printf("flux bit-pattern hash: %s\n", res.FluxHash)

	// Peek at the solution: flux at the source, down the duct, and deep
	// in the shield. The mesh rebuilds deterministically from the spec.
	_, m, err := jsweep.BuildKobayashi(jsweep.KobayashiSpec{N: spec.N, SnOrder: spec.SnOrder, Scattering: true})
	if err != nil {
		log.Fatal(err)
	}
	at := func(x, y, z float64) float64 {
		i := int(x / (100.0 / 24))
		j := int(y / (100.0 / 24))
		k := int(z / (100.0 / 24))
		return res.Result.Phi[0][m.Index(i, j, k)]
	}
	fmt.Printf("flux: source %.3e | duct exit %.3e | shield %.3e\n",
		at(5, 5, 5), at(55, 5, 5), at(45, 45, 45))

	fmt.Printf("last sweep: %d compute calls, %d streams\n",
		res.Stats.ComputeCalls, res.Stats.Streams)
}
