// Quickstart: solve a small discrete-ordinates transport problem with the
// JSweep patch-centric data-driven solver and check it against the serial
// reference.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"jsweep"
)

func main() {
	// A 24³ Kobayashi benchmark problem: source corner, void duct, shield
	// (paper §VI-A), S4 quadrature (24 angles), 50% scattering, diamond
	// differencing. Scattering forces several source iterations, so the
	// coarsened-graph fast path gets exercised after the first sweep.
	prob, m, err := jsweep.BuildKobayashi(jsweep.KobayashiSpec{
		N:          24,
		SnOrder:    4,
		Scattering: true,
		Scheme:     jsweep.Diamond,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Decompose the mesh into 8³-cell patches (27 patches).
	d, err := m.BlockDecompose(8, 8, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mesh: %d cells, %d patches, %d angles\n",
		m.NumCells(), d.NumPatches(), prob.Quad.NumAngles())

	// The JSweep solver: 2 simulated processes × 4 workers, vertex
	// clustering grain 64, the paper's SLBD+SLBD priorities, and the
	// coarsened-graph fast path for repeated sweeps.
	s, err := jsweep.NewSolver(prob, d, jsweep.SolverOptions{
		Procs:     2,
		Workers:   4,
		Grain:     64,
		Pair:      jsweep.PriorityPair{Patch: jsweep.SLBD, Vertex: jsweep.SLBD},
		UseCoarse: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	// The solver keeps one runtime session alive across all sweeps of the
	// iteration (ReuseRuntime defaults to on); Close releases its workers.
	defer s.Close()

	// Source-iterate to convergence.
	res, err := jsweep.Solve(prob, s, jsweep.IterConfig{Tolerance: 1e-8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged: %v after %d sweeps (residual %.2e)\n",
		res.Converged, res.Iterations, res.Residual)

	// Cross-check against the serial reference executor: the data-driven
	// schedule must reproduce it bit-for-bit.
	ref, err := jsweep.NewReference(prob)
	if err != nil {
		log.Fatal(err)
	}
	want, err := jsweep.Solve(prob, ref, jsweep.IterConfig{Tolerance: 1e-8})
	if err != nil {
		log.Fatal(err)
	}
	for c := range want.Phi[0] {
		if want.Phi[0][c] != res.Phi[0][c] {
			log.Fatalf("cell %d: solver %v != reference %v", c, res.Phi[0][c], want.Phi[0][c])
		}
	}
	fmt.Println("solver flux is bitwise identical to the serial reference")

	// Peek at the solution: flux at the source, down the duct, and deep in
	// the shield.
	at := func(x, y, z float64) float64 {
		i := int(x / (100.0 / 24))
		j := int(y / (100.0 / 24))
		k := int(z / (100.0 / 24))
		return res.Phi[0][m.Index(i, j, k)]
	}
	fmt.Printf("flux: source %.3e | duct exit %.3e | shield %.3e\n",
		at(5, 5, 5), at(55, 5, 5), at(45, 45, 45))

	st := s.LastStats()
	fmt.Printf("last sweep: %d compute calls, %d streams (coarse graph: %v)\n",
		st.ComputeCalls, st.Streams, st.Coarse)
}
