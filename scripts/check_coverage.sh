#!/usr/bin/env sh
# check_coverage.sh <go-test-cover-output-file>
#
# Gates the per-package coverage of the session-critical packages against
# their measured baselines (internal/runtime 93.0%, internal/sweep 94.4%
# post-persistent-session; internal/graph 96.8% post-SCC/feedback-edge;
# internal/netcomm 88.8% post-TCP-backend; internal/obs 96.5% at
# introduction — the gates sit just below to absorb line-count drift).
# A drop below a gate fails CI.
set -eu

out="${1:?usage: check_coverage.sh <cover-output-file>}"

check() {
	pkg="$1"
	min="$2"
	line=$(grep -E "^ok[[:space:]]+${pkg}[[:space:]]" "$out" || true)
	if [ -z "$line" ]; then
		echo "coverage gate: no result for ${pkg}" >&2
		exit 1
	fi
	pct=$(printf '%s\n' "$line" | grep -oE '[0-9]+\.[0-9]+% of statements' | grep -oE '^[0-9]+\.[0-9]+' || true)
	if [ -z "$pct" ]; then
		echo "coverage gate: could not parse coverage for ${pkg}: ${line}" >&2
		exit 1
	fi
	ok=$(awk -v p="$pct" -v m="$min" 'BEGIN { print (p >= m) ? 1 : 0 }')
	if [ "$ok" != 1 ]; then
		echo "coverage gate FAILED: ${pkg} at ${pct}% (< ${min}%)" >&2
		exit 1
	fi
	echo "coverage gate ok: ${pkg} at ${pct}% (>= ${min}%)"
}

check "jsweep/internal/runtime" 90.0
check "jsweep/internal/sweep" 91.0
check "jsweep/internal/graph" 90.0
check "jsweep/internal/netcomm" 85.0
check "jsweep/internal/obs" 90.0
check "jsweep/internal/analysis" 85.0
