#!/usr/bin/env sh
# serve_smoke.sh [bindir]
#
# End-to-end smoke of the sweep-as-a-service surface, with real
# processes for every role (mirrors the CI job):
#
#   1. one jsweep-serve daemon accepts a queued submission from
#      `jsweep-run -serve` and streams back a verified, result-complete
#      solve;
#   2. two daemons of one slot each host one tcp-launch cluster placed
#      with `jsweep-run -hosts` — contiguous rank slices, cross-daemon
#      bitwise-agreement certificate, result still complete;
#   3. the first daemon's -metrics-addr endpoint answers /healthz and
#      serves Prometheus text with the queue, slot, warm-pool and
#      per-wire-tier counters;
#   4. SIGTERM drains both daemons cleanly.
#
# Exits non-zero on the first failed assertion.
set -eu

bin="${1:-bin}"
go build -o "$bin/" ./cmd/jsweep-run ./cmd/jsweep-node ./cmd/jsweep-serve

# Three fixed loopback ports, offset by the PID to dodge parallel runs
# (two submission listeners + the first daemon's metrics endpoint).
p1=$((20000 + $$ % 20000))
p2=$((p1 + 1))
pm=$((p1 + 2))
log1=$(mktemp)
log2=$(mktemp)

cleanup() {
	[ -n "${pid1:-}" ] && kill "$pid1" 2>/dev/null || true
	[ -n "${pid2:-}" ] && kill "$pid2" 2>/dev/null || true
	wait 2>/dev/null || true
	rm -f "$log1" "$log2"
}
trap cleanup EXIT

"$bin/jsweep-serve" -listen "127.0.0.1:$p1" -max-jobs 2 -slots 1 -metrics-addr "127.0.0.1:$pm" >"$log1" 2>&1 &
pid1=$!
"$bin/jsweep-serve" -listen "127.0.0.1:$p2" -max-jobs 2 -slots 1 >"$log2" 2>&1 &
pid2=$!

# Wait for both listeners (the daemons log their address once bound).
i=0
until grep -q "listening on" "$log1" && grep -q "listening on" "$log2"; do
	i=$((i + 1))
	[ "$i" -gt 50 ] && { echo "serve-smoke: daemons never came up" >&2; cat "$log1" "$log2" >&2; exit 1; }
	sleep 0.1
done

echo "== two concurrent submissions to one daemon (kobayashi + cyclic) =="
outk=$(mktemp)
"$bin/jsweep-run" -serve "127.0.0.1:$p1" \
	-mesh kobayashi -n 8 -sn 2 -scatter -procs 2 -workers 2 -verify -progress >"$outk" 2>&1 &
subpid=$!
out=$("$bin/jsweep-run" -serve "127.0.0.1:$p1" \
	-mesh cyclic -cells 300 -sn 2 -patch 80 -procs 2 -workers 2 -verify)
wait "$subpid" || { echo "serve-smoke: kobayashi submission failed" >&2; cat "$outk" >&2; rm -f "$outk"; exit 1; }
cat "$outk"
printf '%s\n' "$out"
for want in "^submitted job-" "verify OK" "converged=true"; do
	grep -q "$want" "$outk" || { echo "serve-smoke: kobayashi submission missing '$want'" >&2; rm -f "$outk"; exit 1; }
	printf '%s\n' "$out" | grep -q "$want" || { echo "serve-smoke: cyclic submission missing '$want'" >&2; rm -f "$outk"; exit 1; }
done
rm -f "$outk"

echo "== place one tcp-launch cluster across both daemons =="
out=$("$bin/jsweep-run" -backend tcp-launch -hosts "127.0.0.1:$p1,127.0.0.1:$p2" \
	-mesh kobayashi -n 8 -sn 2 -scatter -procs 2 -workers 2 -verify)
printf '%s\n' "$out"
printf '%s\n' "$out" | grep -q "launch ok: 2 ranks agree" || { echo "serve-smoke: placed launch not certified" >&2; exit 1; }
printf '%s\n' "$out" | grep -q "verify OK" || { echo "serve-smoke: placed launch not verified" >&2; exit 1; }
printf '%s\n' "$out" | grep -q "converged=true" || { echo "serve-smoke: placed launch not result-complete" >&2; exit 1; }
grep -q "ranks=\[0,1)" "$log1" || { echo "serve-smoke: first daemon did not host rank 0" >&2; cat "$log1" >&2; exit 1; }
grep -q "ranks=\[1,2)" "$log2" || { echo "serve-smoke: second daemon did not host rank 1" >&2; cat "$log2" >&2; exit 1; }

echo "== observability endpoints on the first daemon =="
health=$(curl -fsS "http://127.0.0.1:$pm/healthz")
[ "$health" = "ok" ] || { echo "serve-smoke: /healthz answered '$health'" >&2; exit 1; }
metrics=$(curl -fsS "http://127.0.0.1:$pm/metrics")
# Queue/slot/warm-pool state, admission + job counters from the serve
# registry; frame/byte counters per wire tier from the process default
# (the placed launch above ran this daemon's rank over the cluster wire).
for want in \
	"jsweep_serve_queue_depth" \
	"jsweep_serve_jobs_running" \
	"jsweep_serve_slots_busy" \
	"jsweep_serve_slots_total 1" \
	"jsweep_serve_warm_pool_size" \
	"jsweep_serve_warm_pool_hits_total" \
	"jsweep_serve_warm_pool_misses_total" \
	'jsweep_serve_admissions_total{code="accepted"}' \
	'jsweep_serve_job_duration_seconds_count{outcome="ok"}' \
	"jsweep_serve_grant_wait_seconds_count" \
	'jsweep_net_frames_total{dir="out"' \
	'jsweep_net_bytes_total{dir="in"' \
	"jsweep_runtime_rounds_total" \
	"jsweep_runtime_round_seconds_count"; do
	printf '%s\n' "$metrics" | grep -qF "$want" || {
		echo "serve-smoke: /metrics missing '$want'" >&2
		printf '%s\n' "$metrics" >&2
		exit 1
	}
done
statusz=$(curl -fsS "http://127.0.0.1:$pm/statusz")
printf '%s\n' "$statusz" | grep -q '"jobs_done"' \
	|| { echo "serve-smoke: /statusz missing stats" >&2; exit 1; }

echo "== drain on SIGTERM =="
kill -TERM "$pid1" "$pid2"
wait "$pid1" "$pid2"
pid1=""
pid2=""
grep -q "serve: closed" "$log1" || { echo "serve-smoke: first daemon did not drain" >&2; cat "$log1" >&2; exit 1; }
grep -q "serve: closed" "$log2" || { echo "serve-smoke: second daemon did not drain" >&2; cat "$log2" >&2; exit 1; }

echo "serve-smoke ok: queued submission, two-daemon placement, metrics endpoints, graceful drain"
