#!/usr/bin/env sh
# serve_smoke.sh [bindir]
#
# End-to-end smoke of the sweep-as-a-service surface, with real
# processes for every role (mirrors the CI job):
#
#   1. one jsweep-serve daemon accepts a queued submission from
#      `jsweep-run -serve` and streams back a verified, result-complete
#      solve;
#   2. two daemons of one slot each host one tcp-launch cluster placed
#      with `jsweep-run -hosts` — contiguous rank slices, cross-daemon
#      bitwise-agreement certificate, result still complete;
#   3. SIGTERM drains both daemons cleanly.
#
# Exits non-zero on the first failed assertion.
set -eu

bin="${1:-bin}"
go build -o "$bin/" ./cmd/jsweep-run ./cmd/jsweep-node ./cmd/jsweep-serve

# Two fixed loopback ports, offset by the PID to dodge parallel runs.
p1=$((20000 + $$ % 20000))
p2=$((p1 + 1))
log1=$(mktemp)
log2=$(mktemp)

cleanup() {
	[ -n "${pid1:-}" ] && kill "$pid1" 2>/dev/null || true
	[ -n "${pid2:-}" ] && kill "$pid2" 2>/dev/null || true
	wait 2>/dev/null || true
	rm -f "$log1" "$log2"
}
trap cleanup EXIT

"$bin/jsweep-serve" -listen "127.0.0.1:$p1" -max-jobs 2 -slots 1 >"$log1" 2>&1 &
pid1=$!
"$bin/jsweep-serve" -listen "127.0.0.1:$p2" -max-jobs 2 -slots 1 >"$log2" 2>&1 &
pid2=$!

# Wait for both listeners (the daemons log their address once bound).
i=0
until grep -q "listening on" "$log1" && grep -q "listening on" "$log2"; do
	i=$((i + 1))
	[ "$i" -gt 50 ] && { echo "serve-smoke: daemons never came up" >&2; cat "$log1" "$log2" >&2; exit 1; }
	sleep 0.1
done

echo "== two concurrent submissions to one daemon (kobayashi + cyclic) =="
outk=$(mktemp)
"$bin/jsweep-run" -serve "127.0.0.1:$p1" \
	-mesh kobayashi -n 8 -sn 2 -scatter -procs 2 -workers 2 -verify -progress >"$outk" 2>&1 &
subpid=$!
out=$("$bin/jsweep-run" -serve "127.0.0.1:$p1" \
	-mesh cyclic -cells 300 -sn 2 -patch 80 -procs 2 -workers 2 -verify)
wait "$subpid" || { echo "serve-smoke: kobayashi submission failed" >&2; cat "$outk" >&2; rm -f "$outk"; exit 1; }
cat "$outk"
printf '%s\n' "$out"
for want in "^submitted job-" "verify OK" "converged=true"; do
	grep -q "$want" "$outk" || { echo "serve-smoke: kobayashi submission missing '$want'" >&2; rm -f "$outk"; exit 1; }
	printf '%s\n' "$out" | grep -q "$want" || { echo "serve-smoke: cyclic submission missing '$want'" >&2; rm -f "$outk"; exit 1; }
done
rm -f "$outk"

echo "== place one tcp-launch cluster across both daemons =="
out=$("$bin/jsweep-run" -backend tcp-launch -hosts "127.0.0.1:$p1,127.0.0.1:$p2" \
	-mesh kobayashi -n 8 -sn 2 -scatter -procs 2 -workers 2 -verify)
printf '%s\n' "$out"
printf '%s\n' "$out" | grep -q "launch ok: 2 ranks agree" || { echo "serve-smoke: placed launch not certified" >&2; exit 1; }
printf '%s\n' "$out" | grep -q "verify OK" || { echo "serve-smoke: placed launch not verified" >&2; exit 1; }
printf '%s\n' "$out" | grep -q "converged=true" || { echo "serve-smoke: placed launch not result-complete" >&2; exit 1; }
grep -q "ranks=\[0,1)" "$log1" || { echo "serve-smoke: first daemon did not host rank 0" >&2; cat "$log1" >&2; exit 1; }
grep -q "ranks=\[1,2)" "$log2" || { echo "serve-smoke: second daemon did not host rank 1" >&2; cat "$log2" >&2; exit 1; }

echo "== drain on SIGTERM =="
kill -TERM "$pid1" "$pid2"
wait "$pid1" "$pid2"
pid1=""
pid2=""
grep -q "serve: closed" "$log1" || { echo "serve-smoke: first daemon did not drain" >&2; cat "$log1" >&2; exit 1; }
grep -q "serve: closed" "$log2" || { echo "serve-smoke: second daemon did not drain" >&2; cat "$log2" >&2; exit 1; }

echo "serve-smoke ok: queued submission, two-daemon placement, graceful drain"
