#!/usr/bin/env sh
# api_check.sh [base-ref]
#
# Public-API stability gate: fails when an exported symbol of the public
# jsweep package (the module root) that existed at base-ref is missing
# from the working tree. Additions are fine — removals and renames are
# breaking and must be deliberate (update or delete the symbol AND
# acknowledge it by adjusting the base ref you diff against).
#
# base-ref defaults to the PR base branch on CI (GITHUB_BASE_REF), else
# the previous commit.
set -eu

base="${1:-}"
if [ -z "$base" ]; then
	if [ -n "${GITHUB_BASE_REF:-}" ] && git rev-parse --verify "origin/${GITHUB_BASE_REF}" >/dev/null 2>&1; then
		base="origin/${GITHUB_BASE_REF}"
	else
		base="HEAD~1"
	fi
fi
if ! git rev-parse --verify "$base" >/dev/null 2>&1; then
	echo "api-check: base ref $base not found (shallow clone? fetch more history)" >&2
	exit 1
fi

tmp=$(mktemp -d)
cleanup() {
	git worktree remove --force "$tmp/base" >/dev/null 2>&1 || true
	rm -rf "$tmp"
}
trap cleanup EXIT

git worktree add --detach --quiet "$tmp/base" "$base"

# The CURRENT dumper parses both trees (it needs no module context), so
# the check works even if the base predates the dumper itself.
go run ./scripts/apidump . >"$tmp/now.txt"
go run ./scripts/apidump "$tmp/base" >"$tmp/base.txt"

removed=$(comm -23 "$tmp/base.txt" "$tmp/now.txt")
if [ -n "$removed" ]; then
	echo "api-check FAILED: exported symbols removed relative to $base:" >&2
	printf '%s\n' "$removed" | sed 's/^/  - /' >&2
	exit 1
fi
added=$(comm -13 "$tmp/base.txt" "$tmp/now.txt" | wc -l | tr -d ' ')
total=$(wc -l <"$tmp/now.txt" | tr -d ' ')
echo "api-check ok vs $base: no exported symbols removed ($total exported, $added added)"
