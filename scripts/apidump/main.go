// Command apidump prints one line per exported top-level symbol of a Go
// package directory — "func Name", "type Name", "const Name", "var
// Name", "method Type.Name" — sorted and deduplicated. It parses
// source only (no type checking, no module resolution), so it can dump
// any checkout, including a bare git worktree of an older commit.
// scripts/api_check.sh diffs two dumps to catch exported-symbol
// removals.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	dir := "."
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apidump:", err)
		os.Exit(1)
	}
	seen := map[string]bool{}
	var out []string
	add := func(line string) {
		if !seen[line] {
			seen[line] = true
			out = append(out, line)
		}
	}
	for name, pkg := range pkgs {
		if strings.HasSuffix(name, "_test") {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				switch d := d.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() {
						continue
					}
					if d.Recv != nil && len(d.Recv.List) > 0 {
						t := recvTypeName(d.Recv.List[0].Type)
						if t == "" || !ast.IsExported(t) {
							continue
						}
						add("method " + t + "." + d.Name.Name)
					} else {
						add("func " + d.Name.Name)
					}
				case *ast.GenDecl:
					if d.Tok == token.IMPORT {
						continue
					}
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() {
								add("type " + s.Name.Name)
							}
						case *ast.ValueSpec:
							for _, n := range s.Names {
								if n.IsExported() {
									add(d.Tok.String() + " " + n.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(out)
	for _, line := range out {
		fmt.Println(line)
	}
}

// recvTypeName unwraps a method receiver type down to its identifier.
func recvTypeName(e ast.Expr) string {
	for {
		switch t := e.(type) {
		case *ast.StarExpr:
			e = t.X
		case *ast.IndexExpr: // generic receiver
			e = t.X
		case *ast.IndexListExpr:
			e = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}
