// Tests for check_coverage.sh: the gate must hold across the cover-line
// formats the Go matrix emits (fresh, cached, -coverpkg suffix) and
// fail loudly on the degenerate shapes ([no test files], [no
// statements], a package missing from the run entirely).
package scripts

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// gatedPkgs mirrors the check lines at the bottom of the script.
var gatedPkgs = []string{
	"jsweep/internal/runtime",
	"jsweep/internal/sweep",
	"jsweep/internal/graph",
	"jsweep/internal/netcomm",
	"jsweep/internal/obs",
	"jsweep/internal/analysis",
}

func passingLines() map[string]string {
	lines := make(map[string]string, len(gatedPkgs))
	for _, pkg := range gatedPkgs {
		lines[pkg] = "ok  \t" + pkg + "\t1.2s\tcoverage: 95.0% of statements"
	}
	return lines
}

func runGate(t *testing.T, lines map[string]string) (string, error) {
	t.Helper()
	var b strings.Builder
	for _, pkg := range gatedPkgs {
		if l, ok := lines[pkg]; ok {
			b.WriteString(l + "\n")
		}
	}
	b.WriteString("ok  \tjsweep/internal/comm\t0.1s\tcoverage: 50.0% of statements\n")
	file := filepath.Join(t.TempDir(), "cover.out")
	if err := os.WriteFile(file, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command("sh", "check_coverage.sh", file).CombinedOutput()
	return string(out), err
}

func TestGatePasses(t *testing.T) {
	out, err := runGate(t, passingLines())
	if err != nil {
		t.Fatalf("gate failed on a passing file: %v\n%s", err, out)
	}
	for _, pkg := range gatedPkgs {
		if !strings.Contains(out, "coverage gate ok: "+pkg) {
			t.Errorf("missing ok line for %s:\n%s", pkg, out)
		}
	}
}

func TestGateAcceptsFormatVariants(t *testing.T) {
	lines := passingLines()
	// A cached run has no elapsed-time column.
	lines["jsweep/internal/runtime"] = "ok  \tjsweep/internal/runtime\t(cached)\tcoverage: 95.0% of statements"
	// -coverpkg runs carry a trailing scope suffix.
	lines["jsweep/internal/graph"] = "ok  \tjsweep/internal/graph\t2.0s\tcoverage: 95.0% of statements in ./..."
	if out, err := runGate(t, lines); err != nil {
		t.Fatalf("gate rejected known cover-line formats: %v\n%s", err, out)
	}
}

func TestGateBoundaryIsInclusive(t *testing.T) {
	lines := passingLines()
	// internal/analysis gates at 85.0: exactly 85.0 must pass.
	lines["jsweep/internal/analysis"] = "ok  \tjsweep/internal/analysis\t1.0s\tcoverage: 85.0% of statements"
	if out, err := runGate(t, lines); err != nil {
		t.Fatalf("gate must be >=, not >: %v\n%s", err, out)
	}
}

func TestGateFailsBelowMinimum(t *testing.T) {
	lines := passingLines()
	lines["jsweep/internal/analysis"] = "ok  \tjsweep/internal/analysis\t1.0s\tcoverage: 84.9% of statements"
	out, err := runGate(t, lines)
	if err == nil {
		t.Fatalf("gate passed a below-minimum package:\n%s", out)
	}
	if !strings.Contains(out, "coverage gate FAILED: jsweep/internal/analysis") {
		t.Errorf("failure should name the package:\n%s", out)
	}
}

func TestGateFailsOnMissingPackage(t *testing.T) {
	lines := passingLines()
	delete(lines, "jsweep/internal/netcomm")
	out, err := runGate(t, lines)
	if err == nil {
		t.Fatalf("gate passed with a gated package absent:\n%s", out)
	}
	if !strings.Contains(out, "no result for jsweep/internal/netcomm") {
		t.Errorf("failure should name the missing package:\n%s", out)
	}
}

func TestGateFailsOnNoTestFiles(t *testing.T) {
	lines := passingLines()
	// A package that lost its tests reports on a "?" line, not "ok".
	lines["jsweep/internal/obs"] = "?   \tjsweep/internal/obs\t[no test files]"
	out, err := runGate(t, lines)
	if err == nil {
		t.Fatalf("gate passed a [no test files] package:\n%s", out)
	}
	if !strings.Contains(out, "no result for jsweep/internal/obs") {
		t.Errorf("[no test files] should read as a missing result:\n%s", out)
	}
}

func TestGateFailsOnNoStatements(t *testing.T) {
	lines := passingLines()
	lines["jsweep/internal/sweep"] = "ok  \tjsweep/internal/sweep\t0.1s\tcoverage: [no statements]"
	out, err := runGate(t, lines)
	if err == nil {
		t.Fatalf("gate passed an unparseable coverage line:\n%s", out)
	}
	if !strings.Contains(out, "could not parse coverage for jsweep/internal/sweep") {
		t.Errorf("unparseable line should be its own error:\n%s", out)
	}
}

func TestGateUsageError(t *testing.T) {
	if err := exec.Command("sh", "check_coverage.sh").Run(); err == nil {
		t.Fatalf("missing argument must be a usage error")
	}
}
