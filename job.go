package jsweep

// The declarative Job API: one context-aware entry point for every
// backend. A NodeSpec is the complete, serializable description of a
// solve (mesh family + physics + decomposition + solver shape + backend
// selector); NewJob binds it to runtime concerns (progress callbacks,
// transports, logging) through functional options; Job.Run(ctx)
// executes it and returns one unified RunResult regardless of whether
// the ranks were goroutines, OS processes over TCP, or virtual
// processes of the discrete-event simulator.
//
//	spec := jsweep.NodeSpec{Mesh: "kobayashi", N: 24, Procs: 2, Workers: 4}
//	job, _ := jsweep.NewJob(spec, jsweep.WithProgress(func(ev jsweep.ProgressEvent) {
//		log.Printf("iter %d residual %.2e", ev.Iteration, ev.Residual)
//	}))
//	res, err := job.Run(ctx)
//
// Cancelling the context cooperatively stops the solve: the runtime's
// master loops abandon their round, pending collectives unblock through
// a transport abort, and a tcp-launch job kills its child processes.

import (
	"context"
	"fmt"
	"io"
	"time"

	"jsweep/internal/comm"
	"jsweep/internal/nodespec"
	"jsweep/internal/obs"
	"jsweep/internal/registry"
	"jsweep/internal/serve"
	"jsweep/internal/simcluster"
	"jsweep/internal/transport"
)

// Backend selects how a job executes.
type Backend = nodespec.Backend

// The selectable backends.
const (
	// BackendAuto (the NodeSpec zero value) means BackendInProc.
	BackendAuto = nodespec.BackendAuto
	// BackendInProc runs all ranks as goroutines of this process.
	BackendInProc = nodespec.BackendInProc
	// BackendTCPLaunch spawns one node OS process per rank on this host.
	BackendTCPLaunch = nodespec.BackendTCPLaunch
	// BackendTCPAttach runs this process as one rank of a TCP cluster.
	BackendTCPAttach = nodespec.BackendTCPAttach
	// BackendSim replays the job on the discrete-event cluster simulator.
	BackendSim = nodespec.BackendSim
)

// Backends lists the selectable backend names.
func Backends() []string { return nodespec.Backends() }

// Meshes lists the registered problem families a NodeSpec.Mesh may name.
func Meshes() []string { return registry.Names() }

// ProgressEvent is one source-iteration event (iteration number,
// residual, and the executed sweep's statistics).
type ProgressEvent = nodespec.Progress

// ClusterStats sums message costs over all ranks of a cluster solve.
type ClusterStats = nodespec.ClusterStats

// TraceEvent is one recorded event of a traced job: a solve phase span
// (name, iteration, duration) or a lifecycle edge.
type TraceEvent = obs.Event

// WriteTrace dumps trace events one JSON object per line (JSONL), the
// format `jsweep-run -trace out.jsonl` writes.
func WriteTrace(w io.Writer, events []TraceEvent) error {
	return obs.WriteJSONL(w, events)
}

// BalanceReport is the per-group neutron balance of a converged flux.
type BalanceReport = transport.BalanceReport

// RunResult is the unified outcome of Job.Run across all backends.
// Which fields are populated depends on the backend:
//
//   - inproc / tcp-attach: Result (full flux), Stats, Cluster, FluxHash,
//     Trail, and Verified when requested;
//   - tcp-launch: everything the in-process backends report — rank 0
//     streams the converged flux, balance, statistics and per-iteration
//     events back to the launcher — plus the FluxHash certificate
//     (asserted identical across all ranks, and across all hosts under
//     WithHosts);
//   - sim: Sim (virtual makespan and cost breakdown).
type RunResult struct {
	// Backend is the backend that executed the job (Auto resolved).
	Backend Backend
	// Result is the converged transport solution.
	Result *Result
	// Balance is the per-group neutron balance of the converged flux.
	Balance []BalanceReport
	// Stats is this rank's solver statistics for the last sweep/session.
	Stats SweepStats
	// Cluster sums message costs across all ranks.
	Cluster ClusterStats
	// FluxHash is the SHA-256 bit-pattern hash of the converged flux;
	// equal hashes across backends certify bitwise agreement.
	FluxHash string
	// Verified reports a passed serial-reference cross-check.
	Verified bool
	// Trail records every iteration's progress event in order.
	Trail []ProgressEvent
	// Trace holds the solve's span events (build, per-iteration
	// source/sweep/residual phases), oldest first, when the job ran
	// with WithTrace — or when a daemon executed it, since submitted
	// jobs are always traced on the daemon side. Nil otherwise. Dump it
	// with WriteTrace.
	Trace []TraceEvent
	// Sim is the simulated outcome (BackendSim only).
	Sim *SimResult
	// Wall is the job's wall time.
	Wall time.Duration
}

// jobConfig collects the functional options of NewJob.
type jobConfig struct {
	progress    func(ProgressEvent)
	transport   MessageTransport
	log         io.Writer
	nodeCommand []string
	hosts       []string
	verify      bool
	trace       bool
	timeout     time.Duration
	attach      *attachConfig
	costModel   *SimCostModel
}

type attachConfig struct {
	cluster    string
	rank       int
	rendezvous string
}

// JobOption customizes how a Job executes (not what it solves — that is
// the NodeSpec's).
type JobOption func(*jobConfig)

// WithProgress installs a per-iteration callback (iteration, residual,
// sweep statistics). On the in-process backends it runs on the solve
// goroutine — a slow callback slows the solve; on tcp-launch jobs the
// events are streamed from rank 0's process and the callback runs on the
// launcher's collector goroutine. Not available on BackendSim.
func WithProgress(fn func(ProgressEvent)) JobOption {
	return func(c *jobConfig) { c.progress = fn }
}

// WithTransport supplies an explicit message transport: a pre-joined
// TCP cluster membership (tcp-attach) or an in-memory transport
// (inproc, mostly for tests). The caller retains ownership, but a
// cancelled Run aborts the transport to unblock pending collectives —
// it is not reusable after cancellation.
func WithTransport(tr MessageTransport) JobOption {
	return func(c *jobConfig) { c.transport = tr }
}

// WithAttach makes a tcp-attach job join the cluster itself: this
// process becomes rank `rank` of the cluster named `cluster`, wired
// through the rendezvous service at `rendezvous`.
//
// WithAttach predates the serve daemon and remains supported, but new
// deployments that want a long-lived per-host worker should run
// jsweep-serve and submit jobs through Client (or place launches with
// WithHosts) instead: the daemon adds admission control, per-job
// timeouts and warm solver reuse that a hand-attached rank lacks.
func WithAttach(cluster string, rank int, rendezvous string) JobOption {
	return func(c *jobConfig) { c.attach = &attachConfig{cluster: cluster, rank: rank, rendezvous: rendezvous} }
}

// WithLog directs human-readable progress lines to w.
func WithLog(w io.Writer) JobOption {
	return func(c *jobConfig) { c.log = w }
}

// WithNodeCommand overrides the argv prefix that starts one node worker
// of a tcp-launch job (default: a jsweep-node binary next to this
// executable, then on PATH).
func WithNodeCommand(argv []string) JobOption {
	return func(c *jobConfig) { c.nodeCommand = append([]string(nil), argv...) }
}

// WithHosts places a tcp-launch job across running jsweep-serve daemons
// instead of spawning node processes locally: the launcher probes each
// daemon's advertised capacity, carves the spec's ranks into contiguous
// slices greedily (earlier daemons fill first; the first hosts rank 0),
// and submits one slice job per daemon. The cluster wire path and the
// cross-rank flux-hash certificate are unchanged — only placement moves
// from fork/exec to job submission. BackendTCPLaunch only.
func WithHosts(daemons ...string) JobOption {
	return func(c *jobConfig) { c.hosts = append([]string(nil), daemons...) }
}

// WithVerify cross-checks the converged flux against the serial
// reference (bitwise on structured/cyclic meshes, 1e-12 relative on
// unstructured). On tcp-launch jobs rank 0 verifies in its process.
func WithVerify() JobOption {
	return func(c *jobConfig) { c.verify = true }
}

// WithTrace records the solve's span events (build, per-iteration
// source/sweep/residual phases) into RunResult.Trace. On the in-process
// backends the tracer runs in this process; on tcp-launch jobs rank 0
// traces and the events stream back with the result. Tracing never
// touches the numerics — a traced solve is bitwise identical to an
// untraced one. Not available on BackendSim.
func WithTrace() JobOption {
	return func(c *jobConfig) { c.trace = true }
}

// WithTimeout bounds the whole job on every backend: Run derives a
// context deadline from it (composing with the caller's own — whichever
// fires first wins). It additionally bounds the tcp-attach cluster
// bring-up (default 60s) and the tcp-launch supervision (default 5m).
func WithTimeout(d time.Duration) JobOption {
	return func(c *jobConfig) { c.timeout = d }
}

// WithSimCostModel overrides the simulator's calibrated machine
// constants (BackendSim only).
func WithSimCostModel(cm SimCostModel) JobOption {
	return func(c *jobConfig) { c.costModel = &cm }
}

// Job is a bound, validated solve: a NodeSpec plus execution options.
// Build one with NewJob, run it with Run. A Job is reusable — each Run
// builds a fresh solver session — but not concurrently with itself when
// it holds an explicit transport.
type Job struct {
	spec NodeSpec
	cfg  jobConfig
}

// NewJob validates a spec against its backend and binds the execution
// options. Option/backend mismatches (say, WithNodeCommand on an inproc
// job) fail here, not at Run time.
func NewJob(spec NodeSpec, opts ...JobOption) (*Job, error) {
	j := &Job{spec: spec}
	for _, o := range opts {
		o(&j.cfg)
	}
	// Schema validation first: every field failure surfaces as a typed
	// *SpecValidateError before any option/backend reasoning.
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	b := spec.Backend
	if j.cfg.hosts != nil && b != BackendTCPLaunch {
		return nil, fmt.Errorf("jsweep: WithHosts requires backend %q", BackendTCPLaunch)
	}
	switch b {
	case BackendAuto, BackendInProc:
		if j.cfg.attach != nil {
			return nil, fmt.Errorf("jsweep: WithAttach requires backend %q", BackendTCPAttach)
		}
		if j.cfg.nodeCommand != nil {
			return nil, fmt.Errorf("jsweep: WithNodeCommand requires backend %q", BackendTCPLaunch)
		}
	case BackendTCPAttach:
		if (j.cfg.transport == nil) == (j.cfg.attach == nil) {
			return nil, fmt.Errorf("jsweep: backend %q needs exactly one of WithTransport or WithAttach", b)
		}
		if j.cfg.nodeCommand != nil {
			return nil, fmt.Errorf("jsweep: WithNodeCommand requires backend %q", BackendTCPLaunch)
		}
	case BackendTCPLaunch:
		if j.cfg.transport != nil || j.cfg.attach != nil {
			return nil, fmt.Errorf("jsweep: backend %q launches its own cluster — drop WithTransport/WithAttach", b)
		}
		if j.cfg.hosts != nil && j.cfg.nodeCommand != nil {
			return nil, fmt.Errorf("jsweep: WithHosts submits to daemons — WithNodeCommand does not apply")
		}
	case BackendSim:
		if j.cfg.transport != nil || j.cfg.attach != nil || j.cfg.nodeCommand != nil {
			return nil, fmt.Errorf("jsweep: backend %q is simulated — transports and node commands do not apply", b)
		}
		if j.cfg.progress != nil {
			return nil, fmt.Errorf("jsweep: WithProgress is not available on backend %q (one sweep, virtual time)", b)
		}
		if j.cfg.verify {
			return nil, fmt.Errorf("jsweep: WithVerify is not available on backend %q (no flux is computed)", b)
		}
		if j.cfg.trace {
			return nil, fmt.Errorf("jsweep: WithTrace is not available on backend %q (one sweep, virtual time)", b)
		}
	}
	if j.cfg.costModel != nil && b != BackendSim {
		return nil, fmt.Errorf("jsweep: WithSimCostModel requires backend %q", BackendSim)
	}
	return j, nil
}

// meshName resolves the spec's mesh with its default.
func (j *Job) meshName() string { return j.spec.Defaulted().Mesh }

// Spec returns the job's spec.
func (j *Job) Spec() NodeSpec { return j.spec }

// Backend returns the backend the job will execute on (Auto resolved).
func (j *Job) Backend() Backend {
	if j.spec.Backend == BackendAuto {
		return BackendInProc
	}
	return j.spec.Backend
}

// Run executes the job and returns its unified result. The context
// cancels cooperatively on every backend: the in-process runtime's
// master loops abandon their round, a TCP transport is aborted so its
// own collectives AND its peers unblock, and a tcp-launch job kills its
// child processes. After a cancelled Run the job's explicit transport
// (if any) is dead; everything else is reusable.
func (j *Job) Run(ctx context.Context) (*RunResult, error) {
	// WithTimeout bounds the whole job on every backend, not only the
	// ones with their own timeout plumbing.
	if j.cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, j.cfg.timeout)
		defer cancel()
	}
	switch j.Backend() {
	case BackendInProc:
		return j.runAttached(ctx, j.cfg.transport)
	case BackendTCPAttach:
		if j.cfg.transport != nil {
			return j.runAttached(ctx, j.cfg.transport)
		}
		return j.runJoin(ctx)
	case BackendTCPLaunch:
		return j.runLaunch(ctx)
	case BackendSim:
		return j.runSim(ctx)
	}
	return nil, fmt.Errorf("jsweep: unknown backend %q", j.spec.Backend)
}

// fillFromNode copies one rank's NodeResult into the unified result —
// the single place a new NodeResult field must be threaded through.
func (r *RunResult) fillFromNode(nr *nodespec.NodeResult) {
	r.Result = nr.Result
	r.Balance = nr.Balance
	r.Stats = nr.Stats
	r.Cluster = nr.Cluster
	r.FluxHash = nr.FluxHash
	r.Verified = nr.Verified
	r.Trace = nr.Trace
	r.Wall = nr.Wall
}

// nodeOptions assembles the shared per-rank options.
func (j *Job) nodeOptions(rank int, res *RunResult) NodeOptions {
	o := NodeOptions{
		Rank:    rank,
		Timeout: j.cfg.timeout,
		Verify:  j.cfg.verify,
		Log:     j.cfg.log,
		Progress: func(ev ProgressEvent) {
			res.Trail = append(res.Trail, ev)
			if j.cfg.progress != nil {
				j.cfg.progress(ev)
			}
		},
	}
	if j.cfg.trace {
		o.Tracer = obs.NewTracer(0)
	}
	return o
}

// runAttached solves on an explicit (possibly nil) transport in this
// process: the inproc path, and tcp-attach with a pre-joined cluster.
func (j *Job) runAttached(ctx context.Context, tr MessageTransport) (*RunResult, error) {
	res := &RunResult{Backend: j.Backend()}
	rank := 0
	if tr != nil {
		if local := tr.LocalRanks(); len(local) > 0 {
			rank = local[0]
		}
		// Cancellation must unblock collectives parked in RecvOOB:
		// abort (or close) the transport the moment the context dies.
		stop := context.AfterFunc(ctx, func() { abortTransport(tr) })
		defer stop()
	}
	nr, err := nodespec.RunOnCtx(ctx, j.spec, tr, j.nodeOptions(rank, res))
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("jsweep: job cancelled: %w", cerr)
		}
		return nil, err
	}
	res.fillFromNode(nr)
	return res, nil
}

// runJoin is tcp-attach with rendezvous parameters: join, solve, leave.
func (j *Job) runJoin(ctx context.Context) (*RunResult, error) {
	res := &RunResult{Backend: BackendTCPAttach}
	o := j.nodeOptions(j.cfg.attach.rank, res)
	o.Rendezvous = j.cfg.attach.rendezvous
	o.Cluster = j.cfg.attach.cluster
	nr, err := nodespec.RunCtx(ctx, j.spec, o)
	if err != nil {
		return nil, err
	}
	res.fillFromNode(nr)
	return res, nil
}

// runLaunch is tcp-launch: one node OS process per rank on this host
// (or one rank slice per serve daemon under WithHosts). The launch is
// result-complete: a collector listens on loopback, rank 0 dials it and
// streams per-iteration progress plus the full converged result back,
// and the launch-level flux-hash certificate is layered on top.
func (j *Job) runLaunch(ctx context.Context) (*RunResult, error) {
	if len(j.cfg.hosts) > 0 {
		return j.runHosts(ctx)
	}
	res := &RunResult{Backend: BackendTCPLaunch}
	col, err := serve.NewCollector()
	if err != nil {
		return nil, err
	}
	defer col.Close()
	collectCtx, stopCollect := context.WithCancel(ctx)
	defer stopCollect()
	type collected struct {
		nr  *nodespec.NodeResult
		err error
	}
	done := make(chan collected, 1)
	go func() {
		nr, cerr := col.Collect(collectCtx, func(ev ProgressEvent) {
			res.Trail = append(res.Trail, ev)
			if j.cfg.progress != nil {
				j.cfg.progress(ev)
			}
		})
		done <- collected{nr, cerr}
	}()
	lr, err := nodespec.LaunchLocalCtx(ctx, LaunchConfig{
		Spec:        j.spec,
		NodeCommand: j.cfg.nodeCommand,
		Verify:      j.cfg.verify,
		Trace:       j.cfg.trace,
		ResultAddr:  col.Addr(),
		Timeout:     j.cfg.timeout,
		Log:         j.cfg.log,
	})
	if err != nil {
		stopCollect()
		<-done
		return nil, err
	}
	// Rank 0 wrote its terminal frame before exiting, so the stream is
	// already complete (or conclusively broken) once the launch returns;
	// the grace period only covers the collector still draining buffers.
	var c collected
	select {
	case c = <-done:
	case <-time.After(10 * time.Second):
		stopCollect()
		c = <-done
	}
	if c.err != nil {
		// The cross-rank hash certificate stands on its own: a broken
		// result stream degrades the result to hash-only, it does not
		// fail a solve every rank completed and certified.
		serve.ResultStreamDegraded()
		if j.cfg.log != nil {
			fmt.Fprintf(j.cfg.log, "jsweep: launch result stream broken (hash-only result): %v\n", c.err)
		}
	} else {
		res.fillFromNode(c.nr)
	}
	res.FluxHash = lr.FluxHash
	res.Verified = lr.Verified
	res.Wall = lr.Wall
	return res, nil
}

// runHosts is tcp-launch over serve daemons: multi-host placement.
func (j *Job) runHosts(ctx context.Context) (*RunResult, error) {
	res := &RunResult{Backend: BackendTCPLaunch}
	hr, err := serve.LaunchHosts(ctx, serve.HostConfig{
		Spec:    j.spec,
		Daemons: j.cfg.hosts,
		Verify:  j.cfg.verify,
		Timeout: j.cfg.timeout,
		Log:     j.cfg.log,
		Progress: func(ev ProgressEvent) {
			res.Trail = append(res.Trail, ev)
			if j.cfg.progress != nil {
				j.cfg.progress(ev)
			}
		},
	})
	if err != nil {
		return nil, err
	}
	res.fillFromNode(hr.Result)
	res.FluxHash = hr.FluxHash
	res.Wall = hr.Wall
	return res, nil
}

// runSim replays the job on the discrete-event cluster simulator.
func (j *Job) runSim(ctx context.Context) (*RunResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sr, err := nodespec.BuildSim(j.spec)
	if err != nil {
		return nil, err
	}
	cm := sr.Cost
	if j.cfg.costModel != nil {
		cm = *j.cfg.costModel
	}
	t0 := time.Now()
	out, err := simcluster.Simulate(sr.Workload, sr.Config, cm)
	if err != nil {
		return nil, err
	}
	return &RunResult{Backend: BackendSim, Sim: out, Wall: time.Since(t0)}, nil
}

// abortTransport tears a transport down hard: Abort when the backend
// has one (netcomm — peers observe a failure, not a clean close), Close
// otherwise (the in-memory backend, whose Close already unblocks every
// receiver).
func abortTransport(tr comm.Transport) {
	if a, ok := tr.(interface{ Abort() }); ok {
		a.Abort()
		return
	}
	tr.Close()
}

// SolveCtx is Solve with cooperative cancellation and per-iteration
// progress (see transport.IterConfig.Progress): the building block the
// Job API rests on, for callers wiring their own solver.
func SolveCtx(ctx context.Context, p *Problem, ex SweepExecutor, cfg IterConfig) (*Result, error) {
	return transport.SourceIterateCtx(ctx, p, ex, cfg)
}

// IterProgress is the per-iteration record SolveCtx reports through
// IterConfig.Progress.
type IterProgress = transport.Progress
