package jsweep

// Multi-process solves: the same patch-centric runtime that runs all
// ranks as goroutines (the in-memory comm backend) can run each rank as
// its own OS process over the TCP backend (internal/netcomm) — one
// jsweep-node worker per rank, wired through a rendezvous service, with
// the flux allgathered per sweep so every rank returns the identical
// bit pattern. The NodeSpec is the single source of truth: every rank
// deterministically rebuilds the same mesh, materials and placement
// from it, so no mesh data crosses the wire.

import (
	"context"

	"jsweep/internal/comm"
	"jsweep/internal/netcomm"
	"jsweep/internal/nodespec"
)

type (
	// MessageTransport is the pluggable message-passing backend behind
	// the runtime (SolverOptions.Transport): the in-memory transport or
	// a TCP cluster membership from JoinCluster.
	MessageTransport = comm.Transport
	// NodeSpec describes a complete solve; every rank of a cluster
	// rebuilds the identical problem from it.
	NodeSpec = nodespec.Spec
	// NodeOptions places one rank of a cluster solve.
	NodeOptions = nodespec.NodeOptions
	// NodeResult is one rank's view of a finished cluster solve.
	NodeResult = nodespec.NodeResult
	// LaunchConfig shapes a local multi-process launch.
	LaunchConfig = nodespec.LaunchConfig
	// LaunchResult summarizes a completed launch.
	LaunchResult = nodespec.LaunchResult
	// Rendezvous is the cluster bring-up service ranks report to.
	Rendezvous = netcomm.Rendezvous
	// SpecFieldError is one typed NodeSpec validation failure: the JSON
	// field that is wrong and why.
	SpecFieldError = nodespec.FieldError
	// SpecValidateError aggregates every field failure of one
	// NodeSpec.Validate call (errors.As-matchable).
	SpecValidateError = nodespec.ValidateError
)

// CurrentSpecVersion is the NodeSpec wire-schema version this build
// speaks; see NodeSpec.SpecVersion.
const CurrentSpecVersion = nodespec.CurrentSpecVersion

// MarshalSpec encodes a spec as versioned JSON (the submission wire
// form); UnmarshalSpec is the strict inverse (unknown fields and newer
// schema versions are rejected, never guessed at).
func MarshalSpec(s NodeSpec) (string, error) { return nodespec.MarshalSpec(s) }

// UnmarshalSpec decodes a spec from its JSON wire form.
func UnmarshalSpec(data string) (NodeSpec, error) { return nodespec.UnmarshalSpec(data) }

// FluxHash is the SHA-256 bit-pattern digest of a flux (the value
// RunResult.FluxHash and the cross-rank launch certificate carry):
// equal hashes mean bitwise-identical solutions.
func FluxHash(phi [][]float64) string { return nodespec.FluxHash(phi) }

// NewMemTransport returns an in-memory transport hosting all n ranks in
// this process (the default backend the runtime creates on its own; the
// explicit constructor exists for conformance tests and custom wiring).
func NewMemTransport(n int) (MessageTransport, error) { return comm.NewTransport(n) }

// StartRendezvous starts the cluster bring-up service for a world-rank
// launch on addr (e.g. "127.0.0.1:0").
func StartRendezvous(addr, cluster string, world int) (*Rendezvous, error) {
	return netcomm.StartRendezvous(addr, cluster, world)
}

// JoinCluster attaches this process to a TCP cluster as one rank. The
// returned transport plugs into SolverOptions.Transport; the caller
// closes it after Solver.Close (Close is collective across ranks).
func JoinCluster(cluster string, rank, world int, rendezvous string) (MessageTransport, error) {
	return netcomm.Join(netcomm.Options{
		Cluster: cluster, Rank: rank, World: world, Rendezvous: rendezvous,
	})
}

// JoinClusterCtx is JoinCluster with cooperative cancellation: an
// earlier context deadline tightens the bring-up timeout, and a cancel
// returns ctx.Err() promptly (an already-built mesh is aborted).
func JoinClusterCtx(ctx context.Context, cluster string, rank, world int, rendezvous string) (MessageTransport, error) {
	return netcomm.JoinCtx(ctx, netcomm.Options{
		Cluster: cluster, Rank: rank, World: world, Rendezvous: rendezvous,
	})
}

// BuildFromSpec deterministically constructs a spec's problem and
// decomposition (identical on every rank).
func BuildFromSpec(spec NodeSpec) (*Problem, *Decomposition, error) { return nodespec.Build(spec) }

// SolverOptionsFromSpec shapes solver options from a spec; tr is nil for
// a single-process solve or the rank's transport for a cluster node.
func SolverOptionsFromSpec(spec NodeSpec, tr MessageTransport) (SolverOptions, error) {
	return nodespec.SolverOptions(spec, tr)
}

// RunNode joins a TCP cluster as one rank and drives the full source
// iteration across it (the body of cmd/jsweep-node).
func RunNode(spec NodeSpec, o NodeOptions) (*NodeResult, error) { return nodespec.Run(spec, o) }

// RunNodeCtx is RunNode with cooperative cancellation: a cancelled rank
// aborts its transport, which unblocks it locally and propagates as a
// transport failure to every peer.
func RunNodeCtx(ctx context.Context, spec NodeSpec, o NodeOptions) (*NodeResult, error) {
	return nodespec.RunCtx(ctx, spec, o)
}

// LaunchLocal spawns spec.Procs jsweep-node OS processes on this host,
// wires them through a local rendezvous, and certifies that every rank
// reported the identical flux bit pattern.
func LaunchLocal(cfg LaunchConfig) (*LaunchResult, error) { return nodespec.LaunchLocal(cfg) }

// LaunchLocalCtx is LaunchLocal with cooperative cancellation and
// fail-fast supervision: the first dead rank, a done context or the
// timeout kills every sibling process and closes the rendezvous, then
// reaps all children before returning — no orphan processes.
func LaunchLocalCtx(ctx context.Context, cfg LaunchConfig) (*LaunchResult, error) {
	return nodespec.LaunchLocalCtx(ctx, cfg)
}
