GO ?= go

.PHONY: all build test short race vet bench fuzz agg-bench iter-bench cover clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Fast loop: skips the example smoke tests and stress cases.
short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# Short fuzz session over the stream/frame codecs.
fuzz:
	$(GO) test ./internal/core -run xxx -fuzz FuzzCodecRoundTrip -fuzztime 30s

# Reproduce the message-aggregation batch-size sweep (paper Fig. 12
# methodology applied to §IV batching) and record BENCH_aggregation.json.
agg-bench:
	$(GO) run ./cmd/jsweep-bench -exp agg -fidelity quick -out BENCH_aggregation.json

# Reproduce the persistent-session iteration-throughput comparison
# (ReuseRuntime on vs off over full source-iteration solves) and record
# BENCH_iteration.json.
iter-bench:
	$(GO) run ./cmd/jsweep-bench -exp iter -fidelity quick -out BENCH_iteration.json

# Per-package coverage with the CI gates for the session-critical
# packages (internal/runtime, internal/sweep). The redirect (not a pipe)
# preserves go test's exit status under plain sh.
cover:
	$(GO) test -cover ./... > cover.out || (cat cover.out; exit 1)
	cat cover.out
	./scripts/check_coverage.sh cover.out

clean:
	$(GO) clean ./...
