GO ?= go

.PHONY: all build test short race vet fmt bench fuzz agg-bench iter-bench cyclic-bench net-bench obs-bench net-smoke serve-smoke cover clean examples api-check

all: build vet test

# Build every example and run each to completion with tiny parameters
# (the smoke tests shell out to the go toolchain per example).
examples:
	$(GO) build ./examples/...
	$(GO) test ./examples -count=1

# Public-API stability gate: fail when an exported symbol of the jsweep
# package was removed relative to API_BASE (default: the PR base branch
# on CI, else the previous commit).
api-check:
	./scripts/api_check.sh $(API_BASE)

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Fast loop: skips the example smoke tests and stress cases.
short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# go vet plus jsweepvet, the in-repo analyzer suite that machine-checks
# jsweep's own invariants (see DESIGN.md "Static analysis").
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/jsweepvet ./...

# Fail when any file needs gofmt (mirrors the CI gate).
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "files need gofmt:"; echo "$$out"; exit 1; fi

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# Short fuzz sessions over the stream/frame codecs, the SCC condensation
# invariants and the netcomm wire format (one -fuzz target per go test
# invocation).
fuzz:
	$(GO) test ./internal/core -run xxx -fuzz FuzzCodecRoundTrip -fuzztime 30s
	$(GO) test ./internal/graph -run xxx -fuzz FuzzSCCCondense -fuzztime 30s
	$(GO) test ./internal/netcomm -run xxx -fuzz FuzzNetFrameRoundTrip -fuzztime 30s
	$(GO) test ./internal/netcomm -run xxx -fuzz FuzzSubmitLaneRoundTrip -fuzztime 30s
	$(GO) test ./internal/netcomm -run xxx -fuzz FuzzSubmitFrameRoundTrip -fuzztime 30s

# Reproduce the message-aggregation batch-size sweep (paper Fig. 12
# methodology applied to §IV batching) and record BENCH_aggregation.json.
agg-bench:
	$(GO) run ./cmd/jsweep-bench -exp agg -fidelity quick -out BENCH_aggregation.json

# Reproduce the persistent-session iteration-throughput comparison
# (ReuseRuntime on vs off over full source-iteration solves) and record
# BENCH_iteration.json.
iter-bench:
	$(GO) run ./cmd/jsweep-bench -exp iter -fidelity quick -out BENCH_iteration.json

# Reproduce the cyclic-mesh torture case (twisted rings, SCC detection +
# feedback-edge flux lagging) and record BENCH_cyclic.json.
cyclic-bench:
	$(GO) run ./cmd/jsweep-bench -exp cyclic -fidelity quick -out BENCH_cyclic.json

# Compare the in-memory, shared-memory-ring, Unix-socket and
# TCP-localhost transport backends (frames, bytes on the wire,
# per-iteration time and heap allocations, aggregation off/on, plus a
# buffer-pool ablation) and record BENCH_netcomm.json.
net-bench:
	$(GO) run ./cmd/jsweep-bench -exp net -fidelity quick -out BENCH_netcomm.json

# Measure the observability layer's hot-path cost (process-default
# metric registry live vs obs.SetDefault(nil) no-op handles; both legs
# must produce bitwise identical flux) and record BENCH_obs.json.
obs-bench:
	$(GO) run ./cmd/jsweep-bench -exp obs -fidelity quick -out BENCH_obs.json

# Multi-process smoke: 4 jsweep-node OS processes on each wire flavor —
# shared-memory rings (the tier -wire auto resolves to on one host),
# Unix-domain sockets, and forced TCP — bitwise reference parity
# asserted by rank 0 (mirrors the CI job).
net-smoke:
	$(GO) build -o bin/ ./cmd/jsweep-run ./cmd/jsweep-node
	./bin/jsweep-run -backend tcp -wire shm -node-bin ./bin/jsweep-node \
		-mesh kobayashi -n 16 -sn 2 -procs 4 -workers 2 -agg -verify
	./bin/jsweep-run -backend tcp -wire uds -node-bin ./bin/jsweep-node \
		-mesh kobayashi -n 16 -sn 2 -procs 4 -workers 2 -agg -verify
	./bin/jsweep-run -backend tcp -wire tcp -node-bin ./bin/jsweep-node \
		-mesh kobayashi -n 16 -sn 2 -procs 4 -workers 2 -agg -verify

# Sweep-as-a-service smoke: real jsweep-serve daemons accept a queued
# submission from `jsweep-run -serve` and host a two-daemon tcp-launch
# placement (`-hosts`), then drain on SIGTERM (mirrors the CI job).
serve-smoke:
	./scripts/serve_smoke.sh bin

# Per-package coverage with the CI gates for the session-critical
# packages (internal/runtime, internal/sweep, internal/graph). The
# redirect (not a pipe) preserves go test's exit status under plain sh.
cover:
	$(GO) test -cover ./... > cover.out || (cat cover.out; exit 1)
	cat cover.out
	./scripts/check_coverage.sh cover.out

clean:
	$(GO) clean ./...
