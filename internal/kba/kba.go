// Package kba implements the Koch-Baker-Alcouffe sweep baseline for
// regular structured meshes (paper §I, §II-C): the 3-D grid is decomposed
// into Px×Py columns (each owning the full z extent), and sweeps pipeline
// z-plane blocks and angles through the column wavefront. KBA is the
// reference point for structured sweeps — Table I compares JSweep's
// parallel efficiency on Kobayashi-400 against Denovo's KBA — and its
// analytic performance model is used for the Table I rows.
//
// The executor here performs the real computation in KBA schedule order
// (another dependency-respecting schedule, so results match the serial
// reference bit-for-bit); the Model type provides the classic stage-count
// efficiency estimate.
package kba

import (
	"fmt"

	"jsweep/internal/geom"
	"jsweep/internal/mesh"
	"jsweep/internal/transport"
)

// Executor sweeps a structured mesh in KBA column order. Implements
// transport.SweepExecutor.
type Executor struct {
	prob *transport.Problem
	sm   *mesh.Structured3D
	// Px, Py is the columnar process grid.
	Px, Py int
	// KPlanes is the z-block pipeline chunk (paper notation k_b).
	KPlanes int

	stats Stats
}

// Stats describes the last sweep.
type Stats struct {
	// Stages is the pipeline stage count actually executed (per angle
	// sum of column wavefront depth × z-chunks).
	Stages int64
	// VertexSolves counts kernel invocations.
	VertexSolves int64
}

// New builds a KBA executor. The problem's mesh must be structured.
func New(prob *transport.Problem, px, py, kPlanes int) (*Executor, error) {
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	sm, ok := prob.M.(*mesh.Structured3D)
	if !ok {
		return nil, fmt.Errorf("kba: requires a structured mesh")
	}
	if px < 1 || py < 1 {
		return nil, fmt.Errorf("kba: need px,py >= 1 (got %d,%d)", px, py)
	}
	if px > sm.NX || py > sm.NY {
		return nil, fmt.Errorf("kba: process grid %dx%d exceeds mesh %dx%d", px, py, sm.NX, sm.NY)
	}
	if kPlanes < 1 {
		kPlanes = 1
	}
	return &Executor{prob: prob, sm: sm, Px: px, Py: py, KPlanes: kPlanes}, nil
}

// Stats returns the last sweep's statistics.
func (e *Executor) Stats() Stats { return e.stats }

// Sweep implements transport.SweepExecutor.
func (e *Executor) Sweep(q [][]float64) ([][]float64, error) {
	p := e.prob
	sm := e.sm
	G := p.Groups
	nc := sm.NumCells()
	phi := p.NewFlux()
	psiFace := make([]float64, nc*6*G)
	qCell := make([]float64, G)
	psiOut := make([]float64, 6*G)
	psiBar := make([]float64, G)
	e.stats = Stats{}

	// Column extents.
	colX := splitRange(sm.NX, e.Px)
	colY := splitRange(sm.NY, e.Py)

	for _, d := range p.Quad.Directions {
		for i := range psiFace {
			psiFace[i] = 0
		}
		sx := d.Omega.X > 0
		sy := d.Omega.Y > 0
		sz := d.Omega.Z > 0
		// Column wavefront: iterate the process grid in direction order;
		// row-major covers the 2-D wavefront dependencies.
		for bi := 0; bi < e.Px; bi++ {
			cx := colX[dirIdx(bi, e.Px, sx)]
			for bj := 0; bj < e.Py; bj++ {
				cy := colY[dirIdx(bj, e.Py, sy)]
				// Pipeline z in KPlanes chunks.
				for k0 := 0; k0 < sm.NZ; k0 += e.KPlanes {
					k1 := k0 + e.KPlanes
					if k1 > sm.NZ {
						k1 = sm.NZ
					}
					e.stats.Stages++
					e.sweepBlock(d.Omega, d.Weight, q, phi, psiFace, qCell, psiOut, psiBar,
						cx, cy, [2]int{k0, k1}, sx, sy, sz)
				}
			}
		}
	}
	return phi, nil
}

// sweepBlock solves one column block of cells in direction order.
func (e *Executor) sweepBlock(omega geom.Vec3, w float64, q, phi [][]float64,
	psiFace, qCell, psiOut, psiBar []float64,
	cx, cy, cz [2]int, sx, sy, sz bool) {
	p := e.prob
	sm := e.sm
	G := p.Groups
	for ko := 0; ko < cz[1]-cz[0]; ko++ {
		k := cz[0] + ko
		if !sz {
			k = cz[1] - 1 - ko
		}
		for jo := 0; jo < cy[1]-cy[0]; jo++ {
			j := cy[0] + jo
			if !sy {
				j = cy[1] - 1 - jo
			}
			for io := 0; io < cx[1]-cx[0]; io++ {
				i := cx[0] + io
				if !sx {
					i = cx[1] - 1 - io
				}
				c := sm.Index(i, j, k)
				base := int(c) * 6 * G
				for g := 0; g < G; g++ {
					qCell[g] = q[g][c]
				}
				p.SolveCell(c, omega, qCell, psiFace[base:base+6*G], psiOut, psiBar)
				for g := 0; g < G; g++ {
					phi[g][c] += w * psiBar[g]
				}
				for f := 0; f < 6; f++ {
					face := sm.Face(c, f)
					if face.Neighbor < 0 || omega.Dot(face.Normal) <= mesh.UpwindEps {
						continue
					}
					back := f ^ 1 // structured faces pair lo/hi
					dst := (int(face.Neighbor)*6 + back) * G
					copy(psiFace[dst:dst+G], psiOut[f*G:f*G+G])
				}
				e.stats.VertexSolves++
			}
		}
	}
}

// splitRange splits [0, n) into p nearly-equal [start, end) ranges.
func splitRange(n, p int) [][2]int {
	out := make([][2]int, p)
	for i := 0; i < p; i++ {
		out[i] = [2]int{i * n / p, (i + 1) * n / p}
	}
	return out
}

// dirIdx returns the i-th index in ascending (pos=true) or descending
// order.
func dirIdx(i, n int, pos bool) int {
	if pos {
		return i
	}
	return n - 1 - i
}

// Model is the classic KBA performance model (Baker & Koch; as used in the
// Adams et al. sweep analyses): a full 8-octant sweep over an
// Nx×Ny×Nz grid on a Px×Py process grid with Ma angles per octant and
// z-blocks of Kb planes completes in
//
//	stages = 2·(Px + Py − 2) + 8·Ma·⌈Nz/Kb⌉
//
// pipeline stages, each costing the block compute time plus the block face
// communication.
type Model struct {
	Nx, Ny, Nz int
	// Px, Py is the process grid (P = Px·Py cores).
	Px, Py int
	// Ma is the number of angles per octant; Kb the z-block size.
	Ma, Kb int
	// TCell is the kernel time per cell-angle [s]; Latency the per-message
	// cost [s]; InvBandwidth seconds per byte; BytesPerFace the payload per
	// cell face.
	TCell, Latency, InvBandwidth, BytesPerFace float64
}

// Stages returns the pipeline stage count.
func (m Model) Stages() int {
	nzb := (m.Nz + m.Kb - 1) / m.Kb
	return 2*(m.Px+m.Py-2) + 8*m.Ma*nzb
}

// StageTime returns the wall time of one pipeline stage.
func (m Model) StageTime() float64 {
	bx := float64(m.Nx) / float64(m.Px)
	by := float64(m.Ny) / float64(m.Py)
	blockCells := bx * by * float64(m.Kb)
	compute := blockCells * m.TCell
	// Two face messages per stage (x and y downstream neighbours).
	faceBytes := (bx + by) * float64(m.Kb) * m.BytesPerFace
	comm := 2*m.Latency + faceBytes*m.InvBandwidth
	return compute + comm
}

// Time returns the modeled full-sweep wall time.
func (m Model) Time() float64 { return float64(m.Stages()) * m.StageTime() }

// Efficiency returns modeled parallel efficiency versus a single core.
func (m Model) Efficiency() float64 {
	serial := float64(m.Nx) * float64(m.Ny) * float64(m.Nz) * float64(8*m.Ma) * m.TCell
	par := m.Time() * float64(m.Px*m.Py)
	if par == 0 {
		return 0
	}
	return serial / par
}

var _ transport.SweepExecutor = (*Executor)(nil)
