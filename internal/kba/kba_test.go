package kba_test

import (
	"testing"

	"jsweep/internal/kba"
	"jsweep/internal/kobayashi"
	"jsweep/internal/mesh"
	"jsweep/internal/meshgen"
	"jsweep/internal/quadrature"
	"jsweep/internal/sweep"
	"jsweep/internal/transport"
)

func kobaProb(t *testing.T, n int) *transport.Problem {
	t.Helper()
	prob, _, err := kobayashi.Build(kobayashi.Spec{N: n, SnOrder: 2, Scheme: transport.Diamond})
	if err != nil {
		t.Fatal(err)
	}
	return prob
}

// KBA is just another dependency-respecting schedule: it must reproduce
// the serial reference bit-for-bit.
func TestKBAMatchesReference(t *testing.T) {
	prob := kobaProb(t, 12)
	q := uniformQ(prob)
	ref, err := sweep.NewReference(prob)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Sweep(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, grid := range [][3]int{{1, 1, 4}, {2, 2, 3}, {3, 4, 1}, {4, 4, 12}} {
		ex, err := kba.New(prob, grid[0], grid[1], grid[2])
		if err != nil {
			t.Fatal(err)
		}
		got, err := ex.Sweep(q)
		if err != nil {
			t.Fatal(err)
		}
		for g := range want {
			for c := range want[g] {
				if want[g][c] != got[g][c] {
					t.Fatalf("grid %v: cell %d: %v != %v", grid, c, want[g][c], got[g][c])
				}
			}
		}
		st := ex.Stats()
		if st.VertexSolves != int64(prob.M.NumCells())*int64(prob.Quad.NumAngles()) {
			t.Errorf("grid %v: vertex solves = %d", grid, st.VertexSolves)
		}
	}
}

func uniformQ(prob *transport.Problem) [][]float64 {
	q := prob.NewFlux()
	zero := prob.NewFlux()
	scratch := make([]float64, prob.Groups)
	for c := 0; c < prob.M.NumCells(); c++ {
		prob.EmissionDensity(mesh.CellID(c), zero, scratch)
		for g := 0; g < prob.Groups; g++ {
			q[g][c] = scratch[g]
		}
	}
	return q
}

func TestKBARejectsUnstructured(t *testing.T) {
	m, err := meshgen.Ball(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	quad, _ := quadrature.New(2)
	prob := &transport.Problem{
		M:      m,
		Mats:   []transport.Material{{SigmaT: []float64{1}}},
		Quad:   quad,
		Groups: 1,
	}
	if _, err := kba.New(prob, 2, 2, 1); err == nil {
		t.Error("KBA must reject unstructured meshes")
	}
}

func TestKBAValidation(t *testing.T) {
	prob := kobaProb(t, 8)
	if _, err := kba.New(prob, 0, 2, 1); err == nil {
		t.Error("px=0 should fail")
	}
	if _, err := kba.New(prob, 100, 2, 1); err == nil {
		t.Error("px>NX should fail")
	}
}

func TestKBAStageCount(t *testing.T) {
	prob := kobaProb(t, 12)
	ex, err := kba.New(prob, 3, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Sweep(uniformQ(prob)); err != nil {
		t.Fatal(err)
	}
	// 8 angles × 6 columns × ceil(12/4)=3 z-chunks = 144 stages executed.
	if got := ex.Stats().Stages; got != 144 {
		t.Errorf("stages = %d, want 144", got)
	}
}

func TestModelStages(t *testing.T) {
	m := kba.Model{Nx: 400, Ny: 400, Nz: 400, Px: 16, Py: 16, Ma: 40, Kb: 20}
	// 2(16+16-2) + 8·40·20 = 60 + 6400 = 6460.
	if got := m.Stages(); got != 6460 {
		t.Errorf("stages = %d, want 6460", got)
	}
}

func TestModelEfficiencyBehaviour(t *testing.T) {
	base := kba.Model{
		Nx: 400, Ny: 400, Nz: 400, Ma: 40, Kb: 10,
		TCell: 1e-6, Latency: 2e-6, InvBandwidth: 1.0 / 5e9, BytesPerFace: 8,
	}
	// Efficiency must fall as the process grid grows (fixed problem).
	prev := 2.0
	for _, p := range []int{4, 8, 16, 32} {
		m := base
		m.Px, m.Py = p, p
		eff := m.Efficiency()
		if eff <= 0 || eff > 1.001 {
			t.Fatalf("P=%d²: efficiency %v out of range", p, eff)
		}
		if eff >= prev {
			t.Errorf("P=%d²: efficiency %v did not fall (prev %v)", p, eff, prev)
		}
		prev = eff
	}
	// Bigger problems at fixed P are more efficient.
	small, big := base, base
	small.Px, small.Py, big.Px, big.Py = 16, 16, 16, 16
	big.Nx, big.Ny, big.Nz = 800, 800, 800
	if big.Efficiency() <= small.Efficiency() {
		t.Error("weak-scaling the problem should raise KBA efficiency")
	}
}
