// Package testprog provides small deterministic patch-programs used to
// validate the execution semantics of the core engine and the parallel
// runtime against each other: a DAG accumulator (each program sums inputs
// and forwards) and a ping-pong chain reproducing the zig-zag partial
// computation scenario of paper Fig. 4.
package testprog

import (
	"encoding/binary"
	"sync"

	"jsweep/internal/core"
	"jsweep/internal/mesh"
)

// Results collects program outcomes across concurrent executions.
type Results struct {
	mu sync.Mutex
	m  map[core.ProgramKey]int64
}

// NewResults returns an empty result sink.
func NewResults() *Results { return &Results{m: make(map[core.ProgramKey]int64)} }

// Set records the outcome of a program.
func (r *Results) Set(k core.ProgramKey, v int64) {
	r.mu.Lock()
	r.m[k] = v
	r.mu.Unlock()
}

// Get returns the recorded outcome.
func (r *Results) Get(k core.ProgramKey) (int64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.m[k]
	return v, ok
}

// Len returns the number of recorded outcomes.
func (r *Results) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.m)
}

func payload(v int64) []byte {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, uint64(v))
	return buf
}

func value(b []byte) int64 { return int64(binary.LittleEndian.Uint64(b)) }

// Accumulator is a patch-program node of a program-level DAG: it waits for
// one value from each upwind program, then emits seed + sum(inputs) to all
// downwind programs and records the value. Work = 1 until computed.
type Accumulator struct {
	Key      core.ProgramKey
	Seed     int64
	NumIn    int
	Out      []core.ProgramKey
	Sink     *Results
	InitSeen int

	got      int
	sum      int64
	computed bool
	pending  []core.Stream
}

// Init implements core.PatchProgram.
func (a *Accumulator) Init() { a.InitSeen++ }

// Reset returns the accumulator to its pre-run state so a persistent
// runtime session can execute it again (Init is not called twice).
func (a *Accumulator) Reset() {
	a.got = 0
	a.sum = 0
	a.computed = false
	a.pending = a.pending[:0]
}

// Input implements core.PatchProgram.
func (a *Accumulator) Input(s core.Stream) {
	a.sum += value(s.Payload)
	a.got++
}

// Compute implements core.PatchProgram.
func (a *Accumulator) Compute() {
	if a.computed || a.got < a.NumIn {
		return
	}
	a.computed = true
	v := a.Seed + a.sum
	a.Sink.Set(a.Key, v)
	for _, tgt := range a.Out {
		a.pending = append(a.pending, core.Stream{
			SrcPatch: a.Key.Patch, SrcTask: a.Key.Task,
			TgtPatch: tgt.Patch, TgtTask: tgt.Task,
			Payload: payload(v),
		})
	}
}

// Output implements core.PatchProgram.
func (a *Accumulator) Output() (core.Stream, bool) {
	if len(a.pending) == 0 {
		return core.Stream{}, false
	}
	s := a.pending[0]
	a.pending = a.pending[1:]
	return s, true
}

// VoteToHalt implements core.PatchProgram.
func (a *Accumulator) VoteToHalt() bool { return true }

// RemainingWork implements core.WorkloadReporter.
func (a *Accumulator) RemainingWork() int64 {
	if a.computed {
		return 0
	}
	return 1
}

// PingPong is one side of the Fig. 4 zig-zag: two programs exchange a
// counter Rounds times; each needs the other's previous value to proceed,
// so neither can run to completion in one activation — the reentrancy
// (partial computation) test. The program with Starter=true emits round 0
// unprompted.
type PingPong struct {
	Key     core.ProgramKey
	Peer    core.ProgramKey
	Rounds  int
	Starter bool
	Sink    *Results

	sent     int
	received int
	haveBall bool
	ball     int64
	pending  []core.Stream
}

// Init implements core.PatchProgram.
func (p *PingPong) Init() {
	if p.Starter {
		p.haveBall = true
		p.ball = 0
	}
}

// Reset returns the program to its initial state for another session
// round; the starter holds the ball again.
func (p *PingPong) Reset() {
	p.sent = 0
	p.received = 0
	p.ball = 0
	p.haveBall = p.Starter
	p.pending = p.pending[:0]
}

// Input implements core.PatchProgram.
func (p *PingPong) Input(s core.Stream) {
	p.haveBall = true
	p.ball = value(s.Payload)
	p.received++
}

// Compute implements core.PatchProgram.
func (p *PingPong) Compute() {
	if !p.haveBall || p.sent >= p.Rounds {
		return
	}
	v := p.ball // ball value seen at this hit
	p.haveBall = false
	p.sent++
	done := p.sent == p.Rounds
	if done {
		p.Sink.Set(p.Key, v)
	}
	// Forward the incremented ball — the starter even on its last hit, so
	// the peer can complete its final round; the non-starter's last hit
	// ends the game.
	if !done || p.Starter {
		p.pending = append(p.pending, core.Stream{
			SrcPatch: p.Key.Patch, SrcTask: p.Key.Task,
			TgtPatch: p.Peer.Patch, TgtTask: p.Peer.Task,
			Payload: payload(v + 1),
		})
	}
}

// Output implements core.PatchProgram.
func (p *PingPong) Output() (core.Stream, bool) {
	if len(p.pending) == 0 {
		return core.Stream{}, false
	}
	s := p.pending[0]
	p.pending = p.pending[1:]
	return s, true
}

// VoteToHalt implements core.PatchProgram.
func (p *PingPong) VoteToHalt() bool { return !p.haveBall || p.sent >= p.Rounds }

// RemainingWork implements core.WorkloadReporter.
func (p *PingPong) RemainingWork() int64 { return int64(p.Rounds - p.sent) }

// GridSpec describes a W×H grid of accumulator programs with edges right
// and down — a miniature sweep-shaped DAG with known results.
type GridSpec struct {
	W, H int
}

// Key returns the program key of grid node (x, y).
func (g GridSpec) Key(x, y int) core.ProgramKey {
	return core.ProgramKey{Patch: mesh.PatchID(x + g.W*y), Task: 0}
}

// Build creates the grid's accumulators (seed = 1 each), returning them in
// row-major order together with the sink.
func (g GridSpec) Build() ([]*Accumulator, *Results) {
	sink := NewResults()
	progs := make([]*Accumulator, 0, g.W*g.H)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			a := &Accumulator{Key: g.Key(x, y), Seed: 1, Sink: sink}
			if x > 0 {
				a.NumIn++
			}
			if y > 0 {
				a.NumIn++
			}
			if x < g.W-1 {
				a.Out = append(a.Out, g.Key(x+1, y))
			}
			if y < g.H-1 {
				a.Out = append(a.Out, g.Key(x, y+1))
			}
			progs = append(progs, a)
		}
	}
	return progs, sink
}

// Want returns the expected accumulator value at (x, y): these are the
// Delannoy-like path-count sums, computed by dynamic programming.
func (g GridSpec) Want() map[core.ProgramKey]int64 {
	vals := make([]int64, g.W*g.H)
	want := make(map[core.ProgramKey]int64, g.W*g.H)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			v := int64(1)
			if x > 0 {
				v += vals[(x-1)+g.W*y]
			}
			if y > 0 {
				v += vals[x+g.W*(y-1)]
			}
			vals[x+g.W*y] = v
			want[g.Key(x, y)] = v
		}
	}
	return want
}
