package sweep

import (
	"testing"

	"jsweep/internal/core"
	"jsweep/internal/geom"
	"jsweep/internal/graph"
	"jsweep/internal/mesh"
	"jsweep/internal/quadrature"
	"jsweep/internal/transport"
)

// programFixture builds one patch-program over a 4³ single-patch mesh.
func programFixture(t *testing.T, grain int, record bool) (*Program, *transport.Problem) {
	t.Helper()
	m, err := mesh.NewStructured3D(4, 4, 4, geom.Vec3{}, geom.Vec3{X: 4, Y: 4, Z: 4})
	if err != nil {
		t.Fatal(err)
	}
	d, err := m.BlockDecompose(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	quad, err := quadrature.New(2)
	if err != nil {
		t.Fatal(err)
	}
	prob := &transport.Problem{
		M:      m,
		Mats:   []transport.Material{{SigmaT: []float64{1}, Source: []float64{1}}},
		Quad:   quad,
		Groups: 1,
		Scheme: transport.Diamond,
	}
	g := graph.BuildPatchGraph(d, 0, quad.Directions[0].Omega, 0)
	q := prob.NewFlux()
	for c := range q[0] {
		q[0][c] = 1
	}
	return NewProgram(ProgramConfig{
		Prob: prob, Graph: g, Dir: quad.Directions[0], Q: q,
		Grain: grain, RecordClusters: record,
	}), prob
}

func TestProgramLifecycle(t *testing.T) {
	p, _ := programFixture(t, 8, false)
	p.Init()
	if p.RemainingWork() != 64 {
		t.Fatalf("remaining = %d, want 64", p.RemainingWork())
	}
	if p.VoteToHalt() {
		t.Fatal("program with source vertices must not halt")
	}
	// Drive compute to completion (single patch: never blocks on remote
	// input).
	for !p.VoteToHalt() {
		p.Compute()
	}
	if p.RemainingWork() != 0 {
		t.Errorf("remaining = %d after drain", p.RemainingWork())
	}
	// Single-patch mesh: no remote edges, so no output streams.
	if _, ok := p.Output(); ok {
		t.Error("single-patch program should emit no streams")
	}
	// Grain 8 over 64 vertices: at least 8 compute calls.
	if p.ComputeCalls() < 8 {
		t.Errorf("compute calls = %d, want >= 8", p.ComputeCalls())
	}
}

func TestProgramClusterRecording(t *testing.T) {
	p, _ := programFixture(t, 8, true)
	p.Init()
	for !p.VoteToHalt() {
		p.Compute()
	}
	seen := map[int32]bool{}
	for _, cl := range p.Clusters() {
		if len(cl) == 0 || len(cl) > 8 {
			t.Fatalf("cluster size %d violates grain 8", len(cl))
		}
		for _, v := range cl {
			if seen[v] {
				t.Fatalf("vertex %d in two clusters", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != 64 {
		t.Errorf("clusters cover %d vertices, want 64", len(seen))
	}
}

func TestProgramPhiLocalPositive(t *testing.T) {
	p, _ := programFixture(t, 1<<20, false)
	p.Init()
	p.Compute()
	for v, phi := range p.PhiLocal()[0] {
		if phi <= 0 {
			t.Fatalf("vertex %d: phi %v, want > 0 with a uniform source", v, phi)
		}
	}
}

func TestVertexQueueOrdering(t *testing.T) {
	q := vertexQueue{prio: []int32{5, 1, 9, 9}}
	for _, v := range []int32{0, 1, 2, 3} {
		q.heap = append(q.heap, v)
	}
	if !q.less(2, 0) {
		t.Error("higher priority should sort first")
	}
	if !q.less(2, 3) {
		t.Error("equal priority should tie-break on smaller vertex id")
	}
	// Full pop order: priority desc, ties by ascending vertex id.
	q = vertexQueue{prio: []int32{5, 1, 9, 9}}
	for _, v := range []int32{0, 1, 2, 3} {
		q.push(v)
	}
	var got []int32
	for q.Len() > 0 {
		got = append(got, q.pop())
	}
	want := []int32{2, 3, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

// Malformed stream payloads must panic loudly (closed-system invariant).
func TestProgramInputPanicsOnGarbage(t *testing.T) {
	p, _ := programFixture(t, 8, false)
	p.Init()
	defer func() {
		if recover() == nil {
			t.Error("garbage payload should panic")
		}
	}()
	p.Input(core.Stream{Payload: []byte{1, 2, 3}})
}

// Flux payload codec round-trips records exactly.
func TestFaceFluxCodec(t *testing.T) {
	fluxes := []faceFlux{
		{v: 3, face: 2, psi: []float64{1.5, -2.25}},
		{v: 0, face: 0, psi: []float64{0, 42}},
	}
	buf := encodeFaceFluxes(nil, 2, fluxes)
	var got []faceFlux
	scratch := make([]float64, 2)
	err := decodeFaceFluxes(buf, 2, scratch, func(v int32, face int8, psi []float64) {
		got = append(got, faceFlux{v: v, face: face, psi: append([]float64(nil), psi...)})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].v != 3 || got[0].face != 2 || got[0].psi[1] != -2.25 || got[1].psi[1] != 42 {
		t.Errorf("roundtrip mismatch: %+v", got)
	}
	// Truncation must error.
	if err := decodeFaceFluxes(buf[:len(buf)-1], 2, scratch, func(int32, int8, []float64) {}); err == nil {
		t.Error("truncated payload accepted")
	}
}

// Coarse payload carries its target coarse vertex id.
func TestCoarsePayloadCodec(t *testing.T) {
	buf := encodeCoarsePayload(nil, 7, 1, []faceFlux{{v: 1, face: 3, psi: []float64{9}}})
	scratch := make([]float64, 1)
	var vs []int32
	cv, err := decodeCoarsePayload(buf, 1, scratch, func(v int32, face int8, psi []float64) {
		vs = append(vs, v)
	})
	if err != nil || cv != 7 || len(vs) != 1 || vs[0] != 1 {
		t.Errorf("cv=%d vs=%v err=%v", cv, vs, err)
	}
}
