package sweep

// Pooled arenas for the per-sweep allocation hot spots (persistent
// sessions run 10–200 sweeps per solve; without pooling every sweep
// reallocates all stream payloads and flux arrays from scratch).

// bufStack is a program-local freelist of payload buffers. Ownership of
// a payload follows its stream: a producer encodes into a buffer from
// its own freelist, and the consuming program's Input frees the payload
// into *its* freelist after decoding. This is safe because the wire
// codec copies payloads out of transport messages, so every delivered
// payload is exclusively owned by exactly one receiver — and because a
// program's state (including its freelist) is only ever touched by the
// one worker executing it.
type bufStack [][]byte

// bufStackMax bounds the freelist length so a program that consumes many
// more streams than it produces cannot hoard buffers.
const bufStackMax = 64

// get returns a zero-length buffer with at least n capacity, reusing the
// top freelist entry when it is large enough.
func (st *bufStack) get(n int) []byte {
	s := *st
	if len(s) > 0 {
		b := s[len(s)-1]
		s[len(s)-1] = nil
		*st = s[:len(s)-1]
		if cap(b) >= n {
			return b[:0]
		}
	}
	return make([]byte, 0, n)
}

// put frees a consumed payload buffer into the stack.
func (st *bufStack) put(b []byte) {
	if cap(b) == 0 || len(*st) >= bufStackMax {
		return
	}
	*st = append(*st, b)
}
