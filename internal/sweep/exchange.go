// Per-sweep partial-result exchange of the multi-process (SPMD) solver.
//
// In single-process mode the solver reduces every program's PhiLocal
// into the global flux directly. Across OS processes each node only ran
// its own rank's programs, so after every sweep the nodes allgather
// their partials over the transport's out-of-band lane:
//
//   - the scalar-flux contributions of the cells this rank owns (each
//     cell belongs to exactly one patch, each patch to exactly one rank,
//     so per-cell sums are complete on their owner and ranks compose by
//     disjoint assignment — bit-reproducible regardless of arrival
//     order);
//   - the lagged-flux slots this rank's programs wrote (cyclic meshes:
//     each slot has exactly one writer, the program owning the feedback
//     edge's source cell).
//
// After the exchange every node holds the identical full flux, so the
// surrounding source iteration makes the same convergence decisions on
// every node with no further coordination.
//
//	partial := fluxCount:u32 { cell:u32 phi:f64bits*G }*fluxCount
//	           lagCount:u32  { slot:u32 psi:f64bits*G }*lagCount
package sweep

import (
	"encoding/binary"
	"fmt"
	"math"

	"jsweep/internal/mesh"
)

// exchangePartials allgathers this rank's flux (and lagged-edge)
// contributions and merges every other rank's into phi and the lag
// store. A no-op in single-process mode.
func (s *Solver) exchangePartials(phi [][]float64) error {
	if !s.distributed {
		return nil
	}
	payload := s.encodePartial(phi)
	parts, err := s.coll.AllExchange(payload)
	if err != nil {
		return fmt.Errorf("sweep: rank %d partial exchange: %w", s.myRank, err)
	}
	for rank, part := range parts {
		if rank == s.myRank {
			continue
		}
		if err := s.mergePartial(phi, rank, part); err != nil {
			return err
		}
	}
	return nil
}

// encodePartial packs the owned cells' flux and the locally written
// lagged-flux slots.
func (s *Solver) encodePartial(phi [][]float64) []byte {
	G := s.prob.Groups
	cells := 0
	for p := 0; p < s.d.NumPatches(); p++ {
		if s.localPatch[p] {
			cells += len(s.d.Cells[p])
		}
	}
	buf := make([]byte, 0, 8+cells*(4+8*G)+len(s.myLagSlots)*(4+8*G))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(cells))
	for p := 0; p < s.d.NumPatches(); p++ {
		if !s.localPatch[p] {
			continue
		}
		for _, c := range s.d.Cells[p] {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(c))
			for g := 0; g < G; g++ {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(phi[g][c]))
			}
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.myLagSlots)))
	for _, slot := range s.myLagSlots {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(slot))
		for _, v := range s.lag.NewSlot(slot) {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	return buf
}

// gatherClusters allgathers the vertex clusters recorded during a
// distributed UseCoarse recording sweep. Each rank recorded clusters only
// for its own programs (program state is lazily allocated, so remote
// programs report none); after the exchange every slot of the flat
// (angle-major, patch-major) list is filled and every rank hands
// graph.Coarsen the identical full set — the precondition for a
// cluster-wide consistent coarse graph. The same call doubles as the
// barrier aligning the fine→coarse session rebuild across ranks.
//
//	payload := progCount:u32 { prog:u32 clusterCount:u32
//	                           { len:u32 v:u32*len }*clusterCount }*progCount
func (s *Solver) gatherClusters(clusters [][][]int32) error {
	np := s.d.NumPatches()
	mine := 0
	for prog := range clusters {
		if s.localPatch[prog%np] {
			mine++
		}
	}
	buf := make([]byte, 0, 4+mine*8)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(mine))
	for prog, cs := range clusters {
		if !s.localPatch[prog%np] {
			continue
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(prog))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(cs)))
		for _, cl := range cs {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(cl)))
			for _, v := range cl {
				buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
			}
		}
	}
	parts, err := s.coll.AllExchange(buf)
	if err != nil {
		return fmt.Errorf("sweep: rank %d cluster exchange: %w", s.myRank, err)
	}
	for rank, part := range parts {
		if rank == s.myRank {
			continue
		}
		if err := s.mergeClusters(clusters, rank, part); err != nil {
			return err
		}
	}
	return nil
}

// mergeClusters folds one remote rank's recorded clusters into the flat
// program list. Programs are disjoint across ranks (owned patches), so a
// slot is written by exactly one sender.
func (s *Solver) mergeClusters(clusters [][][]int32, from int, buf []byte) error {
	np := s.d.NumPatches()
	off := 0
	readU32 := func(what string) (int, error) {
		if len(buf)-off < 4 {
			return 0, fmt.Errorf("sweep: rank %d clusters from rank %d: %s truncated", s.myRank, from, what)
		}
		n := int(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		return n, nil
	}
	progCount, err := readU32("program count")
	if err != nil {
		return err
	}
	for i := 0; i < progCount; i++ {
		prog, err := readU32("program index")
		if err != nil {
			return err
		}
		if prog < 0 || prog >= len(clusters) {
			return fmt.Errorf("sweep: rank %d clusters from rank %d: program %d out of range", s.myRank, from, prog)
		}
		p := prog % np
		if owner := s.d.Owner[p]; owner != from {
			return fmt.Errorf("sweep: rank %d clusters from rank %d: program %d belongs to rank %d", s.myRank, from, prog, owner)
		}
		nv := len(s.graphs[prog/np][p].Cells)
		clusterCount, err := readU32("cluster count")
		if err != nil {
			return err
		}
		if clusterCount > nv {
			return fmt.Errorf("sweep: rank %d clusters from rank %d: program %d claims %d clusters for %d vertices",
				s.myRank, from, prog, clusterCount, nv)
		}
		cs := make([][]int32, clusterCount)
		for c := range cs {
			n, err := readU32("cluster length")
			if err != nil {
				return err
			}
			if n > nv || n*4 > len(buf)-off {
				return fmt.Errorf("sweep: rank %d clusters from rank %d: program %d cluster %d length %d invalid",
					s.myRank, from, prog, c, n)
			}
			cl := make([]int32, n)
			for j := range cl {
				v := int32(binary.LittleEndian.Uint32(buf[off:]))
				off += 4
				if v < 0 || int(v) >= nv {
					return fmt.Errorf("sweep: rank %d clusters from rank %d: program %d vertex %d out of range", s.myRank, from, prog, v)
				}
				cl[j] = v
			}
			cs[c] = cl
		}
		clusters[prog] = cs
	}
	if off != len(buf) {
		return fmt.Errorf("sweep: rank %d clusters from rank %d: %d trailing bytes", s.myRank, from, len(buf)-off)
	}
	return nil
}

// mergePartial folds one remote rank's partial into phi and the lag
// store. Owned cells and lag slots are disjoint across ranks, so merging
// is plain assignment and bitwise exact.
func (s *Solver) mergePartial(phi [][]float64, from int, buf []byte) error {
	G := s.prob.Groups
	nc := s.prob.M.NumCells()
	entry := 4 + 8*G
	off := 0
	readCount := func(what string) (int, error) {
		if len(buf)-off < 4 {
			return 0, fmt.Errorf("sweep: rank %d partial from rank %d: %s count truncated", s.myRank, from, what)
		}
		n := int(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		if int64(n)*int64(entry) > int64(len(buf)-off) {
			return 0, fmt.Errorf("sweep: rank %d partial from rank %d: %s count %d exceeds remaining %d bytes",
				s.myRank, from, what, n, len(buf)-off)
		}
		return n, nil
	}
	fluxCount, err := readCount("flux")
	if err != nil {
		return err
	}
	for i := 0; i < fluxCount; i++ {
		c := int(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		if c < 0 || c >= nc {
			return fmt.Errorf("sweep: rank %d partial from rank %d: cell %d out of range", s.myRank, from, c)
		}
		if owner := s.d.Owner[s.d.PatchOf(mesh.CellID(c))]; owner != from {
			return fmt.Errorf("sweep: rank %d partial from rank %d: cell %d belongs to rank %d", s.myRank, from, c, owner)
		}
		for g := 0; g < G; g++ {
			phi[g][c] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
	}
	lagCount, err := readCount("lag")
	if err != nil {
		return err
	}
	if lagCount > 0 && s.lag == nil {
		return fmt.Errorf("sweep: rank %d partial from rank %d carries %d lag slots on an acyclic mesh", s.myRank, from, lagCount)
	}
	for i := 0; i < lagCount; i++ {
		slot := int(int32(binary.LittleEndian.Uint32(buf[off:])))
		off += 4
		if slot < 0 || slot >= s.lag.Total() {
			return fmt.Errorf("sweep: rank %d partial from rank %d: lag slot %d out of range", s.myRank, from, slot)
		}
		if owner := s.lagSlotOwner[slot]; owner != from {
			return fmt.Errorf("sweep: rank %d partial from rank %d: lag slot %d belongs to rank %d", s.myRank, from, slot, owner)
		}
		dst := s.lag.NewSlot(int32(slot))
		for g := 0; g < G; g++ {
			dst[g] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
	}
	if off != len(buf) {
		return fmt.Errorf("sweep: rank %d partial from rank %d: %d trailing bytes", s.myRank, from, len(buf)-off)
	}
	return nil
}
