package sweep

// Multi-process solver tests: N ranks, each with its own Problem,
// Decomposition and Solver (no shared memory — the SPMD model of one
// jsweep-node per rank), connected by the real TCP backend over
// loopback. The flux every rank returns must be bitwise identical across
// ranks, bitwise identical to the single-process parallel solver with
// the same options, and must match the serial Reference with the same
// strictness the single-process golden tests pin (bitwise on structured
// and cyclic meshes, 1e-12 relative on the unstructured ball).

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"jsweep/internal/geom"
	"jsweep/internal/kobayashi"
	"jsweep/internal/mesh"
	"jsweep/internal/meshgen"
	"jsweep/internal/netcomm"
	"jsweep/internal/partition"
	"jsweep/internal/priority"
	"jsweep/internal/quadrature"
	"jsweep/internal/runtime"
	"jsweep/internal/transport"
)

type problemBuilder func(t *testing.T) (*transport.Problem, *mesh.Decomposition)

func kobaDist(t *testing.T) (*transport.Problem, *mesh.Decomposition) {
	t.Helper()
	prob, m, err := kobayashi.Build(kobayashi.Spec{N: 12, SnOrder: 2, Scattering: true, Scheme: transport.Diamond})
	if err != nil {
		t.Fatal(err)
	}
	d, err := m.BlockDecompose(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	return prob, d
}

func ballDist(t *testing.T) (*transport.Problem, *mesh.Decomposition) {
	t.Helper()
	m, err := meshgen.Ball(6, 10.0)
	if err != nil {
		t.Fatal(err)
	}
	m.SetMaterialFunc(func(geom.Vec3) int { return 0 })
	quad, err := quadrature.New(2)
	if err != nil {
		t.Fatal(err)
	}
	prob := &transport.Problem{
		M: m,
		Mats: []transport.Material{{
			Name:   "ball",
			SigmaT: []float64{0.3},
			SigmaS: [][]float64{{0.15}},
			Source: []float64{1.0},
		}},
		Quad:   quad,
		Groups: 1,
		Scheme: transport.Step,
	}
	d, err := partition.ByCount(m, 8, partition.RCB)
	if err != nil {
		t.Fatal(err)
	}
	return prob, d
}

func cyclicDist(t *testing.T) (*transport.Problem, *mesh.Decomposition) {
	return cyclicProblem(t, true, 1)
}

// runDistributed solves the problem across world separate solver nodes
// over TCP-localhost and returns each rank's result.
func runDistributed(t *testing.T, build problemBuilder, world int, opts Options, cfg transport.IterConfig) []*transport.Result {
	t.Helper()
	cluster := fmt.Sprintf("%s-%d", t.Name(), time.Now().UnixNano())
	rz, err := netcomm.StartRendezvous("127.0.0.1:0", cluster, world)
	if err != nil {
		t.Fatal(err)
	}
	// Build each rank's private problem in the test goroutine (the
	// builders may t.Fatal), then hand them to the rank goroutines.
	probs := make([]*transport.Problem, world)
	decs := make([]*mesh.Decomposition, world)
	for r := 0; r < world; r++ {
		probs[r], decs[r] = build(t)
	}
	results := make([]*transport.Result, world)
	errs := make([]error, world)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tr, err := netcomm.Join(netcomm.Options{
				Cluster: cluster, Rank: r, World: world, Rendezvous: rz.Addr(),
				Timeout: 60 * time.Second,
			})
			if err != nil {
				errs[r] = err
				return
			}
			defer func() {
				if errs[r] != nil {
					tr.Abort() // a failed rank must not leave peers waiting
				}
				tr.Close()
			}()
			o := opts
			o.Procs = world
			o.Transport = tr
			o.Pair = priority.Pair{Patch: priority.SLBD, Vertex: priority.SLBD}
			s, err := NewSolver(probs[r], decs[r], o)
			if err != nil {
				errs[r] = err
				return
			}
			defer s.Close()
			results[r], errs[r] = transport.SourceIterate(probs[r], s, cfg)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for r := 1; r < world; r++ {
		if results[r].Iterations != results[0].Iterations {
			t.Fatalf("rank %d took %d iterations, rank 0 took %d", r, results[r].Iterations, results[0].Iterations)
		}
		assertBitwise(t, fmt.Sprintf("rank %d vs rank 0", r), results[r].Phi, results[0].Phi)
	}
	return results
}

func assertBitwise(t *testing.T, name string, got, want [][]float64) {
	t.Helper()
	for g := range want {
		for c := range want[g] {
			if got[g][c] != want[g][c] {
				t.Fatalf("%s: group %d cell %d: %v != %v", name, g, c, got[g][c], want[g][c])
			}
		}
	}
}

func assertClose(t *testing.T, name string, got, want [][]float64, tol float64) {
	t.Helper()
	for g := range want {
		for c := range want[g] {
			denom := math.Abs(want[g][c])
			if denom < 1 {
				denom = 1
			}
			if math.Abs(got[g][c]-want[g][c])/denom > tol {
				t.Fatalf("%s: group %d cell %d: %v vs %v (rel %g)", name, g, c,
					got[g][c], want[g][c], math.Abs(got[g][c]-want[g][c])/denom)
			}
		}
	}
}

// singleProcess solves the same problem with the same options on the
// ordinary in-process parallel solver (the oracle the TCP cluster must
// reproduce bit-for-bit).
func singleProcess(t *testing.T, build problemBuilder, procs int, opts Options, cfg transport.IterConfig) *transport.Result {
	t.Helper()
	prob, d := build(t)
	opts.Procs = procs
	opts.Transport = nil
	opts.Pair = priority.Pair{Patch: priority.SLBD, Vertex: priority.SLBD}
	s, err := NewSolver(prob, d, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := transport.SourceIterate(prob, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func reference(t *testing.T, build problemBuilder, cfg transport.IterConfig) *transport.Result {
	t.Helper()
	prob, _ := build(t)
	ref, err := NewReference(prob)
	if err != nil {
		t.Fatal(err)
	}
	res, err := transport.SourceIterate(prob, ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func aggOnOff() map[string]runtime.AggregationConfig {
	return map[string]runtime.AggregationConfig{
		"agg-off": {},
		"agg-on":  {Enabled: true, Shards: 2, MaxBatchStreams: 8},
	}
}

func TestDistributedKobayashiBitwise(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-rank TCP solve skipped in -short mode")
	}
	cfg := transport.IterConfig{Tolerance: 1e-8, MaxIterations: 100}
	want := reference(t, kobaDist, cfg)
	for name, agg := range aggOnOff() {
		t.Run(name, func(t *testing.T) {
			opts := Options{Workers: 2, Grain: 32, Aggregation: agg}
			oracle := singleProcess(t, kobaDist, 4, opts, cfg)
			got := runDistributed(t, kobaDist, 4, opts, cfg)
			if got[0].Iterations != oracle.Iterations {
				t.Fatalf("TCP took %d iterations, in-process %d", got[0].Iterations, oracle.Iterations)
			}
			assertBitwise(t, "tcp vs in-process", got[0].Phi, oracle.Phi)
			assertBitwise(t, "tcp vs serial reference", got[0].Phi, want.Phi)
			if !got[0].Converged {
				t.Fatal("did not converge")
			}
		})
	}
}

func TestDistributedBallBitwise(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-rank TCP solve skipped in -short mode")
	}
	cfg := transport.IterConfig{Tolerance: 1e-8, MaxIterations: 100}
	want := reference(t, ballDist, cfg)
	for name, agg := range aggOnOff() {
		t.Run(name, func(t *testing.T) {
			opts := Options{Workers: 2, Grain: 16, Aggregation: agg}
			oracle := singleProcess(t, ballDist, 2, opts, cfg)
			got := runDistributed(t, ballDist, 2, opts, cfg)
			assertBitwise(t, "tcp vs in-process", got[0].Phi, oracle.Phi)
			// The serial reference accumulates patch boundaries in a
			// different global order; same strictness as the golden tests.
			assertClose(t, "tcp vs serial reference", got[0].Phi, want.Phi, 1e-12)
		})
	}
}

// TestDistributedCyclicBitwise exercises the lagged-flux slot exchange:
// the twisted-ring mesh has feedback edges crossing rank boundaries, so
// without the lag exchange the fixed point would diverge from the
// serial lagged reference.
func TestDistributedCyclicBitwise(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-rank TCP solve skipped in -short mode")
	}
	cfg := transport.IterConfig{Tolerance: 1e-9, MaxIterations: 400}
	want := reference(t, cyclicDist, cfg)
	if !want.Converged {
		t.Fatal("reference did not converge")
	}
	for name, agg := range aggOnOff() {
		t.Run(name, func(t *testing.T) {
			opts := Options{Workers: 2, Grain: 4, Aggregation: agg}
			got := runDistributed(t, cyclicDist, 4, opts, cfg)
			if got[0].Iterations != want.Iterations {
				t.Fatalf("TCP took %d iterations, reference %d", got[0].Iterations, want.Iterations)
			}
			assertBitwise(t, "tcp vs lagged reference", got[0].Phi, want.Phi)
		})
	}
}

// TestDistributedCoarseBitwise pins distributed UseCoarse: each rank
// records clusters only for its own programs during the fine sweep, the
// cluster exchange allgathers them, and every rank coarsens the identical
// full program set — so the coarse sweeps reproduce the single-process
// coarse solver (and the serial reference) bit for bit. Runs the
// structured kobayashi box and the cyclic twisted ring (coarse programs
// over lagged feedback edges crossing rank boundaries).
func TestDistributedCoarseBitwise(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-rank TCP solve skipped in -short mode")
	}
	cases := []struct {
		name  string
		build problemBuilder
		world int
		grain int
		cfg   transport.IterConfig
	}{
		{"kobayashi", kobaDist, 4, 32, transport.IterConfig{Tolerance: 1e-8, MaxIterations: 100}},
		{"cyclic", cyclicDist, 4, 4, transport.IterConfig{Tolerance: 1e-9, MaxIterations: 400}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := reference(t, tc.build, tc.cfg)
			if !want.Converged {
				t.Fatal("reference did not converge")
			}
			opts := Options{Workers: 2, Grain: tc.grain, UseCoarse: true}
			oracle := singleProcess(t, tc.build, tc.world, opts, tc.cfg)
			got := runDistributed(t, tc.build, tc.world, opts, tc.cfg)
			if got[0].Iterations != oracle.Iterations {
				t.Fatalf("TCP took %d iterations, in-process coarse %d", got[0].Iterations, oracle.Iterations)
			}
			assertBitwise(t, "tcp coarse vs in-process coarse", got[0].Phi, oracle.Phi)
			assertBitwise(t, "tcp coarse vs serial reference", got[0].Phi, want.Phi)
		})
	}
}

// TestDistributedReuseOffAndSafra covers the non-default session and
// termination paths over the wire: a fresh runtime per sweep on a shared
// transport, and Safra's token termination across OS-process semantics.
func TestDistributedReuseOffAndSafra(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-rank TCP solve skipped in -short mode")
	}
	cfg := transport.IterConfig{Tolerance: 1e-8, MaxIterations: 100}
	base := Options{Workers: 2, Grain: 32}
	oracle := singleProcess(t, kobaDist, 2, base, cfg)
	for name, opts := range map[string]Options{
		"reuse-off": {Workers: 2, Grain: 32, ReuseRuntime: ReuseOff},
		"safra":     {Workers: 2, Grain: 32, Termination: runtime.Safra},
	} {
		t.Run(name, func(t *testing.T) {
			got := runDistributed(t, kobaDist, 2, opts, cfg)
			assertBitwise(t, name+" vs in-process", got[0].Phi, oracle.Phi)
		})
	}
}

func TestDistributedOptionValidation(t *testing.T) {
	prob, d := kobaDist(t)
	cluster := fmt.Sprintf("val-%d", time.Now().UnixNano())
	rz, err := netcomm.StartRendezvous("127.0.0.1:0", cluster, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := netcomm.Join(netcomm.Options{Cluster: cluster, Rank: 0, World: 1, Rendezvous: rz.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	bad := []Options{
		{Procs: 1, Workers: 1, Sequential: true, Transport: tr},
		{Procs: 2, Workers: 1, Transport: tr}, // world mismatch
	}
	for i, o := range bad {
		if _, err := NewSolver(prob, d, o); err == nil {
			t.Errorf("options %d accepted: %+v", i, o)
		}
	}
	// UseCoarse works over any transport (clusters are allgathered); the
	// 1-rank world is the degenerate all-local case.
	if _, err := NewSolver(prob, d, Options{Procs: 1, Workers: 1, UseCoarse: true, Transport: tr}); err != nil {
		t.Errorf("UseCoarse over an all-local transport should work: %v", err)
	}
}
