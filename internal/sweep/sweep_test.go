package sweep_test

import (
	"math"
	"testing"

	"jsweep/internal/geom"
	"jsweep/internal/kobayashi"
	"jsweep/internal/mesh"
	"jsweep/internal/meshgen"
	"jsweep/internal/partition"
	"jsweep/internal/priority"
	"jsweep/internal/quadrature"
	"jsweep/internal/runtime"
	"jsweep/internal/sweep"
	"jsweep/internal/transport"
)

// kobaSmall builds a 12³ Kobayashi problem (diamond, S2) with 4³-cell
// patches — small enough for exhaustive cross-validation.
func kobaSmall(t *testing.T, scattering bool) (*transport.Problem, *mesh.Decomposition) {
	t.Helper()
	prob, m, err := kobayashi.Build(kobayashi.Spec{N: 12, SnOrder: 2, Scattering: scattering, Scheme: transport.Diamond})
	if err != nil {
		t.Fatal(err)
	}
	d, err := m.BlockDecompose(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	return prob, d
}

// ballSmall builds a small unstructured tet-ball problem (step, S2).
func ballSmall(t *testing.T) (*transport.Problem, *mesh.Decomposition) {
	t.Helper()
	m, err := meshgen.Ball(6, 10.0)
	if err != nil {
		t.Fatal(err)
	}
	m.SetMaterialFunc(func(c geom.Vec3) int { return 0 })
	quad, err := quadrature.New(2)
	if err != nil {
		t.Fatal(err)
	}
	prob := &transport.Problem{
		M: m,
		Mats: []transport.Material{{
			Name:   "ball",
			SigmaT: []float64{0.3},
			Source: []float64{1.0},
		}},
		Quad:   quad,
		Groups: 1,
		Scheme: transport.Step,
	}
	d, err := partition.ByCount(m, 8, partition.RCB)
	if err != nil {
		t.Fatal(err)
	}
	return prob, d
}

func uniformQ(prob *transport.Problem) [][]float64 {
	q := prob.NewFlux()
	nc := prob.M.NumCells()
	scratch := make([]float64, prob.Groups)
	zero := prob.NewFlux()
	for c := 0; c < nc; c++ {
		prob.EmissionDensity(mesh.CellID(c), zero, scratch)
		for g := 0; g < prob.Groups; g++ {
			q[g][c] = scratch[g]
		}
	}
	return q
}

func bitwiseEqual(t *testing.T, name string, a, b [][]float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: group count %d vs %d", name, len(a), len(b))
	}
	for g := range a {
		if len(a[g]) != len(b[g]) {
			t.Fatalf("%s: group %d length mismatch", name, g)
		}
		for c := range a[g] {
			if a[g][c] != b[g][c] {
				t.Fatalf("%s: group %d cell %d: %v != %v (Δ=%g)", name, g, c, a[g][c], b[g][c], a[g][c]-b[g][c])
			}
		}
	}
}

func refSweep(t *testing.T, prob *transport.Problem, q [][]float64) [][]float64 {
	t.Helper()
	ref, err := sweep.NewReference(prob)
	if err != nil {
		t.Fatal(err)
	}
	phi, err := ref.Sweep(q)
	if err != nil {
		t.Fatal(err)
	}
	return phi
}

// The central integration invariant: the JSweep solver — sequential engine
// or parallel runtime, any topology — reproduces the serial reference
// bit-for-bit on structured meshes.
func TestSolverMatchesReferenceStructured(t *testing.T) {
	prob, d := kobaSmall(t, false)
	q := uniformQ(prob)
	want := refSweep(t, prob, q)
	for _, cfg := range []sweep.Options{
		{Sequential: true},
		{Procs: 1, Workers: 1},
		{Procs: 2, Workers: 2},
		{Procs: 4, Workers: 3},
	} {
		cfg.Grain = 16
		cfg.Pair = priority.Pair{Patch: priority.SLBD, Vertex: priority.SLBD}
		s, err := sweep.NewSolver(prob, d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		phi, err := s.Sweep(q)
		if err != nil {
			t.Fatal(err)
		}
		bitwiseEqual(t, "structured solver", want, phi)
	}
}

func TestSolverMatchesReferenceUnstructured(t *testing.T) {
	prob, d := ballSmall(t)
	q := uniformQ(prob)
	want := refSweep(t, prob, q)
	s, err := sweep.NewSolver(prob, d, sweep.Options{
		Procs: 3, Workers: 2, Grain: 8,
		Pair: priority.Pair{Patch: priority.BFS, Vertex: priority.SLBD},
	})
	if err != nil {
		t.Fatal(err)
	}
	phi, err := s.Sweep(q)
	if err != nil {
		t.Fatal(err)
	}
	bitwiseEqual(t, "unstructured solver", want, phi)
}

// Vertex clustering grain must not change results (§V-C): only scheduling.
func TestGrainInvariance(t *testing.T) {
	prob, d := kobaSmall(t, false)
	q := uniformQ(prob)
	want := refSweep(t, prob, q)
	for _, grain := range []int{1, 3, 64, 1 << 20} {
		s, err := sweep.NewSolver(prob, d, sweep.Options{Sequential: true, Grain: grain})
		if err != nil {
			t.Fatal(err)
		}
		phi, err := s.Sweep(q)
		if err != nil {
			t.Fatal(err)
		}
		bitwiseEqual(t, "grain", want, phi)
	}
}

// Priority strategies must not change results (§V-D): only schedules.
func TestPriorityInvariance(t *testing.T) {
	prob, d := ballSmall(t)
	q := uniformQ(prob)
	want := refSweep(t, prob, q)
	for _, pp := range []priority.Strategy{priority.BFS, priority.LDCP, priority.SLBD} {
		for _, vp := range []priority.Strategy{priority.BFS, priority.LDCP, priority.SLBD} {
			s, err := sweep.NewSolver(prob, d, sweep.Options{
				Procs: 2, Workers: 2, Grain: 4,
				Pair: priority.Pair{Patch: pp, Vertex: vp},
			})
			if err != nil {
				t.Fatal(err)
			}
			phi, err := s.Sweep(q)
			if err != nil {
				t.Fatal(err)
			}
			bitwiseEqual(t, pp.String()+"+"+vp.String(), want, phi)
		}
	}
}

// Coarsened-graph sweeps (§V-E) must reproduce fine sweeps exactly while
// cutting scheduling events.
func TestCoarseGraphEquivalence(t *testing.T) {
	prob, d := kobaSmall(t, false)
	q := uniformQ(prob)
	s, err := sweep.NewSolver(prob, d, sweep.Options{
		Procs: 2, Workers: 2, Grain: 8, UseCoarse: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	phiFine, err := s.Sweep(q) // records clusters, builds CG
	if err != nil {
		t.Fatal(err)
	}
	fineCalls := s.LastStats().ComputeCalls
	if s.CoarseGraph() == nil {
		t.Fatal("coarse graph not built after first sweep")
	}
	phiCoarse, err := s.Sweep(q)
	if err != nil {
		t.Fatal(err)
	}
	coarseCalls := s.LastStats().ComputeCalls
	if !s.LastStats().Coarse {
		t.Error("second sweep should run on the coarse graph")
	}
	bitwiseEqual(t, "coarse vs fine", phiFine, phiCoarse)
	if coarseCalls >= fineCalls {
		t.Errorf("coarse sweep used %d compute calls, fine used %d — no reduction", coarseCalls, fineCalls)
	}
}

func TestCoarseGraphUnstructured(t *testing.T) {
	prob, d := ballSmall(t)
	q := uniformQ(prob)
	s, err := sweep.NewSolver(prob, d, sweep.Options{Sequential: true, Grain: 16, UseCoarse: true})
	if err != nil {
		t.Fatal(err)
	}
	phi1, err := s.Sweep(q)
	if err != nil {
		t.Fatal(err)
	}
	phi2, err := s.Sweep(q)
	if err != nil {
		t.Fatal(err)
	}
	bitwiseEqual(t, "unstructured coarse", phi1, phi2)
}

// Full source iteration through the solver equals iteration through the
// reference, including iteration counts (bitwise sweeps ⇒ bitwise flux).
func TestSourceIterationSolverVsReference(t *testing.T) {
	prob, d := kobaSmall(t, true) // with scattering
	ref, err := sweep.NewReference(prob)
	if err != nil {
		t.Fatal(err)
	}
	cfg := transport.IterConfig{Tolerance: 1e-8, MaxIterations: 100}
	wantRes, err := transport.SourceIterate(prob, ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sweep.NewSolver(prob, d, sweep.Options{Procs: 2, Workers: 2, Grain: 32})
	if err != nil {
		t.Fatal(err)
	}
	gotRes, err := transport.SourceIterate(prob, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if gotRes.Iterations != wantRes.Iterations {
		t.Errorf("iterations: solver %d vs reference %d", gotRes.Iterations, wantRes.Iterations)
	}
	if !gotRes.Converged {
		t.Error("solver iteration did not converge")
	}
	bitwiseEqual(t, "source iteration", wantRes.Phi, gotRes.Phi)
}

// Physics sanity on the Kobayashi geometry: the void duct transports flux
// much further than the shield does.
func TestKobayashiDuctStreaming(t *testing.T) {
	prob, m, err := kobayashi.Build(kobayashi.Spec{N: 20, SnOrder: 2, Scheme: transport.Step})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sweep.NewReference(prob)
	if err != nil {
		t.Fatal(err)
	}
	res, err := transport.SourceIterate(prob, ref, transport.IterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Sample at x≈45 cm: inside the duct (y,z ≈ 5) vs inside the shield
	// (y,z ≈ 45).
	dx := kobayashi.Extent / 20
	at := func(x, y, z float64) float64 {
		i := int(x / dx)
		j := int(y / dx)
		k := int(z / dx)
		return res.Phi[0][m.Index(i, j, k)]
	}
	duct := at(45, 5, 5)
	shield := at(45, 45, 45)
	if duct <= 10*shield {
		t.Errorf("duct streaming too weak: duct φ=%g, shield φ=%g", duct, shield)
	}
	// Flux must decay monotonically-ish along the shield diagonal.
	if at(15, 15, 15) <= at(75, 75, 75) {
		t.Error("flux should decay into the shield")
	}
}

// Safra and Workload termination produce identical results.
func TestTerminationModeInvariance(t *testing.T) {
	prob, d := kobaSmall(t, false)
	q := uniformQ(prob)
	want := refSweep(t, prob, q)
	for _, term := range []runtime.TerminationMode{runtime.Workload, runtime.Safra} {
		s, err := sweep.NewSolver(prob, d, sweep.Options{
			Procs: 2, Workers: 2, Grain: 16, Termination: term,
		})
		if err != nil {
			t.Fatal(err)
		}
		phi, err := s.Sweep(q)
		if err != nil {
			t.Fatal(err)
		}
		bitwiseEqual(t, term.String(), want, phi)
	}
}

// Smaller grains mean more compute calls (scheduling events) — the §V-C
// overhead the clustering grain trades against pipelining.
func TestGrainReducesComputeCalls(t *testing.T) {
	prob, d := kobaSmall(t, false)
	q := uniformQ(prob)
	calls := make(map[int]int64)
	for _, grain := range []int{1, 16, 256} {
		s, err := sweep.NewSolver(prob, d, sweep.Options{Sequential: true, Grain: grain})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Sweep(q); err != nil {
			t.Fatal(err)
		}
		calls[grain] = s.LastStats().ComputeCalls
	}
	if !(calls[1] > calls[16] && calls[16] > calls[256]) {
		t.Errorf("compute calls should fall with grain: %v", calls)
	}
}

func TestSolverValidation(t *testing.T) {
	prob, d := kobaSmall(t, false)
	// Mismatched mesh.
	other, _ := meshgen.Ball(4, 1)
	od, err := partition.ByCount(other, 2, partition.RCB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sweep.NewSolver(prob, od, sweep.Options{}); err == nil {
		t.Error("mesh mismatch should fail")
	}
	_ = d
}

// The multigroup path: a 2-group problem with downscatter only.
func TestMultigroupSweep(t *testing.T) {
	m, err := mesh.NewStructured3D(6, 6, 6, geom.Vec3{}, geom.Vec3{X: 6, Y: 6, Z: 6})
	if err != nil {
		t.Fatal(err)
	}
	quad, err := quadrature.New(2)
	if err != nil {
		t.Fatal(err)
	}
	prob := &transport.Problem{
		M: m,
		Mats: []transport.Material{{
			Name:   "two-group",
			SigmaT: []float64{1.0, 2.0},
			SigmaS: [][]float64{{0.2, 0.3}, {0, 0.5}}, // g0→g0, g0→g1; g1→g1
			Source: []float64{1.0, 0},
		}},
		Quad:   quad,
		Groups: 2,
		Scheme: transport.Diamond,
	}
	d, err := m.BlockDecompose(3, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sweep.NewReference(prob)
	if err != nil {
		t.Fatal(err)
	}
	want, err := transport.SourceIterate(prob, ref, transport.IterConfig{Tolerance: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sweep.NewSolver(prob, d, sweep.Options{Procs: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := transport.SourceIterate(prob, s, transport.IterConfig{Tolerance: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	bitwiseEqual(t, "multigroup", want.Phi, got.Phi)
	// Group 1 is fed only by downscatter from group 0: nonzero but smaller.
	var sum0, sum1 float64
	for c := range got.Phi[0] {
		sum0 += got.Phi[0][c]
		sum1 += got.Phi[1][c]
	}
	if sum1 <= 0 || sum1 >= sum0 {
		t.Errorf("downscatter group fluxes suspicious: g0=%g g1=%g", sum0, sum1)
	}
}

// Leakage sanity for a conservative scheme: production ≥ absorption > 0
// on a vacuum-bounded absorber.
func TestBallBalance(t *testing.T) {
	prob, d := ballSmall(t)
	s, err := sweep.NewSolver(prob, d, sweep.Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := transport.SourceIterate(prob, s, transport.IterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rep := prob.GroupBalance(res.Phi, 0)
	if rep.Production <= 0 || rep.Absorption <= 0 {
		t.Fatalf("degenerate balance: %+v", rep)
	}
	if rep.Absorption >= rep.Production {
		t.Errorf("absorption %g should be below production %g (vacuum leakage)", rep.Absorption, rep.Production)
	}
	if rep.Leakage/rep.Production < 0.05 {
		t.Errorf("a 10cm ball with σt=0.3 should leak noticeably: %+v", rep)
	}
	_ = math.Pi
}
