package sweep

import (
	"jsweep/internal/graph"
)

// LagStore holds the lagged angular fluxes that break cyclic sweep
// dependencies (Vermaak, Ragusa & Morel, arXiv:2004.01824): one slot per
// (angle, feedback edge, group). During a sweep, programs read a lagged
// edge's flux from the *old* half (the value its source cell produced in
// the previous source iteration; zero before the first) and write the
// freshly computed flux into the *new* half. Advance swaps the halves
// between sweeps, which is what folds the cycle-breaking into the existing
// source-iteration fixed point: lagged edges converge together with the
// scattering source.
//
// Each slot has exactly one writer per sweep (the program owning the
// edge's source cell) and its readers only touch the other half, so the
// store needs no locking.
type LagStore struct {
	groups int
	// offs[a] is angle a's first edge slot; offs[len] the total edge count.
	offs     []int32
	old, new []float64
}

// NewLagStore builds the store for the per-angle lagged-edge lists, or
// returns nil when no angle has lagged edges (the acyclic fast path).
func NewLagStore(lagged [][]graph.CellEdge, groups int) *LagStore {
	total := 0
	offs := make([]int32, len(lagged)+1)
	for a, edges := range lagged {
		offs[a] = int32(total)
		total += len(edges)
	}
	offs[len(lagged)] = int32(total)
	if total == 0 {
		return nil
	}
	return &LagStore{
		groups: groups,
		offs:   offs,
		old:    make([]float64, total*groups),
		new:    make([]float64, total*groups),
	}
}

// Total returns the lagged-edge slot count across all angles.
func (ls *LagStore) Total() int { return int(ls.offs[len(ls.offs)-1]) }

// Reset zeroes both halves, returning the store to its pre-first-sweep
// state (all lagged inputs zero). A solver reused across solves calls it
// so the next source iteration starts from the same state as a fresh one.
func (ls *LagStore) Reset() {
	clear(ls.old)
	clear(ls.new)
}

// Advance swaps the halves: the fluxes written during the last sweep
// become the lagged inputs of the next one. Call once per sweep, before
// any program reads the store. Every slot is rewritten each sweep (each
// feedback edge's source cell solves exactly once), so the stale half
// needs no zeroing.
func (ls *LagStore) Advance() { ls.old, ls.new = ls.new, ls.old }

// NewSlot returns the new-half flux of the flat slot id (len = groups).
// The distributed solver uses it to export locally written slots and to
// import the slots other ranks wrote, between the sweep and the next
// Advance.
func (ls *LagStore) NewSlot(slot int32) []float64 {
	base := int(slot) * ls.groups
	return ls.new[base : base+ls.groups]
}

// Old returns angle a's lagged flux of edge slot idx (len = groups).
func (ls *LagStore) Old(a int32, idx int32) []float64 {
	base := (int(ls.offs[a]) + int(idx)) * ls.groups
	return ls.old[base : base+ls.groups]
}

// StoreNew records the freshly computed flux of angle a's edge slot idx
// for the next sweep.
func (ls *LagStore) StoreNew(a int32, idx int32, psi []float64) {
	base := (int(ls.offs[a]) + int(idx)) * ls.groups
	copy(ls.new[base:base+ls.groups], psi)
}
