package sweep

import (
	"fmt"

	"jsweep/internal/graph"
	"jsweep/internal/mesh"
	"jsweep/internal/transport"
)

// Reference is the serial ground-truth sweep executor: for every angle it
// walks the global topological order of the mesh and applies the kernel.
// The sweep result is schedule-independent (each cell's kernel sees the
// same inputs under any dependency-respecting order), so every parallel
// executor in this repository must reproduce Reference bit-for-bit.
type Reference struct {
	prob *transport.Problem
	// orders caches the topological order per angle.
	orders [][]mesh.CellID
}

// NewReference builds the reference executor, precomputing and validating
// the per-angle topological orders (errors on cyclic dependencies).
func NewReference(prob *transport.Problem) (*Reference, error) {
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	r := &Reference{prob: prob}
	r.orders = make([][]mesh.CellID, len(prob.Quad.Directions))
	for a, d := range prob.Quad.Directions {
		order, err := graph.GlobalTopoOrder(prob.M, d.Omega)
		if err != nil {
			return nil, fmt.Errorf("sweep: angle %d: %w", a, err)
		}
		r.orders[a] = order
	}
	return r, nil
}

// Sweep implements transport.SweepExecutor.
func (r *Reference) Sweep(q [][]float64) ([][]float64, error) {
	p := r.prob
	m := p.M
	G := p.Groups
	mf := p.MaxFaces()
	nc := m.NumCells()
	phi := p.NewFlux()

	psiFace := make([]float64, nc*mf*G)
	qCell := make([]float64, G)
	psiOut := make([]float64, mf*G)
	psiBar := make([]float64, G)

	for a, d := range p.Quad.Directions {
		// Zero the face buffer (vacuum boundaries).
		for i := range psiFace {
			psiFace[i] = 0
		}
		for _, c := range r.orders[a] {
			base := (int(c)) * mf * G
			for g := 0; g < G; g++ {
				qCell[g] = q[g][c]
			}
			p.SolveCell(c, d.Omega, qCell, psiFace[base:base+mf*G], psiOut, psiBar)
			for g := 0; g < G; g++ {
				phi[g][c] += d.Weight * psiBar[g]
			}
			// Propagate outgoing fluxes to downwind neighbours (same
			// grazing-face classification as the DAG builder).
			nf := m.NumFaces(c)
			for f := 0; f < nf; f++ {
				face := m.Face(c, f)
				if face.Neighbor < 0 || d.Omega.Dot(face.Normal) <= mesh.UpwindEps {
					continue
				}
				back := backFaceOf(m, face.Neighbor, c)
				dst := (int(face.Neighbor)*mf + back) * G
				copy(psiFace[dst:dst+G], psiOut[f*G:f*G+G])
			}
		}
	}
	return phi, nil
}

func backFaceOf(m mesh.Mesh, nb, c mesh.CellID) int {
	nf := m.NumFaces(nb)
	for i := 0; i < nf; i++ {
		if m.Face(nb, i).Neighbor == c {
			return i
		}
	}
	panic(fmt.Sprintf("sweep: faces of %d and %d not reciprocal", nb, c))
}
