package sweep

import (
	"fmt"

	"jsweep/internal/graph"
	"jsweep/internal/mesh"
	"jsweep/internal/transport"
)

// Reference is the serial ground-truth sweep executor: for every angle it
// walks the global topological order of the mesh and applies the kernel.
// The sweep result is schedule-independent (each cell's kernel sees the
// same inputs under any dependency-respecting order), so every parallel
// executor in this repository must reproduce Reference bit-for-bit.
//
// On cyclic meshes Reference lags the same deterministic feedback-edge set
// the parallel solver selects (graph.FeedbackEdges), through the same
// LagStore double buffer: a lagged edge feeds the previous Sweep call's
// flux into its downwind cell (zero on the first call) and records the
// freshly computed flux for the next call, so lagged parallel sweeps
// remain bitwise comparable against it, iteration by iteration.
type Reference struct {
	prob *transport.Problem
	// orders caches the (lagged) topological order per angle; lagged the
	// feedback edges removed to obtain it (empty on acyclic meshes).
	orders [][]mesh.CellID
	lagged [][]graph.CellEdge
	// lagOutIdx[a] maps a lagged source (cell, face) key to its edge slot;
	// nil when angle a has no lagged edges.
	lagOutIdx []map[int64]int32
	// lag is the lagged-flux double buffer (nil on acyclic meshes),
	// advanced once per Sweep.
	lag *LagStore
}

// NewReference builds the reference executor, precomputing the per-angle
// topological orders with feedback edges lagged on cyclic meshes (never
// fails on cycles).
func NewReference(prob *transport.Problem) (*Reference, error) {
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	r := &Reference{prob: prob}
	na := len(prob.Quad.Directions)
	r.orders = make([][]mesh.CellID, na)
	r.lagged = make([][]graph.CellEdge, na)
	r.lagOutIdx = make([]map[int64]int32, na)
	for a, d := range prob.Quad.Directions {
		order, lagged := graph.GlobalTopoOrderLagged(prob.M, d.Omega)
		r.orders[a] = order
		r.lagged[a] = lagged
		if len(lagged) == 0 {
			continue
		}
		idx := make(map[int64]int32, len(lagged))
		for i, e := range lagged {
			idx[int64(e.From)<<3|int64(e.SrcFace)] = int32(i)
		}
		r.lagOutIdx[a] = idx
	}
	r.lag = NewLagStore(r.lagged, prob.Groups)
	return r, nil
}

// LaggedEdges returns the number of feedback edges lagged across all
// angles (0 on acyclic meshes). It implements transport.CycleLagger.
func (r *Reference) LaggedEdges() int {
	if r.lag == nil {
		return 0
	}
	return r.lag.Total()
}

// Sweep implements transport.SweepExecutor.
func (r *Reference) Sweep(q [][]float64) ([][]float64, error) {
	p := r.prob
	m := p.M
	G := p.Groups
	mf := p.MaxFaces()
	nc := m.NumCells()
	phi := p.NewFlux()

	if r.lag != nil {
		// The previous sweep's lagged writes become this sweep's inputs
		// (all-zero before the first sweep).
		r.lag.Advance()
	}
	psiFace := make([]float64, nc*mf*G)
	qCell := make([]float64, G)
	psiOut := make([]float64, mf*G)
	psiBar := make([]float64, G)

	for a, d := range p.Quad.Directions {
		// Zero the face buffer (vacuum boundaries).
		for i := range psiFace {
			psiFace[i] = 0
		}
		// Preload every lagged downwind face with the old flux.
		lagIdx := r.lagOutIdx[a]
		for i, e := range r.lagged[a] {
			dst := (int(e.To)*mf + int(e.DstFace)) * G
			copy(psiFace[dst:dst+G], r.lag.Old(int32(a), int32(i)))
		}
		for _, c := range r.orders[a] {
			base := (int(c)) * mf * G
			for g := 0; g < G; g++ {
				qCell[g] = q[g][c]
			}
			p.SolveCell(c, d.Omega, qCell, psiFace[base:base+mf*G], psiOut, psiBar)
			for g := 0; g < G; g++ {
				phi[g][c] += d.Weight * psiBar[g]
			}
			// Propagate outgoing fluxes to downwind neighbours (same
			// grazing-face classification as the DAG builder). Lagged
			// faces store their flux for the next sweep instead — the
			// neighbour must keep reading the preloaded old value.
			nf := m.NumFaces(c)
			for f := 0; f < nf; f++ {
				face := m.Face(c, f)
				if face.Neighbor < 0 || d.Omega.Dot(face.Normal) <= mesh.UpwindEps {
					continue
				}
				if lagIdx != nil {
					if i, lag := lagIdx[int64(c)<<3|int64(f)]; lag {
						r.lag.StoreNew(int32(a), i, psiOut[f*G:f*G+G])
						continue
					}
				}
				back := backFaceOf(m, face.Neighbor, c)
				dst := (int(face.Neighbor)*mf + back) * G
				copy(psiFace[dst:dst+G], psiOut[f*G:f*G+G])
			}
		}
	}
	return phi, nil
}

func backFaceOf(m mesh.Mesh, nb, c mesh.CellID) int {
	nf := m.NumFaces(nb)
	for i := 0; i < nf; i++ {
		if m.Face(nb, i).Neighbor == c {
			return i
		}
	}
	panic(fmt.Sprintf("sweep: faces of %d and %d not reciprocal", nb, c))
}
