package sweep

import (
	"context"
	"fmt"
	"sync"

	"jsweep/internal/comm"
	"jsweep/internal/core"
	"jsweep/internal/graph"
	"jsweep/internal/mesh"
	"jsweep/internal/priority"
	"jsweep/internal/runtime"
	"jsweep/internal/transport"
)

// ReuseMode selects the session-reuse policy of the solver (paper §IV:
// the runtime is a long-lived service; rebuilding it per sweep is pure
// overhead across the 10–200 sweeps of a source iteration).
type ReuseMode int

const (
	// ReuseAuto is the default and enables reuse.
	ReuseAuto ReuseMode = iota
	// ReuseOn keeps one persistent session (processes, worker goroutines,
	// transport, program objects, pooled buffers) across Sweep calls.
	ReuseOn
	// ReuseOff rebuilds every program and a fresh runtime per Sweep — the
	// conservative pre-session behaviour, kept as the validation baseline.
	ReuseOff
)

func (m ReuseMode) String() string {
	if m == ReuseOff {
		return "off"
	}
	return "on"
}

// Options configures the JSweep data-driven solver.
type Options struct {
	// Procs and Workers shape the runtime (ignored when Sequential).
	Procs, Workers int
	// Grain is the vertex clustering grain N (§V-C); default 64.
	Grain int
	// Pair is the two-level priority strategy (§V-D); default SLBD+SLBD —
	// the paper's recommended configuration.
	Pair priority.Pair
	// UseCoarse caches vertex clusters from the first sweep and runs later
	// sweeps on the coarsened graph (§V-E).
	UseCoarse bool
	// Sequential executes on the deterministic single-threaded core.Engine
	// instead of the parallel runtime (for debugging and validation).
	Sequential bool
	// Termination selects the runtime's termination detector; sweeps know
	// their workload, so Workload is the default.
	Termination runtime.TerminationMode
	// Aggregation configures the runtime's outbound message aggregation
	// (paper §IV): remote boundary-flux streams coalesce into
	// per-destination frames. An unset MaxBatchBytes is sized from the
	// sweep's own payload geometry (grain × groups).
	Aggregation runtime.AggregationConfig
	// ReuseRuntime keeps the runtime session and the patch-program set
	// alive across Sweep calls, resetting them in place per sweep instead
	// of rebuilding (default on). Call Solver.Close when done with a
	// reusing solver to stop its worker goroutines.
	ReuseRuntime ReuseMode
	// Transport selects the message-passing backend. Nil (the default)
	// runs all Procs ranks as goroutines of this OS process over the
	// in-memory transport. A network transport (internal/netcomm) that
	// hosts a single rank turns the solver into one SPMD node of a
	// multi-process cluster: it executes only the patch-programs its rank
	// owns and allgathers flux (and lagged-edge) partials after every
	// sweep, so each node's Sweep returns the full, bitwise-identical
	// scalar flux. Every node must build the same problem, decomposition
	// and options. The caller retains ownership of the transport and
	// closes it after Solver.Close. Incompatible with Sequential. With
	// UseCoarse the recording sweep's vertex clusters are allgathered so
	// every rank coarsens the identical full program set.
	Transport comm.Transport
}

func (o *Options) defaults() {
	if o.Procs < 1 {
		o.Procs = 1
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.Grain < 1 {
		o.Grain = 64
	}
}

// reuse reports whether session reuse is enabled.
func (o *Options) reuse() bool { return o.ReuseRuntime != ReuseOff }

// SweepStats captures the cost of the last executed sweep.
type SweepStats struct {
	// Runtime holds the parallel runtime statistics of the last sweep
	// (zero when Sequential).
	Runtime runtime.Stats
	// Cumulative sums the runtime statistics over every sweep of the
	// current persistent session; its RoundsRun field counts the sweeps.
	// Zero when Sequential or when reuse is off. A UseCoarse solver
	// starts a fresh session (and count) at the fine→coarse switch.
	Cumulative runtime.Stats
	// ComputeCalls counts patch-program Compute invocations (scheduling
	// events) — the quantity graph coarsening reduces.
	ComputeCalls int64
	// Streams counts the streams the programs emitted.
	Streams int64
	// Coarse reports whether the sweep ran on the coarsened graph.
	Coarse bool
	// CoarseClusters counts the vertex clusters this rank recorded during
	// the UseCoarse recording sweep (its local programs' share of the
	// coarse graph; 0 until the fine→coarse switch). The cluster-wide
	// total is gathered with the other per-rank counters.
	CoarseClusters int64
	// LaggedEdges counts the feedback edges broken by flux lagging across
	// all angles (0 on acyclic meshes); each contributed one old-flux read
	// and one new-flux write to the round.
	LaggedEdges int
	// CellSCCs / PatchSCCs count the nontrivial strongly connected
	// components (size > 1) of the cell-level sweep graphs and of the
	// patch digraphs, summed over angles.
	CellSCCs, PatchSCCs int
}

// Solver is the JSweep Sn sweep component (§V): it owns the per-(patch,
// angle) dependency graphs and priorities and executes transport sweeps on
// the patch-centric runtime. It implements transport.SweepExecutor, so it
// plugs directly into transport.SourceIterate.
//
// With ReuseRuntime on (the default) the solver is a persistent session:
// programs are built once, the runtime's processes and worker goroutines
// stay alive across sweeps, and flux arrays come from a pool fed by
// RecycleFlux. Close releases the session's worker goroutines.
type Solver struct {
	prob *transport.Problem
	d    *mesh.Decomposition
	opts Options

	// graphs[a][p] is G_{p,a}, with feedback edges lagged on cyclic meshes.
	graphs [][]*graph.PatchGraph
	// patchPrio[a][p] is prior(p) for angle a; vertexPrio[a][p] the
	// in-patch queue priorities.
	patchPrio  [][]int64
	vertexPrio [][][]int32

	// lag stores the lagged fluxes breaking cyclic sweep dependencies (nil
	// on acyclic meshes); it persists across sweeps — Advance per sweep
	// swaps the previous sweep's writes into the read half. laggedEdges,
	// cellSCCs and patchSCCs summarize the cycle structure across angles.
	lag         *LagStore
	laggedEdges int
	cellSCCs    int
	patchSCCs   int

	// Persistent session state (reuse mode): program objects built once,
	// plus the live engine or runtime they are registered in. rtCoarse /
	// engCoarse record which program set the session holds; the
	// fine→coarse switch rebuilds it once.
	fineProgs   [][]*Program
	coarseProgs [][]*CoarseProgram
	eng         *core.Engine
	engCoarse   bool
	rt          *runtime.Runtime
	rtCoarse    bool

	// fluxPool recycles [group][cell] arrays returned by Sweep and handed
	// back through RecycleFlux.
	fluxMu   sync.Mutex
	fluxPool [][][]float64

	// Distributed (multi-process) state: with a network transport this
	// solver is one SPMD node hosting myRank. localPatch flags the
	// patches whose programs run here; coll runs the per-sweep allgather
	// of flux and lagged-edge partials; myLagSlots lists the lagged-flux
	// slots whose writers are local, in ascending slot order, and
	// lagSlotOwner maps every flat slot to its writer rank so merges can
	// reject a peer claiming a slot it does not own.
	distributed  bool
	myRank       int
	localPatch   []bool
	coll         *comm.Collective
	myLagSlots   []int32
	lagSlotOwner []int

	cg    *graph.CoarseGraph
	stats SweepStats
}

// NewSolver prepares a solver: builds every G_{p,a}, the patch-level DAGs
// and both priority levels, and places patches on processes. With reuse
// enabled it also builds the patch-program objects the session will keep.
func NewSolver(prob *transport.Problem, d *mesh.Decomposition, opts Options) (*Solver, error) {
	opts.defaults()
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	if d.Mesh != prob.M {
		return nil, fmt.Errorf("sweep: decomposition and problem use different meshes")
	}
	s := &Solver{prob: prob, d: d, opts: opts}
	d.Place(opts.Procs)
	if opts.Transport != nil {
		if err := s.setupDistributed(); err != nil {
			return nil, err
		}
	}
	na := len(prob.Quad.Directions)
	np := d.NumPatches()
	s.graphs = make([][]*graph.PatchGraph, na)
	s.patchPrio = make([][]int64, na)
	s.vertexPrio = make([][][]int32, na)
	lagged := make([][]graph.CellEdge, na)
	for a := 0; a < na; a++ {
		omega := prob.Quad.Directions[a].Omega
		// Cyclic meshes: select the deterministic feedback-edge set and lag
		// it, so the per-patch graphs the programs run on are acyclic at
		// the cell level. Acyclic meshes yield an empty set and bitwise
		// unchanged graphs.
		lagged[a] = graph.FeedbackEdges(prob.M, omega)
		s.laggedEdges += len(lagged[a])
		if len(lagged[a]) > 0 {
			comp, n := graph.CellSCC(prob.M, omega)
			nt, _ := graph.NontrivialSCCs(comp, n)
			s.cellSCCs += nt
		}
		s.graphs[a] = graph.BuildAllPatchGraphsLagged(d, omega, int32(a), lagged[a])
		dag := graph.BuildPatchDAG(d, omega)
		if comp, n := dag.SCC(); n < dag.N {
			nt, _ := graph.NontrivialSCCs(comp, n)
			s.patchSCCs += nt
		}
		s.patchPrio[a] = priority.PatchPriorities(opts.Pair.Patch, dag)
		s.vertexPrio[a] = make([][]int32, np)
		for p := 0; p < np; p++ {
			s.vertexPrio[a][p] = priority.VertexPriorities(opts.Pair.Vertex, s.graphs[a][p])
		}
	}
	s.lag = NewLagStore(lagged, prob.Groups)
	if s.distributed && s.lag != nil {
		// Lagged-edge slots are written by the program owning the edge's
		// source cell; record which flat slots are written on this rank so
		// the per-sweep exchange can export them (and import the rest),
		// plus every slot's owner rank for merge validation.
		s.lagSlotOwner = make([]int, 0, s.lag.Total())
		slot := int32(0)
		for a := 0; a < na; a++ {
			for _, e := range lagged[a] {
				owner := s.d.Owner[s.d.PatchOf(e.From)]
				s.lagSlotOwner = append(s.lagSlotOwner, owner)
				if s.localPatch[s.d.PatchOf(e.From)] {
					s.myLagSlots = append(s.myLagSlots, slot)
				}
				slot++
			}
		}
	}
	if s.opts.reuse() {
		s.fineProgs = s.buildFinePrograms(nil, s.opts.UseCoarse)
	}
	return s, nil
}

// setupDistributed validates the network transport and prepares the SPMD
// node state (local patch set, collective helper, rank identity).
func (s *Solver) setupDistributed() error {
	tr := s.opts.Transport
	if s.opts.Sequential {
		return fmt.Errorf("sweep: Sequential and Transport are mutually exclusive")
	}
	if n := tr.NumRanks(); n != s.opts.Procs {
		return fmt.Errorf("sweep: transport spans %d ranks, options want %d procs", n, s.opts.Procs)
	}
	local := tr.LocalRanks()
	isLocal := make([]bool, s.opts.Procs)
	for _, r := range local {
		if r < 0 || r >= s.opts.Procs {
			return fmt.Errorf("sweep: transport local rank %d out of range [0,%d)", r, s.opts.Procs)
		}
		isLocal[r] = true
	}
	s.localPatch = make([]bool, s.d.NumPatches())
	for p := range s.localPatch {
		s.localPatch[p] = isLocal[s.d.Owner[p]]
	}
	if len(local) == s.opts.Procs {
		// Every rank in-process (an in-memory transport passed explicitly):
		// no partial-result exchange needed.
		return nil
	}
	if len(local) != 1 {
		return fmt.Errorf("sweep: a distributed solver node hosts exactly one rank (transport hosts %d)", len(local))
	}
	s.distributed = true
	s.myRank = local[0]
	ep := tr.Endpoint(s.myRank)
	if ep == nil {
		return fmt.Errorf("sweep: transport returns no endpoint for local rank %d", s.myRank)
	}
	s.coll = comm.NewCollective(ep, s.opts.Procs)
	return nil
}

// runsLocally reports whether patch p's programs execute on this node.
// Without a multi-process transport every patch is local.
func (s *Solver) runsLocally(p int) bool {
	return !s.distributed || s.localPatch[p]
}

// Collective returns the solver's OOB collective helper (nil unless the
// solver is a multi-process node). A Collective must own its endpoint's
// OOB lane exclusively — when ranks drift apart, payloads for the next
// exchange are stashed inside the instance — so any further collectives
// on this endpoint (e.g. a final stats gather) must go through this same
// instance, never a fresh one.
func (s *Solver) Collective() *comm.Collective { return s.coll }

// Close ends the persistent session: the runtime's worker goroutines stop
// and further Sweep calls rebuild a fresh session on demand. It is
// idempotent and a no-op for non-reusing or sequential solvers.
func (s *Solver) Close() error {
	if s.rt == nil {
		return nil
	}
	err := s.rt.Close()
	s.rt = nil
	return err
}

// LastStats returns the statistics of the most recent sweep.
func (s *Solver) LastStats() SweepStats { return s.stats }

// ResetSolve clears the cross-solve state a finished source iteration
// leaves behind — the lagged-flux store on cyclic meshes — so a warm,
// reused solver starts its next solve from the exact zero state of a
// freshly built one (bitwise: the serve daemon's warm pool depends on
// it). The persistent session itself — processes, workers, transport,
// program objects, the cached coarse graph — is deliberately kept.
func (s *Solver) ResetSolve() {
	if s.lag != nil {
		s.lag.Reset()
	}
}

// CoarseGraph returns the cached coarsened graph (nil until built).
func (s *Solver) CoarseGraph() *graph.CoarseGraph { return s.cg }

// progIndex flattens (angle, patch) into the program index used with
// graph.Coarsen.
func (s *Solver) progIndex(a, p int) int { return a*s.d.NumPatches() + p }

// RecycleFlux accepts a no-longer-needed flux array previously returned
// by Sweep and pools it for a later sweep (transport.SourceIterate calls
// this as iterations retire). Arrays of the wrong shape are dropped.
func (s *Solver) RecycleFlux(phi [][]float64) {
	if len(phi) != s.prob.Groups {
		return
	}
	nc := s.prob.M.NumCells()
	for g := range phi {
		if len(phi[g]) != nc {
			return
		}
	}
	s.fluxMu.Lock()
	s.fluxPool = append(s.fluxPool, phi)
	s.fluxMu.Unlock()
}

// newFlux returns a zeroed [group][cell] array, reusing a pooled one when
// available.
func (s *Solver) newFlux() [][]float64 {
	s.fluxMu.Lock()
	n := len(s.fluxPool)
	var phi [][]float64
	if n > 0 {
		phi = s.fluxPool[n-1]
		s.fluxPool[n-1] = nil
		s.fluxPool = s.fluxPool[:n-1]
	}
	s.fluxMu.Unlock()
	if phi == nil {
		return s.prob.NewFlux()
	}
	for g := range phi {
		clear(phi[g])
	}
	return phi
}

// LaggedEdges returns the number of feedback edges the solver breaks by
// flux lagging (0 on acyclic meshes). It implements transport.CycleLagger,
// which keeps SourceIterate iterating until the lagged fluxes converge
// even without scattering.
func (s *Solver) LaggedEdges() int { return s.laggedEdges }

// Sweep implements transport.SweepExecutor. The first call under
// UseCoarse records clusters and builds the coarsened graph; subsequent
// calls execute on it.
func (s *Solver) Sweep(q [][]float64) ([][]float64, error) {
	return s.SweepCtx(context.Background(), q)
}

// SweepCtx is Sweep with cooperative cancellation: the context threads
// into the runtime's master loops, so a cancelled sweep abandons its
// round and returns promptly with the context's error. The solver's
// session is broken afterwards — Close it. Cancellation of a
// multi-process node does NOT by itself unblock the per-sweep partial
// exchange (a collective over the transport); the transport's owner
// must Abort it on cancellation, which fails every pending collective
// cluster-wide (jsweep.Job and nodespec.RunCtx do this).
func (s *Solver) SweepCtx(ctx context.Context, q [][]float64) ([][]float64, error) {
	if s.lag != nil {
		// The previous sweep's lagged writes become this sweep's inputs
		// (all-zero before the first sweep).
		s.lag.Advance()
	}
	if s.cg != nil {
		return s.sweepCoarse(ctx, q)
	}
	record := s.opts.UseCoarse
	phi, progs, err := s.sweepFine(ctx, q, record)
	if err != nil {
		return nil, err
	}
	if record {
		if err := s.buildCoarse(progs); err != nil {
			return nil, fmt.Errorf("sweep: coarsening: %w", err)
		}
	}
	return phi, nil
}

// buildFinePrograms constructs every fine (angle, patch) program. q may
// be nil for session programs, which are rebound per sweep via Reset.
// A distributed node builds the full set too — registration needs every
// key for stream routing — but program state is allocated lazily in
// Init/ensure, which the runtime only calls for locally hosted ranks,
// and Reset on a never-initialized program is an O(1) source rebind; a
// node's memory therefore scales with its owned patches, not the mesh.
func (s *Solver) buildFinePrograms(q [][]float64, record bool) [][]*Program {
	na := len(s.prob.Quad.Directions)
	np := s.d.NumPatches()
	progs := make([][]*Program, na)
	for a := 0; a < na; a++ {
		progs[a] = make([]*Program, np)
		for p := 0; p < np; p++ {
			progs[a][p] = NewProgram(ProgramConfig{
				Prob:           s.prob,
				Graph:          s.graphs[a][p],
				Dir:            s.prob.Quad.Directions[a],
				Q:              q,
				Grain:          s.opts.Grain,
				VertexPrio:     s.vertexPrio[a][p],
				RecordClusters: record,
				Lag:            s.lag,
			})
		}
	}
	return progs
}

// buildCoarsePrograms constructs every coarse (angle, patch) program.
func (s *Solver) buildCoarsePrograms(q [][]float64) [][]*CoarseProgram {
	na := len(s.prob.Quad.Directions)
	np := s.d.NumPatches()
	progs := make([][]*CoarseProgram, na)
	for a := 0; a < na; a++ {
		progs[a] = make([]*CoarseProgram, np)
		for p := 0; p < np; p++ {
			progs[a][p] = NewCoarseProgram(CoarseConfig{
				Prob:  s.prob,
				Graph: s.graphs[a][p],
				CG:    s.cg,
				CVs:   s.cg.ByProgram[s.progIndex(a, p)],
				Dir:   s.prob.Quad.Directions[a],
				Q:     q,
				Lag:   s.lag,
			})
		}
	}
	return progs
}

// sweepFine runs a DAG-driven sweep with per-vertex scheduling.
func (s *Solver) sweepFine(ctx context.Context, q [][]float64, record bool) ([][]float64, [][]*Program, error) {
	na := len(s.prob.Quad.Directions)
	np := s.d.NumPatches()
	var progs [][]*Program
	if s.opts.reuse() {
		if s.fineProgs == nil {
			s.fineProgs = s.buildFinePrograms(nil, record)
		}
		progs = s.fineProgs
		for a := 0; a < na; a++ {
			for p := 0; p < np; p++ {
				progs[a][p].Reset(q)
			}
		}
	} else {
		progs = s.buildFinePrograms(q, record)
	}
	run := func(register func(key core.ProgramKey, prog core.PatchProgram, prio int64, rank int) error) error {
		for a := 0; a < na; a++ {
			for p := 0; p < np; p++ {
				prio := priority.Combine(priority.AnglePriority(int32(a)), s.patchPrio[a][p])
				if err := register(progs[a][p].Key, progs[a][p], prio, s.d.Owner[p]); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := s.execute(ctx, run, false); err != nil {
		return nil, nil, err
	}
	// Deterministic reduction: angle-major, patch-major, vertex order.
	phi := s.newFlux()
	s.stats.ComputeCalls = 0
	s.stats.Streams = s.stats.Runtime.LocalStreams + s.stats.Runtime.RemoteStreams
	s.stats.Coarse = false
	s.stats.LaggedEdges = s.laggedEdges
	s.stats.CellSCCs = s.cellSCCs
	s.stats.PatchSCCs = s.patchSCCs
	for a := 0; a < na; a++ {
		for p := 0; p < np; p++ {
			if !s.runsLocally(p) {
				continue
			}
			prog := progs[a][p]
			if prog.RemainingWork() != 0 {
				return nil, nil, fmt.Errorf("sweep: program %v finished with %d vertices unswept", prog.Key, prog.RemainingWork())
			}
			s.stats.ComputeCalls += prog.ComputeCalls()
			local := prog.PhiLocal()
			cells := s.graphs[a][p].Cells
			for g := 0; g < s.prob.Groups; g++ {
				dst := phi[g]
				src := local[g]
				for v, c := range cells {
					dst[c] += src[v]
				}
			}
		}
	}
	if err := s.exchangePartials(phi); err != nil {
		return nil, nil, err
	}
	return phi, progs, nil
}

// sweepCoarse runs a sweep on the cached coarsened graph.
func (s *Solver) sweepCoarse(ctx context.Context, q [][]float64) ([][]float64, error) {
	na := len(s.prob.Quad.Directions)
	np := s.d.NumPatches()
	var progs [][]*CoarseProgram
	if s.opts.reuse() {
		if s.coarseProgs == nil {
			s.coarseProgs = s.buildCoarsePrograms(nil)
			// The fine program set (and its registered session) is done:
			// all later sweeps run coarse.
			s.fineProgs = nil
		}
		progs = s.coarseProgs
		for a := 0; a < na; a++ {
			for p := 0; p < np; p++ {
				progs[a][p].Reset(q)
			}
		}
	} else {
		progs = s.buildCoarsePrograms(q)
	}
	run := func(register func(key core.ProgramKey, prog core.PatchProgram, prio int64, rank int) error) error {
		for a := 0; a < na; a++ {
			for p := 0; p < np; p++ {
				prio := priority.Combine(priority.AnglePriority(int32(a)), s.patchPrio[a][p])
				if err := register(progs[a][p].Key, progs[a][p], prio, s.d.Owner[p]); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := s.execute(ctx, run, true); err != nil {
		return nil, err
	}
	phi := s.newFlux()
	s.stats.ComputeCalls = 0
	s.stats.Streams = s.stats.Runtime.LocalStreams + s.stats.Runtime.RemoteStreams
	s.stats.Coarse = true
	s.stats.LaggedEdges = s.laggedEdges
	s.stats.CellSCCs = s.cellSCCs
	s.stats.PatchSCCs = s.patchSCCs
	for a := 0; a < na; a++ {
		for p := 0; p < np; p++ {
			// A distributed node only ran (and reduces) its own patches;
			// exchangePartials below completes the flux exactly as in the
			// fine sweep.
			if !s.runsLocally(p) {
				continue
			}
			prog := progs[a][p]
			if prog.RemainingWork() != 0 {
				return nil, fmt.Errorf("sweep: coarse program %v finished with %d vertices unswept", prog.Key, prog.RemainingWork())
			}
			s.stats.ComputeCalls += prog.ComputeCalls()
			local := prog.PhiLocal()
			cells := s.graphs[a][p].Cells
			for g := 0; g < s.prob.Groups; g++ {
				dst := phi[g]
				src := local[g]
				for v, c := range cells {
					dst[c] += src[v]
				}
			}
		}
	}
	if err := s.exchangePartials(phi); err != nil {
		return nil, err
	}
	return phi, nil
}

// execute runs the registered programs on the engine or the runtime.
// coarse tags which program set the registration closure provides, so the
// persistent session knows when to rebuild at the fine→coarse switch.
func (s *Solver) execute(ctx context.Context, register func(func(core.ProgramKey, core.PatchProgram, int64, int) error) error, coarse bool) error {
	if s.opts.Sequential {
		return s.executeSequential(register, coarse)
	}
	if s.opts.reuse() {
		return s.executeSession(ctx, register, coarse)
	}
	rt, err := runtime.New(s.runtimeConfig())
	if err != nil {
		return err
	}
	if err := register(rt.Register); err != nil {
		return err
	}
	st, err := rt.RunCtx(ctx)
	s.stats.Runtime = st
	s.stats.Cumulative = runtime.Stats{}
	return err
}

// executeSequential runs on the deterministic core.Engine, reusing one
// engine across sweeps when the session is persistent.
func (s *Solver) executeSequential(register func(func(core.ProgramKey, core.PatchProgram, int64, int) error) error, coarse bool) error {
	var eng *core.Engine
	if s.opts.reuse() && s.eng != nil && s.engCoarse == coarse {
		eng = s.eng
		eng.Reset()
	} else {
		eng = core.NewEngine()
		if err := register(func(k core.ProgramKey, pr core.PatchProgram, prio int64, _ int) error {
			return eng.Register(k, pr, prio)
		}); err != nil {
			return err
		}
		if s.opts.reuse() {
			s.eng = eng
			s.engCoarse = coarse
		}
	}
	_, err := eng.Run()
	s.stats.Runtime = runtime.Stats{}
	s.stats.Cumulative = runtime.Stats{}
	return err
}

// executeSession runs one round on the persistent runtime, creating or
// rebuilding it when the program set changed.
func (s *Solver) executeSession(ctx context.Context, register func(func(core.ProgramKey, core.PatchProgram, int64, int) error) error, coarse bool) error {
	if s.rt != nil && s.rtCoarse != coarse {
		// Fine→coarse switch: the old session's program set is obsolete.
		if err := s.rt.Close(); err != nil {
			return err
		}
		s.rt = nil
	}
	if s.rt == nil {
		rt, err := runtime.New(s.runtimeConfig())
		if err != nil {
			return err
		}
		if err := register(rt.Register); err != nil {
			return err
		}
		s.rt = rt
		s.rtCoarse = coarse
	} else if err := s.rt.Reset(); err != nil {
		return err
	}
	st, err := s.rt.RunRoundCtx(ctx)
	s.stats.Runtime = st
	s.stats.Cumulative = s.rt.CumulativeStats()
	return err
}

// runtimeConfig shapes the parallel runtime from the options.
func (s *Solver) runtimeConfig() runtime.Config {
	agg := s.opts.Aggregation
	if agg.Enabled && agg.MaxBatchBytes == 0 {
		// Size batches for ~16 typical streams: one stream carries about a
		// grain's worth of boundary face-flux records per group.
		agg.MaxBatchBytes = 16 * (core.StreamHeaderSize + StreamPayloadBytes(s.opts.Grain, s.prob.Groups))
	}
	return runtime.Config{
		Procs:       s.opts.Procs,
		Workers:     s.opts.Workers,
		Termination: s.opts.Termination,
		Aggregation: agg,
		Transport:   s.opts.Transport,
	}
}

// buildCoarse assembles the coarsened graph from recorded clusters. On a
// distributed node the recording sweep only ran this rank's programs, so
// the per-program cluster lists are allgathered first (gatherClusters) —
// every rank then coarsens the identical full program set, keeping graph
// placement (and therefore the flux bit pattern) consistent cluster-wide.
func (s *Solver) buildCoarse(progs [][]*Program) error {
	na := len(s.prob.Quad.Directions)
	np := s.d.NumPatches()
	graphs := make([]*graph.PatchGraph, 0, na*np)
	clusters := make([][][]int32, 0, na*np)
	local := int64(0)
	for a := 0; a < na; a++ {
		for p := 0; p < np; p++ {
			graphs = append(graphs, s.graphs[a][p])
			cs := progs[a][p].Clusters()
			if s.runsLocally(p) {
				local += int64(len(cs))
			}
			clusters = append(clusters, cs)
		}
	}
	s.stats.CoarseClusters = local
	if s.distributed {
		if err := s.gatherClusters(clusters); err != nil {
			return err
		}
	}
	cg, err := graph.Coarsen(graphs, clusters)
	if err != nil {
		return err
	}
	s.cg = cg
	return nil
}

var _ transport.SweepExecutor = (*Solver)(nil)
var _ transport.ContextSweeper = (*Solver)(nil)
var _ transport.CycleLagger = (*Solver)(nil)
var _ transport.CycleLagger = (*Reference)(nil)
