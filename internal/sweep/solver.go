package sweep

import (
	"fmt"

	"jsweep/internal/core"
	"jsweep/internal/graph"
	"jsweep/internal/mesh"
	"jsweep/internal/priority"
	"jsweep/internal/runtime"
	"jsweep/internal/transport"
)

// Options configures the JSweep data-driven solver.
type Options struct {
	// Procs and Workers shape the runtime (ignored when Sequential).
	Procs, Workers int
	// Grain is the vertex clustering grain N (§V-C); default 64.
	Grain int
	// Pair is the two-level priority strategy (§V-D); default SLBD+SLBD —
	// the paper's recommended configuration.
	Pair priority.Pair
	// UseCoarse caches vertex clusters from the first sweep and runs later
	// sweeps on the coarsened graph (§V-E).
	UseCoarse bool
	// Sequential executes on the deterministic single-threaded core.Engine
	// instead of the parallel runtime (for debugging and validation).
	Sequential bool
	// Termination selects the runtime's termination detector; sweeps know
	// their workload, so Workload is the default.
	Termination runtime.TerminationMode
	// Aggregation configures the runtime's outbound message aggregation
	// (paper §IV): remote boundary-flux streams coalesce into
	// per-destination frames. An unset MaxBatchBytes is sized from the
	// sweep's own payload geometry (grain × groups).
	Aggregation runtime.AggregationConfig
}

func (o *Options) defaults() {
	if o.Procs < 1 {
		o.Procs = 1
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.Grain < 1 {
		o.Grain = 64
	}
}

// SweepStats captures the cost of the last executed sweep.
type SweepStats struct {
	// Runtime holds the parallel runtime statistics (zero when Sequential).
	Runtime runtime.Stats
	// ComputeCalls counts patch-program Compute invocations (scheduling
	// events) — the quantity graph coarsening reduces.
	ComputeCalls int64
	// Streams counts the streams the programs emitted.
	Streams int64
	// Coarse reports whether the sweep ran on the coarsened graph.
	Coarse bool
}

// Solver is the JSweep Sn sweep component (§V): it owns the per-(patch,
// angle) dependency graphs and priorities and executes transport sweeps on
// the patch-centric runtime. It implements transport.SweepExecutor, so it
// plugs directly into transport.SourceIterate.
type Solver struct {
	prob *transport.Problem
	d    *mesh.Decomposition
	opts Options

	// graphs[a][p] is G_{p,a}.
	graphs [][]*graph.PatchGraph
	// patchPrio[a][p] is prior(p) for angle a; vertexPrio[a][p] the
	// in-patch queue priorities.
	patchPrio  [][]int64
	vertexPrio [][][]int32

	cg    *graph.CoarseGraph
	stats SweepStats
}

// NewSolver prepares a solver: builds every G_{p,a}, the patch-level DAGs
// and both priority levels, and places patches on processes.
func NewSolver(prob *transport.Problem, d *mesh.Decomposition, opts Options) (*Solver, error) {
	opts.defaults()
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	if d.Mesh != prob.M {
		return nil, fmt.Errorf("sweep: decomposition and problem use different meshes")
	}
	s := &Solver{prob: prob, d: d, opts: opts}
	d.Place(opts.Procs)
	na := len(prob.Quad.Directions)
	np := d.NumPatches()
	s.graphs = make([][]*graph.PatchGraph, na)
	s.patchPrio = make([][]int64, na)
	s.vertexPrio = make([][][]int32, na)
	for a := 0; a < na; a++ {
		omega := prob.Quad.Directions[a].Omega
		s.graphs[a] = graph.BuildAllPatchGraphs(d, omega, int32(a))
		dag := graph.BuildPatchDAG(d, omega)
		s.patchPrio[a] = priority.PatchPriorities(opts.Pair.Patch, dag)
		s.vertexPrio[a] = make([][]int32, np)
		for p := 0; p < np; p++ {
			s.vertexPrio[a][p] = priority.VertexPriorities(opts.Pair.Vertex, s.graphs[a][p])
		}
	}
	return s, nil
}

// LastStats returns the statistics of the most recent sweep.
func (s *Solver) LastStats() SweepStats { return s.stats }

// CoarseGraph returns the cached coarsened graph (nil until built).
func (s *Solver) CoarseGraph() *graph.CoarseGraph { return s.cg }

// progIndex flattens (angle, patch) into the program index used with
// graph.Coarsen.
func (s *Solver) progIndex(a, p int) int { return a*s.d.NumPatches() + p }

// Sweep implements transport.SweepExecutor. The first call under
// UseCoarse records clusters and builds the coarsened graph; subsequent
// calls execute on it.
func (s *Solver) Sweep(q [][]float64) ([][]float64, error) {
	if s.cg != nil {
		return s.sweepCoarse(q)
	}
	record := s.opts.UseCoarse
	phi, progs, err := s.sweepFine(q, record)
	if err != nil {
		return nil, err
	}
	if record {
		if err := s.buildCoarse(progs); err != nil {
			return nil, fmt.Errorf("sweep: coarsening: %w", err)
		}
	}
	return phi, nil
}

// sweepFine runs a DAG-driven sweep with per-vertex scheduling.
func (s *Solver) sweepFine(q [][]float64, record bool) ([][]float64, [][]*Program, error) {
	na := len(s.prob.Quad.Directions)
	np := s.d.NumPatches()
	progs := make([][]*Program, na)
	for a := 0; a < na; a++ {
		progs[a] = make([]*Program, np)
		for p := 0; p < np; p++ {
			progs[a][p] = NewProgram(ProgramConfig{
				Prob:           s.prob,
				Graph:          s.graphs[a][p],
				Dir:            s.prob.Quad.Directions[a],
				Q:              q,
				Grain:          s.opts.Grain,
				VertexPrio:     s.vertexPrio[a][p],
				RecordClusters: record,
			})
		}
	}
	run := func(register func(key core.ProgramKey, prog core.PatchProgram, prio int64, rank int) error) error {
		for a := 0; a < na; a++ {
			for p := 0; p < np; p++ {
				prio := priority.Combine(priority.AnglePriority(int32(a)), s.patchPrio[a][p])
				if err := register(progs[a][p].Key, progs[a][p], prio, s.d.Owner[p]); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := s.execute(run); err != nil {
		return nil, nil, err
	}
	// Deterministic reduction: angle-major, patch-major, vertex order.
	phi := s.prob.NewFlux()
	s.stats.ComputeCalls = 0
	s.stats.Streams = s.stats.Runtime.LocalStreams + s.stats.Runtime.RemoteStreams
	s.stats.Coarse = false
	for a := 0; a < na; a++ {
		for p := 0; p < np; p++ {
			prog := progs[a][p]
			if prog.RemainingWork() != 0 {
				return nil, nil, fmt.Errorf("sweep: program %v finished with %d vertices unswept", prog.Key, prog.RemainingWork())
			}
			s.stats.ComputeCalls += prog.ComputeCalls()
			local := prog.PhiLocal()
			cells := s.graphs[a][p].Cells
			for g := 0; g < s.prob.Groups; g++ {
				dst := phi[g]
				src := local[g]
				for v, c := range cells {
					dst[c] += src[v]
				}
			}
		}
	}
	return phi, progs, nil
}

// sweepCoarse runs a sweep on the cached coarsened graph.
func (s *Solver) sweepCoarse(q [][]float64) ([][]float64, error) {
	na := len(s.prob.Quad.Directions)
	np := s.d.NumPatches()
	progs := make([][]*CoarseProgram, na)
	for a := 0; a < na; a++ {
		progs[a] = make([]*CoarseProgram, np)
		for p := 0; p < np; p++ {
			progs[a][p] = NewCoarseProgram(CoarseConfig{
				Prob:  s.prob,
				Graph: s.graphs[a][p],
				CG:    s.cg,
				CVs:   s.cg.ByProgram[s.progIndex(a, p)],
				Dir:   s.prob.Quad.Directions[a],
				Q:     q,
			})
		}
	}
	run := func(register func(key core.ProgramKey, prog core.PatchProgram, prio int64, rank int) error) error {
		for a := 0; a < na; a++ {
			for p := 0; p < np; p++ {
				prio := priority.Combine(priority.AnglePriority(int32(a)), s.patchPrio[a][p])
				if err := register(progs[a][p].Key, progs[a][p], prio, s.d.Owner[p]); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := s.execute(run); err != nil {
		return nil, err
	}
	phi := s.prob.NewFlux()
	s.stats.ComputeCalls = 0
	s.stats.Streams = s.stats.Runtime.LocalStreams + s.stats.Runtime.RemoteStreams
	s.stats.Coarse = true
	for a := 0; a < na; a++ {
		for p := 0; p < np; p++ {
			prog := progs[a][p]
			if prog.RemainingWork() != 0 {
				return nil, fmt.Errorf("sweep: coarse program %v finished with %d vertices unswept", prog.Key, prog.RemainingWork())
			}
			s.stats.ComputeCalls += prog.ComputeCalls()
			local := prog.PhiLocal()
			cells := s.graphs[a][p].Cells
			for g := 0; g < s.prob.Groups; g++ {
				dst := phi[g]
				src := local[g]
				for v, c := range cells {
					dst[c] += src[v]
				}
			}
		}
	}
	return phi, nil
}

// execute runs the registered programs on the engine or the runtime.
func (s *Solver) execute(register func(func(core.ProgramKey, core.PatchProgram, int64, int) error) error) error {
	if s.opts.Sequential {
		eng := core.NewEngine()
		if err := register(func(k core.ProgramKey, pr core.PatchProgram, prio int64, _ int) error {
			return eng.Register(k, pr, prio)
		}); err != nil {
			return err
		}
		_, err := eng.Run()
		s.stats.Runtime = runtime.Stats{}
		return err
	}
	agg := s.opts.Aggregation
	if agg.Enabled && agg.MaxBatchBytes == 0 {
		// Size batches for ~16 typical streams: one stream carries about a
		// grain's worth of boundary face-flux records per group.
		agg.MaxBatchBytes = 16 * (core.StreamHeaderSize + StreamPayloadBytes(s.opts.Grain, s.prob.Groups))
	}
	rt, err := runtime.New(runtime.Config{
		Procs:       s.opts.Procs,
		Workers:     s.opts.Workers,
		Termination: s.opts.Termination,
		Aggregation: agg,
	})
	if err != nil {
		return err
	}
	if err := register(rt.Register); err != nil {
		return err
	}
	st, err := rt.Run()
	s.stats.Runtime = st
	return err
}

// buildCoarse assembles the coarsened graph from recorded clusters.
func (s *Solver) buildCoarse(progs [][]*Program) error {
	na := len(s.prob.Quad.Directions)
	np := s.d.NumPatches()
	graphs := make([]*graph.PatchGraph, 0, na*np)
	clusters := make([][][]int32, 0, na*np)
	for a := 0; a < na; a++ {
		for p := 0; p < np; p++ {
			graphs = append(graphs, s.graphs[a][p])
			clusters = append(clusters, progs[a][p].Clusters())
		}
	}
	cg, err := graph.Coarsen(graphs, clusters)
	if err != nil {
		return err
	}
	s.cg = cg
	return nil
}

var _ transport.SweepExecutor = (*Solver)(nil)
