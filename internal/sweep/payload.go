// Package sweep implements the paper's new parallel Sn sweep algorithm
// (§V) as a component on the patch-centric abstraction: the patch-program
// of Listing 1 with vertex clustering, two-level priorities and patch-angle
// parallelism, the coarsened-graph fast path (§V-E), and the serial
// reference executor used for validation.
package sweep

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Fine-sweep stream payload: the per-edge face fluxes crossing a patch
// boundary, aggregated per target program by vertex clustering (§V-C).
//
//	payload := count:u32 { dstV:u32 dstFace:u8 psi:f64×G }*count

// faceFluxRecordBytes is the wire size of one face-flux record.
func faceFluxRecordBytes(groups int) int { return 5 + 8*groups }

// StreamPayloadBytes returns the encoded payload size of a sweep stream
// carrying `records` face-flux records for `groups` energy groups. The
// runtime's message aggregation uses it to size batch byte limits from
// the expected per-stream payload.
func StreamPayloadBytes(records, groups int) int {
	return 4 + records*faceFluxRecordBytes(groups)
}

type faceFlux struct {
	v    int32
	face int8
	psi  []float64
}

// encodeFaceFluxes appends the packed records to dst (which may come from
// the payload pool) and returns the extended buffer.
func encodeFaceFluxes(dst []byte, groups int, fluxes []faceFlux) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(fluxes)))
	for i := range fluxes {
		f := &fluxes[i]
		dst = binary.LittleEndian.AppendUint32(dst, uint32(f.v))
		dst = append(dst, byte(f.face))
		for g := 0; g < groups; g++ {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f.psi[g]))
		}
	}
	return dst
}

// decodeFaceFluxes streams the records to sink (avoiding per-record slice
// allocation); psiScratch must have length >= groups.
func decodeFaceFluxes(buf []byte, groups int, psiScratch []float64, sink func(v int32, face int8, psi []float64)) error {
	if len(buf) < 4 {
		return fmt.Errorf("sweep: flux payload truncated")
	}
	count := binary.LittleEndian.Uint32(buf)
	off := 4
	rec := 5 + 8*groups
	if len(buf)-off != int(count)*rec {
		return fmt.Errorf("sweep: flux payload size %d != %d records of %d bytes", len(buf)-off, count, rec)
	}
	for i := uint32(0); i < count; i++ {
		v := int32(binary.LittleEndian.Uint32(buf[off:]))
		face := int8(buf[off+4])
		off += 5
		for g := 0; g < groups; g++ {
			psiScratch[g] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
		sink(v, face, psiScratch[:groups])
	}
	return nil
}

// Coarse-sweep stream payload: one coarse edge worth of face fluxes plus
// the target coarse vertex whose in-count it satisfies.
//
//	payload := cvLocal:u32 fineFluxes
func encodeCoarsePayload(dst []byte, cvLocal int32, groups int, fluxes []faceFlux) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(cvLocal))
	return encodeFaceFluxes(dst, groups, fluxes)
}

func decodeCoarsePayload(buf []byte, groups int, psiScratch []float64, sink func(v int32, face int8, psi []float64)) (cvLocal int32, err error) {
	if len(buf) < 4 {
		return 0, fmt.Errorf("sweep: coarse payload truncated")
	}
	cvLocal = int32(binary.LittleEndian.Uint32(buf))
	return cvLocal, decodeFaceFluxes(buf[4:], groups, psiScratch, sink)
}
