package sweep_test

// End-to-end persistent-session tests: a full SourceIterate through one
// reused runtime session must be bitwise identical to the sequential
// engine and to the rebuild-per-sweep baseline, on structured and
// unstructured meshes, with aggregation off/on/sharded — and the session
// must actually be one session (RoundsRun == iterations).

import (
	"testing"

	"jsweep/internal/kobayashi"
	"jsweep/internal/mesh"
	"jsweep/internal/priority"
	"jsweep/internal/runtime"
	"jsweep/internal/sweep"
	"jsweep/internal/transport"
)

// buildKoba16 builds the acceptance-scenario problem: Kobayashi-16, S2,
// diamond differencing, with scattering so the iteration takes many
// sweeps.
func buildKoba16(scattering bool) (*transport.Problem, *mesh.Structured3D, error) {
	return kobayashi.Build(kobayashi.Spec{N: 16, SnOrder: 2, Scattering: scattering, Scheme: transport.Diamond})
}

func TestSourceIterateSessionEquivalenceStructured(t *testing.T) {
	prob, d := kobaSmall(t, true) // scattering → multi-sweep iteration
	cfg := transport.IterConfig{Tolerance: 1e-8, MaxIterations: 100}

	// Oracle: the sequential engine with reuse off (the pre-session path).
	oracle, err := sweep.NewSolver(prob, d, sweep.Options{Sequential: true, Grain: 32, ReuseRuntime: sweep.ReuseOff})
	if err != nil {
		t.Fatal(err)
	}
	want, err := transport.SourceIterate(prob, oracle, cfg)
	if err != nil {
		t.Fatal(err)
	}

	variants := map[string]sweep.Options{
		"seq/reuse-on":           {Sequential: true, Grain: 32, ReuseRuntime: sweep.ReuseOn},
		"parallel/reuse-off":     {Procs: 3, Workers: 2, Grain: 32, ReuseRuntime: sweep.ReuseOff},
		"parallel/reuse-on":      {Procs: 3, Workers: 2, Grain: 32, ReuseRuntime: sweep.ReuseOn},
		"parallel/reuse-agg":     {Procs: 3, Workers: 2, Grain: 32, Aggregation: runtime.AggregationConfig{Enabled: true}},
		"parallel/reuse-sharded": {Procs: 3, Workers: 2, Grain: 32, Aggregation: runtime.AggregationConfig{Enabled: true, Shards: 3, MaxBatchStreams: 8}},
		"parallel/reuse-safra":   {Procs: 2, Workers: 2, Grain: 32, Termination: runtime.Safra},
	}
	for name, opts := range variants {
		opts.Pair = priority.Pair{Patch: priority.SLBD, Vertex: priority.SLBD}
		s, err := sweep.NewSolver(prob, d, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := transport.SourceIterate(prob, s, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Iterations != want.Iterations {
			t.Errorf("%s: %d iterations, oracle took %d", name, got.Iterations, want.Iterations)
		}
		bitwiseEqual(t, name, want.Phi, got.Phi)
		if !opts.Sequential && opts.ReuseRuntime != sweep.ReuseOff {
			if got, wantR := s.LastStats().Cumulative.RoundsRun, int64(want.Iterations); got != wantR {
				t.Errorf("%s: session ran %d rounds for %d iterations", name, got, wantR)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatalf("%s: close: %v", name, err)
		}
	}
}

func TestSourceIterateSessionEquivalenceUnstructured(t *testing.T) {
	prob, d := ballSmall(t)
	// Add scattering so the iteration takes several sweeps.
	prob.Mats[0].SigmaS = [][]float64{{0.15}}
	cfg := transport.IterConfig{Tolerance: 1e-8, MaxIterations: 100}

	oracle, err := sweep.NewSolver(prob, d, sweep.Options{Sequential: true, Grain: 16, ReuseRuntime: sweep.ReuseOff})
	if err != nil {
		t.Fatal(err)
	}
	want, err := transport.SourceIterate(prob, oracle, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want.Iterations < 3 {
		t.Fatalf("want a multi-sweep iteration, got %d sweeps", want.Iterations)
	}

	variants := map[string]sweep.Options{
		"seq/reuse-on":       {Sequential: true, Grain: 16},
		"parallel/reuse-off": {Procs: 2, Workers: 2, Grain: 16, ReuseRuntime: sweep.ReuseOff},
		"parallel/reuse-on":  {Procs: 2, Workers: 2, Grain: 16},
		"parallel/reuse-agg": {Procs: 2, Workers: 2, Grain: 16, Aggregation: runtime.AggregationConfig{Enabled: true, Shards: 2}},
	}
	for name, opts := range variants {
		opts.Pair = priority.Pair{Patch: priority.SLBD, Vertex: priority.SLBD}
		s, err := sweep.NewSolver(prob, d, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := transport.SourceIterate(prob, s, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Iterations != want.Iterations {
			t.Errorf("%s: %d iterations, oracle took %d", name, got.Iterations, want.Iterations)
		}
		bitwiseEqual(t, name, want.Phi, got.Phi)
		s.Close()
	}
}

// TestKobayashi16SessionAcceptance is the PR's acceptance scenario: a
// full Kobayashi-16 source-iteration solve with ReuseRuntime on runs as
// exactly one session (RoundsRun == iterations) and reproduces the
// serial reference bit-for-bit.
func TestKobayashi16SessionAcceptance(t *testing.T) {
	prob, m, err := buildKoba16(true)
	if err != nil {
		t.Fatal(err)
	}
	d, err := m.BlockDecompose(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := transport.IterConfig{Tolerance: 1e-7, MaxIterations: 100}

	ref, err := sweep.NewReference(prob)
	if err != nil {
		t.Fatal(err)
	}
	want, err := transport.SourceIterate(prob, ref, cfg)
	if err != nil {
		t.Fatal(err)
	}

	s, err := sweep.NewSolver(prob, d, sweep.Options{
		Procs: 2, Workers: 2, Grain: 64,
		Pair:         priority.Pair{Patch: priority.SLBD, Vertex: priority.SLBD},
		ReuseRuntime: sweep.ReuseOn,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got, err := transport.SourceIterate(prob, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Converged {
		t.Fatal("solver iteration did not converge")
	}
	bitwiseEqual(t, "kobayashi-16 session", want.Phi, got.Phi)
	cum := s.LastStats().Cumulative
	if cum.RoundsRun != int64(got.Iterations) {
		t.Errorf("session RoundsRun = %d, want %d (one process/worker set for the whole solve)",
			cum.RoundsRun, got.Iterations)
	}
	if cum.Cycles <= s.LastStats().Runtime.Cycles {
		t.Errorf("cumulative cycles %d should exceed last-round cycles %d after %d rounds",
			cum.Cycles, s.LastStats().Runtime.Cycles, got.Iterations)
	}
}

// TestCoarseSessionReuse drives UseCoarse through a persistent session:
// the fine→coarse switch rebuilds the session once, later sweeps reuse
// the coarse programs, and the flux stays bitwise identical to the
// rebuild-per-sweep baseline.
func TestCoarseSessionReuse(t *testing.T) {
	prob, d := kobaSmall(t, true)
	cfg := transport.IterConfig{Tolerance: 1e-8, MaxIterations: 100}

	base, err := sweep.NewSolver(prob, d, sweep.Options{
		Procs: 2, Workers: 2, Grain: 16, UseCoarse: true, ReuseRuntime: sweep.ReuseOff,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := transport.SourceIterate(prob, base, cfg)
	if err != nil {
		t.Fatal(err)
	}

	s, err := sweep.NewSolver(prob, d, sweep.Options{
		Procs: 2, Workers: 2, Grain: 16, UseCoarse: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got, err := transport.SourceIterate(prob, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Iterations != want.Iterations {
		t.Errorf("iterations: %d vs baseline %d", got.Iterations, want.Iterations)
	}
	bitwiseEqual(t, "coarse session", want.Phi, got.Phi)
	if s.CoarseGraph() == nil {
		t.Fatal("coarse graph not built")
	}
	if !s.LastStats().Coarse {
		t.Error("last sweep should have run on the coarse graph")
	}
	// The coarse session starts after the one fine sweep: its round count
	// is iterations-1.
	if gotR, wantR := s.LastStats().Cumulative.RoundsRun, int64(got.Iterations-1); gotR != wantR {
		t.Errorf("coarse session RoundsRun = %d, want %d", gotR, wantR)
	}
}

// TestSequentialReuseMatchesFresh pins the oracle property: the
// sequential engine with session reuse replays the exact schedule of a
// fresh engine, sweep after sweep.
func TestSequentialReuseMatchesFresh(t *testing.T) {
	prob, d := kobaSmall(t, false)
	q := uniformQ(prob)
	fresh, err := sweep.NewSolver(prob, d, sweep.Options{Sequential: true, Grain: 16, ReuseRuntime: sweep.ReuseOff})
	if err != nil {
		t.Fatal(err)
	}
	reuse, err := sweep.NewSolver(prob, d, sweep.Options{Sequential: true, Grain: 16, ReuseRuntime: sweep.ReuseOn})
	if err != nil {
		t.Fatal(err)
	}
	for sweepNo := 1; sweepNo <= 3; sweepNo++ {
		want, err := fresh.Sweep(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := reuse.Sweep(q)
		if err != nil {
			t.Fatal(err)
		}
		bitwiseEqual(t, "sequential reuse", want, got)
		if fc, rc := fresh.LastStats().ComputeCalls, reuse.LastStats().ComputeCalls; fc != rc {
			t.Errorf("sweep %d: compute calls diverge: fresh=%d reuse=%d", sweepNo, fc, rc)
		}
	}
}

// TestRecycleFlux pins the pool contract: a recycled array of the right
// shape is reused by the next sweep; wrong shapes are dropped.
func TestRecycleFlux(t *testing.T) {
	prob, d := kobaSmall(t, false)
	q := uniformQ(prob)
	s, err := sweep.NewSolver(prob, d, sweep.Options{Sequential: true, Grain: 16})
	if err != nil {
		t.Fatal(err)
	}
	phi, err := s.Sweep(q)
	if err != nil {
		t.Fatal(err)
	}
	want := append([][]float64(nil), phi...) // remember the backing arrays
	s.RecycleFlux(phi)
	// Wrong shapes must not poison the pool.
	s.RecycleFlux([][]float64{{1, 2, 3}})
	s.RecycleFlux(nil)
	phi2, err := s.Sweep(q)
	if err != nil {
		t.Fatal(err)
	}
	if &phi2[0][0] != &want[0][0] {
		t.Error("recycled flux array was not reused")
	}
	bitwiseEqual(t, "recycled flux", want, phi2)
}

// TestSteadyStateAllocationsWithReuse bounds the steady-state per-sweep
// allocation cost of the persistent session: with programs, buffers and
// flux arrays reused in place, a sweep must allocate a small fraction of
// what the rebuild-per-sweep path allocates. Measured on the sequential
// engine, where AllocsPerRun is deterministic.
func TestSteadyStateAllocationsWithReuse(t *testing.T) {
	prob, d := kobaSmall(t, false)
	q := uniformQ(prob)
	mk := func(mode sweep.ReuseMode) *sweep.Solver {
		s, err := sweep.NewSolver(prob, d, sweep.Options{Sequential: true, Grain: 16, ReuseRuntime: mode})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	reuseSolver := mk(sweep.ReuseOn)
	// Warm up: first sweeps allocate the program contexts and prime the
	// pools; steady state begins after.
	for i := 0; i < 2; i++ {
		phi, err := reuseSolver.Sweep(q)
		if err != nil {
			t.Fatal(err)
		}
		reuseSolver.RecycleFlux(phi)
	}
	reuseAllocs := testing.AllocsPerRun(5, func() {
		phi, err := reuseSolver.Sweep(q)
		if err != nil {
			t.Fatal(err)
		}
		reuseSolver.RecycleFlux(phi)
	})

	freshSolver := mk(sweep.ReuseOff)
	freshAllocs := testing.AllocsPerRun(5, func() {
		if _, err := freshSolver.Sweep(q); err != nil {
			t.Fatal(err)
		}
	})

	t.Logf("allocs/sweep: reuse=%.0f fresh=%.0f (%.1fx reduction)", reuseAllocs, freshAllocs, freshAllocs/reuseAllocs)
	if reuseAllocs*4 > freshAllocs {
		t.Errorf("steady-state reuse path allocates %.0f/sweep, fresh path %.0f — want at least a 4x reduction",
			reuseAllocs, freshAllocs)
	}
}
