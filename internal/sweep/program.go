package sweep

import (
	"sort"

	"jsweep/internal/core"
	"jsweep/internal/graph"
	"jsweep/internal/quadrature"
	"jsweep/internal/transport"
)

// Program is the data-driven sweep patch-program of paper Listing 1 for one
// (patch, angle) pair. Its local context — dependency counters, the
// priority queue of ready vertices, face-flux storage and pending output
// streams — survives across activations, making it fully reentrant
// (partial computation, §III-A1).
type Program struct {
	// Key identifies this program: Patch = patch id, Task = angle id.
	Key core.ProgramKey

	prob  *transport.Problem
	g     *graph.PatchGraph
	dir   quadrature.Direction
	q     [][]float64 // emission density [group][globalCell]
	grain int         // vertex clustering grain N (§V-C)

	// counts[v] is the number of unfinished upwind vertices (Listing 1
	// line 6).
	counts []int32
	// ready is the priority queue Q of Listing 1 line 7, ordered by the
	// vertex priority strategy.
	ready vertexQueue
	prio  []int32
	// psiFace stores incoming face fluxes: [v*maxFaces*G + f*G + g].
	psiFace []float64
	// phiLocal accumulates w·ψ̄ per [group][local vertex]; the solver
	// reduces programs in angle order, keeping results bit-reproducible.
	phiLocal [][]float64
	// outstreams aggregates boundary fluxes per target program (Listing 1
	// line 8); entries are retained across Compute calls with their
	// backing arrays (outPending counts the fluxes awaiting flush).
	// pending holds encoded streams awaiting Output, consumed through the
	// pendingHead cursor so the backing array is reusable.
	outstreams  map[core.ProgramKey][]faceFlux
	outPending  int
	pending     []core.Stream
	pendingHead int
	remaining   int64

	// outArena backs the per-Compute remote-edge flux copies; keyScratch
	// backs flushOutstreams' sorted key list; bufs is the payload-buffer
	// freelist. All are reused across calls and rounds.
	outArena   []float64
	keyScratch []core.ProgramKey
	bufs       bufStack

	// recordClusters makes Compute record each vertex batch for graph
	// coarsening (§V-E).
	recordClusters bool
	clusters       [][]int32

	// lag is the shared lagged-flux store breaking cyclic dependencies
	// (nil on acyclic meshes); lagOutBy indexes the graph's LagOut entries
	// by local vertex for the Compute hot path.
	lag      *LagStore
	lagOutBy map[int32][]graph.LagOut

	// scratch buffers reused across vertices.
	qCell, psiOut, psiBar, psiScratch []float64

	// stats
	computeCalls int64
	solvedBatch  int64
}

// ProgramConfig bundles the immutable inputs of a sweep program.
type ProgramConfig struct {
	Prob *transport.Problem
	// Graph is this (patch, angle)'s dependency subgraph.
	Graph *graph.PatchGraph
	// Dir is the quadrature direction of the angle.
	Dir quadrature.Direction
	// Q is the emission density [group][globalCell].
	Q [][]float64
	// Grain is the vertex clustering grain (≥ 1).
	Grain int
	// VertexPrio orders the ready queue (one entry per local vertex).
	VertexPrio []int32
	// RecordClusters enables cluster recording for coarsening.
	RecordClusters bool
	// Lag is the solver's lagged-flux store; required when Graph has
	// lagged edges, ignored (may be nil) otherwise.
	Lag *LagStore
}

// NewProgram builds a sweep patch-program.
func NewProgram(cfg ProgramConfig) *Program {
	grain := cfg.Grain
	if grain < 1 {
		grain = 1
	}
	return &Program{
		Key:            core.ProgramKey{Patch: cfg.Graph.Patch, Task: core.TaskTag(cfg.Graph.Angle)},
		prob:           cfg.Prob,
		g:              cfg.Graph,
		dir:            cfg.Dir,
		q:              cfg.Q,
		grain:          grain,
		prio:           cfg.VertexPrio,
		recordClusters: cfg.RecordClusters,
		lag:            cfg.Lag,
	}
}

// PhiLocal exposes the accumulated w·ψ̄ [group][local vertex] after a run.
func (p *Program) PhiLocal() [][]float64 { return p.phiLocal }

// Clusters returns the recorded vertex clusters (RecordClusters mode).
func (p *Program) Clusters() [][]int32 { return p.clusters }

// Graph returns the program's dependency subgraph.
func (p *Program) Graph() *graph.PatchGraph { return p.g }

// ComputeCalls returns the number of Compute invocations (scheduling events).
func (p *Program) ComputeCalls() int64 { return p.computeCalls }

// Init implements core.PatchProgram (Listing 1 init): allocate the local
// context on first use, reset counters, collect source vertices into the
// ready queue. Init runs exactly once per session; persistent sessions
// rearm the program between rounds with Reset instead.
func (p *Program) Init() {
	p.ensure()
	p.resetState()
}

// Reset rebinds the emission source and returns the program to its
// just-initialized state in place, reusing every buffer. Persistent
// sessions call it between rounds instead of rebuilding the program; the
// runtime will not call Init again.
func (p *Program) Reset(q [][]float64) {
	p.q = q
	if p.counts != nil {
		p.resetState()
	}
}

// ensure allocates the program's local context once.
func (p *Program) ensure() {
	if p.counts != nil {
		return
	}
	n := p.g.NumVertices()
	G := p.prob.Groups
	mf := p.prob.MaxFaces()
	p.counts = make([]int32, n)
	p.psiFace = make([]float64, n*mf*G)
	p.phiLocal = make([][]float64, G)
	for g := range p.phiLocal {
		p.phiLocal[g] = make([]float64, n)
	}
	p.outstreams = make(map[core.ProgramKey][]faceFlux)
	p.qCell = make([]float64, G)
	p.psiOut = make([]float64, mf*G)
	p.psiBar = make([]float64, G)
	p.psiScratch = make([]float64, G)
	p.ready = vertexQueue{prio: p.prio}
	if len(p.g.LagOut) > 0 {
		p.lagOutBy = make(map[int32][]graph.LagOut, len(p.g.LagOut))
		for _, lo := range p.g.LagOut {
			p.lagOutBy[lo.V] = append(p.lagOutBy[lo.V], lo)
		}
	}
}

// resetState restores the just-initialized state, reusing the buffers.
func (p *Program) resetState() {
	n := p.g.NumVertices()
	copy(p.counts, p.g.InDegree)
	// Unwritten face slots are the vacuum boundary condition ψ=0.
	clear(p.psiFace)
	// Lagged incoming faces read the previous sweep's flux (zero before
	// the first sweep); they carry no in-degree, so readiness is unchanged.
	if len(p.g.LagIn) > 0 {
		G := p.prob.Groups
		mf := p.prob.MaxFaces()
		a := p.g.Angle
		for _, li := range p.g.LagIn {
			base := (int(li.V)*mf + int(li.Face)) * G
			copy(p.psiFace[base:base+G], p.lag.Old(a, li.Idx))
		}
	}
	for g := range p.phiLocal {
		clear(p.phiLocal[g])
	}
	for k, fl := range p.outstreams {
		p.outstreams[k] = fl[:0]
	}
	p.outPending = 0
	clear(p.pending)
	p.pending = p.pending[:0]
	p.pendingHead = 0
	p.remaining = int64(n)
	p.clusters = nil
	p.computeCalls = 0
	p.solvedBatch = 0
	p.ready.heap = p.ready.heap[:0]
	for v := int32(0); v < int32(n); v++ {
		if p.counts[v] == 0 {
			p.ready.push(v)
		}
	}
}

// Input implements core.PatchProgram (Listing 1 input): receive remote
// face fluxes, decrement counters, enqueue newly-ready vertices.
func (p *Program) Input(s core.Stream) {
	G := p.prob.Groups
	mf := p.prob.MaxFaces()
	err := decodeFaceFluxes(s.Payload, G, p.psiScratch, func(v int32, face int8, psi []float64) {
		base := (int(v)*mf + int(face)) * G
		copy(p.psiFace[base:base+G], psi)
		p.counts[v]--
		if p.counts[v] == 0 {
			p.ready.push(v)
		}
	})
	if err != nil {
		// A malformed payload is a programming error in this closed
		// system; surface loudly.
		panic(err)
	}
	// The payload is fully decoded and exclusively ours: recycle it.
	p.bufs.put(s.Payload)
}

// Compute implements core.PatchProgram (Listing 1 compute): dequeue up to
// grain ready vertices, solve them, propagate to downwind vertices.
func (p *Program) Compute() {
	p.computeCalls++
	if p.ready.Len() == 0 {
		return
	}
	G := p.prob.Groups
	mf := p.prob.MaxFaces()
	w := p.dir.Weight
	// Remote-edge flux copies of this Compute live in the arena; they are
	// consumed by flushOutstreams before the call returns.
	p.outArena = p.outArena[:0]
	var batch []int32
	if p.recordClusters {
		batch = make([]int32, 0, p.grain)
	}
	for solved := 0; solved < p.grain && p.ready.Len() > 0; solved++ {
		v := p.ready.pop()
		if p.recordClusters {
			batch = append(batch, v)
		}
		c := p.g.Cells[v]
		base := v * int32(mf) * int32(G)
		for g := 0; g < G; g++ {
			p.qCell[g] = p.q[g][c]
		}
		p.prob.SolveCell(c, p.dir.Omega, p.qCell, p.psiFace[base:base+int32(mf*G)], p.psiOut, p.psiBar)
		for g := 0; g < G; g++ {
			p.phiLocal[g][v] += w * p.psiBar[g]
		}
		// Lagged downwind edges: store the flux for the next sweep instead
		// of propagating it now.
		if p.lagOutBy != nil {
			for _, lo := range p.lagOutBy[v] {
				p.lag.StoreNew(p.g.Angle, lo.Idx, p.psiOut[int(lo.SrcFace)*G:int(lo.SrcFace)*G+G])
			}
		}
		// Local downwind edges: write the face flux straight into the
		// neighbour's slot.
		for _, e := range p.g.LocalEdges(v) {
			dst := (int(e.To)*mf + int(e.Face)) * G
			src := int(e.SrcFace) * G
			copy(p.psiFace[dst:dst+G], p.psiOut[src:src+G])
			p.counts[e.To]--
			if p.counts[e.To] == 0 {
				p.ready.push(e.To)
			}
		}
		// Remote downwind edges: aggregate per target program (§V-C). The
		// flux copy lives in the arena; growth relocation is harmless
		// because handed-out chunks keep their old backing.
		for _, e := range p.g.RemoteEdges(v) {
			key := core.ProgramKey{Patch: e.ToPatch, Task: p.Key.Task}
			base := len(p.outArena)
			p.outArena = append(p.outArena, p.psiOut[int(e.SrcFace)*G:int(e.SrcFace)*G+G]...)
			psi := p.outArena[base : base+G : base+G]
			p.outstreams[key] = append(p.outstreams[key], faceFlux{v: e.To, face: e.Face, psi: psi})
			p.outPending++
		}
		p.remaining--
	}
	if p.recordClusters && len(batch) > 0 {
		p.clusters = append(p.clusters, batch)
	}
	p.solvedBatch++
	p.flushOutstreams()
}

// flushOutstreams converts aggregated fluxes into pending streams, one per
// target program, in deterministic key order. Map entries keep their
// backing arrays for the next Compute.
func (p *Program) flushOutstreams() {
	if p.outPending == 0 {
		return
	}
	keys := p.keyScratch[:0]
	for k, fl := range p.outstreams {
		if len(fl) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Patch != keys[j].Patch {
			return keys[i].Patch < keys[j].Patch
		}
		return keys[i].Task < keys[j].Task
	})
	G := p.prob.Groups
	for _, k := range keys {
		fl := p.outstreams[k]
		buf := p.bufs.get(StreamPayloadBytes(len(fl), G))
		p.pending = append(p.pending, core.Stream{
			SrcPatch: p.Key.Patch, SrcTask: p.Key.Task,
			TgtPatch: k.Patch, TgtTask: k.Task,
			Payload: encodeFaceFluxes(buf, G, fl),
		})
		p.outstreams[k] = fl[:0]
	}
	p.outPending = 0
	p.keyScratch = keys
}

// Output implements core.PatchProgram (Listing 1 output).
func (p *Program) Output() (core.Stream, bool) {
	if p.pendingHead >= len(p.pending) {
		p.pending = p.pending[:0]
		p.pendingHead = 0
		return core.Stream{}, false
	}
	s := p.pending[p.pendingHead]
	p.pending[p.pendingHead] = core.Stream{}
	p.pendingHead++
	return s, true
}

// VoteToHalt implements core.PatchProgram (Listing 1 vote_to_halt): halt
// when no vertex is ready.
func (p *Program) VoteToHalt() bool { return p.ready.Len() == 0 }

// RemainingWork implements core.WorkloadReporter: unfinished (cell, angle)
// count of this program.
func (p *Program) RemainingWork() int64 { return p.remaining }

// vertexQueue is a max-heap of local vertex ids ordered by prio (ties by
// vertex id for determinism — a strict total order, so pop order is
// independent of heap internals). It is hand-rolled instead of
// container/heap to avoid boxing an interface value per pushed vertex on
// the hottest scheduling path.
type vertexQueue struct {
	prio []int32
	heap []int32
}

func (q *vertexQueue) Len() int { return len(q.heap) }

func (q *vertexQueue) less(i, j int) bool {
	a, b := q.heap[i], q.heap[j]
	if q.prio != nil && q.prio[a] != q.prio[b] {
		return q.prio[a] > q.prio[b]
	}
	return a < b
}

func (q *vertexQueue) push(v int32) {
	h := q.heap
	h = append(h, v)
	q.heap = h
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *vertexQueue) pop() int32 {
	h := q.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	q.heap = h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && q.less(l, best) {
			best = l
		}
		if r < n && q.less(r, best) {
			best = r
		}
		if best == i {
			break
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
	return top
}
