package sweep

import (
	"testing"

	"jsweep/internal/graph"
	"jsweep/internal/mesh"
	"jsweep/internal/meshgen"
	"jsweep/internal/priority"
	"jsweep/internal/quadrature"
	"jsweep/internal/runtime"
	"jsweep/internal/transport"
)

// cyclicProblem builds the twisted-ring torture case: a stacked cyclic
// mesh, an azimuthal decomposition and a transport problem. The returned
// problem is asserted (not assumed) to carry at least one cell-level and
// one patch-level SCC of size > 1.
func cyclicProblem(t *testing.T, scattering bool, groups int) (*transport.Problem, *mesh.Decomposition) {
	t.Helper()
	m, err := meshgen.CyclicStack(12, 2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := meshgen.AzimuthalBlocks(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	quad, err := quadrature.New(2)
	if err != nil {
		t.Fatal(err)
	}
	// Precondition: the mesh really is cyclic at both levels.
	cellCyclic, patchCyclic := false, false
	for _, dir := range quad.Directions {
		comp, n := graph.CellSCC(m, dir.Omega)
		if nt, maxSize := graph.NontrivialSCCs(comp, n); nt > 0 && maxSize > 1 {
			cellCyclic = true
		}
		dag := graph.BuildPatchDAG(d, dir.Omega)
		pcomp, pn := dag.SCC()
		if nt, maxSize := graph.NontrivialSCCs(pcomp, pn); nt > 0 && maxSize > 1 {
			patchCyclic = true
		}
	}
	if !cellCyclic || !patchCyclic {
		t.Fatalf("torture mesh lost its cycles (cell=%v patch=%v)", cellCyclic, patchCyclic)
	}
	sigT := make([]float64, groups)
	src := make([]float64, groups)
	var scat [][]float64
	for g := 0; g < groups; g++ {
		sigT[g] = 0.8 + 0.2*float64(g)
	}
	src[0] = 1.0
	if scattering {
		scat = make([][]float64, groups)
		for g := 0; g < groups; g++ {
			scat[g] = make([]float64, groups)
			scat[g][g] = 0.3
			if g+1 < groups {
				scat[g][g+1] = 0.1
			}
		}
	}
	prob := &transport.Problem{
		M:      m,
		Mats:   []transport.Material{{Name: "twisted", SigmaT: sigT, SigmaS: scat, Source: src}},
		Quad:   quad,
		Groups: groups,
		Scheme: transport.Step,
	}
	return prob, d
}

// TestCyclicSweepMatchesLaggedReference is the acceptance gate of the
// cycle-tolerant sweep path: on a provably cyclic mesh, every executor
// configuration must converge through SourceIterate with flux bitwise
// identical to the lagged serial reference, iteration for iteration.
func TestCyclicSweepMatchesLaggedReference(t *testing.T) {
	cases := []struct {
		name string
		opts Options
	}{
		{"sequential", Options{Sequential: true}},
		{"parallel-reuse-on", Options{Procs: 2, Workers: 2, Grain: 4, ReuseRuntime: ReuseOn}},
		{"parallel-reuse-off", Options{Procs: 2, Workers: 2, Grain: 4, ReuseRuntime: ReuseOff}},
		{"parallel-coarse", Options{Procs: 2, Workers: 2, Grain: 4, UseCoarse: true}},
		{"parallel-aggregated", Options{Procs: 2, Workers: 2, Grain: 4,
			Aggregation: runtime.AggregationConfig{Enabled: true, Shards: 2}}},
	}
	for _, scattering := range []bool{false, true} {
		prob, d := cyclicProblem(t, scattering, 2)
		ref, err := NewReference(prob)
		if err != nil {
			t.Fatal(err)
		}
		if ref.LaggedEdges() == 0 {
			t.Fatal("reference lagged no edges on a cyclic mesh")
		}
		cfg := transport.IterConfig{Tolerance: 1e-9, MaxIterations: 400}
		want, err := transport.SourceIterate(prob, ref, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !want.Converged {
			t.Fatalf("reference did not converge in %d iterations (residual %g)", want.Iterations, want.Residual)
		}
		if !scattering && want.Iterations < 2 {
			t.Fatalf("pure absorber on a cyclic mesh converged in %d iteration — lagged fluxes cannot have been iterated", want.Iterations)
		}
		for _, tc := range cases {
			name := tc.name
			if scattering {
				name += "-scatter"
			}
			t.Run(name, func(t *testing.T) {
				o := tc.opts
				o.Pair = priority.Pair{Patch: priority.SLBD, Vertex: priority.SLBD}
				s, err := NewSolver(prob, d, o)
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close()
				if s.LaggedEdges() != ref.LaggedEdges() {
					t.Fatalf("solver lags %d edges, reference %d", s.LaggedEdges(), ref.LaggedEdges())
				}
				res, err := transport.SourceIterate(prob, s, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if res.Iterations != want.Iterations || !res.Converged {
					t.Fatalf("iterations = %d (converged=%v), reference took %d", res.Iterations, res.Converged, want.Iterations)
				}
				for g := range want.Phi {
					for c := range want.Phi[g] {
						if res.Phi[g][c] != want.Phi[g][c] {
							t.Fatalf("flux differs at group %d cell %d: %v != %v", g, c, res.Phi[g][c], want.Phi[g][c])
						}
					}
				}
				st := s.LastStats()
				if st.LaggedEdges == 0 || st.CellSCCs == 0 || st.PatchSCCs == 0 {
					t.Errorf("stats missing cycle info: %+v", st)
				}
				if tc.opts.UseCoarse && !st.Coarse {
					t.Error("UseCoarse solver never switched to the coarse graph")
				}
			})
		}
	}
}

// TestCyclicConvergesToFixedPoint checks the lagged iteration approaches
// the true fixed point: a normal-tolerance solve must agree with a
// fine-tolerance run to within the coarser tolerance's accuracy.
func TestCyclicConvergesToFixedPoint(t *testing.T) {
	prob, d := cyclicProblem(t, true, 1)
	s, err := NewSolver(prob, d, Options{Procs: 2, Workers: 2, Grain: 4,
		Pair: priority.Pair{Patch: priority.SLBD, Vertex: priority.SLBD}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := transport.SourceIterate(prob, s, transport.IterConfig{Tolerance: 1e-7, MaxIterations: 400})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("solver did not converge (residual %g)", res.Residual)
	}
	ref, err := NewReference(prob)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := transport.SourceIterate(prob, ref, transport.IterConfig{Tolerance: 1e-13, MaxIterations: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if !fine.Converged {
		t.Fatalf("fine-tolerance run did not converge (residual %g)", fine.Residual)
	}
	var maxRel float64
	for g := range fine.Phi {
		for c := range fine.Phi[g] {
			want := fine.Phi[g][c]
			got := res.Phi[g][c]
			if want == 0 {
				if got != 0 {
					t.Fatalf("group %d cell %d: got %v, want 0", g, c, got)
				}
				continue
			}
			rel := (got - want) / want
			if rel < 0 {
				rel = -rel
			}
			if rel > maxRel {
				maxRel = rel
			}
		}
	}
	if maxRel > 1e-5 {
		t.Errorf("normal-tolerance solve deviates from the fixed point by %g (relative)", maxRel)
	}
}

// TestCyclicPureAbsorberIterates pins the SourceIterate contract: with
// lagged edges present the no-scattering early exit must stay disabled
// until the lagged fluxes converge.
func TestCyclicPureAbsorberIterates(t *testing.T) {
	prob, d := cyclicProblem(t, false, 1)
	s, err := NewSolver(prob, d, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := transport.SourceIterate(prob, s, transport.IterConfig{Tolerance: 1e-11, MaxIterations: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: residual %g after %d iterations", res.Residual, res.Iterations)
	}
	if res.Iterations < 2 {
		t.Fatalf("converged in %d iteration; the lagged ring needs several passes", res.Iterations)
	}
	// An acyclic pure absorber must still exit after one sweep.
	am, err := meshgen.TwistedRing(12, 1, 2, 0.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	ad, err := meshgen.AzimuthalBlocks(am, 4)
	if err != nil {
		t.Fatal(err)
	}
	aprob := &transport.Problem{
		M:      am,
		Mats:   []transport.Material{{Name: "a", SigmaT: []float64{0.8}, Source: []float64{1.0}}},
		Quad:   prob.Quad,
		Groups: 1,
		Scheme: transport.Step,
	}
	as, err := NewSolver(aprob, ad, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	defer as.Close()
	if as.LaggedEdges() != 0 {
		t.Fatalf("untwisted ring lagged %d edges", as.LaggedEdges())
	}
	ares, err := transport.SourceIterate(aprob, as, transport.IterConfig{Tolerance: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	if ares.Iterations != 1 {
		t.Errorf("acyclic pure absorber took %d iterations, want 1", ares.Iterations)
	}
}
