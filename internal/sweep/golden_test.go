package sweep_test

import (
	"math"
	"testing"

	"jsweep/internal/priority"
	"jsweep/internal/runtime"
	"jsweep/internal/sweep"
	"jsweep/internal/transport"
)

// Golden regression tests: the JSweep solver's converged scalar flux must
// match the serial reference executor on the same problem — bit-for-bit
// on structured Kobayashi (identical cell visit order per angle within a
// patch), and to tight tolerance on the unstructured ball. Both with and
// without message aggregation: batching reorders delivery, never values.

// goldenTol is the relative tolerance for the unstructured comparison,
// where patch-boundary accumulation order may differ from the serial
// reference's global order.
const goldenTol = 1e-12

func referenceFlux(t *testing.T, prob *transport.Problem) [][]float64 {
	t.Helper()
	ref, err := sweep.NewReference(prob)
	if err != nil {
		t.Fatal(err)
	}
	res, err := transport.SourceIterate(prob, ref, transport.IterConfig{Tolerance: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("reference did not converge")
	}
	return res.Phi
}

func compareFlux(t *testing.T, name string, got, want [][]float64, bitwise bool) {
	t.Helper()
	mismatches := 0
	for g := range want {
		for c := range want[g] {
			w, h := want[g][c], got[g][c]
			if bitwise {
				if w != h {
					mismatches++
					if mismatches <= 5 {
						t.Errorf("%s: group %d cell %d: got %v, want %v (bitwise)", name, g, c, h, w)
					}
				}
				continue
			}
			denom := math.Abs(w)
			if denom < 1 {
				denom = 1
			}
			if math.Abs(h-w)/denom > goldenTol {
				mismatches++
				if mismatches <= 5 {
					t.Errorf("%s: group %d cell %d: got %v, want %v (rel err %.2e)",
						name, g, c, h, w, math.Abs(h-w)/denom)
				}
			}
		}
	}
	if mismatches > 5 {
		t.Errorf("%s: %d total mismatches", name, mismatches)
	}
}

func aggVariants() map[string]runtime.AggregationConfig {
	return map[string]runtime.AggregationConfig{
		"agg-off":     {},
		"agg-on":      {Enabled: true},
		"agg-sharded": {Enabled: true, Shards: 3, MaxBatchStreams: 8},
	}
}

func TestGoldenKobayashiMatchesReference(t *testing.T) {
	prob, d := kobaSmall(t, true)
	want := referenceFlux(t, prob)
	for name, agg := range aggVariants() {
		s, err := sweep.NewSolver(prob, d, sweep.Options{
			Procs: 3, Workers: 2, Grain: 32,
			Pair:        priority.Pair{Patch: priority.SLBD, Vertex: priority.SLBD},
			Aggregation: agg,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := transport.SourceIterate(prob, s, transport.IterConfig{Tolerance: 1e-8})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("%s: solver did not converge", name)
		}
		compareFlux(t, "kobayashi/"+name, res.Phi, want, true)
	}
}

func TestGoldenBallMatchesReference(t *testing.T) {
	prob, d := ballSmall(t)
	want := referenceFlux(t, prob)
	for name, agg := range aggVariants() {
		s, err := sweep.NewSolver(prob, d, sweep.Options{
			Procs: 2, Workers: 2, Grain: 16,
			Pair:        priority.Pair{Patch: priority.SLBD, Vertex: priority.SLBD},
			Aggregation: agg,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := transport.SourceIterate(prob, s, transport.IterConfig{Tolerance: 1e-8})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("%s: solver did not converge", name)
		}
		compareFlux(t, "ball/"+name, res.Phi, want, false)
	}
}

// Aggregation must leave the routed stream count invariant while cutting
// transport messages — checked on a real solve, not a synthetic grid.
func TestGoldenAggregationMessageInvariants(t *testing.T) {
	prob, d := kobaSmall(t, false)
	run := func(agg runtime.AggregationConfig) runtime.Stats {
		s, err := sweep.NewSolver(prob, d, sweep.Options{
			Procs: 3, Workers: 2, Grain: 32,
			Pair:        priority.Pair{Patch: priority.SLBD, Vertex: priority.SLBD},
			Aggregation: agg,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Sweep(prob.NewFlux()); err != nil {
			t.Fatal(err)
		}
		return s.LastStats().Runtime
	}
	off := run(runtime.AggregationConfig{})
	on := run(runtime.AggregationConfig{Enabled: true})
	if on.RemoteStreams != off.RemoteStreams {
		t.Errorf("RemoteStreams changed: on=%d off=%d", on.RemoteStreams, off.RemoteStreams)
	}
	if on.BatchesSent == 0 || on.BatchesSent >= on.RemoteStreams {
		t.Errorf("BatchesSent=%d, want in (0, %d)", on.BatchesSent, on.RemoteStreams)
	}
	if on.Messages >= off.Messages {
		t.Errorf("aggregation did not reduce messages: on=%d off=%d", on.Messages, off.Messages)
	}
}
