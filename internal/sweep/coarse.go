package sweep

import (
	"sort"

	"jsweep/internal/core"
	"jsweep/internal/graph"
	"jsweep/internal/quadrature"
	"jsweep/internal/transport"
)

// CoarseProgram executes one (patch, angle)'s share of a coarsened graph
// (§V-E): scheduling happens per coarse vertex (one recorded cluster) and
// communication per coarse edge, eliminating the per-vertex counter and
// per-edge message bookkeeping of the fine sweep. Numerical results are
// identical to the fine sweep — only scheduling granularity changes.
type CoarseProgram struct {
	Key core.ProgramKey

	prob *transport.Problem
	g    *graph.PatchGraph
	cg   *graph.CoarseGraph
	// cvs lists this program's coarse vertex ids (cluster order).
	cvs []int32
	// cvLocal maps a global coarse id to its index in cvs.
	cvLocal map[int32]int32
	dir     quadrature.Direction
	q       [][]float64

	counts []int32 // per local coarse vertex
	// ready holds ready local coarse indices (FIFO), consumed through the
	// readyHead cursor so the backing array is reusable.
	ready     []int32
	readyHead int
	psiFace   []float64
	outBuf    []float64 // outgoing face fluxes per [v*maxFaces*G]
	phiLocal  [][]float64
	// pending is consumed through the pendingHead cursor so the backing
	// array is reusable across Compute calls and rounds.
	pending     []core.Stream
	pendingHead int
	// remaining counts unfinished fine vertices (workload semantics match
	// the fine program).
	remaining int64

	// lag is the shared lagged-flux store breaking cyclic dependencies
	// (nil on acyclic meshes); lagOutBy indexes the fine graph's LagOut
	// entries by local vertex.
	lag      *LagStore
	lagOutBy map[int32][]graph.LagOut

	qCell, psiOut, psiBar, psiScratch []float64
	// outArena backs per-Compute remote-edge flux copies; fluxScratch the
	// per-coarse-edge record list; bufs the payload-buffer freelist. All
	// reused across calls and rounds.
	outArena    []float64
	fluxScratch []faceFlux
	bufs        bufStack

	computeCalls int64
}

// CoarseConfig bundles a coarse program's inputs.
type CoarseConfig struct {
	Prob *transport.Problem
	// Graph is the fine subgraph (needed for kernel-level propagation).
	Graph *graph.PatchGraph
	// CG is the shared coarsened graph; CVs lists this program's coarse
	// vertex ids in cluster order (graph.CoarseGraph.ByProgram entry).
	CG  *graph.CoarseGraph
	CVs []int32
	Dir quadrature.Direction
	Q   [][]float64
	// Lag is the solver's lagged-flux store; required when Graph has
	// lagged edges, ignored (may be nil) otherwise.
	Lag *LagStore
}

// NewCoarseProgram builds a coarse sweep program.
func NewCoarseProgram(cfg CoarseConfig) *CoarseProgram {
	p := &CoarseProgram{
		Key:     core.ProgramKey{Patch: cfg.Graph.Patch, Task: core.TaskTag(cfg.Graph.Angle)},
		prob:    cfg.Prob,
		g:       cfg.Graph,
		cg:      cfg.CG,
		cvs:     cfg.CVs,
		dir:     cfg.Dir,
		q:       cfg.Q,
		lag:     cfg.Lag,
		cvLocal: make(map[int32]int32, len(cfg.CVs)),
	}
	for i, cv := range cfg.CVs {
		p.cvLocal[cv] = int32(i)
	}
	return p
}

// PhiLocal exposes the accumulated w·ψ̄ [group][local fine vertex].
func (p *CoarseProgram) PhiLocal() [][]float64 { return p.phiLocal }

// ComputeCalls returns the number of Compute invocations.
func (p *CoarseProgram) ComputeCalls() int64 { return p.computeCalls }

// Init implements core.PatchProgram. It runs exactly once per session;
// persistent sessions rearm the program between rounds with Reset.
func (p *CoarseProgram) Init() {
	p.ensure()
	p.resetState()
}

// Reset rebinds the emission source and restores the just-initialized
// state in place, reusing every buffer (the runtime will not call Init
// again).
func (p *CoarseProgram) Reset(q [][]float64) {
	p.q = q
	if p.counts != nil {
		p.resetState()
	}
}

// ensure allocates the program's local context once.
func (p *CoarseProgram) ensure() {
	if p.counts != nil {
		return
	}
	n := p.g.NumVertices()
	G := p.prob.Groups
	mf := p.prob.MaxFaces()
	p.psiFace = make([]float64, n*mf*G)
	p.outBuf = make([]float64, n*mf*G)
	p.phiLocal = make([][]float64, G)
	for g := range p.phiLocal {
		p.phiLocal[g] = make([]float64, n)
	}
	p.counts = make([]int32, len(p.cvs))
	p.qCell = make([]float64, G)
	p.psiOut = make([]float64, mf*G)
	p.psiBar = make([]float64, G)
	p.psiScratch = make([]float64, G)
	if len(p.g.LagOut) > 0 {
		p.lagOutBy = make(map[int32][]graph.LagOut, len(p.g.LagOut))
		for _, lo := range p.g.LagOut {
			p.lagOutBy[lo.V] = append(p.lagOutBy[lo.V], lo)
		}
	}
}

// resetState restores the just-initialized state, reusing the buffers.
func (p *CoarseProgram) resetState() {
	// Unwritten face slots are the vacuum boundary condition ψ=0. outBuf
	// needs no clear: every read slot is written when its vertex solves.
	clear(p.psiFace)
	// Lagged incoming faces read the previous sweep's flux.
	if len(p.g.LagIn) > 0 {
		G := p.prob.Groups
		mf := p.prob.MaxFaces()
		a := p.g.Angle
		for _, li := range p.g.LagIn {
			base := (int(li.V)*mf + int(li.Face)) * G
			copy(p.psiFace[base:base+G], p.lag.Old(a, li.Idx))
		}
	}
	for g := range p.phiLocal {
		clear(p.phiLocal[g])
	}
	p.remaining = int64(p.g.NumVertices())
	p.computeCalls = 0
	clear(p.pending)
	p.pending = p.pending[:0]
	p.pendingHead = 0
	p.ready = p.ready[:0]
	p.readyHead = 0
	for i, cv := range p.cvs {
		p.counts[i] = p.cg.InDeg[cv]
		if p.counts[i] == 0 {
			p.ready = append(p.ready, int32(i))
		}
	}
	sort.Slice(p.ready, func(a, b int) bool { return p.ready[a] < p.ready[b] })
}

// Input implements core.PatchProgram: one stream = one incoming coarse
// edge's aggregated fluxes.
func (p *CoarseProgram) Input(s core.Stream) {
	G := p.prob.Groups
	mf := p.prob.MaxFaces()
	cvLocal, err := decodeCoarsePayload(s.Payload, G, p.psiScratch, func(v int32, face int8, psi []float64) {
		base := (int(v)*mf + int(face)) * G
		copy(p.psiFace[base:base+G], psi)
	})
	if err != nil {
		panic(err)
	}
	p.bufs.put(s.Payload)
	p.counts[cvLocal]--
	if p.counts[cvLocal] == 0 {
		p.ready = append(p.ready, cvLocal)
	}
}

// Compute implements core.PatchProgram: execute every ready coarse vertex.
func (p *CoarseProgram) Compute() {
	p.computeCalls++
	G := p.prob.Groups
	mf := p.prob.MaxFaces()
	w := p.dir.Weight
	// Remote-edge flux copies of this Compute live in the arena; they are
	// encoded into payloads before the call returns.
	p.outArena = p.outArena[:0]
	for p.readyHead < len(p.ready) {
		ci := p.ready[p.readyHead]
		p.readyHead++
		cv := p.cvs[ci]
		// Solve the member fine vertices in recorded order.
		for _, v := range p.cg.Verts[cv] {
			c := p.g.Cells[v]
			base := int(v) * mf * G
			for g := 0; g < G; g++ {
				p.qCell[g] = p.q[g][c]
			}
			p.prob.SolveCell(c, p.dir.Omega, p.qCell, p.psiFace[base:base+mf*G], p.psiOut, p.psiBar)
			for g := 0; g < G; g++ {
				p.phiLocal[g][v] += w * p.psiBar[g]
			}
			copy(p.outBuf[base:base+mf*G], p.psiOut[:mf*G])
			// Lagged downwind edges: store the flux for the next sweep.
			if p.lagOutBy != nil {
				for _, lo := range p.lagOutBy[v] {
					p.lag.StoreNew(p.g.Angle, lo.Idx, p.psiOut[int(lo.SrcFace)*G:int(lo.SrcFace)*G+G])
				}
			}
			// Fine local edges: propagate immediately (targets are in this
			// or a later coarse vertex of this program).
			for _, e := range p.g.LocalEdges(v) {
				dst := (int(e.To)*mf + int(e.Face)) * G
				src := int(e.SrcFace) * G
				copy(p.psiFace[dst:dst+G], p.psiOut[src:src+G])
			}
			p.remaining--
		}
		// Coarse out-edges.
		tos, unders := p.cg.Edges(cv)
		for i, to := range tos {
			if li, mine := p.cvLocal[to]; mine {
				p.counts[li]--
				if p.counts[li] == 0 {
					p.ready = append(p.ready, li)
				}
				continue
			}
			// Remote coarse edge: pack P(ce) fluxes from outBuf via the
			// reused scratch list and arena.
			fluxes := p.fluxScratch[:0]
			for _, ue := range unders[i] {
				src := (int(ue.SrcV)*mf + int(ue.SrcFace)) * G
				base := len(p.outArena)
				p.outArena = append(p.outArena, p.outBuf[src:src+G]...)
				fluxes = append(fluxes, faceFlux{v: ue.DstV, face: ue.DstFace, psi: p.outArena[base : base+G : base+G]})
			}
			p.fluxScratch = fluxes
			// The receiver indexes counts by its local coarse index.
			tgtPatch := p.cg.Patch[to]
			tgtAngle := p.cg.Angle[to]
			buf := p.bufs.get(4 + StreamPayloadBytes(len(fluxes), G))
			p.pending = append(p.pending, core.Stream{
				SrcPatch: p.Key.Patch, SrcTask: p.Key.Task,
				TgtPatch: tgtPatch, TgtTask: core.TaskTag(tgtAngle),
				Payload: encodeCoarsePayload(buf, p.cg.LocalIndex(to), G, fluxes),
			})
		}
	}
	p.ready = p.ready[:0]
	p.readyHead = 0
}

// Output implements core.PatchProgram.
func (p *CoarseProgram) Output() (core.Stream, bool) {
	if p.pendingHead >= len(p.pending) {
		p.pending = p.pending[:0]
		p.pendingHead = 0
		return core.Stream{}, false
	}
	s := p.pending[p.pendingHead]
	p.pending[p.pendingHead] = core.Stream{}
	p.pendingHead++
	return s, true
}

// VoteToHalt implements core.PatchProgram.
func (p *CoarseProgram) VoteToHalt() bool { return p.readyHead >= len(p.ready) }

// RemainingWork implements core.WorkloadReporter.
func (p *CoarseProgram) RemainingWork() int64 { return p.remaining }

var _ core.PatchProgram = (*CoarseProgram)(nil)
var _ core.PatchProgram = (*Program)(nil)
var _ core.WorkloadReporter = (*CoarseProgram)(nil)
var _ core.WorkloadReporter = (*Program)(nil)
