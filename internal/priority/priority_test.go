package priority

import (
	"testing"

	"jsweep/internal/geom"
	"jsweep/internal/graph"
	"jsweep/internal/mesh"
)

func fixture(t *testing.T) (*mesh.Structured3D, *mesh.Decomposition, *graph.PatchDAG, []*graph.PatchGraph) {
	t.Helper()
	m, err := mesh.NewStructured3D(6, 6, 6, geom.Vec3{}, geom.Vec3{X: 1, Y: 1, Z: 1})
	if err != nil {
		t.Fatal(err)
	}
	d, err := m.BlockDecompose(2, 2, 2) // 3x3x3 = 27 patches
	if err != nil {
		t.Fatal(err)
	}
	omega := geom.Vec3{X: 0.6, Y: 0.48, Z: 0.64}
	dag := graph.BuildPatchDAG(d, omega)
	graphs := graph.BuildAllPatchGraphs(d, omega, 0)
	return m, d, dag, graphs
}

func TestStrategyString(t *testing.T) {
	if BFS.String() != "BFS" || LDCP.String() != "LDCP" || SLBD.String() != "SLBD" {
		t.Error("strategy names wrong")
	}
	if (Pair{Patch: SLBD, Vertex: BFS}).String() != "SLBD+BFS" {
		t.Error("pair notation wrong")
	}
}

func TestParseStrategy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Strategy
	}{{"BFS", BFS}, {"ldcp", LDCP}, {"SLBD", SLBD}} {
		got, err := ParseStrategy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseStrategy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseStrategy("nope"); err == nil {
		t.Error("unknown name should fail")
	}
}

func TestCombineAngleDominates(t *testing.T) {
	// Any patch priority difference must never outweigh an angle step.
	lo := Combine(AnglePriority(1), 1<<20)
	hi := Combine(AnglePriority(0), -(1 << 20))
	if hi <= lo {
		t.Errorf("angle 0 with worst patch prio (%d) must beat angle 1 with best (%d)", hi, lo)
	}
}

func TestBFSPatchPriorities(t *testing.T) {
	_, _, dag, _ := fixture(t)
	prio := PatchPriorities(BFS, dag)
	// The corner source patch (id 0, block (0,0,0)) must have the maximum
	// priority; the far corner (id 26) the minimum.
	if prio[0] != 0 {
		t.Errorf("source patch priority = %d, want 0", prio[0])
	}
	for p, pr := range prio {
		if pr > prio[0] {
			t.Errorf("patch %d priority %d exceeds the source's", p, pr)
		}
	}
	if prio[26] >= prio[0] {
		t.Error("far corner should have strictly lower BFS priority")
	}
}

func TestLDCPPatchPriorities(t *testing.T) {
	_, _, dag, _ := fixture(t)
	prio := PatchPriorities(LDCP, dag)
	// LDCP: the source corner has the longest downstream path (6 hops on a
	// 3x3x3 block lattice), sinks have 0.
	if prio[26] != 0 {
		t.Errorf("sink patch LDCP = %d, want 0", prio[26])
	}
	if prio[0] != 6 {
		t.Errorf("source patch LDCP = %d, want 6", prio[0])
	}
	// Monotone along edges: successor height < node height.
	for p := 0; p < dag.N; p++ {
		for _, q := range dag.Succ[p] {
			if prio[q] >= prio[p] {
				t.Fatalf("LDCP not decreasing along edge %d->%d", p, q)
			}
		}
	}
}

func TestSLBDPatchPriorities(t *testing.T) {
	_, _, dag, _ := fixture(t)
	prio := PatchPriorities(SLBD, dag)
	// SLBD: sink patches (distance 0 to sink) have the highest priority.
	if prio[26] != 0 {
		t.Errorf("sink patch SLBD = %d, want 0", prio[26])
	}
	if prio[0] != -6 {
		t.Errorf("source patch SLBD = %d, want -6", prio[0])
	}
}

func TestVertexPrioritiesBFS(t *testing.T) {
	_, _, _, graphs := fixture(t)
	g := graphs[0]
	prio := VertexPriorities(BFS, g)
	if len(prio) != g.NumVertices() {
		t.Fatal("length mismatch")
	}
	// BFS priority decreases along every local edge.
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		for _, e := range g.LocalEdges(v) {
			if prio[e.To] >= prio[v] {
				t.Fatalf("BFS vertex priority not decreasing along %d->%d", v, e.To)
			}
		}
	}
}

func TestVertexPrioritiesLDCP(t *testing.T) {
	_, _, _, graphs := fixture(t)
	g := graphs[0]
	prio := VertexPriorities(LDCP, g)
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		for _, e := range g.LocalEdges(v) {
			if prio[e.To] >= prio[v] {
				t.Fatalf("LDCP vertex priority not decreasing along %d->%d", v, e.To)
			}
		}
	}
}

func TestVertexPrioritiesSLBD(t *testing.T) {
	_, _, _, graphs := fixture(t)
	// Patch 0 (corner block): its downwind faces cross into other patches,
	// so vertices with remote edges must have the top SLBD priority (0);
	// all others negative.
	g := graphs[0]
	prio := VertexPriorities(SLBD, g)
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if len(g.RemoteEdges(v)) > 0 {
			if prio[v] != 0 {
				t.Errorf("boundary vertex %d SLBD = %d, want 0", v, prio[v])
			}
		} else if prio[v] >= 0 {
			t.Errorf("interior vertex %d SLBD = %d, want < 0", v, prio[v])
		}
	}
}

// All strategies must assign priorities to every patch even when the patch
// DAG has cycles (zig-zag decompositions). Build a cyclic 2-patch DAG by
// interleaving two columns of a 2D-ish mesh.
func TestPrioritiesOnCyclicPatchDAG(t *testing.T) {
	m, err := mesh.NewStructured3D(4, 2, 1, geom.Vec3{}, geom.Vec3{X: 4, Y: 2, Z: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Zig-zag assignment: patch = (i+j) % 2 — guarantees cyclic patch deps
	// along +x.
	assign := make([]mesh.PatchID, m.NumCells())
	for c := 0; c < m.NumCells(); c++ {
		i, j, _ := m.Coords(mesh.CellID(c))
		assign[c] = mesh.PatchID((i + j) % 2)
	}
	d, err := mesh.NewDecomposition(m, assign, 2)
	if err != nil {
		t.Fatal(err)
	}
	dag := graph.BuildPatchDAG(d, geom.Vec3{X: 1, Y: 0, Z: 0})
	if dag.IsAcyclic() {
		t.Fatal("fixture should be cyclic")
	}
	for _, s := range []Strategy{BFS, LDCP, SLBD} {
		prio := PatchPriorities(s, dag)
		if len(prio) != 2 {
			t.Fatalf("%v: missing priorities", s)
		}
	}
}

func TestAnglePriorityOrdering(t *testing.T) {
	if AnglePriority(0) <= AnglePriority(1) {
		t.Error("angle 0 must outrank angle 1")
	}
}
