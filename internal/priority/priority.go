// Package priority implements the two-level priority strategies of paper
// §V-D: patch-level priorities prior(p) computed on the patch dependency
// DAG of each angle, vertex-level priorities used inside a patch-program's
// ready queue, and the combination prior(p,a) = prior(a)·C + prior(p).
//
// Three strategies are provided, as in the paper:
//
//   - BFS  — breadth-first level from the sweep sources; upwind work first.
//   - LDCP — Longest Distance on Critical Path: work with the longest
//     remaining downstream chain first (paper: for structured meshes).
//   - SLBD — Shortest Local Boundary Distance: a DFS-flavoured strategy
//     preferring work closest to a patch/domain boundary, so data streams
//     leave for neighbours as early as possible.
//
// Larger priority value = scheduled earlier, everywhere in this codebase.
package priority

import (
	"fmt"

	"jsweep/internal/graph"
)

// Strategy selects a priority heuristic.
type Strategy int

const (
	// BFS prioritizes by breadth-first wavefront level (upwind first).
	BFS Strategy = iota
	// LDCP prioritizes by longest distance on the critical path.
	LDCP
	// SLBD prioritizes by shortest distance to a boundary.
	SLBD
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case BFS:
		return "BFS"
	case LDCP:
		return "LDCP"
	case SLBD:
		return "SLBD"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// ParseStrategy converts a name ("BFS", "LDCP", "SLBD") to a Strategy.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "BFS", "bfs":
		return BFS, nil
	case "LDCP", "ldcp":
		return LDCP, nil
	case "SLBD", "slbd":
		return SLBD, nil
	}
	return 0, fmt.Errorf("priority: unknown strategy %q", name)
}

// Pair is a two-level strategy choice: Patch orders patch-programs in the
// runtime, Vertex orders ready vertices inside one program. The paper
// writes pairs as "patch+vertex", e.g. SLBD+SLBD.
type Pair struct {
	Patch  Strategy
	Vertex Strategy
}

// String renders the paper's "patch+vertex" notation.
func (p Pair) String() string { return p.Patch.String() + "+" + p.Vertex.String() }

// AngleFactor is the constant C in prior(p,a) = prior(a)*C + prior(p): it
// makes the angle component always dominate the patch component so
// patch-programs of the same angle are scheduled consecutively (§V-D).
const AngleFactor = int64(1) << 24

// Combine folds an angle priority and a patch priority into the scheduling
// key used by the runtime. Angle priorities are typically -angleID so all
// programs of one sweep direction drain before the next direction starts.
func Combine(anglePrior, patchPrior int64) int64 {
	return anglePrior*AngleFactor + patchPrior
}

// AnglePriority returns prior(a) for an angle id: earlier angle ids run
// first. Keeping one angle's wavefront moving delivers streams to downwind
// patches as fast as possible.
func AnglePriority(angle int32) int64 { return -int64(angle) }

// PatchPriorities computes prior(p) for every patch of the given angle's
// patch-level DAG. Cyclic patch DAGs (the zig-zag case) are handled by
// treating the longest acyclic propagation as the metric: Bellman-Ford
// style relaxation capped at N rounds.
func PatchPriorities(s Strategy, dag *graph.PatchDAG) []int64 {
	switch s {
	case BFS:
		return negate(forwardDistance(dag))
	case LDCP:
		return backwardHeight(dag)
	case SLBD:
		return negate(distanceToSink(dag))
	}
	panic(fmt.Sprintf("priority: unknown strategy %d", int(s)))
}

func negate(xs []int64) []int64 {
	for i := range xs {
		xs[i] = -xs[i]
	}
	return xs
}

// forwardDistance returns, per patch, the BFS level from the sources
// (in-degree 0 patches). On cyclic graphs, unreachable nodes inherit the
// maximum finite level + 1.
func forwardDistance(dag *graph.PatchDAG) []int64 {
	const unset = int64(-1)
	dist := make([]int64, dag.N)
	for i := range dist {
		dist[i] = unset
	}
	queue := make([]int32, 0, dag.N)
	for p := 0; p < dag.N; p++ {
		if dag.InDeg[p] == 0 {
			dist[p] = 0
			queue = append(queue, int32(p))
		}
	}
	var maxSeen int64
	for head := 0; head < len(queue); head++ {
		p := queue[head]
		for _, q := range dag.Succ[p] {
			if dist[q] == unset {
				dist[q] = dist[p] + 1
				if dist[q] > maxSeen {
					maxSeen = dist[q]
				}
				queue = append(queue, q)
			}
		}
	}
	for i := range dist {
		if dist[i] == unset {
			dist[i] = maxSeen + 1
		}
	}
	return dist
}

// backwardHeight returns, per patch, the length of the longest downstream
// path (LDCP). Computed by relaxation so cyclic projections terminate: at
// most N rounds, heights capped at N.
func backwardHeight(dag *graph.PatchDAG) []int64 {
	h := make([]int64, dag.N)
	cap64 := int64(dag.N)
	for round := 0; round < dag.N; round++ {
		changed := false
		for p := 0; p < dag.N; p++ {
			for _, q := range dag.Succ[p] {
				if nh := h[q] + 1; nh > h[p] && nh <= cap64 {
					h[p] = nh
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return h
}

// distanceToSink returns, per patch, the shortest forward distance to a
// patch with no successors (the downwind boundary). SLBD prefers patches
// whose results reach unfinished downwind neighbours soonest.
func distanceToSink(dag *graph.PatchDAG) []int64 {
	const inf = int64(1) << 40
	dist := make([]int64, dag.N)
	for i := range dist {
		dist[i] = inf
	}
	// Multi-source BFS on reversed edges from sinks.
	pred := make([][]int32, dag.N)
	for p := 0; p < dag.N; p++ {
		for _, q := range dag.Succ[p] {
			pred[q] = append(pred[q], int32(p))
		}
	}
	queue := make([]int32, 0, dag.N)
	for p := 0; p < dag.N; p++ {
		if len(dag.Succ[p]) == 0 {
			dist[p] = 0
			queue = append(queue, int32(p))
		}
	}
	for head := 0; head < len(queue); head++ {
		q := queue[head]
		for _, p := range pred[q] {
			if dist[p] > dist[q]+1 {
				dist[p] = dist[q] + 1
				queue = append(queue, p)
			}
		}
	}
	var maxSeen int64
	for _, d := range dist {
		if d != inf && d > maxSeen {
			maxSeen = d
		}
	}
	for i := range dist {
		if dist[i] == inf {
			dist[i] = maxSeen + 1
		}
	}
	return dist
}

// VertexPriorities computes the in-patch ready-queue priority of every
// local vertex of a patch graph. Larger = dequeued first.
func VertexPriorities(s Strategy, g *graph.PatchGraph) []int32 {
	switch s {
	case BFS:
		return negate32(vertexForwardLevel(g))
	case LDCP:
		return vertexHeight(g)
	case SLBD:
		return negate32(vertexBoundaryDistance(g))
	}
	panic(fmt.Sprintf("priority: unknown strategy %d", int(s)))
}

func negate32(xs []int32) []int32 {
	for i := range xs {
		xs[i] = -xs[i]
	}
	return xs
}

// vertexForwardLevel is the BFS level from the patch's local sources,
// following local edges only (remote inputs arrive whenever they arrive;
// the local wavefront is what the queue can order).
func vertexForwardLevel(g *graph.PatchGraph) []int32 {
	n := g.NumVertices()
	level := make([]int32, n)
	localIn := make([]int32, n)
	for v := int32(0); v < int32(n); v++ {
		for _, e := range g.LocalEdges(v) {
			localIn[e.To]++
		}
	}
	queue := make([]int32, 0, n)
	for v := int32(0); v < int32(n); v++ {
		if localIn[v] == 0 {
			queue = append(queue, v)
		}
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, e := range g.LocalEdges(v) {
			if l := level[v] + 1; l > level[e.To] {
				level[e.To] = l
			}
			localIn[e.To]--
			if localIn[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	return level
}

// vertexHeight is the longest local downstream path (LDCP within a patch).
func vertexHeight(g *graph.PatchGraph) []int32 {
	n := g.NumVertices()
	h := make([]int32, n)
	order, ok := localTopo(g)
	if !ok {
		return h // cyclic local graph: flat priorities
	}
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		for _, e := range g.LocalEdges(v) {
			if nh := h[e.To] + 1; nh > h[v] {
				h[v] = nh
			}
		}
	}
	return h
}

// vertexBoundaryDistance is the number of local hops from a vertex to the
// nearest vertex owning a remote (inter-patch) downwind edge. Vertices
// whose data unblocks other patches fastest get the highest priority —
// this is SLBD's "closest to patch boundary" preference.
func vertexBoundaryDistance(g *graph.PatchGraph) []int32 {
	n := g.NumVertices()
	const inf = int32(1) << 30
	dist := make([]int32, n)
	queue := make([]int32, 0, n)
	for v := int32(0); v < int32(n); v++ {
		if len(g.RemoteEdges(v)) > 0 {
			dist[v] = 0
			queue = append(queue, v)
		} else {
			dist[v] = inf
		}
	}
	// BFS on reversed local edges.
	pred := make([][]int32, n)
	for v := int32(0); v < int32(n); v++ {
		for _, e := range g.LocalEdges(v) {
			pred[e.To] = append(pred[e.To], v)
		}
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, u := range pred[v] {
			if dist[u] > dist[v]+1 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	var maxSeen int32
	for _, d := range dist {
		if d != inf && d > maxSeen {
			maxSeen = d
		}
	}
	for i := range dist {
		if dist[i] == inf {
			dist[i] = maxSeen + 1
		}
	}
	return dist
}

// localTopo returns a topological order of the local subgraph, or ok=false
// if it is cyclic.
func localTopo(g *graph.PatchGraph) ([]int32, bool) {
	n := g.NumVertices()
	localIn := make([]int32, n)
	for v := int32(0); v < int32(n); v++ {
		for _, e := range g.LocalEdges(v) {
			localIn[e.To]++
		}
	}
	queue := make([]int32, 0, n)
	for v := int32(0); v < int32(n); v++ {
		if localIn[v] == 0 {
			queue = append(queue, v)
		}
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, e := range g.LocalEdges(v) {
			localIn[e.To]--
			if localIn[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	return queue, len(queue) == n
}
