// Package comm is the message-passing substrate standing in for MPI
// (DESIGN.md substitution #1). A Transport connects a fixed number of
// ranked endpoints; endpoints exchange opaque byte messages with
// per-endpoint unbounded inboxes (no send can deadlock against a busy
// receiver, matching buffered MPI_Isend semantics). Delivery between a
// given pair of ranks is in order.
//
// Transport and Endpoint are interfaces with two backends: the in-memory
// MemTransport of this package (all ranks are goroutines of one OS
// process) and the TCP backend of internal/netcomm (one OS process per
// rank, length-prefixed frames over per-peer connections). The runtime
// above this package never shares memory across ranks: all inter-process
// data crosses as serialized bytes, so the two backends are
// interchangeable for every caller.
//
// Each endpoint pair carries two independently ordered lanes: the data
// lane (Send/TryRecv) used by the runtime's master loops, and an
// out-of-band lane (SendOOB/RecvOOB) used by the collectives of
// Collective. Splitting the lanes lets a barrier or allgather run at a
// round boundary without consuming — or being blocked behind — early
// next-round data messages.
package comm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrClosed is returned by operations on a closed transport once any
// queued messages have been drained.
var ErrClosed = errors.New("comm: transport closed")

// Message is a received message with its source rank.
type Message struct {
	From int
	Data []byte
}

// Endpoint is one rank's attachment to a transport.
//
// Send must never block against a busy receiver (unbounded inboxes) and
// delivery between a given pair of ranks is in order per lane. The data
// slice is handed over on Send; the caller must not modify it afterwards
// (it crossed the "wire").
type Endpoint interface {
	// Rank returns this endpoint's rank.
	Rank() int
	// Send delivers data on the data lane. Sending to self is allowed.
	// After the transport is closed (or has failed), Send errors out
	// instead of racing the teardown.
	Send(to int, data []byte) error
	// SendOOB delivers data on the out-of-band lane.
	SendOOB(to int, data []byte) error
	// TryRecv returns the next pending data-lane message without blocking.
	// Messages already delivered remain receivable after Close (receivers
	// drain, then unblock).
	TryRecv() (Message, bool)
	// RecvOOB blocks for the next out-of-band message. After Close it
	// drains any queued messages, then returns ErrClosed (or the
	// transport's failure).
	RecvOOB() (Message, error)
	// Notify returns a channel that receives a token after data-lane
	// arrivals; it lets a receiver select over the transport and other
	// event sources. A token may coalesce several arrivals — drain with
	// TryRecv.
	Notify() <-chan struct{}
	// Err returns the transport's terminal state: nil while healthy,
	// ErrClosed after Close, or the first failure of a fail-fast
	// backend. It lets a receiver that only ever waits (TryRecv/Notify
	// never error) observe a dead transport instead of spinning forever.
	Err() error
	// Pending returns the number of queued data-lane messages.
	Pending() int
	// Counters returns (sent, received, bytesOut, bytesIn) message/payload
	// totals over both lanes. Sent/received counts feed Safra's
	// termination algorithm.
	Counters() (sent, received, bytesOut, bytesIn int64)
}

// Transport is an interconnect between NumRanks ranked endpoints. A
// backend may host all ranks in one process (MemTransport) or a single
// rank of a multi-process cluster (netcomm): LocalRanks lists the ranks
// whose endpoints live here.
type Transport interface {
	// NumRanks returns the global number of endpoints.
	NumRanks() int
	// LocalRanks returns the ranks hosted by this transport instance, in
	// ascending order.
	LocalRanks() []int
	// Endpoint returns the endpoint of a locally hosted rank, or nil for
	// a rank hosted elsewhere.
	Endpoint(rank int) Endpoint
	// Close shuts the transport down: in-flight sends drain, subsequent
	// sends error with ErrClosed, and blocked receivers drain their
	// queues and then unblock. Close is idempotent.
	Close() error
}

// MemTransport is the in-process backend: all ranks are goroutines of one
// OS process and "the wire" is a mutex-guarded queue.
type MemTransport struct {
	endpoints []*MemEndpoint
	closed    atomic.Bool
	local     []int
}

// NewTransport creates an in-memory transport with n ranks.
func NewTransport(n int) (*MemTransport, error) {
	if n < 1 {
		return nil, fmt.Errorf("comm: need >= 1 rank (got %d)", n)
	}
	t := &MemTransport{endpoints: make([]*MemEndpoint, n), local: make([]int, n)}
	for r := 0; r < n; r++ {
		e := &MemEndpoint{rank: r, transport: t, notify: make(chan struct{}, 1)}
		e.oobCond = sync.NewCond(&e.mu)
		t.endpoints[r] = e
		t.local[r] = r
	}
	return t, nil
}

// NumRanks returns the number of endpoints.
func (t *MemTransport) NumRanks() int { return len(t.endpoints) }

// LocalRanks returns all ranks: the in-memory backend hosts every rank.
func (t *MemTransport) LocalRanks() []int { return t.local }

// Endpoint returns the endpoint of a rank.
func (t *MemTransport) Endpoint(rank int) Endpoint {
	if rank < 0 || rank >= len(t.endpoints) {
		return nil
	}
	return t.endpoints[rank]
}

// Close marks the transport closed: subsequent sends error with
// ErrClosed; receivers blocked in RecvOOB drain their queues and then
// unblock with ErrClosed. Idempotent.
func (t *MemTransport) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	for _, e := range t.endpoints {
		e.mu.Lock()
		e.oobCond.Broadcast()
		e.mu.Unlock()
		select {
		case e.notify <- struct{}{}:
		default:
		}
	}
	return nil
}

// MemEndpoint is one rank's attachment to a MemTransport.
type MemEndpoint struct {
	rank      int
	transport *MemTransport

	mu       sync.Mutex
	oobCond  *sync.Cond
	queue    []Message
	oobQueue []Message
	notify   chan struct{}

	sent     atomic.Int64
	received atomic.Int64
	bytesIn  atomic.Int64
	bytesOut atomic.Int64
}

// Rank returns this endpoint's rank.
func (e *MemEndpoint) Rank() int { return e.rank }

// deliver appends a message to the destination queue of the given lane.
func (e *MemEndpoint) deliver(to int, data []byte, oob bool) error {
	if to < 0 || to >= len(e.transport.endpoints) {
		return fmt.Errorf("comm: rank %d sent to invalid rank %d", e.rank, to)
	}
	dst := e.transport.endpoints[to]
	dst.mu.Lock()
	// The closed check must run under the destination lock: Close swaps
	// the flag before broadcasting under each endpoint's lock, so a send
	// observing closed=false here is ordered before the receiver's
	// drain-then-unblock — the message can never be silently stranded.
	if e.transport.closed.Load() {
		dst.mu.Unlock()
		return fmt.Errorf("comm: rank %d send to %d: %w", e.rank, to, ErrClosed)
	}
	e.sent.Add(1)
	e.bytesOut.Add(int64(len(data)))
	if oob {
		dst.oobQueue = append(dst.oobQueue, Message{From: e.rank, Data: data})
		dst.oobCond.Signal()
	} else {
		dst.queue = append(dst.queue, Message{From: e.rank, Data: data})
	}
	dst.mu.Unlock()
	if !oob {
		select {
		case dst.notify <- struct{}{}:
		default:
		}
	}
	return nil
}

// Send delivers data to the endpoint of rank `to` on the data lane. The
// data slice is handed over; the caller must not modify it afterwards (it
// crossed the "wire"). Sending to self is allowed.
func (e *MemEndpoint) Send(to int, data []byte) error { return e.deliver(to, data, false) }

// SendOOB delivers data on the out-of-band (collective) lane.
func (e *MemEndpoint) SendOOB(to int, data []byte) error { return e.deliver(to, data, true) }

// Notify returns a channel that receives a token after message arrivals;
// it lets a receiver select over the transport and other event sources.
// A token may coalesce several arrivals — drain with TryRecv.
func (e *MemEndpoint) Notify() <-chan struct{} { return e.notify }

// TryRecv returns the next pending data-lane message without blocking.
func (e *MemEndpoint) TryRecv() (Message, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.queue) == 0 {
		return Message{}, false
	}
	m := e.queue[0]
	// Clear the popped slot: the backing array outlives the pop, and a
	// lingering reference would pin the payload until the whole array is
	// released — defeating buffer recycling.
	e.queue[0] = Message{}
	e.queue = e.queue[1:]
	e.received.Add(1)
	e.bytesIn.Add(int64(len(m.Data)))
	return m, true
}

// RecvOOB blocks for the next out-of-band message. After Close it drains
// the remaining queue and then returns ErrClosed.
func (e *MemEndpoint) RecvOOB() (Message, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for len(e.oobQueue) == 0 {
		if e.transport.closed.Load() {
			return Message{}, ErrClosed
		}
		e.oobCond.Wait()
	}
	m := e.oobQueue[0]
	e.oobQueue[0] = Message{} // do not pin the consumed payload (see TryRecv)
	e.oobQueue = e.oobQueue[1:]
	e.received.Add(1)
	e.bytesIn.Add(int64(len(m.Data)))
	return m, nil
}

// Err returns ErrClosed once the transport is closed, nil before.
func (e *MemEndpoint) Err() error {
	if e.transport.closed.Load() {
		return ErrClosed
	}
	return nil
}

// Pending returns the number of queued data-lane messages.
func (e *MemEndpoint) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.queue)
}

// Counters returns (sent, received, bytesOut, bytesIn) for this endpoint.
// Sent/received counts feed Safra's termination algorithm.
func (e *MemEndpoint) Counters() (sent, received, bytesOut, bytesIn int64) {
	return e.sent.Load(), e.received.Load(), e.bytesOut.Load(), e.bytesIn.Load()
}

var (
	_ Transport = (*MemTransport)(nil)
	_ Endpoint  = (*MemEndpoint)(nil)
)
