// Package comm is the message-passing substrate standing in for MPI
// (DESIGN.md substitution #1). A Transport connects a fixed number of
// ranked endpoints; endpoints exchange opaque byte messages with
// per-endpoint unbounded inboxes (no send can deadlock against a busy
// receiver, matching buffered MPI_Isend semantics). Delivery between a
// given pair of ranks is in order.
//
// The runtime above this package never shares memory across ranks: all
// inter-process data crosses as serialized bytes, so swapping this
// transport for real MPI point-to-point calls would not change any caller.
package comm

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Message is a received message with its source rank.
type Message struct {
	From int
	Data []byte
}

// Transport is an in-process interconnect between NumRanks endpoints.
type Transport struct {
	endpoints []*Endpoint
}

// NewTransport creates a transport with n ranks.
func NewTransport(n int) (*Transport, error) {
	if n < 1 {
		return nil, fmt.Errorf("comm: need >= 1 rank (got %d)", n)
	}
	t := &Transport{endpoints: make([]*Endpoint, n)}
	for r := 0; r < n; r++ {
		t.endpoints[r] = &Endpoint{rank: r, transport: t, notify: make(chan struct{}, 1)}
		t.endpoints[r].cond = sync.NewCond(&t.endpoints[r].mu)
	}
	return t, nil
}

// NumRanks returns the number of endpoints.
func (t *Transport) NumRanks() int { return len(t.endpoints) }

// Endpoint returns the endpoint of a rank.
func (t *Transport) Endpoint(rank int) *Endpoint { return t.endpoints[rank] }

// Endpoint is one rank's attachment to the transport.
type Endpoint struct {
	rank      int
	transport *Transport

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message
	notify chan struct{}

	sent     atomic.Int64
	received atomic.Int64
	bytesIn  atomic.Int64
	bytesOut atomic.Int64
}

// Rank returns this endpoint's rank.
func (e *Endpoint) Rank() int { return e.rank }

// Send delivers data to the endpoint of rank `to`. The data slice is
// handed over; the caller must not modify it afterwards (it crossed the
// "wire"). Sending to self is allowed.
func (e *Endpoint) Send(to int, data []byte) error {
	if to < 0 || to >= len(e.transport.endpoints) {
		return fmt.Errorf("comm: rank %d sent to invalid rank %d", e.rank, to)
	}
	dst := e.transport.endpoints[to]
	e.sent.Add(1)
	e.bytesOut.Add(int64(len(data)))
	dst.mu.Lock()
	dst.queue = append(dst.queue, Message{From: e.rank, Data: data})
	dst.cond.Signal()
	dst.mu.Unlock()
	select {
	case dst.notify <- struct{}{}:
	default:
	}
	return nil
}

// Notify returns a channel that receives a token after message arrivals;
// it lets a receiver select over the transport and other event sources.
// A token may coalesce several arrivals — drain with TryRecv.
func (e *Endpoint) Notify() <-chan struct{} { return e.notify }

// TryRecv returns the next pending message without blocking.
func (e *Endpoint) TryRecv() (Message, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.queue) == 0 {
		return Message{}, false
	}
	m := e.queue[0]
	e.queue = e.queue[1:]
	e.received.Add(1)
	e.bytesIn.Add(int64(len(m.Data)))
	return m, true
}

// Recv blocks until a message arrives or wake() is called with no pending
// message (in which case ok=false). Use Wake to interrupt a blocked Recv.
func (e *Endpoint) Recv() (Message, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for len(e.queue) == 0 {
		e.cond.Wait()
	}
	m := e.queue[0]
	e.queue = e.queue[1:]
	e.received.Add(1)
	e.bytesIn.Add(int64(len(m.Data)))
	return m, true
}

// Wake nudges a blocked Recv (used at shutdown). The receiver should use
// TryRecv afterwards.
func (e *Endpoint) Wake() {
	e.mu.Lock()
	e.cond.Broadcast()
	e.mu.Unlock()
}

// Pending returns the number of queued messages.
func (e *Endpoint) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.queue)
}

// Counters returns (sent, received, bytesOut, bytesIn) for this endpoint.
// Sent/received counts feed Safra's termination algorithm.
func (e *Endpoint) Counters() (sent, received, bytesOut, bytesIn int64) {
	return e.sent.Load(), e.received.Load(), e.bytesOut.Load(), e.bytesIn.Load()
}
