package comm

// White-box regression tests: the buffer pool's class arithmetic and the
// queue-pop slot clearing (a popped message must not stay referenced by
// the queue's backing array — PR 6's retention bugfix).

import (
	"sync"
	"testing"
)

func TestGetBufferCapacityClasses(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000, 4096, 1 << 20, 1<<20 + 1, 1 << 24} {
		b := GetBuffer(n)
		if len(b) != 0 {
			t.Fatalf("GetBuffer(%d) len = %d, want 0", n, len(b))
		}
		if cap(b) < n {
			t.Fatalf("GetBuffer(%d) cap = %d", n, cap(b))
		}
		PutBuffer(b)
	}
}

func TestPutBufferReuse(t *testing.T) {
	// A recycled buffer's capacity must satisfy any Get of the class it
	// was filed under, including buffers whose capacity is not a power of
	// two (filed under the largest class they cover).
	for _, c := range []int{64, 100, 4096, 65536} {
		PutBuffer(make([]byte, 0, c))
		b := GetBuffer(c / 2)
		if cap(b) < c/2 {
			t.Fatalf("reused buffer cap %d < requested %d", cap(b), c/2)
		}
	}
	// Tiny and nil buffers are dropped, not pooled.
	PutBuffer(nil)
	PutBuffer(make([]byte, 0, 8))
}

func TestSetPooling(t *testing.T) {
	was := SetPooling(false)
	defer SetPooling(was)
	if on := SetPooling(false); on {
		t.Fatal("SetPooling(false) reported pooling still on")
	}
	b := GetBuffer(128)
	if len(b) != 0 || cap(b) < 128 {
		t.Fatalf("disabled GetBuffer: len=%d cap=%d", len(b), cap(b))
	}
	PutBuffer(b) // dropped, must not panic
	SetPooling(true)
	if on := SetPooling(true); !on {
		t.Fatal("SetPooling(true) reported pooling off")
	}
}

// TestPooledSendSteadyStateAllocs pins the zero-copy claim at the comm
// layer: a steady-state send/receive/recycle cycle over the in-memory
// transport performs no per-message payload allocation.
func TestPooledSendSteadyStateAllocs(t *testing.T) {
	tr, err := NewTransport(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	src, dst := tr.endpoints[0], tr.endpoints[1]
	// Warm the pool and the queues' backing arrays.
	for i := 0; i < 8; i++ {
		buf := append(GetBuffer(4096), make([]byte, 4096)...)
		if err := SendPooled(src, 1, buf); err != nil {
			t.Fatal(err)
		}
		m, ok := dst.TryRecv()
		if !ok {
			t.Fatal("message missing")
		}
		PutBuffer(m.Data)
	}
	allocs := testing.AllocsPerRun(200, func() {
		buf := GetBuffer(4096)
		buf = buf[:4096]
		if err := SendPooled(src, 1, buf); err != nil {
			t.Fatal(err)
		}
		m, ok := dst.TryRecv()
		if !ok {
			t.Fatal("message missing")
		}
		PutBuffer(m.Data)
	})
	// One small allocation per cycle is tolerated (the pool boxes the
	// slice header on Put); the 4 KiB payload itself must be reused.
	if allocs > 2 {
		t.Fatalf("steady-state send/recv/recycle allocates %.1f times per message", allocs)
	}
}

// TestTryRecvClearsQueueSlot pins the retention bugfix: after a pop the
// backing array must not keep referencing the consumed message.
func TestTryRecvClearsQueueSlot(t *testing.T) {
	tr, err := NewTransport(1)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	e := tr.endpoints[0]
	const n = 8
	for i := 0; i < n; i++ {
		if err := e.Send(0, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if err := e.SendOOB(0, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	e.mu.Lock()
	backing, oobBacking := e.queue[:n:n], e.oobQueue[:n:n]
	e.mu.Unlock()
	for i := 0; i < n; i++ {
		if _, ok := e.TryRecv(); !ok {
			t.Fatalf("message %d missing", i)
		}
		if _, err := e.RecvOOB(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if backing[i].Data != nil {
			t.Fatalf("data-lane slot %d still pins its payload after TryRecv", i)
		}
		if oobBacking[i].Data != nil {
			t.Fatalf("oob slot %d still pins its payload after RecvOOB", i)
		}
	}
}

// TestPoolConcurrentAccess exercises the pool under the race detector.
func TestPoolConcurrentAccess(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b := GetBuffer(64 << (g % 5))
				b = append(b, byte(i))
				PutBuffer(b)
			}
		}(g)
	}
	wg.Wait()
}
