// Process-global payload-buffer pool: the comm-level counterpart of the
// sweep package's per-program freelists (internal/sweep/pool.go). The
// runtime's master loops allocate every outbound data-lane message here
// and recycle every consumed inbound one, so a steady-state solve stops
// allocating per message: with the in-memory backend a buffer travels
// sender → receiver → pool, with the netcomm backend the sender's
// transport recycles it after the write syscall and the receiver's read
// loop draws its inbound buffers from its own process's pool.
//
// Ownership discipline (also recorded in DESIGN.md): a buffer has exactly
// one owner at every hop. PutBuffer hands ownership to the pool — the
// caller must not touch the slice afterwards, and must never put a buffer
// it shared with anyone else (the collectives' AllExchange fans one slice
// out to every rank, which is why only explicitly pooled sends recycle).
package comm

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Size classes are powers of two from 64 B to 1 MiB. Requests above the
// largest class fall back to plain allocation and are dropped on Put.
const (
	minPoolShift = 6  // 64 B
	maxPoolShift = 20 // 1 MiB
)

var bufPools [maxPoolShift - minPoolShift + 1]sync.Pool

// poolingOff disables the pool (benchmark ablation); zero value = pooling on.
var poolingOff atomic.Bool

// SetPooling enables or disables the global buffer pool and reports the
// previous setting. While disabled, GetBuffer allocates and PutBuffer
// drops — the ablation the net benchmark uses to measure what pooling
// saves. Buffers already pooled stay pooled (and are handed out again
// once re-enabled).
func SetPooling(on bool) (was bool) {
	return !poolingOff.Swap(!on)
}

// GetBuffer returns an empty buffer (len 0) with capacity at least n,
// reusing a pooled one when available. Grow it with append; release it
// with PutBuffer once no other holder remains.
func GetBuffer(n int) []byte {
	if poolingOff.Load() {
		return make([]byte, 0, n)
	}
	if n < 1 {
		n = 1
	}
	shift := bits.Len(uint(n - 1)) // ceil(log2 n)
	if shift < minPoolShift {
		shift = minPoolShift
	}
	if shift > maxPoolShift {
		return make([]byte, 0, n)
	}
	if v := bufPools[shift-minPoolShift].Get(); v != nil {
		return (*v.(*[]byte))[:0]
	}
	return make([]byte, 0, 1<<shift)
}

// PutBuffer recycles a buffer into the pool. The slice is handed over:
// the caller must not read or write it afterwards. Any capacity is
// accepted (the buffer files under the largest class its capacity
// covers); nil, tiny and oversized buffers are dropped.
func PutBuffer(b []byte) {
	c := cap(b)
	if c < 1<<minPoolShift || poolingOff.Load() {
		return
	}
	shift := bits.Len(uint(c)) - 1 // floor(log2 cap): every Get of this class fits
	if shift > maxPoolShift {
		return
	}
	b = b[:0]
	bufPools[shift-minPoolShift].Put(&b)
}

// PooledSender is the optional endpoint capability behind SendPooled: a
// transport that serializes payloads onto a wire implements it to
// recycle the payload into the pool right after the write syscall
// (instead of leaving it to the garbage collector — the receiving
// process has its own pool).
type PooledSender interface {
	// SendPooled is Send for a payload obtained from GetBuffer: the data
	// slice is handed over AND will be recycled by the transport once it
	// is on the wire. The caller must not retain or resend the slice.
	SendPooled(to int, data []byte) error
}

// SendPooled sends a GetBuffer-backed payload on the data lane,
// recycling it as early as its transport allows: a PooledSender backend
// reclaims it after the write syscall; any other backend (the in-memory
// transport) passes it to the receiver, whose consumer is expected to
// PutBuffer it after decoding. Never use this for a slice sent to more
// than one destination — recycling a shared slice corrupts the pool.
func SendPooled(ep Endpoint, to int, data []byte) error {
	if ps, ok := ep.(PooledSender); ok {
		return ps.SendPooled(to, data)
	}
	return ep.Send(to, data)
}
