package comm

import "fmt"

// Collective runs simple synchronizing collectives over the out-of-band
// lane of one endpoint. It is the distributed solver's substitute for
// MPI_Allgather/MPI_Barrier: between runtime rounds, every rank exchanges
// its partial results (flux and lagged-edge contributions) with every
// other rank.
//
// The helper is stateful: because ranks advance through the same global
// sequence of collectives but at different speeds, a fast peer's payload
// for collective k+1 can arrive while this rank is still gathering
// collective k. Pairwise FIFO ordering guarantees per-source payloads
// arrive in collective order, so early arrivals are stashed per source
// and consumed by the next call. One Collective must own an endpoint's
// OOB lane for its lifetime; all ranks must issue the same sequence of
// collective calls.
type Collective struct {
	ep    Endpoint
	n     int
	stash [][][]byte // per-source FIFO of early-arrived payloads
}

// NewCollective wraps an endpoint for collectives over an n-rank world.
func NewCollective(ep Endpoint, n int) *Collective {
	return &Collective{ep: ep, n: n, stash: make([][][]byte, n)}
}

// AllExchange sends payload to every other rank and returns one payload
// per rank (indexed by rank; the local slot aliases the argument). It
// doubles as a barrier: no rank returns before every rank has entered
// the exchange.
func (c *Collective) AllExchange(payload []byte) ([][]byte, error) {
	me := c.ep.Rank()
	out := make([][]byte, c.n)
	got := make([]bool, c.n)
	out[me] = payload
	got[me] = true
	missing := 0
	for r := 0; r < c.n; r++ {
		if r == me {
			continue
		}
		if err := c.ep.SendOOB(r, payload); err != nil {
			return nil, fmt.Errorf("comm: collective send to rank %d: %w", r, err)
		}
		// Consume stashed early arrivals first: FIFO per source keeps
		// payloads aligned with the collective sequence.
		if q := c.stash[r]; len(q) > 0 {
			out[r], got[r] = q[0], true
			q[0] = nil
			c.stash[r] = q[1:]
			continue
		}
		missing++
	}
	for missing > 0 {
		m, err := c.ep.RecvOOB()
		if err != nil {
			return nil, fmt.Errorf("comm: collective recv: %w", err)
		}
		if m.From < 0 || m.From >= c.n {
			return nil, fmt.Errorf("comm: collective message from invalid rank %d", m.From)
		}
		if got[m.From] {
			// A faster peer is already in a later collective; keep its
			// payload for our next call.
			c.stash[m.From] = append(c.stash[m.From], m.Data)
			continue
		}
		out[m.From], got[m.From] = m.Data, true
		missing--
	}
	return out, nil
}

// Barrier blocks until every rank has entered the barrier.
func (c *Collective) Barrier() error {
	_, err := c.AllExchange(nil)
	return err
}
