package comm_test

import (
	"testing"

	"jsweep/internal/comm"
	"jsweep/internal/commtest"
)

func memBackend() commtest.Backend {
	return commtest.Backend{
		Name: "mem",
		New: func(t testing.TB, n int) ([]comm.Endpoint, func() error) {
			tr, err := comm.NewTransport(n)
			if err != nil {
				t.Fatal(err)
			}
			eps := make([]comm.Endpoint, n)
			for r := 0; r < n; r++ {
				eps[r] = tr.Endpoint(r)
			}
			return eps, tr.Close
		},
	}
}

func TestMemConformance(t *testing.T) { commtest.RunConformance(t, memBackend()) }

func TestMemStress(t *testing.T) { commtest.RunStress(t, memBackend()) }
