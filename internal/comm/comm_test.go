package comm

import (
	"sync"
	"testing"
)

func TestSendRecvOrder(t *testing.T) {
	tr, err := NewTransport(2)
	if err != nil {
		t.Fatal(err)
	}
	a, b := tr.Endpoint(0), tr.Endpoint(1)
	for i := byte(0); i < 10; i++ {
		if err := a.Send(1, []byte{i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := byte(0); i < 10; i++ {
		m, ok := b.TryRecv()
		if !ok {
			t.Fatalf("message %d missing", i)
		}
		if m.From != 0 || m.Data[0] != i {
			t.Fatalf("message %d: from=%d data=%v", i, m.From, m.Data)
		}
	}
	if _, ok := b.TryRecv(); ok {
		t.Error("extra message")
	}
}

func TestSendToSelf(t *testing.T) {
	tr, _ := NewTransport(1)
	e := tr.Endpoint(0)
	if err := e.Send(0, []byte{42}); err != nil {
		t.Fatal(err)
	}
	m, ok := e.TryRecv()
	if !ok || m.Data[0] != 42 {
		t.Fatal("self-send failed")
	}
}

func TestSendInvalidRank(t *testing.T) {
	tr, _ := NewTransport(2)
	if err := tr.Endpoint(0).Send(5, nil); err == nil {
		t.Error("send to invalid rank should fail")
	}
	if err := tr.Endpoint(0).Send(-1, nil); err == nil {
		t.Error("send to negative rank should fail")
	}
}

func TestNewTransportValidation(t *testing.T) {
	if _, err := NewTransport(0); err == nil {
		t.Error("zero ranks should fail")
	}
}

func TestCounters(t *testing.T) {
	tr, _ := NewTransport(2)
	a, b := tr.Endpoint(0), tr.Endpoint(1)
	_ = a.Send(1, make([]byte, 100))
	_ = a.Send(1, make([]byte, 50))
	b.TryRecv()
	sent, recv, out, in := a.Counters()
	if sent != 2 || recv != 0 || out != 150 || in != 0 {
		t.Errorf("a counters = %d,%d,%d,%d", sent, recv, out, in)
	}
	sent, recv, out, in = b.Counters()
	if sent != 0 || recv != 1 || out != 0 || in != 100 {
		t.Errorf("b counters = %d,%d,%d,%d", sent, recv, out, in)
	}
	if b.Pending() != 1 {
		t.Errorf("pending = %d, want 1", b.Pending())
	}
}

func TestBlockingRecvOOB(t *testing.T) {
	tr, _ := NewTransport(2)
	a, b := tr.Endpoint(0), tr.Endpoint(1)
	done := make(chan struct{})
	go func() {
		m, err := b.RecvOOB()
		if err != nil || m.Data[0] != 7 {
			t.Errorf("blocking RecvOOB got %v, %v", m, err)
		}
		close(done)
	}()
	_ = a.SendOOB(1, []byte{7})
	<-done
}

func TestNotify(t *testing.T) {
	tr, _ := NewTransport(2)
	a, b := tr.Endpoint(0), tr.Endpoint(1)
	_ = a.Send(1, []byte{1})
	select {
	case <-b.Notify():
	default:
		t.Fatal("notify token missing after send")
	}
	if _, ok := b.TryRecv(); !ok {
		t.Fatal("message missing")
	}
}

// Concurrent stress: N senders × M messages each; receiver must see all,
// with per-sender FIFO order preserved.
func TestConcurrentStress(t *testing.T) {
	const senders, msgs = 8, 500
	tr, _ := NewTransport(senders + 1)
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			e := tr.Endpoint(rank)
			for i := 0; i < msgs; i++ {
				buf := []byte{byte(rank), byte(i), byte(i >> 8)}
				if err := e.Send(senders, buf); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	recvDone := make(chan map[int]int)
	go func() {
		e := tr.Endpoint(senders)
		lastSeen := make(map[int]int)
		for n := 0; n < senders*msgs; n++ {
			var m Message
			for {
				var ok bool
				if m, ok = e.TryRecv(); ok {
					break
				}
				<-e.Notify()
			}
			id := int(m.Data[1]) | int(m.Data[2])<<8
			if last, ok := lastSeen[m.From]; ok && id != last+1 {
				t.Errorf("sender %d: got %d after %d (order broken)", m.From, id, last)
			}
			lastSeen[m.From] = id
		}
		recvDone <- lastSeen
	}()
	wg.Wait()
	seen := <-recvDone
	for s := 0; s < senders; s++ {
		if seen[s] != msgs-1 {
			t.Errorf("sender %d: last id %d, want %d", s, seen[s], msgs-1)
		}
	}
}
