// Package registry is the string-keyed catalog of buildable transport
// problems: each entry deterministically constructs one named problem
// family (mesh + materials + quadrature + patch decomposition) from a
// small parameter record. It is the single source the spec builder
// (internal/nodespec) and every CLI (cmd/jsweep-run, cmd/jsweep-node,
// cmd/jsweep-bench) consume, so adding a mesh family means one Register
// call instead of a switch arm per binary.
//
// Builders must be deterministic: every rank of a multi-process cluster
// rebuilds the problem independently from the same Params and relies on
// getting bitwise identical meshes, materials and patch placement.
package registry

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"jsweep/internal/geom"
	"jsweep/internal/kobayashi"
	"jsweep/internal/mesh"
	"jsweep/internal/meshgen"
	"jsweep/internal/partition"
	"jsweep/internal/quadrature"
	"jsweep/internal/transport"
)

// Params carries the mesh/problem-construction knobs of a job spec.
// Zero fields take the builder defaults (the same defaults
// nodespec.Spec applies), so a Params{} builds every family's smallest
// canonical instance.
type Params struct {
	// N is the structured cells-per-axis (kobayashi).
	N int
	// Cells is the approximate tet count (unstructured families).
	Cells int
	// SnOrder is the quadrature order.
	SnOrder int
	// Groups is the energy group count (non-kobayashi).
	Groups int
	// Scatter enables scattering (kobayashi).
	Scatter bool
	// Patch is the cells-per-patch target (unstructured families).
	Patch int
}

// withDefaults fills unset fields with the shared spec defaults.
func (p Params) withDefaults() Params {
	if p.N == 0 {
		p.N = 16
	}
	if p.Cells == 0 {
		p.Cells = 2000
	}
	if p.SnOrder == 0 {
		p.SnOrder = 4
	}
	if p.Groups == 0 {
		p.Groups = 1
	}
	if p.Patch == 0 {
		p.Patch = 500
	}
	return p
}

// Builder deterministically constructs one named problem family.
type Builder struct {
	// Name keys the builder ("kobayashi", "ball", ...).
	Name string
	// Doc is a one-line description for CLI usage strings.
	Doc string
	// Build constructs the problem and its patch decomposition.
	Build func(p Params) (*transport.Problem, *mesh.Decomposition, error)
}

var (
	mu       sync.RWMutex
	builders = make(map[string]Builder)
)

// Register adds a builder to the catalog. It panics on an empty name or
// a duplicate registration — both are programming errors at init time.
func Register(b Builder) {
	if b.Name == "" || b.Build == nil {
		panic("registry: builder needs a name and a Build func")
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := builders[b.Name]; dup {
		panic(fmt.Sprintf("registry: duplicate builder %q", b.Name))
	}
	builders[b.Name] = b
}

// Lookup returns the builder registered under name.
func Lookup(name string) (Builder, bool) {
	mu.RLock()
	defer mu.RUnlock()
	b, ok := builders[name]
	return b, ok
}

// Names returns every registered mesh name, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	names := make([]string, 0, len(builders))
	for n := range builders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Usage returns the "a | b | c" list of registered names for CLI flag
// help.
func Usage() string { return strings.Join(Names(), " | ") }

// Build looks name up and constructs its problem, with an error that
// lists the known families when the name is unknown.
func Build(name string, p Params) (*transport.Problem, *mesh.Decomposition, error) {
	b, ok := Lookup(name)
	if !ok {
		return nil, nil, fmt.Errorf("registry: unknown mesh kind %q (have %s)", name, Usage())
	}
	return b.Build(p.withDefaults())
}

// The built-in families. Each arm used to live in a per-CLI switch; a
// new family now registers here once and every consumer sees it.
func init() {
	Register(Builder{
		Name: "kobayashi",
		Doc:  "Kobayashi problem-1 structured benchmark (source corner, void duct, shield)",
		Build: func(p Params) (*transport.Problem, *mesh.Decomposition, error) {
			prob, m, err := kobayashi.Build(kobayashi.Spec{
				N: p.N, SnOrder: p.SnOrder, Scattering: p.Scatter, Scheme: transport.Diamond,
			})
			if err != nil {
				return nil, nil, err
			}
			b := p.N / 4
			if b < 1 {
				b = 1
			}
			d, err := m.BlockDecompose(b, b, b)
			if err != nil {
				return nil, nil, err
			}
			return prob, d, nil
		},
	})
	Register(Builder{
		Name: "ball",
		Doc:  "tetrahedral ball, uniform material, greedy-graph patches",
		Build: unstructured(func(p Params) (*mesh.Unstructured, error) {
			return meshgen.BallWithCells(p.Cells, 10.0)
		}, false),
	})
	Register(Builder{
		Name: "reactor",
		Doc:  "reactor-core-like cylindrical tet mesh, uniform material",
		Build: unstructured(func(p Params) (*mesh.Unstructured, error) {
			return meshgen.ReactorWithCells(p.Cells, 1.0, 1.5)
		}, false),
	})
	Register(Builder{
		Name: "cyclic",
		Doc:  "twisted-ring stack with cyclic sweep graphs (feedback-edge flux lagging)",
		Build: unstructured(func(p Params) (*mesh.Unstructured, error) {
			return meshgen.CyclicStackWithCells(p.Cells)
		}, true),
	})
}

// unstructured wraps a tet-mesh generator into a full problem builder:
// uniform material, Sn quadrature, and either azimuthal-arc patches
// (cyclic ring meshes — cycles must cross patch boundaries) or
// greedy-graph patches.
func unstructured(gen func(Params) (*mesh.Unstructured, error), azimuthal bool) func(Params) (*transport.Problem, *mesh.Decomposition, error) {
	return func(p Params) (*transport.Problem, *mesh.Decomposition, error) {
		m, err := gen(p)
		if err != nil {
			return nil, nil, err
		}
		m.SetMaterialFunc(func(geom.Vec3) int { return 0 })
		quad, err := quadrature.New(p.SnOrder)
		if err != nil {
			return nil, nil, err
		}
		prob := UniformProblem(m, quad, p.Groups)
		var d *mesh.Decomposition
		if azimuthal {
			np := m.NumCells() / p.Patch
			if np < 2 {
				np = 2
			}
			d, err = meshgen.AzimuthalBlocks(m, np)
		} else {
			d, err = partition.ByPatchSize(m, p.Patch, partition.GreedyGraph)
		}
		if err != nil {
			return nil, nil, err
		}
		return prob, d, nil
	}
}

// UniformProblem builds the uniform-material multigroup problem the
// unstructured families solve.
func UniformProblem(m mesh.Mesh, quad *quadrature.Set, groups int) *transport.Problem {
	sigT := make([]float64, groups)
	src := make([]float64, groups)
	scat := make([][]float64, groups)
	for g := 0; g < groups; g++ {
		sigT[g] = 0.4 + 0.2*float64(g)
		scat[g] = make([]float64, groups)
		scat[g][g] = 0.1
		if g+1 < groups {
			scat[g][g+1] = 0.05
		}
	}
	src[0] = 1.0
	return &transport.Problem{
		M:      m,
		Mats:   []transport.Material{{Name: "uniform", SigmaT: sigT, SigmaS: scat, Source: src}},
		Quad:   quad,
		Groups: groups,
		Scheme: transport.Step,
	}
}
