package simcluster

import "fmt"

// SimulateBSP models the same workload executed the pre-JSweep way
// (paper §II-B, §VI-D): data-driven within a patch, but bulk-synchronous
// across patches — every round, each process computes all chunks that are
// ready with the data received up to the previous barrier, then a global
// barrier exchanges every produced stream. Per round the machine waits for
// the slowest process (compute) and the slowest exchange — the idle time
// the asynchronous runtime eliminates. This is the "JASMIN"/"JAUMIN"
// comparator of Fig. 17.
func SimulateBSP(w *Workload, cfg Config, cm CostModel) (*Result, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("simcluster: need >= 1 worker (got %d)", cfg.Workers)
	}
	if cfg.Grain < 1 {
		cfg.Grain = 1
	}
	np := len(w.PatchCells)
	na := len(w.AngleOctant)
	numProgs := np * na

	chunksOf := make([]int32, numProgs)
	offset := make([]int64, numProgs+1)
	var totalChunks int64
	for i := 0; i < numProgs; i++ {
		p := i % np
		ch := (w.PatchCells[p] + cfg.Grain - 1) / cfg.Grain
		if ch < 1 {
			ch = 1
		}
		chunksOf[i] = int32(ch)
		offset[i+1] = offset[i] + ch
		totalChunks += ch
	}
	deps := make([]int32, totalChunks)
	for i := 0; i < numProgs; i++ {
		for c := int32(1); c < chunksOf[i]; c++ {
			deps[offset[i]+int64(c)]++
		}
	}
	slack := int32(cm.PipelineSlack)
	targetChunk := func(j, cu, cv int32) int32 {
		t := int32(int64(j)*int64(cv)/int64(cu)) - slack
		if t >= cv {
			t = cv - 1
		}
		if t < 0 {
			t = 0
		}
		return t
	}
	for a := 0; a < na; a++ {
		dag := w.Octants[w.AngleOctant[a]]
		for p := 0; p < np; p++ {
			u := int32(a*np + p)
			cu := chunksOf[u]
			for _, q := range dag.Succ[p] {
				v := int32(a*np + int(q))
				for j := int32(0); j < cu; j++ {
					deps[offset[v]+int64(targetChunk(j, cu, chunksOf[v]))]++
				}
			}
		}
	}

	chunkCells := func(prog, chunk int32) int64 {
		p := int(prog) % np
		cells := w.PatchCells[p]
		full := cells / cfg.Grain
		if int64(chunk) < full {
			return cfg.Grain
		}
		rem := cells - full*cfg.Grain
		if rem == 0 {
			return cfg.Grain
		}
		return rem
	}

	type pendingDelivery struct {
		prog  int32
		chunk int32
	}
	ready := make([][]struct {
		prog  int32
		chunk int32
	}, w.Procs)
	for i := 0; i < numProgs; i++ {
		if deps[offset[i]] == 0 {
			r := w.Owner[i%np]
			ready[r] = append(ready[r], struct {
				prog  int32
				chunk int32
			}{int32(i), 0})
		}
	}

	res := &Result{}
	var done int64
	rounds := 0
	for done < totalChunks {
		anyWork := false
		var roundCompute float64
		procComm := make([]float64, w.Procs)
		var deliveries []pendingDelivery
		for r := 0; r < w.Procs; r++ {
			var busy, maxChunk float64
			for _, task := range ready[r] {
				anyWork = true
				cells := chunkCells(task.prog, task.chunk)
				kernel := float64(cells) * float64(w.Groups) * cm.TCell
				graphOp := float64(cells)*cm.TGraphOpCell + cm.TScheduleFixed
				res.Kernel += kernel
				res.GraphOp += graphOp
				busy += kernel + graphOp
				if kernel+graphOp > maxChunk {
					maxChunk = kernel + graphOp
				}
				res.Chunks++
				done++
				// Next chunk of the same program becomes a candidate for
				// the next round.
				if task.chunk+1 < chunksOf[task.prog] {
					idx := offset[task.prog] + int64(task.chunk) + 1
					deps[idx]--
					if deps[idx] == 0 {
						deliveries = append(deliveries, pendingDelivery{task.prog, task.chunk + 1})
					}
				}
				// Streams exchanged at the barrier.
				a := int(task.prog) / np
				p := int(task.prog) % np
				dag := w.Octants[w.AngleOctant[a]]
				for si, q := range dag.Succ[p] {
					v := int32(a*np + int(q))
					tc := targetChunk(task.chunk, chunksOf[task.prog], chunksOf[v])
					faces := float64(dag.Weight[p][si]) * w.FacesPerEdgeScale / float64(chunksOf[task.prog])
					bytes := cm.StreamHeaderBytes + faces*cm.BytesPerFaceGroup
					res.Streams++
					res.Bytes += int64(bytes)
					cost := cm.TRoutePerStream + bytes*cm.TPackPerByte
					if w.Owner[q] != r {
						cost += bytes*cm.TPackPerByte + bytes*cm.InvBandwidth + cm.TRoutePerStream
						res.RemoteStreams++
						res.Pack += bytes * cm.TPackPerByte
						res.Unpack += bytes * cm.TPackPerByte
					} else {
						res.LocalStreams++
					}
					res.Route += cm.TRoutePerStream
					procComm[r] += cost
					idx := offset[v] + int64(tc)
					deps[idx]--
					if deps[idx] == 0 {
						deliveries = append(deliveries, pendingDelivery{v, tc})
					}
				}
			}
			ready[r] = ready[r][:0]
			// Graham's list-scheduling bound: chunks are indivisible, so a
			// round cannot pack work fractionally across workers.
			perProc := 0.0
			if busy > 0 {
				perProc = busy/float64(cfg.Workers) + maxChunk*float64(cfg.Workers-1)/float64(cfg.Workers)
			}
			if perProc > roundCompute {
				roundCompute = perProc
			}
		}
		if !anyWork && done < totalChunks {
			return nil, fmt.Errorf("simcluster: BSP stalled after %d rounds with %d of %d chunks done", rounds, done, totalChunks)
		}
		var roundComm float64
		for _, c := range procComm {
			if c > roundComm {
				roundComm = c
			}
		}
		// Barrier cost: a log-tree allreduce of latency hops.
		barrier := cm.Latency * log2ceil(w.Procs)
		res.Makespan += roundCompute + roundComm + barrier
		for _, d := range deliveries {
			r := w.Owner[int(d.prog)%np]
			ready[r] = append(ready[r], struct {
				prog  int32
				chunk int32
			}{d.prog, d.chunk})
		}
		rounds++
		res.Events = int64(rounds)
	}
	// Idle: every round every core waits for the global maximum.
	res.WorkerIdle = res.Makespan*float64(w.Procs*cfg.Workers) - (res.Kernel + res.GraphOp)
	res.MasterIdle = res.Makespan*float64(w.Procs) - (res.Route + res.Pack + res.Unpack)
	return res, nil
}

func log2ceil(n int) float64 {
	c := 0.0
	v := 1
	for v < n {
		v <<= 1
		c++
	}
	if c == 0 {
		c = 1
	}
	return c
}
