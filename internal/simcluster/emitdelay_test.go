package simcluster

import (
	"testing"
	"testing/quick"

	"jsweep/internal/graph"
)

// EmitDelay (the vertex-priority model knob): later boundary emission can
// only slow the sweep down, and the effect is monotone at the extremes.
func TestEmitDelayMonotone(t *testing.T) {
	cm := DefaultCostModel(1)
	w := structuredW(t, 6, 4000, 16, 8)
	times := map[float64]float64{}
	for _, d := range []float64{0, 0.5, 1} {
		res, err := Simulate(w, Config{Workers: 11, Grain: 500, EmitDelay: d}, cm)
		if err != nil {
			t.Fatal(err)
		}
		times[d] = res.Makespan
	}
	if !(times[0] <= times[0.5] && times[0.5] <= times[1]) {
		t.Errorf("emit delay not monotone: %v", times)
	}
	if times[1] <= times[0] {
		t.Errorf("full delay (%v) should be strictly slower than eager emission (%v)", times[1], times[0])
	}
}

// EmitDelay values outside [0,1] are clamped rather than crashing.
func TestEmitDelayClamped(t *testing.T) {
	cm := DefaultCostModel(1)
	w := structuredW(t, 3, 500, 4, 8)
	for _, d := range []float64{-2, 5} {
		if _, err := Simulate(w, Config{Workers: 4, Grain: 100, EmitDelay: d}, cm); err != nil {
			t.Errorf("delay %v: %v", d, err)
		}
	}
}

// The work done (chunks, kernel time) is invariant under EmitDelay —
// only the schedule changes.
func TestEmitDelayWorkInvariant(t *testing.T) {
	cm := DefaultCostModel(1)
	w := structuredW(t, 4, 1000, 8, 8)
	var chunks []int64
	var kernel []float64
	for _, d := range []float64{0, 0.7} {
		res, err := Simulate(w, Config{Workers: 4, Grain: 250, EmitDelay: d}, cm)
		if err != nil {
			t.Fatal(err)
		}
		chunks = append(chunks, res.Chunks)
		kernel = append(kernel, res.Kernel)
	}
	if chunks[0] != chunks[1] || kernel[0] != kernel[1] {
		t.Errorf("work changed with emit delay: chunks %v kernel %v", chunks, kernel)
	}
}

// Pipeline slack monotonically lengthens the makespan.
func TestPipelineSlackMonotone(t *testing.T) {
	cmBase := DefaultCostModel(1)
	w := structuredW(t, 6, 4000, 32, 8)
	var prev float64
	for i, slack := range []int{0, 2, 4} {
		cm := cmBase
		cm.PipelineSlack = slack
		res, err := Simulate(w, Config{Workers: 11, Grain: 500}, cm)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res.Makespan < prev {
			t.Errorf("slack %d makespan %v below smaller slack's %v", slack, res.Makespan, prev)
		}
		prev = res.Makespan
	}
}

// Property: AcyclifyDAG always leaves an acyclic graph, for random sparse
// digraphs.
func TestAcyclifyProperty(t *testing.T) {
	f := func(seed uint32) bool {
		n := 4 + int(seed%12)
		dag := &graph.PatchDAG{
			N:      n,
			Succ:   make([][]int32, n),
			Weight: make([][]int32, n),
			InDeg:  make([]int32, n),
		}
		// Deterministic pseudo-random edges from the seed (LCG).
		s := uint64(seed)*2862933555777941757 + 3037000493
		for i := 0; i < 2*n; i++ {
			s = s*2862933555777941757 + 3037000493
			from := int32(s % uint64(n))
			s = s*2862933555777941757 + 3037000493
			to := int32(s % uint64(n))
			if from == to {
				continue
			}
			dag.Succ[from] = append(dag.Succ[from], to)
			dag.Weight[from] = append(dag.Weight[from], 1)
			dag.InDeg[to]++
		}
		AcyclifyDAG(dag)
		return dag.IsAcyclic()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
