package simcluster

import "testing"

func aggBase(t *testing.T) (*Workload, Config, CostModel) {
	t.Helper()
	w := structuredW(t, 4, 4000, 8, 8)
	cfg := Config{Workers: 4, Grain: 500}
	return w, cfg, DefaultCostModel(1)
}

func TestSimulateAggregationInvariants(t *testing.T) {
	w, cfg, cm := aggBase(t)
	off, err := Simulate(w, cfg, cm)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Aggregation = Aggregation{Enabled: true}
	on, err := Simulate(w, cfg, cm)
	if err != nil {
		t.Fatal(err)
	}
	// Aggregation changes message count, never the task system: the same
	// streams flow, every chunk still executes, kernel work is identical.
	if on.RemoteStreams != off.RemoteStreams {
		t.Errorf("RemoteStreams: agg on %d vs off %d", on.RemoteStreams, off.RemoteStreams)
	}
	if on.Streams != off.Streams || on.Chunks != off.Chunks {
		t.Errorf("streams/chunks changed: on=%d/%d off=%d/%d", on.Streams, on.Chunks, off.Streams, off.Chunks)
	}
	if on.Kernel != off.Kernel {
		t.Errorf("kernel work changed: %v vs %v", on.Kernel, off.Kernel)
	}
	if off.BatchesSent != 0 {
		t.Errorf("BatchesSent = %d with aggregation off", off.BatchesSent)
	}
	if on.BatchesSent == 0 || on.BatchesSent >= on.RemoteStreams {
		t.Errorf("BatchesSent = %d, want in (0, %d)", on.BatchesSent, on.RemoteStreams)
	}
	if on.StreamsPerBatch <= 1 {
		t.Errorf("StreamsPerBatch = %v, want > 1", on.StreamsPerBatch)
	}
}

func TestSimulateAggregationBatchSizeSweep(t *testing.T) {
	w, cfg, cm := aggBase(t)
	var prevBatches int64 = -1
	for _, maxStreams := range []int{1, 4, 16, 64} {
		cfg.Aggregation = Aggregation{Enabled: true, MaxBatchStreams: maxStreams, FlushDelay: 1}
		res, err := Simulate(w, cfg, cm)
		if err != nil {
			t.Fatal(err)
		}
		// With an effectively infinite deadline, larger caps mean fewer,
		// fuller batches (monotone non-increasing).
		if prevBatches >= 0 && res.BatchesSent > prevBatches {
			t.Errorf("maxStreams=%d: batches grew %d -> %d", maxStreams, prevBatches, res.BatchesSent)
		}
		prevBatches = res.BatchesSent
		if maxStreams == 1 && res.BatchesSent != res.RemoteStreams {
			t.Errorf("maxStreams=1: batches %d != remote streams %d", res.BatchesSent, res.RemoteStreams)
		}
	}
}

func TestSimulateAggregationDeadlineFlush(t *testing.T) {
	w, cfg, cm := aggBase(t)
	// Batches that can never fill: every flush must be deadline-driven,
	// and the simulation must still drain completely.
	cfg.Aggregation = Aggregation{Enabled: true, MaxBatchStreams: 1 << 30, MaxBatchBytes: 1e18}
	res, err := Simulate(w, cfg, cm)
	if err != nil {
		t.Fatal(err)
	}
	if res.BatchesSent == 0 || res.FlushOnDeadline != res.BatchesSent {
		t.Errorf("batches=%d deadline-flushed=%d, want all deadline-flushed", res.BatchesSent, res.FlushOnDeadline)
	}
}

func TestSimulateAggregationReducesMakespanUnderMessageCost(t *testing.T) {
	// Communication-bound: small patches, fine chunks, expensive messages
	// — the masters' per-message cost dominates, so batching must win.
	w := structuredW(t, 4, 500, 8, 8)
	cfg := Config{Workers: 4, Grain: 100}
	cm := DefaultCostModel(1)
	cm.TMsgFixed = 50e-6
	off, err := Simulate(w, cfg, cm)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Aggregation = Aggregation{Enabled: true}
	on, err := Simulate(w, cfg, cm)
	if err != nil {
		t.Fatal(err)
	}
	if on.Makespan >= off.Makespan {
		t.Errorf("aggregation did not help on a latency-bound network: on=%v off=%v", on.Makespan, off.Makespan)
	}
}
