package simcluster

import (
	"fmt"
	"math"

	"jsweep/internal/geom"
	"jsweep/internal/graph"
	"jsweep/internal/mesh"
	"jsweep/internal/partition"
)

// octantSigns lists the 8 sweep octant sign patterns (bit0 = −x, bit1 =
// −y, bit2 = −z), matching quadrature.Direction.Octant.
var octantSigns = [8][3]int{
	{1, 1, 1}, {-1, 1, 1}, {1, -1, 1}, {-1, -1, 1},
	{1, 1, -1}, {-1, 1, -1}, {1, -1, -1}, {-1, -1, -1},
}

// StructuredWorkload builds the simulated task system of a structured
// sweep: a bx×by×bz lattice of patches with cellsPerPatch cells each, the
// 8 octant lattice DAGs, and SFC-ordered contiguous placement on procs.
// Edge weights are the patch interface face counts.
func StructuredWorkload(bx, by, bz int, cellsPerPatch int64, procs, angles, groups int) (*Workload, error) {
	if bx < 1 || by < 1 || bz < 1 || cellsPerPatch < 1 {
		return nil, fmt.Errorf("simcluster: bad structured workload %dx%dx%d × %d cells", bx, by, bz, cellsPerPatch)
	}
	np := bx * by * bz
	if procs < 1 {
		procs = 1
	}
	if procs > np {
		procs = np
	}
	side := math.Cbrt(float64(cellsPerPatch))
	faces := int32(math.Max(1, math.Round(side*side)))
	w := &Workload{
		PatchCells:        make([]int64, np),
		Owner:             make([]int, np),
		Octants:           make([]*graph.PatchDAG, 8),
		AngleOctant:       make([]int, angles),
		FacesPerEdgeScale: 1,
		Groups:            groups,
		Procs:             procs,
	}
	for p := range w.PatchCells {
		w.PatchCells[p] = cellsPerPatch
	}
	id := func(i, j, k int) int32 { return int32(i + bx*(j+by*k)) }
	for o := 0; o < 8; o++ {
		s := octantSigns[o]
		dag := &graph.PatchDAG{
			N:      np,
			Succ:   make([][]int32, np),
			Weight: make([][]int32, np),
			InDeg:  make([]int32, np),
		}
		add := func(from, to int32) {
			dag.Succ[from] = append(dag.Succ[from], to)
			dag.Weight[from] = append(dag.Weight[from], faces)
			dag.InDeg[to]++
		}
		for k := 0; k < bz; k++ {
			for j := 0; j < by; j++ {
				for i := 0; i < bx; i++ {
					from := id(i, j, k)
					if ni := i + s[0]; ni >= 0 && ni < bx {
						add(from, id(ni, j, k))
					}
					if nj := j + s[1]; nj >= 0 && nj < by {
						add(from, id(i, nj, k))
					}
					if nk := k + s[2]; nk >= 0 && nk < bz {
						add(from, id(i, j, nk))
					}
				}
			}
		}
		w.Octants[o] = dag
	}
	for a := 0; a < angles; a++ {
		w.AngleOctant[a] = a % 8
	}
	// SFC placement: contiguous runs of the Morton order per rank.
	order := partition.OrderBlocks(partition.Morton, bx, by, bz)
	for r, blockID := range order {
		w.Owner[blockID] = r * procs / np
	}
	return w, nil
}

// UnstructuredWorkload builds the simulated task system of an unstructured
// sweep from a patch-granular coarse mesh: every coarse cell stands for
// one patch of cellsPerPatch real cells (DESIGN.md: large unstructured
// meshes are synthesized at patch granularity). Per-octant DAGs follow the
// octant diagonal directions and are acyclified (back edges from zig-zag
// decompositions dropped; see AcyclifyDAG).
func UnstructuredWorkload(m mesh.Mesh, cellsPerPatch int64, procs, angles, groups int) (*Workload, error) {
	np := m.NumCells()
	if np == 0 {
		return nil, fmt.Errorf("simcluster: empty coarse mesh")
	}
	if procs < 1 {
		procs = 1
	}
	if procs > np {
		procs = np
	}
	// Trivial decomposition: one coarse cell per patch.
	assign := make([]mesh.PatchID, np)
	for c := range assign {
		assign[c] = mesh.PatchID(c)
	}
	d, err := mesh.NewDecomposition(m, assign, np)
	if err != nil {
		return nil, err
	}
	w := &Workload{
		PatchCells:  make([]int64, np),
		Owner:       make([]int, np),
		Octants:     make([]*graph.PatchDAG, 8),
		AngleOctant: make([]int, angles),
		// A patch of n cells has ≈ n^(2/3) boundary faces per side; a
		// coarse edge weight counts coarse faces (≈1), so scale.
		FacesPerEdgeScale: math.Max(1, math.Pow(float64(cellsPerPatch), 2.0/3.0)/4),
		Groups:            groups,
		Procs:             procs,
	}
	for p := range w.PatchCells {
		w.PatchCells[p] = cellsPerPatch
	}
	inv := 1 / math.Sqrt(3)
	for o := 0; o < 8; o++ {
		s := octantSigns[o]
		omega := geom.Vec3{X: float64(s[0]) * inv, Y: float64(s[1]) * inv, Z: float64(s[2]) * inv}
		dag := graph.BuildPatchDAG(d, omega)
		AcyclifyDAG(dag)
		w.Octants[o] = dag
	}
	for a := 0; a < angles; a++ {
		w.AngleOctant[a] = a % 8
	}
	// Spatially contiguous placement via RCB over the coarse mesh.
	if procs == 1 {
		return w, nil
	}
	pd, err := partition.ByCount(m, procs, partition.RCB)
	if err != nil {
		return nil, err
	}
	for c := 0; c < np; c++ {
		w.Owner[c] = int(pd.CellPatch[c])
	}
	return w, nil
}

// AcyclifyDAG removes back edges (edges closing a cycle) from a patch DAG
// in place and returns how many were dropped. Patch-level cycles appear
// when irregular decompositions zig-zag against the sweep direction
// (paper Fig. 4); the real runtime resolves them by partial computation,
// which at patch granularity is equivalent to ignoring the short back
// dependency. Uses an iterative DFS with tricolor marking.
func AcyclifyDAG(dag *graph.PatchDAG) int {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int8, dag.N)
	dropped := 0
	type frame struct {
		node int32
		next int
	}
	var stack []frame
	for start := 0; start < dag.N; start++ {
		if color[start] != white {
			continue
		}
		stack = append(stack[:0], frame{node: int32(start)})
		color[start] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			succ := dag.Succ[f.node]
			advanced := false
			for f.next < len(succ) {
				q := succ[f.next]
				if color[q] == gray {
					// Back edge: drop it.
					w := dag.Weight[f.node]
					succ[f.next] = succ[len(succ)-1]
					w[f.next] = w[len(w)-1]
					dag.Succ[f.node] = succ[:len(succ)-1]
					dag.Weight[f.node] = w[:len(w)-1]
					succ = dag.Succ[f.node]
					dag.InDeg[q]--
					dropped++
					continue
				}
				f.next++
				if color[q] == white {
					color[q] = gray
					stack = append(stack, frame{node: q})
					advanced = true
					break
				}
			}
			if !advanced && f.next >= len(dag.Succ[f.node]) {
				color[f.node] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return dropped
}
