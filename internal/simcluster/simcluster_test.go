package simcluster

import (
	"math"
	"testing"

	"jsweep/internal/graph"
	"jsweep/internal/meshgen"
	"jsweep/internal/priority"
)

func structuredW(t *testing.T, b int, cells int64, procs, angles int) *Workload {
	t.Helper()
	w, err := StructuredWorkload(b, b, b, cells, procs, angles, 1)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestStructuredWorkloadShape(t *testing.T) {
	w := structuredW(t, 4, 1000, 8, 16)
	if len(w.PatchCells) != 64 {
		t.Fatalf("patches = %d", len(w.PatchCells))
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	// Octant 0 (+++) has 3·b²·(b−1) edges.
	edges := 0
	for p := 0; p < w.Octants[0].N; p++ {
		edges += len(w.Octants[0].Succ[p])
	}
	if edges != 3*16*3 {
		t.Errorf("octant edges = %d, want 144", edges)
	}
	// All ranks used, contiguous counts.
	counts := map[int]int{}
	for _, r := range w.Owner {
		counts[r]++
	}
	if len(counts) != 8 {
		t.Errorf("ranks used = %d, want 8", len(counts))
	}
	for r, n := range counts {
		if n != 8 {
			t.Errorf("rank %d owns %d patches, want 8", r, n)
		}
	}
}

func TestStructuredWorkloadOctantsAcyclic(t *testing.T) {
	w := structuredW(t, 3, 500, 4, 8)
	for o, dag := range w.Octants {
		if !dag.IsAcyclic() {
			t.Errorf("octant %d cyclic", o)
		}
	}
}

func TestUnstructuredWorkload(t *testing.T) {
	m, err := meshgen.Ball(6, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	w, err := UnstructuredWorkload(m, 500, 4, 24, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(w.PatchCells) != m.NumCells() {
		t.Errorf("patches = %d, want %d", len(w.PatchCells), m.NumCells())
	}
	if w.Groups != 4 {
		t.Errorf("groups = %d", w.Groups)
	}
}

func TestAcyclifyDAG(t *testing.T) {
	// 3-cycle plus a tail.
	dag := &graph.PatchDAG{
		N:      4,
		Succ:   [][]int32{{1}, {2}, {0, 3}, {}},
		Weight: [][]int32{{1}, {1}, {1, 1}, {}},
		InDeg:  []int32{1, 1, 1, 1},
	}
	if dag.IsAcyclic() {
		t.Fatal("fixture should be cyclic")
	}
	dropped := AcyclifyDAG(dag)
	if dropped != 1 {
		t.Errorf("dropped = %d, want 1", dropped)
	}
	if !dag.IsAcyclic() {
		t.Error("still cyclic after acyclify")
	}
	if AcyclifyDAG(dag) != 0 {
		t.Error("second pass should drop nothing")
	}
}

func defaultCfg(workers int, grain int64) Config {
	return Config{Workers: workers, Grain: grain}
}

func TestSimulateKernelConservation(t *testing.T) {
	w := structuredW(t, 4, 1000, 8, 16)
	cm := DefaultCostModel(1)
	res, err := Simulate(w, defaultCfg(4, 250), cm)
	if err != nil {
		t.Fatal(err)
	}
	wantKernel := float64(64*1000*16) * cm.TCell
	if math.Abs(res.Kernel-wantKernel)/wantKernel > 1e-9 {
		t.Errorf("kernel core-seconds = %v, want %v", res.Kernel, wantKernel)
	}
	// 1000 cells at grain 250 → 4 chunks per program.
	if res.Chunks != 64*16*4 {
		t.Errorf("chunks = %d, want %d", res.Chunks, 64*16*4)
	}
	if res.Makespan <= 0 {
		t.Error("zero makespan")
	}
}

func TestSimulateSerialBaseline(t *testing.T) {
	// One proc, one worker, one chunk per program: makespan ≈ total
	// compute + scheduling (master routing overlaps the worker).
	w := structuredW(t, 2, 100, 1, 8)
	cm := DefaultCostModel(1)
	res, err := Simulate(w, defaultCfg(1, 1000), cm)
	if err != nil {
		t.Fatal(err)
	}
	compute := res.Kernel + res.GraphOp
	if res.Makespan < compute {
		t.Errorf("makespan %v below pure compute %v", res.Makespan, compute)
	}
	if res.Makespan > compute*1.5 {
		t.Errorf("makespan %v way above compute %v — serial run should be compute-bound", res.Makespan, compute)
	}
	if res.RemoteStreams != 0 {
		t.Errorf("remote streams on 1 proc = %d", res.RemoteStreams)
	}
}

func TestSimulateStrongScaling(t *testing.T) {
	cm := DefaultCostModel(1)
	var prev float64
	var base float64
	for i, procs := range []int{1, 2, 8, 32} {
		w := structuredW(t, 8, 8000, procs, 16)
		res, err := Simulate(w, defaultCfg(11, 1000), cm)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			base = res.Makespan
		} else if res.Makespan >= prev {
			t.Errorf("procs=%d: makespan %v did not improve on %v", procs, res.Makespan, prev)
		}
		prev = res.Makespan
	}
	// Speedup at 32 procs exists but is below ideal.
	speedup := base / prev
	if speedup < 4 || speedup > 32 {
		t.Errorf("32-proc speedup = %v, want within (4, 32)", speedup)
	}
}

// The §V-C grain trade-off: very small grains pay scheduling/messaging,
// very large grains lose pipelining — mid grains win (Fig. 9a's U-shape).
func TestSimulateGrainUShape(t *testing.T) {
	cm := DefaultCostModel(1)
	times := map[int64]float64{}
	for _, grain := range []int64{1, 128, 1 << 20} {
		w := structuredW(t, 4, 1000, 8, 8)
		res, err := Simulate(w, defaultCfg(11, grain), cm)
		if err != nil {
			t.Fatal(err)
		}
		times[grain] = res.Makespan
	}
	if !(times[128] < times[1]) {
		t.Errorf("grain 128 (%v) should beat grain 1 (%v)", times[128], times[1])
	}
	if !(times[128] < times[1<<20]) {
		t.Errorf("grain 128 (%v) should beat unbounded grain (%v)", times[128], times[1<<20])
	}
}

func TestSimulateDeterminism(t *testing.T) {
	cm := DefaultCostModel(1)
	w := structuredW(t, 4, 1000, 4, 8)
	a, err := Simulate(w, defaultCfg(4, 200), cm)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(w, defaultCfg(4, 200), cm)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.Events != b.Events {
		t.Errorf("simulation not deterministic: %v vs %v", a.Makespan, b.Makespan)
	}
}

func TestSimulateBreakdownAccounting(t *testing.T) {
	cm := DefaultCostModel(1)
	w := structuredW(t, 4, 1000, 8, 8)
	cfg := defaultCfg(4, 250)
	res, err := Simulate(w, cfg, cm)
	if err != nil {
		t.Fatal(err)
	}
	workerTotal := res.Makespan * float64(w.Procs*cfg.Workers)
	if diff := math.Abs(workerTotal - (res.Kernel + res.GraphOp + res.WorkerIdle)); diff/workerTotal > 1e-9 {
		t.Errorf("worker accounting off by %v", diff)
	}
	masterTotal := res.Makespan * float64(w.Procs)
	busy := res.Route + res.Pack + res.Unpack
	if diff := math.Abs(masterTotal - (busy + res.MasterIdle)); diff/masterTotal > 1e-9 {
		t.Errorf("master accounting off by %v", diff)
	}
	if res.WorkerIdle < 0 || res.MasterIdle < 0 {
		t.Errorf("negative idle: %v %v", res.WorkerIdle, res.MasterIdle)
	}
}

// Priorities must be honored: with angle-major priority the simulation
// completes angles roughly in order, which on a bandwidth-starved machine
// beats inverted priorities. At minimum, configurations must differ when
// the policy differs and stay valid.
func TestSimulatePriorityPolicy(t *testing.T) {
	cm := DefaultCostModel(1)
	w := structuredW(t, 6, 4000, 8, 8)
	prio := make([][]int64, 8)
	dagPrio := priority.PatchPriorities(priority.SLBD, w.Octants[0])
	for a := 0; a < 8; a++ {
		prio[a] = priority.PatchPriorities(priority.SLBD, w.Octants[w.AngleOctant[a]])
	}
	_ = dagPrio
	withPrio, err := Simulate(w, Config{Workers: 4, Grain: 500, PatchPrio: prio}, cm)
	if err != nil {
		t.Fatal(err)
	}
	without, err := Simulate(w, Config{Workers: 4, Grain: 500}, cm)
	if err != nil {
		t.Fatal(err)
	}
	if withPrio.Chunks != without.Chunks {
		t.Errorf("policy changed the work itself: %d vs %d chunks", withPrio.Chunks, without.Chunks)
	}
}

func TestSimulateBSPSlowerThanDataDriven(t *testing.T) {
	cm := DefaultCostModel(1)
	w := structuredW(t, 6, 4000, 8, 8)
	dd, err := Simulate(w, defaultCfg(11, 500), cm)
	if err != nil {
		t.Fatal(err)
	}
	bspRes, err := SimulateBSP(w, defaultCfg(11, 500), cm)
	if err != nil {
		t.Fatal(err)
	}
	if bspRes.Makespan <= dd.Makespan {
		t.Errorf("BSP (%v) should be slower than data-driven (%v)", bspRes.Makespan, dd.Makespan)
	}
	if bspRes.Chunks != dd.Chunks {
		t.Errorf("both models must do the same work: %d vs %d", bspRes.Chunks, dd.Chunks)
	}
}

func TestSimulateValidation(t *testing.T) {
	w := structuredW(t, 2, 100, 2, 8)
	cm := DefaultCostModel(1)
	if _, err := Simulate(w, Config{Workers: 0, Grain: 10}, cm); err == nil {
		t.Error("zero workers should fail")
	}
	bad := *w
	bad.Owner = bad.Owner[:1]
	if _, err := Simulate(&bad, defaultCfg(1, 10), cm); err == nil {
		t.Error("bad owners should fail")
	}
}

func TestWorkloadValidateCyclicRejected(t *testing.T) {
	w := structuredW(t, 2, 100, 2, 8)
	// Inject a cycle into octant 0.
	dag := w.Octants[0]
	dag.Succ[7] = append(dag.Succ[7], 0)
	dag.Weight[7] = append(dag.Weight[7], 1)
	dag.InDeg[0]++
	if err := w.Validate(); err == nil {
		t.Error("cyclic octant DAG must be rejected")
	}
}
