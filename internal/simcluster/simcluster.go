// Package simcluster is the hardware substitute for the paper's
// 3,200-node Tianhe-II runs (DESIGN.md substitution #2): a discrete-event
// simulator of the JSweep runtime architecture — per-process master +
// worker cores, priority-ordered ready queues, per-stream master routing,
// link latency and bandwidth — executing the real patch-level task graphs
// under the real priority strategies, in virtual time.
//
// The model: every (patch, angle) patch-program runs as a pipeline of
// chunks (chunk = one vertex-clustering grain worth of cells). Chunk j
// depends on chunk j−1 of the same program and on the proportionally
// aligned chunk of every upwind program (partial computation /
// pipelining, paper §III-A1); each completed chunk sends one stream per
// downwind program (vertex clustering aggregates messages, §V-C).
// Costs are charged per the CostModel; scheduling decisions replay the
// two-level priority policy of §V-D.
package simcluster

import (
	"container/heap"
	"fmt"

	"jsweep/internal/graph"
)

// CostModel holds the calibrated machine constants (see EXPERIMENTS.md for
// the calibration narrative). Times in seconds, sizes in bytes.
type CostModel struct {
	// TCell is the kernel time per cell·angle·group.
	TCell float64
	// TGraphOpCell is the data-driven bookkeeping per cell·angle (counter
	// updates, queue ops) — the "graph-op" category of Fig. 16.
	TGraphOpCell float64
	// TScheduleFixed is the fixed cost of one patch-program activation.
	TScheduleFixed float64
	// TRoutePerStream is the master's routing cost per stream.
	TRoutePerStream float64
	// TMsgFixed is the fixed per-transport-message software cost paid by
	// the sending and the receiving master (send setup, matching) — the
	// overhead message aggregation amortizes: per stream without
	// aggregation, per frame with it.
	TMsgFixed float64
	// TPackPerByte is the serialization cost per byte (counted once for
	// pack, once for unpack).
	TPackPerByte float64
	// Latency is the per-message network latency between processes.
	Latency float64
	// InvBandwidth is seconds per byte on a link.
	InvBandwidth float64
	// StreamHeaderBytes is the fixed wire overhead per stream.
	StreamHeaderBytes float64
	// BytesPerFaceGroup is the payload per crossing face per group
	// (matches the real codec: 5 bytes header + 8 per group).
	BytesPerFaceGroup float64
	// PipelineSlack is the number of extra upstream chunks a downwind
	// patch lags behind its upwind neighbour beyond the aligned chunk:
	// the internal wavefront of a patch must cross it corner-to-corner
	// before the first downwind face data of a given band is complete, so
	// perfect chunk alignment is optimistic. Calibrated against the
	// paper's Kobayashi-400 strong-scaling efficiencies.
	PipelineSlack int
}

// DefaultCostModel returns constants calibrated so that the simulated
// Kobayashi-400 base case lands near the paper's absolute runtimes (see
// EXPERIMENTS.md).
func DefaultCostModel(groups int) CostModel {
	return CostModel{
		TCell:             2.2e-6,
		TGraphOpCell:      0.55e-6,
		TScheduleFixed:    15e-6,
		TRoutePerStream:   4e-6,
		TMsgFixed:         2e-6,
		TPackPerByte:      1.5e-9,
		Latency:           8e-6,
		InvBandwidth:      1.0 / 5e9,
		StreamHeaderBytes: 21,
		BytesPerFaceGroup: 5 + 8*float64(groups),
		PipelineSlack:     2,
	}
}

// Workload is the simulated task system: patches with cell counts, their
// per-octant dependency DAGs, the angle→octant map, and patch placement.
type Workload struct {
	// PatchCells is the workload (cell count) of each patch.
	PatchCells []int64
	// Owner maps each patch to its process rank.
	Owner []int
	// Octants holds the patch-level dependency DAG per octant (must be
	// acyclic — use AcyclifyDAG for unstructured decompositions).
	Octants []*graph.PatchDAG
	// AngleOctant maps each angle to its octant's DAG index.
	AngleOctant []int
	// FacesPerEdgeScale scales a DAG edge weight into crossing mesh faces
	// (1 for DAGs built at cell granularity on the real mesh; the
	// patch-granular synthetic builders set the patch face count).
	FacesPerEdgeScale float64
	// Groups is the number of energy groups (workload multiplier).
	Groups int
	// Procs is the number of processes patches are placed on.
	Procs int
}

// Validate checks the workload.
func (w *Workload) Validate() error {
	np := len(w.PatchCells)
	if np == 0 {
		return fmt.Errorf("simcluster: empty workload")
	}
	if len(w.Owner) != np {
		return fmt.Errorf("simcluster: %d owners for %d patches", len(w.Owner), np)
	}
	if len(w.Octants) == 0 || len(w.AngleOctant) == 0 {
		return fmt.Errorf("simcluster: workload needs octant DAGs and angles")
	}
	for i, dag := range w.Octants {
		if dag.N != np {
			return fmt.Errorf("simcluster: octant %d DAG has %d nodes, want %d", i, dag.N, np)
		}
		if !dag.IsAcyclic() {
			return fmt.Errorf("simcluster: octant %d DAG is cyclic — AcyclifyDAG it first", i)
		}
	}
	for a, o := range w.AngleOctant {
		if o < 0 || o >= len(w.Octants) {
			return fmt.Errorf("simcluster: angle %d maps to octant %d outside [0,%d)", a, o, len(w.Octants))
		}
	}
	for p, r := range w.Owner {
		if r < 0 || r >= w.Procs {
			return fmt.Errorf("simcluster: patch %d on rank %d outside [0,%d)", p, r, w.Procs)
		}
	}
	if w.Groups < 1 {
		return fmt.Errorf("simcluster: groups must be >= 1")
	}
	return nil
}

// Config selects the runtime shape and scheduling policy to simulate.
type Config struct {
	// Workers is the number of worker cores per process (the master has
	// its own core, as in the paper's runtime).
	Workers int
	// Grain is the vertex clustering grain in cells.
	Grain int64
	// PatchPrio[a][p] is the patch priority of patch p for angle a
	// (computed by the caller from a priority.Strategy; larger = earlier).
	// nil means FIFO.
	PatchPrio [][]int64
	// AngleMajor makes earlier angles strictly dominate (the paper's
	// prior(a)·C term). Default true.
	AngleMajorOff bool
	// EmitDelay ∈ [0, 1] models the vertex-priority strategy inside a
	// patch: 0 means boundary fluxes leave as early as possible (SLBD —
	// stream j departs with chunk j); 1 means all boundary data leaves
	// only with the final chunk (worst case). Intermediate values shift
	// stream j's departure toward later chunks, the behaviour of
	// priorities that favour interior work (BFS/LDCP on irregular meshes).
	EmitDelay float64
	// Aggregation models the runtime's outbound message aggregation: the
	// master coalesces remote streams per destination rank and pays one
	// latency + one pack per batch instead of per stream.
	Aggregation Aggregation
}

// Aggregation holds the simulated message-aggregation knobs, mirroring
// the real runtime's AggregationConfig in virtual time.
type Aggregation struct {
	// Enabled turns batching on; off reproduces per-stream messaging.
	Enabled bool
	// MaxBatchStreams flushes a (src, dst) pair at this many pending
	// streams (default 64).
	MaxBatchStreams int
	// MaxBatchBytes flushes at this many pending payload bytes
	// (default 64 KiB).
	MaxBatchBytes float64
	// FlushDelay is the virtual-time deadline bound: a pending batch
	// flushes at most this long after its first stream (default 20µs).
	FlushDelay float64
}

// withDefaults fills unset aggregation knobs.
func (a Aggregation) withDefaults() Aggregation {
	if a.MaxBatchStreams <= 0 {
		a.MaxBatchStreams = 64
	}
	if a.MaxBatchBytes <= 0 {
		a.MaxBatchBytes = 64 << 10
	}
	if a.FlushDelay <= 0 {
		a.FlushDelay = 20e-6
	}
	return a
}

// aggFrameOverheadBytes is the fixed wire overhead of one aggregated
// frame (header + shard count), matching core.FrameHeaderSize + one
// shard-count word.
const aggFrameOverheadBytes = 12.0

// Result is the simulated outcome.
type Result struct {
	// Makespan is the virtual wall-clock of the sweep [s].
	Makespan float64
	// Core-second totals by category (Fig. 16):
	Kernel, GraphOp, Pack, Unpack, Route float64
	// WorkerIdle and MasterIdle are idle core-seconds.
	WorkerIdle, MasterIdle float64
	// Streams / RemoteStreams / Bytes count communication.
	Streams, RemoteStreams, LocalStreams int64
	Bytes                                int64
	// BatchesSent counts aggregated frames (0 without aggregation); with
	// aggregation working, BatchesSent < RemoteStreams.
	BatchesSent int64
	// FlushOnDeadline counts batches flushed by the deadline rather than
	// a size/count trigger.
	FlushOnDeadline int64
	// StreamsPerBatch is the mean aggregation factor
	// (RemoteStreams/BatchesSent); 0 without aggregation.
	StreamsPerBatch float64
	// Chunks is the number of chunk executions (scheduling events).
	Chunks int64
	// Events is the DES event count (diagnostics).
	Events int64
}

// CoreSeconds returns makespan × total cores (workers + masters).
func (r *Result) CoreSeconds(procs, workers int) float64 {
	return r.Makespan * float64(procs*(workers+1))
}

// event kinds.
const (
	evChunkReady = iota
	evChunkDone
	evArrive
	// evFlush fires an aggregation deadline for the (src, dst) rank pair
	// carried in the event's prog/chunk fields.
	evFlush
)

type event struct {
	t    float64
	seq  int64
	kind int
	prog int32
	// chunk for ready/done; for arrive, chunk is the destination chunk.
	chunk int32
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// readyTask sits in a process's priority queue.
type readyTask struct {
	prio  int64
	seq   int64
	prog  int32
	chunk int32
}

type readyHeap []readyTask

func (h readyHeap) Len() int { return len(h) }
func (h readyHeap) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio > h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h readyHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *readyHeap) Push(x interface{}) { *h = append(*h, x.(readyTask)) }
func (h *readyHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

type procState struct {
	ready        readyHeap
	idleWorkers  int
	masterFreeAt float64
	workerBusy   float64 // accumulated busy core-seconds
	masterBusy   float64
}

// Simulate runs the discrete-event simulation and returns the virtual
// makespan and cost breakdown.
func Simulate(w *Workload, cfg Config, cm CostModel) (*Result, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("simcluster: need >= 1 worker (got %d)", cfg.Workers)
	}
	if cfg.Grain < 1 {
		cfg.Grain = 1
	}
	np := len(w.PatchCells)
	na := len(w.AngleOctant)
	numProgs := np * na

	// Per-program chunk layout.
	chunksOf := make([]int32, numProgs)
	offset := make([]int64, numProgs+1)
	var totalChunks int64
	for a := 0; a < na; a++ {
		for p := 0; p < np; p++ {
			ch := (w.PatchCells[p] + cfg.Grain - 1) / cfg.Grain
			if ch < 1 {
				ch = 1
			}
			chunksOf[a*np+p] = int32(ch)
			offset[a*np+p+1] = offset[a*np+p] + ch
			totalChunks += ch
		}
	}

	// Dependency counts per chunk: +1 from the previous chunk, plus the
	// aligned deliveries from upwind programs.
	deps := make([]int32, totalChunks)
	for i := 0; i < numProgs; i++ {
		for c := int32(1); c < chunksOf[i]; c++ {
			deps[offset[i]+int64(c)]++
		}
	}
	// targetChunk maps stream j of a program with cu chunks onto the
	// receiving program's chunk (cv chunks): proportionally aligned, then
	// shifted down by the pipeline slack (so chunk c waits for upstream
	// band c+slack).
	slack := int32(cm.PipelineSlack)
	targetChunk := func(j, cu, cv int32) int32 {
		t := int32(int64(j)*int64(cv)/int64(cu)) - slack
		if t >= cv {
			t = cv - 1
		}
		if t < 0 {
			t = 0
		}
		return t
	}
	for a := 0; a < na; a++ {
		dag := w.Octants[w.AngleOctant[a]]
		for p := 0; p < np; p++ {
			u := int32(a*np + p)
			cu := chunksOf[u]
			for _, q := range dag.Succ[p] {
				v := int32(a*np + int(q))
				cv := chunksOf[v]
				for j := int32(0); j < cu; j++ {
					deps[offset[v]+int64(targetChunk(j, cu, cv))]++
				}
			}
		}
	}

	procs := make([]procState, w.Procs)
	for i := range procs {
		procs[i].idleWorkers = cfg.Workers
	}

	// Emission schedule per chunk count: emitBuckets[cu][c] lists the
	// stream indices departing when chunk c completes (EmitDelay shifts
	// stream j from chunk j toward the last chunk).
	if cfg.EmitDelay < 0 {
		cfg.EmitDelay = 0
	}
	if cfg.EmitDelay > 1 {
		cfg.EmitDelay = 1
	}
	emitCache := map[int32][][]int32{}
	emitBuckets := func(cu int32) [][]int32 {
		if b, ok := emitCache[cu]; ok {
			return b
		}
		b := make([][]int32, cu)
		for j := int32(0); j < cu; j++ {
			e := j + int32(cfg.EmitDelay*float64(cu-1-j))
			if e >= cu {
				e = cu - 1
			}
			b[e] = append(b[e], j)
		}
		emitCache[cu] = b
		return b
	}

	res := &Result{}
	var events eventHeap
	var seq int64
	push := func(t float64, kind int, prog, chunk int32) {
		seq++
		heap.Push(&events, event{t: t, seq: seq, kind: kind, prog: prog, chunk: chunk})
		res.Events++
	}

	// Aggregation state: per (src, dst) rank pair, the pending batch.
	agg := cfg.Aggregation.withDefaults()
	type aggArrival struct{ prog, chunk int32 }
	type aggPend struct {
		arrivals []aggArrival
		bytes    float64
		deadline float64 // virtual time the current batch must flush by
	}
	var pending map[int64]*aggPend
	if agg.Enabled {
		pending = make(map[int64]*aggPend)
	}
	// flushAgg ships one pending batch at virtual time t: pack once on the
	// source master, one latency + bandwidth for the whole frame, one
	// unpack + per-stream route on the destination master.
	flushAgg := func(src, dst int, pd *aggPend, t float64, byDeadline bool) {
		n := len(pd.arrivals)
		if n == 0 {
			return
		}
		total := pd.bytes + aggFrameOverheadBytes
		ps := &procs[src]
		packT := total*cm.TPackPerByte + cm.TMsgFixed
		start := maxF(t, ps.masterFreeAt)
		done := start + packT
		ps.masterFreeAt = done
		ps.masterBusy += packT
		res.Pack += packT
		arrive := done + cm.Latency + total*cm.InvBandwidth
		dstPs := &procs[dst]
		unpackT := total*cm.TPackPerByte + cm.TMsgFixed + float64(n)*cm.TRoutePerStream
		st := maxF(arrive, dstPs.masterFreeAt)
		dn := st + unpackT
		dstPs.masterFreeAt = dn
		dstPs.masterBusy += unpackT
		res.Unpack += total*cm.TPackPerByte + cm.TMsgFixed
		res.Route += float64(n) * cm.TRoutePerStream
		res.Bytes += int64(aggFrameOverheadBytes)
		res.BatchesSent++
		if byDeadline {
			res.FlushOnDeadline++
		}
		for _, ar := range pd.arrivals {
			push(dn, evArrive, ar.prog, ar.chunk)
		}
		pd.arrivals = pd.arrivals[:0]
		pd.bytes = 0
	}

	prioOf := func(prog int32) int64 {
		a := int(prog) / np
		p := int(prog) % np
		var pp int64
		if cfg.PatchPrio != nil {
			pp = cfg.PatchPrio[a][p]
		}
		if cfg.AngleMajorOff {
			return pp
		}
		return -int64(a)*(1<<24) + pp
	}

	chunkCells := func(prog, chunk int32) int64 {
		p := int(prog) % np
		cells := w.PatchCells[p]
		full := cells / cfg.Grain
		if int64(chunk) < full {
			return cfg.Grain
		}
		rem := cells - full*cfg.Grain
		if rem == 0 {
			return cfg.Grain
		}
		return rem
	}

	dispatch := func(ps *procState, now float64) {
		for ps.idleWorkers > 0 && ps.ready.Len() > 0 {
			task := heap.Pop(&ps.ready).(readyTask)
			ps.idleWorkers--
			cells := chunkCells(task.prog, task.chunk)
			kernel := float64(cells) * float64(w.Groups) * cm.TCell
			graphOp := float64(cells)*cm.TGraphOpCell + cm.TScheduleFixed
			res.Kernel += kernel
			res.GraphOp += graphOp
			ps.workerBusy += kernel + graphOp
			push(now+kernel+graphOp, evChunkDone, task.prog, task.chunk)
			res.Chunks++
		}
	}

	// Seed: chunk 0 of every program with no dependencies.
	for i := 0; i < numProgs; i++ {
		if deps[offset[i]] == 0 {
			push(0, evChunkReady, int32(i), 0)
		}
	}

	now := 0.0
	for events.Len() > 0 {
		ev := heap.Pop(&events).(event)
		now = ev.t
		switch ev.kind {
		case evChunkReady:
			p := int(ev.prog) % np
			ps := &procs[w.Owner[p]]
			seq++
			heap.Push(&ps.ready, readyTask{prio: prioOf(ev.prog), seq: seq, prog: ev.prog, chunk: ev.chunk})
			dispatch(ps, now)
		case evChunkDone:
			p := int(ev.prog) % np
			a := int(ev.prog) / np
			rank := w.Owner[p]
			ps := &procs[rank]
			ps.idleWorkers++
			// Next chunk of the same program.
			if ev.chunk+1 < chunksOf[ev.prog] {
				idx := offset[ev.prog] + int64(ev.chunk) + 1
				deps[idx]--
				if deps[idx] == 0 {
					push(now, evChunkReady, ev.prog, ev.chunk+1)
				}
			}
			// Streams to downwind programs, serialized through this
			// process's master. The emission schedule decides which stream
			// indices depart with this chunk.
			dag := w.Octants[w.AngleOctant[a]]
			cu := chunksOf[ev.prog]
			for _, j := range emitBuckets(cu)[ev.chunk] {
				for si, q := range dag.Succ[p] {
					v := int32(a*np + int(q))
					tc := targetChunk(j, cu, chunksOf[v])
					faces := float64(dag.Weight[p][si]) * w.FacesPerEdgeScale / float64(cu)
					bytes := cm.StreamHeaderBytes + faces*cm.BytesPerFaceGroup
					res.Streams++
					res.Bytes += int64(bytes)
					dstRank := w.Owner[q]
					if dstRank == rank {
						// Local: master routes, no pack or wire.
						start := maxF(now, ps.masterFreeAt)
						done := start + cm.TRoutePerStream
						ps.masterFreeAt = done
						ps.masterBusy += cm.TRoutePerStream
						res.Route += cm.TRoutePerStream
						res.LocalStreams++
						push(done, evArrive, v, tc)
						continue
					}
					if agg.Enabled {
						// Aggregating path: the source master routes the
						// stream into the destination's pending batch; pack
						// and wire costs are paid per batch at flush.
						start := maxF(now, ps.masterFreeAt)
						done := start + cm.TRoutePerStream
						ps.masterFreeAt = done
						ps.masterBusy += cm.TRoutePerStream
						res.Route += cm.TRoutePerStream
						res.RemoteStreams++
						key := int64(rank)*int64(w.Procs) + int64(dstRank)
						pd := pending[key]
						if pd == nil {
							pd = &aggPend{}
							pending[key] = pd
						}
						if len(pd.arrivals) == 0 {
							pd.deadline = done + agg.FlushDelay
							push(pd.deadline, evFlush, int32(rank), int32(dstRank))
						}
						pd.arrivals = append(pd.arrivals, aggArrival{prog: v, chunk: tc})
						pd.bytes += bytes
						if len(pd.arrivals) >= agg.MaxBatchStreams || pd.bytes >= agg.MaxBatchBytes {
							flushAgg(rank, dstRank, pd, done, false)
						}
						continue
					}
					// Remote: pack + route + per-message cost on the source
					// master, wire, unpack + route on the destination.
					packT := bytes*cm.TPackPerByte + cm.TMsgFixed
					start := maxF(now, ps.masterFreeAt)
					done := start + cm.TRoutePerStream + packT
					ps.masterFreeAt = done
					ps.masterBusy += cm.TRoutePerStream + packT
					res.Route += cm.TRoutePerStream
					res.Pack += packT
					res.RemoteStreams++
					arrive := done + cm.Latency + bytes*cm.InvBandwidth
					dst := &procs[dstRank]
					unpackT := bytes*cm.TPackPerByte + cm.TMsgFixed + cm.TRoutePerStream
					st := maxF(arrive, dst.masterFreeAt)
					dn := st + unpackT
					dst.masterFreeAt = dn
					dst.masterBusy += unpackT
					res.Unpack += bytes*cm.TPackPerByte + cm.TMsgFixed
					res.Route += cm.TRoutePerStream
					push(dn, evArrive, v, tc)
				}
			}
			dispatch(ps, now)
		case evArrive:
			idx := offset[ev.prog] + int64(ev.chunk)
			deps[idx]--
			if deps[idx] == 0 {
				push(now, evChunkReady, ev.prog, ev.chunk)
			}
		case evFlush:
			src, dst := int(ev.prog), int(ev.chunk)
			pd := pending[int64(src)*int64(w.Procs)+int64(dst)]
			// Flush only the batch this deadline was armed for: a size
			// flush may have emptied it, and a newer batch re-arms its own
			// deadline event.
			if pd != nil && len(pd.arrivals) > 0 && now >= pd.deadline {
				flushAgg(src, dst, pd, now, true)
			}
		}
	}

	if agg.Enabled {
		res.StreamsPerBatch = 0
		if res.BatchesSent > 0 {
			res.StreamsPerBatch = float64(res.RemoteStreams) / float64(res.BatchesSent)
		}
	}
	res.Makespan = now
	var workerBusy, masterBusy float64
	for i := range procs {
		workerBusy += procs[i].workerBusy
		masterBusy += procs[i].masterBusy
	}
	res.WorkerIdle = now*float64(w.Procs*cfg.Workers) - workerBusy
	res.MasterIdle = now*float64(w.Procs) - masterBusy
	return res, nil
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
