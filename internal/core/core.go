// Package core defines the patch-centric data-driven abstraction — the
// primary contribution of the JSweep paper (§III). A patch is extended into
// a logical processing element: a patch-program identified by a
// (patch, task) pair, with five primitive functions and an active/inactive
// state machine. Patch-programs are fully reentrant (partial computation)
// and communicate through routable streams.
//
// The package also provides a sequential Engine implementing the execution
// semantics of Alg. 1 — the reference scheduler the parallel runtime
// (package runtime) must be observationally equivalent to.
package core

import (
	"container/heap"
	"fmt"

	"jsweep/internal/mesh"
)

// TaskTag identifies a task on a patch. For Sn sweeps the task is the
// sweeping angle id (§V-B), so all angles of one patch execute as
// independent patch-programs (patch-angle parallelism).
type TaskTag int32

// ProgramKey identifies a patch-program: task t executed on patch p.
type ProgramKey struct {
	Patch mesh.PatchID
	Task  TaskTag
}

// String renders the key as (patch,task).
func (k ProgramKey) String() string { return fmt.Sprintf("(%d,%d)", k.Patch, k.Task) }

// Stream is the unit of inter-patch-program communication (paper Fig. 6):
// user data plus full source and destination program addressing, which is
// what makes streams routable by the runtime without global coordination.
type Stream struct {
	SrcPatch mesh.PatchID
	SrcTask  TaskTag
	TgtPatch mesh.PatchID
	TgtTask  TaskTag
	// Payload is the user-defined data, already serialized: streams cross
	// process boundaries in packed form.
	Payload []byte
}

// Src returns the source program key.
func (s *Stream) Src() ProgramKey { return ProgramKey{s.SrcPatch, s.SrcTask} }

// Tgt returns the target program key.
func (s *Stream) Tgt() ProgramKey { return ProgramKey{s.TgtPatch, s.TgtTask} }

// PatchProgram is the five-function interface of paper Fig. 6. A program
// must be reentrant: the runtime may call the Input/Compute/Output cycle
// any number of times (partial computation, §III-A1), and all state must
// live in the program's local context between calls.
type PatchProgram interface {
	// Init is called exactly once, before the first Input/Compute.
	Init()
	// Input consumes one received stream.
	Input(s Stream)
	// Compute performs (a slice of) the local computation using everything
	// received so far.
	Compute()
	// Output returns the next pending outgoing stream, with ok=false when
	// none remain. The runtime keeps calling until ok=false.
	Output() (s Stream, ok bool)
	// VoteToHalt reports whether the program has no ready work left. A
	// halted program is deactivated and re-activated by the next stream.
	VoteToHalt() bool
}

// WorkloadReporter is optionally implemented by programs whose total
// workload is known in advance (paper §III-B: sweeps know the number of
// (cell, angle) computations up front). The runtime uses it for the
// cheap special-case termination detection; programs without it fall back
// to the general distributed protocol.
type WorkloadReporter interface {
	// RemainingWork returns the number of not-yet-finished work items.
	RemainingWork() int64
}

// State is the patch-program state machine state (paper Fig. 7).
type State int8

const (
	// Active programs are scheduled for execution.
	Active State = iota
	// Inactive programs voted to halt and wait for a stream.
	Inactive
)

// EngineStats summarizes a sequential engine run.
type EngineStats struct {
	// Cycles is the number of Alg. 1 executions across all programs.
	Cycles int64
	// Streams is the number of streams delivered.
	Streams int64
	// Bytes is the total payload bytes moved.
	Bytes int64
}

// Engine is the sequential reference scheduler: it executes registered
// patch-programs following exactly the semantics of Alg. 1, picking among
// active programs by priority (highest first, FIFO among equal). It is
// deliberately simple — the parallel runtime is validated against it.
type Engine struct {
	programs map[ProgramKey]*engProg
	// order keeps registration order so Reset reactivates programs with
	// exactly the same deterministic schedule as a fresh engine.
	order []*engProg
	ready engHeap
	seq   int64
	stats EngineStats
}

type engProg struct {
	key   ProgramKey
	prog  PatchProgram
	prio  int64
	seq   int64 // FIFO tie-break
	inbox []Stream
	// inboxFree recycles the previously consumed inbox buffer.
	inboxFree   []Stream
	state       State
	queued      bool
	initialized bool
	index       int // heap index
}

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{programs: make(map[ProgramKey]*engProg)}
}

// Register adds a patch-program with a scheduling priority. All programs
// start Active (paper §III-A: "at the beginning, each patch-program is set
// active"). Registering a duplicate key is an error.
func (e *Engine) Register(key ProgramKey, prog PatchProgram, prio int64) error {
	if _, dup := e.programs[key]; dup {
		return fmt.Errorf("core: duplicate program %v", key)
	}
	p := &engProg{key: key, prog: prog, prio: prio, state: Active}
	e.programs[key] = p
	e.order = append(e.order, p)
	e.push(p)
	return nil
}

// Reset rearms the engine for another round: every registered program is
// reactivated in registration order (the same deterministic schedule a
// fresh engine would produce), pending inboxes and statistics are
// cleared (the next Run reports that round alone, mirroring
// runtime.Runtime.RunRound), and Run may be called again. Init calls are
// NOT repeated — program-local state between rounds is the caller's
// responsibility, mirroring runtime.Runtime.Reset.
func (e *Engine) Reset() {
	e.stats = EngineStats{}
	e.ready = e.ready[:0]
	for _, p := range e.order {
		p.state = Active
		p.queued = false
		clear(p.inbox)
		p.inbox = p.inbox[:0]
		e.push(p)
	}
}

func (e *Engine) push(p *engProg) {
	if p.queued {
		return
	}
	p.queued = true
	p.seq = e.seq
	e.seq++
	heap.Push(&e.ready, p)
}

// Run executes Alg. 1 on every active program until no program is active —
// the global termination condition of §III-B. It returns statistics and an
// error if a stream targets an unregistered program.
func (e *Engine) Run() (EngineStats, error) {
	for e.ready.Len() > 0 {
		p := heap.Pop(&e.ready).(*engProg)
		p.queued = false
		if p.state != Active {
			continue
		}
		if err := e.cycle(p); err != nil {
			return e.stats, err
		}
	}
	return e.stats, nil
}

// cycle runs one Alg. 1 execution of program p.
func (e *Engine) cycle(p *engProg) error {
	e.stats.Cycles++
	if !p.initialized {
		p.prog.Init()
		p.initialized = true
	}
	// Detach the inbox (self-delivery during Output must land in a fresh
	// buffer) and recycle the consumed one afterwards.
	inbox := p.inbox
	p.inbox = p.inboxFree
	p.inboxFree = nil
	for _, s := range inbox {
		p.prog.Input(s)
	}
	p.prog.Compute()
	for {
		s, ok := p.prog.Output()
		if !ok {
			break
		}
		if err := e.deliver(s); err != nil {
			return err
		}
	}
	clear(inbox)
	if p.inboxFree == nil {
		p.inboxFree = inbox[:0]
	}
	if p.prog.VoteToHalt() && len(p.inbox) == 0 {
		p.state = Inactive
	} else {
		p.state = Active
		e.push(p)
	}
	return nil
}

// deliver routes a stream to its target program, activating it.
func (e *Engine) deliver(s Stream) error {
	tgt, ok := e.programs[s.Tgt()]
	if !ok {
		return fmt.Errorf("core: stream %v -> %v targets unregistered program", s.Src(), s.Tgt())
	}
	e.stats.Streams++
	e.stats.Bytes += int64(len(s.Payload))
	tgt.inbox = append(tgt.inbox, s)
	tgt.state = Active
	e.push(tgt)
	return nil
}

// RemainingWork sums the remaining work of all registered programs that
// report it.
func (e *Engine) RemainingWork() int64 {
	var total int64
	for _, p := range e.programs {
		if r, ok := p.prog.(WorkloadReporter); ok {
			total += r.RemainingWork()
		}
	}
	return total
}

// engHeap is a max-heap on (prio, -seq).
type engHeap []*engProg

func (h engHeap) Len() int { return len(h) }
func (h engHeap) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio > h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h engHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *engHeap) Push(x interface{}) {
	p := x.(*engProg)
	p.index = len(*h)
	*h = append(*h, p)
}
func (h *engHeap) Pop() interface{} {
	old := *h
	n := len(old)
	p := old[n-1]
	*h = old[:n-1]
	return p
}
