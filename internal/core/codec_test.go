package core_test

import (
	"bytes"
	"encoding/binary"
	"testing"

	"jsweep/internal/core"
	"jsweep/internal/mesh"
)

func frameStreams() [][]core.Stream {
	return [][]core.Stream{
		{
			{SrcPatch: 1, SrcTask: 2, TgtPatch: 3, TgtTask: 4, Payload: []byte{1, 2, 3}},
			{SrcPatch: -1, SrcTask: -2, TgtPatch: -3, TgtTask: -4, Payload: nil},
		},
		{}, // empty shard must survive the round trip
		{
			{SrcPatch: 7, TgtPatch: 9, Payload: bytes.Repeat([]byte{0xCD}, 513)},
		},
	}
}

func TestFrameCodecRoundTrip(t *testing.T) {
	shards := frameStreams()
	buf := core.EncodeFrame(nil, shards)
	if len(buf) != core.EncodedFrameSize(shards) {
		t.Errorf("encoded size %d != predicted %d", len(buf), core.EncodedFrameSize(shards))
	}
	got, err := core.DecodeFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(shards) {
		t.Fatalf("decoded %d shards, want %d", len(got), len(shards))
	}
	for i := range shards {
		if len(got[i]) != len(shards[i]) {
			t.Fatalf("shard %d: %d streams, want %d", i, len(got[i]), len(shards[i]))
		}
		for j := range shards[i] {
			w, h := shards[i][j], got[i][j]
			if w.Src() != h.Src() || w.Tgt() != h.Tgt() || !bytes.Equal(w.Payload, h.Payload) {
				t.Errorf("shard %d stream %d mismatch", i, j)
			}
		}
	}
}

func TestFrameCodecEmptyFrame(t *testing.T) {
	buf := core.EncodeFrame(nil, nil)
	got, err := core.DecodeFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("decoded %d shards from empty frame", len(got))
	}
}

func TestFrameCodecRejectsCorrupt(t *testing.T) {
	valid := core.EncodeFrame(nil, frameStreams())
	corrupt := func(mutate func(b []byte) []byte) []byte {
		b := append([]byte(nil), valid...)
		return mutate(b)
	}
	cases := map[string][]byte{
		"empty":        {},
		"short header": valid[:core.FrameHeaderSize-1],
		"bad magic": corrupt(func(b []byte) []byte {
			b[0] ^= 0xFF
			return b
		}),
		"bad version": corrupt(func(b []byte) []byte {
			b[2] = core.FrameVersion + 1
			return b
		}),
		"inflated shard count": corrupt(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:], 1<<30)
			return b
		}),
		"inflated stream count": corrupt(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[core.FrameHeaderSize:], 1<<30)
			return b
		}),
		"truncated shard": valid[:len(valid)-1],
		"trailing bytes":  append(append([]byte(nil), valid...), 0xEE),
	}
	for name, buf := range cases {
		if _, err := core.DecodeFrame(buf); err == nil {
			t.Errorf("%s: corrupt frame accepted", name)
		}
	}
}

// FuzzCodecRoundTrip drives both decoders with arbitrary bytes (they must
// error, never panic or over-allocate) and checks that anything that does
// decode re-encodes to an equivalent frame.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add(core.EncodeStreams(nil, []core.Stream{{SrcPatch: 1, TgtPatch: 2, Payload: []byte{9}}}))
	f.Add(core.EncodeFrame(nil, frameStreams()))
	f.Add(core.EncodeFrame(nil, [][]core.Stream{}))
	f.Add([]byte{0x53, 0x4A, 1, 0, 1, 0, 0, 0})    // magic bytes, missing shard
	f.Add([]byte("SJ\x010\x00\x00\x00\x00"))       // nonzero reserved flags (fuzzer-found)
	f.Add([]byte{0x53, 0x4A, 1, 0, 0, 0, 0, 0, 1}) // trailing byte after empty frame
	f.Fuzz(func(t *testing.T, data []byte) {
		if streams, err := core.DecodeStreams(data); err == nil {
			re := core.EncodeStreams(nil, streams)
			if !bytes.Equal(re, data) {
				t.Errorf("stream batch re-encode differs: %x vs %x", re, data)
			}
		}
		if shards, err := core.DecodeFrame(data); err == nil {
			re := core.EncodeFrame(nil, shards)
			if !bytes.Equal(re, data) {
				t.Errorf("frame re-encode differs: %x vs %x", re, data)
			}
		}
	})
}

// FuzzStreamRoundTrip fuzzes structured inputs through encode→decode.
func FuzzStreamRoundTrip(f *testing.F) {
	f.Add(int32(0), int32(0), int32(0), int32(0), []byte(nil), uint8(1))
	f.Add(int32(-5), int32(9), int32(1<<20), int32(-1), bytes.Repeat([]byte{7}, 100), uint8(3))
	f.Fuzz(func(t *testing.T, sp, st, tp, tt int32, payload []byte, nshards uint8) {
		s := core.Stream{
			SrcPatch: mesh.PatchID(sp), SrcTask: core.TaskTag(st),
			TgtPatch: mesh.PatchID(tp), TgtTask: core.TaskTag(tt),
			Payload: payload,
		}
		shards := make([][]core.Stream, int(nshards%8)+1)
		shards[0] = []core.Stream{s}
		got, err := core.DecodeFrame(core.EncodeFrame(nil, shards))
		if err != nil {
			t.Fatalf("valid frame rejected: %v", err)
		}
		if len(got) != len(shards) || len(got[0]) != 1 {
			t.Fatalf("shape mismatch: %d shards", len(got))
		}
		d := got[0][0]
		if d.Src() != s.Src() || d.Tgt() != s.Tgt() || !bytes.Equal(d.Payload, s.Payload) {
			t.Error("stream round-trip mismatch")
		}
	})
}
