package core

import (
	"encoding/binary"
	"fmt"

	"jsweep/internal/mesh"
)

// Stream wire format (little endian):
//
//	batch  := count:u32 { stream }*count
//	stream := srcPatch:i32 srcTask:i32 tgtPatch:i32 tgtTask:i32
//	          payloadLen:u32 payload:bytes
//
// Streams cross process boundaries only in this packed form; the
// pack/unpack cost is one of the runtime-overhead categories of paper
// Fig. 16.

const streamHeaderSize = 4*4 + 4

// EncodedSize returns the wire size of a batch of streams.
func EncodedSize(streams []Stream) int {
	n := 4
	for i := range streams {
		n += streamHeaderSize + len(streams[i].Payload)
	}
	return n
}

// EncodeStreams packs a batch of streams, appending to dst (which may be
// nil) and returning the extended slice.
func EncodeStreams(dst []byte, streams []Stream) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(streams)))
	for i := range streams {
		s := &streams[i]
		dst = binary.LittleEndian.AppendUint32(dst, uint32(s.SrcPatch))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(s.SrcTask))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(s.TgtPatch))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(s.TgtTask))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s.Payload)))
		dst = append(dst, s.Payload...)
	}
	return dst
}

// DecodeStreams unpacks a batch of streams. Payloads are copied out of buf
// so the caller may reuse it.
func DecodeStreams(buf []byte) ([]Stream, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("core: stream batch truncated (len %d)", len(buf))
	}
	count := binary.LittleEndian.Uint32(buf)
	off := 4
	out := make([]Stream, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(buf)-off < streamHeaderSize {
			return nil, fmt.Errorf("core: stream %d header truncated", i)
		}
		s := Stream{
			SrcPatch: mesh.PatchID(int32(binary.LittleEndian.Uint32(buf[off:]))),
			SrcTask:  TaskTag(int32(binary.LittleEndian.Uint32(buf[off+4:]))),
			TgtPatch: mesh.PatchID(int32(binary.LittleEndian.Uint32(buf[off+8:]))),
			TgtTask:  TaskTag(int32(binary.LittleEndian.Uint32(buf[off+12:]))),
		}
		plen := int(binary.LittleEndian.Uint32(buf[off+16:]))
		off += streamHeaderSize
		if len(buf)-off < plen {
			return nil, fmt.Errorf("core: stream %d payload truncated (%d of %d bytes)", i, len(buf)-off, plen)
		}
		if plen > 0 {
			s.Payload = append([]byte(nil), buf[off:off+plen]...)
			off += plen
		}
		out = append(out, s)
	}
	if off != len(buf) {
		return nil, fmt.Errorf("core: %d trailing bytes after stream batch", len(buf)-off)
	}
	return out, nil
}
