package core

import (
	"encoding/binary"
	"fmt"

	"jsweep/internal/mesh"
)

// Stream wire format (little endian):
//
//	batch  := count:u32 { stream }*count
//	stream := srcPatch:i32 srcTask:i32 tgtPatch:i32 tgtTask:i32
//	          payloadLen:u32 payload:bytes
//
// Streams cross process boundaries only in this packed form; the
// pack/unpack cost is one of the runtime-overhead categories of paper
// Fig. 16.
//
// Aggregated (multi-stream) frame format, used by the runtime's
// StreamBatcher to coalesce many routed streams into one transport
// message (paper §IV: per-destination message aggregation):
//
//	frame := magic:u16 version:u8 flags:u8 shardCount:u32 { batch }*shardCount
//
// Each shard is an independently decodable stream batch; the batcher
// shards streams by target program so a receiver could unpack shards
// concurrently. A frame with a wrong magic or version is rejected, as is
// any truncation — corrupt input must surface an error, never a panic.

// StreamHeaderSize is the fixed wire overhead per encoded stream
// (addressing + payload length).
const StreamHeaderSize = 4*4 + 4

const streamHeaderSize = StreamHeaderSize

// EncodedStreamSize returns the wire size of one stream inside a batch
// or frame (header + payload).
func EncodedStreamSize(s *Stream) int { return streamHeaderSize + len(s.Payload) }

// Frame constants for the aggregated multi-stream frame format.
const (
	// FrameMagic marks the start of an aggregated stream frame.
	FrameMagic = uint16(0x4A53) // "JS"
	// FrameVersion is the current frame layout version.
	FrameVersion = byte(1)
	// FrameHeaderSize is the fixed frame header length in bytes.
	FrameHeaderSize = 2 + 1 + 1 + 4
)

// EncodedSize returns the wire size of a batch of streams.
func EncodedSize(streams []Stream) int {
	n := 4
	for i := range streams {
		n += streamHeaderSize + len(streams[i].Payload)
	}
	return n
}

// EncodeStreams packs a batch of streams, appending to dst (which may be
// nil) and returning the extended slice.
func EncodeStreams(dst []byte, streams []Stream) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(streams)))
	for i := range streams {
		s := &streams[i]
		dst = binary.LittleEndian.AppendUint32(dst, uint32(s.SrcPatch))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(s.SrcTask))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(s.TgtPatch))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(s.TgtTask))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s.Payload)))
		dst = append(dst, s.Payload...)
	}
	return dst
}

// DecodeStreams unpacks a batch of streams. Payloads are copied out of buf
// so the caller may reuse it.
func DecodeStreams(buf []byte) ([]Stream, error) {
	out, off, err := decodeStreamsAt(buf, 0)
	if err != nil {
		return nil, err
	}
	if off != len(buf) {
		return nil, fmt.Errorf("core: %d trailing bytes after stream batch", len(buf)-off)
	}
	return out, nil
}

// decodeStreamsAt unpacks one stream batch starting at off and returns the
// streams plus the offset just past the batch.
func decodeStreamsAt(buf []byte, off int) ([]Stream, int, error) {
	if len(buf)-off < 4 {
		return nil, off, fmt.Errorf("core: stream batch truncated (len %d)", len(buf)-off)
	}
	count := binary.LittleEndian.Uint32(buf[off:])
	off += 4
	// A batch of `count` streams needs at least count×header bytes: reject
	// inflated counts before allocating.
	if int64(count)*int64(streamHeaderSize) > int64(len(buf)-off) {
		return nil, off, fmt.Errorf("core: stream count %d exceeds remaining %d bytes", count, len(buf)-off)
	}
	out := make([]Stream, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(buf)-off < streamHeaderSize {
			return nil, off, fmt.Errorf("core: stream %d header truncated", i)
		}
		s := Stream{
			SrcPatch: mesh.PatchID(int32(binary.LittleEndian.Uint32(buf[off:]))),
			SrcTask:  TaskTag(int32(binary.LittleEndian.Uint32(buf[off+4:]))),
			TgtPatch: mesh.PatchID(int32(binary.LittleEndian.Uint32(buf[off+8:]))),
			TgtTask:  TaskTag(int32(binary.LittleEndian.Uint32(buf[off+12:]))),
		}
		plen := int(binary.LittleEndian.Uint32(buf[off+16:]))
		off += streamHeaderSize
		if plen < 0 || len(buf)-off < plen {
			return nil, off, fmt.Errorf("core: stream %d payload truncated (%d of %d bytes)", i, len(buf)-off, plen)
		}
		if plen > 0 {
			s.Payload = append([]byte(nil), buf[off:off+plen]...)
			off += plen
		}
		out = append(out, s)
	}
	return out, off, nil
}

// EncodedFrameSize returns the wire size of an aggregated frame holding
// the given shards.
func EncodedFrameSize(shards [][]Stream) int {
	n := FrameHeaderSize
	for _, sh := range shards {
		n += EncodedSize(sh)
	}
	return n
}

// EncodeFrame packs a sharded multi-stream frame, appending to dst (which
// may be nil) and returning the extended slice. Empty shards are legal and
// preserved (the shard count is part of the wire format).
func EncodeFrame(dst []byte, shards [][]Stream) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, FrameMagic)
	dst = append(dst, FrameVersion, 0)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(shards)))
	for _, sh := range shards {
		dst = EncodeStreams(dst, sh)
	}
	return dst
}

// DecodeFrame unpacks an aggregated frame into its shards. It validates
// magic, version, shard count and every inner batch; any corruption or
// truncation is an error, never a panic.
func DecodeFrame(buf []byte) ([][]Stream, error) {
	if len(buf) < FrameHeaderSize {
		return nil, fmt.Errorf("core: frame truncated (len %d < header %d)", len(buf), FrameHeaderSize)
	}
	if magic := binary.LittleEndian.Uint16(buf); magic != FrameMagic {
		return nil, fmt.Errorf("core: bad frame magic %#04x", magic)
	}
	if buf[2] != FrameVersion {
		return nil, fmt.Errorf("core: unsupported frame version %d", buf[2])
	}
	if buf[3] != 0 {
		return nil, fmt.Errorf("core: reserved frame flags %#02x must be zero", buf[3])
	}
	shardCount := binary.LittleEndian.Uint32(buf[4:])
	off := FrameHeaderSize
	// Every shard carries at least its 4-byte count.
	if int64(shardCount)*4 > int64(len(buf)-off) {
		return nil, fmt.Errorf("core: shard count %d exceeds remaining %d bytes", shardCount, len(buf)-off)
	}
	shards := make([][]Stream, 0, shardCount)
	for i := uint32(0); i < shardCount; i++ {
		sh, next, err := decodeStreamsAt(buf, off)
		if err != nil {
			return nil, fmt.Errorf("core: frame shard %d: %w", i, err)
		}
		off = next
		shards = append(shards, sh)
	}
	if off != len(buf) {
		return nil, fmt.Errorf("core: %d trailing bytes after frame", len(buf)-off)
	}
	return shards, nil
}
