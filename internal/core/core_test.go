package core_test

import (
	"bytes"
	"testing"
	"testing/quick"

	"jsweep/internal/core"
	"jsweep/internal/mesh"
	"jsweep/internal/testprog"
)

func TestEngineGridDAG(t *testing.T) {
	spec := testprog.GridSpec{W: 5, H: 4}
	progs, sink := spec.Build()
	eng := core.NewEngine()
	for _, a := range progs {
		if err := eng.Register(a.Key, a, 0); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := spec.Want()
	for k, w := range want {
		got, ok := sink.Get(k)
		if !ok || got != w {
			t.Errorf("program %v = %d (ok=%v), want %d", k, got, ok, w)
		}
	}
	// 19 grid edges worth of streams: (W-1)*H + W*(H-1) = 16+15 = 31.
	if stats.Streams != 31 {
		t.Errorf("streams = %d, want 31", stats.Streams)
	}
	if eng.RemainingWork() != 0 {
		t.Errorf("remaining work = %d, want 0", eng.RemainingWork())
	}
}

// Paper Fig. 4 / §III-A1: two mutually-dependent reentrant programs must
// complete via partial computation instead of deadlocking.
func TestEnginePingPongReentrancy(t *testing.T) {
	sink := testprog.NewResults()
	ka := core.ProgramKey{Patch: 0, Task: 0}
	kb := core.ProgramKey{Patch: 1, Task: 0}
	const rounds = 9
	a := &testprog.PingPong{Key: ka, Peer: kb, Rounds: rounds, Starter: true, Sink: sink}
	b := &testprog.PingPong{Key: kb, Peer: ka, Rounds: rounds, Sink: sink}
	eng := core.NewEngine()
	if err := eng.Register(ka, a, 0); err != nil {
		t.Fatal(err)
	}
	if err := eng.Register(kb, b, 0); err != nil {
		t.Fatal(err)
	}
	stats, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	va, _ := sink.Get(ka)
	vb, _ := sink.Get(kb)
	// The ball increments once per send; a sends rounds times at even
	// positions, b at odd: final values 2*rounds-2 and 2*rounds-1.
	if va != 2*rounds-2 {
		t.Errorf("a = %d, want %d", va, 2*rounds-2)
	}
	if vb != 2*rounds-1 {
		t.Errorf("b = %d, want %d", vb, 2*rounds-1)
	}
	// Reentrancy implies many cycles per program, not one.
	if stats.Cycles < 2*rounds {
		t.Errorf("cycles = %d, want >= %d (partial computation)", stats.Cycles, 2*rounds)
	}
}

func TestEngineInitCalledOnce(t *testing.T) {
	spec := testprog.GridSpec{W: 3, H: 3}
	progs, _ := spec.Build()
	eng := core.NewEngine()
	for _, a := range progs {
		if err := eng.Register(a.Key, a, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for _, a := range progs {
		if a.InitSeen != 1 {
			t.Errorf("program %v: Init called %d times, want 1", a.Key, a.InitSeen)
		}
	}
}

func TestEngineDuplicateRegister(t *testing.T) {
	eng := core.NewEngine()
	k := core.ProgramKey{Patch: 0, Task: 0}
	a := &testprog.Accumulator{Key: k, Sink: testprog.NewResults()}
	if err := eng.Register(k, a, 0); err != nil {
		t.Fatal(err)
	}
	if err := eng.Register(k, a, 0); err == nil {
		t.Error("duplicate registration should fail")
	}
}

func TestEngineUnregisteredTarget(t *testing.T) {
	sink := testprog.NewResults()
	k := core.ProgramKey{Patch: 0, Task: 0}
	a := &testprog.Accumulator{
		Key: k, Sink: sink,
		Out: []core.ProgramKey{{Patch: 99, Task: 0}},
	}
	eng := core.NewEngine()
	if err := eng.Register(k, a, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err == nil {
		t.Error("stream to unregistered program should error")
	}
}

// Priority: with a diamond DAG and distinct priorities, the engine must
// run the higher-priority ready program first. We detect order via a
// recording sink.
func TestEnginePriorityOrder(t *testing.T) {
	sink := testprog.NewResults()
	var order []core.ProgramKey
	mkKey := func(i int) core.ProgramKey { return core.ProgramKey{Patch: mesh.PatchID(i), Task: 0} }
	// Three independent programs with priorities 1, 3, 2 → run 1,2,0.
	eng := core.NewEngine()
	recs := make([]*recorder, 3)
	for i, prio := range []int64{1, 3, 2} {
		recs[i] = &recorder{Accumulator: testprog.Accumulator{Key: mkKey(i), Sink: sink}, order: &order}
		if err := eng.Register(mkKey(i), recs[i], prio); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != mkKey(1) || order[1] != mkKey(2) || order[2] != mkKey(0) {
		t.Errorf("execution order = %v", order)
	}
}

type recorder struct {
	testprog.Accumulator
	order *[]core.ProgramKey
}

func (r *recorder) Compute() {
	*r.order = append(*r.order, r.Key)
	r.Accumulator.Compute()
}

func TestStreamCodecRoundTrip(t *testing.T) {
	streams := []core.Stream{
		{SrcPatch: 1, SrcTask: 2, TgtPatch: 3, TgtTask: 4, Payload: []byte{1, 2, 3}},
		{SrcPatch: -1, SrcTask: 0, TgtPatch: 7, TgtTask: -9, Payload: nil},
		{SrcPatch: 0, SrcTask: 0, TgtPatch: 0, TgtTask: 0, Payload: bytes.Repeat([]byte{0xAB}, 1000)},
	}
	buf := core.EncodeStreams(nil, streams)
	if len(buf) != core.EncodedSize(streams) {
		t.Errorf("encoded size %d != predicted %d", len(buf), core.EncodedSize(streams))
	}
	got, err := core.DecodeStreams(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(streams) {
		t.Fatalf("decoded %d streams, want %d", len(got), len(streams))
	}
	for i := range streams {
		if got[i].Src() != streams[i].Src() || got[i].Tgt() != streams[i].Tgt() {
			t.Errorf("stream %d keys mismatch", i)
		}
		if !bytes.Equal(got[i].Payload, streams[i].Payload) {
			t.Errorf("stream %d payload mismatch", i)
		}
	}
}

func TestStreamCodecProperty(t *testing.T) {
	f := func(sp, st, tp, tt int32, payload []byte) bool {
		in := []core.Stream{{
			SrcPatch: mesh.PatchID(sp), SrcTask: core.TaskTag(st),
			TgtPatch: mesh.PatchID(tp), TgtTask: core.TaskTag(tt),
			Payload: payload,
		}}
		out, err := core.DecodeStreams(core.EncodeStreams(nil, in))
		if err != nil || len(out) != 1 {
			return false
		}
		return bytes.Equal(out[0].Payload, in[0].Payload) &&
			out[0].Src() == in[0].Src() && out[0].Tgt() == in[0].Tgt()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStreamCodecRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		{},                    // empty
		{1, 0, 0, 0},          // count=1 but no stream
		{1, 0, 0, 0, 1, 2, 3}, // truncated header
	}
	for i, buf := range cases {
		if _, err := core.DecodeStreams(buf); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
	// Trailing bytes.
	buf := core.EncodeStreams(nil, []core.Stream{{Payload: []byte{1}}})
	buf = append(buf, 0xFF)
	if _, err := core.DecodeStreams(buf); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestEngineEmptyRun(t *testing.T) {
	eng := core.NewEngine()
	stats, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cycles != 0 {
		t.Errorf("cycles = %d, want 0", stats.Cycles)
	}
}

// Engine.Reset must reproduce the schedule of a fresh engine exactly:
// programs reactivate in registration order, Init is not repeated, and a
// reset run yields the same results as the first.
func TestEngineResetReplaysDeterministically(t *testing.T) {
	spec := testprog.GridSpec{W: 6, H: 5}
	progs, sink := spec.Build()
	eng := core.NewEngine()
	for _, a := range progs {
		if err := eng.Register(a.Key, a, 0); err != nil {
			t.Fatal(err)
		}
	}
	want := spec.Want()
	var firstCycles int64
	for round := 1; round <= 4; round++ {
		if round > 1 {
			for _, a := range progs {
				a.Reset()
			}
			eng.Reset()
		}
		stats, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		// Reset clears statistics: every round reports itself alone.
		if round == 1 {
			firstCycles = stats.Cycles
		} else if stats.Cycles != firstCycles {
			t.Fatalf("round %d: cycles %d, want per-round count %d", round, stats.Cycles, firstCycles)
		}
		for k, w := range want {
			got, ok := sink.Get(k)
			if !ok || got != w {
				t.Fatalf("round %d: %v = %d (ok=%v), want %d", round, k, got, ok, w)
			}
		}
	}
	for _, a := range progs {
		if a.InitSeen != 1 {
			t.Errorf("program %v: Init called %d times across rounds", a.Key, a.InitSeen)
		}
	}
}
