package ptrace

import (
	"math"
	"testing"
	"testing/quick"

	"jsweep/internal/geom"
	"jsweep/internal/mesh"
	"jsweep/internal/meshgen"
	"jsweep/internal/partition"
)

func grid(t *testing.T, n int) (*mesh.Structured3D, *mesh.Decomposition) {
	t.Helper()
	m, err := mesh.NewStructured3D(n, n, n, geom.Vec3{}, geom.Vec3{X: float64(n), Y: float64(n), Z: float64(n)})
	if err != nil {
		t.Fatal(err)
	}
	d, err := m.BlockDecompose(n/2, n/2, n/2)
	if err != nil {
		t.Fatal(err)
	}
	return m, d
}

func TestStepStraightLine(t *testing.T) {
	m, _ := grid(t, 4)
	// Fly +x from the centre of cell (0,1,1): each cell is 1 unit wide.
	p := Particle{
		Cell:      m.Index(0, 1, 1),
		Pos:       m.CellCenter(m.Index(0, 1, 1)),
		Dir:       geom.Vec3{X: 1},
		Remaining: 10,
		Weight:    1,
	}
	flown, face := Step(m, &p)
	if math.Abs(flown-0.5) > 1e-9 {
		t.Errorf("first step flew %v, want 0.5", flown)
	}
	if face != mesh.FaceXHi {
		t.Errorf("crossed face %d, want +x", face)
	}
}

func TestStepDiesInCell(t *testing.T) {
	m, _ := grid(t, 4)
	p := Particle{
		Cell:      m.Index(1, 1, 1),
		Pos:       m.CellCenter(m.Index(1, 1, 1)),
		Dir:       geom.Vec3{X: 1},
		Remaining: 0.25,
		Weight:    1,
	}
	flown, face := Step(m, &p)
	if face != -1 || flown != 0.25 || p.Remaining != 0 {
		t.Errorf("flown=%v face=%d remaining=%v", flown, face, p.Remaining)
	}
}

// Conservation: Σ tally + leaked == Σ weight·path, exactly up to float
// accumulation.
func TestTraceConservation(t *testing.T) {
	m, d := grid(t, 6)
	parts := SourceParticles(m, m.Index(3, 3, 3), 100, 7.5)
	res, err := TraceSequential(d, parts)
	if err != nil {
		t.Fatal(err)
	}
	var tallySum float64
	for _, v := range res.Tally {
		tallySum += v
	}
	got := tallySum + res.Leaked
	if math.Abs(got-res.TotalTracked)/res.TotalTracked > 1e-10 {
		t.Errorf("conservation: tally %v + leaked %v != total %v", tallySum, res.Leaked, res.TotalTracked)
	}
	if res.Leaked <= 0 {
		t.Error("paths of length 7.5 from the centre of a 6³ box must leak")
	}
}

// A straight +x particle from the domain centre deposits exactly one cell
// width in each cell it crosses.
func TestTraceKnownPath(t *testing.T) {
	m, d := grid(t, 4)
	start := m.Index(0, 2, 2)
	p := []Particle{{
		ID: 0, Cell: start,
		Pos:       geom.Vec3{X: 0.0, Y: 2.5, Z: 2.5},
		Dir:       geom.Vec3{X: 1},
		Remaining: 100,
		Weight:    2,
	}}
	res, err := TraceSequential(d, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		c := m.Index(i, 2, 2)
		if math.Abs(res.Tally[c]-2.0) > 1e-9 {
			t.Errorf("cell x=%d tally = %v, want 2.0", i, res.Tally[c])
		}
	}
	// 96 weighted units leak (100 − 4 crossed cells, × weight 2).
	if math.Abs(res.Leaked-192) > 1e-9 {
		t.Errorf("leaked = %v, want 192", res.Leaked)
	}
}

// The parallel trace (Safra termination) matches the sequential engine.
func TestTraceParallelMatchesSequential(t *testing.T) {
	m, d := grid(t, 6)
	parts := SourceParticles(m, m.Index(2, 3, 2), 200, 9.0)
	want, err := TraceSequential(d, parts)
	if err != nil {
		t.Fatal(err)
	}
	for _, topo := range [][2]int{{1, 2}, {2, 2}, {4, 1}} {
		got, err := Trace(d, parts, topo[0], topo[1])
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Leaked-want.Leaked) > 1e-9*math.Max(1, want.Leaked) {
			t.Errorf("%v: leaked %v != %v", topo, got.Leaked, want.Leaked)
		}
		for c := range want.Tally {
			if math.Abs(got.Tally[c]-want.Tally[c]) > 1e-9*(1+want.Tally[c]) {
				t.Fatalf("%v: cell %d tally %v != %v", topo, c, got.Tally[c], want.Tally[c])
			}
		}
	}
}

// Unstructured meshes: conservation on a tet ball.
func TestTraceUnstructuredBall(t *testing.T) {
	m, err := meshgen.Ball(6, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := partition.ByCount(m, 6, partition.RCB)
	if err != nil {
		t.Fatal(err)
	}
	// Find the cell nearest the origin.
	best := mesh.CellID(0)
	for c := 0; c < m.NumCells(); c++ {
		if m.CellCenter(mesh.CellID(c)).Norm() < m.CellCenter(best).Norm() {
			best = mesh.CellID(c)
		}
	}
	parts := SourceParticles(m, best, 64, 10.0)
	res, err := Trace(d, parts, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	var tallySum float64
	for _, v := range res.Tally {
		tallySum += v
	}
	if math.Abs(tallySum+res.Leaked-res.TotalTracked)/res.TotalTracked > 1e-9 {
		t.Errorf("conservation violated: %v + %v != %v", tallySum, res.Leaked, res.TotalTracked)
	}
	// Radius 3 ball, paths of 10: most of the path must leak.
	if res.Leaked < 0.5*res.TotalTracked {
		t.Errorf("leaked %v suspiciously small vs %v", res.Leaked, res.TotalTracked)
	}
}

// Particle codec round-trip.
func TestParticleCodec(t *testing.T) {
	f := func(id, cell int32, px, py, pz, rem, wt float64) bool {
		in := []Particle{{
			ID: id, Cell: mesh.CellID(cell),
			Pos:       geom.Vec3{X: px, Y: py, Z: pz},
			Dir:       geom.Vec3{X: 1, Y: 0, Z: 0},
			Remaining: rem, Weight: wt,
		}}
		out, err := decodeParticles(encodeParticles(in))
		if err != nil || len(out) != 1 {
			return false
		}
		a, b := in[0], out[0]
		return a.ID == b.ID && a.Cell == b.Cell && a.Pos == b.Pos &&
			a.Dir == b.Dir && eqNaN(a.Remaining, b.Remaining) && eqNaN(a.Weight, b.Weight)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func eqNaN(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

func TestParticleCodecRejectsGarbage(t *testing.T) {
	if _, err := decodeParticles([]byte{1, 2}); err == nil {
		t.Error("short payload accepted")
	}
	if _, err := decodeParticles([]byte{1, 0, 0, 0, 9}); err == nil {
		t.Error("truncated particle accepted")
	}
}

func TestTraceValidation(t *testing.T) {
	_, d := grid(t, 4)
	if _, err := TraceSequential(d, []Particle{{Cell: -1}}); err == nil {
		t.Error("invalid cell accepted")
	}
	if _, err := TraceSequential(d, []Particle{{Cell: 0, Remaining: -1}}); err == nil {
		t.Error("negative path accepted")
	}
}

func TestSourceParticlesDeterministicUnitDirs(t *testing.T) {
	m, _ := grid(t, 4)
	a := SourceParticles(m, 0, 50, 1)
	b := SourceParticles(m, 0, 50, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("source particles not deterministic")
		}
		if math.Abs(a[i].Dir.Norm()-1) > 1e-12 {
			t.Fatalf("particle %d direction not unit: %v", i, a[i].Dir.Norm())
		}
	}
}
