// Package ptrace implements the particle-trace component the paper's
// conclusions name as the second data-driven algorithm built on the
// patch-centric abstraction (§VIII): particles ray-march through the mesh,
// each patch-program advances the particles currently inside its patch,
// and particles crossing a patch boundary are streamed to the neighbour's
// program. Track lengths are tallied per cell (the standard track-length
// estimator).
//
// Unlike sweeps, the total workload is not known in advance (a particle's
// path depends on where it flies), so the runtime's general Safra
// termination detector is exercised instead of workload counters.
package ptrace

import (
	"encoding/binary"
	"fmt"
	"math"

	"jsweep/internal/core"
	"jsweep/internal/geom"
	"jsweep/internal/mesh"
	"jsweep/internal/runtime"
)

// Particle is one traced particle.
type Particle struct {
	// ID identifies the particle (stable across hops).
	ID int32
	// Cell is the mesh cell currently containing the particle.
	Cell mesh.CellID
	// Pos and Dir are the position and (unit) flight direction.
	Pos, Dir geom.Vec3
	// Remaining is the path length left to fly.
	Remaining float64
	// Weight scales the particle's tally contributions.
	Weight float64
}

// facePointer is the extra geometry ray tracing needs beyond mesh.Mesh;
// both mesh implementations provide it.
type facePointer interface {
	FacePoint(c mesh.CellID, i int) geom.Vec3
}

// stepEps is the relative nudge applied when crossing a face, avoiding
// re-intersection with the plane just crossed.
const stepEps = 1e-12

// Step advances a particle to the boundary of its current cell (or to the
// end of its path). It returns the path length flown inside the cell and
// the face index crossed (-1 when the particle dies inside the cell).
func Step(m mesh.Mesh, p *Particle) (flown float64, face int) {
	fp, ok := m.(facePointer)
	if !ok {
		panic("ptrace: mesh does not expose face points")
	}
	best := math.Inf(1)
	bestFace := -1
	nf := m.NumFaces(p.Cell)
	for f := 0; f < nf; f++ {
		fc := m.Face(p.Cell, f)
		denom := p.Dir.Dot(fc.Normal)
		if denom <= mesh.UpwindEps {
			continue // moving away from or parallel to this face
		}
		t := fp.FacePoint(p.Cell, f).Sub(p.Pos).Dot(fc.Normal) / denom
		if t < 0 {
			t = 0 // numerical: already on the plane
		}
		if t < best {
			best = t
			bestFace = f
		}
	}
	if bestFace == -1 {
		// Degenerate geometry: die in place.
		flown = p.Remaining
		p.Remaining = 0
		return flown, -1
	}
	if best >= p.Remaining {
		// Path ends inside this cell.
		flown = p.Remaining
		p.Pos = p.Pos.Add(p.Dir.Scale(flown))
		p.Remaining = 0
		return flown, -1
	}
	flown = best
	nudge := best * stepEps
	if nudge < 1e-15 {
		nudge = 1e-15
	}
	p.Pos = p.Pos.Add(p.Dir.Scale(best + nudge))
	p.Remaining -= flown
	return flown, bestFace
}

// particleWire is the stream payload encoding:
//
//	count:u32 { id:i32 cell:i32 pos:3×f64 dir:3×f64 remaining:f64 weight:f64 }*
const particleBytes = 4 + 4 + 8*8

func encodeParticles(ps []Particle) []byte {
	buf := make([]byte, 0, 4+len(ps)*particleBytes)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ps)))
	for i := range ps {
		p := &ps[i]
		buf = binary.LittleEndian.AppendUint32(buf, uint32(p.ID))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(p.Cell))
		for _, v := range []float64{p.Pos.X, p.Pos.Y, p.Pos.Z, p.Dir.X, p.Dir.Y, p.Dir.Z, p.Remaining, p.Weight} {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	return buf
}

func decodeParticles(buf []byte) ([]Particle, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("ptrace: truncated particle payload")
	}
	n := binary.LittleEndian.Uint32(buf)
	if len(buf)-4 != int(n)*particleBytes {
		return nil, fmt.Errorf("ptrace: payload size %d != %d particles", len(buf)-4, n)
	}
	out := make([]Particle, n)
	off := 4
	rd := func() float64 {
		v := math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
		return v
	}
	for i := range out {
		out[i].ID = int32(binary.LittleEndian.Uint32(buf[off:]))
		out[i].Cell = mesh.CellID(int32(binary.LittleEndian.Uint32(buf[off+4:])))
		off += 8
		out[i].Pos = geom.Vec3{X: rd(), Y: rd(), Z: rd()}
		out[i].Dir = geom.Vec3{X: rd(), Y: rd(), Z: rd()}
		out[i].Remaining = rd()
		out[i].Weight = rd()
	}
	return out, nil
}

// Program is the particle-trace patch-program: task 0 on every patch.
type Program struct {
	d     *mesh.Decomposition
	patch mesh.PatchID

	queue []Particle
	// Tally accumulates weight·track-length per local cell.
	tally []float64
	// Leaked sums the weight·remaining-path of particles that left the
	// domain through the patch boundary.
	leaked  float64
	pending []core.Stream

	// Traced counts particles processed by this program (diagnostics).
	Traced int64
}

// NewProgram builds the trace program of one patch with its initial
// particles (each must start inside the patch).
func NewProgram(d *mesh.Decomposition, patch mesh.PatchID, initial []Particle) *Program {
	return &Program{
		d:     d,
		patch: patch,
		queue: append([]Particle(nil), initial...),
		tally: make([]float64, len(d.Cells[patch])),
	}
}

// Key returns the program's (patch, 0) key.
func (p *Program) Key() core.ProgramKey {
	return core.ProgramKey{Patch: p.patch, Task: 0}
}

// Tally exposes the per-local-cell track-length tallies.
func (p *Program) Tally() []float64 { return p.tally }

// Leaked returns the weighted path length lost through the domain
// boundary.
func (p *Program) Leaked() float64 { return p.leaked }

// Init implements core.PatchProgram.
func (p *Program) Init() {}

// Input implements core.PatchProgram: receive immigrating particles.
func (p *Program) Input(s core.Stream) {
	ps, err := decodeParticles(s.Payload)
	if err != nil {
		panic(err)
	}
	p.queue = append(p.queue, ps...)
}

// Compute implements core.PatchProgram: trace every queued particle until
// it dies or leaves the patch.
func (p *Program) Compute() {
	if len(p.queue) == 0 {
		return
	}
	m := p.d.Mesh
	emigrants := map[mesh.PatchID][]Particle{}
	for len(p.queue) > 0 {
		part := p.queue[len(p.queue)-1]
		p.queue = p.queue[:len(p.queue)-1]
		p.Traced++
		for part.Remaining > 0 {
			if p.d.CellPatch[part.Cell] != p.patch {
				panic(fmt.Sprintf("ptrace: particle %d in cell %d owned by patch %d, traced by %d",
					part.ID, part.Cell, p.d.CellPatch[part.Cell], p.patch))
			}
			local := p.d.Local[part.Cell]
			flown, face := Step(m, &part)
			p.tally[local] += part.Weight * flown
			if face < 0 {
				break // died in the cell
			}
			nb := m.Face(part.Cell, face).Neighbor
			if nb < 0 {
				// Left the domain.
				p.leaked += part.Weight * part.Remaining
				part.Remaining = 0
				break
			}
			part.Cell = nb
			if tgt := p.d.CellPatch[nb]; tgt != p.patch {
				emigrants[tgt] = append(emigrants[tgt], part)
				break
			}
		}
	}
	// One aggregated stream per destination patch (deterministic order).
	for tgt := mesh.PatchID(0); int(tgt) < p.d.NumPatches(); tgt++ {
		ps, ok := emigrants[tgt]
		if !ok {
			continue
		}
		p.pending = append(p.pending, core.Stream{
			SrcPatch: p.patch, SrcTask: 0,
			TgtPatch: tgt, TgtTask: 0,
			Payload: encodeParticles(ps),
		})
	}
}

// Output implements core.PatchProgram.
func (p *Program) Output() (core.Stream, bool) {
	if len(p.pending) == 0 {
		return core.Stream{}, false
	}
	s := p.pending[0]
	p.pending = p.pending[1:]
	return s, true
}

// VoteToHalt implements core.PatchProgram.
func (p *Program) VoteToHalt() bool { return len(p.queue) == 0 }

var _ core.PatchProgram = (*Program)(nil)

// Result of a particle-trace run.
type Result struct {
	// Tally is the weight·track-length per mesh cell.
	Tally []float64
	// Leaked is the weighted path length that left the domain.
	Leaked float64
	// TotalTracked is Σ weight·(initial path − remaining): with no
	// absorption it equals Σ tally + leaked.
	TotalTracked float64
}

// Trace runs a particle trace over a decomposition on the parallel
// runtime (procs × workers; Safra termination, since the workload is not
// known in advance). Initial particles must carry a valid Cell.
func Trace(d *mesh.Decomposition, particles []Particle, procs, workers int) (*Result, error) {
	if err := validate(d, particles); err != nil {
		return nil, err
	}
	rt, err := runtime.New(runtime.Config{Procs: procs, Workers: workers, Termination: runtime.Safra})
	if err != nil {
		return nil, err
	}
	d.Place(procs)
	progs := make([]*Program, d.NumPatches())
	byPatch := make([][]Particle, d.NumPatches())
	var total float64
	for _, pt := range particles {
		p := d.CellPatch[pt.Cell]
		byPatch[p] = append(byPatch[p], pt)
		total += pt.Weight * pt.Remaining
	}
	for p := range progs {
		progs[p] = NewProgram(d, mesh.PatchID(p), byPatch[p])
		if err := rt.Register(progs[p].Key(), progs[p], 0, d.Owner[p]); err != nil {
			return nil, err
		}
	}
	if _, err := rt.Run(); err != nil {
		return nil, err
	}
	return reduce(d, progs, total), nil
}

// TraceSequential runs the same trace on the sequential engine (the
// validation reference).
func TraceSequential(d *mesh.Decomposition, particles []Particle) (*Result, error) {
	if err := validate(d, particles); err != nil {
		return nil, err
	}
	eng := core.NewEngine()
	progs := make([]*Program, d.NumPatches())
	byPatch := make([][]Particle, d.NumPatches())
	var total float64
	for _, pt := range particles {
		p := d.CellPatch[pt.Cell]
		byPatch[p] = append(byPatch[p], pt)
		total += pt.Weight * pt.Remaining
	}
	for p := range progs {
		progs[p] = NewProgram(d, mesh.PatchID(p), byPatch[p])
		if err := eng.Register(progs[p].Key(), progs[p], 0); err != nil {
			return nil, err
		}
	}
	if _, err := eng.Run(); err != nil {
		return nil, err
	}
	return reduce(d, progs, total), nil
}

func validate(d *mesh.Decomposition, particles []Particle) error {
	nc := d.Mesh.NumCells()
	for i, pt := range particles {
		if pt.Cell < 0 || int(pt.Cell) >= nc {
			return fmt.Errorf("ptrace: particle %d starts in invalid cell %d", i, pt.Cell)
		}
		if pt.Remaining < 0 || pt.Weight < 0 {
			return fmt.Errorf("ptrace: particle %d has negative path or weight", i)
		}
	}
	return nil
}

func reduce(d *mesh.Decomposition, progs []*Program, total float64) *Result {
	res := &Result{Tally: make([]float64, d.Mesh.NumCells()), TotalTracked: total}
	for p, prog := range progs {
		for v, c := range d.Cells[p] {
			res.Tally[c] += prog.Tally()[v]
		}
		res.Leaked += prog.Leaked()
	}
	return res
}

// SourceParticles generates n deterministic particles starting at the
// centroid of the given cell, with quasi-random directions from a
// low-discrepancy lattice (no RNG, so runs are reproducible everywhere).
func SourceParticles(m mesh.Mesh, cell mesh.CellID, n int, pathLength float64) []Particle {
	out := make([]Particle, n)
	ctr := m.CellCenter(cell)
	const g1 = 0.6180339887498949 // 1/φ
	const g2 = 0.7548776662466927 // plastic-number lattice
	for i := range out {
		u := math.Mod(float64(i+1)*g1, 1)
		v := math.Mod(float64(i+1)*g2, 1)
		z := 2*u - 1
		phi := 2 * math.Pi * v
		s := math.Sqrt(1 - z*z)
		out[i] = Particle{
			ID:        int32(i),
			Cell:      cell,
			Pos:       ctr,
			Dir:       geom.Vec3{X: s * math.Cos(phi), Y: s * math.Sin(phi), Z: z},
			Remaining: pathLength,
			Weight:    1,
		}
	}
	return out
}
