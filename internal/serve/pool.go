// Warm node pool of the serve daemon (the paper's long-lived-service
// model lifted from sweeps to whole jobs): a finished job's problem,
// decomposition and solver session — processes, worker goroutines,
// program objects, the cached coarse graph — are parked keyed by the
// solve shape and revived for the next job with the same shape, instead
// of being rebuilt from the mesh up. Solver.ResetSolve clears the one
// piece of cross-solve numerical state (the lagged-flux store), so a
// warm run is bitwise identical to a cold one.
package serve

import (
	"container/list"
	"sync"

	"jsweep/internal/mesh"
	"jsweep/internal/nodespec"
	"jsweep/internal/sweep"
	"jsweep/internal/transport"
)

// warmNode is one parked solver session.
type warmNode struct {
	prob   *transport.Problem
	d      *mesh.Decomposition
	solver *sweep.Solver
}

// poolKey reduces a spec to its solver-shaping fields: backend, wire
// and iteration bounds don't change the session structure, so jobs
// differing only there share warm nodes. Tol/MaxIters feed IterConfig
// per run; Backend/Wire are launch concerns the daemon overrides.
func poolKey(spec nodespec.Spec) (string, error) {
	k := spec.Defaulted()
	k.Backend = ""
	k.Wire = ""
	k.Tol = 0
	k.MaxIters = 0
	return nodespec.MarshalSpec(k)
}

// nodePool holds idle warm nodes with LRU eviction. All methods are
// safe for concurrent use; a node is owned by exactly one job between
// take and put.
type nodePool struct {
	mu   sync.Mutex
	max  int
	lru  *list.List               // front = most recently parked
	byID map[*list.Element]string // element -> key (for diagnostics)
	idle map[string][]*list.Element
	ents map[*list.Element]*warmNode
}

func newNodePool(max int) *nodePool {
	return &nodePool{
		max:  max,
		lru:  list.New(),
		byID: make(map[*list.Element]string),
		idle: make(map[string][]*list.Element),
		ents: make(map[*list.Element]*warmNode),
	}
}

// take revives an idle warm node for the key, or returns nil (the
// caller builds cold).
func (p *nodePool) take(key string) *warmNode {
	p.mu.Lock()
	defer p.mu.Unlock()
	elems := p.idle[key]
	if len(elems) == 0 {
		return nil
	}
	e := elems[len(elems)-1]
	p.idle[key] = elems[:len(elems)-1]
	n := p.ents[e]
	p.lru.Remove(e)
	delete(p.ents, e)
	delete(p.byID, e)
	return n
}

// put parks a node after a successful job, evicting the least recently
// used session beyond capacity (its runtime workers are stopped). A
// zero-capacity pool closes the node immediately.
func (p *nodePool) put(key string, n *warmNode) {
	var evict []*warmNode
	p.mu.Lock()
	if p.max <= 0 {
		p.mu.Unlock()
		n.solver.Close()
		return
	}
	e := p.lru.PushFront(n)
	p.ents[e] = n
	p.byID[e] = key
	p.idle[key] = append(p.idle[key], e)
	for p.lru.Len() > p.max {
		back := p.lru.Back()
		k := p.byID[back]
		evict = append(evict, p.ents[back])
		p.lru.Remove(back)
		delete(p.ents, back)
		delete(p.byID, back)
		elems := p.idle[k]
		for i, el := range elems {
			if el == back {
				p.idle[k] = append(elems[:i], elems[i+1:]...)
				break
			}
		}
		if len(p.idle[k]) == 0 {
			delete(p.idle, k)
		}
	}
	p.mu.Unlock()
	for _, v := range evict {
		v.solver.Close()
	}
}

// size reports the idle node count (tests and Hello diagnostics).
func (p *nodePool) size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lru.Len()
}

// closeAll stops every idle session (daemon shutdown).
func (p *nodePool) closeAll() {
	p.mu.Lock()
	var all []*warmNode
	for _, n := range p.ents {
		all = append(all, n)
	}
	p.lru.Init()
	p.byID = make(map[*list.Element]string)
	p.idle = make(map[string][]*list.Element)
	p.ents = make(map[*list.Element]*warmNode)
	p.mu.Unlock()
	for _, n := range all {
		n.solver.Close()
	}
}
