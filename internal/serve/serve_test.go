package serve

// Daemon tests: admission control (FIFO queue, typed rejections),
// per-job timeout isolation, cooperative cancellation freeing slots,
// concurrent jobs staying bitwise-correct against the serial reference,
// warm-pool bitwise parity, disconnect hygiene (no leaked goroutines),
// the result-stream Collector/Reporter pair, and multi-host placement
// across two daemons.

import (
	"bytes"
	"context"
	"errors"
	"math"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"jsweep/internal/nodespec"
	"jsweep/internal/transport"
)

func quickSpec() nodespec.Spec {
	return nodespec.Spec{Mesh: "kobayashi", N: 8, SnOrder: 2, Procs: 2, Workers: 2, Tol: 1e-8}
}

func cyclicSpec() nodespec.Spec {
	return nodespec.Spec{Mesh: "cyclic", Cells: 300, SnOrder: 2, Groups: 2, Patch: 80,
		Procs: 2, Workers: 2, Grain: 8, Tol: 1e-9, MaxIters: 400}
}

// slowSpec runs long enough for cancellation and timeout tests to act:
// the scattering iteration contracts the residual geometrically, so an
// unreachable tolerance keeps it iterating for many seconds (until the
// flux hits an exact floating-point fixed point). The cyclic mesh is
// unsuitable here — it reaches its exact fixed point within
// milliseconds.
func slowSpec() nodespec.Spec {
	return nodespec.Spec{Mesh: "kobayashi", N: 12, SnOrder: 4, Scatter: true,
		Procs: 2, Workers: 2, Grain: 32, Tol: 1e-300, MaxIters: 1_000_000}
}

func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	srv, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestServeConcurrentJobsBitwise: one daemon runs two different jobs at
// once, each verified bitwise against the serial reference, with live
// progress streaming; a different-shaped pair must not cross-talk.
func TestServeConcurrentJobsBitwise(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon solve skipped in -short mode")
	}
	srv := startServer(t, Config{MaxJobs: 2, Log: testWriter(t)})
	c := NewClient(srv.Addr())
	ctx := context.Background()

	var kobaEvents, cyclicEvents atomic.Int64
	h1, err := c.Submit(ctx, Request{Spec: quickSpec(), Verify: true,
		Progress: func(nodespec.Progress) { kobaEvents.Add(1) }})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := c.Submit(ctx, Request{Spec: cyclicSpec(), Verify: true,
		Progress: func(nodespec.Progress) { cyclicEvents.Add(1) }})
	if err != nil {
		t.Fatal(err)
	}
	r1, err1 := h1.Wait(ctx)
	r2, err2 := h2.Wait(ctx)
	if err1 != nil || err2 != nil {
		t.Fatalf("jobs failed: %v / %v", err1, err2)
	}
	for i, r := range []*nodespec.NodeResult{r1, r2} {
		if !r.Verified {
			t.Fatalf("job %d not verified against the serial reference", i+1)
		}
		if r.Result == nil || !r.Result.Converged || len(r.Result.Phi) == 0 {
			t.Fatalf("job %d result incomplete: %+v", i+1, r.Result)
		}
		if r.FluxHash == "" || r.Cluster.CoarseClusters != 0 && r.Stats.CoarseClusters == 0 {
			t.Fatalf("job %d stats incomplete: %+v", i+1, r)
		}
	}
	if kobaEvents.Load() == 0 || cyclicEvents.Load() == 0 {
		t.Fatalf("no progress streamed: koba=%d cyclic=%d", kobaEvents.Load(), cyclicEvents.Load())
	}
	if r1.FluxHash == r2.FluxHash {
		t.Fatal("different problems reported the same flux hash")
	}
}

// TestServeAdmission: FIFO queue with typed rejection at capacity. One
// slot, one queue position: the first job runs (held by the test gate),
// the second queues at position 1, the third gets a typed queue-full
// AdmissionError without ever starting.
func TestServeAdmission(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon solve skipped in -short mode")
	}
	release := make(chan struct{})
	srv := startServer(t, Config{MaxJobs: 1, QueueDepth: 1, Log: testWriter(t),
		onStart: func(string) { <-release }})
	c := NewClient(srv.Addr())
	ctx := context.Background()

	h1, err := c.Submit(ctx, Request{Spec: quickSpec()})
	if err != nil {
		t.Fatal(err)
	}
	<-h1.Started()

	h2, err := c.Submit(ctx, Request{Spec: quickSpec()})
	if err != nil {
		t.Fatal(err)
	}
	if h2.QueuePos() != 1 {
		t.Fatalf("second job queue position = %d, want 1", h2.QueuePos())
	}

	_, err = c.Submit(ctx, Request{Spec: quickSpec()})
	var adm *AdmissionError
	if !errors.As(err, &adm) || adm.Code != CodeQueueFull {
		t.Fatalf("over-capacity submission: got %v, want AdmissionError %s", err, CodeQueueFull)
	}

	// An invalid spec is rejected with its typed validation detail, and
	// never counts against the queue.
	bad := quickSpec()
	bad.Mesh = "torus"
	_, err = c.Submit(ctx, Request{Spec: bad})
	if !errors.As(err, &adm) || adm.Code != CodeInvalidSpec || !strings.Contains(adm.Detail, "mesh") {
		t.Fatalf("invalid spec: got %v, want AdmissionError %s naming the field", err, CodeInvalidSpec)
	}

	close(release)
	if _, err := h1.Wait(ctx); err != nil {
		t.Fatalf("gated job failed: %v", err)
	}
	if _, err := h2.Wait(ctx); err != nil {
		t.Fatalf("queued job failed after slot freed: %v", err)
	}
}

// TestServeCancelFreesSlot: cancelling a running job unwinds it
// cooperatively and releases its slot to the next submission.
func TestServeCancelFreesSlot(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon solve skipped in -short mode")
	}
	srv := startServer(t, Config{MaxJobs: 1, Log: testWriter(t)})
	c := NewClient(srv.Addr())
	ctx := context.Background()

	firstIter := make(chan struct{})
	var once atomic.Bool
	h1, err := c.Submit(ctx, Request{Spec: slowSpec(), Progress: func(nodespec.Progress) {
		if once.CompareAndSwap(false, true) {
			close(firstIter)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-firstIter:
	case <-time.After(30 * time.Second):
		t.Fatal("job never iterated")
	}
	h1.Cancel("test cancel")
	if _, err := h1.Wait(ctx); err == nil || !strings.Contains(err.Error(), "cancel") {
		t.Fatalf("cancelled job: got %v, want cancellation error", err)
	}

	h2, err := c.Submit(ctx, Request{Spec: quickSpec(), Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if r, err := h2.Wait(ctx); err != nil || !r.Verified {
		t.Fatalf("job after cancel: %v %+v", err, r)
	}
}

// TestServeTimeoutIsolation: a per-job timeout kills only its own job;
// a concurrent job without one completes untouched.
func TestServeTimeoutIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon solve skipped in -short mode")
	}
	srv := startServer(t, Config{MaxJobs: 2, Log: testWriter(t)})
	c := NewClient(srv.Addr())
	ctx := context.Background()

	h1, err := c.Submit(ctx, Request{Spec: slowSpec(), Timeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := c.Submit(ctx, Request{Spec: quickSpec(), Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h1.Wait(ctx); err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("timed-out job: got %v, want timeout error", err)
	}
	if r, err := h2.Wait(ctx); err != nil || !r.Verified {
		t.Fatalf("sibling job hit by the other's timeout: %v %+v", err, r)
	}
}

// TestServeWarmPool: a second same-shaped job revives the parked solver
// session and its flux stays bitwise identical to the cold run.
func TestServeWarmPool(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon solve skipped in -short mode")
	}
	srv := startServer(t, Config{MaxJobs: 1, PoolSize: 2, Log: testWriter(t)})
	c := NewClient(srv.Addr())
	ctx := context.Background()

	run := func() *nodespec.NodeResult {
		t.Helper()
		h, err := c.Submit(ctx, Request{Spec: quickSpec()})
		if err != nil {
			t.Fatal(err)
		}
		r, err := h.Wait(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	cold := run()
	if srv.WarmNodes() != 1 {
		t.Fatalf("warm pool after first job: %d nodes, want 1", srv.WarmNodes())
	}
	warm := run()
	if cold.FluxHash != warm.FluxHash {
		t.Fatalf("warm run diverged: %s != %s", warm.FluxHash, cold.FluxHash)
	}
	for g := range cold.Result.Phi {
		for i := range cold.Result.Phi[g] {
			if math.Float64bits(cold.Result.Phi[g][i]) != math.Float64bits(warm.Result.Phi[g][i]) {
				t.Fatalf("group %d cell %d: warm flux bits differ", g, i)
			}
		}
	}
	if cold.Result.Iterations != warm.Result.Iterations {
		t.Fatalf("iterations: cold %d warm %d", cold.Result.Iterations, warm.Result.Iterations)
	}
}

// TestServeDisconnectNoLeak: a client vanishing mid-job cancels the job
// and the daemon returns to its idle goroutine count — no leaked
// handlers, watchers, or solver workers.
func TestServeDisconnectNoLeak(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon solve skipped in -short mode")
	}
	srv, err := Start(Config{MaxJobs: 1, PoolSize: 0, Log: testWriter(t)})
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(srv.Addr())
	ctx := context.Background()
	before := runtime.NumGoroutine()

	firstIter := make(chan struct{})
	var once atomic.Bool
	h, err := c.Submit(ctx, Request{Spec: slowSpec(), Progress: func(nodespec.Progress) {
		if once.CompareAndSwap(false, true) {
			close(firstIter)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-firstIter:
	case <-time.After(30 * time.Second):
		t.Fatal("job never iterated")
	}
	h.conn.Close() // the client dies without a Cancel frame
	<-h.done

	// The daemon must unwind the job and settle back to idle.
	deadline := time.Now().Add(30 * time.Second)
	for {
		hello, err := c.Hello(ctx)
		if err == nil && hello.Running == 0 && hello.Busy == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never unwound the disconnected job: %+v %v", hello, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	srv.Close()
	for i := 0; ; i++ {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= before {
			break
		} else if i >= 100 {
			t.Fatalf("goroutines leaked: %d before, %d after close", before, g)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestServeShutdownRejects: a draining daemon rejects with the typed
// shutting-down code. (White-box: flip the flag without closing the
// listener so the lane still answers.)
func TestServeShutdownRejects(t *testing.T) {
	srv := startServer(t, Config{Log: testWriter(t)})
	srv.mu.Lock()
	srv.shutdown = true
	srv.mu.Unlock()
	_, err := NewClient(srv.Addr()).Submit(context.Background(), Request{Spec: quickSpec()})
	var adm *AdmissionError
	if !errors.As(err, &adm) || adm.Code != CodeShuttingDown {
		t.Fatalf("draining daemon: got %v, want AdmissionError %s", err, CodeShuttingDown)
	}
	srv.mu.Lock()
	srv.shutdown = false
	srv.mu.Unlock()
}

// TestLaunchHostsTwoDaemons: multi-host placement — a 2-rank cluster
// spread over two daemons of one slot each, verified against the serial
// reference, with the cross-daemon hash certificate and both placements
// recorded.
func TestLaunchHostsTwoDaemons(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon cluster solve skipped in -short mode")
	}
	d1 := startServer(t, Config{Slots: 1, Log: testWriter(t)})
	d2 := startServer(t, Config{Slots: 1, Log: testWriter(t)})

	var events atomic.Int64
	res, err := LaunchHosts(context.Background(), HostConfig{
		Spec:     quickSpec(),
		Daemons:  []string{d1.Addr(), d2.Addr()},
		Verify:   true,
		Log:      testWriter(t),
		Progress: func(nodespec.Progress) { events.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Placements) != 2 {
		t.Fatalf("placements: %+v, want one slice per daemon", res.Placements)
	}
	if res.Placements[0].RankHi != 1 || res.Placements[1].RankLo != 1 {
		t.Fatalf("rank slices not contiguous: %+v", res.Placements)
	}
	if !res.Result.Verified || res.FluxHash == "" || res.Result.Result == nil || len(res.Result.Result.Phi) == 0 {
		t.Fatalf("placed cluster result incomplete: %+v", res.Result)
	}
	if events.Load() == 0 {
		t.Fatal("no progress streamed from the placed cluster")
	}

	// Over-capacity placement fails up front with the slot arithmetic.
	big := quickSpec()
	big.Procs = 5
	if _, err := LaunchHosts(context.Background(), HostConfig{
		Spec: big, Daemons: []string{d1.Addr(), d2.Addr()}, Log: testWriter(t),
	}); err == nil || !strings.Contains(err.Error(), "free slots") {
		t.Fatalf("over-capacity placement: got %v, want free-slots error", err)
	}
}

// TestCollectorReporter: the result stream in isolation — progress
// events then a bit-exact terminal result, and the error path.
func TestCollectorReporter(t *testing.T) {
	col, err := NewCollector()
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	want := &nodespec.NodeResult{
		Result: &transport.Result{
			Phi:        [][]float64{{1.0, math.Nextafter(1, 2), math.Copysign(0, -1)}},
			Iterations: 7, Residual: 3e-9, Converged: true,
		},
		Balance:  []transport.BalanceReport{{Production: 1, Absorption: 0.5, Leakage: 0.5}},
		FluxHash: "abc123",
		Verified: true,
		Wall:     time.Second,
	}
	go func() {
		rep, err := DialReporter(col.Addr())
		if err != nil {
			t.Error(err)
			return
		}
		defer rep.Close()
		rep.Progress(nodespec.Progress{Progress: transport.Progress{Iteration: 1, Residual: 0.5}})
		rep.Result(want)
	}()
	var evs []nodespec.Progress
	got, err := col.Collect(context.Background(), func(ev nodespec.Progress) { evs = append(evs, ev) })
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Iteration != 1 {
		t.Fatalf("progress events: %+v", evs)
	}
	if got.FluxHash != want.FluxHash || !got.Verified || got.Wall != want.Wall ||
		got.Result.Iterations != 7 || !got.Result.Converged {
		t.Fatalf("collected result: %+v", got)
	}
	for i := range want.Result.Phi[0] {
		if math.Float64bits(got.Result.Phi[0][i]) != math.Float64bits(want.Result.Phi[0][i]) {
			t.Fatalf("flux cell %d: bits differ", i)
		}
	}

	// Error path: the node reports a failure.
	col2, err := NewCollector()
	if err != nil {
		t.Fatal(err)
	}
	defer col2.Close()
	go func() {
		rep, err := DialReporter(col2.Addr())
		if err != nil {
			t.Error(err)
			return
		}
		defer rep.Close()
		rep.JobError(errors.New("solver blew up"))
	}()
	if _, err := col2.Collect(context.Background(), nil); err == nil || !strings.Contains(err.Error(), "solver blew up") {
		t.Fatalf("job error path: %v", err)
	}
}

// testWriter adapts t.Logf, keeping daemon chatter inside the test's
// own output.
type logWriter struct{ t *testing.T }

func (w logWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

func testWriter(t *testing.T) logWriter { return logWriter{t} }
