package serve

// Observability tests: the warm-pool hit/miss counters pinned across a
// warm-reuse job sequence, the Stats snapshot, the /metrics, /healthz
// and /statusz endpoints, and the solve trace riding back inside the
// result meta.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"jsweep/internal/nodespec"
	"jsweep/internal/obs"
)

// runJob submits spec and waits for its result.
func runJob(t *testing.T, c *Client, spec nodespec.Spec) *nodespec.NodeResult {
	t.Helper()
	ctx := context.Background()
	h, err := c.Submit(ctx, Request{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	r, err := h.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestServeWarmPoolCounters pins the warm-pool hit/miss counts across a
// warm-reuse sequence: cold koba (miss), warm koba (hit), cold cyclic
// (miss, different shape), warm koba again (hit) — and the Stats
// snapshot must agree field by field.
func TestServeWarmPoolCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon solve skipped in -short mode")
	}
	srv := startServer(t, Config{MaxJobs: 1, PoolSize: 2, Log: testWriter(t)})
	c := NewClient(srv.Addr())

	runJob(t, c, quickSpec())  // cold: miss
	runJob(t, c, quickSpec())  // warm: hit
	runJob(t, c, cyclicSpec()) // different shape: miss
	runJob(t, c, quickSpec())  // warm again: hit

	st := srv.Stats()
	if st.WarmMisses != 2 || st.WarmHits != 2 {
		t.Fatalf("warm counters: hits=%d misses=%d, want 2/2", st.WarmHits, st.WarmMisses)
	}
	if st.WarmNodes != 2 {
		t.Fatalf("warm pool size: %d, want 2 (koba + cyclic parked)", st.WarmNodes)
	}
	if st.JobsDone != 4 || st.JobsFailed != 0 || st.Abandoned != 0 {
		t.Fatalf("job counts: done=%d failed=%d abandoned=%d, want 4/0/0",
			st.JobsDone, st.JobsFailed, st.Abandoned)
	}
	if st.Admissions["accepted"] != 4 {
		t.Fatalf("accepted admissions: %d, want 4", st.Admissions["accepted"])
	}
	if st.Queued != 0 || st.Running != 0 || st.BusySlots != 0 {
		t.Fatalf("idle daemon reports queued=%d running=%d busy=%d", st.Queued, st.Running, st.BusySlots)
	}
	if st.Slots <= 0 {
		t.Fatalf("advertised slots: %d, want > 0", st.Slots)
	}
}

// TestServeResultTrace: a full job's result carries the solve's span
// trace (per-iteration phases), and the daemon's own tracer holds the
// job lifecycle.
func TestServeResultTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon solve skipped in -short mode")
	}
	srv := startServer(t, Config{MaxJobs: 1, Log: testWriter(t)})
	c := NewClient(srv.Addr())

	r := runJob(t, c, quickSpec())
	phases := map[string]int{}
	for _, ev := range r.Trace {
		phases[ev.Name]++
	}
	iters := r.Result.Iterations
	for _, name := range []string{"iter.source", "iter.sweep", "iter.residual"} {
		if phases[name] != iters {
			t.Fatalf("trace has %d %s events, want %d (one per iteration); phases=%v",
				phases[name], name, iters, phases)
		}
	}

	lifecycle := map[string]bool{}
	for _, ev := range srv.Trace() {
		lifecycle[ev.Name] = true
	}
	for _, name := range []string{"job.submitted", "job.granted", "job.running", "job.result"} {
		if !lifecycle[name] {
			t.Fatalf("server trace missing %s: %v", name, lifecycle)
		}
	}
}

// TestServeMetricsEndpoints: /metrics serves Prometheus text with the
// queue/slot/warm-pool families, /healthz answers ok, and /statusz is
// one JSON object carrying stats, metric snapshots and the job trace.
func TestServeMetricsEndpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon solve skipped in -short mode")
	}
	srv := startServer(t, Config{MaxJobs: 1, MetricsAddr: "127.0.0.1:0", Log: testWriter(t)})
	if srv.MetricsAddr() == "" {
		t.Fatal("MetricsAddr empty after Start with MetricsAddr configured")
	}
	c := NewClient(srv.Addr())
	runJob(t, c, quickSpec())

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.MetricsAddr(), path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	metrics, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("/metrics content type: %q", ctype)
	}
	for _, want := range []string{
		"# TYPE jsweep_serve_queue_depth gauge",
		"jsweep_serve_slots_busy 0",
		"jsweep_serve_slots_total",
		"jsweep_serve_warm_pool_hits_total 0",
		"jsweep_serve_warm_pool_misses_total 1",
		`jsweep_serve_admissions_total{code="accepted"} 1`,
		`jsweep_serve_job_duration_seconds_count{outcome="ok"} 1`,
		"jsweep_serve_grant_wait_seconds_count 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, metrics)
		}
	}

	health, _ := get("/healthz")
	if health != "ok\n" {
		t.Fatalf("/healthz = %q", health)
	}

	statusz, ctype := get("/statusz")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("/statusz content type: %q", ctype)
	}
	var body struct {
		Addr    string               `json:"addr"`
		Stats   Stats                `json:"stats"`
		Metrics []obs.MetricSnapshot `json:"metrics"`
		Trace   []obs.Event          `json:"trace"`
	}
	if err := json.Unmarshal([]byte(statusz), &body); err != nil {
		t.Fatalf("/statusz not JSON: %v\n%s", err, statusz)
	}
	if body.Addr != srv.Addr() {
		t.Fatalf("/statusz addr = %q, want %q", body.Addr, srv.Addr())
	}
	if body.Stats.JobsDone != 1 || body.Stats.WarmMisses != 1 {
		t.Fatalf("/statusz stats: %+v", body.Stats)
	}
	if len(body.Metrics) == 0 {
		t.Fatal("/statusz carries no metric snapshots")
	}
	sawResult := false
	for _, ev := range body.Trace {
		if ev.Name == "job.result" {
			sawResult = true
		}
	}
	if !sawResult {
		t.Fatalf("/statusz trace missing job.result: %v", body.Trace)
	}
}
