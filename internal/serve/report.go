// Result streaming of launched node processes: the piece that makes
// tcp-launch jobs result-complete. The launcher (jsweep.Job or the
// serve daemon) opens a Collector — a one-shot TCP listener — and hands
// its address to rank 0 through the environment; the node dials back a
// Reporter and streams one Progress frame per source iteration followed
// by exactly one terminal frame (Result with the full converged flux
// and solve metadata, or JobError). The frames are the submission-lane
// codec of internal/netcomm, so the flux crosses the wire bit-exact.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"jsweep/internal/netcomm"
	"jsweep/internal/nodespec"
	"jsweep/internal/obs"
	"jsweep/internal/sweep"
	"jsweep/internal/transport"
)

// ResultStreamDegraded counts a launch result stream that broke or never
// connected: the job degraded to its hash-only certificate instead of the
// full streamed result. Incremented by both ends (the node that could not
// dial the collector, and the launcher whose collector saw the stream
// break) into the process-global registry, so the formerly log-only
// degradation is visible on /metrics and /statusz.
func ResultStreamDegraded() {
	obs.Default().Counter("jsweep_job_result_stream_degraded_total",
		"Launch result streams that broke or never connected (job degraded to a hash-only result).").Inc()
}

// EnvResult carries the Collector address to a launched rank-0 node
// process (set only for rank 0 — the ranks hold identical fluxes, so
// one stream suffices). Canonically defined in nodespec so the launcher
// can set it without importing this package.
const EnvResult = nodespec.EnvResult

// resultMeta is the JSON schema of a Result frame's meta blob: a
// NodeResult minus the flux (which rides the binary lane of the frame).
type resultMeta struct {
	Iterations int                       `json:"iterations"`
	Residual   float64                   `json:"residual"`
	Converged  bool                      `json:"converged"`
	Balance    []transport.BalanceReport `json:"balance,omitempty"`
	Stats      sweep.SweepStats          `json:"stats"`
	Cluster    nodespec.ClusterStats     `json:"cluster"`
	FluxHash   string                    `json:"flux_hash"`
	Verified   bool                      `json:"verified,omitempty"`
	Trace      []obs.Event               `json:"trace,omitempty"`
	Wall       time.Duration             `json:"wall_ns"`
}

// encodeResult packs a NodeResult into a Result frame payload. withFlux
// false omits the flux (slice jobs whose ranks exclude 0 report
// metadata and hash only).
func encodeResult(nr *nodespec.NodeResult, withFlux bool) ([]byte, error) {
	meta := resultMeta{
		Stats:    nr.Stats,
		Cluster:  nr.Cluster,
		Balance:  nr.Balance,
		FluxHash: nr.FluxHash,
		Verified: nr.Verified,
		Trace:    nr.Trace,
		Wall:     nr.Wall,
	}
	var flux [][]float64
	if nr.Result != nil {
		meta.Iterations = nr.Result.Iterations
		meta.Residual = nr.Result.Residual
		meta.Converged = nr.Result.Converged
		if withFlux {
			flux = nr.Result.Phi
		}
	}
	mb, err := json.Marshal(meta)
	if err != nil {
		return nil, err
	}
	return netcomm.AppendResult(nil, netcomm.Result{Meta: mb, Flux: flux}), nil
}

// decodeResult unpacks a Result frame payload into a NodeResult. The
// strict decoder rejects unknown meta fields — same discipline as the
// spec schema.
func decodeResult(payload []byte) (*nodespec.NodeResult, error) {
	wr, err := netcomm.ParseResult(payload)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(wr.Meta))
	dec.DisallowUnknownFields()
	var meta resultMeta
	if err := dec.Decode(&meta); err != nil {
		return nil, fmt.Errorf("serve: result meta: %w", err)
	}
	nr := &nodespec.NodeResult{
		Result: &transport.Result{
			Phi:        wr.Flux,
			Iterations: meta.Iterations,
			Residual:   meta.Residual,
			Converged:  meta.Converged,
		},
		Balance:  meta.Balance,
		Stats:    meta.Stats,
		Cluster:  meta.Cluster,
		FluxHash: meta.FluxHash,
		Verified: meta.Verified,
		Trace:    meta.Trace,
		Wall:     meta.Wall,
	}
	if len(wr.Flux) == 0 {
		nr.Result.Phi = nil
	}
	return nr, nil
}

// encodeProgress packs one source-iteration event as a Progress frame
// payload (JSON: the flattened transport.Progress fields plus the sweep
// statistics).
func encodeProgress(ev nodespec.Progress) ([]byte, error) {
	b, err := json.Marshal(ev)
	if err != nil {
		return nil, err
	}
	return netcomm.AppendProgress(nil, b), nil
}

// decodeProgress unpacks a Progress frame payload.
func decodeProgress(payload []byte) (nodespec.Progress, error) {
	var ev nodespec.Progress
	b, err := netcomm.ParseProgress(payload)
	if err != nil {
		return ev, err
	}
	if err := json.Unmarshal(b, &ev); err != nil {
		return ev, fmt.Errorf("serve: progress event: %w", err)
	}
	return ev, nil
}

// Reporter is the node side of the result stream: rank 0 of a launched
// cluster dials the launcher's Collector and pushes progress and the
// terminal result. Safe for use from the solve goroutine (writes are
// serialized).
type Reporter struct {
	mu   sync.Mutex
	conn net.Conn
}

// DialReporter connects to a Collector.
func DialReporter(addr string) (*Reporter, error) {
	conn, err := net.DialTimeout("tcp", addr, 30*time.Second)
	if err != nil {
		return nil, fmt.Errorf("serve: dial result collector %s: %w", addr, err)
	}
	return &Reporter{conn: conn}, nil
}

// Progress streams one source-iteration event. Errors are returned but
// a launcher that went away must not fail the solve — callers log and
// drop the reporter instead.
func (r *Reporter) Progress(ev nodespec.Progress) error {
	payload, err := encodeProgress(ev)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return netcomm.WriteFrame(r.conn, netcomm.KindProgress, payload)
}

// Result streams the terminal result (with the full flux).
func (r *Reporter) Result(nr *nodespec.NodeResult) error {
	payload, err := encodeResult(nr, true)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return netcomm.WriteFrame(r.conn, netcomm.KindResult, payload)
}

// JobError streams a terminal failure.
func (r *Reporter) JobError(jobErr error) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return netcomm.WriteFrame(r.conn, netcomm.KindJobError, netcomm.AppendJobError(nil, jobErr.Error()))
}

// Close closes the stream.
func (r *Reporter) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.conn.Close()
}

// Collector is the launcher side of the result stream: a one-shot
// listener that accepts the single rank-0 connection and drains it.
type Collector struct {
	ln net.Listener
}

// NewCollector opens a collector on a loopback port.
func NewCollector() (*Collector, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	return &Collector{ln: ln}, nil
}

// Addr is the address rank 0 must dial (travels via EnvResult).
func (c *Collector) Addr() string { return c.ln.Addr().String() }

// Close closes the listener (idempotent; unblocks a pending Collect).
func (c *Collector) Close() error { return c.ln.Close() }

// Collect accepts the node's connection and drains its frames:
// progress events go to the callback (may be nil), and the terminal
// Result or JobError frame ends the stream. Cancelling the context
// closes the listener and the accepted connection. A stream that ends
// without a terminal frame (node crashed) is an error.
func (c *Collector) Collect(ctx context.Context, progress func(nodespec.Progress)) (*nodespec.NodeResult, error) {
	stop := context.AfterFunc(ctx, func() { c.ln.Close() })
	defer stop()
	conn, err := c.ln.Accept()
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, fmt.Errorf("serve: collect result: %w", err)
	}
	defer conn.Close()
	unhook := context.AfterFunc(ctx, func() { conn.Close() })
	defer unhook()
	for {
		kind, payload, err := netcomm.ReadFrame(conn)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			return nil, fmt.Errorf("serve: result stream ended without a terminal frame: %w", err)
		}
		switch kind {
		case netcomm.KindProgress:
			ev, err := decodeProgress(payload)
			if err != nil {
				return nil, err
			}
			if progress != nil {
				progress(ev)
			}
		case netcomm.KindResult:
			return decodeResult(payload)
		case netcomm.KindJobError:
			detail, err := netcomm.ParseJobError(payload)
			if err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("serve: node job failed: %s", detail)
		default:
			return nil, fmt.Errorf("serve: unexpected %s frame on result stream", kindNameOf(kind))
		}
	}
}

// kindNameOf mirrors netcomm's diagnostic naming for the frames this
// package handles.
func kindNameOf(k byte) string {
	switch k {
	case netcomm.KindHello:
		return "hello"
	case netcomm.KindSubmit:
		return "submit"
	case netcomm.KindAccepted:
		return "accepted"
	case netcomm.KindRejected:
		return "rejected"
	case netcomm.KindStarted:
		return "started"
	case netcomm.KindProgress:
		return "progress"
	case netcomm.KindResult:
		return "result"
	case netcomm.KindJobError:
		return "joberror"
	case netcomm.KindCancel:
		return "cancel"
	}
	return fmt.Sprintf("%#02x", k)
}

// RunNodeCtx runs one rank of a launched cluster, streaming progress
// and the terminal result to the collector at resultAddr when set (the
// result-complete tcp-launch path). With an empty resultAddr it is
// exactly nodespec.RunCtx. A reporter dial or write failure does not
// fail the solve — the cluster's own hash certification still stands;
// the stream just ends early and the collector reports the break.
func RunNodeCtx(ctx context.Context, spec nodespec.Spec, o nodespec.NodeOptions, resultAddr string) (*nodespec.NodeResult, error) {
	var rep *Reporter
	if resultAddr != "" {
		var err error
		if rep, err = DialReporter(resultAddr); err != nil {
			ResultStreamDegraded()
			if o.Log != nil {
				fmt.Fprintf(o.Log, "rank=%d result stream unavailable: %v\n", o.Rank, err)
			}
			rep = nil
		} else {
			defer rep.Close()
			prev := o.Progress
			o.Progress = func(ev nodespec.Progress) {
				if prev != nil {
					prev(ev)
				}
				rep.Progress(ev)
			}
		}
	}
	nr, err := nodespec.RunCtx(ctx, spec, o)
	if rep != nil {
		if err != nil {
			rep.JobError(err)
		} else {
			rep.Result(nr)
		}
	}
	return nr, err
}

// RunNodeFromEnv runs a node whose parameters arrived via the
// JSWEEP_NODE_* environment (the launched-process entry point shared by
// cmd/jsweep-node and the test re-exec helpers), streaming results back
// when EnvResult is set.
func RunNodeFromEnv(w io.Writer) error {
	spec, o, ok, err := nodespec.NodeEnv()
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("serve: %s not set — not a launched node", nodespec.EnvRank)
	}
	o.Log = w
	_, err = RunNodeCtx(context.Background(), spec, o, os.Getenv(EnvResult))
	return err
}
