// Client side of the submission lane: dial a daemon, submit a versioned
// JobSpec, stream progress, wait for the terminal result or cancel. One
// connection carries one job for its whole lifetime — the transport-level
// session IS the job lease, so a dropped client cancels its job.
package serve

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"jsweep/internal/netcomm"
	"jsweep/internal/nodespec"
)

// AdmissionError is a typed rejection from a daemon's admission control:
// the job never started. Code is one of the Code* constants.
type AdmissionError struct {
	Code   string
	Detail string
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("serve: job rejected (%s): %s", e.Code, e.Detail)
}

// Client submits jobs to one serve daemon.
type Client struct {
	addr string
	// DialTimeout bounds each connection attempt (default 10s).
	DialTimeout time.Duration
}

// NewClient points at a daemon's submission address. The client itself
// holds no connection; each Submit (and Hello) dials fresh.
func NewClient(addr string) *Client {
	return &Client{addr: addr, DialTimeout: 10 * time.Second}
}

// Addr is the daemon address this client submits to.
func (c *Client) Addr() string { return c.addr }

func (c *Client) dial(ctx context.Context) (net.Conn, netcomm.Hello, error) {
	d := net.Dialer{Timeout: c.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return nil, netcomm.Hello{}, fmt.Errorf("serve: dial %s: %w", c.addr, err)
	}
	kind, payload, err := netcomm.ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, netcomm.Hello{}, fmt.Errorf("serve: %s: no hello: %w", c.addr, err)
	}
	if kind != netcomm.KindHello {
		conn.Close()
		return nil, netcomm.Hello{}, fmt.Errorf("serve: %s: expected hello, got %s", c.addr, kindNameOf(kind))
	}
	h, err := netcomm.ParseHello(payload)
	if err != nil {
		conn.Close()
		return nil, netcomm.Hello{}, err
	}
	if h.Proto != netcomm.SubmitProto {
		conn.Close()
		return nil, netcomm.Hello{}, fmt.Errorf("serve: %s speaks submission protocol %d, want %d", c.addr, h.Proto, netcomm.SubmitProto)
	}
	return conn, h, nil
}

// Hello queries the daemon's capacity advertisement without submitting
// (the placement probe of multi-host launches).
func (c *Client) Hello(ctx context.Context) (netcomm.Hello, error) {
	conn, h, err := c.dial(ctx)
	if err != nil {
		return netcomm.Hello{}, err
	}
	conn.Close()
	return h, nil
}

// Request shapes one job submission.
type Request struct {
	// Spec is the job to run (validated daemon-side against the same
	// schema version the launcher speaks).
	Spec nodespec.Spec
	// Verify asks the daemon to certify the flux against the serial
	// reference before reporting success.
	Verify bool
	// Timeout caps the job's run time; the daemon clamps it to its own
	// per-job cap. Zero means the daemon's cap alone applies.
	Timeout time.Duration
	// Rendezvous, RankLo, RankHi make this a rank-slice job: the daemon
	// hosts ranks [RankLo,RankHi) of an external cluster wired through
	// the given rendezvous address. Empty Rendezvous = full job.
	Rendezvous string
	Cluster    string
	RankLo     int
	RankHi     int
	// Progress receives one event per source iteration, from the
	// handle's reader goroutine.
	Progress func(nodespec.Progress)
	// Log receives client-side diagnostics (nil = discard).
	Log io.Writer
}

// Handle is one submitted job. Wait for its terminal state; Cancel to
// abort it cooperatively.
type Handle struct {
	job      string
	queuePos int
	hello    netcomm.Hello

	mu   sync.Mutex // guards conn writes (Cancel racing reader shutdown)
	conn net.Conn

	done    chan struct{}
	started chan struct{}
	res     *nodespec.NodeResult
	err     error
}

// Job is the daemon-assigned job identifier.
func (h *Handle) Job() string { return h.job }

// QueuePos is the number of jobs that were ahead at admission (0 = ran
// immediately).
func (h *Handle) QueuePos() int { return h.queuePos }

// Hello is the capacity advertisement the daemon sent at dial time.
func (h *Handle) Hello() netcomm.Hello { return h.hello }

// Started unblocks when the daemon moves the job from queued to running
// (closed channel idiom; also closes on terminal failure so waiters
// never hang).
func (h *Handle) Started() <-chan struct{} { return h.started }

// Submit sends one job and returns a live handle once the daemon admits
// it. A typed *AdmissionError means the daemon refused it (queue full,
// invalid spec, shutting down); the job never ran.
func (c *Client) Submit(ctx context.Context, req Request) (*Handle, error) {
	specJSON, err := nodespec.MarshalSpec(req.Spec)
	if err != nil {
		return nil, err
	}
	conn, hello, err := c.dial(ctx)
	if err != nil {
		return nil, err
	}
	sub := netcomm.Submit{
		Spec:       []byte(specJSON),
		Verify:     req.Verify,
		Timeout:    req.Timeout,
		Rendezvous: req.Rendezvous,
		Cluster:    req.Cluster,
		RankLo:     req.RankLo,
		RankHi:     req.RankHi,
	}
	if err := netcomm.WriteFrame(conn, netcomm.KindSubmit, netcomm.AppendSubmit(nil, sub)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("serve: submit: %w", err)
	}
	kind, payload, err := netcomm.ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("serve: submit: %w", err)
	}
	switch kind {
	case netcomm.KindRejected:
		conn.Close()
		rej, perr := netcomm.ParseRejected(payload)
		if perr != nil {
			return nil, perr
		}
		return nil, &AdmissionError{Code: rej.Code, Detail: rej.Detail}
	case netcomm.KindAccepted:
		acc, perr := netcomm.ParseAccepted(payload)
		if perr != nil {
			conn.Close()
			return nil, perr
		}
		h := &Handle{
			job:      acc.Job,
			queuePos: acc.QueuePos,
			hello:    hello,
			conn:     conn,
			done:     make(chan struct{}),
			started:  make(chan struct{}),
		}
		go h.read(req)
		return h, nil
	default:
		conn.Close()
		return nil, fmt.Errorf("serve: submit: unexpected %s frame", kindNameOf(kind))
	}
}

// read drains the job's frames until the terminal Result or JobError.
func (h *Handle) read(req Request) {
	defer close(h.done)
	defer h.conn.Close()
	startedClosed := false
	defer func() {
		if !startedClosed {
			close(h.started)
		}
	}()
	for {
		kind, payload, err := netcomm.ReadFrame(h.conn)
		if err != nil {
			h.err = fmt.Errorf("serve: %s: stream ended without a terminal frame: %w", h.job, err)
			return
		}
		switch kind {
		case netcomm.KindStarted:
			if !startedClosed {
				close(h.started)
				startedClosed = true
			}
		case netcomm.KindProgress:
			ev, err := decodeProgress(payload)
			if err != nil {
				h.err = err
				return
			}
			if req.Progress != nil {
				req.Progress(ev)
			}
		case netcomm.KindResult:
			h.res, h.err = decodeResult(payload)
			return
		case netcomm.KindJobError:
			detail, perr := netcomm.ParseJobError(payload)
			if perr != nil {
				h.err = perr
				return
			}
			h.err = fmt.Errorf("serve: %s failed: %s", h.job, detail)
			return
		default:
			h.err = fmt.Errorf("serve: %s: unexpected %s frame", h.job, kindNameOf(kind))
			return
		}
	}
}

// Wait blocks until the job's terminal state. Cancelling the context
// sends a best-effort Cancel to the daemon and reports the context
// error; the daemon frees the job's slot either way.
func (h *Handle) Wait(ctx context.Context) (*nodespec.NodeResult, error) {
	select {
	case <-h.done:
		return h.res, h.err
	case <-ctx.Done():
		h.Cancel("waiter gone: " + ctx.Err().Error())
		<-h.done
		if h.err != nil {
			return nil, fmt.Errorf("%w (%v)", ctx.Err(), h.err)
		}
		return h.res, ctx.Err()
	}
}

// Cancel asks the daemon to abort the job (cooperative: the job's
// context is cancelled, the slot frees when the solver unwinds). Safe to
// call at any point and more than once.
func (h *Handle) Cancel(reason string) {
	select {
	case <-h.done:
		return // already terminal
	default:
	}
	h.mu.Lock()
	// Best-effort by design: if the write fails the connection is dying,
	// and connection-as-lease cancellation already covers that path.
	netcomm.WriteFrame(h.conn, netcomm.KindCancel, netcomm.AppendCancel(nil, reason)) //jsweep:errdrop-ok
	h.mu.Unlock()
}
