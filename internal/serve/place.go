// Multi-host placement: run one tcp-launch cluster across a set of
// serve daemons. The launcher starts the rendezvous, probes each
// daemon's Hello for free rank capacity, carves the spec's world into
// contiguous rank slices greedily by free slots, and submits one slice
// job per daemon. The daemons' ranks join the launcher's rendezvous
// exactly like locally spawned node processes, so the cluster wire path
// (and its bitwise-agreement certificate) is unchanged — only process
// placement moved from fork/exec to job submission.
package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"jsweep/internal/netcomm"
	"jsweep/internal/nodespec"
)

// HostConfig shapes a multi-host placement.
type HostConfig struct {
	// Spec is the solve; its Procs ranks are spread over the daemons.
	Spec nodespec.Spec
	// Daemons are the submission addresses to place ranks on (in
	// preference order; earlier daemons fill first and the first daemon
	// hosts rank 0).
	Daemons []string
	// Verify makes rank 0's daemon cross-check against the serial
	// reference.
	Verify bool
	// Timeout bounds the whole placed launch (default 5m).
	Timeout time.Duration
	// RendezvousAddr is the listen address for the cluster rendezvous
	// (default ":0" — all interfaces, so remote daemons can reach it).
	RendezvousAddr string
	// AdvertiseHost overrides the host part the daemons dial back
	// (default: the launcher's outbound IP toward the first daemon).
	AdvertiseHost string
	// Progress receives rank 0's per-iteration events.
	Progress func(nodespec.Progress)
	// Log receives placement diagnostics (nil = discard).
	Log io.Writer
}

// Placement records where each slice landed.
type Placement struct {
	Daemon string
	RankLo int
	RankHi int
}

// HostResult is a completed multi-host launch.
type HostResult struct {
	// Result is rank 0's full NodeResult (flux included).
	Result *nodespec.NodeResult
	// Placements are the rank slices in submission order.
	Placements []Placement
	// FluxHash is the hash every slice reported (the launch fails on
	// disagreement).
	FluxHash string
	// Wall is the whole launch's wall time.
	Wall time.Duration
}

// LaunchHosts places one cluster across the daemons and waits for it.
func LaunchHosts(ctx context.Context, cfg HostConfig) (*HostResult, error) {
	spec := cfg.Spec.Defaulted()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Daemons) == 0 {
		return nil, fmt.Errorf("serve: placement needs at least one daemon")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Minute
	}
	ctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
	defer cancel()
	if cfg.Log != nil {
		// The slice handles' reader goroutines log concurrently.
		cfg.Log = &syncWriter{w: cfg.Log}
	}
	logf := func(format string, args ...any) {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "place: "+format+"\n", args...)
		}
	}

	// Probe capacity: free ranks per daemon, in preference order.
	free := make([]int, len(cfg.Daemons))
	total := 0
	for i, addr := range cfg.Daemons {
		h, err := NewClient(addr).Hello(ctx)
		if err != nil {
			return nil, fmt.Errorf("serve: probe %s: %w", addr, err)
		}
		if f := h.Slots - h.Busy; f > 0 {
			free[i] = f
			total += f
		}
	}
	if total < spec.Procs {
		return nil, fmt.Errorf("serve: %d ranks need placing but the daemons advertise only %d free slots", spec.Procs, total)
	}

	// Greedy contiguous slices: daemon i takes min(free, remaining).
	var places []Placement
	lo := 0
	for i, addr := range cfg.Daemons {
		if lo == spec.Procs {
			break
		}
		n := free[i]
		if n > spec.Procs-lo {
			n = spec.Procs - lo
		}
		if n == 0 {
			continue
		}
		places = append(places, Placement{Daemon: addr, RankLo: lo, RankHi: lo + n})
		lo += n
	}

	// The cluster rendezvous must be reachable from the daemons: listen
	// wide, advertise a routable host.
	rzAddr := cfg.RendezvousAddr
	if rzAddr == "" {
		rzAddr = ":0"
	}
	var idBytes [8]byte
	if _, err := rand.Read(idBytes[:]); err != nil {
		return nil, err
	}
	cluster := "jsweep-place-" + hex.EncodeToString(idBytes[:])
	rz, err := netcomm.StartRendezvous(rzAddr, cluster, spec.Procs)
	if err != nil {
		return nil, err
	}
	defer rz.Close()
	advertise, err := advertiseAddr(rz.Addr(), cfg.AdvertiseHost, cfg.Daemons[0])
	if err != nil {
		return nil, err
	}
	logf("cluster %s: rendezvous %s, %d ranks over %d daemons", cluster, advertise, spec.Procs, len(places))

	// Submit every slice, then wait for all. The first failure cancels
	// the rest (their job contexts die with the connection or Cancel).
	start := time.Now()
	handles := make([]*Handle, len(places))
	for i, p := range places {
		h, err := NewClient(p.Daemon).Submit(ctx, Request{
			Spec:       spec,
			Verify:     cfg.Verify && p.RankLo == 0,
			Timeout:    cfg.Timeout,
			Rendezvous: advertise,
			Cluster:    cluster,
			RankLo:     p.RankLo,
			RankHi:     p.RankHi,
			Progress:   pickProgress(cfg.Progress, p.RankLo == 0),
			Log:        cfg.Log,
		})
		if err != nil {
			for _, prev := range handles[:i] {
				prev.Cancel("sibling slice rejected")
			}
			for _, prev := range handles[:i] {
				prev.Wait(context.Background())
			}
			return nil, fmt.Errorf("serve: place ranks [%d,%d) on %s: %w", p.RankLo, p.RankHi, p.Daemon, err)
		}
		handles[i] = h
		logf("ranks [%d,%d) -> %s (%s)", p.RankLo, p.RankHi, p.Daemon, h.Job())
	}
	results := make([]*nodespec.NodeResult, len(handles))
	errs := make([]error, len(handles))
	var wg sync.WaitGroup
	for i, h := range handles {
		wg.Add(1)
		go func(i int, h *Handle) {
			defer wg.Done()
			results[i], errs[i] = h.Wait(ctx)
			if errs[i] != nil {
				// Fail fast: a dead slice strands the others inside the
				// cluster solve until their contexts die.
				cancel()
			}
		}(i, h)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("serve: slice [%d,%d) on %s: %w", places[i].RankLo, places[i].RankHi, places[i].Daemon, err)
		}
	}

	// Cross-daemon bitwise-agreement certificate: every slice's hash
	// must match (same discipline as LaunchLocalCtx across processes).
	hash := results[0].FluxHash
	for i, r := range results[1:] {
		if r.FluxHash != hash {
			return nil, fmt.Errorf("serve: flux hash mismatch across daemons: %s reports %s, %s reports %s",
				places[0].Daemon, hash, places[i+1].Daemon, r.FluxHash)
		}
	}
	logf("cluster %s converged in %v (hash=%s)", cluster, time.Since(start).Round(time.Millisecond), hash)
	return &HostResult{
		Result:     results[0],
		Placements: places,
		FluxHash:   hash,
		Wall:       time.Since(start),
	}, nil
}

func pickProgress(p func(nodespec.Progress), isRankZero bool) func(nodespec.Progress) {
	if isRankZero {
		return p
	}
	return nil
}

// advertiseAddr rewrites the rendezvous listen address into one the
// daemons can dial: explicit override, else the launcher's outbound IP
// toward the first daemon, else loopback (single-host setups).
func advertiseAddr(listen, override, firstDaemon string) (string, error) {
	_, port, err := net.SplitHostPort(listen)
	if err != nil {
		return "", fmt.Errorf("serve: rendezvous address %q: %w", listen, err)
	}
	if override != "" {
		return net.JoinHostPort(override, port), nil
	}
	host, _, err := net.SplitHostPort(firstDaemon)
	if err == nil && (host == "127.0.0.1" || host == "localhost" || host == "::1") {
		return net.JoinHostPort("127.0.0.1", port), nil
	}
	// Route discovery without sending a packet: a UDP "connection" picks
	// the outbound interface toward the daemon.
	conn, err := net.Dial("udp", firstDaemon)
	if err != nil {
		return net.JoinHostPort("127.0.0.1", port), nil
	}
	local := conn.LocalAddr().(*net.UDPAddr)
	conn.Close()
	return net.JoinHostPort(local.IP.String(), port), nil
}
