// The jsweep-serve daemon: a long-lived per-host sweep service. It
// listens for versioned JobSpec submissions over TCP (the submission
// lane of internal/netcomm), admits them through a bounded multi-tenant
// FIFO queue, executes each job with a per-job timeout and cooperative
// cancellation, and streams per-iteration progress plus the terminal
// result back to the submitter. Finished solver sessions park in a warm
// node pool keyed by solve shape, so a stream of same-shaped jobs pays
// the mesh/graph/priority build once — the paper's long-lived-service
// model (§IV) extended from sweeps to whole jobs.
//
// Two job forms share the queue:
//
//   - full jobs (Submit.Rendezvous empty): the daemon runs every rank
//     in-process and returns the full converged flux;
//   - rank-slice jobs: the daemon hosts ranks [RankLo,RankHi) of an
//     external cluster wired through the submitter's rendezvous — the
//     building block of multi-host placement (place.go).
package serve

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sync"
	"time"

	"jsweep/internal/netcomm"
	"jsweep/internal/nodespec"
	"jsweep/internal/obs"
	"jsweep/internal/sweep"
	"jsweep/internal/transport"
)

// Admission rejection codes (Rejected.Code values).
const (
	// CodeQueueFull: the running set and the wait queue are both at
	// capacity.
	CodeQueueFull = "queue-full"
	// CodeInvalidSpec: the submitted spec failed schema validation (the
	// detail carries the typed field errors).
	CodeInvalidSpec = "invalid-spec"
	// CodeShuttingDown: the daemon is draining and takes no new jobs.
	CodeShuttingDown = "shutting-down"
	// CodeBadFrame: the submission lane received a malformed or
	// out-of-protocol frame.
	CodeBadFrame = "bad-frame"
)

// Config shapes a Server.
type Config struct {
	// Listen is the submission listener address (default 127.0.0.1:0).
	Listen string
	// MaxJobs bounds concurrently running jobs (default 2).
	MaxJobs int
	// QueueDepth bounds admitted-but-waiting jobs; a submission beyond
	// MaxJobs running + QueueDepth queued gets a typed queue-full
	// rejection instead of an unbounded wait (default 8).
	QueueDepth int
	// Slots is the daemon's advertised rank capacity for multi-host
	// placement (default NumCPU). Advisory: admission is job-counted,
	// capacity-based placement is the launcher's job.
	Slots int
	// JobTimeout caps every job's run time; a submission asking for less
	// gets less, one asking for more is clamped (default 10m).
	JobTimeout time.Duration
	// PoolSize bounds the warm node pool (idle solver sessions kept
	// across jobs; default 4, 0 disables warming).
	PoolSize int
	// MetricsAddr, when non-empty, binds an HTTP listener serving
	// /metrics (Prometheus text), /healthz, and /statusz (JSON). Use
	// "127.0.0.1:0" for an ephemeral port (MetricsAddr() reports it).
	MetricsAddr string
	// Log receives human-readable daemon lines (nil = discard).
	Log io.Writer

	// onStart, when non-nil, runs on the job goroutine right after the
	// Started frame (test gate: queue-semantics tests hold jobs in the
	// running state deterministically).
	onStart func(job string)
}

func (c *Config) defaults() {
	if c.Listen == "" {
		c.Listen = "127.0.0.1:0"
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.Slots <= 0 {
		c.Slots = runtime.NumCPU()
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 10 * time.Minute
	}
	if c.PoolSize < 0 {
		c.PoolSize = 0
	} else if c.PoolSize == 0 {
		c.PoolSize = 4
	}
}

// fifoSem is a FIFO counting semaphore with cancel-safe acquisition:
// waiters are granted strictly in arrival order (no barging — a queued
// job cannot be overtaken), and a waiter whose context dies either
// removes itself or, if the grant raced the cancellation, passes the
// grant to the next waiter.
type fifoSem struct {
	mu sync.Mutex
	// free is the number of unclaimed grants. guarded by mu
	free int
	// waiters queues arrival-ordered grant channels. guarded by mu
	waiters []chan struct{}
}

func newFifoSem(n int) *fifoSem { return &fifoSem{free: n} }

func (s *fifoSem) acquire(ctx context.Context) error {
	s.mu.Lock()
	if s.free > 0 {
		s.free--
		s.mu.Unlock()
		return nil
	}
	ch := make(chan struct{})
	s.waiters = append(s.waiters, ch)
	s.mu.Unlock()
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		select {
		case <-ch:
			// The grant raced the cancellation: hand it on.
			s.mu.Unlock()
			s.release()
		default:
			for i, w := range s.waiters {
				if w == ch {
					s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
					break
				}
			}
			s.mu.Unlock()
		}
		return ctx.Err()
	}
}

func (s *fifoSem) release() {
	s.mu.Lock()
	if len(s.waiters) > 0 {
		ch := s.waiters[0]
		s.waiters = s.waiters[1:]
		s.mu.Unlock()
		close(ch)
		return
	}
	s.free++
	s.mu.Unlock()
}

// Server is a running serve daemon.
type Server struct {
	cfg  Config
	ln   net.Listener
	pool *nodePool
	sem  *fifoSem

	metrics    *serveMetrics
	trace      *obs.Tracer
	metricsLn  net.Listener
	metricsSrv *http.Server

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu sync.Mutex
	// shutdown flips once at Close; admission checks it first. guarded by mu
	shutdown bool
	// running counts jobs granted a slot and not yet finished. guarded by mu
	running int
	// queued counts admitted jobs still waiting for a grant. guarded by mu
	queued int
	// busy counts rank slots occupied by running jobs. guarded by mu
	busy int
	// jobSeq numbers jobs for their daemon-assigned ids. guarded by mu
	jobSeq int
}

// Start listens and serves submissions until Close.
func Start(cfg Config) (*Server, error) {
	cfg.defaults()
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("serve: listen %s: %w", cfg.Listen, err)
	}
	if cfg.Log != nil {
		// Handler, watcher and rank goroutines all log; serialize them so
		// callers can hand over any io.Writer.
		cfg.Log = &syncWriter{w: cfg.Log}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		ln:         ln,
		pool:       newNodePool(cfg.PoolSize),
		sem:        newFifoSem(cfg.MaxJobs),
		trace:      obs.NewTracer(0),
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	s.metrics = newServeMetrics(s)
	if cfg.MetricsAddr != "" {
		if err := s.startMetricsServer(); err != nil {
			ln.Close()
			cancel()
			return nil, fmt.Errorf("serve: metrics listen %s: %w", cfg.MetricsAddr, err)
		}
	}
	s.logf("listening on %s (maxJobs=%d queueDepth=%d slots=%d jobTimeout=%v pool=%d)",
		ln.Addr(), cfg.MaxJobs, cfg.QueueDepth, cfg.Slots, cfg.JobTimeout, cfg.PoolSize)
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr is the daemon's submission address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close drains the daemon: new submissions are rejected shutting-down,
// running jobs are cancelled, every connection handler is reaped, and
// the warm pool's sessions stop. Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	already := s.shutdown
	s.shutdown = true
	s.mu.Unlock()
	if already {
		return nil
	}
	s.ln.Close()
	s.stopMetricsServer()
	s.baseCancel()
	s.wg.Wait()
	s.pool.closeAll()
	s.logf("closed")
	return nil
}

// WarmNodes reports the idle warm-pool size (diagnostics and tests).
func (s *Server) WarmNodes() int { return s.pool.size() }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		fmt.Fprintf(s.cfg.Log, "serve: "+format+"\n", args...)
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed: Close is draining
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.handleConn(conn)
		}()
	}
}

// hello snapshots the daemon's capacity advertisement.
func (s *Server) hello() netcomm.Hello {
	s.mu.Lock()
	defer s.mu.Unlock()
	return netcomm.Hello{
		Proto:   netcomm.SubmitProto,
		Slots:   s.cfg.Slots,
		Busy:    s.busy,
		Running: s.running,
		Queued:  s.queued,
	}
}

// reject sends a typed rejection and records it: one admission counter
// per code, one trace event per decision.
func (s *Server) reject(w *frameWriter, code, detail string) {
	switch code {
	case CodeQueueFull:
		s.metrics.admQueueFull.Inc()
	case CodeInvalidSpec:
		s.metrics.admInvalidSpec.Inc()
	case CodeShuttingDown:
		s.metrics.admShuttingDown.Inc()
	case CodeBadFrame:
		s.metrics.admBadFrame.Inc()
	}
	s.trace.Emit(obs.Event{Name: "job.rejected", Detail: code})
	w.reject(code, detail)
}

// handleConn speaks one submission conversation: Hello, then at most
// one job for the connection's lifetime. The client going away (EOF) or
// sending Cancel aborts the job.
func (s *Server) handleConn(conn net.Conn) {
	w := &frameWriter{conn: conn, logf: s.logf}
	if err := netcomm.WriteFrame(conn, netcomm.KindHello, netcomm.AppendHello(nil, s.hello())); err != nil {
		return
	}
	kind, payload, err := netcomm.ReadFrame(conn)
	if err != nil {
		return // client connected for the Hello only (placement probe)
	}
	if kind != netcomm.KindSubmit {
		s.reject(w, CodeBadFrame, fmt.Sprintf("expected submit, got %s", kindNameOf(kind)))
		return
	}
	sub, err := netcomm.ParseSubmit(payload)
	if err != nil {
		s.reject(w, CodeBadFrame, err.Error())
		return
	}
	spec, err := nodespec.UnmarshalSpec(string(sub.Spec))
	if err != nil {
		s.reject(w, CodeInvalidSpec, err.Error())
		return
	}
	if err := spec.Validate(); err != nil {
		s.reject(w, CodeInvalidSpec, err.Error())
		return
	}
	spec = spec.Defaulted()
	slice := sub.Rendezvous != ""
	if slice {
		if sub.RankLo < 0 || sub.RankHi <= sub.RankLo || sub.RankHi > spec.Procs {
			s.reject(w, CodeInvalidSpec, fmt.Sprintf("rank slice [%d,%d) invalid for %d procs", sub.RankLo, sub.RankHi, spec.Procs))
			return
		}
	} else {
		sub.RankLo, sub.RankHi = 0, spec.Procs
	}
	slots := sub.RankHi - sub.RankLo

	// Admission: one decision under the lock — shutting-down beats
	// queue-full, queue-full counts running and waiting jobs.
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		s.reject(w, CodeShuttingDown, "daemon is draining")
		return
	}
	if s.running >= s.cfg.MaxJobs && s.queued >= s.cfg.QueueDepth {
		detail := fmt.Sprintf("%d running, %d queued (caps %d/%d)", s.running, s.queued, s.cfg.MaxJobs, s.cfg.QueueDepth)
		s.mu.Unlock()
		s.reject(w, CodeQueueFull, detail)
		return
	}
	pos := 0
	if s.running >= s.cfg.MaxJobs {
		pos = s.queued + 1
	}
	s.queued++
	s.jobSeq++
	job := fmt.Sprintf("job-%d", s.jobSeq)
	s.mu.Unlock()

	if err := w.write(netcomm.KindAccepted, netcomm.AppendAccepted(nil, netcomm.Accepted{Job: job, QueuePos: pos})); err != nil {
		s.mu.Lock()
		s.queued--
		s.mu.Unlock()
		return
	}
	acceptedAt := time.Now()
	s.metrics.admAccepted.Inc()
	s.trace.Emit(obs.Event{Name: "job.submitted", ID: job, Detail: spec.Mesh})
	s.logf("%s accepted (queuePos=%d slice=%v ranks=[%d,%d) mesh=%s)", job, pos, slice, sub.RankLo, sub.RankHi, spec.Mesh)

	// The job context dies with the daemon, with a client Cancel frame,
	// or with the client's disconnect — the watcher goroutine turns the
	// connection's read side into a cancellation source.
	jobCtx, cancelJob := context.WithCancelCause(s.baseCtx)
	defer cancelJob(nil)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			kind, payload, err := netcomm.ReadFrame(conn)
			if err != nil {
				cancelJob(fmt.Errorf("client disconnected: %w", err))
				return
			}
			if kind == netcomm.KindCancel {
				reason, _ := netcomm.ParseCancel(payload)
				if reason == "" {
					reason = "client cancel"
				}
				cancelJob(fmt.Errorf("cancelled: %s", reason))
				return
			}
			// Anything else on the lane after Submit is a protocol error.
			cancelJob(fmt.Errorf("unexpected %s frame mid-job", kindNameOf(kind)))
			return
		}
	}()

	// FIFO grant: wait for a running slot in arrival order.
	if err := s.sem.acquire(jobCtx); err != nil {
		s.mu.Lock()
		s.queued--
		s.mu.Unlock()
		s.metrics.abandoned.Inc()
		s.trace.Emit(obs.Event{Name: "job.abandoned", ID: job, Dur: time.Since(acceptedAt)})
		w.jobError(fmt.Errorf("%s while queued: %w", job, context.Cause(jobCtx)))
		s.logf("%s abandoned in queue: %v", job, context.Cause(jobCtx))
		return
	}
	grantWait := time.Since(acceptedAt)
	s.metrics.grantWait.Observe(grantWait.Seconds())
	s.trace.Emit(obs.Event{Name: "job.granted", ID: job, Dur: grantWait})
	s.mu.Lock()
	s.queued--
	s.running++
	s.busy += slots
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.running--
		s.busy -= slots
		s.mu.Unlock()
		s.sem.release()
	}()

	// Per-job timeout: min(submitted, server cap), counted from the
	// grant — queue wait does not eat the job's budget.
	eff := s.cfg.JobTimeout
	if sub.Timeout > 0 && sub.Timeout < eff {
		eff = sub.Timeout
	}
	runCtx, cancelRun := context.WithTimeoutCause(jobCtx, eff,
		fmt.Errorf("job timed out after %v", eff))
	defer cancelRun()

	if err := w.write(netcomm.KindStarted, netcomm.AppendStarted(nil, job)); err != nil {
		return
	}
	if s.cfg.onStart != nil {
		s.cfg.onStart(job)
	}
	t0 := time.Now()
	s.trace.Emit(obs.Event{Name: "job.running", ID: job})
	progress := func(ev nodespec.Progress) { w.progress(ev) }
	var nr *nodespec.NodeResult
	if slice {
		nr, err = s.runSlice(runCtx, spec, sub, progress)
	} else {
		nr, err = s.runFull(runCtx, spec, sub.Verify, progress)
	}
	if err != nil {
		if cause := context.Cause(runCtx); cause != nil && runCtx.Err() != nil {
			err = fmt.Errorf("%w (%v)", cause, err)
		}
		s.metrics.jobFailedH.Observe(time.Since(t0).Seconds())
		s.trace.Emit(obs.Event{Name: "job.error", ID: job, Dur: time.Since(t0), Detail: err.Error()})
		w.jobError(fmt.Errorf("%s: %w", job, err))
		s.logf("%s failed after %v: %v", job, time.Since(t0).Round(time.Millisecond), err)
		return
	}
	frame, err := encodeResult(nr, sub.RankLo == 0)
	if err != nil {
		w.jobError(fmt.Errorf("%s: encode result: %w", job, err))
		return
	}
	if err := w.write(netcomm.KindResult, frame); err != nil {
		// The job is solved either way; the submitter just won't see it.
		s.logf("%s result frame write failed: %v", job, err)
	}
	s.metrics.jobOK.Observe(time.Since(t0).Seconds())
	s.trace.Emit(obs.Event{Name: "job.result", ID: job, Dur: time.Since(t0), Detail: nr.FluxHash})
	s.logf("%s done in %v (hash=%s warm=%d)", job, time.Since(t0).Round(time.Millisecond), nr.FluxHash, s.pool.size())
}

// runFull executes a whole job in-process: every rank of the spec's
// decomposition runs on the solver's internal transport, warmed through
// the node pool.
func (s *Server) runFull(ctx context.Context, spec nodespec.Spec, verify bool, progress func(nodespec.Progress)) (*nodespec.NodeResult, error) {
	key, err := poolKey(spec)
	if err != nil {
		return nil, err
	}
	n := s.pool.take(key)
	if n == nil {
		s.metrics.warmMisses.Inc()
		prob, d, err := nodespec.Build(spec)
		if err != nil {
			return nil, err
		}
		opts, err := nodespec.SolverOptions(spec, nil)
		if err != nil {
			return nil, err
		}
		solver, err := sweep.NewSolver(prob, d, opts)
		if err != nil {
			return nil, err
		}
		n = &warmNode{prob: prob, d: d, solver: solver}
	} else {
		s.metrics.warmHits.Inc()
		// Bitwise parity with a cold run: clear the lagged-flux store
		// (the only numerical state a finished solve leaves behind).
		n.solver.ResetSolve()
	}
	ok := false
	defer func() {
		if ok {
			s.pool.put(key, n)
		} else {
			// A failed or cancelled session may hold broken workers;
			// never park it.
			n.solver.Close()
		}
	}()
	cfg := nodespec.IterConfig(spec)
	if progress != nil {
		cfg.Progress = func(p transport.Progress) {
			progress(nodespec.Progress{Progress: p, Sweep: n.solver.LastStats()})
		}
	}
	// Every full job gets a private solve tracer: the per-iteration
	// phase spans ride back to the submitter inside the result meta
	// (RunResult.Trace), while the server's own tracer keeps the
	// queue-level lifecycle.
	cfg.Tracer = obs.NewTracer(0)
	t0 := time.Now()
	res, err := transport.SourceIterateCtx(ctx, n.prob, n.solver, cfg)
	if err != nil {
		return nil, err
	}
	nr := &nodespec.NodeResult{
		Result:   res,
		Balance:  make([]transport.BalanceReport, n.prob.Groups),
		Stats:    n.solver.LastStats(),
		Cluster:  nodespec.LocalClusterStats(nil, n.solver.LastStats()),
		FluxHash: nodespec.FluxHash(res.Phi),
		Trace:    cfg.Tracer.Events(),
		Wall:     time.Since(t0),
	}
	for g := 0; g < n.prob.Groups; g++ {
		nr.Balance[g] = n.prob.GroupBalance(res.Phi, g)
	}
	if verify {
		if err := nodespec.Verify(spec, n.prob, res); err != nil {
			return nil, err
		}
		nr.Verified = true
	}
	ok = true
	return nr, nil
}

// runSlice hosts ranks [RankLo,RankHi) of an external cluster: each
// rank joins the submitter's rendezvous exactly like a jsweep-node
// process would, but as a goroutine of the daemon. The slice's lowest
// rank carries the result; progress streams only from rank 0 (the
// ranks' events are identical by construction).
func (s *Server) runSlice(ctx context.Context, spec nodespec.Spec, sub netcomm.Submit, progress func(nodespec.Progress)) (*nodespec.NodeResult, error) {
	nRanks := sub.RankHi - sub.RankLo
	results := make([]*nodespec.NodeResult, nRanks)
	errs := make([]error, nRanks)
	var wg sync.WaitGroup
	for i := 0; i < nRanks; i++ {
		rank := sub.RankLo + i
		wg.Add(1)
		go func(i, rank int) {
			defer wg.Done()
			o := nodespec.NodeOptions{
				Rank:       rank,
				Rendezvous: sub.Rendezvous,
				Cluster:    sub.Cluster,
				Verify:     sub.Verify && rank == 0,
				Log:        s.cfg.Log,
			}
			if i == 0 {
				// The slice's lowest rank carries the result; its solve
				// trace travels with it.
				o.Tracer = obs.NewTracer(0)
			}
			if rank == 0 && progress != nil {
				o.Progress = progress
			}
			results[i], errs[i] = nodespec.RunCtx(ctx, spec, o)
		}(i, rank)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("rank %d: %w", sub.RankLo+i, err)
		}
	}
	return results[0], nil
}

// syncWriter serializes writes to a shared log sink.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// frameWriter serializes submission-lane writes on a connection (the
// handler and a slice job's rank-0 goroutine both write). Terminal and
// best-effort frames log their write failures through logf instead of
// swallowing them: the submitter being gone is worth one daemon log
// line, never a silent drop (the swallowed-Bye class).
type frameWriter struct {
	mu   sync.Mutex
	conn net.Conn
	logf func(format string, args ...any)
}

func (w *frameWriter) write(kind byte, payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return netcomm.WriteFrame(w.conn, kind, payload)
}

func (w *frameWriter) reject(code, detail string) {
	if err := w.write(netcomm.KindRejected, netcomm.AppendRejected(nil, netcomm.Rejected{Code: code, Detail: detail})); err != nil {
		w.logf("rejected-frame write failed (%s): %v", code, err)
	}
}

func (w *frameWriter) jobError(jobErr error) {
	if err := w.write(netcomm.KindJobError, netcomm.AppendJobError(nil, jobErr.Error())); err != nil {
		w.logf("job-error frame write failed (job error %v): %v", jobErr, err)
	}
}

func (w *frameWriter) progress(ev nodespec.Progress) {
	if payload, err := encodeProgress(ev); err == nil {
		if werr := w.write(netcomm.KindProgress, payload); werr != nil {
			w.logf("progress frame write failed (iter %d): %v", ev.Iteration, werr)
		}
	}
}
