package serve

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"time"

	"jsweep/internal/obs"
)

// serveMetrics is the daemon's per-Server metric surface. Each Server
// owns its registry so two daemons in one process (tests, multi-daemon
// smoke) never share state; the /metrics endpoint concatenates this
// registry with obs.Default(), where netcomm/runtime register.
type serveMetrics struct {
	reg *obs.Registry

	// Admission outcomes, one counter per typed code plus "accepted".
	admAccepted, admQueueFull, admInvalidSpec, admShuttingDown, admBadFrame *obs.Counter

	grantWait  *obs.Histogram // accepted → granted, seconds
	jobOK      *obs.Histogram // grant → Result, seconds
	jobFailedH *obs.Histogram // grant → JobError, seconds
	abandoned  *obs.Counter   // left the queue before a grant

	warmHits   *obs.Counter
	warmMisses *obs.Counter
}

func newServeMetrics(s *Server) *serveMetrics {
	r := obs.NewRegistry()
	adm := r.CounterVec("jsweep_serve_admissions_total",
		"Submissions by admission outcome (accepted or a rejection code).", "code")
	jobDur := r.HistogramVec("jsweep_serve_job_duration_seconds",
		"Job run time from grant to terminal frame, by outcome.", "outcome")
	m := &serveMetrics{
		reg:             r,
		admAccepted:     adm.With("accepted"),
		admQueueFull:    adm.With(CodeQueueFull),
		admInvalidSpec:  adm.With(CodeInvalidSpec),
		admShuttingDown: adm.With(CodeShuttingDown),
		admBadFrame:     adm.With(CodeBadFrame),
		grantWait: r.Histogram("jsweep_serve_grant_wait_seconds",
			"Queue wait from acceptance to FIFO slot grant."),
		jobOK:      jobDur.With("ok"),
		jobFailedH: jobDur.With("error"),
		abandoned: r.Counter("jsweep_serve_jobs_abandoned_total",
			"Jobs that left the queue (cancel/disconnect/drain) before a grant."),
		warmHits: r.Counter("jsweep_serve_warm_pool_hits_total",
			"Full jobs that reused a warm solver session."),
		warmMisses: r.Counter("jsweep_serve_warm_pool_misses_total",
			"Full jobs that built a cold solver session."),
	}
	// The admission-lock numbers are sampled at exposition time; the
	// owner's mutex is the source of truth, mirroring into atomics would
	// just invite drift.
	r.GaugeFunc("jsweep_serve_queue_depth",
		"Jobs accepted and waiting for a slot grant.", func() int64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return int64(s.queued)
		})
	r.GaugeFunc("jsweep_serve_jobs_running",
		"Jobs holding a slot grant right now.", func() int64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return int64(s.running)
		})
	r.GaugeFunc("jsweep_serve_slots_busy",
		"Rank slots occupied by running jobs.", func() int64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return int64(s.busy)
		})
	r.GaugeFunc("jsweep_serve_slots_total",
		"Advertised rank capacity (slot utilization = busy/total).", func() int64 {
			return int64(s.cfg.Slots)
		})
	r.GaugeFunc("jsweep_serve_warm_pool_size",
		"Idle warm solver sessions parked in the pool.", func() int64 {
			return int64(s.pool.size())
		})
	return m
}

// Stats is a point-in-time snapshot of the daemon's health — the same
// numbers /statusz reports, as a struct for in-process callers and
// tests.
type Stats struct {
	// Queued, Running and BusySlots mirror the admission-lock state;
	// Slots is the advertised capacity (so BusySlots/Slots is the
	// daemon's slot utilization).
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	BusySlots int `json:"busy_slots"`
	Slots     int `json:"slots"`

	// WarmNodes is the idle warm-pool size; WarmHits/WarmMisses count
	// full jobs that reused vs rebuilt a solver session.
	WarmNodes  int   `json:"warm_nodes"`
	WarmHits   int64 `json:"warm_hits"`
	WarmMisses int64 `json:"warm_misses"`

	// Admissions counts submissions by outcome: "accepted" plus the
	// typed rejection codes.
	Admissions map[string]int64 `json:"admissions"`

	// JobsDone/JobsFailed count terminal frames; Abandoned counts jobs
	// that left the queue before a grant.
	JobsDone   int64 `json:"jobs_done"`
	JobsFailed int64 `json:"jobs_failed"`
	Abandoned  int64 `json:"jobs_abandoned"`
}

// Stats snapshots the daemon's queue, slot, warm-pool and admission
// state.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Queued:    s.queued,
		Running:   s.running,
		BusySlots: s.busy,
		Slots:     s.cfg.Slots,
	}
	s.mu.Unlock()
	m := s.metrics
	st.WarmNodes = s.pool.size()
	st.WarmHits = m.warmHits.Value()
	st.WarmMisses = m.warmMisses.Value()
	st.Admissions = map[string]int64{
		"accepted":       m.admAccepted.Value(),
		CodeQueueFull:    m.admQueueFull.Value(),
		CodeInvalidSpec:  m.admInvalidSpec.Value(),
		CodeShuttingDown: m.admShuttingDown.Value(),
		CodeBadFrame:     m.admBadFrame.Value(),
	}
	st.JobsDone = int64(m.jobOK.Count())
	st.JobsFailed = int64(m.jobFailedH.Count())
	st.Abandoned = m.abandoned.Value()
	return st
}

// Trace returns the daemon's job-lifecycle trace, oldest first.
func (s *Server) Trace() []obs.Event { return s.trace.Events() }

// startMetricsServer binds cfg.MetricsAddr and serves /metrics
// (Prometheus text over this server's registry plus obs.Default()),
// /healthz, and /statusz (JSON: Stats + registry snapshot + recent
// trace).
func (s *Server) startMetricsServer() error {
	ln, err := net.Listen("tcp", s.cfg.MetricsAddr)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", obs.PrometheusHandler(s.metrics.reg, obs.Default()))
	mux.HandleFunc("/healthz", obs.HealthHandler())
	mux.HandleFunc("/statusz", s.statusz)
	s.metricsLn = ln
	s.metricsSrv = &http.Server{Handler: mux}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.metricsSrv.Serve(ln) // returns on Close
	}()
	s.logf("metrics on http://%s/metrics", ln.Addr())
	return nil
}

func (s *Server) stopMetricsServer() {
	if s.metricsSrv == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	s.metricsSrv.Shutdown(ctx)
}

// statusz renders the daemon's state as one JSON object: the Stats
// snapshot, every metric child (this server's registry plus the process
// default), and the recent job-lifecycle trace.
func (s *Server) statusz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	body := struct {
		Addr    string               `json:"addr"`
		Stats   Stats                `json:"stats"`
		Metrics []obs.MetricSnapshot `json:"metrics"`
		Trace   []obs.Event          `json:"trace,omitempty"`
	}{
		Addr:    s.Addr(),
		Stats:   s.Stats(),
		Metrics: append(s.metrics.reg.Snapshot(), obs.Default().Snapshot()...),
		Trace:   s.trace.Events(),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(body)
}

// MetricsAddr returns the bound metrics address ("" when metrics are
// disabled).
func (s *Server) MetricsAddr() string {
	if s.metricsLn == nil {
		return ""
	}
	return s.metricsLn.Addr().String()
}
