// lockedfield enforces the mutex-held-truth pattern serve.Server uses:
// a struct field whose doc or line comment says "guarded by <mu>" may
// only be touched inside a function that locks that mutex (or is
// documented/named as running with it held). The check is
// intra-package: annotations on unexported fields are where the
// pattern lives.
package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
)

var guardedByRe = regexp.MustCompile(`guarded by (\w+)`)

// heldDocRe matches function doc comments asserting the caller holds
// the lock ("mu must be held", "caller holds s.mu", "with mu held").
var heldDocRe = regexp.MustCompile(`(?i)(\bheld\b|caller.{0,30}hold)`)

// LockedField flags reads/writes of "guarded by mu" struct fields from
// functions that never lock that mutex. Functions named *Locked or
// documented as requiring the lock are trusted; composite literals
// (construction before sharing) are inherently safe and not flagged.
var LockedField = &Analyzer{
	Name: "lockedfield",
	Doc: "flags accesses to struct fields documented \"guarded by mu\" in functions " +
		"that do not lock that mutex (and are not *Locked/documented lock-held helpers)",
	Run: runLockedField,
}

func runLockedField(pass *Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkGuardedAccesses(pass, fn, guards)
		}
	}
	return nil
}

// collectGuards maps each annotated field object to the name of its
// guarding mutex field.
func collectGuards(pass *Pass) map[types.Object]string {
	guards := make(map[types.Object]string)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guards[obj] = mu
					}
				}
			}
			return true
		})
	}
	return guards
}

func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// checkGuardedAccesses flags selector accesses to guarded fields in
// functions with no visible acquisition of the guarding mutex.
func checkGuardedAccesses(pass *Pass, fn *ast.FuncDecl, guards map[types.Object]string) {
	if fn.Doc != nil && heldDocRe.MatchString(fn.Doc.Text()) {
		return
	}
	if name := fn.Name.Name; len(name) > 6 && name[len(name)-6:] == "Locked" {
		return
	}
	// Which mutex names does this function (or a closure inside it)
	// visibly lock?
	locked := make(map[string]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock", "TryLock", "TryRLock":
			locked[exprName(sel.X)] = true
		}
		return true
	})
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := fieldObject(pass.TypesInfo, sel)
		if obj == nil {
			return true
		}
		mu, guarded := guards[obj]
		if !guarded || locked[mu] {
			return true
		}
		pass.Reportf(sel.Sel.Pos(),
			"access to %s (guarded by %s) in a function that never locks %s: lock it, rename the helper *Locked, or document the caller-held contract",
			obj.Name(), mu, mu)
		return true
	})
}

// fieldObject resolves a selector to the struct-field object it
// denotes, or nil for methods/packages/etc.
func fieldObject(info *types.Info, sel *ast.SelectorExpr) types.Object {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj()
}
