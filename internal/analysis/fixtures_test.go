package analysis_test

import (
	"testing"

	"jsweep/internal/analysis"
)

// TestAnalyzerFixtures runs every analyzer over its testdata/src tree
// and checks the diagnostics against the fixtures' want comments —
// each fixture set carries at least one positive, one negative, and
// one escape-hatch case.
func TestAnalyzerFixtures(t *testing.T) {
	cases := []struct {
		analyzer *analysis.Analyzer
		paths    []string
	}{
		{analysis.PooledBuf, []string{"a"}},
		{analysis.DetMap, []string{"jsweep/internal/graph", "notpinned"}},
		{analysis.CtxLoop, []string{"jsweep/internal/runtime", "notscoped"}},
		{analysis.LockedField, []string{"a"}},
		{analysis.ErrDrop, []string{"jsweep/internal/netcomm"}},
		{analysis.MetricName, []string{"a"}},
	}
	for _, tc := range cases {
		t.Run(tc.analyzer.Name, func(t *testing.T) {
			analysis.RunFixtures(t, "testdata/src/"+tc.analyzer.Name, tc.analyzer, tc.paths...)
		})
	}
}
