package analysis

// All is the jsweepvet suite, in stable reporting order.
var All = []*Analyzer{
	CtxLoop,
	DetMap,
	ErrDrop,
	LockedField,
	MetricName,
	PooledBuf,
}

// ByName returns the named analyzers from the suite (nil slice plus
// the missing names when any are unknown).
func ByName(names ...string) (found []*Analyzer, missing []string) {
	byName := make(map[string]*Analyzer, len(All))
	for _, a := range All {
		byName[a.Name] = a
	}
	for _, n := range names {
		if a, ok := byName[n]; ok {
			found = append(found, a)
		} else {
			missing = append(missing, n)
		}
	}
	return found, missing
}
