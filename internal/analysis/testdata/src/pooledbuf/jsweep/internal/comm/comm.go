// Stub of jsweep/internal/comm for the pooledbuf fixtures: same import
// path, same ownership-contract surface.
package comm

// Endpoint mirrors the transport surface the analyzer keys on.
type Endpoint interface {
	Send(to int, data []byte) error
	SendPooled(to int, data []byte) error
}

func GetBuffer(n int) []byte { return make([]byte, 0, n) }

func PutBuffer(b []byte) {}

func SendPooled(ep Endpoint, to int, data []byte) error { return ep.SendPooled(to, data) }
