// pooledbuf fixtures: positive (use-after-release, plain-Send escape,
// loop-shared release), negative (release-last, re-arm, defer), and
// escape-hatch cases.
package a

import "jsweep/internal/comm"

// useAfterSendPooled is the PR 6 bug class: touching the slice after
// ownership transferred to the transport.
func useAfterSendPooled(ep comm.Endpoint) int {
	buf := comm.GetBuffer(64)
	buf = append(buf, 1, 2, 3)
	_ = comm.SendPooled(ep, 1, buf)
	return len(buf) // want `use of buffer buf after it was released`
}

func useAfterPutBuffer() byte {
	buf := comm.GetBuffer(64)
	buf = append(buf, 9)
	comm.PutBuffer(buf)
	return buf[0] // want `use of buffer buf after it was released`
}

func doublePut() {
	buf := comm.GetBuffer(64)
	comm.PutBuffer(buf)
	comm.PutBuffer(buf) // want `use of buffer buf after it was released`
}

// plainSendEscape loses the buffer to a send that never recycles.
func plainSendEscape(ep comm.Endpoint) {
	buf := comm.GetBuffer(64)
	_ = ep.Send(1, buf) // want `pooled buffer buf passed to plain Send`
}

// loopSharedRelease releases a loop-external buffer every iteration:
// iteration two sends a slice the pool already owns (the AllExchange
// shared-slice shape).
func loopSharedRelease(ep comm.Endpoint, ranks []int) {
	buf := comm.GetBuffer(64)
	for _, r := range ranks {
		_ = comm.SendPooled(ep, r, buf) // want `released inside a loop but declared outside`
	}
}

// releaseLast is the correct shape: the send is the last touch.
func releaseLast(ep comm.Endpoint) error {
	buf := comm.GetBuffer(64)
	buf = append(buf, 7)
	return comm.SendPooled(ep, 1, buf)
}

// reArm re-acquires between releases, so the second use is fresh.
func reArm(ep comm.Endpoint) error {
	buf := comm.GetBuffer(64)
	_ = comm.SendPooled(ep, 1, buf)
	buf = comm.GetBuffer(64)
	return comm.SendPooled(ep, 2, buf)
}

// perIteration declares and releases inside the loop: each iteration
// owns a fresh buffer.
func perIteration(ep comm.Endpoint, ranks []int) {
	for _, r := range ranks {
		buf := comm.GetBuffer(64)
		buf = append(buf, byte(r))
		_ = comm.SendPooled(ep, r, buf)
	}
}

// deferredPut runs at function exit: every body use precedes it.
func deferredPut() int {
	buf := comm.GetBuffer(64)
	defer comm.PutBuffer(buf)
	buf = append(buf, 1)
	return len(buf)
}

// escapeHatch: a reviewed exception stays visible via the pragma.
func escapeHatch(ep comm.Endpoint) int {
	buf := comm.GetBuffer(64)
	_ = comm.SendPooled(ep, 1, buf)
	return cap(buf) //jsweep:pooledbuf-ok
}
