// metricname fixtures: positive (non-canonical names, non-literal
// names, in-loop registration), negative (canonical construction-time
// registrations), and escape-hatch cases.
package a

import "jsweep/internal/obs"

type metrics struct {
	cells *obs.Counter
	depth *obs.Gauge
}

// goodMetrics is the canonical shape: jsweep_-prefixed snake_case
// literals, resolved once at construction.
func goodMetrics(r *obs.Registry) *metrics {
	return &metrics{
		cells: r.Counter("jsweep_sweep_cells_total", "cells swept"),
		depth: r.Gauge("jsweep_queue_depth", "queued jobs"),
	}
}

// badPrefix forgot the namespace.
func badPrefix(r *obs.Registry) *obs.Counter {
	return r.Counter("sweep_cells_total", "cells swept") // want `does not match`
}

// badCase is not snake_case.
func badCase(r *obs.Registry) *obs.Gauge {
	return r.Gauge("jsweep_queueDepth", "queued jobs") // want `does not match`
}

// dynamicName cannot be checked statically.
func dynamicName(r *obs.Registry, name string) *obs.Counter {
	return r.Counter(name, "per-tenant cells") // want `not a string literal`
}

// inLoop resolves a handle per iteration: the obs hot-path contract
// says resolve once, Inc many.
func inLoop(r *obs.Registry, jobs []string) {
	for range jobs {
		c := r.Counter("jsweep_jobs_total", "jobs seen") // want `inside a loop`
		c.Inc()
	}
}

// hoisted is the fixed shape of inLoop.
func hoisted(r *obs.Registry, jobs []string) {
	c := r.Counter("jsweep_jobs_total", "jobs seen")
	for range jobs {
		c.Inc()
	}
}

// notARegistry: same method name on an unrelated type is ignored.
type fakeReg struct{}

func (fakeReg) Counter(name, help string) int { return 0 }

func unrelated(f fakeReg) int {
	return f.Counter("whatever", "not obs")
}

// bridgedException mirrors an external scrape name verbatim; reviewed.
func bridgedException(r *obs.Registry) *obs.Gauge {
	return r.Gauge("node_memory_bytes", "bridged from node exporter") //jsweep:metricname-ok
}
