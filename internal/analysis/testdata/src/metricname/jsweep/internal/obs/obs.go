// Stub of jsweep/internal/obs for the metricname fixtures: same
// import path, same registration surface.
package obs

type Registry struct{}

type Counter struct{}

func (c *Counter) Inc() {}

type Gauge struct{}

type Histogram struct{}

type CounterVec struct{}

func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) Counter(name, help string) *Counter           { return &Counter{} }
func (r *Registry) Gauge(name, help string) *Gauge               { return &Gauge{} }
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {}
func (r *Registry) Histogram(name, help string) *Histogram       { return &Histogram{} }
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{}
}
