// lockedfield fixtures: positive (unlocked access to a guarded
// field), negative (locked access, *Locked helper, documented
// caller-held contract, construction literals), and escape-hatch
// cases.
package a

import "sync"

type server struct {
	mu sync.Mutex
	// running counts in-flight jobs. guarded by mu
	running int
	// queued counts waiting jobs. guarded by mu
	queued int
	// addr is immutable after construction (not guarded).
	addr string
}

// unlockedRead is the bug: it reads guarded state without the mutex.
func (s *server) unlockedRead() int {
	return s.running // want `access to running \(guarded by mu\) in a function that never locks mu`
}

func (s *server) unlockedWrite(n int) {
	s.queued = n // want `access to queued \(guarded by mu\) in a function that never locks mu`
}

// lockedRead holds the mutex: fine.
func (s *server) lockedRead() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running
}

// closureLocked samples mutex-held truth from a closure that locks
// (the serve metrics GaugeFunc shape).
func (s *server) closureLocked(register func(func() int)) {
	register(func() int {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.queued
	})
}

// drainLocked follows the *Locked naming convention: the caller locks.
func (s *server) drainLocked() {
	s.running = 0
	s.queued = 0
}

// snapshot requires mu held by the caller.
func (s *server) snapshot() (int, int) {
	return s.running, s.queued
}

// unguardedField is free to touch.
func (s *server) name() string { return s.addr }

// construction in a composite literal happens before sharing.
func newServer(addr string) *server {
	return &server{addr: addr}
}

// reviewedException documents why the race is benign.
func (s *server) reviewedException() int {
	// Approximate value is fine for the stats line. //jsweep:lockedfield-ok
	return s.running
}
