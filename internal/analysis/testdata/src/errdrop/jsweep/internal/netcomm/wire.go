// errdrop fixtures in a wire-facing package path: positive (dropped
// write errors, blank-discarded writes), negative (checked writes,
// non-write calls), and escape-hatch cases.
package netcomm

import "io"

type conn struct{ w io.Writer }

func (c *conn) Write(p []byte) (int, error) { return c.w.Write(p) }
func (c *conn) Close() error                { return nil }

func writeFrame(w io.Writer, kind byte, payload []byte) error {
	_, err := w.Write(append([]byte{kind}, payload...))
	return err
}

type flusher struct{ w io.Writer }

func (f *flusher) Flush() error { return nil }

// droppedWrite swallows the write error entirely.
func droppedWrite(c *conn, p []byte) {
	c.Write(p) // want `dropped error from Write`
}

// blankedWrite discards it explicitly — still invisible at runtime.
func blankedWrite(c *conn, p []byte) {
	_, _ = c.Write(p) // want `dropped error from Write`
}

// droppedCodec swallows a frame-codec write.
func droppedCodec(c *conn, p []byte) {
	writeFrame(c, 1, p) // want `dropped error from writeFrame`
}

// droppedFlush swallows the flush.
func droppedFlush(f *flusher) {
	f.Flush() // want `dropped error from Flush`
}

// checkedWrite propagates: the correct shape.
func checkedWrite(c *conn, p []byte) error {
	_, err := c.Write(p)
	return err
}

// loggedWrite records the failure: also fine.
func loggedWrite(c *conn, p []byte, logf func(string, ...any)) {
	if _, err := c.Write(p); err != nil {
		logf("write failed: %v", err)
	}
}

// closeDrop is not a write: Close errors on teardown paths are the
// caller's judgement call, not errdrop's.
func closeDrop(c *conn) {
	c.Close()
}

// byeBestEffort is the reviewed exception: the peer closing first is
// expected here.
func byeBestEffort(c *conn, bye []byte) {
	c.Write(bye) //jsweep:errdrop-ok
}
