// A package outside the long-running set: spin loops here are not
// ctxloop's business.
package notscoped

func spin(n *int) {
	for {
		*n = *n + 1
	}
}
