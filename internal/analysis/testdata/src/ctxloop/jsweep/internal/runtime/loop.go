// ctxloop fixtures in a long-running package path: positive (spin
// loops with no exit), negative (ctx checks, shutdown channels,
// return/break paths, bounded loops), and escape-hatch cases.
package runtime

import "context"

// spinForever can outlive every cancellation mechanism.
func spinForever(in chan int, out chan int) {
	for { // want `unbounded for loop without a cancellation exit`
		select {
		case v := <-in:
			out <- v + 1
		}
	}
}

// busyWork has no exit at all.
func busyWork(n *int) {
	for { // want `unbounded for loop without a cancellation exit`
		*n = *n + 1
	}
}

// ctxChecked exits on cancellation.
func ctxChecked(ctx context.Context, in chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case v := <-in:
			_ = v
		}
	}
}

// ctxErrPolled checks ctx.Err in the body.
func ctxErrPolled(ctx context.Context, step func()) {
	for {
		if ctx.Err() != nil {
			return
		}
		step()
	}
}

// quitChannel sits behind a shutdown-named channel.
func quitChannel(quit chan struct{}, in chan int) {
	for {
		select {
		case <-quit:
			return
		case v := <-in:
			_ = v
		}
	}
}

// exitsOnError terminates through a return path.
func exitsOnError(read func() (int, error)) {
	for {
		if _, err := read(); err != nil {
			return
		}
	}
}

// breaksOut terminates through a loop-level break.
func breaksOut(ready func() bool) {
	for {
		if ready() {
			break
		}
	}
}

// bounded loops (a condition) are not ctxloop's business.
func bounded(n int, f func()) {
	for i := 0; i < n; i++ {
		f()
	}
}

// documentedException: the doorbell pump is shut down by closing its
// input fd, which makes the receive panic-free return elsewhere.
func documentedException(in chan int, out chan int) {
	for { //jsweep:ctxloop-ok
		select {
		case v := <-in:
			out <- v
		}
	}
}
