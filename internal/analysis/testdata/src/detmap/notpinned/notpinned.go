// A package outside the bitwise-pinned set: map ranges here are not
// detmap's business.
package notpinned

func anyOrder(m map[int]int, f func(int)) {
	for k := range m {
		f(k)
	}
}
