// detmap fixtures in a bitwise-pinned package path: positive
// (order-sensitive map ranges), negative (collect-and-sort, keyed
// writes, commutative accumulation), and escape-hatch cases.
package graph

import "sort"

// emitInMapOrder is the bug class: output positions follow map order.
func emitInMapOrder(m map[int]int) []int {
	out := make([]int, len(m))
	i := 0
	for k, v := range m { // want `range over map in bitwise-pinned package`
		out[i] = k * v
		i++
	}
	return out
}

// callInBody can observe order through any side effect.
func callInBody(m map[string]int, f func(string)) {
	for k := range m { // want `range over map in bitwise-pinned package`
		f(k)
	}
}

// collectAndSort is the canonical allowed idiom.
func collectAndSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// guardedCollect mirrors flushOutstreams: a pure guard around the
// append cannot reorder anything.
func guardedCollect(m map[string][]int) []string {
	var keys []string
	for k, v := range m {
		if len(v) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// keyedReset writes only m[k] per source key: order-free.
func keyedReset(m map[string][]int) {
	for k, v := range m {
		m[k] = v[:0]
	}
}

// accumulate is commutative.
func accumulate(m map[string]int) (total int, n int) {
	for _, v := range m {
		total += v
		n++
	}
	return
}

// reviewedException uses the documented escape hatch.
func reviewedException(m map[int]func()) {
	// Order cannot matter: the callbacks are mutually independent (test
	// double teardown). //jsweep:nondeterministic-ok
	for _, f := range m {
		f()
	}
}

// inlineException uses the analyzer-name pragma spelling.
func inlineException(m map[int]func()) {
	for _, f := range m { //jsweep:detmap-ok
		f()
	}
}
