// detmap enforces the bitwise-determinism discipline: in the packages
// whose output is pinned bit-for-bit against the serial Reference
// (graph, sweep, nodespec, registry), Go's randomized map iteration
// order must never influence a result — one unsorted `for range m`
// breaks cross-rank hash agreement exactly the way order-sensitive
// cyclic sweeps do (Vermaak et al., arXiv:2004.01824).
package analysis

import (
	"go/ast"
	"go/types"
)

// detmapScope lists the bitwise-pinned packages.
var detmapScope = []string{
	"jsweep/internal/graph",
	"jsweep/internal/sweep",
	"jsweep/internal/nodespec",
	"jsweep/internal/registry",
}

// DetMap flags `for range` over a map in the bitwise-pinned packages
// unless the loop only collects keys/values (to be sorted before use)
// or accumulates order-independent state. The escape hatch
// "//jsweep:nondeterministic-ok" marks loops whose order-insensitivity
// was reviewed by hand.
var DetMap = &Analyzer{
	Name: "detmap",
	Doc: "flags order-sensitive map iteration in the bitwise-pinned packages " +
		"(graph, sweep, nodespec, registry); collect-and-sort loops are allowed",
	Run: runDetMap,
}

func runDetMap(pass *Pass) error {
	if !inScope(pass.Pkg.Path(), detmapScope...) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if collectOnlyBody(pass.TypesInfo, rng) {
				return true
			}
			pass.Reportf(rng.Pos(),
				"range over map in bitwise-pinned package %s: iteration order is random — collect and sort the keys first (or annotate //jsweep:nondeterministic-ok with why order cannot matter)",
				pass.Pkg.Path())
			return true
		})
	}
	return nil
}

// collectOnlyBody reports whether every statement of a map-range body
// is order-independent accumulation: appends (to be sorted before
// use), set/map inserts keyed by the loop variables, counter bumps, or
// commutative numeric accumulation. Anything else — indexing another
// structure, calls, sends, conditionals — can observe iteration order.
func collectOnlyBody(info *types.Info, rng *ast.RangeStmt) bool {
	if len(rng.Body.List) == 0 {
		return true
	}
	return collectOnlyStmts(info, rng.Body.List, keyIdent(rng))
}

func collectOnlyStmts(info *types.Info, stmts []ast.Stmt, key string) bool {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.IncDecStmt:
			// n++ / n-- : commutative.
			if _, ok := unparen(s.X).(*ast.Ident); !ok {
				return false
			}
		case *ast.AssignStmt:
			if !orderFreeAssign(info, s, key) {
				return false
			}
		case *ast.IfStmt:
			// A guard around collection (`if len(fl) > 0 { keys =
			// append(keys, k) }`) reads but cannot reorder; an else branch
			// or init statement is beyond the idiom.
			if s.Init != nil || s.Else != nil || !collectOnlyStmts(info, s.Body.List, key) {
				return false
			}
		case *ast.BranchStmt:
			if s.Tok.String() != "continue" || s.Label != nil {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// keyIdent returns the range statement's key variable name ("" when
// absent or blank).
func keyIdent(rng *ast.RangeStmt) string {
	if id, ok := rng.Key.(*ast.Ident); ok && id.Name != "_" {
		return id.Name
	}
	return ""
}

// orderFreeAssign accepts `xs = append(xs, ...)`, `m[k] = v` keyed by
// the loop key (each source key writes a distinct destination key),
// `n += expr` and `n -= expr` forms.
func orderFreeAssign(info *types.Info, s *ast.AssignStmt, key string) bool {
	switch s.Tok.String() {
	case "+=", "-=", "|=":
		_, ok := unparen(s.Lhs[0]).(*ast.Ident)
		return ok
	case "=":
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return false
		}
		switch lhs := unparen(s.Lhs[0]).(type) {
		case *ast.Ident:
			// xs = append(xs, ...): grows a slice whose final order is the
			// caller's to sort. x = <constant>: idempotent flag store.
			if isSelfAppend(s.Rhs[0], lhs.Name) {
				return true
			}
			return isConstantExpr(unparen(s.Rhs[0]))
		case *ast.IndexExpr:
			// m2[k] = v keyed by the loop key: each source key writes a
			// distinct destination key, so order cannot matter.
			idx, ok := unparen(lhs.Index).(*ast.Ident)
			if !ok || key == "" || idx.Name != key {
				return false
			}
			if tv, ok := info.Types[lhs.X]; ok {
				_, isMap := tv.Type.Underlying().(*types.Map)
				return isMap
			}
			return false
		}
	}
	return false
}

// isSelfAppend matches `append(xs, ...)` growing the slice it is
// assigned back to.
func isSelfAppend(rhs ast.Expr, lhsName string) bool {
	call, ok := unparen(rhs).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "append" || len(call.Args) == 0 {
		return false
	}
	first, ok := unparen(call.Args[0]).(*ast.Ident)
	return ok && first.Name == lhsName
}

// isConstantExpr accepts literal constants (true, false, numbers,
// strings, nil): storing the same constant every iteration is
// idempotent regardless of order.
func isConstantExpr(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.BasicLit:
		return true
	case *ast.Ident:
		return v.Name == "true" || v.Name == "false" || v.Name == "nil"
	}
	return false
}
