package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"jsweep/internal/analysis"
)

// TestRepoIsClean runs the full jsweepvet suite over the live module
// tree and requires zero findings: every true positive has been fixed
// or carries a reviewed //jsweep:<name>-ok annotation, and that state
// is pinned here so a regression (say, re-introducing the PR 6
// use-after-SendPooled bug or an unsorted map range in internal/graph)
// fails `go test` as well as CI's jsweepvet step.
func TestRepoIsClean(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded (%d): loader regression?", len(pkgs))
	}
	diags, err := analysis.RunAnalyzers(pkgs, analysis.All)
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("jsweepvet finding on the live tree: %s", d)
	}
}

// TestLoadSkipsDeps checks Load only surfaces module packages, not the
// standard-library closure go list -deps drags in.
func TestLoadSkipsDeps(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.Load(root, "./internal/obs")
	if err != nil {
		t.Fatalf("loading: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "jsweep/internal/obs" {
		t.Fatalf("want exactly jsweep/internal/obs, got %v", pkgNames(pkgs))
	}
	if pkgs[0].Types == nil || pkgs[0].Info == nil || len(pkgs[0].Files) == 0 {
		t.Fatalf("package loaded without types/info/files")
	}
}

func TestLoadBadPattern(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := analysis.Load(root, "./no/such/dir/..."); err == nil {
		t.Fatalf("want error for a pattern matching nothing")
	} else if !strings.Contains(err.Error(), "go list") {
		t.Fatalf("error should surface the go list invocation, got: %v", err)
	}
}

func pkgNames(pkgs []*analysis.Package) []string {
	var names []string
	for _, p := range pkgs {
		names = append(names, p.Path)
	}
	return names
}
