// Package analysis is jsweep's static-analysis layer: a small,
// dependency-free analyzer framework (mirroring the API shape of
// golang.org/x/tools/go/analysis, which this module deliberately does
// not depend on) plus the suite of jsweep-specific analyzers behind
// cmd/jsweepvet. Each analyzer machine-enforces one of the codebase's
// load-bearing conventions:
//
//   - pooledbuf: the comm.GetBuffer/SendPooled/PutBuffer
//     ownership-transfer contract (use-after-release, pooled buffers
//     escaping through plain Send, shared-slice recycling in loops);
//   - detmap: no order-sensitive map iteration in the bitwise-pinned
//     packages (graph, sweep, nodespec, registry);
//   - ctxloop: unbounded loops in the long-running packages (runtime,
//     netcomm, serve) must have a cancellation or shutdown exit;
//   - lockedfield: struct fields documented "guarded by mu" are only
//     touched by functions that lock that mutex;
//   - errdrop: write-path errors on conns/frame codecs in netcomm and
//     serve are never dropped;
//   - metricname: obs metric registrations use canonical
//     jsweep_-prefixed names and happen at construction, not in loops.
//
// Every analyzer has an escape hatch: a "//jsweep:<name>-ok" comment on
// the flagged line (or the line above) suppresses the finding, so
// justified exceptions are visible and grep-able. The framework mirrors
// x/tools so a future migration (when the dependency is acceptable) is
// mechanical: Analyzer, Pass, Diagnostic and the testdata/src fixture
// convention all translate one to one.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and selects its
	// "//jsweep:<name>-ok" escape-hatch pragma.
	Name string
	// Doc is the one-paragraph invariant description shown by
	// jsweepvet -list.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report  func(Diagnostic)
	pragmas map[string]map[int]map[string]bool // file -> line -> pragma set
}

// Diagnostic is one finding, anchored to a position.
type Diagnostic struct {
	Pos      token.Pos
	Position token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Position, d.Message, d.Analyzer)
}

// Reportf records a finding unless the line (or the line above it)
// carries the analyzer's escape-hatch pragma.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.Allowed(pos) {
		return
	}
	position := p.Fset.Position(pos)
	p.report(Diagnostic{
		Pos:      pos,
		Position: position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Pragma is the escape-hatch comment for this pass's analyzer,
// e.g. "jsweep:detmap-ok". detmap additionally honours the
// documented "jsweep:nondeterministic-ok" spelling.
func (p *Pass) pragmaNames() []string {
	names := []string{"jsweep:" + p.Analyzer.Name + "-ok"}
	if p.Analyzer.Name == "detmap" {
		names = append(names, "jsweep:nondeterministic-ok")
	}
	return names
}

// Allowed reports whether pos sits on (or directly under) a line
// carrying this analyzer's escape-hatch pragma.
func (p *Pass) Allowed(pos token.Pos) bool {
	position := p.Fset.Position(pos)
	lines, ok := p.pragmas[position.Filename]
	if !ok {
		return false
	}
	for _, name := range p.pragmaNames() {
		// Same line (trailing comment) or the line above (lead comment).
		if lines[position.Line][name] || lines[position.Line-1][name] {
			return true
		}
	}
	return false
}

// indexPragmas scans every comment in the pass's files for
// "//jsweep:<word>" pragmas and records them by file and line. A
// multi-line comment group contributes each of its lines, so a pragma
// inside a doc comment covers the declaration that follows it.
func (p *Pass) indexPragmas() {
	p.pragmas = make(map[string]map[int]map[string]bool)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := strings.Index(text, "jsweep:")
				if idx < 0 {
					continue
				}
				// Take the pragma word: "jsweep:" up to whitespace.
				word := text[idx:]
				if cut := strings.IndexAny(word, " \t\n*/"); cut >= 0 {
					word = word[:cut]
				}
				position := p.Fset.Position(c.Pos())
				end := p.Fset.Position(c.End())
				byLine := p.pragmas[position.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					p.pragmas[position.Filename] = byLine
				}
				for line := position.Line; line <= end.Line; line++ {
					set := byLine[line]
					if set == nil {
						set = make(map[string]bool)
						byLine[line] = set
					}
					set[word] = true
				}
			}
		}
	}
}

// RunAnalyzers runs each analyzer over each loaded package and returns
// every finding, sorted by position then analyzer name.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, an := range analyzers {
			pass := &Pass{
				Analyzer:  an,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			pass.indexPragmas()
			if err := an.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", an.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// inScope reports whether a package path is one of the listed paths.
// Fixture packages use the same import paths as the real tree
// (testdata/src/<analyzer>/jsweep/internal/...), so one scope list
// serves both.
func inScope(pkgPath string, paths ...string) bool {
	for _, p := range paths {
		if pkgPath == p {
			return true
		}
	}
	return false
}

// typeIsContext reports whether t is context.Context.
func typeIsContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// funcPkgPath returns the import path of the package a function or
// method object belongs to ("" for builtins).
func funcPkgPath(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// pathBase returns the last element of an import path.
func pathBase(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
