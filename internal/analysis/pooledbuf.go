// pooledbuf enforces the comm buffer-pool ownership-transfer contract
// (internal/comm/pool.go, DESIGN.md): passing a buffer to
// comm.SendPooled or comm.PutBuffer hands ownership away — the caller
// must not read, write, append, re-release or resend the slice
// afterwards. This is the bug class PR 6 fixed by hand in
// TryRecv/replay (pinned payloads) and the silent-flux-corruption
// hazard of recycling a shared slice.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PooledBuf flags (a) any use of a []byte after it was released via
// SendPooled/PutBuffer in the same function, (b) pool-obtained buffers
// escaping through a plain Send call (they never recycle, and a shared
// slice must never be pooled), and (c) a release inside a loop of a
// buffer declared outside it (the AllExchange shared-slice shape: the
// second iteration sends an already-released buffer).
var PooledBuf = &Analyzer{
	Name: "pooledbuf",
	Doc: "flags use of a pooled []byte after comm.SendPooled/PutBuffer released it, " +
		"pooled buffers sent through plain Send, and in-loop releases of loop-external buffers",
	Run: runPooledBuf,
}

func runPooledBuf(pass *Pass) error {
	// The pool implementation itself (comm.SendPooled falls back to
	// ep.Send) is exempt.
	if pathBase(pass.Pkg.Path()) == "comm" {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkPooledFunc(pass, fn.Body)
				}
				return false // nested FuncLits are scanned as part of the body
			}
			return true
		})
	}
	return nil
}

// bufEvent is one occurrence of a tracked buffer variable.
type bufEvent struct {
	pos      token.Pos
	reassign bool // obj is the sole LHS of an assignment (ownership re-armed)
}

// bufRelease is one ownership hand-off.
type bufRelease struct {
	obj     types.Object
	pos     token.Pos
	call    *ast.CallExpr
	inDefer bool
	loops   []*loopInfo // enclosing loops, outermost first
}

type loopInfo struct {
	pos, end token.Pos
}

// checkPooledFunc runs the position-based ownership check over one
// function body (closures included: their statements are linear in the
// same source).
func checkPooledFunc(pass *Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo

	pooled := make(map[types.Object]bool) // vars holding a GetBuffer-backed slice
	uses := make(map[types.Object][]bufEvent)
	var releases []bufRelease

	var loopStack []*loopInfo
	var deferDepth int

	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		switch s := n.(type) {
		case nil:
			return
		case *ast.ForStmt, *ast.RangeStmt:
			loopStack = append(loopStack, &loopInfo{pos: n.Pos(), end: n.End()})
			ast.Inspect(n, func(m ast.Node) bool {
				if m == n {
					return true
				}
				walk(m)
				return false
			})
			loopStack = loopStack[:len(loopStack)-1]
			return
		case *ast.DeferStmt:
			deferDepth++
			walk(s.Call)
			deferDepth--
			return
		case *ast.AssignStmt:
			// Record re-arms: `x = ...` / `x := ...` with x alone on the
			// left resets ownership from that point on.
			for _, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
					if obj := lhsObject(info, id); obj != nil {
						uses[obj] = append(uses[obj], bufEvent{pos: id.Pos(), reassign: len(s.Lhs) == 1})
					}
				}
			}
			// Track pool provenance: RHS containing a GetBuffer call arms
			// the assigned var.
			if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
				if id, ok := s.Lhs[0].(*ast.Ident); ok {
					if obj := lhsObject(info, id); obj != nil && exprHasGetBuffer(info, s.Rhs[0]) {
						pooled[obj] = true
					}
				}
			}
			for _, rhs := range s.Rhs {
				walk(rhs)
			}
			return
		case *ast.CallExpr:
			if obj, relArg := releaseCall(info, s); relArg != nil {
				if id, ok := unparen(relArg).(*ast.Ident); ok {
					if o := info.Uses[id]; o != nil {
						loops := make([]*loopInfo, len(loopStack))
						copy(loops, loopStack)
						releases = append(releases, bufRelease{
							obj: o, pos: s.Pos(), call: s, inDefer: deferDepth > 0, loops: loops,
						})
						// The released argument itself is not a "use".
						for _, arg := range s.Args {
							if unparen(arg) != unparen(relArg) {
								walk(arg)
							}
						}
						walk(s.Fun)
						return
					}
				}
				_ = obj
			}
			if plainSendCall(info, s) {
				for _, arg := range s.Args {
					if id, ok := unparen(arg).(*ast.Ident); ok {
						if o := info.Uses[id]; o != nil && pooled[o] {
							pass.Reportf(arg.Pos(),
								"pooled buffer %s passed to plain Send: it will never recycle; use comm.SendPooled (or drop the pool)", id.Name)
						}
					}
				}
			}
		case *ast.Ident:
			if o := info.Uses[s]; o != nil {
				uses[o] = append(uses[o], bufEvent{pos: s.Pos()})
			}
			return
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n {
				return true
			}
			walk(m)
			return false
		})
	}
	for _, stmt := range body.List {
		walk(stmt)
	}

	for _, rel := range releases {
		// (c) in-loop release of a loop-external buffer: iteration two
		// touches a slice the pool may already have handed out again.
		if !rel.inDefer && len(rel.loops) > 0 {
			inner := rel.loops[len(rel.loops)-1]
			if rel.obj.Pos() < inner.pos || rel.obj.Pos() > inner.end {
				pass.Reportf(rel.pos,
					"buffer %s released inside a loop but declared outside it: a later iteration reuses a slice the pool owns", rel.obj.Name())
				continue
			}
		}
		if rel.inDefer {
			continue // releases at function exit cannot precede a use
		}
		// (a') a second release of the same buffer is a use of freed
		// memory too (the release argument itself is exempted from the
		// use scan below, so double-releases need their own pass).
		for _, later := range releases {
			if later.obj != rel.obj || later.inDefer || later.pos <= rel.call.End() {
				continue
			}
			if reassignedBetween(uses[rel.obj], rel.call.End(), later.pos) {
				continue
			}
			pass.Reportf(later.pos,
				"use of buffer %s after it was released at line %d: SendPooled/PutBuffer hand ownership to the pool", rel.obj.Name(),
				pass.Fset.Position(rel.pos).Line)
		}
		// (a) any occurrence after the release, unless a reassignment
		// re-armed the variable in between.
		for _, ev := range uses[rel.obj] {
			if ev.pos <= rel.call.End() {
				continue
			}
			if reassignedBetween(uses[rel.obj], rel.call.End(), ev.pos) {
				continue
			}
			if ev.reassign {
				continue // the re-arm itself is fine
			}
			pass.Reportf(ev.pos,
				"use of buffer %s after it was released at line %d: SendPooled/PutBuffer hand ownership to the pool", rel.obj.Name(),
				pass.Fset.Position(rel.pos).Line)
		}
	}
}

func reassignedBetween(events []bufEvent, lo, hi token.Pos) bool {
	for _, ev := range events {
		if ev.reassign && ev.pos > lo && ev.pos < hi {
			return true
		}
	}
	return false
}

// lhsObject resolves the object an assignment's LHS ident denotes
// (definition for :=, use for =).
func lhsObject(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// releaseCall recognises comm.SendPooled(ep, to, data),
// comm.PutBuffer(data) and any method call named SendPooled(to, data),
// returning the released data argument.
func releaseCall(info *types.Info, call *ast.CallExpr) (types.Object, ast.Expr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	obj := info.Uses[sel.Sel]
	if obj == nil {
		return nil, nil
	}
	switch sel.Sel.Name {
	case "PutBuffer":
		if pathBase(funcPkgPath(obj)) == "comm" && len(call.Args) == 1 {
			return obj, call.Args[0]
		}
	case "SendPooled":
		if len(call.Args) >= 1 {
			return obj, call.Args[len(call.Args)-1]
		}
	}
	return nil, nil
}

// exprHasGetBuffer reports whether the expression contains a call to
// comm.GetBuffer (possibly sliced or indexed: GetBuffer(n)[:k]).
func exprHasGetBuffer(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "GetBuffer" {
			if obj := info.Uses[sel.Sel]; obj != nil && pathBase(funcPkgPath(obj)) == "comm" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// plainSendCall recognises a method call named exactly Send whose
// signature takes a []byte (the transport's non-pooled send).
func plainSendCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Send" {
		return false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sl, ok := sig.Params().At(i).Type().(*types.Slice); ok {
			if basic, ok := sl.Elem().(*types.Basic); ok && basic.Kind() == types.Byte {
				return true
			}
		}
	}
	return false
}
