// analysistest-style fixture checking: fixture sources carry
// `// want "regexp"` comments on the lines an analyzer must flag, and
// RunFixtures verifies the analyzer produces exactly those findings —
// every want matched by a diagnostic, every diagnostic matched by a
// want. The runner takes a small TB interface instead of *testing.T so
// this package never imports "testing" into the jsweepvet binary.
package analysis

import (
	"fmt"
	"go/token"
	"regexp"
	"strings"
)

// TB is the subset of *testing.T the fixture runner needs.
type TB interface {
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// wantSpec is one expected diagnostic: a file/line anchor plus the
// regexp the message must match.
type wantSpec struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// wantRe extracts the quoted regexps from a `// want "a" "b"` comment.
var wantRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// collectWants scans a package's comments for want specs.
func collectWants(pkg *Package) ([]*wantSpec, error) {
	var wants []*wantSpec
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "want ")
				if idx < 0 {
					continue
				}
				rest := c.Text[idx+len("want "):]
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(rest, -1) {
					pat := m[1]
					if m[0][0] == '"' {
						var err error
						pat, err = unquoteWant(m[2])
						if err != nil {
							return nil, fmt.Errorf("%s: bad want pattern %q: %w", pos, m[0], err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want regexp %q: %w", pos, pat, err)
					}
					wants = append(wants, &wantSpec{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants, nil
}

// unquoteWant undoes the \" and \\ escapes a double-quoted want
// pattern may carry.
func unquoteWant(s string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' {
			if i+1 >= len(s) {
				return "", fmt.Errorf("trailing backslash")
			}
			i++
		}
		b.WriteByte(s[i])
	}
	return b.String(), nil
}

// RunFixtures loads the named fixture packages under srcRoot, runs the
// analyzer over them, and checks the diagnostics against the fixtures'
// want comments.
func RunFixtures(t TB, srcRoot string, an *Analyzer, paths ...string) {
	pkgs, err := LoadFixtures(srcRoot, paths...)
	if err != nil {
		t.Fatalf("loading fixtures under %s: %v", srcRoot, err)
		return
	}
	diags, err := RunAnalyzers(pkgs, []*Analyzer{an})
	if err != nil {
		t.Fatalf("running %s: %v", an.Name, err)
		return
	}
	var wants []*wantSpec
	for _, pkg := range pkgs {
		w, err := collectWants(pkg)
		if err != nil {
			t.Fatalf("collecting wants: %v", err)
			return
		}
		wants = append(wants, w...)
	}
	for _, d := range diags {
		if !matchWant(wants, d.Position, d.Message) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

func matchWant(wants []*wantSpec, pos token.Position, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}
