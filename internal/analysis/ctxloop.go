// ctxloop guards the cancellation guarantees PR 5 threaded through the
// stack: in the long-running packages (runtime, netcomm, serve) an
// unbounded `for { ... }` loop must have some exit — a ctx.Done()/
// ctx.Err() check, a receive from a shutdown-style channel, or a
// return/break path — or it can spin past Close/cancel forever.
package analysis

import (
	"go/ast"
	"regexp"
)

var ctxloopScope = []string{
	"jsweep/internal/runtime",
	"jsweep/internal/netcomm",
	"jsweep/internal/serve",
}

// shutdownChanRe matches channel identifiers conventionally closed at
// shutdown; receiving from one is an accepted exit signal.
var shutdownChanRe = regexp.MustCompile(`(?i)(done|stop|quit|shut|clos|bye|exit|dead)`)

// CtxLoop flags condition-less for loops in the long-running packages
// whose body contains neither a context cancellation check, nor a
// receive from a shutdown-named channel, nor any return or
// loop-terminating break. Loops behind an undocumented exit use
// "//jsweep:ctxloop-ok" with a comment naming the shutdown mechanism.
var CtxLoop = &Analyzer{
	Name: "ctxloop",
	Doc: "flags unbounded for/select loops in runtime, netcomm and serve that can " +
		"spin past cancellation: no ctx.Done()/ctx.Err(), no shutdown-channel receive, no return/break",
	Run: runCtxLoop,
}

func runCtxLoop(pass *Pass) error {
	if !inScope(pass.Pkg.Path(), ctxloopScope...) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok || loop.Cond != nil {
				return true
			}
			if loopHasExit(pass, loop) {
				return true
			}
			pass.Reportf(loop.Pos(),
				"unbounded for loop without a cancellation exit: check ctx.Done()/ctx.Err(), receive from a shutdown channel, or annotate //jsweep:ctxloop-ok naming the exit mechanism")
			return true
		})
	}
	return nil
}

// loopHasExit scans a loop body for any accepted exit: ctx
// cancellation, shutdown-channel receive, return, or a break that
// terminates this loop (not an inner select/switch/loop).
func loopHasExit(pass *Pass, loop *ast.ForStmt) bool {
	found := false
	// breakable tracks whether a break statement at this point binds to
	// the flagged loop.
	var scan func(n ast.Node, breakBindsHere bool)
	scan = func(n ast.Node, breakBindsHere bool) {
		if n == nil || found {
			return
		}
		switch s := n.(type) {
		case *ast.ReturnStmt:
			found = true
			return
		case *ast.BranchStmt:
			// An unlabeled break binds to the nearest for/select/switch; a
			// labeled one to its label (assume it exits the loop — labels
			// on inner statements that shadow are vanishingly rare and a
			// goto out is an exit anyway).
			if s.Tok.String() == "goto" {
				found = true
				return
			}
			if s.Tok.String() == "break" && (breakBindsHere || s.Label != nil) {
				found = true
			}
			return
		case *ast.ForStmt, *ast.RangeStmt:
			if n != loop {
				// Inner loop: breaks inside bind to it, but returns and ctx
				// checks still count.
				for _, child := range childStmts(n) {
					scan(child, false)
				}
				return
			}
		case *ast.SelectStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt:
			// break inside binds to this statement, not the loop.
			for _, child := range childStmts(n) {
				scan(child, false)
			}
			return
		case *ast.FuncLit:
			return // a nested function's control flow is its own
		case *ast.CallExpr:
			if sel, ok := s.Fun.(*ast.SelectorExpr); ok {
				if sel.Sel.Name == "Done" || sel.Sel.Name == "Err" {
					if tv, ok := pass.TypesInfo.Types[sel.X]; ok && typeIsContext(tv.Type) {
						found = true
						return
					}
				}
			}
		case *ast.UnaryExpr:
			// <-ch receive: accepted when the channel's name looks like a
			// shutdown signal (quit, done, closing, ...).
			if s.Op.String() == "<-" {
				if shutdownChanRe.MatchString(exprName(s.X)) {
					found = true
					return
				}
			}
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n {
				return true
			}
			scan(m, breakBindsHere)
			return false
		})
	}
	for _, stmt := range loop.Body.List {
		scan(stmt, true)
	}
	return found
}

// childStmts returns the immediate child nodes of a compound statement
// for re-scanning with break binding disabled.
func childStmts(n ast.Node) []ast.Node {
	var out []ast.Node
	ast.Inspect(n, func(m ast.Node) bool {
		if m == n {
			return true
		}
		if m != nil {
			out = append(out, m)
		}
		return false
	})
	return out
}

// exprName renders the trailing identifier of an expression
// (x, s.quit, p.rt.closed) for the shutdown-name heuristic.
func exprName(e ast.Expr) string {
	switch v := unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return v.Sel.Name
	case *ast.CallExpr:
		return exprName(v.Fun)
	}
	return ""
}
