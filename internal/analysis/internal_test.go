package analysis

import (
	"go/token"
	"regexp"
	"strings"
	"testing"
)

func TestByName(t *testing.T) {
	found, missing := ByName("detmap", "pooledbuf")
	if len(found) != 2 || found[0] != DetMap || found[1] != PooledBuf {
		t.Fatalf("ByName(detmap, pooledbuf) = %v", found)
	}
	if len(missing) != 0 {
		t.Fatalf("unexpected missing: %v", missing)
	}
	found, missing = ByName("detmap", "nosuch")
	if len(found) != 1 || len(missing) != 1 || missing[0] != "nosuch" {
		t.Fatalf("ByName with unknown name: found=%v missing=%v", found, missing)
	}
}

func TestSuiteNamesUniqueAndDocumented(t *testing.T) {
	seen := make(map[string]bool)
	for _, a := range All {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name/doc/run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}

func TestInScope(t *testing.T) {
	if !inScope("jsweep/internal/graph", detmapScope...) {
		t.Errorf("graph should be in detmap scope")
	}
	if inScope("jsweep/internal/graphx", detmapScope...) {
		t.Errorf("scope match must be exact, not a prefix")
	}
}

func TestPathBase(t *testing.T) {
	if got := pathBase("jsweep/internal/comm"); got != "comm" {
		t.Errorf("pathBase = %q", got)
	}
	if got := pathBase("main"); got != "main" {
		t.Errorf("pathBase(no slash) = %q", got)
	}
}

func TestUnquoteWant(t *testing.T) {
	got, err := unquoteWant(`access to running \(guarded by mu\)`)
	if err != nil {
		t.Fatal(err)
	}
	if got != `access to running (guarded by mu)` {
		t.Errorf("unquoteWant = %q", got)
	}
	if _, err := unquoteWant(`trailing\`); err == nil {
		t.Errorf("want error for trailing backslash")
	}
}

func TestMatchWantConsumesOnce(t *testing.T) {
	w := &wantSpec{file: "f.go", line: 3, re: regexp.MustCompile("boom")}
	wants := []*wantSpec{w}
	pos := token.Position{Filename: "f.go", Line: 3}
	if !matchWant(wants, pos, "boom happened") {
		t.Fatalf("first match should succeed")
	}
	if matchWant(wants, pos, "boom happened") {
		t.Fatalf("a want must match at most one diagnostic")
	}
	if matchWant(wants, token.Position{Filename: "g.go", Line: 3}, "boom") {
		t.Fatalf("file must anchor the match")
	}
}

// errTB records fixture-runner failures instead of failing the real test.
type errTB struct {
	errors []string
	fatals []string
}

func (e *errTB) Errorf(format string, args ...any) {
	e.errors = append(e.errors, strings.TrimSpace(format))
}

func (e *errTB) Fatalf(format string, args ...any) {
	e.fatals = append(e.fatals, strings.TrimSpace(format))
}

func TestRunFixturesReportsBadRoot(t *testing.T) {
	tb := &errTB{}
	RunFixtures(tb, "testdata/src/nosuch", DetMap, "a")
	if len(tb.fatals) == 0 {
		t.Fatalf("missing fixture tree must be fatal")
	}
}

func TestAllowedPragmaPlacement(t *testing.T) {
	pass := &Pass{
		Analyzer: DetMap,
		pragmas: map[string]map[int]map[string]bool{
			"x.go": {
				7:  {"jsweep:detmap-ok": true},
				20: {"jsweep:nondeterministic-ok": true},
			},
		},
	}
	fset := token.NewFileSet()
	f := fset.AddFile("x.go", -1, 1000)
	for i := 1; i <= 30; i++ {
		f.AddLine(i * 30)
	}
	pass.Fset = fset
	posAt := func(line int) token.Pos { return f.LineStart(line) }
	if !pass.Allowed(posAt(7)) {
		t.Errorf("same-line pragma must suppress")
	}
	if !pass.Allowed(posAt(8)) {
		t.Errorf("pragma on the line above must suppress")
	}
	if pass.Allowed(posAt(9)) {
		t.Errorf("pragma two lines up must not suppress")
	}
	if !pass.Allowed(posAt(21)) {
		t.Errorf("detmap must honour jsweep:nondeterministic-ok")
	}
	errPass := &Pass{Analyzer: ErrDrop, Fset: fset, pragmas: pass.pragmas}
	if errPass.Allowed(posAt(21)) {
		t.Errorf("nondeterministic-ok is detmap-only")
	}
}

func TestWantReQuoting(t *testing.T) {
	ms := wantRe.FindAllStringSubmatch("want `a b` \"c\\\"d\"", -1)
	if len(ms) != 2 {
		t.Fatalf("want two patterns, got %v", ms)
	}
	if ms[0][1] != "a b" {
		t.Errorf("backtick pattern = %q", ms[0][1])
	}
	if ms[1][2] != `c\"d` {
		t.Errorf("quoted pattern = %q", ms[1][2])
	}
}

func TestExportLookupMissing(t *testing.T) {
	lookup := exportLookup(map[string]string{})
	if _, err := lookup("fmt"); err == nil {
		t.Errorf("missing export data must error, not panic")
	}
}

func TestShutdownChanRe(t *testing.T) {
	for _, name := range []string{"done", "stopCh", "s.quit", "shutdown", "closing"} {
		if !shutdownChanRe.MatchString(name) {
			t.Errorf("%q should read as a shutdown channel", name)
		}
	}
	if shutdownChanRe.MatchString("jobs") {
		t.Errorf("a work channel must not read as a shutdown channel")
	}
}

func TestWriteish(t *testing.T) {
	for _, name := range []string{"Write", "WriteFrame", "writeFrame", "Flush"} {
		if !writeish(name) {
			t.Errorf("%q should be write-path", name)
		}
	}
	for _, name := range []string{"Read", "Close", "flushed"} {
		if writeish(name) {
			t.Errorf("%q should not be write-path", name)
		}
	}
}

func TestMetricNameRe(t *testing.T) {
	for _, good := range []string{"jsweep_jobs_total", "jsweep_queue_depth"} {
		if !metricNameRe.MatchString(good) {
			t.Errorf("%q should be canonical", good)
		}
	}
	for _, bad := range []string{"jobs_total", "jsweep_queueDepth", "jsweep_", "Jsweep_x"} {
		if metricNameRe.MatchString(bad) {
			t.Errorf("%q should not be canonical", bad)
		}
	}
}
