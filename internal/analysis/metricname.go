// metricname keeps the obs metric namespace canonical: every
// counter/gauge/histogram registered on an obs.Registry carries a
// jsweep_-prefixed snake_case name (so dashboards and the
// serve_smoke.sh greps never chase a typo), and registration happens
// at construction — resolving a handle inside a loop or hot path is
// the exact overhead the obs design contract forbids.
package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strconv"
	"strings"
)

var metricNameRe = regexp.MustCompile(`^jsweep_[a-z0-9_]+$`)

// registration methods on *obs.Registry.
var obsRegisterMethods = map[string]bool{
	"Counter": true, "Gauge": true, "GaugeFunc": true, "Histogram": true,
	"CounterVec": true, "GaugeVec": true, "HistogramVec": true,
}

// MetricName flags obs registrations whose name literal does not match
// ^jsweep_[a-z0-9_]+$ (or is not a literal at all), and registrations
// that sit inside a loop instead of at construction.
var MetricName = &Analyzer{
	Name: "metricname",
	Doc: "flags obs counter/gauge/histogram registrations with non-canonical names " +
		"(^jsweep_[a-z0-9_]+$) or sitting inside loops instead of at construction",
	Run: runMetricName,
}

func runMetricName(pass *Pass) error {
	// The obs package itself (and its own tests' arbitrary names) is the
	// mechanism, not a user.
	if pathBase(pass.Pkg.Path()) == "obs" {
		return nil
	}
	for _, file := range pass.Files {
		var loopDepth int
		var walk func(n ast.Node)
		walk = func(n ast.Node) {
			if n == nil {
				return
			}
			switch s := n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				loopDepth++
				ast.Inspect(n, func(m ast.Node) bool {
					if m == n {
						return true
					}
					walk(m)
					return false
				})
				loopDepth--
				return
			case *ast.CallExpr:
				checkRegistration(pass, s, loopDepth > 0)
			}
			ast.Inspect(n, func(m ast.Node) bool {
				if m == n {
					return true
				}
				walk(m)
				return false
			})
		}
		walk(file)
	}
	return nil
}

// checkRegistration vets one call if it is an obs.Registry
// registration.
func checkRegistration(pass *Pass, call *ast.CallExpr, inLoop bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !obsRegisterMethods[sel.Sel.Name] || len(call.Args) == 0 {
		return
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil {
		return
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !isObsRegistry(sig.Recv().Type()) {
		return
	}
	if inLoop {
		pass.Reportf(call.Pos(),
			"obs registration %s inside a loop: resolve metric handles once at construction (the obs hot-path contract)", sel.Sel.Name)
	}
	lit, ok := unparen(call.Args[0]).(*ast.BasicLit)
	if !ok {
		pass.Reportf(call.Args[0].Pos(),
			"obs metric name is not a string literal: names must be statically checkable against ^jsweep_[a-z0-9_]+$")
		return
	}
	name, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	if !metricNameRe.MatchString(name) {
		pass.Reportf(lit.Pos(),
			"obs metric name %q does not match ^jsweep_[a-z0-9_]+$", name)
	}
}

// isObsRegistry reports whether t is (a pointer to) obs.Registry.
func isObsRegistry(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil &&
		(obj.Pkg().Path() == "jsweep/internal/obs" || strings.HasSuffix(obj.Pkg().Path(), "/obs") || obj.Pkg().Path() == "obs")
}
