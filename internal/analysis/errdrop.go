// errdrop targets the swallowed-Bye-error class PR 6 fixed: in the
// wire-facing packages (netcomm, serve) an error returned by a write
// on a connection or by a frame-codec encode must be checked — a
// dropped write error leaves a half-dead peer undetected until the
// next collective hangs.
package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

var errdropScope = []string{
	"jsweep/internal/netcomm",
	"jsweep/internal/serve",
}

// ErrDrop flags discarded error results — bare expression statements
// and `_ =` assignments — of Write*/write*/Flush methods and
// frame-codec write functions in the wire-facing packages.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc: "flags dropped errors from conn/codec write calls in netcomm and serve " +
		"(the swallowed-Bye-error class): record or propagate them",
	Run: runErrDrop,
}

func runErrDrop(pass *Pass) error {
	if !inScope(pass.Pkg.Path(), errdropScope...) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := unparen(s.X).(*ast.CallExpr); ok {
					checkDroppedWrite(pass, call)
				}
			case *ast.AssignStmt:
				// `_ = conn.Write(...)` and `_, _ = w.Write(...)`: every
				// result blanked.
				if len(s.Rhs) == 1 && allBlank(s.Lhs) {
					if call, ok := unparen(s.Rhs[0]).(*ast.CallExpr); ok {
						checkDroppedWrite(pass, call)
					}
				}
			}
			return true
		})
	}
	return nil
}

func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := unparen(e).(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// checkDroppedWrite reports the call if it is a write-path call whose
// (discarded) results include an error.
func checkDroppedWrite(pass *Pass, call *ast.CallExpr) {
	name, obj := calleeName(pass.TypesInfo, call)
	if obj == nil || !writeish(name) {
		return
	}
	if !returnsError(obj) {
		return
	}
	pass.Reportf(call.Pos(),
		"dropped error from %s: write-path errors in %s must be recorded or propagated (the swallowed-Bye class)",
		name, pathBase(pass.Pkg.Path()))
}

// writeish matches the write-path surface: Write/write prefixes (Write,
// WriteTo, WriteFrame, writev batches) and Flush.
func writeish(name string) bool {
	return strings.HasPrefix(name, "Write") || strings.HasPrefix(name, "write") || name == "Flush"
}

func calleeName(info *types.Info, call *ast.CallExpr) (string, types.Object) {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name, info.Uses[fun]
	case *ast.SelectorExpr:
		return fun.Sel.Name, info.Uses[fun.Sel]
	}
	return "", nil
}

// returnsError reports whether the callable's last result is error.
func returnsError(obj types.Object) bool {
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}
