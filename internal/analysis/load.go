// Package loading for the analyzer driver. Two loaders share the same
// type-checking core:
//
//   - Load: the production path. It shells out to `go list -export
//     -deps -json <patterns>` (the same toolchain invocation every
//     other jsweep tool relies on) and type-checks each module package
//     from source against the compiled export data of its
//     dependencies. No third-party loader is needed: the gc importer
//     in the standard library reads the export files the build cache
//     already holds.
//
//   - LoadFixtures: the analysistest path. It loads fixture packages
//     from a testdata/src tree, resolving imports first among the
//     fixture dirs themselves (type-checked from source, recursively)
//     and then from the standard library's export data.
package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPackage is the subset of `go list -json` output the driver needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// goList runs `go list -export -deps -json` in dir and decodes the
// package stream.
func goList(dir string, patterns ...string) ([]listPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []listPackage
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportLookup builds the gc-importer lookup function over a
// path -> export-file map.
func exportLookup(exports map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	}
}

// parseDir parses every listed file of a package directory.
func parseDir(fset *token.FileSet, dir string, files []string) ([]*ast.File, error) {
	var parsed []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
	}
	return parsed, nil
}

// Load loads the module packages matching the go-list patterns,
// type-checked and ready for RunAnalyzers. dir anchors pattern
// resolution (the module root for "./...").
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	lookup := exportLookup(exports)
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		fset := token.NewFileSet()
		files, err := parseDir(fset, p.Dir, p.GoFiles)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", p.ImportPath, err)
		}
		info := newInfo()
		conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", p.ImportPath, err)
		}
		out = append(out, &Package{
			Path:  p.ImportPath,
			Dir:   p.Dir,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// fixtureLoader type-checks a testdata/src tree: fixture packages from
// source, everything else from the standard library's export data.
type fixtureLoader struct {
	srcRoot string
	fset    *token.FileSet
	exports map[string]string         // stdlib path -> export file
	std     map[string]*types.Package // stdlib cache (via gc importer)
	checked map[string]*Package       // fixture path -> package
	gc      types.Importer
}

// Import implements types.Importer over the two-tier resolution.
func (l *fixtureLoader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.checked[path]; ok {
		return pkg.Types, nil
	}
	if fi, err := os.Stat(filepath.Join(l.srcRoot, path)); err == nil && fi.IsDir() {
		pkg, err := l.loadFixture(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.gc.Import(path)
}

// loadFixture type-checks one fixture package (recursing into fixture
// imports through Import above).
func (l *fixtureLoader) loadFixture(path string) (*Package, error) {
	if pkg, ok := l.checked[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.srcRoot, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: fixture %s: no .go files", path)
	}
	files, err := parseDir(l.fset, dir, names)
	if err != nil {
		return nil, fmt.Errorf("analysis: parsing fixture %s: %w", path, err)
	}
	info := newInfo()
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking fixture %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.checked[path] = pkg
	return pkg, nil
}

// stdlibImports walks every .go file under srcRoot and collects the
// import paths that do not resolve to fixture directories — the
// standard-library closure the loader must have export data for.
func stdlibImports(srcRoot string) ([]string, error) {
	seen := make(map[string]bool)
	err := filepath.WalkDir(srcRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return fmt.Errorf("analysis: scanning %s: %w", path, err)
		}
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if fi, err := os.Stat(filepath.Join(srcRoot, p)); err == nil && fi.IsDir() {
				continue // fixture-local import
			}
			seen[p] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	paths := make([]string, 0, len(seen))
	for p := range seen {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths, nil
}

// LoadFixtures loads the named fixture packages (paths relative to
// srcRoot, which plays the role of analysistest's GOPATH/src) and
// returns them in the order given. Fixture imports resolve against the
// tree itself first, then the standard library.
func LoadFixtures(srcRoot string, paths ...string) ([]*Package, error) {
	abs, err := filepath.Abs(srcRoot)
	if err != nil {
		return nil, err
	}
	std, err := stdlibImports(abs)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	if len(std) > 0 {
		listed, err := goList(abs, std...)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	fset := token.NewFileSet()
	l := &fixtureLoader{
		srcRoot: abs,
		fset:    fset,
		exports: exports,
		checked: make(map[string]*Package),
	}
	l.gc = importer.ForCompiler(fset, "gc", exportLookup(exports))
	var out []*Package
	for _, p := range paths {
		pkg, err := l.loadFixture(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}
