package mesh

import (
	"math"
	"testing"

	"jsweep/internal/geom"
)

// FacePoint must return a point on the face plane: (FacePoint − any point
// of the face plane)·normal == 0, and the cell centre must be on the
// negative side of the outward normal.
func TestStructuredFacePoint(t *testing.T) {
	m, err := NewStructured3D(3, 4, 5, geom.Vec3{X: -1, Y: 2, Z: 0}, geom.Vec3{X: 3, Y: 4, Z: 5})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < m.NumCells(); c++ {
		ctr := m.CellCenter(CellID(c))
		for f := 0; f < 6; f++ {
			face := m.Face(CellID(c), f)
			fp := m.FacePoint(CellID(c), f)
			// Centre is half a cell inside the face along the normal.
			d := fp.Sub(ctr).Dot(face.Normal)
			if d <= 0 {
				t.Fatalf("cell %d face %d: centre not inside (d=%v)", c, f, d)
			}
			want := []float64{m.DX / 2, m.DX / 2, m.DY / 2, m.DY / 2, m.DZ / 2, m.DZ / 2}[f]
			if math.Abs(d-want) > 1e-12 {
				t.Fatalf("cell %d face %d: distance %v, want %v", c, f, d, want)
			}
		}
	}
}

func TestUnstructuredFacePoint(t *testing.T) {
	verts := []geom.Vec3{{}, {X: 1}, {Y: 1}, {Z: 1}}
	m, err := NewUnstructuredFromTets(verts, [][4]int32{{0, 1, 2, 3}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctr := m.CellCenter(0)
	for f := 0; f < 4; f++ {
		face := m.Face(0, f)
		fp := m.FacePoint(0, f)
		d := fp.Sub(ctr).Dot(face.Normal)
		if d <= 0 {
			t.Fatalf("face %d: centroid on wrong side (d=%v)", f, d)
		}
	}
}
