// Package mesh provides the discretized-domain substrate the JSweep stack is
// built on: an abstract cell/face view shared by structured and unstructured
// meshes (paper §II-A), plus the patch decomposition machinery of the
// JAxMIN-style infrastructure (paper §II-B).
//
// Terminology follows the paper: a mesh is a set of cells; a patch is a
// collection of contiguous cells owned by one logical processing element;
// ghost cells are the halo of remote cells adjacent to a patch.
package mesh

import (
	"fmt"
	"sort"

	"jsweep/internal/geom"
)

// UpwindEps is the shared threshold for classifying a face against a sweep
// direction: |Ω·n| ≤ UpwindEps means "grazing — no flow, no dependency".
// The DAG builder and every transport kernel must use the same value, or a
// kernel could wait on flux the graph never delivers.
const UpwindEps = 1e-12

// CellID identifies a cell within a mesh. IDs are dense in [0, NumCells).
type CellID int32

// PatchID identifies a patch within a decomposition. Dense in [0, NumPatches).
type PatchID int32

// Face is one face of a cell as seen from that cell.
type Face struct {
	// Neighbor is the cell on the other side, or -1 on the domain boundary.
	Neighbor CellID
	// Normal is the outward unit normal of the face.
	Normal geom.Vec3
	// Area is the face area.
	Area float64
}

// Mesh is the abstract view of a discretized domain. Both the structured and
// the unstructured implementation satisfy it; everything above this layer
// (DAG construction, sweeps, partitioning) is written against it, which is
// what lets JSweep treat both mesh families uniformly.
type Mesh interface {
	// NumCells returns the number of cells.
	NumCells() int
	// CellCenter returns the centroid of cell c.
	CellCenter(c CellID) geom.Vec3
	// CellVolume returns the volume of cell c.
	CellVolume(c CellID) float64
	// NumFaces returns the number of faces of cell c.
	NumFaces(c CellID) int
	// Face returns face i of cell c.
	Face(c CellID, i int) Face
	// Material returns the material zone id of cell c.
	Material(c CellID) int
	// Structured reports whether the mesh is a regular structured grid.
	Structured() bool
}

// Decomposition is a patch decomposition of a mesh: every cell belongs to
// exactly one patch, and each patch knows its cells, its neighbouring
// patches, and (once placed) its owning process rank.
type Decomposition struct {
	Mesh Mesh
	// CellPatch maps every cell to its patch.
	CellPatch []PatchID
	// Cells lists, per patch, the owned cells in ascending CellID order.
	Cells [][]CellID
	// Local maps every cell to its index within Cells[CellPatch[c]].
	Local []int32
	// Neighbors lists, per patch, the adjacent patches (patches that share
	// at least one face), ascending.
	Neighbors [][]PatchID
	// Owner maps every patch to the process rank that owns it. Filled by
	// Place; defaults to a block distribution over patch ids.
	Owner []int
}

// NumPatches returns the number of patches.
func (d *Decomposition) NumPatches() int { return len(d.Cells) }

// NewDecomposition builds a Decomposition from a per-cell patch assignment.
// Patch ids must be dense in [0, numPatches). Empty patches are rejected.
func NewDecomposition(m Mesh, cellPatch []PatchID, numPatches int) (*Decomposition, error) {
	if len(cellPatch) != m.NumCells() {
		return nil, fmt.Errorf("mesh: assignment covers %d cells, mesh has %d", len(cellPatch), m.NumCells())
	}
	d := &Decomposition{
		Mesh:      m,
		CellPatch: cellPatch,
		Cells:     make([][]CellID, numPatches),
		Local:     make([]int32, m.NumCells()),
	}
	for c, p := range cellPatch {
		if p < 0 || int(p) >= numPatches {
			return nil, fmt.Errorf("mesh: cell %d assigned to patch %d outside [0,%d)", c, p, numPatches)
		}
		d.Cells[p] = append(d.Cells[p], CellID(c))
	}
	for p := range d.Cells {
		if len(d.Cells[p]) == 0 {
			return nil, fmt.Errorf("mesh: patch %d is empty", p)
		}
		for i, c := range d.Cells[p] {
			d.Local[c] = int32(i)
		}
	}
	// Patch adjacency from cell faces.
	nbset := make([]map[PatchID]struct{}, numPatches)
	for p := range nbset {
		nbset[p] = make(map[PatchID]struct{})
	}
	nc := m.NumCells()
	for c := 0; c < nc; c++ {
		pc := cellPatch[c]
		nf := m.NumFaces(CellID(c))
		for i := 0; i < nf; i++ {
			f := m.Face(CellID(c), i)
			if f.Neighbor < 0 {
				continue
			}
			pn := cellPatch[f.Neighbor]
			if pn != pc {
				nbset[pc][pn] = struct{}{}
			}
		}
	}
	d.Neighbors = make([][]PatchID, numPatches)
	for p, set := range nbset {
		for q := range set {
			d.Neighbors[p] = append(d.Neighbors[p], q)
		}
		sort.Slice(d.Neighbors[p], func(i, j int) bool { return d.Neighbors[p][i] < d.Neighbors[p][j] })
	}
	d.Owner = make([]int, numPatches)
	return d, nil
}

// Place assigns patches to process ranks in contiguous blocks of the patch
// id order (patch ids produced by the partitioners follow a locality-
// preserving order, so block placement keeps neighbours together).
func (d *Decomposition) Place(numProcs int) {
	n := d.NumPatches()
	if numProcs < 1 {
		numProcs = 1
	}
	for p := 0; p < n; p++ {
		d.Owner[p] = p * numProcs / n
	}
}

// PatchOf returns the patch owning cell c.
func (d *Decomposition) PatchOf(c CellID) PatchID { return d.CellPatch[c] }

// GhostCells returns the ghost layer of patch p: all remote cells adjacent
// to a cell of p through a face, ascending and deduplicated.
func (d *Decomposition) GhostCells(p PatchID) []CellID {
	seen := make(map[CellID]struct{})
	for _, c := range d.Cells[p] {
		nf := d.Mesh.NumFaces(c)
		for i := 0; i < nf; i++ {
			f := d.Mesh.Face(c, i)
			if f.Neighbor >= 0 && d.CellPatch[f.Neighbor] != p {
				seen[f.Neighbor] = struct{}{}
			}
		}
	}
	out := make([]CellID, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Balance returns the load-imbalance ratio max/avg of patch sizes.
func (d *Decomposition) Balance() float64 {
	maxSz, total := 0, 0
	for _, cs := range d.Cells {
		if len(cs) > maxSz {
			maxSz = len(cs)
		}
		total += len(cs)
	}
	avg := float64(total) / float64(len(d.Cells))
	return float64(maxSz) / avg
}

// EdgeCut returns the number of mesh faces whose two cells live in
// different patches (each shared face counted once).
func (d *Decomposition) EdgeCut() int {
	cut := 0
	nc := d.Mesh.NumCells()
	for c := 0; c < nc; c++ {
		nf := d.Mesh.NumFaces(CellID(c))
		for i := 0; i < nf; i++ {
			f := d.Mesh.Face(CellID(c), i)
			if f.Neighbor > CellID(c) && d.CellPatch[f.Neighbor] != d.CellPatch[c] {
				cut++
			}
		}
	}
	return cut
}
