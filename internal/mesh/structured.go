package mesh

import (
	"fmt"

	"jsweep/internal/geom"
)

// Structured3D is a regular NX×NY×NZ hexahedral grid with uniform spacing.
// Cell (i,j,k) has id i + NX*(j + NY*k). Faces are emitted in the fixed
// order -x, +x, -y, +y, -z, +z, which the structured sweep kernels rely on.
type Structured3D struct {
	NX, NY, NZ int
	// Origin is the lower corner of the domain; DX, DY, DZ the cell sizes.
	Origin     geom.Vec3
	DX, DY, DZ float64

	// materials holds a zone id per cell; nil means material 0 everywhere.
	materials []int32
}

// Face ordering constants for Structured3D.
const (
	FaceXLo = 0
	FaceXHi = 1
	FaceYLo = 2
	FaceYHi = 3
	FaceZLo = 4
	FaceZHi = 5
)

// NewStructured3D builds a structured grid over [origin, origin+extent] with
// nx×ny×nz cells.
func NewStructured3D(nx, ny, nz int, origin, extent geom.Vec3) (*Structured3D, error) {
	if nx < 1 || ny < 1 || nz < 1 {
		return nil, fmt.Errorf("mesh: structured dims must be >= 1 (got %d,%d,%d)", nx, ny, nz)
	}
	if extent.X <= 0 || extent.Y <= 0 || extent.Z <= 0 {
		return nil, fmt.Errorf("mesh: structured extent must be positive (got %+v)", extent)
	}
	return &Structured3D{
		NX: nx, NY: ny, NZ: nz,
		Origin: origin,
		DX:     extent.X / float64(nx),
		DY:     extent.Y / float64(ny),
		DZ:     extent.Z / float64(nz),
	}, nil
}

// Index returns the cell id of (i,j,k). No bounds checking.
func (m *Structured3D) Index(i, j, k int) CellID {
	return CellID(i + m.NX*(j+m.NY*k))
}

// Coords returns the (i,j,k) coordinates of cell c.
func (m *Structured3D) Coords(c CellID) (i, j, k int) {
	i = int(c) % m.NX
	j = (int(c) / m.NX) % m.NY
	k = int(c) / (m.NX * m.NY)
	return
}

// NumCells implements Mesh.
func (m *Structured3D) NumCells() int { return m.NX * m.NY * m.NZ }

// CellCenter implements Mesh.
func (m *Structured3D) CellCenter(c CellID) geom.Vec3 {
	i, j, k := m.Coords(c)
	return geom.Vec3{
		X: m.Origin.X + (float64(i)+0.5)*m.DX,
		Y: m.Origin.Y + (float64(j)+0.5)*m.DY,
		Z: m.Origin.Z + (float64(k)+0.5)*m.DZ,
	}
}

// CellVolume implements Mesh.
func (m *Structured3D) CellVolume(CellID) float64 { return m.DX * m.DY * m.DZ }

// NumFaces implements Mesh. Structured cells always have 6 faces.
func (m *Structured3D) NumFaces(CellID) int { return 6 }

// Face implements Mesh, with the fixed ordering -x,+x,-y,+y,-z,+z.
func (m *Structured3D) Face(c CellID, f int) Face {
	i, j, k := m.Coords(c)
	switch f {
	case FaceXLo:
		nb := CellID(-1)
		if i > 0 {
			nb = m.Index(i-1, j, k)
		}
		return Face{Neighbor: nb, Normal: geom.Vec3{X: -1}, Area: m.DY * m.DZ}
	case FaceXHi:
		nb := CellID(-1)
		if i < m.NX-1 {
			nb = m.Index(i+1, j, k)
		}
		return Face{Neighbor: nb, Normal: geom.Vec3{X: 1}, Area: m.DY * m.DZ}
	case FaceYLo:
		nb := CellID(-1)
		if j > 0 {
			nb = m.Index(i, j-1, k)
		}
		return Face{Neighbor: nb, Normal: geom.Vec3{Y: -1}, Area: m.DX * m.DZ}
	case FaceYHi:
		nb := CellID(-1)
		if j < m.NY-1 {
			nb = m.Index(i, j+1, k)
		}
		return Face{Neighbor: nb, Normal: geom.Vec3{Y: 1}, Area: m.DX * m.DZ}
	case FaceZLo:
		nb := CellID(-1)
		if k > 0 {
			nb = m.Index(i, j, k-1)
		}
		return Face{Neighbor: nb, Normal: geom.Vec3{Z: -1}, Area: m.DX * m.DY}
	case FaceZHi:
		nb := CellID(-1)
		if k < m.NZ-1 {
			nb = m.Index(i, j, k+1)
		}
		return Face{Neighbor: nb, Normal: geom.Vec3{Z: 1}, Area: m.DX * m.DY}
	}
	panic(fmt.Sprintf("mesh: structured face index %d out of range [0,6)", f))
}

// FacePoint returns a point on the plane of face f of cell c (used by ray
// tracers to intersect faces).
func (m *Structured3D) FacePoint(c CellID, f int) geom.Vec3 {
	i, j, k := m.Coords(c)
	lo := geom.Vec3{
		X: m.Origin.X + float64(i)*m.DX,
		Y: m.Origin.Y + float64(j)*m.DY,
		Z: m.Origin.Z + float64(k)*m.DZ,
	}
	switch f {
	case FaceXLo:
		return lo
	case FaceXHi:
		return geom.Vec3{X: lo.X + m.DX, Y: lo.Y, Z: lo.Z}
	case FaceYLo:
		return lo
	case FaceYHi:
		return geom.Vec3{X: lo.X, Y: lo.Y + m.DY, Z: lo.Z}
	case FaceZLo:
		return lo
	case FaceZHi:
		return geom.Vec3{X: lo.X, Y: lo.Y, Z: lo.Z + m.DZ}
	}
	panic("mesh: face index out of range")
}

// Material implements Mesh.
func (m *Structured3D) Material(c CellID) int {
	if m.materials == nil {
		return 0
	}
	return int(m.materials[c])
}

// Structured implements Mesh.
func (m *Structured3D) Structured() bool { return true }

// SetMaterialFunc assigns a material zone to every cell from its centroid.
func (m *Structured3D) SetMaterialFunc(zone func(center geom.Vec3) int) {
	m.materials = make([]int32, m.NumCells())
	for c := 0; c < m.NumCells(); c++ {
		m.materials[c] = int32(zone(m.CellCenter(CellID(c))))
	}
}

// BlockDecompose splits the grid into patches of size px×py×pz cells
// (boundary patches may be smaller) and returns the decomposition with
// patches ordered by block (bi, bj, bk) in x-fastest order. This is the
// "patch size = 20×20×20" style decomposition used throughout the paper's
// structured experiments.
func (m *Structured3D) BlockDecompose(px, py, pz int) (*Decomposition, error) {
	if px < 1 || py < 1 || pz < 1 {
		return nil, fmt.Errorf("mesh: patch dims must be >= 1 (got %d,%d,%d)", px, py, pz)
	}
	bx := (m.NX + px - 1) / px
	by := (m.NY + py - 1) / py
	bz := (m.NZ + pz - 1) / pz
	assign := make([]PatchID, m.NumCells())
	for k := 0; k < m.NZ; k++ {
		for j := 0; j < m.NY; j++ {
			for i := 0; i < m.NX; i++ {
				b := (i / px) + bx*((j/py)+by*(k/pz))
				assign[m.Index(i, j, k)] = PatchID(b)
			}
		}
	}
	return NewDecomposition(m, assign, bx*by*bz)
}

// BlockDims returns the number of patch blocks per axis for patch size
// (px,py,pz).
func (m *Structured3D) BlockDims(px, py, pz int) (bx, by, bz int) {
	return (m.NX + px - 1) / px, (m.NY + py - 1) / py, (m.NZ + pz - 1) / pz
}
