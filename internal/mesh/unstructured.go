package mesh

import (
	"fmt"

	"jsweep/internal/geom"
)

// Unstructured is a tetrahedral mesh stored in a flat face-based layout:
// every cell has exactly four triangular faces with precomputed outward
// normals and areas, plus centroid, volume and material per cell. It is the
// mesh family JSNT-U-style applications run on (paper §VI-B).
type Unstructured struct {
	verts []geom.Vec3
	tets  [][4]int32

	centers   []geom.Vec3
	volumes   []float64
	materials []int32

	// faces is 4 entries per cell (cell-major).
	faces []Face
}

// tetFaceVerts lists, for a tet (v0,v1,v2,v3), the vertex triples of its
// four faces; face f is opposite vertex f.
var tetFaceVerts = [4][3]int{
	{1, 2, 3}, // opposite v0
	{0, 3, 2}, // opposite v1
	{0, 1, 3}, // opposite v2
	{0, 2, 1}, // opposite v3
}

// NewUnstructuredFromTets builds an unstructured mesh from shared vertices
// and tetrahedra (4 vertex indices each). Face adjacency is reconstructed by
// matching vertex triples; a triple shared by more than two tets is an
// error. materials may be nil (all cells zone 0) or one zone id per tet.
func NewUnstructuredFromTets(verts []geom.Vec3, tets [][4]int32, materials []int32) (*Unstructured, error) {
	if len(tets) == 0 {
		return nil, fmt.Errorf("mesh: no tetrahedra")
	}
	if materials != nil && len(materials) != len(tets) {
		return nil, fmt.Errorf("mesh: %d materials for %d tets", len(materials), len(tets))
	}
	m := &Unstructured{
		verts:     verts,
		tets:      tets,
		centers:   make([]geom.Vec3, len(tets)),
		volumes:   make([]float64, len(tets)),
		materials: materials,
		faces:     make([]Face, 4*len(tets)),
	}

	type faceRef struct {
		cell CellID
		face int8
	}
	adj := make(map[[3]int32]faceRef, 2*len(tets))

	for c, t := range tets {
		a, b, cc, d := verts[t[0]], verts[t[1]], verts[t[2]], verts[t[3]]
		vol := geom.TetSignedVolume(a, b, cc, d)
		if vol < 0 {
			// Repair orientation so faces point outward consistently.
			t[2], t[3] = t[3], t[2]
			m.tets[c] = t
			a, b, cc, d = verts[t[0]], verts[t[1]], verts[t[2]], verts[t[3]]
			vol = -vol
		}
		if vol == 0 {
			return nil, fmt.Errorf("mesh: tet %d is degenerate (zero volume)", c)
		}
		m.volumes[c] = vol
		m.centers[c] = geom.TetCentroid(a, b, cc, d)

		for f := 0; f < 4; f++ {
			fv := tetFaceVerts[f]
			p0, p1, p2 := verts[t[fv[0]]], verts[t[fv[1]]], verts[t[fv[2]]]
			n := geom.TriangleNormal(p0, p1, p2)
			// Ensure outward: must point away from the opposite vertex.
			opp := verts[t[f]]
			if n.Dot(opp.Sub(p0)) > 0 {
				n = n.Scale(-1)
			}
			m.faces[4*c+f] = Face{
				Neighbor: -1,
				Normal:   n,
				Area:     geom.TriangleArea(p0, p1, p2),
			}
			key := sortedTri(t[fv[0]], t[fv[1]], t[fv[2]])
			if prev, ok := adj[key]; ok {
				// Stitch the two sides together.
				m.faces[4*c+f].Neighbor = prev.cell
				m.faces[4*int(prev.cell)+int(prev.face)].Neighbor = CellID(c)
				delete(adj, key)
			} else {
				adj[key] = faceRef{cell: CellID(c), face: int8(f)}
			}
		}
	}
	return m, nil
}

func sortedTri(a, b, c int32) [3]int32 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return [3]int32{a, b, c}
}

// NumCells implements Mesh.
func (m *Unstructured) NumCells() int { return len(m.tets) }

// CellCenter implements Mesh.
func (m *Unstructured) CellCenter(c CellID) geom.Vec3 { return m.centers[c] }

// CellVolume implements Mesh.
func (m *Unstructured) CellVolume(c CellID) float64 { return m.volumes[c] }

// NumFaces implements Mesh. Tets always have 4 faces.
func (m *Unstructured) NumFaces(CellID) int { return 4 }

// Face implements Mesh.
func (m *Unstructured) Face(c CellID, i int) Face { return m.faces[4*int(c)+i] }

// FacePoint returns a vertex of face i of cell c (a point on the face
// plane, used by ray tracers).
func (m *Unstructured) FacePoint(c CellID, i int) geom.Vec3 {
	t := m.tets[c]
	return m.verts[t[tetFaceVerts[i][0]]]
}

// Material implements Mesh.
func (m *Unstructured) Material(c CellID) int {
	if m.materials == nil {
		return 0
	}
	return int(m.materials[c])
}

// Structured implements Mesh.
func (m *Unstructured) Structured() bool { return false }

// Verts exposes the vertex array (read-only use).
func (m *Unstructured) Verts() []geom.Vec3 { return m.verts }

// Tets exposes the tetrahedron connectivity (read-only use).
func (m *Unstructured) Tets() [][4]int32 { return m.tets }

// SetMaterialFunc assigns a material zone to every cell from its centroid.
func (m *Unstructured) SetMaterialFunc(zone func(center geom.Vec3) int) {
	m.materials = make([]int32, len(m.tets))
	for c := range m.tets {
		m.materials[c] = int32(zone(m.centers[c]))
	}
}

// TotalVolume returns the sum of all cell volumes.
func (m *Unstructured) TotalVolume() float64 {
	var v float64
	for _, x := range m.volumes {
		v += x
	}
	return v
}
