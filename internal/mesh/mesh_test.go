package mesh

import (
	"math"
	"testing"

	"jsweep/internal/geom"
)

func mustStructured(t *testing.T, nx, ny, nz int) *Structured3D {
	t.Helper()
	m, err := NewStructured3D(nx, ny, nz, geom.Vec3{}, geom.Vec3{X: float64(nx), Y: float64(ny), Z: float64(nz)})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestStructuredIndexRoundTrip(t *testing.T) {
	m := mustStructured(t, 4, 5, 6)
	for k := 0; k < 6; k++ {
		for j := 0; j < 5; j++ {
			for i := 0; i < 4; i++ {
				c := m.Index(i, j, k)
				gi, gj, gk := m.Coords(c)
				if gi != i || gj != j || gk != k {
					t.Fatalf("roundtrip (%d,%d,%d) -> %d -> (%d,%d,%d)", i, j, k, c, gi, gj, gk)
				}
			}
		}
	}
}

func TestStructuredFaces(t *testing.T) {
	m := mustStructured(t, 3, 3, 3)
	c := m.Index(1, 1, 1) // interior cell: all 6 neighbours exist
	if m.NumFaces(c) != 6 {
		t.Fatalf("NumFaces = %d", m.NumFaces(c))
	}
	wantNb := []CellID{
		m.Index(0, 1, 1), m.Index(2, 1, 1),
		m.Index(1, 0, 1), m.Index(1, 2, 1),
		m.Index(1, 1, 0), m.Index(1, 1, 2),
	}
	for f := 0; f < 6; f++ {
		face := m.Face(c, f)
		if face.Neighbor != wantNb[f] {
			t.Errorf("face %d neighbor = %d, want %d", f, face.Neighbor, wantNb[f])
		}
		if math.Abs(face.Normal.Norm()-1) > 1e-14 {
			t.Errorf("face %d normal not unit: %v", f, face.Normal)
		}
		if face.Area != 1 {
			t.Errorf("face %d area = %v, want 1", f, face.Area)
		}
	}
	// Corner cell has 3 boundary faces.
	corner := m.Index(0, 0, 0)
	nbnd := 0
	for f := 0; f < 6; f++ {
		if m.Face(corner, f).Neighbor < 0 {
			nbnd++
		}
	}
	if nbnd != 3 {
		t.Errorf("corner boundary faces = %d, want 3", nbnd)
	}
}

func TestStructuredFaceReciprocity(t *testing.T) {
	m := mustStructured(t, 4, 3, 2)
	for c := 0; c < m.NumCells(); c++ {
		for f := 0; f < 6; f++ {
			face := m.Face(CellID(c), f)
			if face.Neighbor < 0 {
				continue
			}
			// The neighbor must see us back through its opposite face with
			// an opposite normal.
			found := false
			for g := 0; g < 6; g++ {
				back := m.Face(face.Neighbor, g)
				if back.Neighbor == CellID(c) {
					if back.Normal.Add(face.Normal).Norm() > 1e-14 {
						t.Fatalf("normals not opposite: %v vs %v", face.Normal, back.Normal)
					}
					found = true
				}
			}
			if !found {
				t.Fatalf("cell %d face %d: neighbor %d does not reciprocate", c, f, face.Neighbor)
			}
		}
	}
}

func TestStructuredGeometry(t *testing.T) {
	m, err := NewStructured3D(10, 10, 10, geom.Vec3{X: -5, Y: -5, Z: -5}, geom.Vec3{X: 10, Y: 10, Z: 10})
	if err != nil {
		t.Fatal(err)
	}
	if v := m.CellVolume(0); math.Abs(v-1) > 1e-14 {
		t.Errorf("volume = %v, want 1", v)
	}
	c := m.CellCenter(m.Index(5, 5, 5))
	if c != (geom.Vec3{X: 0.5, Y: 0.5, Z: 0.5}) {
		t.Errorf("center = %v", c)
	}
}

func TestStructuredMaterials(t *testing.T) {
	m := mustStructured(t, 4, 4, 4)
	if m.Material(0) != 0 {
		t.Error("default material should be 0")
	}
	m.SetMaterialFunc(func(c geom.Vec3) int {
		if c.X < 2 {
			return 1
		}
		return 2
	})
	if m.Material(m.Index(0, 0, 0)) != 1 || m.Material(m.Index(3, 0, 0)) != 2 {
		t.Error("material zoning wrong")
	}
}

func TestBlockDecompose(t *testing.T) {
	m := mustStructured(t, 8, 8, 8)
	d, err := m.BlockDecompose(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumPatches() != 8 {
		t.Fatalf("patches = %d, want 8", d.NumPatches())
	}
	for p := 0; p < 8; p++ {
		if len(d.Cells[p]) != 64 {
			t.Errorf("patch %d size = %d, want 64", p, len(d.Cells[p]))
		}
	}
	if b := d.Balance(); b != 1 {
		t.Errorf("balance = %v, want 1", b)
	}
	// A 2x2x2 block layout: every patch touches exactly 3 neighbours.
	for p := 0; p < 8; p++ {
		if len(d.Neighbors[p]) != 3 {
			t.Errorf("patch %d neighbours = %d, want 3", p, len(d.Neighbors[p]))
		}
	}
	// Edge cut: 3 internal planes of 8x8 faces each... each plane has 64
	// faces, 3 planes = 192 cut faces.
	if cut := d.EdgeCut(); cut != 192 {
		t.Errorf("edge cut = %d, want 192", cut)
	}
}

func TestBlockDecomposeRagged(t *testing.T) {
	m := mustStructured(t, 5, 5, 5)
	d, err := m.BlockDecompose(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumPatches() != 8 {
		t.Fatalf("patches = %d, want 8", d.NumPatches())
	}
	total := 0
	for p := range d.Cells {
		total += len(d.Cells[p])
	}
	if total != 125 {
		t.Errorf("cells covered = %d, want 125", total)
	}
}

func TestDecompositionLocalIndex(t *testing.T) {
	m := mustStructured(t, 6, 6, 6)
	d, err := m.BlockDecompose(3, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < m.NumCells(); c++ {
		p := d.CellPatch[c]
		if d.Cells[p][d.Local[c]] != CellID(c) {
			t.Fatalf("local index broken for cell %d", c)
		}
	}
}

func TestGhostCells(t *testing.T) {
	m := mustStructured(t, 4, 4, 1)
	d, err := m.BlockDecompose(2, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Two patches split at x=2; ghost layer of patch 0 is the x=2 column.
	g := d.GhostCells(0)
	if len(g) != 4 {
		t.Fatalf("ghosts = %v, want 4 cells", g)
	}
	for _, c := range g {
		i, _, _ := m.Coords(c)
		if i != 2 {
			t.Errorf("ghost cell %d at i=%d, want i=2", c, i)
		}
	}
}

func TestPlace(t *testing.T) {
	m := mustStructured(t, 8, 8, 8)
	d, err := m.BlockDecompose(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	d.Place(4)
	counts := map[int]int{}
	for _, r := range d.Owner {
		counts[r]++
	}
	if len(counts) != 4 {
		t.Fatalf("ranks used = %d, want 4", len(counts))
	}
	for r, n := range counts {
		if n != 16 {
			t.Errorf("rank %d owns %d patches, want 16", r, n)
		}
	}
}

func TestNewDecompositionValidation(t *testing.T) {
	m := mustStructured(t, 2, 2, 1)
	if _, err := NewDecomposition(m, []PatchID{0, 0, 0}, 1); err == nil {
		t.Error("short assignment should fail")
	}
	if _, err := NewDecomposition(m, []PatchID{0, 0, 0, 5}, 2); err == nil {
		t.Error("out-of-range patch should fail")
	}
	if _, err := NewDecomposition(m, []PatchID{0, 0, 0, 0}, 2); err == nil {
		t.Error("empty patch should fail")
	}
}

func TestUnstructuredSingleTet(t *testing.T) {
	verts := []geom.Vec3{{X: 0, Y: 0, Z: 0}, {X: 1, Y: 0, Z: 0}, {X: 0, Y: 1, Z: 0}, {X: 0, Y: 0, Z: 1}}
	m, err := NewUnstructuredFromTets(verts, [][4]int32{{0, 1, 2, 3}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumCells() != 1 {
		t.Fatalf("cells = %d", m.NumCells())
	}
	if math.Abs(m.CellVolume(0)-1.0/6) > 1e-12 {
		t.Errorf("volume = %v, want 1/6", m.CellVolume(0))
	}
	// All 4 faces are boundary; normals point outward (away from centroid).
	ctr := m.CellCenter(0)
	for f := 0; f < 4; f++ {
		face := m.Face(0, f)
		if face.Neighbor != -1 {
			t.Errorf("face %d should be boundary", f)
		}
		if math.Abs(face.Normal.Norm()-1) > 1e-12 {
			t.Errorf("face %d normal not unit", f)
		}
		// Outward test: normal must have positive dot with (faceCenter-ctr);
		// approximate face center via any face vertex minus centroid is not
		// robust, use the fact that for a tet the outward normal satisfies
		// n·(centroid - faceplane point) < 0. Take opposite vertex.
		opp := verts[f]
		if face.Normal.Dot(opp.Sub(ctr)) >= 0 {
			t.Errorf("face %d normal not outward", f)
		}
	}
}

func TestUnstructuredTwoTetsShareFace(t *testing.T) {
	// Two tets sharing face (1,2,3).
	verts := []geom.Vec3{
		{X: 0, Y: 0, Z: 0},
		{X: 1, Y: 0, Z: 0}, {X: 0, Y: 1, Z: 0}, {X: 0, Y: 0, Z: 1},
		{X: 1, Y: 1, Z: 1},
	}
	m, err := NewUnstructuredFromTets(verts, [][4]int32{{0, 1, 2, 3}, {4, 1, 2, 3}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	shared := 0
	for c := 0; c < 2; c++ {
		for f := 0; f < 4; f++ {
			if m.Face(CellID(c), f).Neighbor >= 0 {
				shared++
			}
		}
	}
	if shared != 2 {
		t.Errorf("shared face refs = %d, want 2 (one per side)", shared)
	}
}

func TestUnstructuredOrientationRepair(t *testing.T) {
	// Negative orientation tet must be repaired, keeping positive volume.
	verts := []geom.Vec3{{X: 0, Y: 0, Z: 0}, {X: 1, Y: 0, Z: 0}, {X: 0, Y: 1, Z: 0}, {X: 0, Y: 0, Z: 1}}
	m, err := NewUnstructuredFromTets(verts, [][4]int32{{0, 2, 1, 3}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.CellVolume(0) <= 0 {
		t.Errorf("volume = %v, want > 0", m.CellVolume(0))
	}
}

func TestUnstructuredDegenerateRejected(t *testing.T) {
	verts := []geom.Vec3{{}, {X: 1}, {X: 2}, {X: 3}}
	if _, err := NewUnstructuredFromTets(verts, [][4]int32{{0, 1, 2, 3}}, nil); err == nil {
		t.Error("degenerate (collinear) tet should be rejected")
	}
}

func TestUnstructuredMaterials(t *testing.T) {
	verts := []geom.Vec3{{}, {X: 1}, {Y: 1}, {Z: 1}}
	m, err := NewUnstructuredFromTets(verts, [][4]int32{{0, 1, 2, 3}}, []int32{7})
	if err != nil {
		t.Fatal(err)
	}
	if m.Material(0) != 7 {
		t.Errorf("material = %d, want 7", m.Material(0))
	}
}
