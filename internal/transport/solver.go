package transport

import (
	"context"
	"fmt"
	"math"
	"time"

	"jsweep/internal/mesh"
	"jsweep/internal/obs"
)

// SweepExecutor performs one full transport sweep over all angles: given
// the per-cell per-group emission density q [group][cell] (already per
// steradian), it returns the scalar flux phi [group][cell] = Σ_m w_m ψ_m.
//
// The serial reference, the JSweep data-driven solver and the KBA/BSP
// baselines all implement this interface; source iteration is generic over
// it.
type SweepExecutor interface {
	Sweep(q [][]float64) (phi [][]float64, err error)
}

// FluxRecycler is optionally implemented by sweep executors that pool
// their output flux arrays (persistent-session solvers). SourceIterate
// hands back each iteration's superseded flux so the executor can reuse
// the allocation for a later sweep.
type FluxRecycler interface {
	// RecycleFlux takes ownership of a flux array no longer referenced by
	// the caller.
	RecycleFlux(phi [][]float64)
}

// CycleLagger is optionally implemented by sweep executors that break
// cyclic sweep dependencies by lagging flux on feedback edges (previous
// iteration's values, zero on the first sweep). When an executor reports
// lagged edges, a single sweep is no longer exact even without scattering:
// SourceIterate must keep iterating until the lagged fluxes reach their
// fixed point, so the no-scattering early exit is disabled.
type CycleLagger interface {
	// LaggedEdges returns the number of lagged feedback edges (0 when the
	// mesh is acyclic for every direction).
	LaggedEdges() int
}

// ContextSweeper is optionally implemented by sweep executors that can
// thread a context through a sweep (cancellation unblocks the runtime's
// master loops mid-round). SourceIterateCtx prefers SweepCtx over Sweep
// when the executor provides it.
type ContextSweeper interface {
	SweepCtx(ctx context.Context, q [][]float64) (phi [][]float64, err error)
}

// Progress describes one completed source iteration; IterConfig.Progress
// receives it after each sweep, making long solves observable.
type Progress struct {
	// Iteration is the 1-based iteration number.
	Iteration int
	// Residual is the point-wise relative flux change of this iteration.
	Residual float64
	// Converged reports whether this iteration reached the tolerance.
	Converged bool
}

// IterConfig controls source iteration.
type IterConfig struct {
	// MaxIterations bounds the outer loop (default 200).
	MaxIterations int
	// Tolerance is the relative point-wise convergence criterion on the
	// scalar flux (default 1e-6).
	Tolerance float64
	// Progress, when non-nil, is called after every iteration with that
	// iteration's outcome. It runs on the solve goroutine: a slow
	// callback slows the solve.
	Progress func(Progress)
	// Tracer, when non-nil, receives per-iteration phase spans
	// (iter.source, iter.sweep, iter.residual). Tracing never touches
	// the numerics — a traced solve is bitwise identical to an untraced
	// one — and a nil Tracer costs a single branch per phase.
	Tracer *obs.Tracer
}

func (c *IterConfig) defaults() {
	if c.MaxIterations <= 0 {
		c.MaxIterations = 200
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 1e-6
	}
}

// Result is the outcome of a transport solve.
type Result struct {
	// Phi is the converged scalar flux [group][cell].
	Phi [][]float64
	// Iterations is the number of source iterations performed.
	Iterations int
	// Residual is the final relative change.
	Residual float64
	// Converged reports whether Residual <= Tolerance.
	Converged bool
}

// NewFlux allocates a zero [group][cell] flux array for a problem.
func (p *Problem) NewFlux() [][]float64 {
	phi := make([][]float64, p.Groups)
	for g := range phi {
		phi[g] = make([]float64, p.M.NumCells())
	}
	return phi
}

// SourceIterate runs source iteration with the given sweep executor:
// q = (S + Σs·φ)/4π, φ = Sweep(q), until the point-wise relative change of
// φ is below tolerance. For pure absorbers a single sweep is exact and the
// loop exits after verifying it.
func SourceIterate(p *Problem, ex SweepExecutor, cfg IterConfig) (*Result, error) {
	return SourceIterateCtx(context.Background(), p, ex, cfg)
}

// SourceIterateCtx is SourceIterate with cooperative cancellation: the
// context is checked between iterations and threaded into the executor
// when it implements ContextSweeper, so a cancelled solve returns
// ctx.Err() promptly instead of running to convergence. Cancellation
// does not change the numerics of an uncancelled run — the iteration
// sequence is bitwise identical to SourceIterate.
func SourceIterateCtx(ctx context.Context, p *Problem, ex SweepExecutor, cfg IterConfig) (*Result, error) {
	cfg.defaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	nc := p.M.NumCells()
	phi := p.NewFlux()
	q := make([][]float64, p.Groups)
	for g := range q {
		q[g] = make([]float64, nc)
	}
	res := &Result{}
	qCell := make([]float64, p.Groups)
	recycler, _ := ex.(FluxRecycler)
	ctxSweeper, _ := ex.(ContextSweeper)
	lagging := false
	if cl, ok := ex.(CycleLagger); ok {
		lagging = cl.LaggedEdges() > 0
	}
	for iter := 1; iter <= cfg.MaxIterations; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("transport: solve cancelled before sweep %d: %w", iter, err)
		}
		var t0 time.Time
		if cfg.Tracer != nil {
			t0 = time.Now()
		}
		// Build emission density from the current flux.
		for c := 0; c < nc; c++ {
			p.EmissionDensity(mesh.CellID(c), phi, qCell)
			for g := 0; g < p.Groups; g++ {
				q[g][c] = qCell[g]
			}
		}
		if cfg.Tracer != nil {
			cfg.Tracer.Emit(obs.Event{Name: "iter.source", Iter: iter, Dur: time.Since(t0)})
			t0 = time.Now()
		}
		var next [][]float64
		var err error
		if ctxSweeper != nil {
			next, err = ctxSweeper.SweepCtx(ctx, q)
		} else {
			next, err = ex.Sweep(q)
		}
		if cfg.Tracer != nil {
			cfg.Tracer.Emit(obs.Event{Name: "iter.sweep", Iter: iter, Dur: time.Since(t0)})
			t0 = time.Now()
		}
		if err != nil {
			// Surface the cancellation cause over the (often derived)
			// transport-failure error a concurrent abort produced.
			if cerr := ctx.Err(); cerr != nil {
				return nil, fmt.Errorf("transport: sweep %d cancelled: %w", iter, cerr)
			}
			return nil, fmt.Errorf("transport: sweep %d: %w", iter, err)
		}
		res.Iterations = iter
		res.Residual = relChange(phi, next)
		res.Phi = next
		// The superseded flux is dead after the residual: pooling
		// executors reuse its allocation for a later sweep.
		if recycler != nil {
			recycler.RecycleFlux(phi)
		}
		phi = next
		if res.Residual <= cfg.Tolerance {
			res.Converged = true
		} else if !p.HasScattering() && !lagging {
			// One sweep is exact without scattering — unless the executor
			// lags flux on feedback edges, which must converge like a
			// scattering source.
			res.Converged = true
		}
		if cfg.Tracer != nil {
			cfg.Tracer.Emit(obs.Event{Name: "iter.residual", Iter: iter, Dur: time.Since(t0),
				Detail: fmt.Sprintf("residual=%.6e converged=%v", res.Residual, res.Converged)})
		}
		if cfg.Progress != nil {
			cfg.Progress(Progress{Iteration: iter, Residual: res.Residual, Converged: res.Converged})
		}
		if res.Converged {
			return res, nil
		}
	}
	return res, nil
}

// relChange returns max |a-b| / max(|b|, tiny) over all entries.
func relChange(a, b [][]float64) float64 {
	var maxDiff, maxVal float64
	for g := range b {
		for c := range b[g] {
			d := math.Abs(b[g][c] - a[g][c])
			if d > maxDiff {
				maxDiff = d
			}
			v := math.Abs(b[g][c])
			if v > maxVal {
				maxVal = v
			}
		}
	}
	if maxVal == 0 {
		if maxDiff == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return maxDiff / maxVal
}

// Balance computes the global neutron balance of a converged solution for
// group g: (production, absorption+leakage estimate). For the step scheme
// on a vacuum-bounded problem, production ≈ absorption + leakage.
type BalanceReport struct {
	Production float64 // ∫ S dV
	Absorption float64 // ∫ σa φ dV
	// Leakage is inferred as Production − Absorption for conservative
	// schemes (outflow through the vacuum boundary).
	Leakage float64
}

// GroupBalance reports the neutron balance for group g given a flux.
func (p *Problem) GroupBalance(phi [][]float64, g int) BalanceReport {
	var rep BalanceReport
	nc := p.M.NumCells()
	for c := 0; c < nc; c++ {
		mat := p.Mat(mesh.CellID(c))
		vol := p.M.CellVolume(mesh.CellID(c))
		if mat.Source != nil {
			rep.Production += mat.Source[g] * vol
		}
		// In-group absorption: σa = σt − Σ_gTo σs[g][gTo].
		sigA := mat.SigmaT[g]
		if mat.SigmaS != nil {
			for gTo := 0; gTo < p.Groups; gTo++ {
				sigA -= mat.SigmaS[g][gTo]
			}
		}
		rep.Absorption += sigA * phi[g][c] * vol
	}
	rep.Leakage = rep.Production - rep.Absorption
	return rep
}
