// Package transport implements the discrete-ordinates (Sn) radiation
// transport numerics the sweep framework solves: cross-section data, the
// per-cell transport kernels (step/upwind for general meshes, diamond
// difference for structured grids), and the source-iteration outer loop.
// The actual mesh traversal is delegated to a SweepExecutor — the serial
// reference, the JSweep data-driven runtime, and the KBA/BSP baselines all
// implement it, which is how their numerics are cross-validated.
package transport

import (
	"fmt"
	"math"

	"jsweep/internal/geom"
	"jsweep/internal/mesh"
	"jsweep/internal/quadrature"
)

// FourPi is the solid angle of the unit sphere.
const FourPi = 4 * math.Pi

// Material holds multigroup cross sections and the fixed volumetric source
// of one material zone.
type Material struct {
	// Name labels the zone in reports.
	Name string
	// SigmaT is the total macroscopic cross section per group [1/cm].
	SigmaT []float64
	// SigmaS is the isotropic scattering matrix: SigmaS[gFrom][gTo] is the
	// cross section for scattering from group gFrom into gTo [1/cm].
	// May be nil for a pure absorber.
	SigmaS [][]float64
	// Source is the fixed isotropic volumetric source per group
	// [n/cm³/s]. May be nil.
	Source []float64
}

// Scheme selects the spatial differencing of the kernel.
type Scheme int

const (
	// Step is the fully-upwind (step) scheme: positive and conservative on
	// any mesh; first-order accurate.
	Step Scheme = iota
	// Diamond is diamond differencing on structured grids: second-order,
	// with a set-to-zero negative-flux fixup.
	Diamond
)

func (s Scheme) String() string {
	if s == Diamond {
		return "diamond"
	}
	return "step"
}

// Problem is a complete Sn transport problem: mesh, material map,
// quadrature and differencing scheme.
type Problem struct {
	M      mesh.Mesh
	Mats   []Material
	Quad   *quadrature.Set
	Groups int
	Scheme Scheme
}

// Validate checks internal consistency.
func (p *Problem) Validate() error {
	if p.M == nil || p.Quad == nil {
		return fmt.Errorf("transport: problem needs a mesh and a quadrature set")
	}
	if p.Groups < 1 {
		return fmt.Errorf("transport: need >= 1 energy group (got %d)", p.Groups)
	}
	if len(p.Mats) == 0 {
		return fmt.Errorf("transport: no materials")
	}
	for i, m := range p.Mats {
		if len(m.SigmaT) != p.Groups {
			return fmt.Errorf("transport: material %d (%s) has %d sigma_t groups, want %d", i, m.Name, len(m.SigmaT), p.Groups)
		}
		if m.SigmaS != nil && len(m.SigmaS) != p.Groups {
			return fmt.Errorf("transport: material %d scattering matrix has %d rows, want %d", i, len(m.SigmaS), p.Groups)
		}
		for _, row := range m.SigmaS {
			if len(row) != p.Groups {
				return fmt.Errorf("transport: material %d scattering row length %d, want %d", i, len(row), p.Groups)
			}
		}
		if m.Source != nil && len(m.Source) != p.Groups {
			return fmt.Errorf("transport: material %d source has %d groups, want %d", i, len(m.Source), p.Groups)
		}
	}
	if p.Scheme == Diamond && !p.M.Structured() {
		return fmt.Errorf("transport: diamond differencing requires a structured mesh")
	}
	nc := p.M.NumCells()
	for c := 0; c < nc; c++ {
		z := p.M.Material(mesh.CellID(c))
		if z < 0 || z >= len(p.Mats) {
			return fmt.Errorf("transport: cell %d references material zone %d outside [0,%d)", c, z, len(p.Mats))
		}
	}
	return nil
}

// MaxFaces returns the per-cell face count bound (6 structured, 4 tets).
func (p *Problem) MaxFaces() int {
	if p.M.Structured() {
		return 6
	}
	return 4
}

// Mat returns the material of a cell.
func (p *Problem) Mat(c mesh.CellID) *Material { return &p.Mats[p.M.Material(c)] }

// SolveCell computes the angular flux of one cell for one direction and
// all groups, given the incoming face fluxes.
//
//	qCell  — total emission density per group [n/cm³/s/sr] (fixed source +
//	         scattering, already divided by 4π)
//	psiIn  — incoming angular flux per [face*Groups+g]; entries for
//	         outgoing or boundary faces are ignored
//	psiOut — filled with outgoing angular flux per [face*Groups+g];
//	         incoming faces are left untouched
//	psiBar — filled with the cell-average angular flux per group
func (p *Problem) SolveCell(c mesh.CellID, omega geom.Vec3, qCell, psiIn, psiOut, psiBar []float64) {
	switch p.Scheme {
	case Diamond:
		p.solveDiamond(c, omega, qCell, psiIn, psiOut, psiBar)
	default:
		p.solveStep(c, omega, qCell, psiIn, psiOut, psiBar)
	}
}

// solveStep implements the fully-upwind finite-volume balance:
//
//	ψ_c = (q·V + Σ_in |Ω·n|·A·ψ_in) / (σt·V + Σ_out |Ω·n|·A),  ψ_out = ψ_c.
func (p *Problem) solveStep(c mesh.CellID, omega geom.Vec3, qCell, psiIn, psiOut, psiBar []float64) {
	m := p.M
	mat := p.Mat(c)
	vol := m.CellVolume(c)
	nf := m.NumFaces(c)
	G := p.Groups

	var outCoef float64
	// First pass: geometry terms. Grazing faces (|Ω·n| ≤ UpwindEps) carry
	// no flow, matching the DAG builder's classification.
	for g := 0; g < G; g++ {
		psiBar[g] = qCell[g] * vol
	}
	for f := 0; f < nf; f++ {
		face := m.Face(c, f)
		dot := omega.Dot(face.Normal)
		if dot > mesh.UpwindEps {
			outCoef += dot * face.Area
		} else if dot < -mesh.UpwindEps {
			a := -dot * face.Area
			for g := 0; g < G; g++ {
				psiBar[g] += a * psiIn[f*G+g]
			}
		}
	}
	for g := 0; g < G; g++ {
		psiBar[g] /= mat.SigmaT[g]*vol + outCoef
	}
	for f := 0; f < nf; f++ {
		face := m.Face(c, f)
		if omega.Dot(face.Normal) > mesh.UpwindEps {
			for g := 0; g < G; g++ {
				psiOut[f*G+g] = psiBar[g]
			}
		}
	}
}

// solveDiamond implements diamond differencing on a structured grid:
//
//	ψ_c = (q·V + Σ_axes 2·|Ω_i|·A_i·ψ_in,i) / (σt·V + Σ_axes 2·|Ω_i|·A_i)
//	ψ_out,i = 2·ψ_c − ψ_in,i   (set-to-zero fixup when negative)
func (p *Problem) solveDiamond(c mesh.CellID, omega geom.Vec3, qCell, psiIn, psiOut, psiBar []float64) {
	m := p.M
	mat := p.Mat(c)
	vol := m.CellVolume(c)
	G := p.Groups

	// Identify the incoming face per axis: faces come in (lo, hi) pairs.
	type axis struct {
		inFace, outFace int
		coef            float64 // 2·|Ω_i|·A_i
	}
	var axes [3]axis
	for i := 0; i < 3; i++ {
		lo, hi := 2*i, 2*i+1
		fLo := m.Face(c, lo)
		dot := omega.Dot(fLo.Normal) // negative when flow enters through lo
		if dot < 0 {
			axes[i] = axis{inFace: lo, outFace: hi, coef: 2 * (-dot) * fLo.Area}
		} else {
			axes[i] = axis{inFace: hi, outFace: lo, coef: 2 * dot * fLo.Area}
		}
	}
	var denom float64
	for g := 0; g < G; g++ {
		psiBar[g] = qCell[g] * vol
	}
	denomBase := 0.0
	for i := 0; i < 3; i++ {
		denomBase += axes[i].coef
		for g := 0; g < G; g++ {
			psiBar[g] += axes[i].coef * psiIn[axes[i].inFace*G+g]
		}
	}
	for g := 0; g < G; g++ {
		denom = mat.SigmaT[g]*vol + denomBase
		psiBar[g] /= denom
	}
	for i := 0; i < 3; i++ {
		for g := 0; g < G; g++ {
			out := 2*psiBar[g] - psiIn[axes[i].inFace*G+g]
			if out < 0 {
				out = 0 // set-to-zero fixup
			}
			psiOut[axes[i].outFace*G+g] = out
		}
	}
}

// EmissionDensity fills q[g] with the per-steradian emission density of
// cell c given the current scalar flux: (source + Σ_g' σs[g'→g]·φ_g')/4π.
func (p *Problem) EmissionDensity(c mesh.CellID, phi [][]float64, q []float64) {
	mat := p.Mat(c)
	for g := 0; g < p.Groups; g++ {
		v := 0.0
		if mat.Source != nil {
			v = mat.Source[g]
		}
		if mat.SigmaS != nil {
			for gp := 0; gp < p.Groups; gp++ {
				v += mat.SigmaS[gp][g] * phi[gp][c]
			}
		}
		q[g] = v / FourPi
	}
}

// HasScattering reports whether any material scatters (needing iteration).
func (p *Problem) HasScattering() bool {
	for _, m := range p.Mats {
		for _, row := range m.SigmaS {
			for _, v := range row {
				if v != 0 {
					return true
				}
			}
		}
	}
	return false
}
