package transport

import (
	"math"
	"testing"
	"testing/quick"

	"jsweep/internal/geom"
	"jsweep/internal/mesh"
	"jsweep/internal/quadrature"
)

func uniformProblem(t *testing.T, n int, sigmaT, scatterRatio, source float64, scheme Scheme) *Problem {
	t.Helper()
	m, err := mesh.NewStructured3D(n, n, n, geom.Vec3{}, geom.Vec3{X: float64(n), Y: float64(n), Z: float64(n)})
	if err != nil {
		t.Fatal(err)
	}
	quad, err := quadrature.New(2)
	if err != nil {
		t.Fatal(err)
	}
	p := &Problem{
		M: m,
		Mats: []Material{{
			Name:   "uniform",
			SigmaT: []float64{sigmaT},
			SigmaS: [][]float64{{sigmaT * scatterRatio}},
			Source: []float64{source},
		}},
		Quad:   quad,
		Groups: 1,
		Scheme: scheme,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestValidateCatchesErrors(t *testing.T) {
	m, _ := mesh.NewStructured3D(2, 2, 2, geom.Vec3{}, geom.Vec3{X: 1, Y: 1, Z: 1})
	quad, _ := quadrature.New(2)
	cases := []struct {
		name string
		p    *Problem
	}{
		{"no mesh", &Problem{Quad: quad, Groups: 1, Mats: []Material{{SigmaT: []float64{1}}}}},
		{"no groups", &Problem{M: m, Quad: quad, Groups: 0, Mats: []Material{{SigmaT: []float64{1}}}}},
		{"no materials", &Problem{M: m, Quad: quad, Groups: 1}},
		{"bad sigma_t", &Problem{M: m, Quad: quad, Groups: 2, Mats: []Material{{SigmaT: []float64{1}}}}},
		{"bad scatter rows", &Problem{M: m, Quad: quad, Groups: 1, Mats: []Material{{SigmaT: []float64{1}, SigmaS: [][]float64{{1}, {2}}}}}},
		{"bad source", &Problem{M: m, Quad: quad, Groups: 1, Mats: []Material{{SigmaT: []float64{1}, Source: []float64{1, 2}}}}},
	}
	for _, tc := range cases {
		if err := tc.p.Validate(); err == nil {
			t.Errorf("%s: validation should fail", tc.name)
		}
	}
}

func TestValidateDiamondNeedsStructured(t *testing.T) {
	p := uniformProblem(t, 3, 1, 0, 1, Diamond)
	if err := p.Validate(); err != nil {
		t.Errorf("diamond on structured should validate: %v", err)
	}
}

// Kernel property: the step scheme satisfies the exact cell balance
// out − in + σt·V·ψ̄ = q·V for any inputs, and is positivity-preserving.
func TestStepKernelBalanceProperty(t *testing.T) {
	p := uniformProblem(t, 3, 1, 0, 1, Step)
	m := p.M
	c := mesh.CellID(13) // interior cell of the 3³ grid
	omega := geom.Vec3{X: 0.48, Y: 0.6, Z: 0.64}
	f := func(q, in0, in1, in2 float64) bool {
		q = math.Abs(math.Mod(q, 100))
		psiIn := make([]float64, 6)
		psiOut := make([]float64, 6)
		psiBar := make([]float64, 1)
		ins := []float64{math.Abs(math.Mod(in0, 50)), math.Abs(math.Mod(in1, 50)), math.Abs(math.Mod(in2, 50))}
		k := 0
		for fc := 0; fc < 6; fc++ {
			face := m.Face(c, fc)
			if omega.Dot(face.Normal) < 0 {
				psiIn[fc] = ins[k%3]
				k++
			}
		}
		p.SolveCell(c, omega, []float64{q}, psiIn, psiOut, psiBar)
		if psiBar[0] < 0 {
			return false
		}
		var in, out float64
		for fc := 0; fc < 6; fc++ {
			face := m.Face(c, fc)
			dot := omega.Dot(face.Normal)
			if dot > 0 {
				out += dot * face.Area * psiOut[fc]
			} else if dot < 0 {
				in += -dot * face.Area * psiIn[fc]
			}
		}
		vol := m.CellVolume(c)
		lhs := out - in + p.Mats[0].SigmaT[0]*vol*psiBar[0]
		rhs := q * vol
		scale := math.Max(1, math.Max(math.Abs(lhs), math.Abs(rhs)))
		return math.Abs(lhs-rhs)/scale < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Diamond kernel: balance holds whenever the fixup does not trigger.
func TestDiamondKernelBalance(t *testing.T) {
	p := uniformProblem(t, 3, 2, 0, 1, Diamond)
	m := p.M
	c := mesh.CellID(13)
	omega := geom.Vec3{X: 0.577, Y: 0.577, Z: 0.578}.Normalize()
	psiIn := make([]float64, 6)
	psiOut := make([]float64, 6)
	psiBar := make([]float64, 1)
	// Smooth incoming flux avoids the negative-flux fixup.
	for fc := 0; fc < 6; fc++ {
		if omega.Dot(m.Face(c, fc).Normal) < 0 {
			psiIn[fc] = 1.0
		}
	}
	q := 0.5
	p.SolveCell(c, omega, []float64{q}, psiIn, psiOut, psiBar)
	var in, out float64
	for fc := 0; fc < 6; fc++ {
		face := m.Face(c, fc)
		dot := omega.Dot(face.Normal)
		if dot > 0 {
			if psiOut[fc] < 0 {
				t.Fatalf("fixup triggered unexpectedly")
			}
			out += dot * face.Area * psiOut[fc]
		} else if dot < 0 {
			in += -dot * face.Area * psiIn[fc]
		}
	}
	vol := m.CellVolume(c)
	lhs := out - in + p.Mats[0].SigmaT[0]*vol*psiBar[0]
	if math.Abs(lhs-q*vol) > 1e-12*math.Max(1, q*vol) {
		t.Errorf("diamond balance: %v != %v", lhs, q*vol)
	}
}

func TestDiamondFixupClampsNegatives(t *testing.T) {
	p := uniformProblem(t, 3, 50, 0, 0, Diamond) // optically thick: 2ψc − ψin < 0
	m := p.M
	c := mesh.CellID(13)
	omega := geom.Vec3{X: 0.577, Y: 0.577, Z: 0.578}.Normalize()
	psiIn := make([]float64, 6)
	psiOut := make([]float64, 6)
	psiBar := make([]float64, 1)
	for fc := 0; fc < 6; fc++ {
		if omega.Dot(m.Face(c, fc).Normal) < 0 {
			psiIn[fc] = 10.0
		}
	}
	p.SolveCell(c, omega, []float64{0}, psiIn, psiOut, psiBar)
	for fc := 0; fc < 6; fc++ {
		if psiOut[fc] < 0 {
			t.Errorf("face %d: negative outgoing flux %v survived fixup", fc, psiOut[fc])
		}
	}
}

func TestEmissionDensity(t *testing.T) {
	p := uniformProblem(t, 2, 2.0, 0.5, 3.0, Step) // σs = 1.0
	phi := p.NewFlux()
	for c := range phi[0] {
		phi[0][c] = 2.0
	}
	q := make([]float64, 1)
	p.EmissionDensity(0, phi, q)
	want := (3.0 + 1.0*2.0) / FourPi
	if math.Abs(q[0]-want) > 1e-14 {
		t.Errorf("q = %v, want %v", q[0], want)
	}
}

func TestHasScattering(t *testing.T) {
	if !uniformProblem(t, 2, 1, 0.5, 1, Step).HasScattering() {
		t.Error("scattering not detected")
	}
	if uniformProblem(t, 2, 1, 0, 1, Step).HasScattering() {
		t.Error("phantom scattering")
	}
}

// dumbExecutor solves the transport equation ignoring streaming (infinite
// medium): φ = 4π·q/σt when scattering is folded into q. It lets the
// source-iteration loop be tested independent of real sweeps.
type dumbExecutor struct{ p *Problem }

func (d dumbExecutor) Sweep(q [][]float64) ([][]float64, error) {
	phi := d.p.NewFlux()
	for g := range phi {
		for c := range phi[g] {
			phi[g][c] = FourPi * q[g][c] / d.p.Mats[0].SigmaT[g]
		}
	}
	return phi, nil
}

// Infinite-medium source iteration must converge to φ = S/σa.
func TestSourceIterationInfiniteMedium(t *testing.T) {
	p := uniformProblem(t, 2, 2.0, 0.5, 3.0, Step) // σa = 1.0 ⇒ φ∞ = 3.0
	res, err := SourceIterate(p, dumbExecutor{p}, IterConfig{Tolerance: 1e-10, MaxIterations: 500})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: %+v", res)
	}
	if math.Abs(res.Phi[0][0]-3.0) > 1e-8 {
		t.Errorf("φ = %v, want 3.0", res.Phi[0][0])
	}
	if res.Iterations < 5 {
		t.Errorf("scattering iteration count %d suspiciously low", res.Iterations)
	}
}

func TestSourceIterationPureAbsorberOneSweep(t *testing.T) {
	p := uniformProblem(t, 2, 2.0, 0, 3.0, Step)
	res, err := SourceIterate(p, dumbExecutor{p}, IterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 1 || !res.Converged {
		t.Errorf("pure absorber should converge in 1 sweep: %+v", res)
	}
}

func TestSourceIterationMaxIterations(t *testing.T) {
	p := uniformProblem(t, 2, 1.0, 0.999, 1.0, Step) // c≈1: very slow
	res, err := SourceIterate(p, dumbExecutor{p}, IterConfig{Tolerance: 1e-14, MaxIterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged || res.Iterations != 3 {
		t.Errorf("expected iteration cap: %+v", res)
	}
}

func TestGroupBalance(t *testing.T) {
	p := uniformProblem(t, 2, 2.0, 0.5, 3.0, Step)
	phi := p.NewFlux()
	for c := range phi[0] {
		phi[0][c] = 3.0
	}
	rep := p.GroupBalance(phi, 0)
	vol := 8.0 // 2³ cells of 1 cm³
	if math.Abs(rep.Production-3.0*vol) > 1e-12 {
		t.Errorf("production = %v", rep.Production)
	}
	// σa = σt − σs = 1.0; absorption = 1.0·3.0·8 = 24.
	if math.Abs(rep.Absorption-24.0) > 1e-12 {
		t.Errorf("absorption = %v", rep.Absorption)
	}
	if math.Abs(rep.Leakage-(rep.Production-rep.Absorption)) > 1e-12 {
		t.Errorf("leakage inconsistent")
	}
}

func TestRelChange(t *testing.T) {
	a := [][]float64{{1, 2}}
	b := [][]float64{{1.1, 2}}
	got := relChange(a, b)
	if math.Abs(got-0.1/2.0) > 1e-12 {
		t.Errorf("relChange = %v, want 0.05", got)
	}
	if relChange([][]float64{{0}}, [][]float64{{0}}) != 0 {
		t.Error("zero fields should have zero change")
	}
}
