package graph

import (
	"testing"
)

// FuzzSCCCondense feeds arbitrary digraphs (decoded from raw bytes)
// through SCC + Condense and checks the structural invariants: the
// component labelling is a dense partition matching brute-force mutual
// reachability, the condensation is acyclic, and condensing loses no
// cross-component edge. FeedbackArcs rides along: removing the selected
// arcs must always leave an acyclic graph.
func FuzzSCCCondense(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 0, 1, 1, 2, 2, 0})             // 3-cycle
	f.Add([]byte{5, 0, 1, 1, 0, 2, 3, 3, 4, 4, 2}) // two cycles
	f.Add([]byte{4, 0, 1, 1, 2, 2, 3})             // chain
	f.Add([]byte{1, 0, 0})                         // self-loop
	f.Fuzz(func(t *testing.T, data []byte) {
		adj := decodeDigraph(data)
		n := len(adj)
		comp, ncomp := SCC(adj)
		if len(comp) != n {
			t.Fatalf("comp length %d for %d vertices", len(comp), n)
		}
		if n == 0 {
			if ncomp != 0 {
				t.Fatalf("empty graph has %d comps", ncomp)
			}
			return
		}
		// Dense ids in [0, ncomp), every id used.
		used := make([]bool, ncomp)
		for v, c := range comp {
			if c < 0 || int(c) >= ncomp {
				t.Fatalf("vertex %d has comp %d outside [0,%d)", v, c, ncomp)
			}
			used[c] = true
		}
		for c, ok := range used {
			if !ok {
				t.Fatalf("comp id %d unused", c)
			}
		}
		// Partition must match brute-force mutual reachability.
		reach := fuzzReach(adj)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				same := comp[u] == comp[v]
				mutual := u == v || (reach[u][v] && reach[v][u])
				if same != mutual {
					t.Fatalf("vertices %d,%d: same-comp=%v mutual-reach=%v", u, v, same, mutual)
				}
			}
		}
		// Condensation: acyclic, and it preserves every cross-comp edge.
		cond := Condense(adj, comp, ncomp)
		if !fuzzAcyclic(cond) {
			t.Fatal("condensation has a cycle")
		}
		has := make(map[int64]bool)
		for cu := range cond {
			for _, cv := range cond[cu] {
				has[int64(cu)<<32|int64(cv)] = true
			}
		}
		for u := range adj {
			for _, v := range adj[u] {
				if comp[u] != comp[v] && !has[int64(comp[u])<<32|int64(comp[v])] {
					t.Fatalf("edge %d->%d lost by condensation", u, v)
				}
			}
		}
		// Feedback arcs: removal must leave the graph acyclic.
		arcs := FeedbackArcs(adj)
		drop := make(map[int64]int, len(arcs))
		for _, a := range arcs {
			drop[int64(a[0])<<32|int64(a[1])]++
		}
		pruned := make([][]int32, n)
		for u := range adj {
			for _, v := range adj[u] {
				if k := int64(u)<<32 | int64(v); drop[k] > 0 {
					drop[k]--
					continue
				}
				pruned[u] = append(pruned[u], v)
			}
		}
		if !fuzzAcyclic(pruned) {
			t.Fatal("graph still cyclic after removing feedback arcs")
		}
	})
}

// decodeDigraph reads a vertex count (first byte, capped to 16) and then
// edge pairs from the remaining bytes. Duplicate edges and self-loops are
// legal inputs.
func decodeDigraph(data []byte) [][]int32 {
	if len(data) == 0 {
		return nil
	}
	n := int(data[0])%16 + 1
	adj := make([][]int32, n)
	for i := 1; i+1 < len(data); i += 2 {
		u := int(data[i]) % n
		v := int(data[i+1]) % n
		adj[u] = append(adj[u], int32(v))
	}
	return adj
}

func fuzzReach(adj [][]int32) [][]bool {
	n := len(adj)
	reach := make([][]bool, n)
	for s := 0; s < n; s++ {
		reach[s] = make([]bool, n)
		stack := []int32{int32(s)}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range adj[u] {
				if !reach[s][v] {
					reach[s][v] = true
					stack = append(stack, v)
				}
			}
		}
	}
	return reach
}

func fuzzAcyclic(adj [][]int32) bool {
	n := len(adj)
	indeg := make([]int32, n)
	for _, succ := range adj {
		for _, v := range succ {
			indeg[v]++
		}
	}
	queue := make([]int32, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, int32(v))
		}
	}
	seen := 0
	for head := 0; head < len(queue); head++ {
		seen++
		for _, v := range adj[queue[head]] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	return seen == n
}
