package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"jsweep/internal/geom"
	"jsweep/internal/mesh"
	"jsweep/internal/meshgen"
)

func TestSCCHandcrafted(t *testing.T) {
	// 0 -> 1 -> 2 -> 0 (one SCC), 2 -> 3 -> 4, 4 -> 3 (another), 5 alone.
	adj := [][]int32{{1}, {2}, {0, 3}, {4}, {3}, {}}
	comp, n := SCC(adj)
	if n != 3 {
		t.Fatalf("ncomp = %d, want 3", n)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Errorf("cycle 0-1-2 split: %v", comp)
	}
	if comp[3] != comp[4] {
		t.Errorf("cycle 3-4 split: %v", comp)
	}
	if comp[5] == comp[0] || comp[5] == comp[3] {
		t.Errorf("vertex 5 merged: %v", comp)
	}
	// Reverse-topological ids: cross-component edges go high -> low.
	for u := range adj {
		for _, v := range adj[u] {
			if comp[u] != comp[v] && comp[u] < comp[v] {
				t.Errorf("edge %d->%d violates reverse-topo ids (%d < %d)", u, v, comp[u], comp[v])
			}
		}
	}
	nt, maxSize := NontrivialSCCs(comp, n)
	if nt != 2 || maxSize != 3 {
		t.Errorf("nontrivial = %d maxSize = %d, want 2, 3", nt, maxSize)
	}
	cond := Condense(adj, comp, n)
	if !kahnAcyclic(cond) {
		t.Error("condensation not acyclic")
	}
}

// randomDigraph builds a digraph from a seed: n in [1, 14], edge density
// keyed off the seed. Small n keeps the brute-force oracles cheap.
func randomDigraph(seed int64) [][]int32 {
	rng := rand.New(rand.NewSource(seed))
	n := 1 + rng.Intn(14)
	adj := make([][]int32, n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && rng.Intn(4) == 0 {
				adj[u] = append(adj[u], int32(v))
			}
		}
	}
	return adj
}

// reachability computes the transitive closure by DFS from every vertex.
func reachability(adj [][]int32) [][]bool {
	n := len(adj)
	reach := make([][]bool, n)
	for s := 0; s < n; s++ {
		reach[s] = make([]bool, n)
		stack := []int32{int32(s)}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range adj[u] {
				if !reach[s][v] {
					reach[s][v] = true
					stack = append(stack, v)
				}
			}
		}
	}
	return reach
}

func kahnAcyclic(adj [][]int32) bool {
	n := len(adj)
	indeg := make([]int32, n)
	for _, succ := range adj {
		for _, v := range succ {
			indeg[v]++
		}
	}
	queue := make([]int32, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, int32(v))
		}
	}
	seen := 0
	for head := 0; head < len(queue); head++ {
		seen++
		for _, v := range adj[queue[head]] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	return seen == n
}

// Property: SCC matches brute-force mutual reachability, and its ids are
// in reverse topological order.
func TestSCCMatchesReachability(t *testing.T) {
	f := func(seed int64) bool {
		adj := randomDigraph(seed)
		comp, n := SCC(adj)
		if n < 1 && len(adj) > 0 {
			return false
		}
		reach := reachability(adj)
		for u := range adj {
			for v := range adj {
				same := comp[u] == comp[v]
				mutual := u == v || (reach[u][v] && reach[v][u])
				if same != mutual {
					return false
				}
			}
		}
		for u := range adj {
			for _, v := range adj[u] {
				if comp[u] != comp[v] && comp[u] < comp[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: removing the selected feedback arcs always yields an acyclic
// graph, every arc closes a cycle (its head reaches its tail), and the
// selection is deterministic across runs.
func TestFeedbackArcsProperty(t *testing.T) {
	f := func(seed int64) bool {
		adj := randomDigraph(seed)
		arcs := FeedbackArcs(adj)
		if again := FeedbackArcs(adj); !reflect.DeepEqual(arcs, again) {
			return false
		}
		drop := make(map[int64]int, len(arcs))
		for _, a := range arcs {
			drop[int64(a[0])<<32|int64(a[1])]++
		}
		pruned := make([][]int32, len(adj))
		for u := range adj {
			for _, v := range adj[u] {
				if k := int64(u)<<32 | int64(v); drop[k] > 0 {
					drop[k]--
					continue
				}
				pruned[u] = append(pruned[u], v)
			}
		}
		if !kahnAcyclic(pruned) {
			return false
		}
		reach := reachability(adj)
		for _, a := range arcs {
			u, v := a[0], a[1]
			if u != v && !reach[v][u] {
				return false // arc not on any cycle
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// s2Dirs are representative S2 level-symmetric directions (both z signs):
// the twisted ring is cyclic for all of them.
var s2Dirs = []geom.Vec3{
	{X: 0.577350, Y: 0.577350, Z: 0.577350},
	{X: -0.577350, Y: 0.577350, Z: 0.577350},
	{X: 0.577350, Y: -0.577350, Z: -0.577350},
	{X: -0.577350, Y: -0.577350, Z: -0.577350},
}

func TestFeedbackEdgesOnCyclicMesh(t *testing.T) {
	m, err := meshgen.CyclicRing(12)
	if err != nil {
		t.Fatal(err)
	}
	for _, omega := range s2Dirs {
		comp, n := CellSCC(m, omega)
		nt, maxSize := NontrivialSCCs(comp, n)
		if nt == 0 || maxSize <= 1 {
			t.Fatalf("Ω=%v: expected a nontrivial cell SCC (got %d comps, max %d)", omega, n, maxSize)
		}
		lagged := FeedbackEdges(m, omega)
		if len(lagged) == 0 {
			t.Fatalf("Ω=%v: no feedback edges on a cyclic mesh", omega)
		}
		if again := FeedbackEdges(m, omega); !reflect.DeepEqual(lagged, again) {
			t.Fatalf("Ω=%v: feedback selection not deterministic", omega)
		}
		// Every lagged edge must be a real downwind dependency inside an SCC.
		for _, e := range lagged {
			if comp[e.From] != comp[e.To] {
				t.Fatalf("Ω=%v: lagged edge %d->%d crosses SCCs", omega, e.From, e.To)
			}
			f := m.Face(e.From, int(e.SrcFace))
			if f.Neighbor != e.To || omega.Dot(f.Normal) <= upwindEps {
				t.Fatalf("Ω=%v: lagged edge %d->%d is not a downwind face", omega, e.From, e.To)
			}
			if m.Face(e.To, int(e.DstFace)).Neighbor != e.From {
				t.Fatalf("Ω=%v: lagged edge %d->%d has wrong receiving face", omega, e.From, e.To)
			}
		}
		// The erroring wrappers must refuse the cyclic mesh...
		if _, err := GlobalTopoOrder(m, omega); err == nil {
			t.Fatalf("Ω=%v: GlobalTopoOrder accepted a cyclic mesh", omega)
		}
		if _, err := CellLevels(m, omega); err == nil {
			t.Fatalf("Ω=%v: CellLevels accepted a cyclic mesh", omega)
		}
		// ...while the lagged variants deliver a complete, valid order.
		order, lagged2 := GlobalTopoOrderLagged(m, omega)
		if len(order) != m.NumCells() {
			t.Fatalf("Ω=%v: lagged order covers %d of %d cells", omega, len(order), m.NumCells())
		}
		if !reflect.DeepEqual(lagged, lagged2) {
			t.Fatalf("Ω=%v: FeedbackEdges and GlobalTopoOrderLagged disagree", omega)
		}
		isLagged := map[int64]bool{}
		for _, e := range lagged {
			isLagged[int64(e.From)<<3|int64(e.SrcFace)] = true
		}
		pos := make([]int, m.NumCells())
		for i, c := range order {
			pos[c] = i
		}
		for c := 0; c < m.NumCells(); c++ {
			for f := 0; f < m.NumFaces(mesh.CellID(c)); f++ {
				face := m.Face(mesh.CellID(c), f)
				if face.Neighbor < 0 || omega.Dot(face.Normal) <= upwindEps {
					continue
				}
				if isLagged[int64(c)<<3|int64(f)] {
					continue
				}
				if pos[face.Neighbor] <= pos[c] {
					t.Fatalf("Ω=%v: non-lagged dependency %d->%d violated by lagged order", omega, c, face.Neighbor)
				}
			}
		}
		levels, _ := CellLevelsLagged(m, omega)
		for c, l := range levels {
			if l < 0 {
				t.Fatalf("Ω=%v: negative level for cell %d", omega, c)
			}
		}
	}
}

func TestBuildPatchGraphLaggedConsistency(t *testing.T) {
	m, err := meshgen.CyclicStack(12, 2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := meshgen.AzimuthalBlocks(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	omega := s2Dirs[0]
	lagged := FeedbackEdges(m, omega)
	if len(lagged) == 0 {
		t.Fatal("expected lagged edges")
	}
	graphs := BuildAllPatchGraphsLagged(d, omega, 0, lagged)
	var indegSum, edges, lagIns, lagOuts int
	for _, g := range graphs {
		for _, x := range g.InDegree {
			indegSum += int(x)
		}
		l, r := g.NumEdges()
		edges += l + r
		lagIns += len(g.LagIn)
		lagOuts += len(g.LagOut)
	}
	if indegSum != edges {
		t.Errorf("indegree sum %d != edge count %d", indegSum, edges)
	}
	if lagIns != len(lagged) || lagOuts != len(lagged) {
		t.Errorf("LagIn/LagOut = %d/%d, want %d each", lagIns, lagOuts, len(lagged))
	}
	// Every lag entry must reference a valid slot, and the slots must be
	// covered exactly once on each side.
	seenIn := make([]bool, len(lagged))
	seenOut := make([]bool, len(lagged))
	for _, g := range graphs {
		for _, li := range g.LagIn {
			if seenIn[li.Idx] {
				t.Fatalf("lag slot %d consumed twice", li.Idx)
			}
			seenIn[li.Idx] = true
			if g.Cells[li.V] != lagged[li.Idx].To || li.Face != lagged[li.Idx].DstFace {
				t.Fatalf("LagIn slot %d mismatched", li.Idx)
			}
		}
		for _, lo := range g.LagOut {
			if seenOut[lo.Idx] {
				t.Fatalf("lag slot %d produced twice", lo.Idx)
			}
			seenOut[lo.Idx] = true
			if g.Cells[lo.V] != lagged[lo.Idx].From || lo.SrcFace != lagged[lo.Idx].SrcFace {
				t.Fatalf("LagOut slot %d mismatched", lo.Idx)
			}
		}
	}
	// On an acyclic mesh the lagged builder must reproduce the plain one
	// bit for bit.
	_, da := structured(t, 4)
	for p := 0; p < da.NumPatches(); p++ {
		plain := BuildPatchGraph(da, mesh.PatchID(p), omegaPPP, 0)
		laggedG := BuildPatchGraphLagged(da, mesh.PatchID(p), omegaPPP, 0, nil)
		if !reflect.DeepEqual(plain, laggedG) {
			t.Fatalf("patch %d: lagged build differs on acyclic mesh", p)
		}
	}
}

func TestPatchDAGSCCOnRing(t *testing.T) {
	m, err := meshgen.CyclicRing(12)
	if err != nil {
		t.Fatal(err)
	}
	d, err := meshgen.AzimuthalBlocks(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	dag := BuildPatchDAG(d, s2Dirs[0])
	if dag.IsAcyclic() {
		t.Fatal("ring patch digraph should be cyclic")
	}
	comp, n := dag.SCC()
	nt, maxSize := NontrivialSCCs(comp, n)
	if nt == 0 || maxSize <= 1 {
		t.Errorf("expected a nontrivial patch SCC, got %d comps (max size %d)", n, maxSize)
	}
	// Acyclic decomposition: one component per patch.
	_, ds := structured(t, 4)
	sdag := BuildPatchDAG(ds, omegaPPP)
	if _, n := sdag.SCC(); n != sdag.N {
		t.Errorf("acyclic patch DAG has %d comps, want %d", n, sdag.N)
	}
}
