package graph

import (
	"jsweep/internal/geom"
	"jsweep/internal/mesh"
)

// Cyclic sweep dependencies (Vermaak, Ragusa & Morel, arXiv:2004.01824):
// unstructured and decomposed meshes routinely produce cells whose sweep
// graph contains strongly connected components — non-convex or twisted cell
// configurations where flux flows "around a loop" for some directions. The
// standard remedy is to detect the SCCs, break every cycle by *lagging* the
// angular flux on a deterministic set of feedback edges (the downwind cell
// reads the previous source-iteration's flux instead of waiting), and let
// the outer source iteration converge the lagged values. This file holds
// the graph side of that machinery: Tarjan SCC detection, feedback-edge
// selection, and cycle-tolerant topological orders.

// SCC computes the strongly connected components of a digraph given as
// adjacency lists, using an iterative Tarjan traversal. It returns a dense
// component id per vertex and the component count. Component ids are
// assigned in reverse topological order of the condensation: every edge
// u->v with comp[u] != comp[v] satisfies comp[u] > comp[v]. The result is
// deterministic for a given adjacency (vertices are rooted in ascending
// order, successors visited in list order).
func SCC(adj [][]int32) (comp []int32, ncomp int) {
	n := len(adj)
	comp = make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int32, n) // 0 = unvisited, else discovery index + 1
	low := make([]int32, n)
	onStack := make([]bool, n)
	stack := make([]int32, 0, n)
	type frame struct {
		v  int32
		ei int
	}
	var frames []frame
	var next int32
	for s := 0; s < n; s++ {
		if index[s] != 0 {
			continue
		}
		frames = append(frames[:0], frame{v: int32(s)})
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.ei == 0 {
				next++
				index[v] = next
				low[v] = next
				stack = append(stack, v)
				onStack[v] = true
			}
			descended := false
			for f.ei < len(adj[v]) {
				w := adj[v][f.ei]
				f.ei++
				if index[w] == 0 {
					frames = append(frames, frame{v: w})
					descended = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if descended {
				continue
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = int32(ncomp)
					if w == v {
						break
					}
				}
				ncomp++
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				u := frames[len(frames)-1].v
				if low[v] < low[u] {
					low[u] = low[v]
				}
			}
		}
	}
	return comp, ncomp
}

// Condense builds the condensation of a digraph from an SCC labelling:
// vertex set = components, edge c1->c2 when some u->v has comp[u] = c1,
// comp[v] = c2, c1 != c2. Adjacency lists are sorted and deduplicated. The
// condensation of any digraph is acyclic.
func Condense(adj [][]int32, comp []int32, ncomp int) [][]int32 {
	out := make([][]int32, ncomp)
	seen := make(map[int64]struct{})
	for u := range adj {
		cu := comp[u]
		for _, v := range adj[u] {
			cv := comp[v]
			if cu == cv {
				continue
			}
			k := int64(cu)<<32 | int64(uint32(cv))
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			out[cu] = append(out[cu], cv)
		}
	}
	for c := range out {
		insertionSort32(out[c])
	}
	return out
}

func insertionSort32(a []int32) {
	for i := 1; i < len(a); i++ {
		x := a[i]
		j := i - 1
		for j >= 0 && a[j] > x {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = x
	}
}

// SCCSizes returns, per component, its vertex count.
func SCCSizes(comp []int32, ncomp int) []int32 {
	sizes := make([]int32, ncomp)
	for _, c := range comp {
		sizes[c]++
	}
	return sizes
}

// NontrivialSCCs counts components with more than one vertex (each holds at
// least one cycle) and reports the largest component size.
func NontrivialSCCs(comp []int32, ncomp int) (count int, maxSize int) {
	for _, sz := range SCCSizes(comp, ncomp) {
		if sz > 1 {
			count++
		}
		if int(sz) > maxSize {
			maxSize = int(sz)
		}
	}
	return count, maxSize
}

// FeedbackArcs returns a deterministic feedback-arc set of a digraph: the
// back edges of a DFS rooted at vertices in ascending order with successors
// visited in list order. Removing the returned arcs always leaves an
// acyclic graph (a digraph is acyclic iff a DFS finds no back edge), and
// every returned arc lies on a cycle, so arcs are only spent where a cycle
// actually exists. Self-loops are returned as arcs too.
func FeedbackArcs(adj [][]int32) [][2]int32 {
	n := len(adj)
	// 0 = unvisited, 1 = on the DFS path, 2 = finished.
	state := make([]int8, n)
	type frame struct {
		v  int32
		ei int
	}
	var frames []frame
	var arcs [][2]int32
	for s := 0; s < n; s++ {
		if state[s] != 0 {
			continue
		}
		state[s] = 1
		frames = append(frames[:0], frame{v: int32(s)})
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			descended := false
			for f.ei < len(adj[v]) {
				w := adj[v][f.ei]
				f.ei++
				switch state[w] {
				case 0:
					state[w] = 1
					frames = append(frames, frame{v: w})
					descended = true
				case 1:
					arcs = append(arcs, [2]int32{v, w})
				}
				if descended {
					break
				}
			}
			if descended {
				continue
			}
			state[v] = 2
			frames = frames[:len(frames)-1]
		}
	}
	return arcs
}

// CellEdge is one cell-level sweep dependency: flux leaves From through its
// face SrcFace and enters To through its face DstFace.
type CellEdge struct {
	From, To mesh.CellID
	SrcFace  int8
	DstFace  int8
}

// lagKey packs a (cell, face) pair into a map key. Face counts are at most
// 6, so three bits suffice.
func lagKey(c mesh.CellID, face int8) int64 { return int64(c)<<3 | int64(face) }

// cellAdjacency builds the downwind adjacency lists of the cell-level sweep
// graph for one direction (deterministic: faces in index order). face[c][k]
// is the face index behind adj[c][k].
func cellAdjacency(m mesh.Mesh, omega geom.Vec3) (adj [][]int32, face [][]int8) {
	n := m.NumCells()
	adj = make([][]int32, n)
	face = make([][]int8, n)
	for c := 0; c < n; c++ {
		nf := m.NumFaces(mesh.CellID(c))
		for i := 0; i < nf; i++ {
			f := m.Face(mesh.CellID(c), i)
			if f.Neighbor >= 0 && omega.Dot(f.Normal) > upwindEps {
				adj[c] = append(adj[c], int32(f.Neighbor))
				face[c] = append(face[c], int8(i))
			}
		}
	}
	return adj, face
}

// CellSCC computes the strongly connected components of the cell-level
// sweep graph for direction omega. An acyclic sweep graph has exactly one
// component per cell.
func CellSCC(m mesh.Mesh, omega geom.Vec3) (comp []int32, ncomp int) {
	adj, _ := cellAdjacency(m, omega)
	return SCC(adj)
}

// FeedbackEdges selects the deterministic set of cell-level dependency
// edges to lag for direction omega: the DFS back edges of the sweep graph
// (FeedbackArcs over the downwind adjacency, cells rooted in ascending
// order and faces in index order), annotated with the faces the flux
// crosses. Removing them always yields an acyclic graph; on an
// already-acyclic mesh the result is empty. Each edge lies on a cycle, so
// the set is confined to the graph's strongly connected components.
func FeedbackEdges(m mesh.Mesh, omega geom.Vec3) []CellEdge {
	adj, adjFace := cellAdjacency(m, omega)
	arcs := FeedbackArcs(adj)
	if len(arcs) == 0 {
		return nil
	}
	// Map each arc back to its mesh face. A cell pair can share more than
	// one downwind face in pathological meshes; arcs of equal (from, to)
	// are reported in adjacency (= face) order, so a cursor per pair keeps
	// the mapping aligned.
	cursor := make(map[int64]int, len(arcs))
	edges := make([]CellEdge, 0, len(arcs))
	for _, a := range arcs {
		u, v := a[0], a[1]
		key := int64(u)<<32 | int64(uint32(v))
		k := cursor[key]
		for ; k < len(adj[u]); k++ {
			if adj[u][k] == v {
				break
			}
		}
		cursor[key] = k + 1
		srcFace := adjFace[u][k]
		edges = append(edges, CellEdge{
			From: mesh.CellID(u), To: mesh.CellID(v),
			SrcFace: srcFace, DstFace: backFace(m, mesh.CellID(v), mesh.CellID(u)),
		})
	}
	return edges
}

// laggedInSet keys lagged edges by their receiving (cell, face); laggedOutSet
// by their sending (cell, face). Values are the edge's index in the lagged
// slice — the slot id of the old/new flux stores.
func laggedSets(lagged []CellEdge) (in, out map[int64]int32) {
	if len(lagged) == 0 {
		return nil, nil
	}
	in = make(map[int64]int32, len(lagged))
	out = make(map[int64]int32, len(lagged))
	for i, e := range lagged {
		in[lagKey(e.To, e.DstFace)] = int32(i)
		out[lagKey(e.From, e.SrcFace)] = int32(i)
	}
	return in, out
}

// laggedKahn is the shared cycle-tolerant Kahn walk: it lags the feedback
// edges, then produces both the FIFO (wavefront-like, deterministic)
// topological order and the BFS wavefront level of every cell.
func laggedKahn(m mesh.Mesh, omega geom.Vec3) ([]mesh.CellID, []int32, []CellEdge) {
	lagged := FeedbackEdges(m, omega)
	_, lagOut := laggedSets(lagged)
	n := m.NumCells()
	indeg := make([]int32, n)
	for c := 0; c < n; c++ {
		nf := m.NumFaces(mesh.CellID(c))
		for i := 0; i < nf; i++ {
			f := m.Face(mesh.CellID(c), i)
			if f.Neighbor >= 0 && omega.Dot(f.Normal) < -upwindEps {
				indeg[c]++
			}
		}
	}
	for _, e := range lagged {
		indeg[e.To]--
	}
	level := make([]int32, n)
	queue := make([]mesh.CellID, 0, n)
	for c := 0; c < n; c++ {
		if indeg[c] == 0 {
			queue = append(queue, mesh.CellID(c))
		}
	}
	for head := 0; head < len(queue); head++ {
		c := queue[head]
		nf := m.NumFaces(c)
		for i := 0; i < nf; i++ {
			f := m.Face(c, i)
			if f.Neighbor < 0 || omega.Dot(f.Normal) <= upwindEps {
				continue
			}
			if lagOut != nil {
				if _, skip := lagOut[lagKey(c, int8(i))]; skip {
					continue
				}
			}
			if l := level[c] + 1; l > level[f.Neighbor] {
				level[f.Neighbor] = l
			}
			indeg[f.Neighbor]--
			if indeg[f.Neighbor] == 0 {
				queue = append(queue, f.Neighbor)
			}
		}
	}
	if len(queue) != n {
		// Removing a DFS back-edge set always leaves an acyclic graph; a
		// shortfall here is a bug, not a property of the mesh.
		panic("graph: lagged sweep graph still cyclic (feedback selection bug)")
	}
	return queue, level, lagged
}

// GlobalTopoOrderLagged returns a dependency-respecting order of all mesh
// cells for direction omega together with the lagged feedback edges that
// had to be removed to make the sweep graph acyclic (empty on acyclic
// meshes, where the order is identical to GlobalTopoOrder's). A cell's
// position respects every non-lagged dependency; lagged dependencies are
// satisfied from the previous source iteration's flux instead.
func GlobalTopoOrderLagged(m mesh.Mesh, omega geom.Vec3) ([]mesh.CellID, []CellEdge) {
	order, _, lagged := laggedKahn(m, omega)
	return order, lagged
}

// CellLevelsLagged returns the BFS wavefront level of every cell for
// direction omega after lagging the feedback edges, plus the lagged edges
// themselves (empty, with levels identical to CellLevels, on acyclic
// meshes).
func CellLevelsLagged(m mesh.Mesh, omega geom.Vec3) ([]int32, []CellEdge) {
	_, level, lagged := laggedKahn(m, omega)
	return level, lagged
}

// SCC computes the strongly connected components of the patch digraph.
// Patch-level cycles arise both from cyclic cell graphs and from the
// zig-zag projection of acyclic ones (paper Fig. 4); the runtime handles
// them through partial computation, so this is an analysis/reporting tool.
func (dag *PatchDAG) SCC() (comp []int32, ncomp int) { return SCC(dag.Succ) }
