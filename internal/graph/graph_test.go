package graph

import (
	"math"
	"testing"
	"testing/quick"

	"jsweep/internal/geom"
	"jsweep/internal/mesh"
	"jsweep/internal/meshgen"
)

func structured(t *testing.T, n int) (*mesh.Structured3D, *mesh.Decomposition) {
	t.Helper()
	m, err := mesh.NewStructured3D(n, n, n, geom.Vec3{}, geom.Vec3{X: 1, Y: 1, Z: 1})
	if err != nil {
		t.Fatal(err)
	}
	d, err := m.BlockDecompose(n/2, n/2, n/2)
	if err != nil {
		t.Fatal(err)
	}
	return m, d
}

var omegaPPP = geom.Vec3{X: 0.5, Y: 0.6, Z: 0.6244997998398398}

func TestPatchGraphStructuredInDegrees(t *testing.T) {
	m, d := structured(t, 4)
	g := BuildPatchGraph(d, 0, omegaPPP, 0)
	if g.NumVertices() != 8 {
		t.Fatalf("vertices = %d, want 8", g.NumVertices())
	}
	// Patch 0 holds the corner block at the origin. For +++ direction, its
	// corner cell (0,0,0) has in-degree 0; the far corner (1,1,1) local has
	// in-degree 3.
	for v, c := range g.Cells {
		i, j, k := m.Coords(c)
		want := int32(0)
		if i > 0 {
			want++
		}
		if j > 0 {
			want++
		}
		if k > 0 {
			want++
		}
		if g.InDegree[v] != want {
			t.Errorf("cell (%d,%d,%d): indeg = %d, want %d", i, j, k, g.InDegree[v], want)
		}
	}
}

func TestPatchGraphEdgeConsistency(t *testing.T) {
	_, d := structured(t, 6)
	graphs := BuildAllPatchGraphs(d, omegaPPP, 0)
	// Sum of in-degrees must equal total local+remote edges.
	var indegSum, edges int
	for _, g := range graphs {
		for _, x := range g.InDegree {
			indegSum += int(x)
		}
		l, r := g.NumEdges()
		edges += l + r
	}
	if indegSum != edges {
		t.Errorf("indegree sum %d != edge count %d", indegSum, edges)
	}
}

func TestPatchGraphRemoteEdgesTargetRightPatch(t *testing.T) {
	_, d := structured(t, 6)
	graphs := BuildAllPatchGraphs(d, omegaPPP, 0)
	for _, g := range graphs {
		for v := int32(0); v < int32(g.NumVertices()); v++ {
			for _, e := range g.RemoteEdges(v) {
				if e.ToPatch == g.Patch {
					t.Fatalf("remote edge staying in patch %d", g.Patch)
				}
				tgt := graphs[e.ToPatch]
				if int(e.To) >= tgt.NumVertices() {
					t.Fatalf("remote edge target %d outside patch %d", e.To, e.ToPatch)
				}
				// Receiving face of the target cell must point upwind.
				c := tgt.Cells[e.To]
				f := d.Mesh.Face(c, int(e.Face))
				if omegaPPP.Dot(f.Normal) >= 0 {
					t.Fatalf("receiving face not upwind")
				}
			}
		}
	}
}

func TestGlobalTopoOrderStructured(t *testing.T) {
	m, _ := structured(t, 4)
	order, err := GlobalTopoOrder(m, omegaPPP)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != m.NumCells() {
		t.Fatalf("order covers %d cells, want %d", len(order), m.NumCells())
	}
	// Positions must respect dependencies: upwind before downwind.
	pos := make([]int, m.NumCells())
	for i, c := range order {
		pos[c] = i
	}
	for c := 0; c < m.NumCells(); c++ {
		for f := 0; f < 6; f++ {
			face := m.Face(mesh.CellID(c), f)
			if face.Neighbor >= 0 && omegaPPP.Dot(face.Normal) > 0 {
				if pos[face.Neighbor] <= pos[c] {
					t.Fatalf("cell %d scheduled before its upwind %d", face.Neighbor, c)
				}
			}
		}
	}
}

// Property: for any direction, the sweep graph of a structured mesh is
// acyclic (a known property of convex cells).
func TestStructuredAlwaysAcyclic(t *testing.T) {
	m, _ := structured(t, 4)
	f := func(a, b, c float64) bool {
		omega := geom.Vec3{X: math.Mod(a, 1), Y: math.Mod(b, 1), Z: math.Mod(c, 1)}
		if omega.Norm() < 1e-3 {
			return true
		}
		omega = omega.Normalize()
		_, err := GlobalTopoOrder(m, omega)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Tet meshes from Kuhn subdivisions are acyclic for generic directions too.
func TestBallAcyclicForQuadratureDirections(t *testing.T) {
	m, err := meshgen.Ball(6, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	dirs := []geom.Vec3{
		{X: 0.577, Y: 0.577, Z: 0.578}, {X: -0.35, Y: 0.868, Z: 0.35},
		{X: 0.868, Y: -0.35, Z: -0.35}, {X: -0.577, Y: -0.577, Z: -0.578},
	}
	for _, omega := range dirs {
		if _, err := GlobalTopoOrder(m, omega.Normalize()); err != nil {
			t.Errorf("Ω=%v: %v", omega, err)
		}
	}
}

func TestCellLevels(t *testing.T) {
	m, _ := structured(t, 4)
	omega := geom.Vec3{X: 1, Y: 0, Z: 0}
	levels, err := CellLevels(m, omega)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < m.NumCells(); c++ {
		i, _, _ := m.Coords(mesh.CellID(c))
		if levels[c] != int32(i) {
			t.Fatalf("cell %d level = %d, want %d", c, levels[c], i)
		}
	}
}

func TestPatchDAGStructured(t *testing.T) {
	_, d := structured(t, 4) // 2x2x2 patches
	dag := BuildPatchDAG(d, omegaPPP)
	if dag.N != 8 {
		t.Fatalf("N = %d", dag.N)
	}
	if !dag.IsAcyclic() {
		t.Error("axis-aligned block decomposition should give an acyclic patch DAG")
	}
	// Corner source patch (block 0) has in-degree 0 and 3 successors.
	if dag.InDeg[0] != 0 {
		t.Errorf("patch 0 indeg = %d, want 0", dag.InDeg[0])
	}
	if len(dag.Succ[0]) != 3 {
		t.Errorf("patch 0 succ = %d, want 3", len(dag.Succ[0]))
	}
	// Edge weights are the face counts: a 2x2 patch interface has 4 faces.
	for _, w := range dag.Weight[0] {
		if w != 4 {
			t.Errorf("edge weight = %d, want 4", w)
		}
	}
}

func TestPatchDAGAxisDirection(t *testing.T) {
	_, d := structured(t, 4)
	dag := BuildPatchDAG(d, geom.Vec3{X: 1, Y: 0, Z: 0})
	// Pure +x direction: only x-crossing patch edges, 4 of them (2x2 block
	// pairs along x).
	total := 0
	for p := 0; p < dag.N; p++ {
		total += len(dag.Succ[p])
	}
	if total != 4 {
		t.Errorf("patch edges = %d, want 4", total)
	}
}

func TestCoarsenSingleClusterPerPatch(t *testing.T) {
	m, d := structured(t, 4)
	_ = m
	graphs := BuildAllPatchGraphs(d, omegaPPP, 0)
	// One cluster per patch in local topological order: valid and maximal.
	clusters := make([][][]int32, len(graphs))
	for i, g := range graphs {
		order := topoOf(t, g)
		clusters[i] = [][]int32{order}
	}
	cg, err := Coarsen(graphs, clusters)
	if err != nil {
		t.Fatal(err)
	}
	if cg.NumCV() != len(graphs) {
		t.Fatalf("CV = %d, want %d", cg.NumCV(), len(graphs))
	}
	// Coarse edges = patch DAG edges for this decomposition/direction.
	dag := BuildPatchDAG(d, omegaPPP)
	wantCE := 0
	for p := 0; p < dag.N; p++ {
		wantCE += len(dag.Succ[p])
	}
	if cg.NumCE() != wantCE {
		t.Errorf("CE = %d, want %d", cg.NumCE(), wantCE)
	}
	st := cg.Stats(graphs)
	if st.FineVertices != 64 || st.CoarseVertices != 8 {
		t.Errorf("stats = %+v", st)
	}
}

func topoOf(t *testing.T, g *PatchGraph) []int32 {
	t.Helper()
	n := g.NumVertices()
	in := make([]int32, n)
	for v := int32(0); v < int32(n); v++ {
		for _, e := range g.LocalEdges(v) {
			in[e.To]++
		}
	}
	var queue []int32
	for v := int32(0); v < int32(n); v++ {
		if in[v] == 0 {
			queue = append(queue, v)
		}
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, e := range g.LocalEdges(v) {
			in[e.To]--
			if in[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	if len(queue) != n {
		t.Fatal("local cycle")
	}
	return queue
}

// Theorem 1 property test: clustering an acyclic patch graph set by
// contiguous chunks of the execution (topological) order always yields an
// acyclic coarse graph, for random chunk sizes.
func TestCoarsenTheorem1Property(t *testing.T) {
	_, d := structured(t, 4)
	graphs := BuildAllPatchGraphs(d, omegaPPP, 0)
	f := func(seed uint32) bool {
		grain := 1 + int(seed%7)
		clusters := make([][][]int32, len(graphs))
		for i, g := range graphs {
			order := make([]int32, 0, g.NumVertices())
			// Simulate a data-driven execution: repeatedly take up to
			// `grain` ready vertices (this mirrors vertex clustering).
			in := make([]int32, g.NumVertices())
			copy(in, localInDeg(g))
			ready := []int32{}
			for v := int32(0); v < int32(g.NumVertices()); v++ {
				if in[v] == 0 {
					ready = append(ready, v)
				}
			}
			for len(ready) > 0 {
				take := grain
				if take > len(ready) {
					take = len(ready)
				}
				batch := append([]int32(nil), ready[:take]...)
				ready = ready[take:]
				for _, v := range batch {
					for _, e := range g.LocalEdges(v) {
						in[e.To]--
						if in[e.To] == 0 {
							ready = append(ready, e.To)
						}
					}
				}
				clusters[i] = append(clusters[i], batch)
				order = append(order, batch...)
			}
			if len(order) != g.NumVertices() {
				return false
			}
		}
		_, err := Coarsen(graphs, clusters)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func localInDeg(g *PatchGraph) []int32 {
	in := make([]int32, g.NumVertices())
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		for _, e := range g.LocalEdges(v) {
			in[e.To]++
		}
	}
	return in
}

func TestCoarsenRejectsBadClusters(t *testing.T) {
	_, d := structured(t, 4)
	graphs := BuildAllPatchGraphs(d, omegaPPP, 0)
	// Missing vertices.
	clusters := make([][][]int32, len(graphs))
	for i := range clusters {
		clusters[i] = [][]int32{{0}}
	}
	if _, err := Coarsen(graphs, clusters); err == nil {
		t.Error("incomplete clustering should fail")
	}
	// Duplicated vertex.
	for i, g := range graphs {
		order := topoOf(t, g)
		clusters[i] = [][]int32{order, {order[0]}}
	}
	if _, err := Coarsen(graphs, clusters); err == nil {
		t.Error("duplicate vertex should fail")
	}
	// Mismatched lengths.
	if _, err := Coarsen(graphs, clusters[:1]); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestCoarsenCondensesCyclicClustering(t *testing.T) {
	_, d := structured(t, 4)
	graphs := BuildAllPatchGraphs(d, geom.Vec3{X: 1, Y: 0, Z: 0}, 0)
	// Build a clustering that violates Theorem 1 inside one program: split
	// one patch into two clusters A and B such that A needs B and B needs
	// A. With +x direction each patch is 2x2x2; local chains are along x:
	// pairs (v, v') with v -> v'. Put the head of chain 1 with the tail of
	// chain 2 in cluster A, and the tail of chain 1 with the head of chain
	// 2 in cluster B: A -> B (chain1) and B -> A (chain2). Coarsen must
	// condense the A/B component into one coarse vertex whose members are
	// re-ordered to respect the fine dependencies, not reject it.
	g := graphs[0]
	type chain struct{ head, tail int32 }
	var chains []chain
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		for _, e := range g.LocalEdges(v) {
			chains = append(chains, chain{head: v, tail: e.To})
		}
	}
	if len(chains) < 2 {
		t.Skip("not enough local chains")
	}
	a := []int32{chains[0].head, chains[1].tail}
	b := []int32{chains[0].tail, chains[1].head}
	rest := []int32{}
	used := map[int32]bool{a[0]: true, a[1]: true, b[0]: true, b[1]: true}
	if len(used) != 4 {
		t.Skip("overlapping chains")
	}
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if !used[v] {
			rest = append(rest, v)
		}
	}
	clusters := make([][][]int32, len(graphs))
	clusters[0] = [][]int32{a, b}
	if len(rest) > 0 {
		clusters[0] = append(clusters[0], rest)
	}
	for i := 1; i < len(graphs); i++ {
		clusters[i] = [][]int32{topoOf(t, graphs[i])}
	}
	cg, err := Coarsen(graphs, clusters)
	if err != nil {
		t.Fatalf("cyclic clustering should be condensed, got error: %v", err)
	}
	if cg.CondensedSCCs == 0 {
		t.Error("CondensedSCCs = 0, want >= 1")
	}
	if !cg.isAcyclic() {
		t.Error("condensed coarse graph still cyclic")
	}
	// The merged coarse vertex must hold all four vertices in an order
	// respecting the fine local dependencies.
	var mergedCV []int32
	for _, verts := range cg.Verts {
		has := map[int32]bool{}
		for _, v := range verts {
			has[v] = true
		}
		if has[a[0]] && has[a[1]] && has[b[0]] && has[b[1]] {
			mergedCV = verts
			break
		}
	}
	if mergedCV == nil {
		t.Fatal("no coarse vertex contains the condensed A/B union")
	}
	pos := map[int32]int{}
	for i, v := range mergedCV {
		pos[v] = i
	}
	for _, v := range mergedCV {
		for _, e := range g.LocalEdges(v) {
			if p, in := pos[e.To]; in && p <= pos[v] {
				t.Errorf("condensed cluster orders %d before its upwind %d", e.To, v)
			}
		}
	}
	// Every vertex of every program must still be clustered exactly once.
	for i, gr := range graphs {
		seen := make([]bool, gr.NumVertices())
		for _, cv := range cg.ByProgram[i] {
			for _, v := range cg.Verts[cv] {
				if seen[v] {
					t.Fatalf("program %d vertex %d clustered twice after condensation", i, v)
				}
				seen[v] = true
			}
		}
		for v, ok := range seen {
			if !ok {
				t.Fatalf("program %d vertex %d lost by condensation", i, v)
			}
		}
	}
}

// A cycle between single-vertex clusters of two different programs cannot
// be repaired by intra-program condensation: two mutually dependent coarse
// vertices owned by different programs would deadlock the schedulers, so
// Coarsen must reject it.
func TestCoarsenRejectsIrreducibleCrossProgramCycle(t *testing.T) {
	mk := func(p mesh.PatchID, other mesh.PatchID) *PatchGraph {
		return &PatchGraph{
			Patch:       p,
			Angle:       0,
			Cells:       []mesh.CellID{mesh.CellID(p)},
			InDegree:    []int32{1},
			LocalStart:  []int32{0, 0},
			RemoteStart: []int32{0, 1},
			RemoteAdj:   []RemoteEdge{{ToPatch: other, To: 0, SrcFace: 0, Face: 1}},
		}
	}
	graphs := []*PatchGraph{mk(0, 1), mk(1, 0)}
	clusters := [][][]int32{{{0}}, {{0}}}
	if _, err := Coarsen(graphs, clusters); err == nil {
		t.Error("irreducible cross-program cycle must be rejected")
	}
}
