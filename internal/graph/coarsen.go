package graph

import (
	"fmt"
	"sort"

	"jsweep/internal/mesh"
)

// Coarsened graph (paper §V-E): the vertex clusters recorded during a first
// DAG-driven sweep become coarse vertices, and the aggregated inter-cluster
// data flows become coarse edges. Later sweep iterations schedule the
// coarse graph directly: one activation per coarse vertex and one stream
// per coarse edge, instead of per-vertex bookkeeping — the 7–10× graph-op
// reduction the paper reports for JSNT-S.

// UnderEdge is one mesh-level dependency folded into a coarse edge:
// P(ce) in the paper's property-graph formulation.
type UnderEdge struct {
	// SrcV is the source local vertex (in the source patch's numbering);
	// SrcFace its outgoing face slot.
	SrcV    int32
	SrcFace int8
	// DstV is the destination local vertex (in the destination patch's
	// numbering); DstFace its incoming face slot.
	DstV    int32
	DstFace int8
}

// CoarseGraph is CG = (CV, CE, P(CV), P(CE)). Coarse vertices are owned by
// a (patch, angle) program; edges may stay within a program or cross to
// another.
type CoarseGraph struct {
	// Per coarse vertex:
	Patch []mesh.PatchID
	Angle []int32
	// Verts is P(cv): the member local vertices in solve order.
	Verts [][]int32
	// InDeg is the number of incoming coarse edges.
	InDeg []int32

	// CSR out-edges per coarse vertex.
	EdgeStart []int32
	EdgeTo    []int32
	// EdgeUnder is P(ce): the underlying mesh edges, parallel to EdgeTo.
	EdgeUnder [][]UnderEdge

	// ByProgram maps program index (as passed to Coarsen) to its coarse
	// vertex ids in cluster order.
	ByProgram [][]int32
	// LocalIdx maps a coarse vertex to its position within its owning
	// program's ByProgram list (receivers index their counters by it).
	LocalIdx []int32

	// CondensedSCCs counts the strongly connected components Coarsen had to
	// condense into single coarse vertices to make this graph acyclic
	// (0 when the clustering already respected Theorem 1).
	CondensedSCCs int
}

// LocalIndex returns the owning program's local index of coarse vertex cv.
func (cg *CoarseGraph) LocalIndex(cv int32) int32 { return cg.LocalIdx[cv] }

// NumCV returns the number of coarse vertices.
func (cg *CoarseGraph) NumCV() int { return len(cg.Verts) }

// NumCE returns the number of coarse edges.
func (cg *CoarseGraph) NumCE() int { return len(cg.EdgeTo) }

// Edges returns the out-edge range of coarse vertex cv.
func (cg *CoarseGraph) Edges(cv int32) (to []int32, under [][]UnderEdge) {
	return cg.EdgeTo[cg.EdgeStart[cv]:cg.EdgeStart[cv+1]], cg.EdgeUnder[cg.EdgeStart[cv]:cg.EdgeStart[cv+1]]
}

// Coarsen builds the coarse graph from the per-program patch graphs and the
// clusters recorded during a completed sweep. graphs[i] and clusters[i]
// describe the same (patch, angle) program; clusters[i] lists that
// program's compute batches in execution order, each a list of local
// vertex ids. Every local vertex must appear in exactly one cluster.
//
// Clusters recorded from a real data-driven execution always yield an
// acyclic coarse graph (Theorem 1). Clusterings that violate the theorem —
// hand-built clusters, or clusters replayed against a changed graph — are
// repaired instead of rejected: each strongly connected component of the
// coarse graph is condensed by merging its member clusters (per program,
// re-ordered to respect the fine dependencies) until the graph is acyclic.
// Only an irreducible cross-program cycle, which no clustering repair can
// schedule, is an error.
func Coarsen(graphs []*PatchGraph, clusters [][][]int32) (*CoarseGraph, error) {
	if len(graphs) != len(clusters) {
		return nil, fmt.Errorf("graph: %d graphs but %d cluster sets", len(graphs), len(clusters))
	}
	progOf := make(map[progKey]int, len(graphs))
	for i, g := range graphs {
		k := progKey{g.Patch, g.Angle}
		if _, dup := progOf[k]; dup {
			return nil, fmt.Errorf("graph: duplicate program for patch %d angle %d", g.Patch, g.Angle)
		}
		progOf[k] = i
	}
	condensed := 0
	for {
		cg, err := assembleCoarse(graphs, clusters, progOf)
		if err != nil {
			return nil, err
		}
		if cg.isAcyclic() {
			cg.CondensedSCCs = condensed
			return cg, nil
		}
		next, merged, err := condenseClusters(graphs, clusters, cg)
		if err != nil {
			return nil, err
		}
		if merged == 0 {
			return nil, fmt.Errorf("graph: coarse graph has a cross-program dependency cycle no intra-program condensation can break (Theorem 1 violated across programs)")
		}
		condensed += merged
		clusters = next
	}
}

// progKey identifies a (patch, angle) program.
type progKey struct {
	p mesh.PatchID
	a int32
}

// assembleCoarse builds the coarse graph of one clustering (no acyclicity
// repair; Coarsen drives that).
func assembleCoarse(graphs []*PatchGraph, clusters [][][]int32, progOf map[progKey]int) (*CoarseGraph, error) {
	cg := &CoarseGraph{ByProgram: make([][]int32, len(graphs))}
	// cvOf[i][v] = coarse vertex containing local vertex v of program i.
	cvOf := make([][]int32, len(graphs))
	for i, g := range graphs {
		cvOf[i] = make([]int32, g.NumVertices())
		for v := range cvOf[i] {
			cvOf[i][v] = -1
		}
		for _, cl := range clusters[i] {
			id := int32(len(cg.Verts))
			cg.Patch = append(cg.Patch, g.Patch)
			cg.Angle = append(cg.Angle, g.Angle)
			cg.Verts = append(cg.Verts, cl)
			cg.LocalIdx = append(cg.LocalIdx, int32(len(cg.ByProgram[i])))
			cg.ByProgram[i] = append(cg.ByProgram[i], id)
			for _, v := range cl {
				if v < 0 || int(v) >= g.NumVertices() {
					return nil, fmt.Errorf("graph: program %d cluster references vertex %d outside [0,%d)", i, v, g.NumVertices())
				}
				if cvOf[i][v] != -1 {
					return nil, fmt.Errorf("graph: program %d vertex %d in two clusters", i, v)
				}
				cvOf[i][v] = id
			}
		}
		for v, cv := range cvOf[i] {
			if cv == -1 {
				return nil, fmt.Errorf("graph: program %d vertex %d not clustered", i, v)
			}
		}
	}

	n := len(cg.Verts)
	cg.InDeg = make([]int32, n)
	// Aggregate underlying edges by (fromCV, toCV).
	type ceKey struct{ from, to int32 }
	agg := make(map[ceKey][]UnderEdge)
	for i, g := range graphs {
		for _, cl := range clusters[i] {
			for _, v := range cl {
				from := cvOf[i][v]
				for _, e := range g.LocalEdges(v) {
					to := cvOf[i][e.To]
					if to == from {
						continue // internal to the cluster
					}
					agg[ceKey{from, to}] = append(agg[ceKey{from, to}], UnderEdge{
						SrcV: v, SrcFace: e.SrcFace, DstV: e.To, DstFace: e.Face,
					})
				}
				for _, e := range g.RemoteEdges(v) {
					j, ok := progOf[progKey{e.ToPatch, g.Angle}]
					if !ok {
						return nil, fmt.Errorf("graph: remote edge to patch %d angle %d has no program", e.ToPatch, g.Angle)
					}
					to := cvOf[j][e.To]
					agg[ceKey{from, to}] = append(agg[ceKey{from, to}], UnderEdge{
						SrcV: v, SrcFace: e.SrcFace, DstV: e.To, DstFace: e.Face,
					})
				}
			}
		}
	}

	// Emit CSR in deterministic order.
	keys := make([]ceKey, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].from != keys[b].from {
			return keys[a].from < keys[b].from
		}
		return keys[a].to < keys[b].to
	})
	cg.EdgeStart = make([]int32, n+1)
	for _, k := range keys {
		cg.EdgeStart[k.from+1]++
		cg.InDeg[k.to]++
	}
	for v := 0; v < n; v++ {
		cg.EdgeStart[v+1] += cg.EdgeStart[v]
	}
	cg.EdgeTo = make([]int32, len(keys))
	cg.EdgeUnder = make([][]UnderEdge, len(keys))
	pos := make([]int32, n)
	copy(pos, cg.EdgeStart[:n])
	for _, k := range keys {
		cg.EdgeTo[pos[k.from]] = k.to
		cg.EdgeUnder[pos[k.from]] = agg[k]
		pos[k.from]++
	}

	return cg, nil
}

// condenseClusters merges, for every nontrivial strongly connected
// component of the coarse graph, the component's member clusters within
// each program into a single cluster whose vertices are re-ordered to
// respect the fine local dependencies. It returns the repaired clusterings
// and the number of components that saw a merge; 0 means every nontrivial
// component has at most one cluster per program — a pure cross-program
// cycle condensation cannot break.
func condenseClusters(graphs []*PatchGraph, clusters [][][]int32, cg *CoarseGraph) ([][][]int32, int, error) {
	n := cg.NumCV()
	adj := make([][]int32, n)
	for v := 0; v < n; v++ {
		adj[v] = cg.EdgeTo[cg.EdgeStart[v]:cg.EdgeStart[v+1]]
	}
	comp, ncomp := SCC(adj)
	sizes := SCCSizes(comp, ncomp)

	// cvProg maps a coarse vertex to its owning program index.
	cvProg := make([]int32, n)
	for i, cvs := range cg.ByProgram {
		for _, cv := range cvs {
			cvProg[cv] = int32(i)
		}
	}

	// mergeSets[i] lists, per program i, groups of cluster indices to merge.
	mergeSets := make(map[int32][][]int32)
	merged := 0
	for c := int32(0); c < int32(ncomp); c++ {
		if sizes[c] <= 1 {
			continue
		}
		// Group the component's coarse vertices by program, as cluster
		// indices in ascending (execution) order. Coarse vertex ids grow
		// with (program, cluster) order, so ascending cv gives that.
		byProg := make(map[int32][]int32)
		for cv := int32(0); cv < int32(n); cv++ {
			if comp[cv] == c {
				byProg[cvProg[cv]] = append(byProg[cvProg[cv]], cg.LocalIdx[cv])
			}
		}
		compMerged := false
		for prog, idxs := range byProg {
			if len(idxs) > 1 {
				mergeSets[prog] = append(mergeSets[prog], idxs)
				compMerged = true
			}
		}
		if compMerged {
			merged++
		}
	}
	if merged == 0 {
		return clusters, 0, nil
	}

	out := make([][][]int32, len(clusters))
	copy(out, clusters)
	// Iterate programs in sorted order: map order would pick which
	// program's topoMergeClusters error surfaces when several fail, and
	// every code path here must stay bitwise reproducible.
	progs := make([]int32, 0, len(mergeSets))
	for prog := range mergeSets {
		progs = append(progs, prog)
	}
	sort.Slice(progs, func(i, j int) bool { return progs[i] < progs[j] })
	for _, prog := range progs {
		groups := mergeSets[prog]
		g := graphs[prog]
		old := clusters[prog]
		// groupOf[k] = index of the merge group cluster k belongs to, or -1.
		groupOf := make([]int32, len(old))
		for k := range groupOf {
			groupOf[k] = -1
		}
		for gi, idxs := range groups {
			for _, k := range idxs {
				groupOf[k] = int32(gi)
			}
		}
		mergedCl := make([][]int32, len(groups))
		for gi, idxs := range groups {
			members := make([][]int32, 0, len(idxs))
			for _, k := range idxs {
				members = append(members, old[k])
			}
			cl, err := topoMergeClusters(g, members)
			if err != nil {
				return nil, 0, fmt.Errorf("graph: program %d: %w", prog, err)
			}
			mergedCl[gi] = cl
		}
		// Rebuild the cluster list: the merged cluster replaces its first
		// member (keeping execution order), later members are dropped.
		emitted := make([]bool, len(groups))
		next := make([][]int32, 0, len(old))
		for k, cl := range old {
			gi := groupOf[k]
			if gi < 0 {
				next = append(next, cl)
				continue
			}
			if !emitted[gi] {
				emitted[gi] = true
				next = append(next, mergedCl[gi])
			}
		}
		out[prog] = next
	}
	return out, merged, nil
}

// topoMergeClusters concatenates the member clusters (in execution order)
// and re-orders the union so every fine local dependency within the union
// is respected: Kahn's algorithm seeded and processed in concatenation
// order, which keeps the result deterministic and as close to the recorded
// order as the dependencies allow.
func topoMergeClusters(g *PatchGraph, members [][]int32) ([]int32, error) {
	var concat []int32
	for _, cl := range members {
		concat = append(concat, cl...)
	}
	indeg := make(map[int32]int32, len(concat))
	for _, v := range concat {
		indeg[v] = 0
	}
	for _, v := range concat {
		for _, e := range g.LocalEdges(v) {
			if _, in := indeg[e.To]; in {
				indeg[e.To]++
			}
		}
	}
	queue := make([]int32, 0, len(concat))
	for _, v := range concat {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, e := range g.LocalEdges(v) {
			if d, in := indeg[e.To]; in && d > 0 {
				indeg[e.To] = d - 1
				if d == 1 {
					queue = append(queue, e.To)
				}
			}
		}
	}
	if len(queue) != len(concat) {
		return nil, fmt.Errorf("condensed cluster contains a fine-level dependency cycle (%d of %d vertices unorderable) — lag the mesh's feedback edges before clustering", len(concat)-len(queue), len(concat))
	}
	return queue, nil
}

// isAcyclic runs Kahn's algorithm on the coarse graph.
func (cg *CoarseGraph) isAcyclic() bool {
	n := cg.NumCV()
	indeg := make([]int32, n)
	copy(indeg, cg.InDeg)
	stack := make([]int32, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			stack = append(stack, int32(v))
		}
	}
	seen := 0
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		seen++
		for _, w := range cg.EdgeTo[cg.EdgeStart[v]:cg.EdgeStart[v+1]] {
			indeg[w]--
			if indeg[w] == 0 {
				stack = append(stack, w)
			}
		}
	}
	return seen == n
}

// Stats summarizes the reduction the coarsening achieved.
type CoarsenStats struct {
	FineVertices, FineEdges     int
	CoarseVertices, CoarseEdges int
}

// Stats computes fine-vs-coarse counts against the originating graphs.
func (cg *CoarseGraph) Stats(graphs []*PatchGraph) CoarsenStats {
	s := CoarsenStats{CoarseVertices: cg.NumCV(), CoarseEdges: cg.NumCE()}
	for _, g := range graphs {
		s.FineVertices += g.NumVertices()
		l, r := g.NumEdges()
		s.FineEdges += l + r
	}
	return s
}
