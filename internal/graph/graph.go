// Package graph builds the directed acyclic graphs induced by sweeping a
// mesh (paper §II-C): vertices are (cell, angle) pairs, and an edge (u, v)
// means v's kernel needs u's outgoing face flux. The package provides the
// per-(patch, angle) subgraphs G_{p,t} the sweep patch-programs run on
// (paper §V-A), the patch-level DAG used by patch priorities (§V-D), a
// global topological order for serial reference sweeps, and graph
// coarsening (§V-E).
package graph

import (
	"fmt"

	"jsweep/internal/geom"
	"jsweep/internal/mesh"
)

// upwindEps guards the Ω·n classification against faces almost parallel to
// the sweep direction: |Ω·n| below this is treated as "no dependency"
// (grazing faces carry no flux either way). Shared with the transport
// kernels via mesh.UpwindEps.
const upwindEps = mesh.UpwindEps

// LocalEdge is a downwind edge between two cells of the same patch.
type LocalEdge struct {
	// To is the local vertex index of the downwind cell.
	To int32
	// SrcFace is the face index of the upwind cell through which the flux
	// leaves (indexes the kernel's outgoing-flux slot).
	SrcFace int8
	// Face is the face index of the *downwind* cell through which the flux
	// enters (what the kernel needs to place the incoming flux).
	Face int8
}

// RemoteEdge is a downwind edge into another patch.
type RemoteEdge struct {
	// ToPatch is the downwind patch.
	ToPatch mesh.PatchID
	// To is the local vertex index within ToPatch.
	To int32
	// SrcFace is the face index of the upwind cell through which the flux
	// leaves.
	SrcFace int8
	// Face is the face index of the downwind cell receiving the flux.
	Face int8
}

// LagIn is a lagged incoming edge of a patch graph: local vertex V's face
// Face is fed from slot Idx of the previous iteration's lagged-flux store
// instead of being delivered during the sweep (so it contributes no
// in-degree).
type LagIn struct {
	V    int32
	Face int8
	// Idx is the edge's index in the angle's lagged-edge list — the slot id
	// of the old/new flux stores.
	Idx int32
}

// LagOut is a lagged outgoing edge: after local vertex V solves, its
// outgoing flux through SrcFace is written to slot Idx of the lagged-flux
// store for the next iteration, instead of being propagated downwind now.
type LagOut struct {
	V       int32
	SrcFace int8
	Idx     int32
}

// PatchGraph is the sweep dependency subgraph G_{p,t} of patch p in one
// direction: local vertices (the patch's cells), their in-degrees, and the
// downwind adjacency split into local and remote edges, both in CSR layout.
// On cyclic meshes the feedback edges selected for lagging are excluded
// from the in-degrees and adjacency and recorded in LagIn/LagOut instead.
type PatchGraph struct {
	Patch mesh.PatchID
	Angle int32

	// Cells maps local vertex index -> global cell id (ascending).
	Cells []mesh.CellID

	// InDegree counts the upwind dependencies of each local vertex,
	// including those satisfied from other patches but excluding lagged
	// edges.
	InDegree []int32

	// Local downwind edges, CSR: edges LocalAdj[LocalStart[v]:LocalStart[v+1]].
	LocalStart []int32
	LocalAdj   []LocalEdge

	// Remote downwind edges, CSR.
	RemoteStart []int32
	RemoteAdj   []RemoteEdge

	// LagIn / LagOut list this patch's ends of the lagged feedback edges
	// (both empty on acyclic meshes), in ascending (cell, face) order.
	LagIn  []LagIn
	LagOut []LagOut
}

// NumVertices returns the number of local vertices.
func (g *PatchGraph) NumVertices() int { return len(g.Cells) }

// LocalEdges returns the local downwind edges of vertex v.
func (g *PatchGraph) LocalEdges(v int32) []LocalEdge {
	return g.LocalAdj[g.LocalStart[v]:g.LocalStart[v+1]]
}

// RemoteEdges returns the remote downwind edges of vertex v.
func (g *PatchGraph) RemoteEdges(v int32) []RemoteEdge {
	return g.RemoteAdj[g.RemoteStart[v]:g.RemoteStart[v+1]]
}

// NumEdges returns (local, remote) edge counts.
func (g *PatchGraph) NumEdges() (local, remote int) {
	return len(g.LocalAdj), len(g.RemoteAdj)
}

// BuildPatchGraph constructs G_{p,t} for patch p of decomposition d in
// direction omega. The angle id is recorded but does not influence the
// construction beyond omega.
func BuildPatchGraph(d *mesh.Decomposition, p mesh.PatchID, omega geom.Vec3, angle int32) *PatchGraph {
	return buildPatchGraph(d, p, omega, angle, nil, nil)
}

// BuildPatchGraphLagged constructs G_{p,t} with the given feedback edges
// lagged: they are excluded from in-degrees and adjacency and surface as
// the patch graph's LagIn/LagOut lists instead. A nil/empty lagged set is
// identical to BuildPatchGraph.
func BuildPatchGraphLagged(d *mesh.Decomposition, p mesh.PatchID, omega geom.Vec3, angle int32, lagged []CellEdge) *PatchGraph {
	lagIn, lagOut := laggedSets(lagged)
	return buildPatchGraph(d, p, omega, angle, lagIn, lagOut)
}

func buildPatchGraph(d *mesh.Decomposition, p mesh.PatchID, omega geom.Vec3, angle int32, lagIn, lagOut map[int64]int32) *PatchGraph {
	m := d.Mesh
	cells := d.Cells[p]
	n := len(cells)
	g := &PatchGraph{
		Patch:       p,
		Angle:       angle,
		Cells:       cells,
		InDegree:    make([]int32, n),
		LocalStart:  make([]int32, n+1),
		RemoteStart: make([]int32, n+1),
	}
	// First pass: count edges per vertex.
	for v, c := range cells {
		nf := m.NumFaces(c)
		for i := 0; i < nf; i++ {
			f := m.Face(c, i)
			dot := omega.Dot(f.Normal)
			if f.Neighbor < 0 {
				continue
			}
			if dot < -upwindEps {
				if lagIn != nil {
					if idx, ok := lagIn[lagKey(c, int8(i))]; ok {
						// Lagged incoming face: fed from the old-flux store,
						// no in-degree.
						g.LagIn = append(g.LagIn, LagIn{V: int32(v), Face: int8(i), Idx: idx})
						continue
					}
				}
				// Incoming face with an upwind neighbour (local or remote).
				g.InDegree[v]++
			} else if dot > upwindEps {
				if lagOut != nil {
					if idx, ok := lagOut[lagKey(c, int8(i))]; ok {
						// Lagged outgoing face: written to the new-flux
						// store, not propagated downwind this sweep.
						g.LagOut = append(g.LagOut, LagOut{V: int32(v), SrcFace: int8(i), Idx: idx})
						continue
					}
				}
				if d.CellPatch[f.Neighbor] == p {
					g.LocalStart[v+1]++
				} else {
					g.RemoteStart[v+1]++
				}
			}
		}
	}
	for v := 0; v < n; v++ {
		g.LocalStart[v+1] += g.LocalStart[v]
		g.RemoteStart[v+1] += g.RemoteStart[v]
	}
	g.LocalAdj = make([]LocalEdge, g.LocalStart[n])
	g.RemoteAdj = make([]RemoteEdge, g.RemoteStart[n])
	lpos := make([]int32, n)
	rpos := make([]int32, n)
	copy(lpos, g.LocalStart[:n])
	copy(rpos, g.RemoteStart[:n])
	// Second pass: fill edges. For a downwind face of cell c to neighbour
	// nb, the receiving face index on nb must be found (the face of nb
	// whose neighbour is c).
	for v, c := range cells {
		nf := m.NumFaces(c)
		for i := 0; i < nf; i++ {
			f := m.Face(c, i)
			if f.Neighbor < 0 {
				continue
			}
			dot := omega.Dot(f.Normal)
			if dot <= upwindEps {
				continue
			}
			if lagOut != nil {
				if _, skip := lagOut[lagKey(c, int8(i))]; skip {
					continue
				}
			}
			nb := f.Neighbor
			back := backFace(m, nb, c)
			if d.CellPatch[nb] == p {
				g.LocalAdj[lpos[v]] = LocalEdge{To: d.Local[nb], SrcFace: int8(i), Face: back}
				lpos[v]++
			} else {
				g.RemoteAdj[rpos[v]] = RemoteEdge{
					ToPatch: d.CellPatch[nb],
					To:      d.Local[nb],
					SrcFace: int8(i),
					Face:    back,
				}
				rpos[v]++
			}
		}
	}
	return g
}

// backFace returns the face index of cell nb that borders cell c.
func backFace(m mesh.Mesh, nb, c mesh.CellID) int8 {
	nf := m.NumFaces(nb)
	for i := 0; i < nf; i++ {
		if m.Face(nb, i).Neighbor == c {
			return int8(i)
		}
	}
	panic(fmt.Sprintf("graph: face adjacency not reciprocal between cells %d and %d", nb, c))
}

// BuildAllPatchGraphs builds G_{p,t} for every patch for one direction.
func BuildAllPatchGraphs(d *mesh.Decomposition, omega geom.Vec3, angle int32) []*PatchGraph {
	return BuildAllPatchGraphsLagged(d, omega, angle, nil)
}

// BuildAllPatchGraphsLagged builds G_{p,t} for every patch for one
// direction with the given feedback edges lagged (see
// BuildPatchGraphLagged).
func BuildAllPatchGraphsLagged(d *mesh.Decomposition, omega geom.Vec3, angle int32, lagged []CellEdge) []*PatchGraph {
	lagIn, lagOut := laggedSets(lagged)
	out := make([]*PatchGraph, d.NumPatches())
	for p := range out {
		out[p] = buildPatchGraph(d, mesh.PatchID(p), omega, angle, lagIn, lagOut)
	}
	return out
}

// PatchDAG is the patch-level dependency digraph for one direction: patch q
// is a successor of p when at least one cell of p feeds a cell of q. Edge
// weights count the crossing mesh faces (used as communication volumes).
type PatchDAG struct {
	N int
	// Succ[p] lists downwind patches, parallel with Weight[p].
	Succ   [][]int32
	Weight [][]int32
	// InDeg is the number of upwind patches of each patch.
	InDeg []int32
}

// BuildPatchDAG projects the cell-level dependencies onto patches.
func BuildPatchDAG(d *mesh.Decomposition, omega geom.Vec3) *PatchDAG {
	m := d.Mesh
	n := d.NumPatches()
	type key struct{ from, to int32 }
	cnt := make(map[key]int32)
	nc := m.NumCells()
	for c := 0; c < nc; c++ {
		p := d.CellPatch[c]
		nf := m.NumFaces(mesh.CellID(c))
		for i := 0; i < nf; i++ {
			f := m.Face(mesh.CellID(c), i)
			if f.Neighbor < 0 || d.CellPatch[f.Neighbor] == p {
				continue
			}
			if omega.Dot(f.Normal) > upwindEps {
				cnt[key{int32(p), int32(d.CellPatch[f.Neighbor])}]++
			}
		}
	}
	dag := &PatchDAG{
		N:      n,
		Succ:   make([][]int32, n),
		Weight: make([][]int32, n),
		InDeg:  make([]int32, n),
	}
	// Map order feeds the per-patch successor lists, which sortParallel
	// fully determinizes right below ((from,to) keys are unique, so the
	// sort has no ties). //jsweep:nondeterministic-ok
	for k, w := range cnt {
		dag.Succ[k.from] = append(dag.Succ[k.from], k.to)
		dag.Weight[k.from] = append(dag.Weight[k.from], w)
		dag.InDeg[k.to]++
	}
	// Deterministic order.
	for p := 0; p < n; p++ {
		sortParallel(dag.Succ[p], dag.Weight[p])
	}
	return dag
}

func sortParallel(a, w []int32) {
	// Insertion sort: successor lists are short.
	for i := 1; i < len(a); i++ {
		x, y := a[i], w[i]
		j := i - 1
		for j >= 0 && a[j] > x {
			a[j+1], w[j+1] = a[j], w[j]
			j--
		}
		a[j+1], w[j+1] = x, y
	}
}

// IsAcyclic reports whether the patch DAG has no cycles (Kahn's algorithm).
// Patch-level cycles can exist even when the cell-level graph is acyclic
// (two patches can feed each other through different cell pairs) — that is
// exactly the zig-zag situation of paper Fig. 4 requiring partial
// computation, so a cyclic PatchDAG is not an error for the sweep; this
// predicate exists for analysis and tests.
func (dag *PatchDAG) IsAcyclic() bool {
	indeg := make([]int32, dag.N)
	copy(indeg, dag.InDeg)
	queue := make([]int32, 0, dag.N)
	for p := 0; p < dag.N; p++ {
		if indeg[p] == 0 {
			queue = append(queue, int32(p))
		}
	}
	seen := 0
	for len(queue) > 0 {
		p := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, q := range dag.Succ[p] {
			indeg[q]--
			if indeg[q] == 0 {
				queue = append(queue, q)
			}
		}
	}
	return seen == dag.N
}

// GlobalTopoOrder returns a topological order of all mesh cells for
// direction omega using Kahn's algorithm, or an error when the sweep graph
// is cyclic (callers that can lag flux on feedback edges should use
// GlobalTopoOrderLagged instead, which never fails). This is the serial
// reference schedule; on acyclic meshes the order is identical to the
// lagged variant's.
func GlobalTopoOrder(m mesh.Mesh, omega geom.Vec3) ([]mesh.CellID, error) {
	order, lagged := GlobalTopoOrderLagged(m, omega)
	if len(lagged) > 0 {
		return nil, fmt.Errorf("graph: sweep dependencies for Ω=%v contain a cycle (%d feedback edges would need lagging)", omega, len(lagged))
	}
	return order, nil
}

// CellLevels returns the BFS wavefront level of every cell for direction
// omega (level 0 = cells with no upwind dependency). Errors on cycles;
// cycle-tolerant callers should use CellLevelsLagged.
func CellLevels(m mesh.Mesh, omega geom.Vec3) ([]int32, error) {
	level, lagged := CellLevelsLagged(m, omega)
	if len(lagged) > 0 {
		return nil, fmt.Errorf("graph: cycle detected computing cell levels for Ω=%v (%d feedback edges would need lagging)", omega, len(lagged))
	}
	return level, nil
}
