package meshgen

import (
	"math"
	"testing"

	"jsweep/internal/graph"
	"jsweep/internal/quadrature"
)

func TestTwistedRingValidation(t *testing.T) {
	cases := []struct {
		name            string
		nSeg            int
		r0, r1, h, tilt float64
	}{
		{"too few segments", 2, 1, 2, 0.2, 1.0},
		{"bad radii", 8, 2, 1, 0.2, 1.0},
		{"bad height", 8, 1, 2, 0, 1.0},
		{"bad tilt", 8, 1, 2, 0.2, -0.1},
		{"tilt past vertical", 8, 1, 2, 0.2, math.Pi / 2},
		{"asin domain", 8, 0.1, 2, 2.0, 1.5},
		{"planes cross", 32, 1, 2, 0.2, math.Pi / 3},
	}
	for _, tc := range cases {
		if _, err := TwistedRing(tc.nSeg, tc.r0, tc.r1, tc.h, tc.tilt); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestTwistedRingUntwistedIsAcyclic(t *testing.T) {
	m, err := TwistedRing(12, 1, 2, 0.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	quad, err := quadrature.New(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range quad.Directions {
		if lagged := graph.FeedbackEdges(m, d.Omega); len(lagged) != 0 {
			t.Errorf("Ω=%v: untwisted ring has %d feedback edges", d.Omega, len(lagged))
		}
	}
}

func TestCyclicRingCellCycles(t *testing.T) {
	m, err := CyclicRing(12)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumCells() != 36 {
		t.Fatalf("cells = %d, want 36", m.NumCells())
	}
	if v := m.TotalVolume(); !(v > 0) {
		t.Fatalf("total volume %g", v)
	}
	quad, err := quadrature.New(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range quad.Directions {
		comp, n := graph.CellSCC(m, d.Omega)
		nt, maxSize := graph.NontrivialSCCs(comp, n)
		if nt < 1 || maxSize <= 1 {
			t.Errorf("Ω=%v: no nontrivial cell SCC (comps=%d maxSize=%d)", d.Omega, n, maxSize)
		}
	}
}

func TestCyclicStackPatchCycles(t *testing.T) {
	const rings = 3
	m, err := CyclicStack(12, rings)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumCells() != 3*12*rings {
		t.Fatalf("cells = %d, want %d", m.NumCells(), 3*12*rings)
	}
	d, err := AzimuthalBlocks(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	quad, err := quadrature.New(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range quad.Directions {
		// Each disjoint ring carries its own cell-level SCC...
		comp, n := graph.CellSCC(m, dir.Omega)
		nt, _ := graph.NontrivialSCCs(comp, n)
		if nt < rings {
			t.Errorf("Ω=%v: %d nontrivial cell SCCs, want >= %d", dir.Omega, nt, rings)
		}
		// ...and the azimuthal decomposition sees a patch-level SCC.
		dag := graph.BuildPatchDAG(d, dir.Omega)
		pcomp, pn := dag.SCC()
		pnt, pmax := graph.NontrivialSCCs(pcomp, pn)
		if pnt < 1 || pmax <= 1 {
			t.Errorf("Ω=%v: no nontrivial patch SCC", dir.Omega)
		}
	}
}

func TestCyclicStackWithCells(t *testing.T) {
	for _, target := range []int{10, 100, 500} {
		m, err := CyclicStackWithCells(target)
		if err != nil {
			t.Fatal(err)
		}
		if m.NumCells() < target {
			t.Errorf("target %d: got %d cells", target, m.NumCells())
		}
	}
}

func TestAzimuthalBlocks(t *testing.T) {
	m, err := CyclicRing(12)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AzimuthalBlocks(m, 0); err == nil {
		t.Error("0 patches should fail")
	}
	if _, err := AzimuthalBlocks(m, m.NumCells()+1); err == nil {
		t.Error("more patches than cells should fail")
	}
	d, err := AzimuthalBlocks(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumPatches() != 4 {
		t.Fatalf("patches = %d", d.NumPatches())
	}
	// Contiguous index blocks of near-equal size.
	for p := 1; p < len(d.Cells); p++ {
		if d.Cells[p-1][len(d.Cells[p-1])-1] >= d.Cells[p][0] {
			t.Fatal("blocks not contiguous")
		}
	}
	if b := d.Balance(); b > 1.1 {
		t.Errorf("balance %g", b)
	}
}
