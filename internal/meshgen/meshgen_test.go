package meshgen

import (
	"math"
	"testing"

	"jsweep/internal/geom"
	"jsweep/internal/mesh"
)

func TestBoxVolume(t *testing.T) {
	m, err := Box(4, 3, 2, geom.Vec3{}, geom.Vec3{X: 4, Y: 3, Z: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumCells() != 4*3*2*6 {
		t.Fatalf("cells = %d, want %d", m.NumCells(), 4*3*2*6)
	}
	// Tets must exactly tile the box volume.
	if v := m.TotalVolume(); math.Abs(v-24) > 1e-9 {
		t.Errorf("total volume = %v, want 24", v)
	}
}

// Conformity: in a watertight tet tiling of a convex body, every interior
// face is shared by exactly two tets, and the per-cell face-area-weighted
// normals sum to ~0 (closed surface).
func TestBoxConforming(t *testing.T) {
	m, err := Box(3, 3, 3, geom.Vec3{}, geom.Vec3{X: 1, Y: 1, Z: 1})
	if err != nil {
		t.Fatal(err)
	}
	interior, boundary := 0, 0
	for c := 0; c < m.NumCells(); c++ {
		var sum geom.Vec3
		for f := 0; f < 4; f++ {
			face := m.Face(mesh.CellID(c), f)
			sum = sum.Add(face.Normal.Scale(face.Area))
			if face.Neighbor >= 0 {
				interior++
			} else {
				boundary++
			}
		}
		if sum.Norm() > 1e-9 {
			t.Fatalf("cell %d: closed-surface normal sum = %v", c, sum.Norm())
		}
	}
	// Boundary faces of the cube: each of the 6 sides is 3x3 squares × 2
	// triangles = 18, total 108.
	if boundary != 108 {
		t.Errorf("boundary faces = %d, want 108", boundary)
	}
	if interior%2 != 0 {
		t.Errorf("interior face refs = %d, must be even", interior)
	}
}

func TestBoxFaceReciprocity(t *testing.T) {
	m, err := Box(2, 2, 2, geom.Vec3{}, geom.Vec3{X: 1, Y: 1, Z: 1})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < m.NumCells(); c++ {
		for f := 0; f < 4; f++ {
			face := m.Face(mesh.CellID(c), f)
			if face.Neighbor < 0 {
				continue
			}
			back := false
			for g := 0; g < 4; g++ {
				if m.Face(face.Neighbor, g).Neighbor == mesh.CellID(c) {
					back = true
				}
			}
			if !back {
				t.Fatalf("cell %d face %d -> %d not reciprocated", c, f, face.Neighbor)
			}
		}
	}
}

func TestBallVolumeApproximatesSphere(t *testing.T) {
	const r = 1.0
	m, err := Ball(16, r)
	if err != nil {
		t.Fatal(err)
	}
	want := 4 * math.Pi / 3 * r * r * r
	got := m.TotalVolume()
	// Voxelized ball: volume within ~15% at n=16.
	if math.Abs(got-want)/want > 0.15 {
		t.Errorf("ball volume = %v, want ≈ %v", got, want)
	}
}

func TestBallCellsInsideSphere(t *testing.T) {
	const r = 2.0
	m, err := Ball(10, r)
	if err != nil {
		t.Fatal(err)
	}
	// Every tet centroid must lie within the sphere radius plus one lattice
	// cell diagonal.
	slack := 2 * r / 10 * math.Sqrt(3)
	for c := 0; c < m.NumCells(); c++ {
		if d := m.CellCenter(mesh.CellID(c)).Norm(); d > r+slack {
			t.Fatalf("cell %d centroid at %v > r+slack", c, d)
		}
	}
}

func TestBallWithCells(t *testing.T) {
	m, err := BallWithCells(5000, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumCells() < 5000 {
		t.Errorf("cells = %d, want >= 5000", m.NumCells())
	}
	if m.NumCells() > 20000 {
		t.Errorf("cells = %d, way above target 5000", m.NumCells())
	}
}

func TestReactorMaterials(t *testing.T) {
	m, err := Reactor(16, 1.0, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for c := 0; c < m.NumCells(); c++ {
		seen[m.Material(mesh.CellID(c))] = true
	}
	for _, zone := range []int{ReactorCore, ReactorRing, ReactorVessel, ReactorModerator} {
		if !seen[zone] {
			t.Errorf("reactor mesh missing material zone %d", zone)
		}
	}
}

func TestReactorShape(t *testing.T) {
	const r, h = 1.0, 2.0
	m, err := Reactor(12, r, h)
	if err != nil {
		t.Fatal(err)
	}
	slack := 2 * r / 12 * math.Sqrt(2)
	for c := 0; c < m.NumCells(); c++ {
		ctr := m.CellCenter(mesh.CellID(c))
		if math.Hypot(ctr.X, ctr.Y) > r+slack {
			t.Fatalf("cell %d outside cylinder radius", c)
		}
		if ctr.Z < -1e-9 || ctr.Z > h+1e-9 {
			t.Fatalf("cell %d outside cylinder height", c)
		}
	}
}

func TestReactorWithCells(t *testing.T) {
	m, err := ReactorWithCells(3000, 1.0, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumCells() < 3000 {
		t.Errorf("cells = %d, want >= 3000", m.NumCells())
	}
}

func TestGeneratorsRejectBadInput(t *testing.T) {
	if _, err := Box(0, 1, 1, geom.Vec3{}, geom.Vec3{X: 1, Y: 1, Z: 1}); err == nil {
		t.Error("Box with zero dim should fail")
	}
	if _, err := Ball(1, 1); err == nil {
		t.Error("Ball with n=1 should fail")
	}
	if _, err := Reactor(2, 1, 1); err == nil {
		t.Error("Reactor with n=2 should fail")
	}
}
