// Package meshgen generates the synthetic meshes used throughout the
// evaluation: tetrahedralized boxes, balls ("sphere constructed with
// tetrahedrons", paper Fig. 11c) and a reactor-core-like cylinder with
// annular material rings (paper Fig. 11b). Real JSNT meshes are
// proprietary; these generators produce meshes with the same topological
// character (irregular tet adjacency, curved boundaries), which is what
// drives sweep behaviour.
package meshgen

import (
	"fmt"
	"math"

	"jsweep/internal/geom"
	"jsweep/internal/mesh"
)

// kuhnTets lists the 6 tetrahedra of the Kuhn (Freudenthal) subdivision of
// a unit cube with vertices indexed by bitmask b = x | y<<1 | z<<2. Each tet
// walks from corner 0 to corner 7 adding one axis at a time; this
// subdivision is conforming across neighbouring cubes because shared faces
// get the same diagonal from both sides.
var kuhnTets = [6][4]int{
	{0, 1, 3, 7}, // +x +y +z
	{0, 1, 5, 7}, // +x +z +y
	{0, 2, 3, 7}, // +y +x +z
	{0, 2, 6, 7}, // +y +z +x
	{0, 4, 5, 7}, // +z +x +y
	{0, 4, 6, 7}, // +z +y +x
}

// boxTetLattice produces a conforming tet mesh over the cells of an
// nx×ny×nz lattice with the given cell predicate (nil keeps all). Vertex
// sharing is exact (vertices indexed on the lattice nodes).
func boxTetLattice(nx, ny, nz int, origin geom.Vec3, dx, dy, dz float64, keep func(i, j, k int) bool) ([]geom.Vec3, [][4]int32) {
	nvx, nvy := nx+1, ny+1
	vid := func(i, j, k int) int32 { return int32(i + nvx*(j+nvy*k)) }
	verts := make([]geom.Vec3, (nx+1)*(ny+1)*(nz+1))
	for k := 0; k <= nz; k++ {
		for j := 0; j <= ny; j++ {
			for i := 0; i <= nx; i++ {
				verts[vid(i, j, k)] = geom.Vec3{
					X: origin.X + float64(i)*dx,
					Y: origin.Y + float64(j)*dy,
					Z: origin.Z + float64(k)*dz,
				}
			}
		}
	}
	var tets [][4]int32
	corner := func(i, j, k, b int) int32 {
		return vid(i+(b&1), j+((b>>1)&1), k+((b>>2)&1))
	}
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				if keep != nil && !keep(i, j, k) {
					continue
				}
				for _, t := range kuhnTets {
					tets = append(tets, [4]int32{
						corner(i, j, k, t[0]),
						corner(i, j, k, t[1]),
						corner(i, j, k, t[2]),
						corner(i, j, k, t[3]),
					})
				}
			}
		}
	}
	return compactVerts(verts, tets)
}

// compactVerts drops unreferenced vertices and renumbers.
func compactVerts(verts []geom.Vec3, tets [][4]int32) ([]geom.Vec3, [][4]int32) {
	remap := make([]int32, len(verts))
	for i := range remap {
		remap[i] = -1
	}
	var out []geom.Vec3
	for ti := range tets {
		for vi := 0; vi < 4; vi++ {
			v := tets[ti][vi]
			if remap[v] < 0 {
				remap[v] = int32(len(out))
				out = append(out, verts[v])
			}
			tets[ti][vi] = remap[v]
		}
	}
	return out, tets
}

// Box returns a conforming tetrahedral mesh of the box [origin,
// origin+extent] with nx×ny×nz lattice cells (6 tets per cell).
func Box(nx, ny, nz int, origin, extent geom.Vec3) (*mesh.Unstructured, error) {
	if nx < 1 || ny < 1 || nz < 1 {
		return nil, fmt.Errorf("meshgen: box dims must be >= 1 (got %d,%d,%d)", nx, ny, nz)
	}
	verts, tets := boxTetLattice(nx, ny, nz, origin, extent.X/float64(nx), extent.Y/float64(ny), extent.Z/float64(nz), nil)
	return mesh.NewUnstructuredFromTets(verts, tets, nil)
}

// Ball returns a tetrahedral mesh approximating a ball of the given radius
// centred at the origin. n is the lattice resolution across the diameter;
// a lattice cell is kept when its centre lies inside the sphere. The result
// has ≈ 6·(π/6)·n³ ≈ π/1·n³... roughly 3.1·n³ tets.
func Ball(n int, radius float64) (*mesh.Unstructured, error) {
	if n < 2 {
		return nil, fmt.Errorf("meshgen: ball resolution must be >= 2 (got %d)", n)
	}
	d := 2 * radius / float64(n)
	origin := geom.Vec3{X: -radius, Y: -radius, Z: -radius}
	keep := func(i, j, k int) bool {
		c := geom.Vec3{
			X: origin.X + (float64(i)+0.5)*d,
			Y: origin.Y + (float64(j)+0.5)*d,
			Z: origin.Z + (float64(k)+0.5)*d,
		}
		return c.Norm() <= radius
	}
	verts, tets := boxTetLattice(n, n, n, origin, d, d, d, keep)
	if len(tets) == 0 {
		return nil, fmt.Errorf("meshgen: ball of resolution %d produced no cells", n)
	}
	return mesh.NewUnstructuredFromTets(verts, tets, nil)
}

// BallWithCells picks the lattice resolution so the ball has at least
// targetCells tetrahedra (≈ within one lattice step above it).
func BallWithCells(targetCells int, radius float64) (*mesh.Unstructured, error) {
	if targetCells < 24 {
		targetCells = 24
	}
	// cells ≈ 6 * (π/6) n³ = π n³  ⇒  n ≈ (target/π)^(1/3)
	n := int(math.Ceil(math.Cbrt(float64(targetCells) / math.Pi)))
	if n < 2 {
		n = 2
	}
	for {
		m, err := Ball(n, radius)
		if err != nil {
			return nil, err
		}
		if m.NumCells() >= targetCells {
			return m, nil
		}
		n++
	}
}

// ReactorMaterial zones produced by Reactor.
const (
	ReactorCore      = 0 // inner fuel region
	ReactorRing      = 1 // annular absorber/reflector ring
	ReactorVessel    = 2 // outer vessel
	ReactorModerator = 3 // lattice moderator channels inside the core
)

// Reactor returns a reactor-core-like cylinder: radius R, height H, with an
// inner fuel core (radius 0.55R) carrying a lattice of moderator channels,
// an absorber ring (0.55R–0.8R), and an outer vessel. n is the lattice
// resolution across the diameter.
func Reactor(n int, radius, height float64) (*mesh.Unstructured, error) {
	if n < 4 {
		return nil, fmt.Errorf("meshgen: reactor resolution must be >= 4 (got %d)", n)
	}
	d := 2 * radius / float64(n)
	nz := int(math.Max(2, math.Round(height/d)))
	dz := height / float64(nz)
	origin := geom.Vec3{X: -radius, Y: -radius, Z: 0}
	keep := func(i, j, k int) bool {
		cx := origin.X + (float64(i)+0.5)*d
		cy := origin.Y + (float64(j)+0.5)*d
		return math.Hypot(cx, cy) <= radius
	}
	verts, tets := boxTetLattice(n, n, nz, origin, d, d, dz, keep)
	if len(tets) == 0 {
		return nil, fmt.Errorf("meshgen: reactor of resolution %d produced no cells", n)
	}
	m, err := mesh.NewUnstructuredFromTets(verts, tets, nil)
	if err != nil {
		return nil, err
	}
	pitch := radius / 4 // assembly lattice pitch inside the core
	m.SetMaterialFunc(func(c geom.Vec3) int {
		r := math.Hypot(c.X, c.Y)
		switch {
		case r <= 0.55*radius:
			// Checkerboard assembly lattice: moderator channels between
			// fuel assemblies.
			ix := int(math.Floor(c.X/pitch + 64))
			iy := int(math.Floor(c.Y/pitch + 64))
			if (ix+iy)%2 == 0 {
				return ReactorCore
			}
			return ReactorModerator
		case r <= 0.8*radius:
			return ReactorRing
		default:
			return ReactorVessel
		}
	})
	return m, nil
}

// ReactorWithCells picks the resolution so the reactor mesh has at least
// targetCells tetrahedra.
func ReactorWithCells(targetCells int, radius, height float64) (*mesh.Unstructured, error) {
	if targetCells < 24 {
		targetCells = 24
	}
	// cells ≈ 6 · (π/4) n² · nz, nz ≈ n·height/(2R)
	n := int(math.Ceil(math.Cbrt(float64(targetCells) / (6 * math.Pi / 4) * (2 * radius / height))))
	if n < 4 {
		n = 4
	}
	for {
		m, err := Reactor(n, radius, height)
		if err != nil {
			return nil, err
		}
		if m.NumCells() >= targetCells {
			return m, nil
		}
		n++
	}
}
