package meshgen

import (
	"fmt"
	"math"

	"jsweep/internal/geom"
	"jsweep/internal/mesh"
)

// Twisted-ring generator: tetrahedral meshes whose sweep dependency graphs
// contain genuine cell-level cycles — the torture case for cycle-tolerant
// sweeps (Vermaak, Ragusa & Morel, arXiv:2004.01824, construct the
// analogous spiral meshes in 2D).
//
// The construction is an annular ring of nSeg twisted triangular-prism
// wedges around the z-axis. The inter-wedge interface at azimuth
// φ_j = 2πj/nSeg is a triangle lying on the "Penrose staircase" plane P_j:
// the radial-vertical plane rotated about the radial direction by the tilt
// angle, whose normal is
//
//	n_j = cos(tilt)·θ̂_j + sin(tilt)·ẑ.
//
// For a direction Ω, interface j is downwind (Ω·n_j > 0) whenever
// sin(tilt)·Ω_z > -cos(tilt)·(Ω·θ̂_j); with tan(tilt) > |Ω_h|/|Ω_z| this
// holds at every azimuth, so all nSeg interfaces pass flux the same way
// around the ring and close a dependency cycle (the reverse ring when
// Ω_z < 0). Each wedge splits into 3 tets whose two internal faces share
// an edge with an interface triangle and therefore stay nearly parallel to
// the tilted interface planes, which is what lets the cycle survive at the
// tet level. Level-symmetric quadrature directions have |Ω_h|/|Ω_z| ≤ √2
// for S2, so any tilt above atan(√2) ≈ 54.74° makes every S2 direction
// cyclic (and every steeper direction of higher orders).

// TwistedRing returns a conforming tetrahedral ring of nSeg twisted
// triangular-prism wedges (3 tets each) between radii 0 < r0 < r1 with
// height h, interfaces tilted by tilt radians. The triangular
// cross-section has its base on z = 0 spanning [r0, r1] and its apex at
// mid-radius, z = h. Cells are emitted azimuth-major: wedge j owns cells
// 3j..3j+2, so contiguous cell-index blocks are azimuthal arcs.
func TwistedRing(nSeg int, r0, r1, h, tilt float64) (*mesh.Unstructured, error) {
	verts, tets, err := twistedRingGeometry(nSeg, r0, r1, h, tilt, 0)
	if err != nil {
		return nil, err
	}
	return mesh.NewUnstructuredFromTets(verts, tets, nil)
}

// twistedRingGeometry emits one ring's vertices and tets, with cell
// connectivity referencing vertex ids offset by vertBase (for stacking
// disjoint rings into one mesh).
func twistedRingGeometry(nSeg int, r0, r1, h, tilt, zOff float64) ([]geom.Vec3, [][4]int32, error) {
	if nSeg < 3 {
		return nil, nil, fmt.Errorf("meshgen: twisted ring needs >= 3 segments (got %d)", nSeg)
	}
	if !(0 < r0 && r0 < r1) || h <= 0 {
		return nil, nil, fmt.Errorf("meshgen: twisted ring needs 0 < r0 < r1 and h > 0 (got r0=%g r1=%g h=%g)", r0, r1, h)
	}
	if tilt < 0 || tilt >= math.Pi/2 {
		return nil, nil, fmt.Errorf("meshgen: tilt must be in [0, π/2) (got %g)", tilt)
	}
	// The interface planes shear azimuthally by ±asin(tan(tilt)·h/(2r)) at
	// the z extremes; consecutive planes must not cross inside the ring.
	arg := math.Tan(tilt) * h / (2 * r0)
	if arg >= 1 {
		return nil, nil, fmt.Errorf("meshgen: tilt too steep for the ring height (tan(tilt)·h/(2·r0) = %.3g >= 1); reduce h or tilt", arg)
	}
	if 2*math.Asin(arg) >= 2*math.Pi/float64(nSeg) {
		return nil, nil, fmt.Errorf("meshgen: interface planes cross (shear %.3g rad >= segment width %.3g rad); reduce h, tilt or nSeg", 2*math.Asin(arg), 2*math.Pi/float64(nSeg))
	}

	// A point of interface j at radius r and height z sits at azimuth
	// φ_j + asin(-tan(tilt)·(z-h/2)/r) — exactly on the tilted plane P_j
	// for every (r, z), keeping the interfaces planar.
	pt := func(j int, r, z float64) geom.Vec3 {
		base := 2 * math.Pi * float64(j) / float64(nSeg)
		phi := base + math.Asin(-math.Tan(tilt)*(z-h/2)/r)
		return geom.Vec3{X: r * math.Cos(phi), Y: r * math.Sin(phi), Z: z + zOff}
	}
	rm := (r0 + r1) / 2
	verts := make([]geom.Vec3, 0, 3*nSeg)
	vid := func(j, k int) int32 { return int32((((j % nSeg) + nSeg) % nSeg * 3) + k) }
	for j := 0; j < nSeg; j++ {
		verts = append(verts, pt(j, r0, 0), pt(j, r1, 0), pt(j, rm, h))
	}
	// Wedge j spans interfaces T_j = {P,Q,R} and T_{j+1} = {P',Q',R'},
	// split into 3 tets along the "staircase" diagonals; consecutive
	// wedges share the whole interface triangle, so the ring conforms by
	// construction (triangular prism splits cut only the quad faces, which
	// are all on the domain boundary here).
	tets := make([][4]int32, 0, 3*nSeg)
	for j := 0; j < nSeg; j++ {
		p, q, r := vid(j, 0), vid(j, 1), vid(j, 2)
		p1, q1, r1v := vid(j+1, 0), vid(j+1, 1), vid(j+1, 2)
		tets = append(tets,
			[4]int32{p, q, r, p1},
			[4]int32{q, r, p1, q1},
			[4]int32{r, p1, q1, r1v},
		)
	}
	return verts, tets, nil
}

// cyclicRingTilt is the default interface tilt: comfortably above the
// atan(√2) ≈ 54.74° threshold for S2 level-symmetric directions.
const cyclicRingTilt = math.Pi / 3

// cyclicRingSegs is the default azimuthal segment count of the stacked
// generator (the plane-crossing constraint caps it at 18 given the default
// height and tilt).
const cyclicRingSegs = 16

// CyclicRing returns a twisted ring with defaults tuned so the sweep graph
// of every S2 level-symmetric quadrature direction contains cell-level
// cycles: nSeg segments, radii 1..2, height 0.2, 60° tilt — 3·nSeg tets.
func CyclicRing(nSeg int) (*mesh.Unstructured, error) {
	return TwistedRing(nSeg, 1.0, 2.0, 0.2, cyclicRingTilt)
}

// CyclicStack returns `rings` twisted rings stacked along z as one
// (disconnected) mesh — the decomposed-mesh scenario where every connected
// component carries its own dependency cycles. 3·nSeg·rings tets, emitted
// azimuth-major (all rings' wedges at segment j before segment j+1), so
// AzimuthalBlocks cuts every ring's cycle across the patch boundaries.
func CyclicStack(nSeg, rings int) (*mesh.Unstructured, error) {
	if rings < 1 {
		return nil, fmt.Errorf("meshgen: need >= 1 ring (got %d)", rings)
	}
	const h, gap = 0.2, 0.1
	var verts []geom.Vec3
	ringTets := make([][][4]int32, rings)
	for k := 0; k < rings; k++ {
		rv, rt, err := twistedRingGeometry(nSeg, 1.0, 2.0, h, cyclicRingTilt, float64(k)*(h+gap))
		if err != nil {
			return nil, err
		}
		base := int32(len(verts))
		verts = append(verts, rv...)
		for i := range rt {
			rt[i] = [4]int32{rt[i][0] + base, rt[i][1] + base, rt[i][2] + base, rt[i][3] + base}
		}
		ringTets[k] = rt
	}
	tets := make([][4]int32, 0, 3*nSeg*rings)
	for j := 0; j < nSeg; j++ {
		for k := 0; k < rings; k++ {
			tets = append(tets, ringTets[k][3*j:3*j+3]...)
		}
	}
	return mesh.NewUnstructuredFromTets(verts, tets, nil)
}

// CyclicStackWithCells returns a cyclic stack with at least targetCells
// tetrahedra (16-segment rings, one ring minimum).
func CyclicStackWithCells(targetCells int) (*mesh.Unstructured, error) {
	perRing := 3 * cyclicRingSegs
	rings := (targetCells + perRing - 1) / perRing
	if rings < 1 {
		rings = 1
	}
	return CyclicStack(cyclicRingSegs, rings)
}

// AzimuthalBlocks decomposes a mesh whose cells are emitted azimuth-major
// (TwistedRing, CyclicRing, CyclicStack) into numPatches contiguous
// cell-index blocks — azimuthal arcs of the ring(s). On a cyclic ring with
// >= 2 patches the ring cycle crosses every patch boundary, so the patch
// digraph is cyclic too.
func AzimuthalBlocks(m mesh.Mesh, numPatches int) (*mesh.Decomposition, error) {
	nc := m.NumCells()
	if numPatches < 1 || numPatches > nc {
		return nil, fmt.Errorf("meshgen: %d patches for %d cells", numPatches, nc)
	}
	cellPatch := make([]mesh.PatchID, nc)
	for c := 0; c < nc; c++ {
		cellPatch[c] = mesh.PatchID(c * numPatches / nc)
	}
	return mesh.NewDecomposition(m, cellPatch, numPatches)
}
