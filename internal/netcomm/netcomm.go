// Package netcomm is the TCP backend of the comm transport contract: one
// OS process per rank, length-prefixed versioned frames (wire.go) over
// one persistent connection per peer pair. Ranks find each other through
// a rendezvous service (rendezvous.go), establish a full mesh, and then
// exchange comm messages with the same semantics the in-memory backend
// provides — ordered pairwise delivery per lane, non-blocking sends,
// unbounded inboxes — so the patch-centric runtime runs across OS
// process boundaries unchanged.
//
// Failure semantics are reconnect-free and fail-fast: the first
// connection error poisons the transport, subsequent sends return it,
// and blocked receivers drain then surface it. Close is clean: pending
// writes drain and flush, the write side half-closes, and readers run to
// the peer's EOF so no in-flight frame is lost at shutdown.
package netcomm

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"jsweep/internal/comm"
)

// WireStats counts the frames and bytes this transport put on and took
// off the wire (headers included). Payload-level counters live on the
// endpoint (comm.Endpoint.Counters), so the difference is the framing
// overhead.
type WireStats struct {
	FramesSent, FramesReceived int64
	BytesOut, BytesIn          int64
}

// Transport is a single rank's attachment to a TCP cluster.
type Transport struct {
	cluster string
	rank    int
	world   int

	ep    *Endpoint
	peers []*peer // indexed by rank; nil at the local rank

	closeTimeout time.Duration

	stateMu sync.Mutex
	closed  bool
	failure error
	closing sync.Once

	readWG sync.WaitGroup

	framesSent atomic.Int64
	framesRecv atomic.Int64
	wireOut    atomic.Int64
	wireIn     atomic.Int64
}

// peer is one remote rank's persistent connection with its write queue.
type peer struct {
	rank int
	conn net.Conn

	mu      sync.Mutex
	cond    *sync.Cond
	outq    [][]byte
	closing bool
	wdone   chan struct{}
}

// Cluster returns the launch-scoped cluster id this transport joined.
func (t *Transport) Cluster() string { return t.cluster }

// NumRanks returns the cluster's world size.
func (t *Transport) NumRanks() int { return t.world }

// Rank returns the locally hosted rank.
func (t *Transport) Rank() int { return t.rank }

// LocalRanks returns the single locally hosted rank.
func (t *Transport) LocalRanks() []int { return []int{t.rank} }

// Endpoint returns the local rank's endpoint, nil for any other rank.
func (t *Transport) Endpoint(rank int) comm.Endpoint {
	if rank != t.rank {
		return nil
	}
	return t.ep
}

// WireStats returns the frame/byte totals this transport has put on and
// taken off the wire.
func (t *Transport) WireStats() WireStats {
	return WireStats{
		FramesSent:     t.framesSent.Load(),
		FramesReceived: t.framesRecv.Load(),
		BytesOut:       t.wireOut.Load(),
		BytesIn:        t.wireIn.Load(),
	}
}

// aliveErr returns the transport's terminal state: its first failure, or
// ErrClosed after Close, or nil while healthy.
func (t *Transport) aliveErr() error {
	t.stateMu.Lock()
	defer t.stateMu.Unlock()
	if t.failure != nil {
		return t.failure
	}
	if t.closed {
		return comm.ErrClosed
	}
	return nil
}

// fail records the first terminal failure and tears the connections down
// so every blocked reader, writer and receiver unblocks with the error.
func (t *Transport) fail(err error) {
	t.stateMu.Lock()
	if t.failure == nil && !t.closed {
		t.failure = fmt.Errorf("netcomm: rank %d transport failed: %w", t.rank, err)
	}
	t.stateMu.Unlock()
	for _, p := range t.peers {
		if p != nil {
			p.conn.Close()
			p.mu.Lock()
			p.closing = true
			p.cond.Broadcast()
			p.mu.Unlock()
		}
	}
	t.ep.wake()
}

// Abort tears the transport down without draining: connections are
// force-closed mid-stream (no Bye), so peers observe a failed — not
// cleanly closed — transport and their blocked receivers unblock with
// an error. This is the mandatory exit for a rank abandoning a solve
// early (error paths): a clean Close would leave peers waiting forever
// in a collective for a rank that quietly left.
func (t *Transport) Abort() {
	t.fail(fmt.Errorf("aborted"))
}

// Close shuts the transport down cleanly: sends are refused from now on,
// each peer's pending writes drain and flush before the write side
// half-closes, and the readers run to their peers' EOF so no in-flight
// inbound frame is lost. Close is collective, like MPI_Finalize: every
// rank is expected to close at roughly the same time, since the local
// reader can only finish once the peer half-closes too. A peer that
// never closes (hung or crashed) is bounded by the close timeout, after
// which its connection is forced shut. Idempotent.
func (t *Transport) Close() error {
	t.closing.Do(func() {
		t.stateMu.Lock()
		t.closed = true
		t.stateMu.Unlock()
		for _, p := range t.peers {
			if p != nil {
				p.mu.Lock()
				p.closing = true
				p.cond.Broadcast()
				p.mu.Unlock()
			}
		}
		done := make(chan struct{})
		go func() {
			for _, p := range t.peers {
				if p != nil {
					<-p.wdone
				}
			}
			t.readWG.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(t.closeTimeout):
			// A peer is not draining (hung or crashed): force the
			// connections shut; our own outbound frames were already
			// flushed by the writers that did finish.
			for _, p := range t.peers {
				if p != nil {
					p.conn.Close()
				}
			}
			<-done
		}
		for _, p := range t.peers {
			if p != nil {
				p.conn.Close()
			}
		}
		t.ep.wake()
	})
	return nil
}

// writeLoop drains one peer's outbound queue, coalescing consecutive
// frames into one buffered write and flushing only when the queue runs
// dry — the transport-level counterpart of the runtime's StreamBatcher
// (which reduces frame count; this reduces syscalls per frame).
func (t *Transport) writeLoop(p *peer) {
	defer close(p.wdone)
	bw := bufio.NewWriterSize(p.conn, 64<<10)
	for {
		p.mu.Lock()
		for len(p.outq) == 0 && !p.closing {
			p.cond.Wait()
		}
		batch := p.outq
		p.outq = nil
		closing := p.closing
		p.mu.Unlock()
		for _, f := range batch {
			if _, err := bw.Write(f); err != nil {
				t.fail(fmt.Errorf("write to rank %d: %w", p.rank, err))
				return
			}
			t.framesSent.Add(1)
			t.wireOut.Add(int64(len(f)))
		}
		p.mu.Lock()
		drained := len(p.outq) == 0
		p.mu.Unlock()
		if drained {
			if closing {
				// In-flight drain complete: announce the clean shutdown
				// (an EOF without Bye reads as a crash on the other side)
				// and half-close so the peer's reader sees EOF exactly at
				// the last frame boundary.
				if _, err := bw.Write(AppendHeader(nil, KindBye, 0)); err == nil {
					bw.Flush()
				}
				if tc, ok := p.conn.(*net.TCPConn); ok {
					tc.CloseWrite()
				}
				return
			}
			if err := bw.Flush(); err != nil {
				t.fail(fmt.Errorf("flush to rank %d: %w", p.rank, err))
				return
			}
		}
	}
}

// readLoop receives one peer's frames into the local inbox until the
// peer half-closes (clean EOF at a frame boundary) or the connection
// fails.
func (t *Transport) readLoop(p *peer) {
	defer t.readWG.Done()
	br := bufio.NewReaderSize(p.conn, 64<<10)
	hdr := make([]byte, HeaderSize)
	sawBye := false
	for {
		if _, err := io.ReadFull(br, hdr); err != nil {
			if err == io.EOF && sawBye {
				return // peer closed cleanly (Bye then EOF at a frame boundary)
			}
			if t.aliveErr() == nil {
				if err == io.EOF {
					// EOF without a Bye: the peer vanished mid-stream
					// (crash, kill, Abort). Waiting ranks must unblock
					// with an error, not idle forever.
					err = fmt.Errorf("connection closed without shutdown handshake")
				}
				t.fail(fmt.Errorf("read from rank %d: %w", p.rank, err))
			}
			return
		}
		kind, n, err := ParseHeader(hdr)
		if err != nil {
			t.fail(fmt.Errorf("frame from rank %d: %w", p.rank, err))
			return
		}
		if kind == KindBye {
			if n != 0 {
				t.fail(fmt.Errorf("bye frame from rank %d carries %d payload bytes", p.rank, n))
				return
			}
			sawBye = true
			continue
		}
		if kind != KindData && kind != KindOOB {
			t.fail(fmt.Errorf("unexpected %s frame from rank %d on established connection", kindName(kind), p.rank))
			return
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			t.fail(fmt.Errorf("frame payload from rank %d: %w", p.rank, err))
			return
		}
		t.framesRecv.Add(1)
		t.wireIn.Add(int64(HeaderSize + n))
		t.ep.deliver(p.rank, payload, kind == KindOOB)
	}
}

// Endpoint is the local rank's attachment: the two-lane inbox plus the
// send paths into the per-peer write queues.
type Endpoint struct {
	t *Transport

	// mu guards both queues; oobCond serves RecvOOB (the only blocking
	// receive — the data lane is TryRecv/Notify only, so it needs no
	// condition variable).
	mu       sync.Mutex
	oobCond  *sync.Cond
	queue    []comm.Message
	oobQueue []comm.Message
	notify   chan struct{}

	sent     atomic.Int64
	received atomic.Int64
	bytesIn  atomic.Int64
	bytesOut atomic.Int64
}

// Rank returns the local rank.
func (e *Endpoint) Rank() int { return e.t.rank }

// deliver appends an inbound message to the lane's queue.
func (e *Endpoint) deliver(from int, data []byte, oob bool) {
	e.mu.Lock()
	if oob {
		e.oobQueue = append(e.oobQueue, comm.Message{From: from, Data: data})
		e.oobCond.Signal()
	} else {
		e.queue = append(e.queue, comm.Message{From: from, Data: data})
	}
	e.mu.Unlock()
	if !oob {
		select {
		case e.notify <- struct{}{}:
		default:
		}
	}
}

// wake unblocks receivers parked on either lane (close or failure).
func (e *Endpoint) wake() {
	e.mu.Lock()
	e.oobCond.Broadcast()
	e.mu.Unlock()
	select {
	case e.notify <- struct{}{}:
	default:
	}
}

// send frames data for the destination rank's write queue (or delivers
// locally for a self-send).
func (e *Endpoint) send(to int, data []byte, oob bool) error {
	t := e.t
	if to < 0 || to >= t.world {
		return fmt.Errorf("netcomm: rank %d sent to invalid rank %d", t.rank, to)
	}
	if err := t.aliveErr(); err != nil {
		return fmt.Errorf("netcomm: rank %d send to %d: %w", t.rank, to, err)
	}
	e.sent.Add(1)
	e.bytesOut.Add(int64(len(data)))
	if to == t.rank {
		e.deliver(t.rank, data, oob)
		return nil
	}
	kind := KindData
	if oob {
		kind = KindOOB
	}
	frame := make([]byte, 0, HeaderSize+len(data))
	frame = AppendHeader(frame, kind, len(data))
	frame = append(frame, data...)
	p := t.peers[to]
	p.mu.Lock()
	if p.closing {
		p.mu.Unlock()
		err := t.aliveErr()
		if err == nil {
			err = comm.ErrClosed
		}
		return fmt.Errorf("netcomm: rank %d send to %d: %w", t.rank, to, err)
	}
	p.outq = append(p.outq, frame)
	p.cond.Signal()
	p.mu.Unlock()
	return nil
}

// Send delivers data on the data lane. The slice is handed over; the
// caller must not modify it afterwards.
func (e *Endpoint) Send(to int, data []byte) error { return e.send(to, data, false) }

// SendOOB delivers data on the out-of-band lane.
func (e *Endpoint) SendOOB(to int, data []byte) error { return e.send(to, data, true) }

// TryRecv returns the next pending data-lane message without blocking.
// Delivered messages remain receivable after Close or failure.
func (e *Endpoint) TryRecv() (comm.Message, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.queue) == 0 {
		return comm.Message{}, false
	}
	m := e.queue[0]
	e.queue = e.queue[1:]
	e.received.Add(1)
	e.bytesIn.Add(int64(len(m.Data)))
	return m, true
}

// RecvOOB blocks for the next out-of-band message; after Close (or a
// transport failure) it drains the queue and then returns the terminal
// error.
func (e *Endpoint) RecvOOB() (comm.Message, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for len(e.oobQueue) == 0 {
		if err := e.t.aliveErr(); err != nil {
			return comm.Message{}, err
		}
		e.oobCond.Wait()
	}
	m := e.oobQueue[0]
	e.oobQueue = e.oobQueue[1:]
	e.received.Add(1)
	e.bytesIn.Add(int64(len(m.Data)))
	return m, nil
}

// Notify returns the data-lane arrival channel; a token may coalesce
// several arrivals — drain with TryRecv.
func (e *Endpoint) Notify() <-chan struct{} { return e.notify }

// Err returns the transport's terminal state: nil while healthy, the
// first failure after a fail-fast teardown, ErrClosed after Close.
func (e *Endpoint) Err() error { return e.t.aliveErr() }

// Pending returns the number of queued data-lane messages.
func (e *Endpoint) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.queue)
}

// Counters returns (sent, received, bytesOut, bytesIn) payload totals
// over both lanes.
func (e *Endpoint) Counters() (sent, received, bytesOut, bytesIn int64) {
	return e.sent.Load(), e.received.Load(), e.bytesOut.Load(), e.bytesIn.Load()
}

var (
	_ comm.Transport = (*Transport)(nil)
	_ comm.Endpoint  = (*Endpoint)(nil)
)
