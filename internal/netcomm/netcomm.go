// Package netcomm is the socket backend of the comm transport contract:
// one OS process per rank, length-prefixed versioned frames (wire.go)
// over one persistent connection per peer pair. Ranks find each other
// through a rendezvous service (rendezvous.go), establish a full mesh,
// and then exchange comm messages with the same semantics the in-memory
// backend provides — ordered pairwise delivery per lane, non-blocking
// sends, unbounded inboxes — so the patch-centric runtime runs across OS
// process boundaries unchanged.
//
// Each pair's physical wire is chosen at mesh build time, best tier
// first: co-located ranks upgrade to a mmap'd shared-memory ring pair
// (shmring.go — two memcpys and zero syscalls per frame) or, failing
// that, connect over a Unix-domain socket — skipping TCP framing and
// loopback queueing — while remote pairs keep TCP. All three wires
// speak the identical frame protocol; see rendezvous.go for the
// selection rule and shmring.go for the ring.
//
// The write path is zero-copy: outbound payloads are queued as-is and
// handed to the kernel via net.Buffers scatter-gather writes (header and
// payload as separate iovecs, never re-appended into a frame buffer),
// and payloads sent through comm.SendPooled are recycled into the
// process-global buffer pool right after the write syscall. Inbound
// data-lane payloads are drawn from the same pool; the consumer recycles
// them after decoding.
//
// Failure semantics are reconnect-free and fail-fast: the first
// connection error poisons the transport, subsequent sends return it,
// and blocked receivers drain then surface it. Close is clean: pending
// writes drain, the write side half-closes, and readers run to the
// peer's EOF so no in-flight frame is lost at shutdown.
package netcomm

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"jsweep/internal/comm"
)

// WireStats counts the frames and bytes this transport put on and took
// off the wire (headers included). Payload-level counters live on the
// endpoint (comm.Endpoint.Counters), so the difference is the framing
// overhead.
type WireStats struct {
	FramesSent, FramesReceived int64
	BytesOut, BytesIn          int64
}

// Transport is a single rank's attachment to a TCP cluster.
type Transport struct {
	cluster string
	rank    int
	world   int

	ep    *Endpoint
	peers []*peer // indexed by rank; nil at the local rank

	// degraded counts directed pairs that came up below the tier
	// WireAuto aimed for (set once at mesh build, immutable after).
	degraded int

	// m holds the obs handles, resolved from obs.Default() at mesh
	// build; the zero value is all no-ops.
	m netMetrics

	closeTimeout time.Duration

	stateMu sync.Mutex
	closed  bool
	failure error
	closing sync.Once

	readWG sync.WaitGroup

	framesSent atomic.Int64
	framesRecv atomic.Int64
	wireOut    atomic.Int64
	wireIn     atomic.Int64
}

// wireMsg is one queued outbound frame: kind plus payload, not yet
// framed — the writeLoop emits header and payload as separate iovecs of
// one scatter-gather write, so the payload crosses into the kernel
// straight from the sender's buffer.
type wireMsg struct {
	kind    byte
	payload []byte
	pooled  bool // recycle payload into the comm pool once written
}

// peer is one remote rank's persistent connection with its write queue.
type peer struct {
	rank    int
	conn    net.Conn
	network string // physical wire of this pair: "tcp", "unix" or "shm"

	mu      sync.Mutex
	cond    *sync.Cond
	outq    []wireMsg
	closing bool
	wdone   chan struct{}

	// Shared-memory tier state (nil/zero for socket pairs). The conn
	// above is retained as the doorbell/shutdown channel; connW
	// serializes its writers (doorbells from both ring loops, the Bye).
	rings    *ringPair
	rdWake   chan struct{} // cap 1: wake the parked ring reader
	wrWake   chan struct{} // cap 1: wake the parked ring writer
	connW    sync.Mutex
	byeSeen  atomic.Bool // peer's Bye arrived on the doorbell connection
	connDown atomic.Bool // doorbell connection is terminal (shmConnLoop exited)
}

// Cluster returns the launch-scoped cluster id this transport joined.
func (t *Transport) Cluster() string { return t.cluster }

// NumRanks returns the cluster's world size.
func (t *Transport) NumRanks() int { return t.world }

// Rank returns the locally hosted rank.
func (t *Transport) Rank() int { return t.rank }

// LocalRanks returns the single locally hosted rank.
func (t *Transport) LocalRanks() []int { return []int{t.rank} }

// Endpoint returns the local rank's endpoint, nil for any other rank.
func (t *Transport) Endpoint(rank int) comm.Endpoint {
	if rank != t.rank {
		return nil
	}
	return t.ep
}

// WireStats returns the frame/byte totals this transport has put on and
// taken off the wire.
func (t *Transport) WireStats() WireStats {
	return WireStats{
		FramesSent:     t.framesSent.Load(),
		FramesReceived: t.framesRecv.Load(),
		BytesOut:       t.wireOut.Load(),
		BytesIn:        t.wireIn.Load(),
	}
}

// PeerNetwork returns the physical wire of the connection to a peer rank
// ("tcp", "unix" or "shm"), or "" for the local rank and out-of-range
// ranks.
func (t *Transport) PeerNetwork(rank int) string {
	if rank < 0 || rank >= t.world || t.peers[rank] == nil {
		return ""
	}
	return t.peers[rank].network
}

// FastPeers counts the peers reached over a same-host fast path —
// shared-memory rings or Unix-domain sockets.
func (t *Transport) FastPeers() int {
	n := 0
	for _, p := range t.peers {
		if p != nil && (p.network == "unix" || p.network == "shm") {
			n++
		}
	}
	return n
}

// ShmPeers counts the peers reached over shared-memory rings (a subset
// of FastPeers).
func (t *Transport) ShmPeers() int {
	n := 0
	for _, p := range t.peers {
		if p != nil && p.network == "shm" {
			n++
		}
	}
	return n
}

// DegradedPairs counts this rank's directed peer pairs that came up
// below the tier WireAuto aimed for: a co-located pair forced onto TCP
// by an unbound or undialable Unix socket, or onto a plain socket by a
// failed ring handshake. Always 0 for forced wire modes. Summed over
// all ranks, a fully degraded co-located pair contributes 2 — the same
// directed-pair convention as FastPairs.
func (t *Transport) DegradedPairs() int { return t.degraded }

// aliveErr returns the transport's terminal state: its first failure, or
// ErrClosed after Close, or nil while healthy.
func (t *Transport) aliveErr() error {
	t.stateMu.Lock()
	defer t.stateMu.Unlock()
	if t.failure != nil {
		return t.failure
	}
	if t.closed {
		return comm.ErrClosed
	}
	return nil
}

// fail records the first terminal failure and tears the connections down
// so every blocked reader, writer and receiver unblocks with the error.
// Failures are recorded even after Close began: a Bye or drain write
// that fails mid-shutdown must surface (the peer will read our EOF as a
// crash), not masquerade as a clean close.
func (t *Transport) fail(err error) {
	t.stateMu.Lock()
	if t.failure == nil {
		t.failure = fmt.Errorf("netcomm: rank %d transport failed: %w", t.rank, err)
	}
	t.stateMu.Unlock()
	for _, p := range t.peers {
		if p != nil {
			p.conn.Close()
			p.mu.Lock()
			p.closing = true
			p.cond.Broadcast()
			p.mu.Unlock()
		}
	}
	t.ep.wake()
}

// Abort tears the transport down without draining: connections are
// force-closed mid-stream (no Bye), so peers observe a failed — not
// cleanly closed — transport and their blocked receivers unblock with
// an error. This is the mandatory exit for a rank abandoning a solve
// early (error paths): a clean Close would leave peers waiting forever
// in a collective for a rank that quietly left.
func (t *Transport) Abort() {
	t.fail(fmt.Errorf("aborted"))
}

// Close shuts the transport down cleanly: sends are refused from now on,
// each peer's pending writes drain and flush before the write side
// half-closes, and the readers run to their peers' EOF so no in-flight
// inbound frame is lost. Close is collective, like MPI_Finalize: every
// rank is expected to close at roughly the same time, since the local
// reader can only finish once the peer half-closes too. A peer that
// never closes (hung or crashed) is bounded by the close timeout, after
// which its connection is forced shut. Idempotent.
func (t *Transport) Close() error {
	t.closing.Do(func() {
		t.stateMu.Lock()
		t.closed = true
		t.stateMu.Unlock()
		for _, p := range t.peers {
			if p != nil {
				p.mu.Lock()
				p.closing = true
				p.cond.Broadcast()
				p.mu.Unlock()
			}
		}
		done := make(chan struct{})
		go func() {
			for _, p := range t.peers {
				if p != nil {
					<-p.wdone
				}
			}
			t.readWG.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(t.closeTimeout):
			// A peer is not draining (hung or crashed): force the
			// connections shut; our own outbound frames were already
			// flushed by the writers that did finish.
			for _, p := range t.peers {
				if p != nil {
					p.conn.Close()
				}
			}
			<-done
		}
		for _, p := range t.peers {
			if p != nil {
				p.conn.Close()
			}
		}
		// All peer loops have joined (<-done above): the ring mappings
		// are no longer touched and can be released.
		for _, p := range t.peers {
			if p != nil {
				p.rings.close()
			}
		}
		t.ep.wake()
	})
	return nil
}

// completeFrames reports how many whole frames of a batch fit in the
// written byte count, and the wire bytes (header + payload) those frames
// span. A failed scatter-gather write can stop mid-batch; only frames
// that fully reached the wire are counted.
func completeFrames(batch []wireMsg, written int64) (frames, bytes int64) {
	for _, m := range batch {
		sz := int64(HeaderSize + len(m.payload))
		if written < sz {
			return frames, bytes
		}
		written -= sz
		frames++
		bytes += sz
	}
	return frames, bytes
}

// writeLoop drains one peer's outbound queue, coalescing consecutive
// frames into one scatter-gather writev — the transport-level
// counterpart of the runtime's StreamBatcher (which reduces frame count;
// this reduces syscalls per frame). Headers for a batch live in one flat
// arena and every payload goes to the kernel from the sender's own
// buffer: no per-frame make+append. Wire stats are counted after the
// write returns, covering only frames that actually reached the wire.
func (t *Transport) writeLoop(p *peer) {
	defer close(p.wdone)
	var (
		hdrs []byte      // flat header arena, HeaderSize bytes per frame
		bufs net.Buffers // iovec list: hdr, payload, hdr, payload, ...
	)
	lc := t.m.lanes("out", p.network)
	batchHist := t.m.writevBatch.With(p.network)
	for {
		p.mu.Lock()
		for len(p.outq) == 0 && !p.closing {
			p.cond.Wait()
		}
		batch := p.outq
		p.outq = nil
		closing := p.closing
		p.mu.Unlock()
		if len(batch) > 0 {
			if need := len(batch) * HeaderSize; cap(hdrs) < need {
				hdrs = make([]byte, 0, need)
			}
			hdrs = hdrs[:0]
			bufs = bufs[:0]
			for _, m := range batch {
				off := len(hdrs)
				hdrs = AppendHeader(hdrs, m.kind, len(m.payload))
				bufs = append(bufs, hdrs[off:len(hdrs):len(hdrs)], m.payload)
			}
			// WriteTo advances (and nils out) its receiver as buffers are
			// consumed — run it on a copy so bufs[:0] stays reusable.
			wv := bufs
			n, err := wv.WriteTo(p.conn)
			frames, bytes := completeFrames(batch, n)
			t.framesSent.Add(frames)
			t.wireOut.Add(bytes)
			batchHist.Observe(float64(frames))
			for _, m := range batch[:frames] {
				lc.count(m.kind, int64(HeaderSize+len(m.payload)))
			}
			if err != nil {
				t.fail(fmt.Errorf("write to rank %d: %w", p.rank, err))
				return
			}
			for i := range batch {
				if batch[i].pooled {
					comm.PutBuffer(batch[i].payload)
				}
				batch[i] = wireMsg{} // drop the payload refs held by the queue's backing array
			}
		}
		if closing {
			p.mu.Lock()
			drained := len(p.outq) == 0
			p.mu.Unlock()
			if !drained {
				continue
			}
			// In-flight drain complete: announce the clean shutdown (an
			// EOF without Bye reads as a crash on the other side) and
			// half-close so the peer's reader sees EOF exactly at the last
			// frame boundary. A lost Bye is a real failure — the peer will
			// report a fake crash — so it is recorded, not swallowed.
			if _, err := p.conn.Write(AppendHeader(nil, KindBye, 0)); err != nil {
				t.fail(fmt.Errorf("shutdown bye to rank %d: %w", p.rank, err))
				return
			}
			if hc, ok := p.conn.(interface{ CloseWrite() error }); ok {
				hc.CloseWrite()
			}
			return
		}
	}
}

// readLoop receives one peer's frames into the local inbox until the
// peer half-closes (clean EOF at a frame boundary) or the connection
// fails.
func (t *Transport) readLoop(p *peer) {
	defer t.readWG.Done()
	br := bufio.NewReaderSize(p.conn, 64<<10)
	hdr := make([]byte, HeaderSize)
	sawBye := false
	lc := t.m.lanes("in", p.network)
	for {
		if _, err := io.ReadFull(br, hdr); err != nil {
			if err == io.EOF && sawBye {
				return // peer closed cleanly (Bye then EOF at a frame boundary)
			}
			if t.aliveErr() == nil {
				if err == io.EOF {
					// EOF without a Bye: the peer vanished mid-stream
					// (crash, kill, Abort). Waiting ranks must unblock
					// with an error, not idle forever.
					err = fmt.Errorf("connection closed without shutdown handshake")
				}
				t.fail(fmt.Errorf("read from rank %d: %w", p.rank, err))
			}
			return
		}
		kind, n, err := ParseHeader(hdr)
		if err != nil {
			t.fail(fmt.Errorf("frame from rank %d: %w", p.rank, err))
			return
		}
		if kind == KindBye {
			if n != 0 {
				t.fail(fmt.Errorf("bye frame from rank %d carries %d payload bytes", p.rank, n))
				return
			}
			sawBye = true
			continue
		}
		if kind != KindData && kind != KindOOB {
			t.fail(fmt.Errorf("unexpected %s frame from rank %d on established connection", kindName(kind), p.rank))
			return
		}
		// Data-lane payloads come from the buffer pool: the runtime's
		// consumer recycles them after decoding, closing the zero-copy
		// loop. OOB payloads stay plainly allocated — collective
		// consumers stash them across rounds.
		var payload []byte
		if kind == KindData {
			payload = comm.GetBuffer(n)[:n]
		} else {
			payload = make([]byte, n)
		}
		if _, err := io.ReadFull(br, payload); err != nil {
			t.fail(fmt.Errorf("frame payload from rank %d: %w", p.rank, err))
			return
		}
		t.framesRecv.Add(1)
		t.wireIn.Add(int64(HeaderSize + n))
		lc.count(kind, int64(HeaderSize+n))
		t.ep.deliver(p.rank, payload, kind == KindOOB)
	}
}

// Endpoint is the local rank's attachment: the two-lane inbox plus the
// send paths into the per-peer write queues.
type Endpoint struct {
	t *Transport

	// mu guards both queues; oobCond serves RecvOOB (the only blocking
	// receive — the data lane is TryRecv/Notify only, so it needs no
	// condition variable).
	mu       sync.Mutex
	oobCond  *sync.Cond
	queue    []comm.Message
	oobQueue []comm.Message
	notify   chan struct{}

	sent     atomic.Int64
	received atomic.Int64
	bytesIn  atomic.Int64
	bytesOut atomic.Int64
}

// Rank returns the local rank.
func (e *Endpoint) Rank() int { return e.t.rank }

// deliver appends an inbound message to the lane's queue.
func (e *Endpoint) deliver(from int, data []byte, oob bool) {
	e.mu.Lock()
	if oob {
		e.oobQueue = append(e.oobQueue, comm.Message{From: from, Data: data})
		e.oobCond.Signal()
	} else {
		e.queue = append(e.queue, comm.Message{From: from, Data: data})
	}
	e.mu.Unlock()
	if !oob {
		select {
		case e.notify <- struct{}{}:
		default:
		}
	}
}

// wake unblocks receivers parked on either lane (close or failure).
func (e *Endpoint) wake() {
	e.mu.Lock()
	e.oobCond.Broadcast()
	e.mu.Unlock()
	select {
	case e.notify <- struct{}{}:
	default:
	}
}

// send queues data for the destination rank's write queue (or delivers
// locally for a self-send). The payload is NOT framed here — the
// writeLoop hands it to the kernel as its own iovec, so this path does
// no copying. pooled marks a comm.GetBuffer-backed payload the writeLoop
// recycles once it is on the wire.
func (e *Endpoint) send(to int, data []byte, oob, pooled bool) error {
	t := e.t
	if to < 0 || to >= t.world {
		return fmt.Errorf("netcomm: rank %d sent to invalid rank %d", t.rank, to)
	}
	if err := t.aliveErr(); err != nil {
		return fmt.Errorf("netcomm: rank %d send to %d: %w", t.rank, to, err)
	}
	e.sent.Add(1)
	e.bytesOut.Add(int64(len(data)))
	if to == t.rank {
		// Self-send: the payload skips the wire, so a pooled buffer is
		// recycled by the local consumer after decoding, not here.
		e.deliver(t.rank, data, oob)
		return nil
	}
	kind := KindData
	if oob {
		kind = KindOOB
	}
	p := t.peers[to]
	p.mu.Lock()
	if p.closing {
		p.mu.Unlock()
		err := t.aliveErr()
		if err == nil {
			err = comm.ErrClosed
		}
		return fmt.Errorf("netcomm: rank %d send to %d: %w", t.rank, to, err)
	}
	p.outq = append(p.outq, wireMsg{kind: kind, payload: data, pooled: pooled})
	p.cond.Signal()
	p.mu.Unlock()
	return nil
}

// Send delivers data on the data lane. The slice is handed over; the
// caller must not modify it afterwards.
func (e *Endpoint) Send(to int, data []byte) error { return e.send(to, data, false, false) }

// SendPooled is Send for a comm.GetBuffer-backed payload: the transport
// recycles the slice into the buffer pool right after the write syscall
// (self-sends hand it to the local receiver, whose consumer recycles it
// after decoding). The caller must not retain or resend the slice.
func (e *Endpoint) SendPooled(to int, data []byte) error { return e.send(to, data, false, true) }

// SendOOB delivers data on the out-of-band lane.
func (e *Endpoint) SendOOB(to int, data []byte) error { return e.send(to, data, true, false) }

// TryRecv returns the next pending data-lane message without blocking.
// Delivered messages remain receivable after Close or failure.
func (e *Endpoint) TryRecv() (comm.Message, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.queue) == 0 {
		return comm.Message{}, false
	}
	m := e.queue[0]
	// Clear the popped slot: the backing array outlives the pop, and a
	// lingering reference would pin the payload until the whole array is
	// released — defeating buffer recycling.
	e.queue[0] = comm.Message{}
	e.queue = e.queue[1:]
	e.received.Add(1)
	e.bytesIn.Add(int64(len(m.Data)))
	return m, true
}

// RecvOOB blocks for the next out-of-band message; after Close (or a
// transport failure) it drains the queue and then returns the terminal
// error.
func (e *Endpoint) RecvOOB() (comm.Message, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for len(e.oobQueue) == 0 {
		if err := e.t.aliveErr(); err != nil {
			return comm.Message{}, err
		}
		e.oobCond.Wait()
	}
	m := e.oobQueue[0]
	e.oobQueue[0] = comm.Message{} // do not pin the consumed payload (see TryRecv)
	e.oobQueue = e.oobQueue[1:]
	e.received.Add(1)
	e.bytesIn.Add(int64(len(m.Data)))
	return m, nil
}

// Notify returns the data-lane arrival channel; a token may coalesce
// several arrivals — drain with TryRecv.
func (e *Endpoint) Notify() <-chan struct{} { return e.notify }

// Err returns the transport's terminal state: nil while healthy, the
// first failure after a fail-fast teardown, ErrClosed after Close.
func (e *Endpoint) Err() error { return e.t.aliveErr() }

// Pending returns the number of queued data-lane messages.
func (e *Endpoint) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.queue)
}

// Counters returns (sent, received, bytesOut, bytesIn) payload totals
// over both lanes.
func (e *Endpoint) Counters() (sent, received, bytesOut, bytesIn int64) {
	return e.sent.Load(), e.received.Load(), e.bytesOut.Load(), e.bytesIn.Load()
}

var (
	_ comm.Transport    = (*Transport)(nil)
	_ comm.Endpoint     = (*Endpoint)(nil)
	_ comm.PooledSender = (*Endpoint)(nil)
)
