package netcomm_test

// Context-aware cluster bring-up: JoinCtx must honour cancellation and
// deadlines promptly at every stage — before the join, mid-bring-up
// (peers missing), and after a successful mesh.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"jsweep/internal/netcomm"
)

func TestJoinCtxAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := netcomm.JoinCtx(ctx, netcomm.Options{
		Cluster: "c", Rank: 0, World: 1, Rendezvous: "127.0.0.1:1",
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("JoinCtx on a dead context returned %v", err)
	}
}

func TestJoinCtxCancelMidBringup(t *testing.T) {
	// A world of 2 with only one rank joining: the bring-up can never
	// complete, so only cancellation ends it.
	rz, err := netcomm.StartRendezvous("127.0.0.1:0", "mid", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer rz.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = netcomm.JoinCtx(ctx, netcomm.Options{
		Cluster: "mid", Rank: 0, World: 2, Rendezvous: rz.Addr(),
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled bring-up returned %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancelled bring-up took %v to return", elapsed)
	}
}

func TestJoinCtxDeadlineTightensTimeout(t *testing.T) {
	// A listener that accepts but never answers: without the context
	// deadline the join would wait out its own 60s default.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = netcomm.JoinCtx(ctx, netcomm.Options{
		Cluster: "dl", Rank: 0, World: 1, Rendezvous: ln.Addr().String(),
	})
	if err == nil {
		t.Fatal("join against a mute rendezvous succeeded")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("deadline-bounded join took %v", elapsed)
	}
}

func TestJoinCtxSuccessfulMesh(t *testing.T) {
	cluster := fmt.Sprintf("okctx-%d", time.Now().UnixNano())
	rz, err := netcomm.StartRendezvous("127.0.0.1:0", cluster, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer rz.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	trs := make([]*netcomm.Transport, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			trs[r], errs[r] = netcomm.JoinCtx(ctx, netcomm.Options{
				Cluster: cluster, Rank: r, World: 2, Rendezvous: rz.Addr(),
				CloseTimeout: 2 * time.Second,
			})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	defer trs[0].Close()
	defer trs[1].Close()
	if err := trs[0].Endpoint(0).Send(1, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if m, ok := trs[1].Endpoint(1).TryRecv(); ok {
			if string(m.Data) != "hi" || m.From != 0 {
				t.Fatalf("got %q from %d", m.Data, m.From)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("message never arrived over the ctx-joined mesh")
		}
		time.Sleep(time.Millisecond)
	}
}
