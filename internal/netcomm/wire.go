// Wire format of the TCP backend, following the versioned codec
// discipline of internal/core/codec.go: every unit on the wire starts
// with a fixed header carrying a magic, a layout version and a kind, any
// corruption or truncation surfaces as an error (never a panic), and
// unknown versions are rejected instead of guessed at.
//
//	header  := magic:u16 version:u8 kind:u8 length:u32      (little endian)
//	payload := length bytes, layout per kind:
//
//	KindData / KindOOB   opaque message bytes (one comm.Message per frame;
//	                     the source rank is implicit in the connection's
//	                     handshake)
//	KindJoin             rank:u32 world:u32 cluster:str addr:str
//	                     unix:str host:str shm:u8
//	KindPeer             from:u32 to:u32 world:u32 cluster:str shm:u8
//	                     ringtx:str ringrx:str
//	KindAck              status:u8 detail:str shm:u8
//	KindPeers            world:u32 { tcp:str unix:str host:str shm:u8 }*world
//	KindBye              empty (clean-shutdown marker, always the last
//	                     frame before the write side half-closes)
//	KindWake             wake:u8 (shared-memory ring doorbell: 'd' = data
//	                     published in your inbound ring, 's' = space freed
//	                     in your outbound ring)
//
//	str := len:u16 bytes
//
// KindJoin travels node→rendezvous when a rank reports in; KindPeers is
// the rendezvous' answer once the cluster is complete. KindPeer opens a
// direct peer connection (dialer→acceptor), KindAck confirms or refuses
// it. KindData/KindOOB carry the two comm lanes for the life of the
// connection.
package netcomm

import (
	"encoding/binary"
	"fmt"
)

// Frame constants.
const (
	// Magic marks every netcomm wire unit.
	Magic = uint16(0x4E43) // "NC"
	// Version is the current wire layout version. A peer speaking another
	// version is refused at handshake and rejected at frame decode.
	// Version 2 added the same-host fast path: Join and Peers carry each
	// rank's Unix-socket address and host identity next to its TCP
	// address. Version 3 added the shared-memory ring upgrade: Join and
	// Peers advertise shm capability, the Peer handshake proposes ring
	// file paths, the Ack accepts or declines them, and KindWake is the
	// ring doorbell.
	Version = byte(3)
	// HeaderSize is the fixed header length in bytes.
	HeaderSize = 2 + 1 + 1 + 4
	// MaxFrameBytes caps a frame payload; larger lengths are treated as
	// corruption so a bad header cannot trigger a giant allocation.
	MaxFrameBytes = 1 << 28
	// maxStrLen caps an encoded string (cluster ids, addresses).
	maxStrLen = 1 << 10
)

// Frame kinds.
const (
	// KindData is a data-lane message frame.
	KindData = byte(0x01)
	// KindOOB is an out-of-band-lane message frame.
	KindOOB = byte(0x02)
	// KindJoin is a node's rendezvous registration.
	KindJoin = byte(0x03)
	// KindPeer is a peer-connection handshake (dialer to acceptor).
	KindPeer = byte(0x04)
	// KindAck confirms (status 0) or refuses (status 1) a handshake.
	KindAck = byte(0x05)
	// KindPeers is the rendezvous' address broadcast.
	KindPeers = byte(0x06)
	// KindBye announces a clean shutdown: the last frame a transport
	// writes before half-closing a peer connection. An EOF without a
	// preceding Bye is a crashed peer, not a close — the receiving
	// transport fails fast so waiting ranks unblock with an error
	// instead of idling forever.
	KindBye = byte(0x07)
	// KindWake is the shared-memory ring doorbell: when a pair runs over
	// a mmap'd ring, the retained socket connection carries only these
	// one-byte wake-ups (and the final Bye). A side that parked after
	// spinning is woken by the opposite side's next ring advance.
	KindWake = byte(0x08)
)

// kindName returns a diagnostic name for a frame kind.
func kindName(k byte) string {
	switch k {
	case KindData:
		return "data"
	case KindOOB:
		return "oob"
	case KindJoin:
		return "join"
	case KindPeer:
		return "peer"
	case KindAck:
		return "ack"
	case KindPeers:
		return "peers"
	case KindBye:
		return "bye"
	case KindWake:
		return "wake"
	case KindHello:
		return "hello"
	case KindSubmit:
		return "submit"
	case KindAccepted:
		return "accepted"
	case KindRejected:
		return "rejected"
	case KindStarted:
		return "started"
	case KindProgress:
		return "progress"
	case KindResult:
		return "result"
	case KindJobError:
		return "joberror"
	case KindCancel:
		return "cancel"
	}
	return fmt.Sprintf("unknown(%#02x)", k)
}

// AppendHeader appends a frame header for a kind and payload length.
func AppendHeader(dst []byte, kind byte, length int) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, Magic)
	dst = append(dst, Version, kind)
	return binary.LittleEndian.AppendUint32(dst, uint32(length))
}

// ParseHeader validates a frame header and returns its kind and payload
// length. h must hold exactly HeaderSize bytes.
func ParseHeader(h []byte) (kind byte, length int, err error) {
	if len(h) != HeaderSize {
		return 0, 0, fmt.Errorf("netcomm: header is %d bytes, want %d", len(h), HeaderSize)
	}
	if magic := binary.LittleEndian.Uint16(h); magic != Magic {
		return 0, 0, fmt.Errorf("netcomm: bad magic %#04x", magic)
	}
	if h[2] != Version {
		return 0, 0, fmt.Errorf("netcomm: unsupported wire version %d (have %d)", h[2], Version)
	}
	kind = h[3]
	switch kind {
	case KindData, KindOOB, KindJoin, KindPeer, KindAck, KindPeers, KindBye, KindWake,
		KindHello, KindSubmit, KindAccepted, KindRejected, KindStarted,
		KindProgress, KindResult, KindJobError, KindCancel:
	default:
		return 0, 0, fmt.Errorf("netcomm: unknown frame kind %#02x", kind)
	}
	n := binary.LittleEndian.Uint32(h[4:])
	if n > MaxFrameBytes {
		return 0, 0, fmt.Errorf("netcomm: frame length %d exceeds cap %d", n, MaxFrameBytes)
	}
	return kind, int(n), nil
}

// appendStr appends a length-prefixed string.
func appendStr(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

// appendBool appends a bool as a single 0/1 byte.
func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// parseBool reads a 0/1 byte at off; any other value is corruption (the
// fuzzer pins canonical re-encoding, so decoding must not normalize).
func parseBool(buf []byte, off int) (bool, int, error) {
	if len(buf)-off < 1 {
		return false, off, fmt.Errorf("netcomm: bool truncated")
	}
	switch buf[off] {
	case 0:
		return false, off + 1, nil
	case 1:
		return true, off + 1, nil
	}
	return false, off, fmt.Errorf("netcomm: bool byte %#02x must be 0 or 1", buf[off])
}

// parseStr reads a length-prefixed string at off.
func parseStr(buf []byte, off int) (string, int, error) {
	if len(buf)-off < 2 {
		return "", off, fmt.Errorf("netcomm: string length truncated")
	}
	n := int(binary.LittleEndian.Uint16(buf[off:]))
	off += 2
	if n > maxStrLen {
		return "", off, fmt.Errorf("netcomm: string length %d exceeds cap %d", n, maxStrLen)
	}
	if len(buf)-off < n {
		return "", off, fmt.Errorf("netcomm: string truncated (%d of %d bytes)", len(buf)-off, n)
	}
	return string(buf[off : off+n]), off + n, nil
}

// Join is a node's rendezvous registration (KindJoin payload).
type JoinRequest struct {
	// Rank and World place this node in the cluster.
	Rank, World int
	// Cluster is the launch-scoped cluster id; it guards against a node
	// joining the wrong rendezvous.
	Cluster string
	// Addr is the node's own TCP peer-listener address.
	Addr string
	// Unix is the node's Unix-socket peer-listener path ("" when the
	// same-host fast path is off or unavailable).
	Unix string
	// Host is the node's host identity; two ranks with equal non-empty
	// identities are co-located and may dial each other's Unix sockets.
	Host string
	// Shm advertises that this node accepts shared-memory ring upgrades
	// from co-located dialers.
	Shm bool
}

// AppendJoin encodes a Join payload.
func AppendJoin(dst []byte, j JoinRequest) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(j.Rank))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(j.World))
	dst = appendStr(dst, j.Cluster)
	dst = appendStr(dst, j.Addr)
	dst = appendStr(dst, j.Unix)
	dst = appendStr(dst, j.Host)
	return appendBool(dst, j.Shm)
}

// ParseJoin decodes a Join payload.
func ParseJoin(buf []byte) (JoinRequest, error) {
	var j JoinRequest
	if len(buf) < 8 {
		return j, fmt.Errorf("netcomm: join truncated (len %d)", len(buf))
	}
	j.Rank = int(int32(binary.LittleEndian.Uint32(buf)))
	j.World = int(int32(binary.LittleEndian.Uint32(buf[4:])))
	var err error
	off := 8
	if j.Cluster, off, err = parseStr(buf, off); err != nil {
		return j, fmt.Errorf("netcomm: join cluster: %w", err)
	}
	if j.Addr, off, err = parseStr(buf, off); err != nil {
		return j, fmt.Errorf("netcomm: join addr: %w", err)
	}
	if j.Unix, off, err = parseStr(buf, off); err != nil {
		return j, fmt.Errorf("netcomm: join unix addr: %w", err)
	}
	if j.Host, off, err = parseStr(buf, off); err != nil {
		return j, fmt.Errorf("netcomm: join host: %w", err)
	}
	if j.Shm, off, err = parseBool(buf, off); err != nil {
		return j, fmt.Errorf("netcomm: join shm: %w", err)
	}
	if off != len(buf) {
		return j, fmt.Errorf("netcomm: %d trailing bytes after join", len(buf)-off)
	}
	return j, nil
}

// Peer is a direct peer-connection handshake (KindPeer payload).
type Peer struct {
	// From is the dialing rank, To the accepting rank.
	From, To int
	// World and Cluster must match the acceptor's own.
	World   int
	Cluster string
	// Shm proposes a shared-memory ring upgrade: the dialer has created
	// the two ring files and asks the acceptor to map them. RingTx is the
	// dialer→acceptor ring, RingRx the acceptor→dialer ring (both "" when
	// Shm is false).
	Shm            bool
	RingTx, RingRx string
}

// AppendPeer encodes a Peer payload.
func AppendPeer(dst []byte, p Peer) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(p.From))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(p.To))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(p.World))
	dst = appendStr(dst, p.Cluster)
	dst = appendBool(dst, p.Shm)
	dst = appendStr(dst, p.RingTx)
	return appendStr(dst, p.RingRx)
}

// ParsePeer decodes a Peer payload.
func ParsePeer(buf []byte) (Peer, error) {
	var p Peer
	if len(buf) < 12 {
		return p, fmt.Errorf("netcomm: peer handshake truncated (len %d)", len(buf))
	}
	p.From = int(int32(binary.LittleEndian.Uint32(buf)))
	p.To = int(int32(binary.LittleEndian.Uint32(buf[4:])))
	p.World = int(int32(binary.LittleEndian.Uint32(buf[8:])))
	var err error
	off := 12
	if p.Cluster, off, err = parseStr(buf, off); err != nil {
		return p, fmt.Errorf("netcomm: peer cluster: %w", err)
	}
	if p.Shm, off, err = parseBool(buf, off); err != nil {
		return p, fmt.Errorf("netcomm: peer shm: %w", err)
	}
	if p.RingTx, off, err = parseStr(buf, off); err != nil {
		return p, fmt.Errorf("netcomm: peer ring tx: %w", err)
	}
	if p.RingRx, off, err = parseStr(buf, off); err != nil {
		return p, fmt.Errorf("netcomm: peer ring rx: %w", err)
	}
	if off != len(buf) {
		return p, fmt.Errorf("netcomm: %d trailing bytes after peer handshake", len(buf)-off)
	}
	return p, nil
}

// Ack confirms or refuses a handshake (KindAck payload).
type Ack struct {
	// OK reports acceptance; Detail carries the refusal reason.
	OK     bool
	Detail string
	// Shm reports that the acceptor mapped the proposed ring files — the
	// pair runs over shared memory. An OK Ack with Shm false accepts the
	// connection as a plain socket (the acceptor declined the upgrade).
	Shm bool
}

// AppendAck encodes an Ack payload.
func AppendAck(dst []byte, a Ack) []byte {
	status := byte(1)
	if a.OK {
		status = 0
	}
	dst = append(dst, status)
	dst = appendStr(dst, a.Detail)
	return appendBool(dst, a.Shm)
}

// ParseAck decodes an Ack payload.
func ParseAck(buf []byte) (Ack, error) {
	var a Ack
	if len(buf) < 1 {
		return a, fmt.Errorf("netcomm: ack truncated")
	}
	switch buf[0] {
	case 0:
		a.OK = true
	case 1:
	default:
		return a, fmt.Errorf("netcomm: ack status %#02x must be 0 or 1", buf[0])
	}
	var err error
	off := 1
	if a.Detail, off, err = parseStr(buf, off); err != nil {
		return a, fmt.Errorf("netcomm: ack detail: %w", err)
	}
	if a.Shm, off, err = parseBool(buf, off); err != nil {
		return a, fmt.Errorf("netcomm: ack shm: %w", err)
	}
	if off != len(buf) {
		return a, fmt.Errorf("netcomm: %d trailing bytes after ack", len(buf)-off)
	}
	return a, nil
}

// PeerAddr is one rank's reachable addresses plus its host identity,
// as broadcast by the rendezvous. The dialer picks the physical
// transport per pair: the Unix socket when both sides share a non-empty
// Host (the same-host fast path), TCP otherwise.
type PeerAddr struct {
	// TCP is the rank's TCP peer-listener address (always present).
	TCP string
	// Unix is the rank's Unix-socket path ("" when unavailable).
	Unix string
	// Host is the rank's host identity.
	Host string
	// Shm reports that the rank accepts shared-memory ring upgrades from
	// co-located dialers.
	Shm bool
}

// Peers is the rendezvous' address broadcast (KindPeers payload): the
// peer-listener addresses of every rank, indexed by rank.
type Peers struct {
	Addrs []PeerAddr
}

// AppendPeers encodes a Peers payload.
func AppendPeers(dst []byte, p Peers) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(p.Addrs)))
	for _, a := range p.Addrs {
		dst = appendStr(dst, a.TCP)
		dst = appendStr(dst, a.Unix)
		dst = appendStr(dst, a.Host)
		dst = appendBool(dst, a.Shm)
	}
	return dst
}

// ParsePeers decodes a Peers payload.
func ParsePeers(buf []byte) (Peers, error) {
	var p Peers
	if len(buf) < 4 {
		return p, fmt.Errorf("netcomm: peers truncated (len %d)", len(buf))
	}
	world := binary.LittleEndian.Uint32(buf)
	// Every entry carries at least its three 2-byte string lengths plus
	// the shm byte.
	if int64(world)*7 > int64(len(buf)-4) {
		return p, fmt.Errorf("netcomm: peers world %d exceeds remaining %d bytes", world, len(buf)-4)
	}
	off := 4
	p.Addrs = make([]PeerAddr, 0, world)
	for i := uint32(0); i < world; i++ {
		var a PeerAddr
		var err error
		if a.TCP, off, err = parseStr(buf, off); err != nil {
			return p, fmt.Errorf("netcomm: peers addr %d: %w", i, err)
		}
		if a.Unix, off, err = parseStr(buf, off); err != nil {
			return p, fmt.Errorf("netcomm: peers unix addr %d: %w", i, err)
		}
		if a.Host, off, err = parseStr(buf, off); err != nil {
			return p, fmt.Errorf("netcomm: peers host %d: %w", i, err)
		}
		if a.Shm, off, err = parseBool(buf, off); err != nil {
			return p, fmt.Errorf("netcomm: peers shm %d: %w", i, err)
		}
		p.Addrs = append(p.Addrs, a)
	}
	if off != len(buf) {
		return p, fmt.Errorf("netcomm: %d trailing bytes after peers", len(buf)-off)
	}
	return p, nil
}
