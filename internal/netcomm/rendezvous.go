// Rendezvous and cluster bring-up: every rank starts its peer-listeners
// (TCP always, a Unix-domain socket when the same-host fast path is on),
// reports (cluster id, rank, world, listen addresses, host identity) to
// the rendezvous service, receives the full address map once the
// cluster is complete, and then establishes one direct connection per
// peer pair — rank i dials every rank j < i and accepts from every rank
// j > i, authenticated by a versioned KindPeer/KindAck handshake
// carrying the cluster id.
//
// Transport selection rule (per pair, decided by the dialer, best tier
// first): a pair whose two ranks report the same non-empty host identity
// and whose target published a Unix-socket path connects over that
// socket — and upgrades to a shared-memory ring pair (shmring.go) when
// both sides advertise shm capability; every other pair connects over
// TCP. WireTCP forces TCP everywhere; WireUDS requires the socket fast
// path; WireShm requires the ring tier — both fail the bring-up for
// non-co-located pairs. WireAuto degrades per pair and surfaces every
// degradation: a co-located pair whose Unix socket cannot be bound or
// dialed retries over TCP (logged, counted in DegradedPairs) instead of
// aborting the bring-up, and a failed ring handshake keeps the plain
// socket. Hybrid clusters therefore come up with co-located ranks on
// the fastest workable tier and remote ranks on TCP, automatically.
package netcomm

import (
	"context"
	"crypto/rand"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"jsweep/internal/obs"
)

// defaultTimeout bounds the whole cluster bring-up of one Join call.
const defaultTimeout = 60 * time.Second

// defaultCloseTimeout bounds Close's wait for peers to drain.
const defaultCloseTimeout = 15 * time.Second

// Wire selects the physical wire of peer-pair connections.
type Wire int

const (
	// WireAuto (the default) picks the best workable tier per pair:
	// shared-memory rings between co-located ranks that support them,
	// Unix-domain sockets for other co-located pairs, TCP across hosts.
	// Degradations (an unbindable or undialable Unix socket, a failed
	// ring handshake) fall one tier per pair — logged via Options.Log
	// and counted in Transport.DegradedPairs — never abort the bring-up.
	WireAuto Wire = iota
	// WireTCP forces TCP for every pair.
	WireTCP
	// WireUDS requires the Unix-socket fast path: the bring-up fails if
	// a Unix listener cannot be bound or a peer pair is not co-located.
	// Shared-memory rings are not attempted.
	WireUDS
	// WireShm requires the shared-memory ring tier for every pair: the
	// bring-up fails if a pair is not co-located, a ring cannot be
	// created or mapped, or the platform lacks mmap.
	WireShm
)

// ParseWire parses a -wire flag value: "auto" (or ""), "tcp", "uds",
// "shm".
func ParseWire(s string) (Wire, error) {
	switch s {
	case "", "auto":
		return WireAuto, nil
	case "tcp":
		return WireTCP, nil
	case "uds", "unix":
		return WireUDS, nil
	case "shm":
		return WireShm, nil
	}
	return 0, fmt.Errorf("netcomm: unknown wire %q (want auto, tcp, uds or shm)", s)
}

// String returns the flag spelling of a Wire value.
func (w Wire) String() string {
	switch w {
	case WireTCP:
		return "tcp"
	case WireUDS:
		return "uds"
	case WireShm:
		return "shm"
	}
	return "auto"
}

// Options configures a node's attachment to a cluster.
type Options struct {
	// Cluster is the launch-scoped cluster id every member must present.
	Cluster string
	// Rank is this node's rank; World the total rank count.
	Rank, World int
	// Rendezvous is the host:port of the rendezvous service.
	Rendezvous string
	// ListenAddr is the address the TCP peer-listener binds (default
	// "127.0.0.1:0" — loopback, kernel-assigned port).
	ListenAddr string
	// Wire selects the physical wire per peer pair (default WireAuto:
	// shared-memory rings where possible, then Unix sockets for
	// co-located pairs, TCP otherwise).
	Wire Wire
	// HostID overrides the node's host identity (hostname plus boot id
	// by default). Two ranks reporting equal identities are treated as
	// co-located. Tests use it to simulate hybrid clusters on one box.
	HostID string
	// SocketDir overrides the directory holding the Unix listener
	// socket and the shared-memory ring files (default os.TempDir()).
	SocketDir string
	// RingBytes sets the per-direction shared-memory ring capacity,
	// rounded up to a power of two (default 1 MiB).
	RingBytes int
	// Log receives human-readable bring-up warnings — per-pair wire
	// degradations, stale-file cleanup (nil discards them). Writes are
	// serialized by the package.
	Log io.Writer
	// Timeout bounds the whole bring-up (default 60s).
	Timeout time.Duration
	// CloseTimeout bounds Close's in-flight drain (default 15s).
	CloseTimeout time.Duration
}

// logMu serializes Options.Log writes: bring-up warnings can come from
// the accept pump and the dial loop concurrently.
var logMu sync.Mutex

// logf writes one bring-up warning to the options' log.
func logf(o Options, format string, args ...any) {
	if o.Log == nil {
		return
	}
	logMu.Lock()
	fmt.Fprintf(o.Log, "netcomm: "+format+"\n", args...)
	logMu.Unlock()
}

// hostIdentity derives this node's host identity: hostname qualified by
// the kernel boot id when available, so two containers sharing a
// hostname string but not a kernel do not get falsely co-located.
func hostIdentity() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "unknown-host"
	}
	if b, err := os.ReadFile("/proc/sys/kernel/random/boot_id"); err == nil {
		if id := strings.TrimSpace(string(b)); id != "" {
			return host + "/" + id
		}
	}
	return host
}

// udsSocketPath picks a fresh random socket path under dir. Random
// rather than derived: the path travels to peers via the rendezvous, so
// it needs no derivability, and cluster ids may contain characters (or
// lengths) unfit for a filesystem path.
func udsSocketPath(dir string) (string, error) {
	return freshPath(dir, "sock")
}

// ringFilePath picks a fresh random ring-file path under dir (the path
// travels to the peer in the KindPeer handshake).
func ringFilePath(dir string) (string, error) {
	return freshPath(dir, "ring")
}

func freshPath(dir, ext string) (string, error) {
	if dir == "" {
		dir = os.TempDir()
	}
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("netcomm: %s name: %w", ext, err)
	}
	return filepath.Join(dir, fmt.Sprintf("jsnc-%x.%s", b, ext)), nil
}

// staleSocket reports whether path is a socket file no process listens
// on — the debris of a rank SIGKILLed before its deferred cleanup. A
// live listener answers the probe dial; a dead file refuses it.
func staleSocket(path string) bool {
	fi, err := os.Stat(path)
	if err != nil || fi.Mode()&os.ModeSocket == 0 {
		return false
	}
	conn, err := net.DialTimeout("unix", path, 250*time.Millisecond)
	if err == nil {
		conn.Close()
		return false
	}
	return true
}

// listenUnix binds a Unix listener, recovering from a stale socket
// file at the same path: when the bind fails but a probe dial shows no
// live listener behind the file, the debris is unlinked and the bind
// retried once. A path held by a live listener keeps the original
// error.
func listenUnix(path string) (net.Listener, error) {
	ln, err := net.Listen("unix", path)
	if err == nil || !staleSocket(path) {
		return ln, err
	}
	if rmErr := os.Remove(path); rmErr != nil {
		return nil, err
	}
	return net.Listen("unix", path)
}

// Stale-sweep bounds: rings are unlinked within the handshake, so any
// ring file past staleRingAge is debris; a socket file younger than
// staleSockAge is never probed — another rank bringing up concurrently
// has a window between bind (the file appears) and listen where a
// probe dial is refused, and only the age guard keeps that from
// reading as "stale". The probe count is capped so a littered shared
// tmp dir cannot stall a bring-up.
const (
	staleRingAge  = time.Hour
	staleSockAge  = time.Minute
	staleProbeMax = 64
)

// cleanStaleFiles sweeps SocketDir for debris left by SIGKILLed ranks:
// aged socket files nobody listens on, and ring files old enough that
// no live handshake can own them. Best-effort — errors are ignored,
// live files are never touched (the age guards keep anything a running
// bring-up might own, the probe keeps sockets with listeners).
func cleanStaleFiles(o Options) {
	dir := o.SocketDir
	if dir == "" {
		dir = os.TempDir()
	}
	socks, _ := filepath.Glob(filepath.Join(dir, "jsnc-*.sock"))
	probed := 0
	for _, p := range socks {
		if probed >= staleProbeMax {
			break
		}
		if fi, err := os.Stat(p); err != nil || time.Since(fi.ModTime()) < staleSockAge {
			continue
		}
		probed++
		if staleSocket(p) && os.Remove(p) == nil {
			logf(o, "rank %d: removed stale socket %s", o.Rank, p)
		}
	}
	rings, _ := filepath.Glob(filepath.Join(dir, "jsnc-*.ring"))
	for _, p := range rings {
		if fi, err := os.Stat(p); err == nil && time.Since(fi.ModTime()) > staleRingAge {
			if os.Remove(p) == nil {
				logf(o, "rank %d: removed stale ring %s", o.Rank, p)
			}
		}
	}
}

// sendUnit writes one header+payload wire unit.
func sendUnit(conn net.Conn, kind byte, payload []byte) error {
	return WriteFrame(conn, kind, payload)
}

// readUnit reads one wire unit and returns its kind and payload.
func readUnit(conn net.Conn) (byte, []byte, error) {
	return ReadFrame(conn)
}

// Rendezvous is the cluster bring-up service: it accepts one KindJoin
// per rank, validates cluster id, world size and rank uniqueness, and
// broadcasts the address map once every rank has reported in.
type Rendezvous struct {
	ln      net.Listener
	cluster string
	world   int

	done chan error
	once sync.Once
}

// StartRendezvous listens on addr (e.g. "127.0.0.1:0") and serves one
// cluster bring-up of the given world size in the background. Wait
// reports its outcome.
func StartRendezvous(addr, cluster string, world int) (*Rendezvous, error) {
	if world < 1 {
		return nil, fmt.Errorf("netcomm: rendezvous needs world >= 1 (got %d)", world)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netcomm: rendezvous listen: %w", err)
	}
	r := &Rendezvous{ln: ln, cluster: cluster, world: world, done: make(chan error, 1)}
	go r.serve()
	return r, nil
}

// Addr returns the rendezvous' listen address for node -join flags.
func (r *Rendezvous) Addr() string { return r.ln.Addr().String() }

// Wait blocks until the bring-up finished (all ranks joined and the
// address map went out) or failed, bounded by timeout.
func (r *Rendezvous) Wait(timeout time.Duration) error {
	select {
	case err := <-r.done:
		return err
	case <-time.After(timeout):
		r.Close()
		return fmt.Errorf("netcomm: rendezvous timed out after %v", timeout)
	}
}

// Close shuts the listener down, aborting an unfinished bring-up.
func (r *Rendezvous) Close() { r.once.Do(func() { r.ln.Close() }) }

// serve runs one bring-up: collect world joins, broadcast the map.
func (r *Rendezvous) serve() {
	defer r.Close()
	addrs := make([]PeerAddr, r.world)
	conns := make([]net.Conn, r.world)
	defer func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}()
	joined := 0
	for joined < r.world {
		conn, err := r.ln.Accept()
		if err != nil {
			r.done <- fmt.Errorf("netcomm: rendezvous accept: %w", err)
			return
		}
		conn.SetDeadline(time.Now().Add(defaultTimeout))
		refuse := func(why string) {
			_ = sendUnit(conn, KindAck, AppendAck(nil, Ack{OK: false, Detail: why}))
			conn.Close()
		}
		kind, payload, err := readUnit(conn)
		if err != nil {
			refuse(fmt.Sprintf("bad join unit: %v", err))
			continue
		}
		if kind != KindJoin {
			refuse(fmt.Sprintf("expected join, got %s", kindName(kind)))
			continue
		}
		j, err := ParseJoin(payload)
		if err != nil {
			refuse(err.Error())
			continue
		}
		switch {
		case j.Cluster != r.cluster:
			refuse(fmt.Sprintf("cluster %q, want %q", j.Cluster, r.cluster))
		case j.World != r.world:
			refuse(fmt.Sprintf("world %d, want %d", j.World, r.world))
		case j.Rank < 0 || j.Rank >= r.world:
			refuse(fmt.Sprintf("rank %d out of range [0,%d)", j.Rank, r.world))
		case conns[j.Rank] != nil:
			refuse(fmt.Sprintf("rank %d already joined", j.Rank))
		default:
			addrs[j.Rank] = PeerAddr{TCP: j.Addr, Unix: j.Unix, Host: j.Host, Shm: j.Shm}
			conns[j.Rank] = conn
			joined++
		}
	}
	peers := AppendPeers(nil, Peers{Addrs: addrs})
	for rank, conn := range conns {
		if err := sendUnit(conn, KindPeers, peers); err != nil {
			r.done <- fmt.Errorf("netcomm: rendezvous send peers to rank %d: %w", rank, err)
			return
		}
	}
	r.done <- nil
}

// JoinCtx is Join with cooperative cancellation: the context bounds the
// bring-up alongside Options.Timeout (an earlier context deadline
// tightens the timeout; cancellation returns ctx.Err() promptly). On a
// cancel that races the bring-up's completion, the freshly built
// transport is aborted so no peer mesh outlives the caller's interest.
func JoinCtx(ctx context.Context, o Options) (*Transport, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if dl, ok := ctx.Deadline(); ok {
		remain := time.Until(dl)
		if remain < time.Millisecond {
			// The deadline is due (the ctx.Err() check above can race it
			// by microseconds): keep the value positive, or Join would
			// reinterpret it as "unset" and fall back to the 60s default
			// — the background bring-up must stay deadline-bounded.
			remain = time.Millisecond
		}
		if o.Timeout <= 0 || remain < o.Timeout {
			o.Timeout = remain
		}
	}
	type joined struct {
		t   *Transport
		err error
	}
	ch := make(chan joined, 1)
	go func() {
		t, err := Join(o)
		ch <- joined{t, err}
	}()
	select {
	case j := <-ch:
		if j.err == nil {
			if cerr := ctx.Err(); cerr != nil {
				j.t.Abort()
				return nil, cerr
			}
		}
		return j.t, j.err
	case <-ctx.Done():
		// The bring-up keeps running in the background until its own
		// (deadline-bounded) timeout; a transport it eventually produces
		// is torn down so its connections and loops do not leak.
		go func() {
			if j := <-ch; j.t != nil {
				j.t.Abort()
			}
		}()
		return nil, ctx.Err()
	}
}

// meshListeners bundles a rank's peer-listeners: TCP always, plus the
// Unix-domain socket of the same-host fast path when available.
type meshListeners struct {
	tcp  net.Listener
	unix net.Listener // nil when the fast path is off
}

func (m meshListeners) all() []net.Listener {
	ls := []net.Listener{m.tcp}
	if m.unix != nil {
		ls = append(ls, m.unix)
	}
	return ls
}

// Join attaches this process to a cluster as one rank: start the
// peer-listeners, register with the rendezvous, receive the address
// map, build the peer mesh, and return the live transport.
func Join(o Options) (*Transport, error) {
	if o.World < 1 {
		return nil, fmt.Errorf("netcomm: world must be >= 1 (got %d)", o.World)
	}
	if o.Rank < 0 || o.Rank >= o.World {
		return nil, fmt.Errorf("netcomm: rank %d out of range [0,%d)", o.Rank, o.World)
	}
	if o.Rendezvous == "" {
		return nil, fmt.Errorf("netcomm: rendezvous address required")
	}
	if o.ListenAddr == "" {
		o.ListenAddr = "127.0.0.1:0"
	}
	if o.Timeout <= 0 {
		o.Timeout = defaultTimeout
	}
	if o.CloseTimeout <= 0 {
		o.CloseTimeout = defaultCloseTimeout
	}
	if o.Wire == WireShm && !shmSupported() {
		return nil, fmt.Errorf("netcomm: rank %d: wire=shm is not supported on this platform", o.Rank)
	}
	deadline := time.Now().Add(o.Timeout)

	tcpLn, err := net.Listen("tcp", o.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("netcomm: rank %d listen: %w", o.Rank, err)
	}
	lns := meshListeners{tcp: tcpLn}
	defer func() {
		for _, l := range lns.all() {
			l.Close() // a Unix listener unlinks its socket file on Close
		}
	}()

	self := PeerAddr{TCP: tcpLn.Addr().String()}
	if o.Wire != WireTCP {
		if o.HostID == "" {
			o.HostID = hostIdentity()
		}
		// The host identity is advertised regardless of listener state:
		// peers use it to recognize (and count) a co-located pair that
		// had to degrade because this rank published no socket.
		self.Host = o.HostID
		cleanStaleFiles(o)
		path, uerr := udsSocketPath(o.SocketDir)
		var ul net.Listener
		if uerr == nil {
			ul, uerr = listenUnix(path)
		}
		if uerr != nil {
			// WireAuto degrades to TCP-only; WireUDS and WireShm demanded
			// a fast path, so a missing listener is fatal.
			if o.Wire != WireAuto {
				return nil, fmt.Errorf("netcomm: rank %d unix listen: %w", o.Rank, uerr)
			}
			logf(o, "rank %d: unix listen failed (%v); co-located pairs dialing this rank degrade to tcp", o.Rank, uerr)
		} else {
			lns.unix = ul
			self.Unix = path
			self.Shm = shmSupported() && o.Wire != WireUDS
		}
	}

	addrs, err := register(o, self, deadline)
	if err != nil {
		return nil, err
	}

	t := &Transport{
		cluster:      o.Cluster,
		rank:         o.Rank,
		world:        o.World,
		peers:        make([]*peer, o.World),
		closeTimeout: o.CloseTimeout,
		m:            newNetMetrics(obs.Default()),
	}
	t.ep = &Endpoint{t: t, notify: make(chan struct{}, 1)}
	t.ep.oobCond = sync.NewCond(&t.ep.mu)

	conns, err := buildMesh(o, lns, addrs, deadline)
	if err != nil {
		for _, c := range conns {
			if c.conn != nil {
				c.conn.Close()
			}
			c.rings.close()
		}
		return nil, err
	}
	for rank, mc := range conns {
		if mc.conn == nil {
			continue
		}
		mc.conn.SetDeadline(time.Time{})
		p := &peer{rank: rank, conn: mc.conn, network: mc.network, rings: mc.rings, wdone: make(chan struct{})}
		p.cond = sync.NewCond(&p.mu)
		if p.rings != nil {
			p.rdWake = make(chan struct{}, 1)
			p.wrWake = make(chan struct{}, 1)
		}
		if mc.degraded {
			t.degraded++
		}
		t.peers[rank] = p
	}
	// Degradations are decided once at mesh build; fold them into the
	// process-wide counter here rather than per decision site.
	t.m.degraded.Add(int64(t.degraded))
	for _, p := range t.peers {
		if p == nil {
			continue
		}
		t.readWG.Add(1)
		if p.rings != nil {
			go t.shmReadLoop(p)
			go t.shmWriteLoop(p)
			go t.shmConnLoop(p)
		} else {
			go t.readLoop(p)
			go t.writeLoop(p)
		}
	}
	return t, nil
}

// register reports this rank to the rendezvous and returns the address
// map of the whole cluster.
func register(o Options, self PeerAddr, deadline time.Time) ([]PeerAddr, error) {
	conn, err := net.DialTimeout("tcp", o.Rendezvous, time.Until(deadline))
	if err != nil {
		return nil, fmt.Errorf("netcomm: rank %d dial rendezvous %s: %w", o.Rank, o.Rendezvous, err)
	}
	defer conn.Close()
	conn.SetDeadline(deadline)
	join := AppendJoin(nil, JoinRequest{
		Rank: o.Rank, World: o.World, Cluster: o.Cluster,
		Addr: self.TCP, Unix: self.Unix, Host: self.Host, Shm: self.Shm,
	})
	if err := sendUnit(conn, KindJoin, join); err != nil {
		return nil, fmt.Errorf("netcomm: rank %d send join: %w", o.Rank, err)
	}
	kind, payload, err := readUnit(conn)
	if err != nil {
		return nil, fmt.Errorf("netcomm: rank %d await peers: %w", o.Rank, err)
	}
	switch kind {
	case KindAck:
		a, perr := ParseAck(payload)
		if perr != nil {
			return nil, perr
		}
		return nil, fmt.Errorf("netcomm: rank %d refused by rendezvous: %s", o.Rank, a.Detail)
	case KindPeers:
		p, perr := ParsePeers(payload)
		if perr != nil {
			return nil, perr
		}
		if len(p.Addrs) != o.World {
			return nil, fmt.Errorf("netcomm: rendezvous sent %d addrs, want %d", len(p.Addrs), o.World)
		}
		return p.Addrs, nil
	default:
		return nil, fmt.Errorf("netcomm: rank %d: rendezvous answered with %s", o.Rank, kindName(kind))
	}
}

// dialTarget picks the physical wire for dialing a peer: the peer's
// Unix socket when both sides share a non-empty host identity (and the
// mode allows it), TCP otherwise. shm reports that the dialer should
// propose a ring upgrade on the socket; degraded reports that auto is
// already one tier below its aim (a co-located peer that published no
// socket). WireUDS/WireShm with a non-co-located peer is an error — the
// caller demanded a fast path.
func dialTarget(wire Wire, a PeerAddr, hostID string, shmOK bool) (network, addr string, shm, degraded bool, err error) {
	if wire != WireTCP && a.Unix != "" && hostID != "" && a.Host == hostID {
		shm = shmOK && a.Shm && wire != WireUDS
		if wire == WireShm && !shm {
			return "", "", false, false, fmt.Errorf("peer advertises no shm capability")
		}
		return "unix", a.Unix, shm, false, nil
	}
	if wire == WireUDS || wire == WireShm {
		return "", "", false, false, fmt.Errorf("peer host %q is not co-located with %q (or offers no unix socket)", a.Host, hostID)
	}
	degraded = wire == WireAuto && hostID != "" && a.Host == hostID && a.Unix == ""
	return "tcp", a.TCP, false, degraded, nil
}

// meshConn is one established pair connection: the socket, the mapped
// ring pair when the shm upgrade succeeded, the resulting tier, and
// whether auto had to settle below its aim for this pair.
type meshConn struct {
	conn     net.Conn
	rings    *ringPair // non-nil on the shm tier
	network  string    // "tcp", "unix" or "shm"
	degraded bool
}

// createRingPair creates the two ring files of a new shm pair (dialer
// side): tx carries dialer→acceptor, rx acceptor→dialer. Returns the
// mapped pair plus the file paths to send in the handshake.
func createRingPair(dir string, capBytes uint64) (*ringPair, []string, error) {
	txPath, err := ringFilePath(dir)
	if err != nil {
		return nil, nil, err
	}
	rxPath, err := ringFilePath(dir)
	if err != nil {
		return nil, nil, err
	}
	tx, err := createRing(txPath, capBytes)
	if err != nil {
		return nil, nil, err
	}
	rx, err := createRing(rxPath, capBytes)
	if err != nil {
		tx.close()
		os.Remove(txPath)
		return nil, nil, err
	}
	return &ringPair{tx: tx, rx: rx}, []string{txPath, rxPath}, nil
}

// acceptRings maps a dialer's proposed ring files (acceptor side; the
// dialer's tx is our rx and vice versa) and unlinks them: the mapping
// outlives the name, so past this point a SIGKILLed rank leaks no ring
// files.
func acceptRings(p Peer) (*ringPair, error) {
	rx, err := openRing(p.RingTx)
	if err != nil {
		return nil, err
	}
	tx, err := openRing(p.RingRx)
	if err != nil {
		rx.close()
		return nil, err
	}
	os.Remove(p.RingTx)
	os.Remove(p.RingRx)
	return &ringPair{tx: tx, rx: rx}, nil
}

// dialPeer establishes one outbound pair connection on the tier
// dialTarget picked. The WireAuto contract: a failed Unix dial (stale
// path, containers sharing a host identity but not a filesystem) must
// degrade this one pair to TCP, not abort the whole bring-up.
func dialPeer(o Options, to int, a PeerAddr, deadline time.Time) (meshConn, error) {
	network, addr, shm, degraded, err := dialTarget(o.Wire, a, o.HostID, shmSupported())
	if err != nil {
		return meshConn{}, fmt.Errorf("netcomm: rank %d dial rank %d: %w", o.Rank, to, err)
	}
	mc, err := dialPeerOn(o, to, network, addr, shm, deadline)
	if err != nil && network == "unix" && o.Wire == WireAuto {
		logf(o, "rank %d: unix dial to rank %d failed (%v); pair degrades to tcp", o.Rank, to, err)
		if mc, err = dialPeerOn(o, to, "tcp", a.TCP, false, deadline); err == nil {
			mc.degraded = true
		}
		return mc, err
	}
	mc.degraded = mc.degraded || degraded
	return mc, err
}

// dialPeerOn dials and handshakes one pair connection on an explicit
// network, proposing the ring upgrade when shm is set.
func dialPeerOn(o Options, to int, network, addr string, shm bool, deadline time.Time) (meshConn, error) {
	conn, err := net.DialTimeout(network, addr, time.Until(deadline))
	if err != nil {
		return meshConn{}, fmt.Errorf("netcomm: rank %d dial rank %d at %s %s: %w", o.Rank, to, network, addr, err)
	}
	conn.SetDeadline(deadline)
	hello := Peer{From: o.Rank, To: to, World: o.World, Cluster: o.Cluster}
	var rings *ringPair
	var ringPaths []string
	if shm {
		rings, ringPaths, err = createRingPair(o.SocketDir, ringCapacity(o.RingBytes))
		if err != nil {
			// Local ring trouble (unwritable dir, disk): auto keeps the
			// plain socket; forced shm is fatal.
			if o.Wire == WireShm {
				conn.Close()
				return meshConn{}, fmt.Errorf("netcomm: rank %d rings for rank %d: %w", o.Rank, to, err)
			}
			logf(o, "rank %d: ring create for rank %d failed (%v); pair degrades to unix", o.Rank, to, err)
		} else {
			hello.Shm = true
			hello.RingTx = ringPaths[0]
			hello.RingRx = ringPaths[1]
		}
	}
	dropRings := func() {
		rings.close()
		for _, p := range ringPaths {
			os.Remove(p)
		}
	}
	fail := func(err error) (meshConn, error) {
		conn.Close()
		dropRings()
		return meshConn{}, err
	}
	if err := sendUnit(conn, KindPeer, AppendPeer(nil, hello)); err != nil {
		return fail(fmt.Errorf("netcomm: rank %d handshake to rank %d: %w", o.Rank, to, err))
	}
	kind, payload, err := readUnit(conn)
	if err != nil {
		return fail(fmt.Errorf("netcomm: rank %d await ack from rank %d: %w", o.Rank, to, err))
	}
	if kind != KindAck {
		return fail(fmt.Errorf("netcomm: rank %d: rank %d answered with %s", o.Rank, to, kindName(kind)))
	}
	a, err := ParseAck(payload)
	if err != nil {
		return fail(err)
	}
	if !a.OK {
		return fail(fmt.Errorf("netcomm: rank %d refused by rank %d: %s", o.Rank, to, a.Detail))
	}
	if hello.Shm && a.Shm {
		// The acceptor mapped (and unlinked) the ring files: this pair
		// runs on shared memory, the socket stays as doorbell channel.
		return meshConn{conn: conn, rings: rings, network: "shm"}, nil
	}
	// Ring upgrade declined or never proposed: release our mapping and
	// files (the remove is a no-op if the acceptor unlinked first) and
	// keep the socket.
	dropRings()
	if o.Wire == WireShm {
		conn.Close()
		return meshConn{}, fmt.Errorf("netcomm: rank %d: rank %d declined the shm upgrade", o.Rank, to)
	}
	// Auto aimed at shm for this pair but settled for the plain socket.
	return meshConn{conn: conn, network: network, degraded: hello.Shm}, nil
}

// buildMesh establishes the per-pair connections: dial every lower rank,
// accept every higher one (on whichever listener the dialer picked).
// Returns the connections indexed by peer rank.
func buildMesh(o Options, lns meshListeners, addrs []PeerAddr, deadline time.Time) ([]meshConn, error) {
	conns := make([]meshConn, o.World)
	expect := o.World - 1 - o.Rank // higher ranks dial us

	// The abort path closes the listeners to unblock Accept, and the
	// in-handshake connection (if any) to unblock a readUnit in flight.
	var handshakeMu sync.Mutex
	var handshaking net.Conn
	aborted := false
	setHandshaking := func(c net.Conn) bool {
		handshakeMu.Lock()
		defer handshakeMu.Unlock()
		if aborted && c != nil {
			c.Close()
			return false
		}
		handshaking = c
		return true
	}
	abortAccept := func() {
		for _, l := range lns.all() {
			l.Close()
		}
		handshakeMu.Lock()
		aborted = true
		if handshaking != nil {
			handshaking.Close()
		}
		handshakeMu.Unlock()
	}

	// One pump per listener feeds raw connections to the (sequential)
	// handshake loop; a pump whose Accept fails — deadline, close, abort
	// — reports once and exits.
	connCh := make(chan net.Conn)
	pumpErr := make(chan error, 2)
	acceptDone := make(chan struct{})
	for _, l := range lns.all() {
		go func(l net.Listener) {
			if d, ok := l.(interface{ SetDeadline(time.Time) error }); ok {
				d.SetDeadline(deadline)
			}
			for {
				conn, err := l.Accept()
				if err != nil {
					pumpErr <- fmt.Errorf("netcomm: rank %d accept: %w", o.Rank, err)
					return
				}
				select {
				case connCh <- conn:
				case <-acceptDone:
					conn.Close()
					return
				}
			}
		}(l)
	}

	acceptErr := make(chan error, 1)
	go func() {
		defer close(acceptDone)
		accepted := 0
		for accepted < expect {
			var conn net.Conn
			select {
			case conn = <-connCh:
			case err := <-pumpErr:
				acceptErr <- err
				return
			}
			conn.SetDeadline(deadline)
			if !setHandshaking(conn) {
				acceptErr <- fmt.Errorf("netcomm: rank %d accept aborted", o.Rank)
				return
			}
			refuse := func(why string) {
				_ = sendUnit(conn, KindAck, AppendAck(nil, Ack{OK: false, Detail: why}))
				conn.Close()
			}
			kind, payload, err := readUnit(conn)
			if err != nil {
				refuse(fmt.Sprintf("bad peer unit: %v", err))
				continue
			}
			if kind != KindPeer {
				refuse(fmt.Sprintf("expected peer handshake, got %s", kindName(kind)))
				continue
			}
			p, err := ParsePeer(payload)
			if err != nil {
				refuse(err.Error())
				continue
			}
			switch {
			case p.Cluster != o.Cluster:
				refuse("wrong cluster")
			case p.To != o.Rank:
				refuse(fmt.Sprintf("handshake targets rank %d, this is rank %d", p.To, o.Rank))
			case p.World != o.World:
				refuse(fmt.Sprintf("world %d, want %d", p.World, o.World))
			case p.From <= o.Rank || p.From >= o.World:
				refuse(fmt.Sprintf("unexpected dialer rank %d", p.From))
			case conns[p.From].conn != nil:
				refuse(fmt.Sprintf("rank %d already connected", p.From))
			default:
				var rings *ringPair
				if p.Shm && o.Wire != WireTCP && o.Wire != WireUDS && shmSupported() {
					var rerr error
					if rings, rerr = acceptRings(p); rerr != nil {
						if o.Wire == WireShm {
							refuse(fmt.Sprintf("ring map failed: %v", rerr))
							acceptErr <- fmt.Errorf("netcomm: rank %d map rings from rank %d: %w", o.Rank, p.From, rerr)
							return
						}
						logf(o, "rank %d: ring map from rank %d failed (%v); pair degrades to unix", o.Rank, p.From, rerr)
					}
				}
				if o.Wire == WireShm && rings == nil {
					refuse("this rank requires the shm wire")
					acceptErr <- fmt.Errorf("netcomm: rank %d requires shm but rank %d proposed no rings", o.Rank, p.From)
					return
				}
				if err := sendUnit(conn, KindAck, AppendAck(nil, Ack{OK: true, Shm: rings != nil})); err != nil {
					conn.Close()
					rings.close()
					acceptErr <- fmt.Errorf("netcomm: rank %d ack to rank %d: %w", o.Rank, p.From, err)
					return
				}
				network := conn.LocalAddr().Network()
				degraded := false
				if o.Wire == WireAuto {
					// Acceptor-side degradation accounting: a ring proposal
					// that fell back to the socket, or a co-located dialer
					// that had to come in over TCP (our missing Unix
					// listener, or its failed Unix dial).
					degraded = (p.Shm && rings == nil) ||
						(network == "tcp" && addrs[p.From].Host != "" && addrs[p.From].Host == o.HostID)
				}
				if rings != nil {
					network = "shm"
				}
				conns[p.From] = meshConn{conn: conn, rings: rings, network: network, degraded: degraded}
				accepted++
			}
			setHandshaking(nil)
		}
		acceptErr <- nil
	}()

	var dialErr error
	for to := 0; to < o.Rank; to++ {
		mc, err := dialPeer(o, to, addrs[to], deadline)
		if err != nil {
			dialErr = err
			break
		}
		conns[to] = mc
	}
	if dialErr != nil {
		abortAccept()
		<-acceptErr
		return conns, dialErr
	}
	if err := <-acceptErr; err != nil {
		return conns, err
	}
	return conns, nil
}
