// Rendezvous and cluster bring-up: every rank starts its peer-listeners
// (TCP always, a Unix-domain socket when the same-host fast path is on),
// reports (cluster id, rank, world, listen addresses, host identity) to
// the rendezvous service, receives the full address map once the
// cluster is complete, and then establishes one direct connection per
// peer pair — rank i dials every rank j < i and accepts from every rank
// j > i, authenticated by a versioned KindPeer/KindAck handshake
// carrying the cluster id.
//
// Transport selection rule (per pair, decided by the dialer): a pair
// whose two ranks report the same non-empty host identity and whose
// target published a Unix-socket path connects over that socket; every
// other pair connects over TCP. WireTCP forces TCP everywhere; WireUDS
// requires the fast path and fails the bring-up for non-co-located
// pairs. Hybrid clusters therefore come up with co-located ranks on the
// fast path and remote ranks on TCP, automatically.
package netcomm

import (
	"context"
	"crypto/rand"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// defaultTimeout bounds the whole cluster bring-up of one Join call.
const defaultTimeout = 60 * time.Second

// defaultCloseTimeout bounds Close's wait for peers to drain.
const defaultCloseTimeout = 15 * time.Second

// Wire selects the physical wire of peer-pair connections.
type Wire int

const (
	// WireAuto (the default) takes the same-host fast path — a
	// Unix-domain socket — for co-located rank pairs and TCP for remote
	// ones. A node that cannot bind a Unix socket quietly falls back to
	// TCP-only.
	WireAuto Wire = iota
	// WireTCP forces TCP for every pair.
	WireTCP
	// WireUDS requires the fast path: the bring-up fails if a Unix
	// listener cannot be bound or a peer pair is not co-located.
	WireUDS
)

// ParseWire parses a -wire flag value: "auto" (or ""), "tcp", "uds".
func ParseWire(s string) (Wire, error) {
	switch s {
	case "", "auto":
		return WireAuto, nil
	case "tcp":
		return WireTCP, nil
	case "uds", "unix":
		return WireUDS, nil
	}
	return 0, fmt.Errorf("netcomm: unknown wire %q (want auto, tcp or uds)", s)
}

// String returns the flag spelling of a Wire value.
func (w Wire) String() string {
	switch w {
	case WireTCP:
		return "tcp"
	case WireUDS:
		return "uds"
	}
	return "auto"
}

// Options configures a node's attachment to a cluster.
type Options struct {
	// Cluster is the launch-scoped cluster id every member must present.
	Cluster string
	// Rank is this node's rank; World the total rank count.
	Rank, World int
	// Rendezvous is the host:port of the rendezvous service.
	Rendezvous string
	// ListenAddr is the address the TCP peer-listener binds (default
	// "127.0.0.1:0" — loopback, kernel-assigned port).
	ListenAddr string
	// Wire selects the physical wire per peer pair (default WireAuto:
	// Unix sockets for co-located pairs, TCP otherwise).
	Wire Wire
	// HostID overrides the node's host identity (hostname plus boot id
	// by default). Two ranks reporting equal identities are treated as
	// co-located. Tests use it to simulate hybrid clusters on one box.
	HostID string
	// SocketDir overrides the directory holding the Unix listener
	// socket (default os.TempDir()).
	SocketDir string
	// Timeout bounds the whole bring-up (default 60s).
	Timeout time.Duration
	// CloseTimeout bounds Close's in-flight drain (default 15s).
	CloseTimeout time.Duration
}

// hostIdentity derives this node's host identity: hostname qualified by
// the kernel boot id when available, so two containers sharing a
// hostname string but not a kernel do not get falsely co-located.
func hostIdentity() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "unknown-host"
	}
	if b, err := os.ReadFile("/proc/sys/kernel/random/boot_id"); err == nil {
		if id := strings.TrimSpace(string(b)); id != "" {
			return host + "/" + id
		}
	}
	return host
}

// udsSocketPath picks a fresh random socket path under dir. Random
// rather than derived: the path travels to peers via the rendezvous, so
// it needs no derivability, and cluster ids may contain characters (or
// lengths) unfit for a filesystem path.
func udsSocketPath(dir string) (string, error) {
	if dir == "" {
		dir = os.TempDir()
	}
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("netcomm: socket name: %w", err)
	}
	return filepath.Join(dir, fmt.Sprintf("jsnc-%x.sock", b)), nil
}

// sendUnit writes one header+payload wire unit.
func sendUnit(conn net.Conn, kind byte, payload []byte) error {
	buf := make([]byte, 0, HeaderSize+len(payload))
	buf = AppendHeader(buf, kind, len(payload))
	buf = append(buf, payload...)
	_, err := conn.Write(buf)
	return err
}

// readUnit reads one wire unit and returns its kind and payload.
func readUnit(conn net.Conn) (byte, []byte, error) {
	hdr := make([]byte, HeaderSize)
	if _, err := io.ReadFull(conn, hdr); err != nil {
		return 0, nil, err
	}
	kind, n, err := ParseHeader(hdr)
	if err != nil {
		return 0, nil, err
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(conn, payload); err != nil {
		return 0, nil, err
	}
	return kind, payload, nil
}

// Rendezvous is the cluster bring-up service: it accepts one KindJoin
// per rank, validates cluster id, world size and rank uniqueness, and
// broadcasts the address map once every rank has reported in.
type Rendezvous struct {
	ln      net.Listener
	cluster string
	world   int

	done chan error
	once sync.Once
}

// StartRendezvous listens on addr (e.g. "127.0.0.1:0") and serves one
// cluster bring-up of the given world size in the background. Wait
// reports its outcome.
func StartRendezvous(addr, cluster string, world int) (*Rendezvous, error) {
	if world < 1 {
		return nil, fmt.Errorf("netcomm: rendezvous needs world >= 1 (got %d)", world)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netcomm: rendezvous listen: %w", err)
	}
	r := &Rendezvous{ln: ln, cluster: cluster, world: world, done: make(chan error, 1)}
	go r.serve()
	return r, nil
}

// Addr returns the rendezvous' listen address for node -join flags.
func (r *Rendezvous) Addr() string { return r.ln.Addr().String() }

// Wait blocks until the bring-up finished (all ranks joined and the
// address map went out) or failed, bounded by timeout.
func (r *Rendezvous) Wait(timeout time.Duration) error {
	select {
	case err := <-r.done:
		return err
	case <-time.After(timeout):
		r.Close()
		return fmt.Errorf("netcomm: rendezvous timed out after %v", timeout)
	}
}

// Close shuts the listener down, aborting an unfinished bring-up.
func (r *Rendezvous) Close() { r.once.Do(func() { r.ln.Close() }) }

// serve runs one bring-up: collect world joins, broadcast the map.
func (r *Rendezvous) serve() {
	defer r.Close()
	addrs := make([]PeerAddr, r.world)
	conns := make([]net.Conn, r.world)
	defer func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}()
	joined := 0
	for joined < r.world {
		conn, err := r.ln.Accept()
		if err != nil {
			r.done <- fmt.Errorf("netcomm: rendezvous accept: %w", err)
			return
		}
		conn.SetDeadline(time.Now().Add(defaultTimeout))
		refuse := func(why string) {
			_ = sendUnit(conn, KindAck, AppendAck(nil, Ack{OK: false, Detail: why}))
			conn.Close()
		}
		kind, payload, err := readUnit(conn)
		if err != nil {
			refuse(fmt.Sprintf("bad join unit: %v", err))
			continue
		}
		if kind != KindJoin {
			refuse(fmt.Sprintf("expected join, got %s", kindName(kind)))
			continue
		}
		j, err := ParseJoin(payload)
		if err != nil {
			refuse(err.Error())
			continue
		}
		switch {
		case j.Cluster != r.cluster:
			refuse(fmt.Sprintf("cluster %q, want %q", j.Cluster, r.cluster))
		case j.World != r.world:
			refuse(fmt.Sprintf("world %d, want %d", j.World, r.world))
		case j.Rank < 0 || j.Rank >= r.world:
			refuse(fmt.Sprintf("rank %d out of range [0,%d)", j.Rank, r.world))
		case conns[j.Rank] != nil:
			refuse(fmt.Sprintf("rank %d already joined", j.Rank))
		default:
			addrs[j.Rank] = PeerAddr{TCP: j.Addr, Unix: j.Unix, Host: j.Host}
			conns[j.Rank] = conn
			joined++
		}
	}
	peers := AppendPeers(nil, Peers{Addrs: addrs})
	for rank, conn := range conns {
		if err := sendUnit(conn, KindPeers, peers); err != nil {
			r.done <- fmt.Errorf("netcomm: rendezvous send peers to rank %d: %w", rank, err)
			return
		}
	}
	r.done <- nil
}

// JoinCtx is Join with cooperative cancellation: the context bounds the
// bring-up alongside Options.Timeout (an earlier context deadline
// tightens the timeout; cancellation returns ctx.Err() promptly). On a
// cancel that races the bring-up's completion, the freshly built
// transport is aborted so no peer mesh outlives the caller's interest.
func JoinCtx(ctx context.Context, o Options) (*Transport, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if dl, ok := ctx.Deadline(); ok {
		remain := time.Until(dl)
		if remain < time.Millisecond {
			// The deadline is due (the ctx.Err() check above can race it
			// by microseconds): keep the value positive, or Join would
			// reinterpret it as "unset" and fall back to the 60s default
			// — the background bring-up must stay deadline-bounded.
			remain = time.Millisecond
		}
		if o.Timeout <= 0 || remain < o.Timeout {
			o.Timeout = remain
		}
	}
	type joined struct {
		t   *Transport
		err error
	}
	ch := make(chan joined, 1)
	go func() {
		t, err := Join(o)
		ch <- joined{t, err}
	}()
	select {
	case j := <-ch:
		if j.err == nil {
			if cerr := ctx.Err(); cerr != nil {
				j.t.Abort()
				return nil, cerr
			}
		}
		return j.t, j.err
	case <-ctx.Done():
		// The bring-up keeps running in the background until its own
		// (deadline-bounded) timeout; a transport it eventually produces
		// is torn down so its connections and loops do not leak.
		go func() {
			if j := <-ch; j.t != nil {
				j.t.Abort()
			}
		}()
		return nil, ctx.Err()
	}
}

// meshListeners bundles a rank's peer-listeners: TCP always, plus the
// Unix-domain socket of the same-host fast path when available.
type meshListeners struct {
	tcp  net.Listener
	unix net.Listener // nil when the fast path is off
}

func (m meshListeners) all() []net.Listener {
	ls := []net.Listener{m.tcp}
	if m.unix != nil {
		ls = append(ls, m.unix)
	}
	return ls
}

// Join attaches this process to a cluster as one rank: start the
// peer-listeners, register with the rendezvous, receive the address
// map, build the peer mesh, and return the live transport.
func Join(o Options) (*Transport, error) {
	if o.World < 1 {
		return nil, fmt.Errorf("netcomm: world must be >= 1 (got %d)", o.World)
	}
	if o.Rank < 0 || o.Rank >= o.World {
		return nil, fmt.Errorf("netcomm: rank %d out of range [0,%d)", o.Rank, o.World)
	}
	if o.Rendezvous == "" {
		return nil, fmt.Errorf("netcomm: rendezvous address required")
	}
	if o.ListenAddr == "" {
		o.ListenAddr = "127.0.0.1:0"
	}
	if o.Timeout <= 0 {
		o.Timeout = defaultTimeout
	}
	if o.CloseTimeout <= 0 {
		o.CloseTimeout = defaultCloseTimeout
	}
	deadline := time.Now().Add(o.Timeout)

	tcpLn, err := net.Listen("tcp", o.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("netcomm: rank %d listen: %w", o.Rank, err)
	}
	lns := meshListeners{tcp: tcpLn}
	defer func() {
		for _, l := range lns.all() {
			l.Close() // a Unix listener unlinks its socket file on Close
		}
	}()

	self := PeerAddr{TCP: tcpLn.Addr().String()}
	if o.Wire != WireTCP {
		if o.HostID == "" {
			o.HostID = hostIdentity()
		}
		path, uerr := udsSocketPath(o.SocketDir)
		var ul net.Listener
		if uerr == nil {
			ul, uerr = net.Listen("unix", path)
		}
		if uerr != nil {
			// WireAuto degrades to TCP-only; WireUDS demanded the fast
			// path, so a missing listener is fatal.
			if o.Wire == WireUDS {
				return nil, fmt.Errorf("netcomm: rank %d unix listen: %w", o.Rank, uerr)
			}
		} else {
			lns.unix = ul
			self.Unix = path
			self.Host = o.HostID
		}
	}

	addrs, err := register(o, self, deadline)
	if err != nil {
		return nil, err
	}

	t := &Transport{
		cluster:      o.Cluster,
		rank:         o.Rank,
		world:        o.World,
		peers:        make([]*peer, o.World),
		closeTimeout: o.CloseTimeout,
	}
	t.ep = &Endpoint{t: t, notify: make(chan struct{}, 1)}
	t.ep.oobCond = sync.NewCond(&t.ep.mu)

	conns, err := buildMesh(o, lns, addrs, deadline)
	if err != nil {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
		return nil, err
	}
	for rank, conn := range conns {
		if conn == nil {
			continue
		}
		conn.SetDeadline(time.Time{})
		p := &peer{rank: rank, conn: conn, network: conn.LocalAddr().Network(), wdone: make(chan struct{})}
		p.cond = sync.NewCond(&p.mu)
		t.peers[rank] = p
	}
	for _, p := range t.peers {
		if p != nil {
			t.readWG.Add(1)
			go t.readLoop(p)
			go t.writeLoop(p)
		}
	}
	return t, nil
}

// register reports this rank to the rendezvous and returns the address
// map of the whole cluster.
func register(o Options, self PeerAddr, deadline time.Time) ([]PeerAddr, error) {
	conn, err := net.DialTimeout("tcp", o.Rendezvous, time.Until(deadline))
	if err != nil {
		return nil, fmt.Errorf("netcomm: rank %d dial rendezvous %s: %w", o.Rank, o.Rendezvous, err)
	}
	defer conn.Close()
	conn.SetDeadline(deadline)
	join := AppendJoin(nil, JoinRequest{
		Rank: o.Rank, World: o.World, Cluster: o.Cluster,
		Addr: self.TCP, Unix: self.Unix, Host: self.Host,
	})
	if err := sendUnit(conn, KindJoin, join); err != nil {
		return nil, fmt.Errorf("netcomm: rank %d send join: %w", o.Rank, err)
	}
	kind, payload, err := readUnit(conn)
	if err != nil {
		return nil, fmt.Errorf("netcomm: rank %d await peers: %w", o.Rank, err)
	}
	switch kind {
	case KindAck:
		a, perr := ParseAck(payload)
		if perr != nil {
			return nil, perr
		}
		return nil, fmt.Errorf("netcomm: rank %d refused by rendezvous: %s", o.Rank, a.Detail)
	case KindPeers:
		p, perr := ParsePeers(payload)
		if perr != nil {
			return nil, perr
		}
		if len(p.Addrs) != o.World {
			return nil, fmt.Errorf("netcomm: rendezvous sent %d addrs, want %d", len(p.Addrs), o.World)
		}
		return p.Addrs, nil
	default:
		return nil, fmt.Errorf("netcomm: rank %d: rendezvous answered with %s", o.Rank, kindName(kind))
	}
}

// dialTarget picks the physical wire for dialing a peer: the peer's
// Unix socket when both sides share a non-empty host identity (and the
// mode allows it), TCP otherwise. WireUDS with a non-co-located peer is
// an error — the caller demanded the fast path.
func dialTarget(wire Wire, a PeerAddr, hostID string) (network, addr string, err error) {
	if wire != WireTCP && a.Unix != "" && hostID != "" && a.Host == hostID {
		return "unix", a.Unix, nil
	}
	if wire == WireUDS {
		return "", "", fmt.Errorf("peer host %q is not co-located with %q (or offers no unix socket)", a.Host, hostID)
	}
	return "tcp", a.TCP, nil
}

// buildMesh establishes the per-pair connections: dial every lower rank,
// accept every higher one (on whichever listener the dialer picked).
// Returns the connections indexed by peer rank.
func buildMesh(o Options, lns meshListeners, addrs []PeerAddr, deadline time.Time) ([]net.Conn, error) {
	conns := make([]net.Conn, o.World)
	expect := o.World - 1 - o.Rank // higher ranks dial us

	// The abort path closes the listeners to unblock Accept, and the
	// in-handshake connection (if any) to unblock a readUnit in flight.
	var handshakeMu sync.Mutex
	var handshaking net.Conn
	aborted := false
	setHandshaking := func(c net.Conn) bool {
		handshakeMu.Lock()
		defer handshakeMu.Unlock()
		if aborted && c != nil {
			c.Close()
			return false
		}
		handshaking = c
		return true
	}
	abortAccept := func() {
		for _, l := range lns.all() {
			l.Close()
		}
		handshakeMu.Lock()
		aborted = true
		if handshaking != nil {
			handshaking.Close()
		}
		handshakeMu.Unlock()
	}

	// One pump per listener feeds raw connections to the (sequential)
	// handshake loop; a pump whose Accept fails — deadline, close, abort
	// — reports once and exits.
	connCh := make(chan net.Conn)
	pumpErr := make(chan error, 2)
	acceptDone := make(chan struct{})
	for _, l := range lns.all() {
		go func(l net.Listener) {
			if d, ok := l.(interface{ SetDeadline(time.Time) error }); ok {
				d.SetDeadline(deadline)
			}
			for {
				conn, err := l.Accept()
				if err != nil {
					pumpErr <- fmt.Errorf("netcomm: rank %d accept: %w", o.Rank, err)
					return
				}
				select {
				case connCh <- conn:
				case <-acceptDone:
					conn.Close()
					return
				}
			}
		}(l)
	}

	acceptErr := make(chan error, 1)
	go func() {
		defer close(acceptDone)
		accepted := 0
		for accepted < expect {
			var conn net.Conn
			select {
			case conn = <-connCh:
			case err := <-pumpErr:
				acceptErr <- err
				return
			}
			conn.SetDeadline(deadline)
			if !setHandshaking(conn) {
				acceptErr <- fmt.Errorf("netcomm: rank %d accept aborted", o.Rank)
				return
			}
			refuse := func(why string) {
				_ = sendUnit(conn, KindAck, AppendAck(nil, Ack{OK: false, Detail: why}))
				conn.Close()
			}
			kind, payload, err := readUnit(conn)
			if err != nil {
				refuse(fmt.Sprintf("bad peer unit: %v", err))
				continue
			}
			if kind != KindPeer {
				refuse(fmt.Sprintf("expected peer handshake, got %s", kindName(kind)))
				continue
			}
			p, err := ParsePeer(payload)
			if err != nil {
				refuse(err.Error())
				continue
			}
			switch {
			case p.Cluster != o.Cluster:
				refuse("wrong cluster")
			case p.To != o.Rank:
				refuse(fmt.Sprintf("handshake targets rank %d, this is rank %d", p.To, o.Rank))
			case p.World != o.World:
				refuse(fmt.Sprintf("world %d, want %d", p.World, o.World))
			case p.From <= o.Rank || p.From >= o.World:
				refuse(fmt.Sprintf("unexpected dialer rank %d", p.From))
			case conns[p.From] != nil:
				refuse(fmt.Sprintf("rank %d already connected", p.From))
			default:
				if err := sendUnit(conn, KindAck, AppendAck(nil, Ack{OK: true})); err != nil {
					conn.Close()
					acceptErr <- fmt.Errorf("netcomm: rank %d ack to rank %d: %w", o.Rank, p.From, err)
					return
				}
				conns[p.From] = conn
				accepted++
			}
			setHandshaking(nil)
		}
		acceptErr <- nil
	}()

	var dialErr error
	for to := 0; to < o.Rank && dialErr == nil; to++ {
		network, addr, err := dialTarget(o.Wire, addrs[to], o.HostID)
		if err != nil {
			dialErr = fmt.Errorf("netcomm: rank %d dial rank %d: %w", o.Rank, to, err)
			break
		}
		conn, err := net.DialTimeout(network, addr, time.Until(deadline))
		if err != nil {
			dialErr = fmt.Errorf("netcomm: rank %d dial rank %d at %s %s: %w", o.Rank, to, network, addr, err)
			break
		}
		conn.SetDeadline(deadline)
		hello := AppendPeer(nil, Peer{From: o.Rank, To: to, World: o.World, Cluster: o.Cluster})
		if err := sendUnit(conn, KindPeer, hello); err != nil {
			conn.Close()
			dialErr = fmt.Errorf("netcomm: rank %d handshake to rank %d: %w", o.Rank, to, err)
			break
		}
		kind, payload, err := readUnit(conn)
		if err != nil {
			conn.Close()
			dialErr = fmt.Errorf("netcomm: rank %d await ack from rank %d: %w", o.Rank, to, err)
			break
		}
		if kind != KindAck {
			conn.Close()
			dialErr = fmt.Errorf("netcomm: rank %d: rank %d answered with %s", o.Rank, to, kindName(kind))
			break
		}
		a, err := ParseAck(payload)
		if err != nil {
			conn.Close()
			dialErr = err
			break
		}
		if !a.OK {
			conn.Close()
			dialErr = fmt.Errorf("netcomm: rank %d refused by rank %d: %s", o.Rank, to, a.Detail)
			break
		}
		conns[to] = conn
	}
	if dialErr != nil {
		abortAccept()
		<-acceptErr
		return conns, dialErr
	}
	if err := <-acceptErr; err != nil {
		return conns, err
	}
	return conns, nil
}
