package netcomm

// White-box tests of the failure paths the black-box cluster tests
// cannot reach: corrupt frames on an established connection, refused
// peer handshakes during mesh bring-up, and a rendezvous speaking the
// wrong protocol.

import (
	"encoding/binary"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// pipeTransport builds a minimal 2-rank transport whose single peer
// connection is one end of a net.Pipe, so a test can inject arbitrary
// bytes into the read loop.
func pipeTransport(t *testing.T) (*Transport, net.Conn) {
	t.Helper()
	server, client := net.Pipe()
	tr := &Transport{rank: 0, world: 2, peers: make([]*peer, 2), closeTimeout: 200 * time.Millisecond}
	tr.ep = &Endpoint{t: tr, notify: make(chan struct{}, 1)}
	tr.ep.oobCond = sync.NewCond(&tr.ep.mu)
	p := &peer{rank: 1, conn: server, wdone: make(chan struct{})}
	p.cond = sync.NewCond(&p.mu)
	tr.peers[1] = p
	tr.readWG.Add(1)
	go tr.readLoop(p)
	go tr.writeLoop(p)
	t.Cleanup(func() {
		client.Close()
		tr.Close()
	})
	return tr, client
}

func awaitFailure(t *testing.T, tr *Transport) error {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if err := tr.aliveErr(); err != nil {
			return err
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("transport never failed")
	return nil
}

func TestReadLoopRejectsCorruptFrames(t *testing.T) {
	cases := []struct {
		name string
		feed func(c net.Conn)
		want string
	}{
		{"bad magic", func(c net.Conn) {
			c.Write([]byte{0, 0, Version, KindData, 0, 0, 0, 0})
		}, "bad magic"},
		{"version mismatch", func(c net.Conn) {
			h := AppendHeader(nil, KindData, 0)
			h[2] = Version + 3
			c.Write(h)
		}, "unsupported wire version"},
		{"handshake kind mid-stream", func(c net.Conn) {
			c.Write(AppendHeader(nil, KindJoin, 0))
		}, "unexpected join frame"},
		{"oversized length", func(c net.Conn) {
			h := AppendHeader(nil, KindData, 0)
			binary.LittleEndian.PutUint32(h[4:], MaxFrameBytes+7)
			c.Write(h)
		}, "exceeds cap"},
		{"truncated payload", func(c net.Conn) {
			c.Write(AppendHeader(nil, KindData, 100))
			c.Write([]byte{1, 2, 3})
			c.Close()
		}, "payload"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr, client := pipeTransport(t)
			go tc.feed(client)
			err := awaitFailure(t, tr)
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("failure %q does not mention %q", err, tc.want)
			}
			// Fail-fast: subsequent operations surface the same error.
			if serr := tr.ep.Send(1, []byte{1}); serr == nil {
				t.Fatal("send succeeded on failed transport")
			}
		})
	}
}

func TestEndpointAccessors(t *testing.T) {
	tr, client := pipeTransport(t)
	if tr.NumRanks() != 2 || tr.Rank() != 0 {
		t.Fatalf("NumRanks/Rank = %d/%d", tr.NumRanks(), tr.Rank())
	}
	if lr := tr.LocalRanks(); len(lr) != 1 || lr[0] != 0 {
		t.Fatalf("LocalRanks = %v", lr)
	}
	if tr.Endpoint(1) != nil {
		t.Fatal("remote endpoint not nil")
	}
	if tr.ep.Pending() != 0 {
		t.Fatal("fresh endpoint has pending messages")
	}
	// A valid frame flows into the inbox and Pending sees it.
	frame := AppendHeader(nil, KindData, 3)
	frame = append(frame, 1, 2, 3)
	go client.Write(frame)
	deadline := time.Now().Add(5 * time.Second)
	for tr.ep.Pending() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if tr.ep.Pending() != 1 {
		t.Fatalf("Pending = %d", tr.ep.Pending())
	}
	if err := tr.ep.Send(5, nil); err == nil {
		t.Fatal("send to out-of-range rank succeeded")
	}
	for _, k := range []byte{KindData, KindOOB, KindJoin, KindPeer, KindAck, KindPeers, KindBye, 0x77} {
		if kindName(k) == "" {
			t.Fatal("empty kind name")
		}
	}
}

func TestRendezvousWaitTimeout(t *testing.T) {
	rz, err := StartRendezvous("127.0.0.1:0", "nobody-joins", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := rz.Wait(50 * time.Millisecond); err == nil {
		t.Fatal("Wait returned nil with no ranks joined")
	}
}

// TestBuildMeshAcceptRefusals drives the accept side of the mesh
// bring-up directly: garbage, wrong kinds and wrong targets are refused
// without aborting, and a subsequent valid handshake still lands.
func TestBuildMeshAcceptRefusals(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	o := Options{Cluster: "mesh", Rank: 0, World: 2}
	deadline := time.Now().Add(20 * time.Second)
	done := make(chan error, 1)
	var conns []meshConn
	go func() {
		cs, err := buildMesh(o, meshListeners{tcp: ln}, []PeerAddr{{}, {}}, deadline)
		conns = cs
		done <- err
	}()

	dial := func() net.Conn {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	expectRefusal := func(c net.Conn, detail string) {
		t.Helper()
		kind, payload, err := readUnit(c)
		if err != nil {
			t.Fatalf("no refusal ack: %v", err)
		}
		if kind != KindAck {
			t.Fatalf("got %s, want refusal ack", kindName(kind))
		}
		a, err := ParseAck(payload)
		if err != nil || a.OK {
			t.Fatalf("ack = %+v, %v", a, err)
		}
		if detail != "" && !strings.Contains(a.Detail, detail) {
			t.Fatalf("refusal %q does not mention %q", a.Detail, detail)
		}
		c.Close()
	}

	// Garbage bytes.
	c := dial()
	c.Write([]byte{9, 9, 9, 9, 9, 9, 9, 9})
	expectRefusal(c, "bad peer unit")
	// A join where a peer handshake belongs.
	c = dial()
	sendUnit(c, KindJoin, AppendJoin(nil, JoinRequest{Rank: 1, World: 2, Cluster: "mesh", Addr: "x"}))
	expectRefusal(c, "expected peer handshake")
	// Wrong cluster.
	c = dial()
	sendUnit(c, KindPeer, AppendPeer(nil, Peer{From: 1, To: 0, World: 2, Cluster: "other"}))
	expectRefusal(c, "wrong cluster")
	// Wrong target rank.
	c = dial()
	sendUnit(c, KindPeer, AppendPeer(nil, Peer{From: 1, To: 1, World: 2, Cluster: "mesh"}))
	expectRefusal(c, "targets rank")
	// Wrong world.
	c = dial()
	sendUnit(c, KindPeer, AppendPeer(nil, Peer{From: 1, To: 0, World: 3, Cluster: "mesh"}))
	expectRefusal(c, "world")
	// Dialer rank out of range (<= acceptor).
	c = dial()
	sendUnit(c, KindPeer, AppendPeer(nil, Peer{From: 0, To: 0, World: 2, Cluster: "mesh"}))
	expectRefusal(c, "unexpected dialer rank")

	// Finally a valid handshake completes the mesh.
	c = dial()
	sendUnit(c, KindPeer, AppendPeer(nil, Peer{From: 1, To: 0, World: 2, Cluster: "mesh"}))
	kind, payload, err := readUnit(c)
	if err != nil || kind != KindAck {
		t.Fatalf("valid handshake: %v %v", kindName(kind), err)
	}
	if a, _ := ParseAck(payload); !a.OK {
		t.Fatalf("valid handshake refused: %+v", a)
	}
	if err := <-done; err != nil {
		t.Fatalf("buildMesh: %v", err)
	}
	c.Close()
	for _, pc := range conns {
		if pc.conn != nil {
			pc.conn.Close()
		}
	}
}

// TestBuildMeshDialRefused covers the dial side: the peer answers the
// handshake with a refusal and buildMesh aborts with its detail.
func TestBuildMeshDialRefused(t *testing.T) {
	peerLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer peerLn.Close()
	go func() {
		c, err := peerLn.Accept()
		if err != nil {
			return
		}
		readUnit(c)
		sendUnit(c, KindAck, AppendAck(nil, Ack{OK: false, Detail: "not today"}))
		c.Close()
	}()
	myLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer myLn.Close()
	o := Options{Cluster: "mesh", Rank: 1, World: 2}
	_, err = buildMesh(o, meshListeners{tcp: myLn}, []PeerAddr{{TCP: peerLn.Addr().String()}, {}}, time.Now().Add(10*time.Second))
	if err == nil || !strings.Contains(err.Error(), "not today") {
		t.Fatalf("dial refusal not surfaced: %v", err)
	}
}

// TestRegisterProtocolErrors covers a rendezvous answering the join with
// the wrong kind or a malformed peer list.
func TestRegisterProtocolErrors(t *testing.T) {
	serve := func(t *testing.T, reply func(c net.Conn)) string {
		t.Helper()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		go func() {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			readUnit(c)
			reply(c)
			c.Close()
		}()
		return ln.Addr().String()
	}
	o := Options{Cluster: "c", Rank: 0, World: 2, Timeout: 10 * time.Second}
	deadline := time.Now().Add(10 * time.Second)

	addr := serve(t, func(c net.Conn) { sendUnit(c, KindData, []byte("?")) })
	o.Rendezvous = addr
	if _, err := register(o, PeerAddr{TCP: "x"}, deadline); err == nil || !strings.Contains(err.Error(), "answered with data") {
		t.Fatalf("wrong-kind answer: %v", err)
	}

	addr = serve(t, func(c net.Conn) {
		sendUnit(c, KindPeers, AppendPeers(nil, Peers{Addrs: []PeerAddr{{TCP: "only-one"}}}))
	})
	o.Rendezvous = addr
	if _, err := register(o, PeerAddr{TCP: "x"}, deadline); err == nil || !strings.Contains(err.Error(), "want 2") {
		t.Fatalf("short peer list: %v", err)
	}

	addr = serve(t, func(c net.Conn) { sendUnit(c, KindAck, AppendAck(nil, Ack{OK: false, Detail: "go away"})) })
	o.Rendezvous = addr
	if _, err := register(o, PeerAddr{TCP: "x"}, deadline); err == nil || !strings.Contains(err.Error(), "go away") {
		t.Fatalf("refusal detail lost: %v", err)
	}
}

// stubAddr/failingConn: a net.Conn whose writes fail (optionally after a
// byte budget), for driving the writeLoop's failure paths.
type stubAddr struct{}

func (stubAddr) Network() string { return "stub" }
func (stubAddr) String() string  { return "stub" }

type failingConn struct {
	mu     sync.Mutex
	budget int // bytes accepted before writes start failing
	closed bool
	ch     chan struct{}
}

func newFailingConn(budget int) *failingConn {
	return &failingConn{budget: budget, ch: make(chan struct{})}
}

func (c *failingConn) Read(b []byte) (int, error) { <-c.ch; return 0, errClosedStub }

func (c *failingConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.budget >= len(b) {
		c.budget -= len(b)
		return len(b), nil
	}
	n := c.budget
	c.budget = 0
	return n, errWireTorn
}

func (c *failingConn) Close() error {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		close(c.ch)
	}
	c.mu.Unlock()
	return nil
}

func (c *failingConn) LocalAddr() net.Addr                { return stubAddr{} }
func (c *failingConn) RemoteAddr() net.Addr               { return stubAddr{} }
func (c *failingConn) SetDeadline(t time.Time) error      { return nil }
func (c *failingConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *failingConn) SetWriteDeadline(t time.Time) error { return nil }

var (
	errWireTorn   = fmt.Errorf("wire torn")
	errClosedStub = fmt.Errorf("stub closed")
)

// writerTransport builds a 2-rank transport with only the write loop
// running against the given connection.
func writerTransport(t *testing.T, conn net.Conn) *Transport {
	t.Helper()
	tr := &Transport{rank: 0, world: 2, peers: make([]*peer, 2), closeTimeout: 500 * time.Millisecond}
	tr.ep = &Endpoint{t: tr, notify: make(chan struct{}, 1)}
	tr.ep.oobCond = sync.NewCond(&tr.ep.mu)
	p := &peer{rank: 1, conn: conn, network: "stub", wdone: make(chan struct{})}
	p.cond = sync.NewCond(&p.mu)
	tr.peers[1] = p
	go tr.writeLoop(p)
	t.Cleanup(func() { tr.Close() })
	return tr
}

// TestWireStatsNotCountedOnFailedWrite pins the accounting bugfix: a
// frame that never reached the wire must not show up in FramesSent or
// BytesOut.
func TestWireStatsNotCountedOnFailedWrite(t *testing.T) {
	tr := writerTransport(t, newFailingConn(0))
	if err := tr.ep.Send(1, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	err := awaitFailure(t, tr)
	if !strings.Contains(err.Error(), "write to rank 1") {
		t.Fatalf("failure %q does not mention the failed write", err)
	}
	if ws := tr.WireStats(); ws.FramesSent != 0 || ws.BytesOut != 0 {
		t.Fatalf("failed write counted as sent: %+v", ws)
	}
}

// TestWireStatsPartialBatch: a writev that dies mid-batch counts exactly
// the frames that fully reached the wire.
func TestWireStatsPartialBatch(t *testing.T) {
	const payload = 64
	// Budget admits the first frame plus the second frame's header only.
	tr := writerTransport(t, newFailingConn(2*HeaderSize+payload))
	p := tr.peers[1]
	p.mu.Lock()
	p.outq = append(p.outq,
		wireMsg{kind: KindData, payload: make([]byte, payload)},
		wireMsg{kind: KindData, payload: make([]byte, payload)})
	p.cond.Signal()
	p.mu.Unlock()
	awaitFailure(t, tr)
	ws := tr.WireStats()
	if ws.FramesSent != 1 || ws.BytesOut != int64(HeaderSize+payload) {
		t.Fatalf("partial batch stats = %+v, want 1 frame / %d bytes", ws, HeaderSize+payload)
	}
}

func TestCompleteFrames(t *testing.T) {
	batch := []wireMsg{
		{kind: KindData, payload: make([]byte, 10)},
		{kind: KindData, payload: make([]byte, 20)},
	}
	sz0, sz1 := int64(HeaderSize+10), int64(HeaderSize+20)
	cases := []struct {
		written, frames, bytes int64
	}{
		{0, 0, 0},
		{sz0 - 1, 0, 0},
		{sz0, 1, sz0},
		{sz0 + sz1 - 1, 1, sz0},
		{sz0 + sz1, 2, sz0 + sz1},
	}
	for _, c := range cases {
		f, b := completeFrames(batch, c.written)
		if f != c.frames || b != c.bytes {
			t.Errorf("completeFrames(%d) = %d frames/%d bytes, want %d/%d", c.written, f, b, c.frames, c.bytes)
		}
	}
}

// TestByeWriteFailureRecorded pins the clean-shutdown bugfix: a Bye that
// never reaches the peer is a real failure (the peer will report a fake
// crash), so the transport must record it instead of pretending the
// close was clean.
func TestByeWriteFailureRecorded(t *testing.T) {
	tr := writerTransport(t, newFailingConn(0))
	tr.Close()
	err := tr.aliveErr()
	if err == nil || !strings.Contains(err.Error(), "shutdown bye to rank 1") {
		t.Fatalf("lost bye not recorded: %v", err)
	}
}

// TestNetEndpointClearsQueueSlots pins the retention bugfix on the
// netcomm endpoint: popped queue slots must not keep referencing the
// consumed payloads.
func TestNetEndpointClearsQueueSlots(t *testing.T) {
	tr := &Transport{rank: 0, world: 2, peers: make([]*peer, 2)}
	tr.ep = &Endpoint{t: tr, notify: make(chan struct{}, 1)}
	tr.ep.oobCond = sync.NewCond(&tr.ep.mu)
	e := tr.ep
	const n = 8
	for i := 0; i < n; i++ {
		e.deliver(1, []byte{byte(i)}, false)
		e.deliver(1, []byte{byte(i)}, true)
	}
	e.mu.Lock()
	backing, oobBacking := e.queue[:n:n], e.oobQueue[:n:n]
	e.mu.Unlock()
	for i := 0; i < n; i++ {
		if _, ok := e.TryRecv(); !ok {
			t.Fatalf("message %d missing", i)
		}
		if _, err := e.RecvOOB(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if backing[i].Data != nil {
			t.Fatalf("data-lane slot %d still pins its payload after TryRecv", i)
		}
		if oobBacking[i].Data != nil {
			t.Fatalf("oob slot %d still pins its payload after RecvOOB", i)
		}
	}
}

// TestDialTarget pins the three-tier transport-selection rule.
func TestDialTarget(t *testing.T) {
	co := PeerAddr{TCP: "127.0.0.1:1", Unix: "/tmp/x.sock", Host: "hostA", Shm: true}
	coNoShm := PeerAddr{TCP: "127.0.0.1:1", Unix: "/tmp/x.sock", Host: "hostA"}
	coNoUnix := PeerAddr{TCP: "127.0.0.1:1", Host: "hostA"}
	remote := PeerAddr{TCP: "127.0.0.1:2", Host: "hostB", Shm: true}
	cases := []struct {
		name     string
		wire     Wire
		addr     PeerAddr
		hostID   string
		shmOK    bool
		network  string
		shm      bool
		degraded bool
		wantErr  bool
	}{
		{name: "auto co-located", wire: WireAuto, addr: co, hostID: "hostA", shmOK: true, network: "unix", shm: true},
		{name: "auto co-located peer without shm", wire: WireAuto, addr: coNoShm, hostID: "hostA", shmOK: true, network: "unix"},
		{name: "auto co-located local without shm", wire: WireAuto, addr: co, hostID: "hostA", network: "unix"},
		{name: "auto remote", wire: WireAuto, addr: remote, hostID: "hostA", shmOK: true, network: "tcp"},
		{name: "auto co-located no unix socket", wire: WireAuto, addr: coNoUnix, hostID: "hostA", shmOK: true, network: "tcp", degraded: true},
		{name: "auto empty host id", wire: WireAuto, addr: co, hostID: "", shmOK: true, network: "tcp"},
		{name: "tcp forced", wire: WireTCP, addr: co, hostID: "hostA", shmOK: true, network: "tcp"},
		{name: "uds co-located skips shm", wire: WireUDS, addr: co, hostID: "hostA", shmOK: true, network: "unix"},
		{name: "uds remote", wire: WireUDS, addr: remote, hostID: "hostA", shmOK: true, wantErr: true},
		{name: "shm co-located", wire: WireShm, addr: co, hostID: "hostA", shmOK: true, network: "unix", shm: true},
		{name: "shm peer without capability", wire: WireShm, addr: coNoShm, hostID: "hostA", shmOK: true, wantErr: true},
		{name: "shm remote", wire: WireShm, addr: remote, hostID: "hostA", shmOK: true, wantErr: true},
	}
	for _, c := range cases {
		network, addr, shm, degraded, err := dialTarget(c.wire, c.addr, c.hostID, c.shmOK)
		if c.wantErr {
			if err == nil {
				t.Errorf("%s: no error", c.name)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if network != c.network || shm != c.shm || degraded != c.degraded {
			t.Errorf("%s: (network, shm, degraded) = (%q, %v, %v), want (%q, %v, %v)",
				c.name, network, shm, degraded, c.network, c.shm, c.degraded)
		}
		want := c.addr.TCP
		if network == "unix" {
			want = c.addr.Unix
		}
		if addr != want {
			t.Errorf("%s: addr %q, want %q", c.name, addr, want)
		}
	}
}

func TestParseWire(t *testing.T) {
	for s, w := range map[string]Wire{"": WireAuto, "auto": WireAuto, "tcp": WireTCP, "uds": WireUDS, "unix": WireUDS, "shm": WireShm} {
		got, err := ParseWire(s)
		if err != nil || got != w {
			t.Errorf("ParseWire(%q) = %v, %v", s, got, err)
		}
		if got.String() == "" {
			t.Errorf("Wire(%v).String() empty", got)
		}
	}
	if _, err := ParseWire("carrier-pigeon"); err == nil {
		t.Error("bogus wire accepted")
	}
}
