//go:build unix

package netcomm_test

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"jsweep/internal/comm"
	"jsweep/internal/commtest"
	"jsweep/internal/netcomm"
)

// shmBackend runs every rank pair over shared-memory rings: WireShm
// forces the ring tier, so a pair settling for a socket would fail the
// bring-up rather than silently weaken the suite.
func shmBackend() commtest.Backend {
	return commtest.Backend{Name: "shm", New: func(t testing.TB, n int) ([]comm.Endpoint, func() error) {
		trs, eps, closeAll := startClusterOpts(t, n, func(_ int, o *netcomm.Options) {
			o.Wire = netcomm.WireShm
		})
		for r, tr := range trs {
			if n > 1 && tr.ShmPeers() != n-1 {
				t.Fatalf("rank %d: %d of %d peers on the shm tier", r, tr.ShmPeers(), n-1)
			}
		}
		return eps, closeAll
	}}
}

func TestShmConformance(t *testing.T) { commtest.RunConformance(t, shmBackend()) }

func TestShmStress(t *testing.T) { commtest.RunStress(t, shmBackend()) }

// TestHybridSelection pins the three-tier per-pair transport selection:
// with WireAuto, co-located shm-capable pairs ride shared-memory rings,
// co-located pairs with a ring-less side keep Unix sockets, cross-host
// pairs keep TCP — and messages flow over all three tiers at once.
// Rank 2 forces WireUDS, so its pairs cap out at the socket tier without
// counting as degraded (forced modes never aim higher).
func TestHybridSelection(t *testing.T) {
	hosts := []string{"hostA", "hostA", "hostA", "hostB"}
	wires := []netcomm.Wire{netcomm.WireAuto, netcomm.WireAuto, netcomm.WireUDS, netcomm.WireAuto}
	trs, eps, closeAll := startClusterOpts(t, 4, func(r int, o *netcomm.Options) {
		o.Wire = wires[r]
		o.HostID = hosts[r]
	})
	defer closeAll()

	want := [4][4]string{
		{"", "shm", "unix", "tcp"},
		{"shm", "", "unix", "tcp"},
		{"unix", "unix", "", "tcp"},
		{"tcp", "tcp", "tcp", ""},
	}
	for me := range want {
		for peer, network := range want[me] {
			if got := trs[me].PeerNetwork(peer); got != network {
				t.Errorf("rank %d -> rank %d over %q, want %q", me, peer, got, network)
			}
		}
	}
	for r, wantFast := range []int{2, 2, 2, 0} {
		if got := trs[r].FastPeers(); got != wantFast {
			t.Errorf("rank %d FastPeers = %d, want %d", r, got, wantFast)
		}
	}
	for r, wantShm := range []int{1, 1, 0, 0} {
		if got := trs[r].ShmPeers(); got != wantShm {
			t.Errorf("rank %d ShmPeers = %d, want %d", r, got, wantShm)
		}
	}
	for r, tr := range trs {
		if got := tr.DegradedPairs(); got != 0 {
			t.Errorf("rank %d DegradedPairs = %d, want 0", r, got)
		}
	}

	// Messages cross all three wires into rank 1.
	if err := eps[0].Send(1, []byte("via-shm")); err != nil {
		t.Fatal(err)
	}
	if err := eps[2].Send(1, []byte("via-uds")); err != nil {
		t.Fatal(err)
	}
	if err := eps[3].Send(1, []byte("via-tcp")); err != nil {
		t.Fatal(err)
	}
	got := map[int]string{}
	deadline := time.Now().Add(20 * time.Second)
	for len(got) < 3 && time.Now().Before(deadline) {
		if m, ok := eps[1].TryRecv(); ok {
			got[m.From] = string(m.Data)
			continue
		}
		select {
		case <-eps[1].Notify():
		case <-time.After(time.Millisecond):
		}
	}
	if got[0] != "via-shm" || got[2] != "via-uds" || got[3] != "via-tcp" {
		t.Fatalf("hybrid delivery = %v", got)
	}
}

// TestListenDegradation pins the listen-side WireAuto contract: a rank
// whose Unix listener cannot be bound still comes up, the degradation
// is logged, and both sides of the co-located pair count it — one
// directed pair each, so the cluster-wide sum is 2.
func TestListenDegradation(t *testing.T) {
	var logs [2]bytes.Buffer
	trs, eps, closeAll := startClusterOpts(t, 2, func(r int, o *netcomm.Options) {
		o.Wire = netcomm.WireAuto
		o.HostID = "same-host"
		o.Log = &logs[r]
		if r == 0 {
			// A socket dir that does not exist: the Unix bind fails, auto
			// must degrade this rank's co-located pairs to TCP.
			o.SocketDir = filepath.Join(t.TempDir(), "missing")
		}
	})
	defer closeAll()

	for me, peer := range []int{1, 0} {
		if got := trs[me].PeerNetwork(peer); got != "tcp" {
			t.Errorf("rank %d -> rank %d over %q, want %q", me, peer, got, "tcp")
		}
	}
	if got := trs[0].DegradedPairs() + trs[1].DegradedPairs(); got != 2 {
		t.Errorf("cluster DegradedPairs sum = %d, want 2", got)
	}
	if !strings.Contains(logs[0].String(), "unix listen failed") {
		t.Errorf("rank 0 log lacks the listen warning:\n%s", logs[0].String())
	}

	// The degraded pair still carries traffic.
	if err := eps[1].Send(0, []byte("over-tcp")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		if m, ok := eps[0].TryRecv(); ok {
			if string(m.Data) != "over-tcp" {
				t.Fatalf("got %q", m.Data)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("message never arrived over the degraded pair")
		}
		select {
		case <-eps[0].Notify():
		case <-time.After(time.Millisecond):
		}
	}
}
