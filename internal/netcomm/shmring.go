// Shared-memory ring wire: the third (fastest) tier of the per-pair
// transport selection. A co-located pair communicates through two mmap'd
// single-producer/single-consumer byte rings — one per direction — so a
// frame crosses ranks with two memcpys and zero syscalls in steady
// state. The dialer creates both ring files under SocketDir during the
// peer handshake; the acceptor maps and immediately unlinks them, so a
// SIGKILL'd rank leaks ring files only during the handshake window.
//
// Progress signaling is futex-free spin-then-park: a side that finds the
// ring empty (reader) or full (writer) spins briefly, publishes a parked
// flag in the ring header, re-checks, and then parks on a channel. The
// opposite side checks the flag after every cursor advance and, when it
// was set, sends a one-byte KindWake frame over the retained Unix-socket
// connection — the doorbell. The same connection carries the final
// KindBye, preserving the transport's clean-shutdown protocol: ring data
// is published (head store) before the Bye write syscall, so everything
// sent before Close is readable when the Bye arrives.
//
// The buffer-ownership contract of the socket wires holds unchanged:
// outbound pooled payloads are recycled into the comm pool right after
// they are copied into the ring (the ring slot, not the pool buffer, is
// what crosses the process boundary), and inbound data-lane payloads are
// decoded into fresh pool buffers that the runtime's consumer recycles.
//
// Memory ordering: head and tail are sync/atomic values on the shared
// mapping. The producer stores head only after the payload copy, the
// consumer stores tail only after copying data out, and each side only
// reads the opposite cursor — the standard SPSC acquire/release pairing,
// which the Go race detector also recognizes as happens-before.
package netcomm

import (
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"time"

	"jsweep/internal/comm"
)

const (
	// ringMagic marks a ring file ("JSRG").
	ringMagic = uint32(0x4753524A)
	// ringVersion is the ring header layout version.
	ringVersion = uint32(1)
	// ringHdrBytes is the control block preceding the data region: magic,
	// version and capacity up front, then each cursor and parked flag on
	// its own 64-byte cache line to keep producer and consumer from
	// false-sharing.
	ringHdrBytes = 512
	// Header field offsets (bytes from the start of the mapping).
	ringOffMagic      = 0
	ringOffVersion    = 4
	ringOffCap        = 8
	ringOffHead       = 64  // producer cursor (total bytes written)
	ringOffConsParked = 128 // consumer's "wake me" flag
	ringOffTail       = 192 // consumer cursor (total bytes read)
	ringOffProdParked = 256 // producer's "wake me" flag

	// defaultRingBytes is the per-direction data capacity.
	defaultRingBytes = 1 << 20
	// minRingBytes / maxRingBytes bound Options.RingBytes.
	minRingBytes = 4 << 10
	maxRingBytes = 1 << 30

	// ringSpin is how many empty/full polls a side burns before parking;
	// sized so a ping-pong partner that answers within tens of
	// microseconds is caught without ever paying a doorbell round-trip.
	ringSpin = 8192
	// ringParkInterval bounds one park: a belt-and-braces re-check
	// against a lost doorbell, cheap because a parked side is idle.
	ringParkInterval = time.Millisecond
)

// Doorbell wake bytes (KindWake payload).
const (
	wakeData  = byte('d') // data published in your inbound ring
	wakeSpace = byte('s') // space freed in your outbound ring
)

// shmRing is one direction of a shared-memory pair: a byte ring over a
// mmap'd file. The cursors are free-running totals; capacity is a power
// of two so position is cursor&mask.
type shmRing struct {
	mapped []byte // whole mapping (platform file owns creation/teardown)
	data   []byte // data region, len == size
	size   uint64
	mask   uint64

	head       *atomic.Uint64
	tail       *atomic.Uint64
	consParked *atomic.Uint32
	prodParked *atomic.Uint32
}

// ringPair bundles a peer's two directions from the local side's view.
type ringPair struct {
	tx *shmRing // local writes, peer reads
	rx *shmRing // peer writes, local reads
}

func (rp *ringPair) close() {
	if rp == nil {
		return
	}
	rp.tx.close()
	rp.rx.close()
}

// ringCapacity clamps a requested per-direction capacity and rounds it
// up to a power of two (0 means the default).
func ringCapacity(requested int) uint64 {
	c := uint64(defaultRingBytes)
	if requested > 0 {
		c = uint64(requested)
	}
	if c < minRingBytes {
		c = minRingBytes
	}
	if c > maxRingBytes {
		c = maxRingBytes
	}
	// Round up to a power of two.
	p := uint64(minRingBytes)
	for p < c {
		p <<= 1
	}
	return p
}

// bindRing wires the ring's views and atomics onto a mapping.
func bindRing(m []byte, capBytes uint64) *shmRing {
	r := &shmRing{
		mapped: m,
		data:   m[ringHdrBytes : ringHdrBytes+capBytes],
		size:   capBytes,
		mask:   capBytes - 1,
	}
	r.head = atomicU64At(m, ringOffHead)
	r.tail = atomicU64At(m, ringOffTail)
	r.consParked = atomicU32At(m, ringOffConsParked)
	r.prodParked = atomicU32At(m, ringOffProdParked)
	return r
}

// avail returns the readable byte count, free the writable one.
func (r *shmRing) avail() uint64 { return r.head.Load() - r.tail.Load() }
func (r *shmRing) free() uint64  { return r.size - r.avail() }

// writeChunk copies as much of b as currently fits into the ring and
// publishes it, returning the count (0 when full). Producer-side only.
func (r *shmRing) writeChunk(b []byte) int {
	head := r.head.Load()
	n := r.size - (head - r.tail.Load())
	if n > uint64(len(b)) {
		n = uint64(len(b))
	}
	if n == 0 {
		return 0
	}
	off := head & r.mask
	first := n
	if first > r.size-off {
		first = r.size - off
	}
	copy(r.data[off:off+first], b[:first])
	copy(r.data, b[first:n])
	r.head.Store(head + n)
	return int(n)
}

// readChunk copies up to len(b) available bytes out of the ring and
// frees them, returning the count (0 when empty). Consumer-side only.
func (r *shmRing) readChunk(b []byte) int {
	tail := r.tail.Load()
	n := r.head.Load() - tail
	if n > uint64(len(b)) {
		n = uint64(len(b))
	}
	if n == 0 {
		return 0
	}
	off := tail & r.mask
	first := n
	if first > r.size-off {
		first = r.size - off
	}
	copy(b[:first], r.data[off:off+first])
	copy(b[first:n], r.data)
	r.tail.Store(tail + n)
	return int(n)
}

// failedErr returns the transport's first failure, nil otherwise —
// unlike aliveErr it does NOT turn into ErrClosed during Close, so ring
// waiters can keep draining through a clean shutdown.
func (t *Transport) failedErr() error {
	t.stateMu.Lock()
	defer t.stateMu.Unlock()
	return t.failure
}

// sendDoorbell writes one KindWake frame on the peer's retained
// connection. Serialized with the writer's Bye by connW.
func (t *Transport) sendDoorbell(p *peer, wake byte) error {
	frame := AppendHeader(make([]byte, 0, HeaderSize+1), KindWake, 1)
	frame = append(frame, wake)
	p.connW.Lock()
	_, err := p.conn.Write(frame)
	p.connW.Unlock()
	if err == nil {
		t.m.doorbells.Inc()
	}
	return err
}

// ringWriteAll streams b into the peer's outbound ring, chunking when b
// exceeds the free space — every frame goes through the ring regardless
// of size, so pairwise ordering never depends on a side channel. Rings
// the peer's doorbell whenever its reader parked.
func (t *Transport) ringWriteAll(p *peer, b []byte) error {
	r := p.rings.tx
	for len(b) > 0 {
		n := r.writeChunk(b)
		if n > 0 {
			b = b[n:]
			if r.consParked.Load() != 0 && r.consParked.Swap(0) != 0 {
				if err := t.sendDoorbell(p, wakeData); err != nil {
					return fmt.Errorf("doorbell: %w", err)
				}
			}
			continue
		}
		if err := t.ringAwaitSpace(p, r); err != nil {
			return err
		}
	}
	return nil
}

// ringAwaitSpace spins, then parks until the consumer frees ring space.
func (t *Transport) ringAwaitSpace(p *peer, r *shmRing) error {
	for i := 0; i < ringSpin; i++ {
		if r.free() > 0 {
			return nil
		}
		if i%256 == 255 {
			runtime.Gosched()
		}
	}
	t.m.parks.With("write").Inc()
	defer r.prodParked.Store(0)
	for {
		r.prodParked.Store(1)
		if r.free() > 0 {
			return nil
		}
		if err := t.failedErr(); err != nil {
			return err
		}
		if p.connDown.Load() {
			return fmt.Errorf("doorbell connection down")
		}
		select {
		case <-p.wrWake:
		case <-time.After(ringParkInterval):
		}
	}
}

// ringAwaitData spins, then parks until the producer publishes data.
// Returns (false, nil) when the peer said Bye and the ring is fully
// drained — the clean end of the inbound stream.
func (t *Transport) ringAwaitData(p *peer, r *shmRing) (bool, error) {
	for i := 0; i < ringSpin; i++ {
		if r.avail() > 0 {
			return true, nil
		}
		if p.byeSeen.Load() && r.avail() == 0 {
			return false, nil
		}
		if i%256 == 255 {
			runtime.Gosched()
		}
	}
	t.m.parks.With("read").Inc()
	defer r.consParked.Store(0)
	for {
		r.consParked.Store(1)
		if r.avail() > 0 {
			return true, nil
		}
		if p.byeSeen.Load() && r.avail() == 0 {
			return false, nil
		}
		if err := t.failedErr(); err != nil {
			return false, err
		}
		if p.connDown.Load() {
			return false, fmt.Errorf("doorbell connection down")
		}
		select {
		case <-p.rdWake:
		case <-time.After(ringParkInterval):
		}
	}
}

// ringReadFull fills b from the inbound ring, ringing the peer's
// doorbell whenever its writer parked. eof reports a clean end of
// stream before the first byte; mid-fill stream end is an error.
func (t *Transport) ringReadFull(p *peer, b []byte) (eof bool, err error) {
	r := p.rings.rx
	got := 0
	for got < len(b) {
		n := r.readChunk(b[got:])
		if n > 0 {
			got += n
			if r.prodParked.Load() != 0 && r.prodParked.Swap(0) != 0 {
				if derr := t.sendDoorbell(p, wakeSpace); derr != nil {
					return false, fmt.Errorf("doorbell: %w", derr)
				}
			}
			continue
		}
		more, werr := t.ringAwaitData(p, r)
		if werr != nil {
			return false, werr
		}
		if more {
			continue
		}
		if got == 0 {
			return true, nil
		}
		return false, fmt.Errorf("ring drained mid-frame (%d of %d bytes)", got, len(b))
	}
	return false, nil
}

// shmWriteLoop is the writeLoop of a shared-memory peer: same batch
// take from the outbound queue, but frames are copied into the tx ring
// instead of a writev — pooled payloads recycle right after the copy,
// the ring slot being what actually crosses the process boundary. The
// clean shutdown reuses the socket protocol: after the drain, a KindBye
// on the retained connection marks the end of the ring stream.
func (t *Transport) shmWriteLoop(p *peer) {
	defer close(p.wdone)
	hdr := make([]byte, 0, HeaderSize)
	lc := t.m.lanes("out", "shm")
	for {
		p.mu.Lock()
		for len(p.outq) == 0 && !p.closing {
			p.cond.Wait()
		}
		batch := p.outq
		p.outq = nil
		closing := p.closing
		p.mu.Unlock()
		for i := range batch {
			m := batch[i]
			hdr = AppendHeader(hdr[:0], m.kind, len(m.payload))
			err := t.ringWriteAll(p, hdr)
			if err == nil {
				err = t.ringWriteAll(p, m.payload)
			}
			if err != nil {
				t.fail(fmt.Errorf("ring write to rank %d: %w", p.rank, err))
				return
			}
			t.framesSent.Add(1)
			t.wireOut.Add(int64(HeaderSize + len(m.payload)))
			lc.count(m.kind, int64(HeaderSize+len(m.payload)))
			if m.pooled {
				comm.PutBuffer(m.payload)
			}
			batch[i] = wireMsg{} // drop the payload refs held by the queue's backing array
		}
		if closing {
			p.mu.Lock()
			drained := len(p.outq) == 0
			p.mu.Unlock()
			if !drained {
				continue
			}
			// Ring data is published (head stores above) before this
			// write syscall, so the peer's reader sees every frame once
			// the Bye lands. No half-close: the connection must stay
			// writable for the reader's doorbells while the peer drains.
			p.connW.Lock()
			_, err := p.conn.Write(AppendHeader(nil, KindBye, 0))
			p.connW.Unlock()
			if err != nil {
				t.fail(fmt.Errorf("shutdown bye to rank %d: %w", p.rank, err))
			}
			return
		}
	}
}

// shmReadLoop is the readLoop of a shared-memory peer: frames are
// decoded straight out of the rx ring. It ends cleanly when the peer's
// Bye has arrived (over the connection, via shmConnLoop) and the ring
// is fully drained — the ring-wire equivalent of EOF at a frame
// boundary.
func (t *Transport) shmReadLoop(p *peer) {
	defer t.readWG.Done()
	hdr := make([]byte, HeaderSize)
	lc := t.m.lanes("in", "shm")
	for {
		eof, err := t.ringReadFull(p, hdr)
		if eof {
			return
		}
		if err == nil {
			var kind byte
			var n int
			if kind, n, err = ParseHeader(hdr); err == nil && kind != KindData && kind != KindOOB {
				err = fmt.Errorf("unexpected %s frame", kindName(kind))
			}
			if err == nil {
				// Same pooling split as the socket readLoop: data-lane
				// payloads come from the pool (the consumer recycles
				// them), OOB payloads stay plainly allocated.
				var payload []byte
				if kind == KindData {
					payload = comm.GetBuffer(n)[:n]
				} else {
					payload = make([]byte, n)
				}
				var eofMid bool
				if eofMid, err = t.ringReadFull(p, payload); err == nil && eofMid && n > 0 {
					err = fmt.Errorf("ring ended between header and payload")
				}
				if err == nil {
					t.framesRecv.Add(1)
					t.wireIn.Add(int64(HeaderSize + n))
					lc.count(kind, int64(HeaderSize+n))
					t.ep.deliver(p.rank, payload, kind == KindOOB)
					continue
				}
			}
		}
		if t.aliveErr() == nil {
			t.fail(fmt.Errorf("ring read from rank %d: %w", p.rank, err))
		}
		return
	}
}

// shmConnLoop services a shared-memory peer's retained connection: it
// demultiplexes doorbell wake-ups onto the park channels and latches the
// peer's Bye for the ring reader. An EOF without a Bye — or any read
// error while the transport is healthy — is a crashed peer, exactly as
// on the socket wires. Not part of readWG: it finishes only when the
// connection actually closes (Close's final teardown), after the ring
// loops are already done.
func (t *Transport) shmConnLoop(p *peer) {
	defer func() {
		// Terminal: unpark both ring loops so they observe byeSeen, the
		// transport failure, or the dead connection.
		p.connDown.Store(true)
		select {
		case p.rdWake <- struct{}{}:
		default:
		}
		select {
		case p.wrWake <- struct{}{}:
		default:
		}
	}()
	hdr := make([]byte, HeaderSize)
	wake := make([]byte, 1)
	for {
		if _, err := io.ReadFull(p.conn, hdr); err != nil {
			if t.aliveErr() == nil {
				if p.byeSeen.Load() {
					return // peer closed cleanly after its Bye
				}
				t.fail(fmt.Errorf("doorbell from rank %d: connection closed without shutdown handshake (%v)", p.rank, err))
			}
			return
		}
		kind, n, err := ParseHeader(hdr)
		if err != nil {
			t.fail(fmt.Errorf("doorbell frame from rank %d: %w", p.rank, err))
			return
		}
		switch {
		case kind == KindWake && n == 1:
			if _, err := io.ReadFull(p.conn, wake); err != nil {
				t.fail(fmt.Errorf("doorbell from rank %d: %w", p.rank, err))
				return
			}
			var ch chan struct{}
			switch wake[0] {
			case wakeData:
				ch = p.rdWake
			case wakeSpace:
				ch = p.wrWake
			default:
				t.fail(fmt.Errorf("unknown doorbell %#02x from rank %d", wake[0], p.rank))
				return
			}
			select {
			case ch <- struct{}{}:
			default:
			}
		case kind == KindBye && n == 0:
			p.byeSeen.Store(true)
			select {
			case p.rdWake <- struct{}{}:
			default:
			}
		default:
			t.fail(fmt.Errorf("unexpected %s frame (%d bytes) from rank %d on shm doorbell connection", kindName(kind), n, p.rank))
			return
		}
	}
}
