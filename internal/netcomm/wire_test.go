package netcomm

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

func header(kind byte, n int) []byte { return AppendHeader(nil, kind, n) }

func TestHeaderRoundTrip(t *testing.T) {
	for _, kind := range []byte{KindData, KindOOB, KindJoin, KindPeer, KindAck, KindPeers, KindBye, KindWake} {
		for _, n := range []int{0, 1, 4096, MaxFrameBytes} {
			h := header(kind, n)
			if len(h) != HeaderSize {
				t.Fatalf("header size %d", len(h))
			}
			k, m, err := ParseHeader(h)
			if err != nil || k != kind || m != n {
				t.Fatalf("round trip kind=%#x n=%d: got %#x %d %v", kind, n, k, m, err)
			}
		}
	}
}

// TestHeaderCorruption mirrors the PR-1 codec tables: every corruption or
// truncation class must produce an error, never a panic or a silent
// misparse.
func TestHeaderCorruption(t *testing.T) {
	good := header(KindData, 16)
	cases := []struct {
		name string
		buf  []byte
		want string
	}{
		{"empty", nil, "header is 0 bytes"},
		{"truncated", good[:HeaderSize-1], "header is 7 bytes"},
		{"overlong", append(append([]byte{}, good...), 0), "header is 9 bytes"},
		{"bad magic", append([]byte{0x00, 0x00}, good[2:]...), "bad magic"},
		{"version mismatch", func() []byte {
			b := append([]byte{}, good...)
			b[2] = Version + 1
			return b
		}(), "unsupported wire version"},
		{"version zero", func() []byte {
			b := append([]byte{}, good...)
			b[2] = 0
			return b
		}(), "unsupported wire version"},
		{"unknown kind", func() []byte {
			b := append([]byte{}, good...)
			b[3] = 0x7F
			return b
		}(), "unknown frame kind"},
		{"oversized length", func() []byte {
			b := append([]byte{}, good...)
			binary.LittleEndian.PutUint32(b[4:], MaxFrameBytes+1)
			return b
		}(), "exceeds cap"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := ParseHeader(tc.buf)
			if err == nil {
				t.Fatal("corrupt header parsed without error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestJoinRoundTrip(t *testing.T) {
	for _, j := range []JoinRequest{
		{Rank: 3, World: 8, Cluster: "c-12345", Addr: "127.0.0.1:45123"},
		{Rank: 0, World: 2, Cluster: "c", Addr: "127.0.0.1:1", Unix: "/tmp/jsnc-abc.sock", Host: "nodeA/boot-1"},
		{Rank: 1, World: 2, Cluster: "c", Addr: "127.0.0.1:2", Unix: "/tmp/jsnc-def.sock", Host: "nodeA/boot-1", Shm: true},
	} {
		got, err := ParseJoin(AppendJoin(nil, j))
		if err != nil {
			t.Fatal(err)
		}
		if got != j {
			t.Fatalf("round trip: %+v != %+v", got, j)
		}
	}
}

func TestPeerAckPeersRoundTrip(t *testing.T) {
	for _, p := range []Peer{
		{From: 5, To: 2, World: 6, Cluster: "xyz"},
		{From: 3, To: 1, World: 6, Cluster: "xyz", Shm: true, RingTx: "/tmp/jsnc-a.ring", RingRx: "/tmp/jsnc-b.ring"},
	} {
		gp, err := ParsePeer(AppendPeer(nil, p))
		if err != nil || gp != p {
			t.Fatalf("peer round trip: %+v %v", gp, err)
		}
	}
	for _, a := range []Ack{{OK: true}, {OK: false, Detail: "wrong cluster"}, {OK: true, Shm: true}} {
		ga, err := ParseAck(AppendAck(nil, a))
		if err != nil || ga != a {
			t.Fatalf("ack round trip: %+v %v", ga, err)
		}
	}
	ps := Peers{Addrs: []PeerAddr{
		{TCP: "127.0.0.1:1", Unix: "/tmp/jsnc-1.sock", Host: "hostA", Shm: true},
		{TCP: "127.0.0.1:2", Host: "hostB"},
		{},
	}}
	gps, err := ParsePeers(AppendPeers(nil, ps))
	if err != nil {
		t.Fatal(err)
	}
	if len(gps.Addrs) != 3 || gps.Addrs[0] != ps.Addrs[0] || gps.Addrs[1] != ps.Addrs[1] || gps.Addrs[2] != (PeerAddr{}) {
		t.Fatalf("peers round trip: %+v", gps)
	}
}

// TestPayloadCorruption: truncations, trailing garbage, inflated counts
// and out-of-range strings in every payload kind must error out.
func TestPayloadCorruption(t *testing.T) {
	join := AppendJoin(nil, JoinRequest{Rank: 1, World: 4, Cluster: "cl", Addr: "a:1", Unix: "/t/u.sock", Host: "h"})
	peer := AppendPeer(nil, Peer{From: 2, To: 1, World: 4, Cluster: "cl"})
	ack := AppendAck(nil, Ack{OK: false, Detail: "no"})
	peers := AppendPeers(nil, Peers{Addrs: []PeerAddr{{TCP: "a:1", Unix: "/t/1.sock", Host: "h"}, {TCP: "b:2"}}})

	checkErr := func(t *testing.T, name string, err error) {
		t.Helper()
		if err == nil {
			t.Fatalf("%s: corrupt payload parsed without error", name)
		}
	}
	t.Run("truncations", func(t *testing.T) {
		for i := 0; i < len(join); i++ {
			if _, err := ParseJoin(join[:i]); err == nil {
				t.Fatalf("join truncated at %d parsed", i)
			}
		}
		for i := 0; i < len(peer); i++ {
			if _, err := ParsePeer(peer[:i]); err == nil {
				t.Fatalf("peer truncated at %d parsed", i)
			}
		}
		for i := 0; i < len(ack); i++ {
			if _, err := ParseAck(ack[:i]); err == nil {
				t.Fatalf("ack truncated at %d parsed", i)
			}
		}
		for i := 4; i < len(peers); i++ { // count must mismatch the bytes
			if _, err := ParsePeers(peers[:i]); err == nil {
				t.Fatalf("peers truncated at %d parsed", i)
			}
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		_, err := ParseJoin(append(append([]byte{}, join...), 0xFF))
		checkErr(t, "join", err)
		_, err = ParsePeer(append(append([]byte{}, peer...), 0xFF))
		checkErr(t, "peer", err)
		_, err = ParseAck(append(append([]byte{}, ack...), 0xFF))
		checkErr(t, "ack", err)
		_, err = ParsePeers(append(append([]byte{}, peers...), 0xFF))
		checkErr(t, "peers", err)
	})
	t.Run("inflated counts", func(t *testing.T) {
		b := append([]byte{}, peers...)
		binary.LittleEndian.PutUint32(b, 1<<30) // world count >> remaining bytes
		_, err := ParsePeers(b)
		checkErr(t, "peers world", err)

		j := append([]byte{}, join...)
		// Inflate the cluster string length beyond the buffer.
		binary.LittleEndian.PutUint16(j[8:], 600)
		_, err = ParseJoin(j)
		checkErr(t, "join cluster len", err)
	})
	t.Run("bad ack status", func(t *testing.T) {
		b := append([]byte{}, ack...)
		b[0] = 7
		_, err := ParseAck(b)
		checkErr(t, "ack status", err)
	})
	t.Run("non-canonical bool bytes", func(t *testing.T) {
		// The shm capability bytes accept only 0/1: any other value is
		// corruption, or the canonical re-encode invariant would break.
		j := append([]byte{}, join...)
		j[len(j)-1] = 2 // JoinRequest.Shm is the last byte
		_, err := ParseJoin(j)
		checkErr(t, "join shm", err)

		p := append([]byte{}, peer...)
		p[len(p)-5] = 2 // Peer.Shm sits before the two empty ring-path strings
		_, err = ParsePeer(p)
		checkErr(t, "peer shm", err)

		a := append([]byte{}, ack...)
		a = append(a[:len(a)-1], 2) // Ack.Shm is the last byte
		_, err = ParseAck(a)
		checkErr(t, "ack shm", err)

		ps := append([]byte{}, peers...)
		ps[len(ps)-1] = 2 // last entry's shm byte ends the payload
		_, err = ParsePeers(ps)
		checkErr(t, "peers shm", err)
	})
	t.Run("oversized string", func(t *testing.T) {
		long := strings.Repeat("x", maxStrLen+1)
		b := AppendJoin(nil, JoinRequest{Rank: 0, World: 1, Cluster: long, Addr: "a"})
		if _, err := ParseJoin(b); err == nil {
			t.Fatal("oversized cluster string parsed")
		}
	})
}

// FuzzNetFrameRoundTrip fuzzes the frame-header and handshake decoders:
// (a) decoding arbitrary bytes never panics, and (b) anything that
// decodes re-encodes to the identical bytes (canonical wire form).
func FuzzNetFrameRoundTrip(f *testing.F) {
	f.Add(header(KindData, 128))
	f.Add(AppendJoin(nil, JoinRequest{Rank: 1, World: 4, Cluster: "c", Addr: "127.0.0.1:9"}))
	f.Add(AppendJoin(nil, JoinRequest{Rank: 1, World: 4, Cluster: "c", Addr: "127.0.0.1:9", Unix: "/tmp/jsnc.sock", Host: "h/b"}))
	f.Add(AppendJoin(nil, JoinRequest{Rank: 2, World: 4, Cluster: "c", Addr: "127.0.0.1:9", Unix: "/tmp/jsnc.sock", Host: "h/b", Shm: true}))
	f.Add(AppendPeer(nil, Peer{From: 3, To: 0, World: 4, Cluster: "c"}))
	f.Add(AppendPeer(nil, Peer{From: 3, To: 0, World: 4, Cluster: "c", Shm: true, RingTx: "/t/a.ring", RingRx: "/t/b.ring"}))
	f.Add(AppendAck(nil, Ack{OK: false, Detail: "why"}))
	f.Add(AppendAck(nil, Ack{OK: true, Shm: true}))
	f.Add(AppendPeers(nil, Peers{Addrs: []PeerAddr{{TCP: "a:1", Unix: "/t/a", Host: "ha", Shm: true}, {TCP: "b:2"}, {TCP: "c:3"}}}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if kind, n, err := ParseHeader(data); err == nil {
			if !bytes.Equal(AppendHeader(nil, kind, n), data) {
				t.Fatalf("header not canonical: %x", data)
			}
		}
		if j, err := ParseJoin(data); err == nil {
			if !bytes.Equal(AppendJoin(nil, j), data) {
				t.Fatalf("join not canonical: %x", data)
			}
		}
		if p, err := ParsePeer(data); err == nil {
			if !bytes.Equal(AppendPeer(nil, p), data) {
				t.Fatalf("peer not canonical: %x", data)
			}
		}
		if a, err := ParseAck(data); err == nil {
			if !bytes.Equal(AppendAck(nil, a), data) {
				t.Fatalf("ack not canonical: %x", data)
			}
		}
		if p, err := ParsePeers(data); err == nil {
			if !bytes.Equal(AppendPeers(nil, p), data) {
				t.Fatalf("peers not canonical: %x", data)
			}
		}
	})
}
