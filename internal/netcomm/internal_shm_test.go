//go:build unix

package netcomm

import (
	"bytes"
	"encoding/binary"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestRingCapacity(t *testing.T) {
	cases := []struct {
		in   int
		want uint64
	}{
		{0, defaultRingBytes},
		{-1, defaultRingBytes},
		{1, minRingBytes},
		{minRingBytes, minRingBytes},
		{minRingBytes + 1, 2 * minRingBytes},
		{1 << 20, 1 << 20},
		{(1 << 20) + 1, 1 << 21},
		{maxRingBytes, maxRingBytes},
		{maxRingBytes + 1, maxRingBytes},
	}
	for _, c := range cases {
		if got := ringCapacity(c.in); got != c.want {
			t.Errorf("ringCapacity(%d) = %d, want %d", c.in, got, c.want)
		}
		if got := ringCapacity(c.in); got&(got-1) != 0 {
			t.Errorf("ringCapacity(%d) = %d, not a power of two", c.in, got)
		}
	}
}

// TestRingRoundTrip pushes data through the two mappings of one ring
// file (producer via createRing, consumer via openRing) across many
// wraparounds, checking the byte stream survives intact.
func TestRingRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jsnc-test.ring")
	w, err := createRing(path, minRingBytes)
	if err != nil {
		t.Fatal(err)
	}
	defer w.close()
	r, err := openRing(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.close()

	// Chunk sizes chosen to hit partial writes, exact fits and wraps.
	sizes := []int{1, 7, 100, minRingBytes / 2, minRingBytes - 1, minRingBytes, minRingBytes + 13}
	seq := byte(0)
	for round := 0; round < 4; round++ {
		for _, size := range sizes {
			src := make([]byte, size)
			for i := range src {
				src[i] = seq
				seq++
			}
			got := make([]byte, 0, size)
			off := 0
			for len(got) < size {
				if off < size {
					off += w.writeChunk(src[off:])
				}
				buf := make([]byte, size-len(got))
				n := r.readChunk(buf)
				got = append(got, buf[:n]...)
			}
			if !bytes.Equal(got, src) {
				t.Fatalf("round %d size %d: stream corrupted", round, size)
			}
		}
	}
	if w.avail() != 0 || r.avail() != 0 {
		t.Fatalf("ring not drained: avail %d/%d", w.avail(), r.avail())
	}
}

// TestRingSPSCStress runs a real producer/consumer pair over the shared
// mapping under the race detector: the SPSC acquire/release pairing on
// the cursors is the whole correctness story of the ring.
func TestRingSPSCStress(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jsnc-stress.ring")
	w, err := createRing(path, minRingBytes)
	if err != nil {
		t.Fatal(err)
	}
	defer w.close()
	r, err := openRing(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.close()

	const total = 1 << 20
	pattern := func(i int) byte { return byte(i*31 + 7) }
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 3000)
		sent := 0
		for sent < total {
			n := len(buf)
			if total-sent < n {
				n = total - sent
			}
			for i := 0; i < n; i++ {
				buf[i] = pattern(sent + i)
			}
			off := 0
			for off < n {
				k := w.writeChunk(buf[off:n])
				off += k
				if k == 0 {
					runtime.Gosched()
				}
			}
			sent += n
		}
	}()
	buf := make([]byte, 4096)
	read := 0
	for read < total {
		n := r.readChunk(buf)
		if n == 0 {
			runtime.Gosched()
			continue
		}
		for i := 0; i < n; i++ {
			if buf[i] != pattern(read+i) {
				t.Fatalf("byte %d = %#02x, want %#02x", read+i, buf[i], pattern(read+i))
			}
		}
		read += n
	}
	<-done
}

func TestCreateRingRefusesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jsnc-dup.ring")
	w, err := createRing(path, minRingBytes)
	if err != nil {
		t.Fatal(err)
	}
	defer w.close()
	if r, err := createRing(path, minRingBytes); err == nil {
		r.close()
		t.Fatal("createRing over an existing ring file succeeded")
	}
}

// TestOpenRingValidation feeds openRing the kinds of debris a shared
// tmp dir can hold: every corruption must be refused before any loop
// trusts the mapping.
func TestOpenRingValidation(t *testing.T) {
	dir := t.TempDir()
	fresh := func(name string) string {
		path := filepath.Join(dir, name)
		w, err := createRing(path, minRingBytes)
		if err != nil {
			t.Fatal(err)
		}
		w.close()
		return path
	}
	patch := func(path string, off int, val uint64, width int) {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if width == 4 {
			binary.LittleEndian.PutUint32(b[off:], uint32(val))
		} else {
			binary.LittleEndian.PutUint64(b[off:], val)
		}
		if err := os.WriteFile(path, b, 0o600); err != nil {
			t.Fatal(err)
		}
	}

	cases := []struct {
		name string
		path func() string
	}{
		{"missing file", func() string { return filepath.Join(dir, "nope.ring") }},
		{"too small", func() string {
			p := filepath.Join(dir, "small.ring")
			os.WriteFile(p, make([]byte, 64), 0o600)
			return p
		}},
		{"bad magic", func() string {
			p := fresh("magic.ring")
			patch(p, ringOffMagic, 0xdeadbeef, 4)
			return p
		}},
		{"bad version", func() string {
			p := fresh("version.ring")
			patch(p, ringOffVersion, uint64(ringVersion)+1, 4)
			return p
		}},
		{"capacity not a power of two", func() string {
			p := fresh("pow2.ring")
			patch(p, ringOffCap, minRingBytes-1, 8)
			return p
		}},
		{"capacity mismatch", func() string {
			p := fresh("capsize.ring")
			patch(p, ringOffCap, 2*minRingBytes, 8)
			return p
		}},
		{"dirty head cursor", func() string {
			p := fresh("head.ring")
			patch(p, ringOffHead, 1, 8)
			return p
		}},
		{"dirty tail cursor", func() string {
			p := fresh("tail.ring")
			patch(p, ringOffTail, 1, 8)
			return p
		}},
	}
	for _, c := range cases {
		if r, err := openRing(c.path()); err == nil {
			r.close()
			t.Errorf("%s: accepted", c.name)
		}
	}

	// Control: an untouched ring file still opens.
	r, err := openRing(fresh("good.ring"))
	if err != nil {
		t.Fatalf("control ring refused: %v", err)
	}
	r.close()
}

// TestDialPeerUnixFallback is the regression test for the WireAuto
// dial contract: a co-located peer whose advertised Unix socket is
// undialable (here: never created) must be retried over TCP and counted
// as degraded, not abort the bring-up.
func TestDialPeerUnixFallback(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		conn.SetDeadline(time.Now().Add(10 * time.Second))
		kind, _, err := readUnit(conn)
		if err != nil || kind != KindPeer {
			return
		}
		sendUnit(conn, KindAck, AppendAck(nil, Ack{OK: true}))
	}()

	var log bytes.Buffer
	o := Options{Cluster: "c", Rank: 1, World: 2, Wire: WireAuto, HostID: "h", Log: &log}
	a := PeerAddr{
		TCP:  ln.Addr().String(),
		Unix: filepath.Join(t.TempDir(), "gone.sock"), // never bound
		Host: "h",
		Shm:  true,
	}
	mc, err := dialPeer(o, 0, a, time.Now().Add(10*time.Second))
	if err != nil {
		t.Fatalf("dialPeer did not degrade: %v", err)
	}
	defer mc.conn.Close()
	if mc.network != "tcp" || !mc.degraded || mc.rings != nil {
		t.Errorf("(network, degraded, rings) = (%q, %v, %v), want (tcp, true, nil)",
			mc.network, mc.degraded, mc.rings)
	}
	if !strings.Contains(log.String(), "pair degrades to tcp") {
		t.Errorf("degradation not logged:\n%s", log.String())
	}
}

// seedStaleSocket binds a Unix socket at path and closes it without
// unlinking — the exact debris a SIGKILLed rank leaves behind.
func seedStaleSocket(t *testing.T, path string) {
	t.Helper()
	addr, err := net.ResolveUnixAddr("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.ListenUnix("unix", addr)
	if err != nil {
		t.Fatal(err)
	}
	l.SetUnlinkOnClose(false)
	l.Close()
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("stale socket not seeded: %v", err)
	}
}

func TestListenUnixRecoversStaleSocket(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jsnc-stale.sock")
	seedStaleSocket(t, path)
	ln, err := listenUnix(path)
	if err != nil {
		t.Fatalf("listenUnix did not recover from a stale socket: %v", err)
	}
	ln.Close()
}

func TestListenUnixKeepsLiveSocket(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jsnc-live.sock")
	live, err := net.Listen("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	if ln, err := listenUnix(path); err == nil {
		ln.Close()
		t.Fatal("listenUnix stole a live listener's socket")
	}
}

// TestCleanStaleFiles pins the Join-time sweep: aged dead sockets and
// aged ring files go; live sockets, freshly created sockets (another
// rank mid-bind) and in-handshake rings stay.
func TestCleanStaleFiles(t *testing.T) {
	dir := t.TempDir()
	past := time.Now().Add(-2 * staleRingAge)
	age := func(path string) {
		if err := os.Chtimes(path, past, past); err != nil {
			t.Fatal(err)
		}
	}
	stale := filepath.Join(dir, "jsnc-000001.sock")
	seedStaleSocket(t, stale)
	age(stale)
	livePath := filepath.Join(dir, "jsnc-000002.sock")
	live, err := net.Listen("unix", livePath)
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	age(livePath)
	freshSock := filepath.Join(dir, "jsnc-000005.sock")
	seedStaleSocket(t, freshSock) // dead but fresh: could be mid-bind
	oldRing := filepath.Join(dir, "jsnc-000003.ring")
	if err := os.WriteFile(oldRing, make([]byte, 32), 0o600); err != nil {
		t.Fatal(err)
	}
	age(oldRing)
	freshRing := filepath.Join(dir, "jsnc-000004.ring")
	if err := os.WriteFile(freshRing, make([]byte, 32), 0o600); err != nil {
		t.Fatal(err)
	}

	var log bytes.Buffer
	cleanStaleFiles(Options{SocketDir: dir, Log: &log})

	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale socket survived the sweep")
	}
	if _, err := os.Stat(livePath); err != nil {
		t.Error("live socket removed by the sweep")
	}
	if _, err := os.Stat(freshSock); err != nil {
		t.Error("fresh socket removed by the sweep")
	}
	if _, err := os.Stat(oldRing); !os.IsNotExist(err) {
		t.Error("aged ring file survived the sweep")
	}
	if _, err := os.Stat(freshRing); err != nil {
		t.Error("fresh ring file removed by the sweep")
	}
	if got := log.String(); !strings.Contains(got, "removed stale socket") || !strings.Contains(got, "removed stale ring") {
		t.Errorf("sweep removals not logged:\n%s", got)
	}
}
