//go:build unix

package netcomm

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync/atomic"
	"syscall"
	"unsafe"
)

// shmSupported reports whether this platform can mmap ring files.
func shmSupported() bool { return true }

// atomicU64At / atomicU32At view a header word of the shared mapping as
// a sync/atomic value. The offsets are 8-byte aligned within a
// page-aligned mapping, so the atomics' alignment requirement holds.
func atomicU64At(m []byte, off int) *atomic.Uint64 {
	return (*atomic.Uint64)(unsafe.Pointer(&m[off]))
}

func atomicU32At(m []byte, off int) *atomic.Uint32 {
	return (*atomic.Uint32)(unsafe.Pointer(&m[off]))
}

// createRing creates and maps a fresh ring file of the given data
// capacity (a power of two from ringCapacity). Dialer side: the file
// must not already exist — colliding with a live ring would corrupt it.
func createRing(path string, capBytes uint64) (*shmRing, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return nil, fmt.Errorf("netcomm: create ring: %w", err)
	}
	defer f.Close()
	if err := f.Truncate(int64(ringHdrBytes + capBytes)); err != nil {
		os.Remove(path)
		return nil, fmt.Errorf("netcomm: size ring %s: %w", path, err)
	}
	m, err := syscall.Mmap(int(f.Fd()), 0, int(ringHdrBytes+capBytes),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		os.Remove(path)
		return nil, fmt.Errorf("netcomm: map ring %s: %w", path, err)
	}
	// Plain stores are fine here: the header is initialized before the
	// path travels to the peer, and the peer maps only after that.
	binary.LittleEndian.PutUint32(m[ringOffMagic:], ringMagic)
	binary.LittleEndian.PutUint32(m[ringOffVersion:], ringVersion)
	binary.LittleEndian.PutUint64(m[ringOffCap:], capBytes)
	return bindRing(m, capBytes), nil
}

// openRing maps an existing ring file created by a co-located peer,
// validating the header against the file before trusting any of it.
// Acceptor side; the caller unlinks the path once both directions are
// mapped.
func openRing(path string) (*shmRing, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("netcomm: open ring: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("netcomm: stat ring %s: %w", path, err)
	}
	size := st.Size()
	if size < ringHdrBytes+minRingBytes || size > ringHdrBytes+maxRingBytes {
		return nil, fmt.Errorf("netcomm: ring %s is %d bytes, outside [%d,%d]",
			path, size, ringHdrBytes+minRingBytes, ringHdrBytes+maxRingBytes)
	}
	m, err := syscall.Mmap(int(f.Fd()), 0, int(size),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("netcomm: map ring %s: %w", path, err)
	}
	bad := func(format string, args ...any) (*shmRing, error) {
		syscall.Munmap(m)
		return nil, fmt.Errorf("netcomm: ring %s: %s", path, fmt.Sprintf(format, args...))
	}
	if magic := binary.LittleEndian.Uint32(m[ringOffMagic:]); magic != ringMagic {
		return bad("bad magic %#08x", magic)
	}
	if v := binary.LittleEndian.Uint32(m[ringOffVersion:]); v != ringVersion {
		return bad("unsupported ring version %d (have %d)", v, ringVersion)
	}
	capBytes := binary.LittleEndian.Uint64(m[ringOffCap:])
	if capBytes == 0 || capBytes&(capBytes-1) != 0 {
		return bad("capacity %d is not a power of two", capBytes)
	}
	if int64(capBytes) != size-ringHdrBytes {
		return bad("capacity %d does not match file size %d", capBytes, size)
	}
	r := bindRing(m, capBytes)
	// A fresh ring carries zeroed cursors; anything else means the path
	// was reused or the file corrupted.
	if r.head.Load() != 0 || r.tail.Load() != 0 {
		return bad("cursors not at zero (head %d, tail %d)", r.head.Load(), r.tail.Load())
	}
	return r, nil
}

// close unmaps the ring. Callers must guarantee no loop still touches
// the mapping (the transport unmaps only after its peer loops joined).
func (r *shmRing) close() {
	if r == nil || r.mapped == nil {
		return
	}
	syscall.Munmap(r.mapped)
	r.mapped = nil
}
