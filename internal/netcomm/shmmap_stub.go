//go:build !unix

package netcomm

import (
	"fmt"
	"sync/atomic"
)

// shmSupported reports whether this platform can mmap ring files: the
// shm wire is Unix-only, so auto selection skips it and forced shm
// fails the bring-up here.
func shmSupported() bool { return false }

func atomicU64At(m []byte, off int) *atomic.Uint64 { panic("netcomm: shm ring on non-unix platform") }

func atomicU32At(m []byte, off int) *atomic.Uint32 { panic("netcomm: shm ring on non-unix platform") }

func createRing(path string, capBytes uint64) (*shmRing, error) {
	return nil, fmt.Errorf("netcomm: shared-memory rings are not supported on this platform")
}

func openRing(path string) (*shmRing, error) {
	return nil, fmt.Errorf("netcomm: shared-memory rings are not supported on this platform")
}

func (r *shmRing) close() {}
