// Submission lane of the serve daemon: the frames a jsweep-serve
// process exchanges with submitting clients, following the same
// versioned codec discipline as the transport wire (wire.go) — fixed
// header, corruption surfaces as an error, unknown layouts rejected.
//
//	KindHello     proto:u32 slots:u32 running:u32 queued:u32 busy:u32
//	KindSubmit    spec:blob verify:u8 timeout:u64(nanos, 0=server default)
//	              rendezvous:str cluster:str rankLo:u32 rankHi:u32
//	KindAccepted  job:str queuePos:u32
//	KindRejected  code:str detail:str
//	KindStarted   job:str
//	KindProgress  event:blob   (JSON, schema owned by internal/serve)
//	KindResult    meta:blob flux:blob (meta JSON; flux raw f64 bit
//	              patterns, group-major — bit-exact across the wire)
//	KindJobError  detail:str
//	KindCancel    reason:str
//
//	blob := len:u32 bytes   (u32-length payloads: spec JSON, events, flux)
//
// Hello travels daemon→client right after accept and advertises the
// daemon's capacity (rank slots, running/queued jobs, busy rank slots) —
// multi-host launchers read it for placement. Submit asks for either a
// full in-daemon job (empty rendezvous) or a rank-slice of an external
// cluster [rankLo,rankHi). Accepted/Rejected answer the admission
// decision; Started marks the queue grant; Progress streams one frame
// per source iteration; exactly one of Result or JobError ends the job.
// Cancel (client→daemon, also implied by disconnect) aborts it.
package netcomm

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"
)

// SubmitProto is the submission-lane protocol version carried in Hello.
// A client refuses a daemon speaking another version (the frame codec
// version is checked per frame separately).
const SubmitProto = uint32(1)

// Submission-lane frame kinds (continuing the transport-lane numbering).
const (
	// KindHello is the daemon's capacity advertisement on accept.
	KindHello = byte(0x09)
	// KindSubmit is a client's job submission.
	KindSubmit = byte(0x0A)
	// KindAccepted confirms admission (the job may still queue).
	KindAccepted = byte(0x0B)
	// KindRejected is a typed admission refusal; the connection ends.
	KindRejected = byte(0x0C)
	// KindStarted marks the job's transition from queued to running.
	KindStarted = byte(0x0D)
	// KindProgress streams one source-iteration event.
	KindProgress = byte(0x0E)
	// KindResult carries the finished job's result (terminal).
	KindResult = byte(0x0F)
	// KindJobError reports a failed job (terminal).
	KindJobError = byte(0x10)
	// KindCancel asks the daemon to abort the job.
	KindCancel = byte(0x11)
)

// WriteFrame writes one header+payload wire unit.
func WriteFrame(w io.Writer, kind byte, payload []byte) error {
	buf := make([]byte, 0, HeaderSize+len(payload))
	buf = AppendHeader(buf, kind, len(payload))
	buf = append(buf, payload...)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one wire unit and returns its kind and payload.
func ReadFrame(r io.Reader) (byte, []byte, error) {
	hdr := make([]byte, HeaderSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, err
	}
	kind, n, err := ParseHeader(hdr)
	if err != nil {
		return 0, nil, err
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return kind, payload, nil
}

// appendBlob appends a u32-length-prefixed byte blob.
func appendBlob(dst []byte, b []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b)))
	return append(dst, b...)
}

// parseBlob reads a u32-length-prefixed blob at off. The returned slice
// aliases buf (callers that retain it past the frame must copy).
func parseBlob(buf []byte, off int) ([]byte, int, error) {
	if len(buf)-off < 4 {
		return nil, off, fmt.Errorf("netcomm: blob length truncated")
	}
	n := int(binary.LittleEndian.Uint32(buf[off:]))
	off += 4
	if n > MaxFrameBytes {
		return nil, off, fmt.Errorf("netcomm: blob length %d exceeds cap %d", n, MaxFrameBytes)
	}
	if len(buf)-off < n {
		return nil, off, fmt.Errorf("netcomm: blob truncated (%d of %d bytes)", len(buf)-off, n)
	}
	return buf[off : off+n], off + n, nil
}

// Hello is the daemon's capacity advertisement (KindHello payload).
type Hello struct {
	// Proto is the submission protocol version (SubmitProto).
	Proto uint32
	// Slots is the daemon's rank capacity; Busy the slots taken by
	// running jobs. Launchers place rank slices by free slots.
	Slots, Busy int
	// Running and Queued count the daemon's jobs in each state.
	Running, Queued int
}

// AppendHello encodes a Hello payload.
func AppendHello(dst []byte, h Hello) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, h.Proto)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(h.Slots))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(h.Running))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(h.Queued))
	return binary.LittleEndian.AppendUint32(dst, uint32(h.Busy))
}

// ParseHello decodes a Hello payload.
func ParseHello(buf []byte) (Hello, error) {
	var h Hello
	if len(buf) != 20 {
		return h, fmt.Errorf("netcomm: hello is %d bytes, want 20", len(buf))
	}
	h.Proto = binary.LittleEndian.Uint32(buf)
	h.Slots = int(int32(binary.LittleEndian.Uint32(buf[4:])))
	h.Running = int(int32(binary.LittleEndian.Uint32(buf[8:])))
	h.Queued = int(int32(binary.LittleEndian.Uint32(buf[12:])))
	h.Busy = int(int32(binary.LittleEndian.Uint32(buf[16:])))
	return h, nil
}

// Submit is a client's job submission (KindSubmit payload).
type Submit struct {
	// Spec is the versioned JobSpec JSON (nodespec.MarshalSpec output;
	// the daemon re-validates it field by field before admission).
	Spec []byte
	// Verify asks the daemon to cross-check against the serial reference.
	Verify bool
	// Timeout bounds the job's run; 0 accepts the server default. The
	// daemon enforces min(Timeout, server cap).
	Timeout time.Duration
	// Rendezvous and Cluster, when non-empty, make this a rank-slice
	// submission: the daemon hosts ranks [RankLo,RankHi) of an external
	// cluster instead of running a self-contained job.
	Rendezvous, Cluster string
	RankLo, RankHi      int
}

// AppendSubmit encodes a Submit payload.
func AppendSubmit(dst []byte, s Submit) []byte {
	dst = appendBlob(dst, s.Spec)
	dst = appendBool(dst, s.Verify)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(s.Timeout))
	dst = appendStr(dst, s.Rendezvous)
	dst = appendStr(dst, s.Cluster)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(s.RankLo))
	return binary.LittleEndian.AppendUint32(dst, uint32(s.RankHi))
}

// ParseSubmit decodes a Submit payload.
func ParseSubmit(buf []byte) (Submit, error) {
	var s Submit
	var err error
	off := 0
	if s.Spec, off, err = parseBlob(buf, off); err != nil {
		return s, fmt.Errorf("netcomm: submit spec: %w", err)
	}
	if s.Verify, off, err = parseBool(buf, off); err != nil {
		return s, fmt.Errorf("netcomm: submit verify: %w", err)
	}
	if len(buf)-off < 8 {
		return s, fmt.Errorf("netcomm: submit timeout truncated")
	}
	s.Timeout = time.Duration(binary.LittleEndian.Uint64(buf[off:]))
	off += 8
	if s.Rendezvous, off, err = parseStr(buf, off); err != nil {
		return s, fmt.Errorf("netcomm: submit rendezvous: %w", err)
	}
	if s.Cluster, off, err = parseStr(buf, off); err != nil {
		return s, fmt.Errorf("netcomm: submit cluster: %w", err)
	}
	if len(buf)-off < 8 {
		return s, fmt.Errorf("netcomm: submit rank range truncated")
	}
	s.RankLo = int(int32(binary.LittleEndian.Uint32(buf[off:])))
	s.RankHi = int(int32(binary.LittleEndian.Uint32(buf[off+4:])))
	off += 8
	if off != len(buf) {
		return s, fmt.Errorf("netcomm: %d trailing bytes after submit", len(buf)-off)
	}
	return s, nil
}

// Accepted confirms a job's admission (KindAccepted payload).
type Accepted struct {
	// Job is the daemon-assigned job id.
	Job string
	// QueuePos is the job's position behind the running set at admission
	// (0 = starts immediately).
	QueuePos int
}

// AppendAccepted encodes an Accepted payload.
func AppendAccepted(dst []byte, a Accepted) []byte {
	dst = appendStr(dst, a.Job)
	return binary.LittleEndian.AppendUint32(dst, uint32(a.QueuePos))
}

// ParseAccepted decodes an Accepted payload.
func ParseAccepted(buf []byte) (Accepted, error) {
	var a Accepted
	var err error
	off := 0
	if a.Job, off, err = parseStr(buf, off); err != nil {
		return a, fmt.Errorf("netcomm: accepted job: %w", err)
	}
	if len(buf)-off < 4 {
		return a, fmt.Errorf("netcomm: accepted queue position truncated")
	}
	a.QueuePos = int(int32(binary.LittleEndian.Uint32(buf[off:])))
	off += 4
	if off != len(buf) {
		return a, fmt.Errorf("netcomm: %d trailing bytes after accepted", len(buf)-off)
	}
	return a, nil
}

// Rejected is a typed admission refusal (KindRejected payload).
type Rejected struct {
	// Code is the machine-readable refusal class (internal/serve defines
	// the values: queue-full, invalid-spec, shutting-down, ...).
	Code string
	// Detail is the human-readable explanation.
	Detail string
}

// AppendRejected encodes a Rejected payload.
func AppendRejected(dst []byte, r Rejected) []byte {
	dst = appendStr(dst, r.Code)
	return appendStr(dst, r.Detail)
}

// ParseRejected decodes a Rejected payload.
func ParseRejected(buf []byte) (Rejected, error) {
	var r Rejected
	var err error
	off := 0
	if r.Code, off, err = parseStr(buf, off); err != nil {
		return r, fmt.Errorf("netcomm: rejected code: %w", err)
	}
	if r.Detail, off, err = parseStr(buf, off); err != nil {
		return r, fmt.Errorf("netcomm: rejected detail: %w", err)
	}
	if off != len(buf) {
		return r, fmt.Errorf("netcomm: %d trailing bytes after rejected", len(buf)-off)
	}
	return r, nil
}

// AppendStarted encodes a Started payload (the job id).
func AppendStarted(dst []byte, job string) []byte { return appendStr(dst, job) }

// ParseStarted decodes a Started payload.
func ParseStarted(buf []byte) (string, error) {
	job, off, err := parseStr(buf, 0)
	if err != nil {
		return "", fmt.Errorf("netcomm: started job: %w", err)
	}
	if off != len(buf) {
		return "", fmt.Errorf("netcomm: %d trailing bytes after started", len(buf)-off)
	}
	return job, nil
}

// AppendProgress encodes a Progress payload (an opaque JSON event blob;
// internal/serve owns the schema).
func AppendProgress(dst []byte, event []byte) []byte { return appendBlob(dst, event) }

// ParseProgress decodes a Progress payload.
func ParseProgress(buf []byte) ([]byte, error) {
	event, off, err := parseBlob(buf, 0)
	if err != nil {
		return nil, fmt.Errorf("netcomm: progress event: %w", err)
	}
	if off != len(buf) {
		return nil, fmt.Errorf("netcomm: %d trailing bytes after progress", len(buf)-off)
	}
	return event, nil
}

// Result carries a finished job back to the submitter (KindResult
// payload): a JSON meta blob (schema owned by internal/serve) plus the
// converged flux as raw little-endian float64 bit patterns, group-major
// — the binary lane keeps the flux bit-exact across the wire.
type Result struct {
	Meta []byte
	Flux [][]float64
}

// AppendResult encodes a Result payload.
func AppendResult(dst []byte, r Result) []byte {
	dst = appendBlob(dst, r.Meta)
	cells := 0
	if len(r.Flux) > 0 {
		cells = len(r.Flux[0])
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Flux)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(cells))
	for _, g := range r.Flux {
		for _, v := range g {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
	}
	return dst
}

// ParseResult decodes a Result payload. The meta blob is copied (the
// result outlives the frame buffer).
func ParseResult(buf []byte) (Result, error) {
	var r Result
	meta, off, err := parseBlob(buf, 0)
	if err != nil {
		return r, fmt.Errorf("netcomm: result meta: %w", err)
	}
	r.Meta = append([]byte(nil), meta...)
	if len(buf)-off < 8 {
		return r, fmt.Errorf("netcomm: result flux shape truncated")
	}
	groups := int(binary.LittleEndian.Uint32(buf[off:]))
	cells := int(binary.LittleEndian.Uint32(buf[off+4:]))
	off += 8
	// An empty flux encodes canonically as 0x0 only; and cells > 0
	// whenever groups > 0 keeps the row-slice allocation bounded by the
	// remaining payload. The bound is checked by division, not product —
	// a product of two attacker-chosen u32s can overflow int64 and slip
	// past the guard into a giant allocation.
	if groups < 0 || cells < 0 || (groups == 0) != (cells == 0) ||
		(cells > 0 && int64(groups) > int64(len(buf)-off)/(8*int64(cells))) {
		return r, fmt.Errorf("netcomm: result flux %dx%d exceeds remaining %d bytes", groups, cells, len(buf)-off)
	}
	r.Flux = make([][]float64, groups)
	for g := range r.Flux {
		row := make([]float64, cells)
		for c := range row {
			row[c] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
		r.Flux[g] = row
	}
	if off != len(buf) {
		return r, fmt.Errorf("netcomm: %d trailing bytes after result", len(buf)-off)
	}
	return r, nil
}

// AppendJobError encodes a JobError payload (the failure detail).
func AppendJobError(dst []byte, detail string) []byte { return appendStr(dst, detail) }

// ParseJobError decodes a JobError payload.
func ParseJobError(buf []byte) (string, error) {
	detail, off, err := parseStr(buf, 0)
	if err != nil {
		return "", fmt.Errorf("netcomm: job error detail: %w", err)
	}
	if off != len(buf) {
		return "", fmt.Errorf("netcomm: %d trailing bytes after job error", len(buf)-off)
	}
	return detail, nil
}

// AppendCancel encodes a Cancel payload (the reason, may be empty).
func AppendCancel(dst []byte, reason string) []byte { return appendStr(dst, reason) }

// ParseCancel decodes a Cancel payload.
func ParseCancel(buf []byte) (string, error) {
	reason, off, err := parseStr(buf, 0)
	if err != nil {
		return "", fmt.Errorf("netcomm: cancel reason: %w", err)
	}
	if off != len(buf) {
		return "", fmt.Errorf("netcomm: %d trailing bytes after cancel", len(buf)-off)
	}
	return reason, nil
}
