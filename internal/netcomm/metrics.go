package netcomm

import "jsweep/internal/obs"

// netMetrics is the transport's hook into the obs registry: frame and
// byte counters keyed by direction, wire tier and lane, the writev
// batch-size histogram, and the shm doorbell/park counters. Handles are
// resolved from obs.Default() once per transport at mesh build — the
// zero value (hand-built transports in tests, or a disabled default
// registry) is all nil handles, which no-op.
type netMetrics struct {
	frames      *obs.CounterVec   // jsweep_net_frames_total{dir,tier,lane}
	bytes       *obs.CounterVec   // jsweep_net_bytes_total{dir,tier,lane}
	writevBatch *obs.HistogramVec // jsweep_net_writev_batch_frames{tier}
	degraded    *obs.Counter      // jsweep_net_degraded_pairs_total
	parks       *obs.CounterVec   // jsweep_net_shm_parks_total{side}
	doorbells   *obs.Counter      // jsweep_net_shm_doorbells_total
}

func newNetMetrics(r *obs.Registry) netMetrics {
	if r == nil {
		return netMetrics{}
	}
	return netMetrics{
		frames: r.CounterVec("jsweep_net_frames_total",
			"Wire frames by direction, physical tier (tcp/unix/shm) and lane (data/oob).",
			"dir", "tier", "lane"),
		bytes: r.CounterVec("jsweep_net_bytes_total",
			"Wire bytes (headers included) by direction, tier and lane.",
			"dir", "tier", "lane"),
		writevBatch: r.HistogramVec("jsweep_net_writev_batch_frames",
			"Frames coalesced into one scatter-gather write, by tier.", "tier"),
		degraded: r.Counter("jsweep_net_degraded_pairs_total",
			"Directed peer pairs that came up below the tier wire=auto aimed for."),
		parks: r.CounterVec("jsweep_net_shm_parks_total",
			"Ring-side parks after the spin budget, by side (read/write).", "side"),
		doorbells: r.Counter("jsweep_net_shm_doorbells_total",
			"KindWake doorbell frames sent to unpark a peer's ring side."),
	}
}

// laneCounters caches one direction+tier's per-lane handles so the
// frame loops pay map lookups once per peer, not per frame.
type laneCounters struct {
	dataFrames, oobFrames *obs.Counter
	dataBytes, oobBytes   *obs.Counter
}

func (m netMetrics) lanes(dir, tier string) laneCounters {
	return laneCounters{
		dataFrames: m.frames.With(dir, tier, "data"),
		oobFrames:  m.frames.With(dir, tier, "oob"),
		dataBytes:  m.bytes.With(dir, tier, "data"),
		oobBytes:   m.bytes.With(dir, tier, "oob"),
	}
}

// count records one frame of kind with the given wire size.
func (lc laneCounters) count(kind byte, wireBytes int64) {
	if kind == KindOOB {
		lc.oobFrames.Inc()
		lc.oobBytes.Add(wireBytes)
	} else {
		lc.dataFrames.Inc()
		lc.dataBytes.Add(wireBytes)
	}
}
