package netcomm_test

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"jsweep/internal/comm"
	"jsweep/internal/commtest"
	"jsweep/internal/netcomm"
)

// startCluster brings up an n-rank TCP cluster over loopback inside this
// process (one transport per rank) and returns the endpoints plus a
// closer for everything.
func startCluster(t testing.TB, n int) ([]comm.Endpoint, func() error) {
	_, eps, closeAll := startClusterOpts(t, n, func(int, *netcomm.Options) {})
	return eps, closeAll
}

// startClusterOpts is startCluster with a per-rank Options hook (wire
// mode, host identity overrides) and access to the transports.
func startClusterOpts(t testing.TB, n int, mod func(rank int, o *netcomm.Options)) ([]*netcomm.Transport, []comm.Endpoint, func() error) {
	t.Helper()
	cluster := fmt.Sprintf("test-%s-%d", t.Name(), time.Now().UnixNano())
	rz, err := netcomm.StartRendezvous("127.0.0.1:0", cluster, n)
	if err != nil {
		t.Fatal(err)
	}
	trs := make([]*netcomm.Transport, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			o := netcomm.Options{
				Cluster:    cluster,
				Rank:       r,
				World:      n,
				Rendezvous: rz.Addr(),
				Wire:       netcomm.WireTCP,
				Timeout:    30 * time.Second,
			}
			mod(r, &o)
			trs[r], errs[r] = netcomm.Join(o)
		}(r)
	}
	wg.Wait()
	if err := rz.Wait(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d join: %v", r, err)
		}
	}
	eps := make([]comm.Endpoint, n)
	for r := 0; r < n; r++ {
		eps[r] = trs[r].Endpoint(r)
		if eps[r] == nil {
			t.Fatalf("rank %d: nil local endpoint", r)
		}
		if trs[r].Endpoint((r+1)%n) != nil && n > 1 {
			t.Fatalf("rank %d: remote endpoint is not nil", r)
		}
	}
	closeAll := func() error {
		var wg sync.WaitGroup
		for _, tr := range trs {
			wg.Add(1)
			go func(tr *netcomm.Transport) {
				defer wg.Done()
				tr.Close()
			}(tr)
		}
		wg.Wait()
		return nil
	}
	return trs, eps, closeAll
}

func tcpBackend() commtest.Backend {
	return commtest.Backend{Name: "tcp", New: startCluster}
}

// udsBackend runs every rank pair over Unix-domain sockets: WireUDS
// forces the fast path, so a pair falling back to TCP would fail the
// bring-up rather than silently weaken the suite.
func udsBackend() commtest.Backend {
	return commtest.Backend{Name: "uds", New: func(t testing.TB, n int) ([]comm.Endpoint, func() error) {
		trs, eps, closeAll := startClusterOpts(t, n, func(_ int, o *netcomm.Options) {
			o.Wire = netcomm.WireUDS
		})
		for r, tr := range trs {
			if n > 1 && tr.FastPeers() != n-1 {
				t.Fatalf("rank %d: %d of %d peers on the fast path", r, tr.FastPeers(), n-1)
			}
		}
		return eps, closeAll
	}}
}

func TestTCPConformance(t *testing.T) { commtest.RunConformance(t, tcpBackend()) }

func TestTCPStress(t *testing.T) { commtest.RunStress(t, tcpBackend()) }

func TestUDSConformance(t *testing.T) { commtest.RunConformance(t, udsBackend()) }

func TestUDSStress(t *testing.T) { commtest.RunStress(t, udsBackend()) }

func TestLocalRanks(t *testing.T) {
	eps, closeAll := startCluster(t, 3)
	defer closeAll()
	if len(eps) != 3 {
		t.Fatalf("got %d endpoints", len(eps))
	}
	for r, ep := range eps {
		if ep.Rank() != r {
			t.Errorf("endpoint %d reports rank %d", r, ep.Rank())
		}
	}
}

func TestWireStatsAndCoalescing(t *testing.T) {
	cluster := fmt.Sprintf("stats-%d", time.Now().UnixNano())
	rz, err := netcomm.StartRendezvous("127.0.0.1:0", cluster, 2)
	if err != nil {
		t.Fatal(err)
	}
	trs := make([]*netcomm.Transport, 2)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			trs[r], errs[r] = netcomm.Join(netcomm.Options{
				Cluster: cluster, Rank: r, World: 2, Rendezvous: rz.Addr(),
			})
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	defer closeConcurrently(trs...)

	const n, payload = 50, 100
	for i := 0; i < n; i++ {
		if err := trs[0].Endpoint(0).Send(1, make([]byte, payload)); err != nil {
			t.Fatal(err)
		}
	}
	ep1 := trs[1].Endpoint(1)
	got := 0
	deadline := time.Now().Add(20 * time.Second)
	for got < n && time.Now().Before(deadline) {
		if _, ok := ep1.TryRecv(); ok {
			got++
			continue
		}
		select {
		case <-ep1.Notify():
		case <-time.After(time.Millisecond):
		}
	}
	if got != n {
		t.Fatalf("received %d of %d", got, n)
	}
	ws := trs[0].WireStats()
	if ws.FramesSent != n {
		t.Errorf("FramesSent = %d, want %d", ws.FramesSent, n)
	}
	wantBytes := int64(n * (netcomm.HeaderSize + payload))
	if ws.BytesOut != wantBytes {
		t.Errorf("BytesOut = %d, want %d", ws.BytesOut, wantBytes)
	}
	rs := trs[1].WireStats()
	if rs.FramesReceived != n || rs.BytesIn != wantBytes {
		t.Errorf("receiver wire stats = %+v, want %d frames / %d bytes", rs, n, wantBytes)
	}
}

func TestJoinValidation(t *testing.T) {
	if _, err := netcomm.Join(netcomm.Options{World: 0}); err == nil {
		t.Error("world 0 accepted")
	}
	if _, err := netcomm.Join(netcomm.Options{World: 2, Rank: 2}); err == nil {
		t.Error("rank out of range accepted")
	}
	if _, err := netcomm.Join(netcomm.Options{World: 2, Rank: 0}); err == nil {
		t.Error("missing rendezvous accepted")
	}
}

func TestRendezvousRefusals(t *testing.T) {
	cluster := fmt.Sprintf("refuse-%d", time.Now().UnixNano())
	rz, err := netcomm.StartRendezvous("127.0.0.1:0", cluster, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer rz.Close()

	join := func(c string, rank, world int) error {
		_, err := netcomm.Join(netcomm.Options{
			Cluster: c, Rank: rank, World: world, Rendezvous: rz.Addr(),
			Timeout: 10 * time.Second,
		})
		return err
	}
	if err := join("wrong-cluster", 0, 2); err == nil {
		t.Error("wrong cluster id accepted")
	}
	if err := join(cluster, 0, 3); err == nil {
		t.Error("wrong world size accepted")
	}

	// A complete, valid bring-up still succeeds after the refusals.
	var wg sync.WaitGroup
	trs := make([]*netcomm.Transport, 2)
	errs := make([]error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			trs[r], errs[r] = netcomm.Join(netcomm.Options{
				Cluster: cluster, Rank: r, World: 2, Rendezvous: rz.Addr(),
				Timeout: 20 * time.Second,
			})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	closeConcurrently(trs...)
}

// closeConcurrently closes several in-process transports at once: Close
// is collective (each rank's reader finishes at the peer's EOF), so
// sequential closes of one cluster's transports would ride the timeout.
func closeConcurrently(trs ...*netcomm.Transport) {
	var wg sync.WaitGroup
	for _, tr := range trs {
		wg.Add(1)
		go func(tr *netcomm.Transport) {
			defer wg.Done()
			tr.Close()
		}(tr)
	}
	wg.Wait()
}

func TestRendezvousDuplicateRank(t *testing.T) {
	cluster := fmt.Sprintf("dup-%d", time.Now().UnixNano())
	rz, err := netcomm.StartRendezvous("127.0.0.1:0", cluster, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer rz.Close()
	done := make(chan error, 1)
	go func() {
		_, err := netcomm.Join(netcomm.Options{
			Cluster: cluster, Rank: 0, World: 2, Rendezvous: rz.Addr(),
			Timeout: 20 * time.Second,
		})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	if err := joinOnlyRegister(rz.Addr(), cluster, 0, 2); err == nil {
		t.Error("duplicate rank accepted by rendezvous")
	}
	rz.Close() // abort the half-joined cluster
	<-done
}

// joinOnlyRegister performs just the rendezvous registration and reports
// whether the rendezvous refused it.
func joinOnlyRegister(addr, cluster string, rank, world int) error {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	payload := netcomm.AppendJoin(nil, netcomm.JoinRequest{
		Rank: rank, World: world, Cluster: cluster, Addr: "127.0.0.1:1",
	})
	buf := netcomm.AppendHeader(nil, netcomm.KindJoin, len(payload))
	buf = append(buf, payload...)
	if _, err := conn.Write(buf); err != nil {
		return nil
	}
	hdr := make([]byte, netcomm.HeaderSize)
	if _, err := readFullConn(conn, hdr); err != nil {
		return nil
	}
	kind, n, err := netcomm.ParseHeader(hdr)
	if err != nil || kind != netcomm.KindAck {
		return nil
	}
	body := make([]byte, n)
	if _, err := readFullConn(conn, body); err != nil {
		return nil
	}
	ack, err := netcomm.ParseAck(body)
	if err != nil || ack.OK {
		return nil
	}
	return fmt.Errorf("refused: %s", ack.Detail)
}

func readFullConn(conn net.Conn, buf []byte) (int, error) {
	off := 0
	for off < len(buf) {
		n, err := conn.Read(buf[off:])
		off += n
		if err != nil {
			return off, err
		}
	}
	return off, nil
}

// TestFailFast: killing one peer's connection poisons the transport —
// sends error out rather than silently dropping, and there is no
// reconnect.
func TestFailFast(t *testing.T) {
	cluster := fmt.Sprintf("fail-%d", time.Now().UnixNano())
	rz, err := netcomm.StartRendezvous("127.0.0.1:0", cluster, 2)
	if err != nil {
		t.Fatal(err)
	}
	trs := make([]*netcomm.Transport, 2)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			trs[r], errs[r] = netcomm.Join(netcomm.Options{
				Cluster: cluster, Rank: r, World: 2, Rendezvous: rz.Addr(),
				CloseTimeout: 2 * time.Second,
			})
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// Abort rank 1 ungracefully (no drain): rank 0's reader sees the
	// connection die and the transport fails fast.
	trs[1].Abort()
	deadline := time.Now().Add(20 * time.Second)
	for {
		err := trs[0].Endpoint(0).Send(1, []byte{1})
		if err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sends kept succeeding after peer died")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := trs[0].Endpoint(0).RecvOOB(); err == nil {
		t.Error("RecvOOB returned nil error on failed transport")
	}
	trs[0].Close()
}
