package netcomm

// Submission-lane codec tests: round trips for every frame payload,
// corruption rejection, frame I/O over a pipe, and a canonical-form
// fuzzer mirroring FuzzNetFrameRoundTrip for the new kinds.

import (
	"bytes"
	"math"
	"net"
	"strings"
	"testing"
	"time"
)

func TestSubmitLaneRoundTrip(t *testing.T) {
	h := Hello{Proto: SubmitProto, Slots: 16, Busy: 4, Running: 1, Queued: 3}
	if got, err := ParseHello(AppendHello(nil, h)); err != nil || got != h {
		t.Fatalf("hello round trip: %+v %v", got, err)
	}
	subs := []Submit{
		{Spec: []byte(`{"mesh":"kobayashi"}`), Verify: true, Timeout: 90 * time.Second},
		{Spec: []byte(`{}`), Rendezvous: "127.0.0.1:7777", Cluster: "c-1", RankLo: 2, RankHi: 4},
		{Spec: nil},
	}
	for _, s := range subs {
		got, err := ParseSubmit(AppendSubmit(nil, s))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Spec, s.Spec) || got.Verify != s.Verify || got.Timeout != s.Timeout ||
			got.Rendezvous != s.Rendezvous || got.Cluster != s.Cluster ||
			got.RankLo != s.RankLo || got.RankHi != s.RankHi {
			t.Fatalf("submit round trip: %+v != %+v", got, s)
		}
	}
	a := Accepted{Job: "job-7", QueuePos: 2}
	if got, err := ParseAccepted(AppendAccepted(nil, a)); err != nil || got != a {
		t.Fatalf("accepted round trip: %+v %v", got, err)
	}
	r := Rejected{Code: "queue-full", Detail: "8 jobs queued"}
	if got, err := ParseRejected(AppendRejected(nil, r)); err != nil || got != r {
		t.Fatalf("rejected round trip: %+v %v", got, err)
	}
	if got, err := ParseStarted(AppendStarted(nil, "job-7")); err != nil || got != "job-7" {
		t.Fatalf("started round trip: %q %v", got, err)
	}
	ev := []byte(`{"iteration":3,"residual":1e-5}`)
	if got, err := ParseProgress(AppendProgress(nil, ev)); err != nil || !bytes.Equal(got, ev) {
		t.Fatalf("progress round trip: %q %v", got, err)
	}
	if got, err := ParseJobError(AppendJobError(nil, "solver blew up")); err != nil || got != "solver blew up" {
		t.Fatalf("job error round trip: %q %v", got, err)
	}
	if got, err := ParseCancel(AppendCancel(nil, "")); err != nil || got != "" {
		t.Fatalf("cancel round trip: %q %v", got, err)
	}
}

// TestSubmitResultBitExact pins that the flux lane preserves exact
// float64 bit patterns (including negative zero and one-ulp neighbours).
func TestSubmitResultBitExact(t *testing.T) {
	res := Result{
		Meta: []byte(`{"iterations":12}`),
		Flux: [][]float64{
			{1.0, math.Nextafter(1, 2), math.Copysign(0, -1)},
			{3.0000000000000004, 1e-300, 2.5},
		},
	}
	got, err := ParseResult(AppendResult(nil, res))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Meta, res.Meta) {
		t.Fatalf("meta round trip: %q", got.Meta)
	}
	if len(got.Flux) != len(res.Flux) {
		t.Fatalf("flux groups: %d", len(got.Flux))
	}
	for g := range res.Flux {
		for c := range res.Flux[g] {
			if math.Float64bits(got.Flux[g][c]) != math.Float64bits(res.Flux[g][c]) {
				t.Fatalf("group %d cell %d: bits %x != %x", g, c,
					math.Float64bits(got.Flux[g][c]), math.Float64bits(res.Flux[g][c]))
			}
		}
	}
	empty, err := ParseResult(AppendResult(nil, Result{Meta: []byte("{}")}))
	if err != nil || len(empty.Flux) != 0 {
		t.Fatalf("empty flux round trip: %+v %v", empty, err)
	}
}

// TestSubmitLaneCorruption: truncations, trailing bytes and inflated
// counts in the new payloads must error, never panic or misparse.
func TestSubmitLaneCorruption(t *testing.T) {
	checkErr := func(name string, err error) {
		t.Helper()
		if err == nil {
			t.Fatalf("%s: corruption accepted", name)
		}
	}
	hello := AppendHello(nil, Hello{Proto: SubmitProto, Slots: 8})
	_, err := ParseHello(hello[:len(hello)-1])
	checkErr("hello truncated", err)
	_, err = ParseHello(append(hello, 0))
	checkErr("hello trailing", err)

	sub := AppendSubmit(nil, Submit{Spec: []byte(`{"mesh":"ball"}`), Verify: true})
	for cut := 1; cut < len(sub); cut += 3 {
		_, err = ParseSubmit(sub[:cut])
		checkErr("submit truncated", err)
	}
	_, err = ParseSubmit(append(sub, 0xEE))
	checkErr("submit trailing", err)
	bad := append([]byte(nil), sub...)
	bad[4+len(`{"mesh":"ball"}`)] = 2 // verify byte must be strict 0/1
	_, err = ParseSubmit(bad)
	checkErr("submit bad bool", err)

	// Blob length claiming more than the payload holds.
	huge := AppendSubmit(nil, Submit{Spec: []byte("x")})
	huge[0] = 0xFF
	_, err = ParseSubmit(huge)
	checkErr("submit inflated blob", err)

	res := AppendResult(nil, Result{Meta: []byte("{}"), Flux: [][]float64{{1, 2}}})
	_, err = ParseResult(res[:len(res)-1])
	checkErr("result truncated", err)
	_, err = ParseResult(append(res, 0))
	checkErr("result trailing", err)
	shape := append([]byte(nil), res...)
	// Inflate the group count far beyond the payload.
	shape[len(shape)-24] = 0xFF
	_, err = ParseResult(shape)
	checkErr("result inflated groups", err)

	acc := AppendAccepted(nil, Accepted{Job: "j"})
	_, err = ParseAccepted(acc[:2])
	checkErr("accepted truncated", err)
	rej := AppendRejected(nil, Rejected{Code: "queue-full"})
	_, err = ParseRejected(append(rej, 1))
	checkErr("rejected trailing", err)
	_, err = ParseStarted([]byte{5, 0, 'a'})
	checkErr("started truncated", err)
	_, err = ParseProgress([]byte{9, 0, 0, 0, 'x'})
	checkErr("progress truncated", err)
	_, err = ParseJobError([]byte{})
	checkErr("job error empty", err)
	_, err = ParseCancel(append(AppendCancel(nil, "r"), 7))
	checkErr("cancel trailing", err)
}

// TestFrameIO drives WriteFrame/ReadFrame over a real socket pair,
// including header validation of the new kinds.
func TestFrameIO(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	payload := AppendSubmit(nil, Submit{Spec: []byte(`{"mesh":"cyclic"}`), Timeout: time.Second})
	go func() {
		if err := WriteFrame(c1, KindSubmit, payload); err != nil {
			t.Error(err)
		}
	}()
	kind, got, err := ReadFrame(c2)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindSubmit || !bytes.Equal(got, payload) {
		t.Fatalf("frame: kind %s payload %x", kindName(kind), got)
	}
	// A header with a submission kind parses; a stale kind does not.
	if _, _, err := ParseHeader(AppendHeader(nil, KindResult, 0)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ParseHeader(AppendHeader(nil, 0x42, 0)); err == nil ||
		!strings.Contains(err.Error(), "unknown frame kind") {
		t.Fatalf("unknown kind accepted: %v", err)
	}
}

// FuzzSubmitLaneRoundTrip pins the same canonical-form property as the
// transport-lane fuzzer: any bytes a parser accepts must re-encode to
// the identical bytes.
func FuzzSubmitLaneRoundTrip(f *testing.F) {
	f.Add(AppendHello(nil, Hello{Proto: SubmitProto, Slots: 8, Busy: 2, Running: 1, Queued: 0}))
	f.Add(AppendSubmit(nil, Submit{Spec: []byte(`{"mesh":"kobayashi","n":8}`), Verify: true, Timeout: time.Minute}))
	f.Add(AppendSubmit(nil, Submit{Spec: []byte(`{}`), Rendezvous: "127.0.0.1:1", Cluster: "c", RankLo: 0, RankHi: 2}))
	f.Add(AppendAccepted(nil, Accepted{Job: "job-1", QueuePos: 1}))
	f.Add(AppendRejected(nil, Rejected{Code: "invalid-spec", Detail: "mesh"}))
	f.Add(AppendStarted(nil, "job-1"))
	f.Add(AppendProgress(nil, []byte(`{"iteration":1}`)))
	f.Add(AppendResult(nil, Result{Meta: []byte(`{"ok":true}`), Flux: [][]float64{{1, -0.0}, {2, 3}}}))
	f.Add(AppendJobError(nil, "boom"))
	f.Add(AppendCancel(nil, "user"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if h, err := ParseHello(data); err == nil {
			if !bytes.Equal(AppendHello(nil, h), data) {
				t.Fatalf("hello not canonical: %x", data)
			}
		}
		if s, err := ParseSubmit(data); err == nil {
			if !bytes.Equal(AppendSubmit(nil, s), data) {
				t.Fatalf("submit not canonical: %x", data)
			}
		}
		if a, err := ParseAccepted(data); err == nil {
			if !bytes.Equal(AppendAccepted(nil, a), data) {
				t.Fatalf("accepted not canonical: %x", data)
			}
		}
		if r, err := ParseRejected(data); err == nil {
			if !bytes.Equal(AppendRejected(nil, r), data) {
				t.Fatalf("rejected not canonical: %x", data)
			}
		}
		if j, err := ParseStarted(data); err == nil {
			if !bytes.Equal(AppendStarted(nil, j), data) {
				t.Fatalf("started not canonical: %x", data)
			}
		}
		if ev, err := ParseProgress(data); err == nil {
			if !bytes.Equal(AppendProgress(nil, ev), data) {
				t.Fatalf("progress not canonical: %x", data)
			}
		}
		if r, err := ParseResult(data); err == nil {
			if !bytes.Equal(AppendResult(nil, r), data) {
				t.Fatalf("result not canonical: %x", data)
			}
		}
		if d, err := ParseJobError(data); err == nil {
			if !bytes.Equal(AppendJobError(nil, d), data) {
				t.Fatalf("job error not canonical: %x", data)
			}
		}
		if reason, err := ParseCancel(data); err == nil {
			if !bytes.Equal(AppendCancel(nil, reason), data) {
				t.Fatalf("cancel not canonical: %x", data)
			}
		}
	})
}

// FuzzSubmitFrameRoundTrip fuzzes the submission lane one layer up: an
// arbitrary byte stream is read as a framed wire unit, and any frame
// ReadFrame accepts must re-encode (via WriteFrame, and via the typed
// payload codec when the kind's parser accepts the payload) to exactly
// the bytes consumed — the canonical re-encode invariant the transport
// lane pins in FuzzNetFrameRoundTrip.
func FuzzSubmitFrameRoundTrip(f *testing.F) {
	frame := func(kind byte, payload []byte) []byte {
		var b bytes.Buffer
		if err := WriteFrame(&b, kind, payload); err != nil {
			f.Fatal(err)
		}
		return b.Bytes()
	}
	f.Add(frame(KindHello, AppendHello(nil, Hello{Proto: SubmitProto, Slots: 8, Busy: 1, Running: 1, Queued: 2})))
	f.Add(frame(KindSubmit, AppendSubmit(nil, Submit{Spec: []byte(`{"mesh":"kobayashi"}`), Verify: true})))
	f.Add(frame(KindAccepted, AppendAccepted(nil, Accepted{Job: "job-1", QueuePos: 1})))
	f.Add(frame(KindRejected, AppendRejected(nil, Rejected{Code: "queue-full", Detail: "8 queued"})))
	f.Add(frame(KindStarted, AppendStarted(nil, "job-1")))
	f.Add(frame(KindProgress, AppendProgress(nil, []byte(`{"iteration":1}`))))
	f.Add(frame(KindResult, AppendResult(nil, Result{Meta: []byte(`{"ok":true}`), Flux: [][]float64{{1, -0.0}}})))
	f.Add(frame(KindJobError, AppendJobError(nil, "boom")))
	f.Add(frame(KindCancel, AppendCancel(nil, "user")))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		kind, payload, err := ReadFrame(r)
		if err != nil {
			return
		}
		consumed := data[:len(data)-r.Len()]
		var out bytes.Buffer
		if err := WriteFrame(&out, kind, payload); err != nil {
			t.Fatalf("re-encoding an accepted frame failed: %v", err)
		}
		if !bytes.Equal(out.Bytes(), consumed) {
			t.Fatalf("frame not canonical: read %x, re-encoded %x", consumed, out.Bytes())
		}
		canon, parsed := []byte(nil), false
		switch kind {
		case KindHello:
			if h, err := ParseHello(payload); err == nil {
				canon, parsed = AppendHello(nil, h), true
			}
		case KindSubmit:
			if s, err := ParseSubmit(payload); err == nil {
				canon, parsed = AppendSubmit(nil, s), true
			}
		case KindAccepted:
			if a, err := ParseAccepted(payload); err == nil {
				canon, parsed = AppendAccepted(nil, a), true
			}
		case KindRejected:
			if rj, err := ParseRejected(payload); err == nil {
				canon, parsed = AppendRejected(nil, rj), true
			}
		case KindStarted:
			if j, err := ParseStarted(payload); err == nil {
				canon, parsed = AppendStarted(nil, j), true
			}
		case KindProgress:
			if ev, err := ParseProgress(payload); err == nil {
				canon, parsed = AppendProgress(nil, ev), true
			}
		case KindResult:
			if res, err := ParseResult(payload); err == nil {
				canon, parsed = AppendResult(nil, res), true
			}
		case KindJobError:
			if d, err := ParseJobError(payload); err == nil {
				canon, parsed = AppendJobError(nil, d), true
			}
		case KindCancel:
			if reason, err := ParseCancel(payload); err == nil {
				canon, parsed = AppendCancel(nil, reason), true
			}
		}
		if parsed && !bytes.Equal(canon, payload) {
			t.Fatalf("kind 0x%02x payload not canonical: %x vs %x", kind, payload, canon)
		}
	})
}
