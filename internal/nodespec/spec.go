// Package nodespec is the glue of multi-process solves: a serializable
// Spec every rank builds the identical problem from (SPMD — the spec is
// the single source of truth, the mesh generators are deterministic), a
// node driver that joins the TCP cluster and runs a full source
// iteration, and a local launcher that spawns one jsweep-node OS process
// per rank.
package nodespec

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"jsweep/internal/comm"
	"jsweep/internal/geom"
	"jsweep/internal/kobayashi"
	"jsweep/internal/mesh"
	"jsweep/internal/meshgen"
	"jsweep/internal/partition"
	"jsweep/internal/priority"
	"jsweep/internal/quadrature"
	"jsweep/internal/runtime"
	"jsweep/internal/sweep"
	"jsweep/internal/transport"
)

// Spec describes a complete solve: mesh, physics, decomposition, solver
// shape. Every rank of a cluster rebuilds the identical problem from the
// same spec — generators and partitioners are deterministic, so no mesh
// data ever crosses the wire.
type Spec struct {
	// Mesh is kobayashi | ball | reactor | cyclic.
	Mesh string `json:"mesh"`
	// N is the structured cells-per-axis (kobayashi).
	N int `json:"n,omitempty"`
	// Cells is the approximate tet count (ball/reactor/cyclic).
	Cells int `json:"cells,omitempty"`
	// SnOrder is the quadrature order (default 4).
	SnOrder int `json:"sn,omitempty"`
	// Groups is the energy group count (default 1; non-kobayashi).
	Groups int `json:"groups,omitempty"`
	// Scatter enables scattering (kobayashi).
	Scatter bool `json:"scatter,omitempty"`
	// Patch is the cells-per-patch target (non-kobayashi; default 500).
	Patch int `json:"patch,omitempty"`

	// Procs is the rank count; Workers the worker goroutines per rank.
	Procs   int `json:"procs"`
	Workers int `json:"workers"`
	// Grain is the vertex clustering grain (default 64).
	Grain int `json:"grain,omitempty"`
	// Prio is the PATCH+VERTEX priority pair (default SLBD+SLBD).
	Prio string `json:"prio,omitempty"`
	// Safra selects Safra termination instead of workload counting.
	Safra bool `json:"safra,omitempty"`
	// Reuse keeps one runtime session across sweeps (default true via
	// ReuseOff=false).
	ReuseOff bool `json:"reuse_off,omitempty"`
	// Sequential runs on the deterministic engine (single-process only;
	// refused with a multi-process transport).
	Sequential bool `json:"sequential,omitempty"`
	// Coarse runs later sweeps on the coarsened graph (single-process
	// only; refused with a multi-process transport).
	Coarse bool `json:"coarse,omitempty"`

	// Aggregation knobs (runtime.AggregationConfig mirror).
	Agg           bool `json:"agg,omitempty"`
	AggStreams    int  `json:"agg_streams,omitempty"`
	AggBytes      int  `json:"agg_bytes,omitempty"`
	AggShards     int  `json:"agg_shards,omitempty"`
	AggFlushMicro int  `json:"agg_flush_us,omitempty"`

	// Tol and MaxIters control source iteration.
	Tol      float64 `json:"tol,omitempty"`
	MaxIters int     `json:"max_iters,omitempty"`
}

// withDefaults fills unset fields.
func (s Spec) withDefaults() Spec {
	if s.Mesh == "" {
		s.Mesh = "kobayashi"
	}
	if s.N == 0 {
		s.N = 16
	}
	if s.Cells == 0 {
		s.Cells = 2000
	}
	if s.SnOrder == 0 {
		s.SnOrder = 4
	}
	if s.Groups == 0 {
		s.Groups = 1
	}
	if s.Patch == 0 {
		s.Patch = 500
	}
	if s.Procs == 0 {
		s.Procs = 2
	}
	if s.Workers == 0 {
		s.Workers = 2
	}
	if s.Grain == 0 {
		s.Grain = 64
	}
	if s.Prio == "" {
		s.Prio = "SLBD+SLBD"
	}
	if s.Tol == 0 {
		s.Tol = 1e-7
	}
	return s
}

// MarshalSpec encodes a spec as JSON (the launcher→node format).
func MarshalSpec(s Spec) (string, error) {
	b, err := json.Marshal(s)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// UnmarshalSpec decodes the launcher→node JSON.
func UnmarshalSpec(data string) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(strings.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return s, fmt.Errorf("nodespec: bad spec JSON: %w", err)
	}
	return s, nil
}

// ParsePair parses a "PATCH+VERTEX" priority pair.
func ParsePair(s string) (priority.Pair, error) {
	parts := strings.Split(s, "+")
	if len(parts) != 2 {
		return priority.Pair{}, fmt.Errorf("nodespec: priority pair must be PATCH+VERTEX (got %q)", s)
	}
	parse := func(name string) (priority.Strategy, error) {
		switch strings.ToUpper(name) {
		case "BFS":
			return priority.BFS, nil
		case "LDCP":
			return priority.LDCP, nil
		case "SLBD":
			return priority.SLBD, nil
		}
		return 0, fmt.Errorf("nodespec: unknown strategy %q", name)
	}
	p, err := parse(parts[0])
	if err != nil {
		return priority.Pair{}, err
	}
	v, err := parse(parts[1])
	if err != nil {
		return priority.Pair{}, err
	}
	return priority.Pair{Patch: p, Vertex: v}, nil
}

// Build deterministically constructs the problem and decomposition of a
// spec. Every rank calling Build with the same spec gets bitwise
// identical meshes, materials and patch placement.
func Build(s Spec) (*transport.Problem, *mesh.Decomposition, error) {
	s = s.withDefaults()
	switch s.Mesh {
	case "kobayashi":
		prob, m, err := kobayashi.Build(kobayashi.Spec{
			N: s.N, SnOrder: s.SnOrder, Scattering: s.Scatter, Scheme: transport.Diamond,
		})
		if err != nil {
			return nil, nil, err
		}
		b := s.N / 4
		if b < 1 {
			b = 1
		}
		d, err := m.BlockDecompose(b, b, b)
		if err != nil {
			return nil, nil, err
		}
		return prob, d, nil
	case "ball", "reactor", "cyclic":
		var m *mesh.Unstructured
		var err error
		switch s.Mesh {
		case "ball":
			m, err = meshgen.BallWithCells(s.Cells, 10.0)
		case "reactor":
			m, err = meshgen.ReactorWithCells(s.Cells, 1.0, 1.5)
		default:
			m, err = meshgen.CyclicStackWithCells(s.Cells)
		}
		if err != nil {
			return nil, nil, err
		}
		m.SetMaterialFunc(func(geom.Vec3) int { return 0 })
		quad, err := quadrature.New(s.SnOrder)
		if err != nil {
			return nil, nil, err
		}
		prob := uniformProblem(m, quad, s.Groups)
		var d *mesh.Decomposition
		if s.Mesh == "cyclic" {
			np := m.NumCells() / s.Patch
			if np < 2 {
				np = 2
			}
			d, err = meshgen.AzimuthalBlocks(m, np)
		} else {
			d, err = partition.ByPatchSize(m, s.Patch, partition.GreedyGraph)
		}
		if err != nil {
			return nil, nil, err
		}
		return prob, d, nil
	}
	return nil, nil, fmt.Errorf("nodespec: unknown mesh kind %q", s.Mesh)
}

// SolverOptions shapes the sweep solver from a spec; tr is nil for a
// single-process solve or the rank's transport for a cluster node.
func SolverOptions(s Spec, tr comm.Transport) (sweep.Options, error) {
	s = s.withDefaults()
	pair, err := ParsePair(s.Prio)
	if err != nil {
		return sweep.Options{}, err
	}
	term := runtime.Workload
	if s.Safra {
		term = runtime.Safra
	}
	reuse := sweep.ReuseOn
	if s.ReuseOff {
		reuse = sweep.ReuseOff
	}
	return sweep.Options{
		Procs:        s.Procs,
		Workers:      s.Workers,
		Grain:        s.Grain,
		Pair:         pair,
		Termination:  term,
		ReuseRuntime: reuse,
		Sequential:   s.Sequential,
		UseCoarse:    s.Coarse,
		Aggregation: runtime.AggregationConfig{
			Enabled:         s.Agg,
			MaxBatchStreams: s.AggStreams,
			MaxBatchBytes:   s.AggBytes,
			Shards:          s.AggShards,
			FlushInterval:   time.Duration(s.AggFlushMicro) * time.Microsecond,
		},
		Transport: tr,
	}, nil
}

// IterConfig returns the spec's source-iteration config.
func IterConfig(s Spec) transport.IterConfig {
	s = s.withDefaults()
	return transport.IterConfig{Tolerance: s.Tol, MaxIterations: s.MaxIters}
}

// uniformProblem builds the uniform-material multigroup problem the
// non-kobayashi meshes solve (shared with cmd/jsweep-run).
func uniformProblem(m mesh.Mesh, quad *quadrature.Set, groups int) *transport.Problem {
	sigT := make([]float64, groups)
	src := make([]float64, groups)
	scat := make([][]float64, groups)
	for g := 0; g < groups; g++ {
		sigT[g] = 0.4 + 0.2*float64(g)
		scat[g] = make([]float64, groups)
		scat[g][g] = 0.1
		if g+1 < groups {
			scat[g][g+1] = 0.05
		}
	}
	src[0] = 1.0
	return &transport.Problem{
		M:      m,
		Mats:   []transport.Material{{Name: "uniform", SigmaT: sigT, SigmaS: scat, Source: src}},
		Quad:   quad,
		Groups: groups,
		Scheme: transport.Step,
	}
}
