// Package nodespec is the glue of multi-process solves: a serializable
// Spec every rank builds the identical problem from (SPMD — the spec is
// the single source of truth, the mesh generators are deterministic), a
// node driver that joins the TCP cluster and runs a full source
// iteration, and a local launcher that spawns one jsweep-node OS process
// per rank.
package nodespec

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"jsweep/internal/comm"
	"jsweep/internal/mesh"
	"jsweep/internal/netcomm"
	"jsweep/internal/priority"
	"jsweep/internal/registry"
	"jsweep/internal/runtime"
	"jsweep/internal/sweep"
	"jsweep/internal/transport"
)

// Backend selects how a job spec executes: in this process, across a
// TCP cluster, or on the discrete-event cluster simulator.
type Backend string

const (
	// BackendAuto (the zero value) means BackendInProc.
	BackendAuto Backend = ""
	// BackendInProc runs all ranks as goroutines of this OS process over
	// the in-memory transport.
	BackendInProc Backend = "inproc"
	// BackendTCPLaunch spawns one node OS process per rank on this host,
	// wired through a local rendezvous over TCP-loopback.
	BackendTCPLaunch Backend = "tcp-launch"
	// BackendTCPAttach runs this process as one rank of an existing TCP
	// cluster (an explicit transport, or rendezvous attach parameters).
	BackendTCPAttach Backend = "tcp-attach"
	// BackendSim replays the spec's task system on the discrete-event
	// cluster simulator instead of solving it.
	BackendSim Backend = "sim"
)

// Valid reports whether b names a known backend.
func (b Backend) Valid() bool {
	switch b {
	case BackendAuto, BackendInProc, BackendTCPLaunch, BackendTCPAttach, BackendSim:
		return true
	}
	return false
}

// Backends lists the selectable backend names for CLI usage strings.
func Backends() []string {
	return []string{string(BackendInProc), string(BackendTCPLaunch), string(BackendTCPAttach), string(BackendSim)}
}

// CurrentSpecVersion is the wire-schema version this build speaks. A
// spec with SpecVersion 0 (the zero value — specs written before the
// field existed) is treated as the current version; a spec claiming a
// higher version than this build knows is rejected at decode instead of
// half-understood, so a newer submitter never silently loses fields
// against an older daemon.
const CurrentSpecVersion = 1

// Spec describes a complete solve: mesh, physics, decomposition, solver
// shape, and the backend that executes it. Every rank of a cluster
// rebuilds the identical problem from the same spec — generators and
// partitioners are deterministic, so no mesh data ever crosses the wire.
type Spec struct {
	// SpecVersion is the wire-schema version of this spec (0 = current).
	// MarshalSpec stamps the defaulted spec with CurrentSpecVersion so
	// every spec that crosses a process or host boundary is versioned.
	SpecVersion int `json:"spec_version,omitempty"`

	// Mesh names a problem family of internal/registry
	// (kobayashi | ball | reactor | cyclic).
	Mesh string `json:"mesh"`
	// N is the structured cells-per-axis (kobayashi).
	N int `json:"n,omitempty"`
	// Cells is the approximate tet count (ball/reactor/cyclic).
	Cells int `json:"cells,omitempty"`
	// SnOrder is the quadrature order (default 4).
	SnOrder int `json:"sn,omitempty"`
	// Groups is the energy group count (default 1; non-kobayashi).
	Groups int `json:"groups,omitempty"`
	// Scatter enables scattering (kobayashi).
	Scatter bool `json:"scatter,omitempty"`
	// Patch is the cells-per-patch target (non-kobayashi; default 500).
	Patch int `json:"patch,omitempty"`

	// Backend selects the execution backend
	// (inproc | tcp-launch | tcp-attach | sim; default inproc).
	Backend Backend `json:"backend,omitempty"`

	// Wire selects the wire flavor for multi-process backends
	// (auto | tcp | uds | shm; default auto — shared-memory rings
	// between co-located ranks that support them, Unix-domain sockets
	// for other co-located pairs, TCP across hosts). Ignored by inproc
	// and sim.
	Wire string `json:"wire,omitempty"`

	// Procs is the rank count; Workers the worker goroutines per rank.
	Procs   int `json:"procs"`
	Workers int `json:"workers"`
	// Grain is the vertex clustering grain (default 64).
	Grain int `json:"grain,omitempty"`
	// Prio is the PATCH+VERTEX priority pair (default SLBD+SLBD).
	Prio string `json:"prio,omitempty"`
	// Safra selects Safra termination instead of workload counting.
	Safra bool `json:"safra,omitempty"`
	// Reuse keeps one runtime session across sweeps (default true via
	// ReuseOff=false).
	ReuseOff bool `json:"reuse_off,omitempty"`
	// Sequential runs on the deterministic engine (single-process only;
	// refused with a multi-process transport).
	Sequential bool `json:"sequential,omitempty"`
	// Coarse runs later sweeps on the coarsened graph. On multi-process
	// backends the recording sweep's vertex clusters are allgathered so
	// every rank coarsens the identical full program set.
	Coarse bool `json:"coarse,omitempty"`

	// Aggregation knobs (runtime.AggregationConfig mirror).
	Agg           bool `json:"agg,omitempty"`
	AggStreams    int  `json:"agg_streams,omitempty"`
	AggBytes      int  `json:"agg_bytes,omitempty"`
	AggShards     int  `json:"agg_shards,omitempty"`
	AggFlushMicro int  `json:"agg_flush_us,omitempty"`

	// Tol and MaxIters control source iteration.
	Tol      float64 `json:"tol,omitempty"`
	MaxIters int     `json:"max_iters,omitempty"`
}

// Defaulted returns the spec with every unset field filled with its
// default — the exact values Build, SolverOptions and the node driver
// apply internally, exported so callers (the Job API, CLIs) can reason
// about the resolved spec without duplicating the defaults.
func (s Spec) Defaulted() Spec { return s.withDefaults() }

// withDefaults fills unset fields.
func (s Spec) withDefaults() Spec {
	if s.SpecVersion == 0 {
		s.SpecVersion = CurrentSpecVersion
	}
	if s.Mesh == "" {
		s.Mesh = "kobayashi"
	}
	if s.N == 0 {
		s.N = 16
	}
	if s.Cells == 0 {
		s.Cells = 2000
	}
	if s.SnOrder == 0 {
		s.SnOrder = 4
	}
	if s.Groups == 0 {
		s.Groups = 1
	}
	if s.Patch == 0 {
		s.Patch = 500
	}
	if s.Procs == 0 {
		s.Procs = 2
	}
	if s.Workers == 0 {
		s.Workers = 2
	}
	if s.Grain == 0 {
		s.Grain = 64
	}
	if s.Prio == "" {
		s.Prio = "SLBD+SLBD"
	}
	if s.Tol == 0 {
		s.Tol = 1e-7
	}
	return s
}

// MarshalSpec encodes a spec as JSON (the launcher→node and
// client→daemon format), stamped with its wire-schema version.
func MarshalSpec(s Spec) (string, error) {
	if s.SpecVersion == 0 {
		s.SpecVersion = CurrentSpecVersion
	}
	b, err := json.Marshal(s)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// UnmarshalSpec decodes a spec from its JSON wire form: strict (unknown
// fields are rejected, not dropped — a misspelled knob must not silently
// become a default) and versioned (a spec claiming a newer schema than
// this build is refused instead of half-understood).
func UnmarshalSpec(data string) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(strings.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return s, fmt.Errorf("nodespec: bad spec JSON: %w", err)
	}
	if s.SpecVersion < 0 || s.SpecVersion > CurrentSpecVersion {
		return s, &ValidateError{Fields: []FieldError{{
			Field:  "spec_version",
			Reason: fmt.Sprintf("version %d not supported (this build speaks ≤ %d)", s.SpecVersion, CurrentSpecVersion),
		}}}
	}
	return s, nil
}

// FieldError is one typed validation failure: the JSON field that is
// wrong and why.
type FieldError struct {
	// Field is the spec's JSON field name.
	Field string
	// Reason says what about the value is unacceptable.
	Reason string
}

func (e FieldError) Error() string {
	return fmt.Sprintf("nodespec: spec field %q: %s", e.Field, e.Reason)
}

// ValidateError aggregates every field failure of one Validate call, so
// a caller (or a daemon's rejection frame) reports all problems at once
// instead of one per round trip.
type ValidateError struct {
	Fields []FieldError
}

func (e *ValidateError) Error() string {
	msgs := make([]string, len(e.Fields))
	for i, f := range e.Fields {
		msgs[i] = f.Error()
	}
	return strings.Join(msgs, "; ")
}

// Validate checks a spec against the schema before anything is built or
// launched: range checks on every numeric knob, membership checks on the
// named mesh/backend/wire/priority, and cross-field coherence. It
// returns nil or a *ValidateError carrying one FieldError per problem.
// Every entry path — the Job API, all CLIs, the serve daemon, the node
// env decode — goes through it, so a bad spec fails with a field-level
// message before any process or rank starts.
func (s Spec) Validate() error {
	var errs []FieldError
	add := func(field, reason string) { errs = append(errs, FieldError{Field: field, Reason: reason}) }
	if s.SpecVersion < 0 || s.SpecVersion > CurrentSpecVersion {
		add("spec_version", fmt.Sprintf("version %d not supported (this build speaks ≤ %d)", s.SpecVersion, CurrentSpecVersion))
	}
	d := s.withDefaults()
	if _, ok := registry.Lookup(d.Mesh); !ok {
		add("mesh", fmt.Sprintf("unknown mesh kind %q (have %s)", d.Mesh, registry.Usage()))
	}
	for _, f := range []struct {
		name string
		v    int
	}{
		{"n", s.N}, {"cells", s.Cells}, {"sn", s.SnOrder}, {"groups", s.Groups},
		{"patch", s.Patch}, {"procs", s.Procs}, {"workers", s.Workers}, {"grain", s.Grain},
		{"agg_streams", s.AggStreams}, {"agg_bytes", s.AggBytes},
		{"agg_shards", s.AggShards}, {"agg_flush_us", s.AggFlushMicro},
		{"max_iters", s.MaxIters},
	} {
		if f.v < 0 {
			add(f.name, fmt.Sprintf("must not be negative (got %d)", f.v))
		}
	}
	if d.SnOrder < 2 || d.SnOrder%2 != 0 {
		add("sn", fmt.Sprintf("Sn order must be even and >= 2 (got %d)", d.SnOrder))
	}
	if !d.Backend.Valid() {
		add("backend", fmt.Sprintf("unknown backend %q (have %s)", d.Backend, strings.Join(Backends(), " | ")))
	}
	if _, err := netcomm.ParseWire(d.Wire); err != nil {
		add("wire", err.Error())
	}
	if _, err := ParsePair(d.Prio); err != nil {
		add("prio", err.Error())
	}
	if s.Tol < 0 {
		add("tol", fmt.Sprintf("must not be negative (got %g)", s.Tol))
	}
	if d.Sequential {
		switch d.Backend {
		case BackendTCPLaunch, BackendTCPAttach:
			add("sequential", fmt.Sprintf("the sequential engine is single-process (backend %q spans OS processes)", d.Backend))
		}
	}
	if len(errs) > 0 {
		return &ValidateError{Fields: errs}
	}
	return nil
}

// ParsePair parses a "PATCH+VERTEX" priority pair.
func ParsePair(s string) (priority.Pair, error) {
	parts := strings.Split(s, "+")
	if len(parts) != 2 {
		return priority.Pair{}, fmt.Errorf("nodespec: priority pair must be PATCH+VERTEX (got %q)", s)
	}
	parse := func(name string) (priority.Strategy, error) {
		switch strings.ToUpper(name) {
		case "BFS":
			return priority.BFS, nil
		case "LDCP":
			return priority.LDCP, nil
		case "SLBD":
			return priority.SLBD, nil
		}
		return 0, fmt.Errorf("nodespec: unknown strategy %q", name)
	}
	p, err := parse(parts[0])
	if err != nil {
		return priority.Pair{}, err
	}
	v, err := parse(parts[1])
	if err != nil {
		return priority.Pair{}, err
	}
	return priority.Pair{Patch: p, Vertex: v}, nil
}

// MeshParams maps a spec's mesh-construction fields onto the registry's
// parameter record.
func MeshParams(s Spec) registry.Params {
	s = s.withDefaults()
	return registry.Params{
		N: s.N, Cells: s.Cells, SnOrder: s.SnOrder,
		Groups: s.Groups, Scatter: s.Scatter, Patch: s.Patch,
	}
}

// Build deterministically constructs the problem and decomposition of a
// spec through the mesh registry. Every rank calling Build with the same
// spec gets bitwise identical meshes, materials and patch placement.
func Build(s Spec) (*transport.Problem, *mesh.Decomposition, error) {
	s = s.withDefaults()
	if !s.Backend.Valid() {
		return nil, nil, fmt.Errorf("nodespec: unknown backend %q (have %s)", s.Backend, strings.Join(Backends(), " | "))
	}
	return registry.Build(s.Mesh, MeshParams(s))
}

// SolverOptions shapes the sweep solver from a spec; tr is nil for a
// single-process solve or the rank's transport for a cluster node.
func SolverOptions(s Spec, tr comm.Transport) (sweep.Options, error) {
	s = s.withDefaults()
	pair, err := ParsePair(s.Prio)
	if err != nil {
		return sweep.Options{}, err
	}
	term := runtime.Workload
	if s.Safra {
		term = runtime.Safra
	}
	reuse := sweep.ReuseOn
	if s.ReuseOff {
		reuse = sweep.ReuseOff
	}
	return sweep.Options{
		Procs:        s.Procs,
		Workers:      s.Workers,
		Grain:        s.Grain,
		Pair:         pair,
		Termination:  term,
		ReuseRuntime: reuse,
		Sequential:   s.Sequential,
		UseCoarse:    s.Coarse,
		Aggregation: runtime.AggregationConfig{
			Enabled:         s.Agg,
			MaxBatchStreams: s.AggStreams,
			MaxBatchBytes:   s.AggBytes,
			Shards:          s.AggShards,
			FlushInterval:   time.Duration(s.AggFlushMicro) * time.Microsecond,
		},
		Transport: tr,
	}, nil
}

// IterConfig returns the spec's source-iteration config.
func IterConfig(s Spec) transport.IterConfig {
	s = s.withDefaults()
	return transport.IterConfig{Tolerance: s.Tol, MaxIterations: s.MaxIters}
}
